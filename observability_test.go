package leakest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leakest/internal/cells"
	"leakest/internal/charlib"
)

// progressRecorder collects every report and indexes them by stage.
type progressRecorder struct {
	reports []Progress
}

func (r *progressRecorder) fn(p Progress) { r.reports = append(r.reports, p) }

// ctx returns a context delivering every checkpoint tick to the recorder.
func (r *progressRecorder) ctx() context.Context {
	return WithProgressInterval(context.Background(), r.fn, 0)
}

// finalFor returns the stage's completion report.
func (r *progressRecorder) finalFor(t *testing.T, stage string) Progress {
	t.Helper()
	for _, p := range r.reports {
		if p.Stage == stage && p.Final {
			return p
		}
	}
	t.Fatalf("no final report for stage %q in %d reports", stage, len(r.reports))
	return Progress{}
}

// countFor returns how many reports the stage delivered.
func (r *progressRecorder) countFor(stage string) int {
	n := 0
	for _, p := range r.reports {
		if p.Stage == stage {
			n++
		}
	}
	return n
}

func TestProgressFromCharacterization(t *testing.T) {
	var rec progressRecorder
	if _, err := CharacterizeContext(rec.ctx(), cells.CoreSubset(), CharConfig{
		Process: DefaultProcess(), MCSamples: 500, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	final := rec.finalFor(t, "charlib.characterize")
	if final.Done != final.Total || final.Total <= 0 {
		t.Errorf("final report %+v: Done != Total", final)
	}
	// One report per state plus the final one: strictly more than just the
	// completion report must have been delivered at interval 0.
	if n := rec.countFor("charlib.characterize"); n < 2 {
		t.Errorf("only %d characterization reports", n)
	}
}

func TestProgressFromLinearEstimator(t *testing.T) {
	est := coreEstimator(t)
	var rec progressRecorder
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	if _, err := est.EstimateContext(rec.ctx(), design, Linear); err != nil {
		t.Fatal(err)
	}
	final := rec.finalFor(t, "estimate.linear")
	if final.Done != final.Total || final.Total <= 0 {
		t.Errorf("final report %+v: Done != Total", final)
	}
}

func TestProgressFromTruthAndMonteCarlo(t *testing.T) {
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	var rec progressRecorder
	if _, err := est.TrueLeakageContext(rec.ctx(), nl, pl, 0.5); err != nil {
		t.Fatal(err)
	}
	final := rec.finalFor(t, "core.truth")
	if final.Done != final.Total || final.Total != int64(len(nl.Gates)) {
		t.Errorf("truth final report %+v, want total %d", final, len(nl.Gates))
	}

	rec = progressRecorder{}
	if _, err := est.MonteCarloContext(rec.ctx(), nl, pl, 0.5, 25, 1); err != nil {
		t.Fatal(err)
	}
	final = rec.finalFor(t, "chipmc.trials")
	if final.Done != 25 || final.Total != 25 {
		t.Errorf("chipmc final report %+v, want 25/25", final)
	}
}

func TestResultCarriesStageTimings(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	res, err := est.EstimateContext(context.Background(), design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, s := range res.Timings {
		if s.Duration < 0 {
			t.Errorf("negative duration in %+v", s)
		}
		stages[s.Stage] = true
	}
	if !stages["core.model"] || !stages["estimate.linear"] {
		t.Errorf("Timings missing expected stages: %+v", res.Timings)
	}
}

func TestDegradationCountedInMetrics(t *testing.T) {
	key := `degradations_total{reason="max-gates"}`
	before, _ := MetricsSnapshot()[key].(int64)
	EnableMetrics()
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	res, err := est.EstimateBudgeted(context.Background(), design, EstimateBudget{MaxGates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("MaxGates=100 on a 2500-gate design did not degrade: %+v", res)
	}
	after, _ := MetricsSnapshot()[key].(int64)
	if after != before+1 {
		t.Errorf("%s went %d → %d, want +1", key, before, after)
	}
	if len(res.Timings) == 0 {
		t.Errorf("degraded result has no stage timings")
	}
}

func TestWriteMetricsPrometheusText(t *testing.T) {
	EnableMetrics()
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	if _, err := est.EstimateContext(context.Background(), design, Linear); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE estimate_duration_seconds histogram",
		`estimate_duration_seconds_count{method="linear"}`,
		`estimate_stage_duration_seconds_bucket{stage="core.model",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, out)
		}
	}
}

func TestTelemetryHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(TelemetryHandler())
	defer srv.Close()
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	if _, err := est.EstimateContext(context.Background(), design, Linear); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		"/metrics":      "estimate_stage_duration_seconds",
		"/debug/vars":   "leakest_metrics",
		"/debug/pprof/": "profile",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}
