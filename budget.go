package leakest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"leakest/internal/core"
	"leakest/internal/lkerr"
)

// EstimateBudget bounds the work one estimation may spend. The paper's
// O(n) and O(1) estimators (Eqs. 17, 20, 25) are exact or near-exact
// cheaper substitutes for the O(n²) pairwise sum (Eq. 15), so a budget that
// rules out an expensive method degrades to the next-cheaper one instead of
// failing; the Result records the chosen method and the degradation reason.
//
// The degradation ladder is O(n²) true leakage → O(n) linear → O(1)
// integral (polar when applicable, 2-D rectangular otherwise).
type EstimateBudget struct {
	// MaxGates bounds methods whose cost grows with the gate count — the
	// O(n²) pairwise sum and the O(n) linear method. 0 means no limit.
	MaxGates int
	// MaxPairs bounds the O(n²) pair count n·(n−1)/2. 0 means no limit.
	MaxPairs int64
	// Timeout is a per-rung deadline: each attempted rung gets this much
	// time, and a rung that exceeds it degrades to the next-cheaper one.
	// 0 means no deadline.
	Timeout time.Duration
}

// pairs returns the O(n²) pair count of n gates.
func pairs(n int) int64 { return int64(n) * int64(n-1) / 2 }

// allowsTruth reports whether the O(n²) rung fits the static budget; the
// reason names what tripped.
func (b EstimateBudget) allowsTruth(n int) (bool, string) {
	if b.MaxPairs > 0 && pairs(n) > b.MaxPairs {
		return false, fmtReason("o(n²) skipped: %d pairs > MaxPairs=%d", pairs(n), b.MaxPairs)
	}
	if b.MaxGates > 0 && n > b.MaxGates {
		return false, fmtReason("o(n²) skipped: %d gates > MaxGates=%d", n, b.MaxGates)
	}
	return true, ""
}

// allowsLinear reports whether the O(n) rung fits the static budget.
func (b EstimateBudget) allowsLinear(n int) (bool, string) {
	if b.MaxGates > 0 && n > b.MaxGates {
		return false, fmtReason("o(n) skipped: %d gates > MaxGates=%d", n, b.MaxGates)
	}
	return true, ""
}

func fmtReason(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// rungCtx derives the per-rung context: the caller's ctx, bounded by the
// budget timeout when one is set.
func (b EstimateBudget) rungCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.Timeout > 0 {
		return context.WithTimeout(ctx, b.Timeout)
	}
	return ctx, func() {}
}

// degradable reports whether an error should trigger a fall to the next
// rung: per-rung deadlines and budget refusals degrade; caller cancellation
// and real failures do not.
func degradable(ctx context.Context, err error) bool {
	if err == nil {
		return false
	}
	// A dead parent context means the caller gave up — don't keep trying.
	if ctx.Err() != nil {
		return false
	}
	return errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrBudgetExceeded)
}

// markDegraded flags a result obtained below the requested rung.
func markDegraded(res Result, reasons []string) Result {
	if len(reasons) == 0 {
		return res
	}
	res.Degraded = true
	res.DegradeReason = strings.Join(reasons, "; ")
	return res
}

// EstimateBudgeted estimates a design's statistics under a budget,
// degrading O(n) → O(1) when the linear method is ruled out (early-mode
// estimation has no O(n²) rung). The Result is flagged Degraded when a
// cheaper method than the best available one was used.
func (e *Estimator) EstimateBudgeted(ctx context.Context, design Design, budget EstimateBudget) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.EstimateBudgeted")
	if err := design.Validate(); err != nil {
		return Result{}, err
	}
	m, err := core.NewModelCtx(ctx, e.lib, e.proc, design, e.mode)
	if err != nil {
		return Result{}, err
	}
	var reasons []string

	if ok, why := budget.allowsLinear(design.N); !ok {
		reasons = append(reasons, why)
	} else {
		rctx, cancel := budget.rungCtx(ctx)
		res, err = m.EstimateLinearCtx(rctx)
		cancel()
		if err == nil {
			return e.finish(markDegraded(res, nil)), nil
		}
		if !degradable(ctx, err) {
			return Result{}, err
		}
		reasons = append(reasons, "o(n) "+reasonOf(err))
	}

	res, err = e.constantTime(m)
	if err != nil {
		return Result{}, err
	}
	return e.finish(markDegraded(res, reasons)), nil
}

// TrueLeakageBudgeted computes a placed design's statistics starting from
// the O(n²) true-leakage baseline and degrading down the ladder — O(n²) →
// O(n) → O(1) — whenever a rung trips the budget. The Result records the
// method that finally ran; Degraded and DegradeReason report what was
// skipped and why.
func (e *Estimator) TrueLeakageBudgeted(ctx context.Context, nl *Netlist, pl *Placement, signalProb float64, budget EstimateBudget) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.TrueLeakageBudgeted")
	design, err := e.ExtractDesign(nl, pl, signalProb)
	if err != nil {
		return Result{}, err
	}
	m, err := core.NewModelCtx(ctx, e.lib, e.proc, design, e.mode)
	if err != nil {
		return Result{}, err
	}
	var reasons []string

	// Rung 1: the O(n²) pairwise sum.
	if ok, why := budget.allowsTruth(design.N); !ok {
		reasons = append(reasons, why)
	} else {
		rctx, cancel := budget.rungCtx(ctx)
		res, err = core.TrueStatsCtx(rctx, m, nl, pl)
		cancel()
		if err == nil {
			return e.finish(markDegraded(res, nil)), nil
		}
		if !degradable(ctx, err) {
			return Result{}, err
		}
		reasons = append(reasons, "o(n²) "+reasonOf(err))
	}

	// Rung 2: the exact O(n) linear method.
	if ok, why := budget.allowsLinear(design.N); !ok {
		reasons = append(reasons, why)
	} else {
		rctx, cancel := budget.rungCtx(ctx)
		res, err = m.EstimateLinearCtx(rctx)
		cancel()
		if err == nil {
			return e.finish(markDegraded(res, reasons)), nil
		}
		if !degradable(ctx, err) {
			return Result{}, err
		}
		reasons = append(reasons, "o(n) "+reasonOf(err))
	}

	// Rung 3: the constant-time integrals — always within budget.
	res, err = e.constantTime(m)
	if err != nil {
		return Result{}, err
	}
	return e.finish(markDegraded(res, reasons)), nil
}

// constantTime runs the O(1) rung: the polar integral when the correlation
// range permits it, the 2-D rectangular integral otherwise.
func (e *Estimator) constantTime(m *core.Model) (Result, error) {
	if res, err := m.EstimatePolar(); err == nil {
		return res, nil
	}
	return m.EstimateIntegral2D()
}

// reasonOf renders a degradation cause for DegradeReason.
func reasonOf(err error) string {
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		return "timed out"
	case errors.Is(err, ErrBudgetExceeded):
		return "over budget: " + err.Error()
	default:
		return err.Error()
	}
}
