package leakest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"leakest/internal/core"
	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// EstimateBudget bounds the work one estimation may spend. The paper's
// O(n) and O(1) estimators (Eqs. 17, 20, 25) are exact or near-exact
// cheaper substitutes for the O(n²) pairwise sum (Eq. 15), so a budget that
// rules out an expensive method degrades to the next-cheaper one instead of
// failing; the Result records the chosen method and the degradation reason.
//
// The degradation ladder is O(n²) true leakage → O(n) linear → O(1)
// integral (polar when applicable, 2-D rectangular otherwise). Every fall
// down the ladder is also reported through the telemetry layer: a
// degradations_total{reason=...} counter increment and a warning log, so a
// degraded run is visible on /metrics and in the structured log, not only
// to callers that inspect the Result.
type EstimateBudget struct {
	// MaxGates bounds methods whose cost grows with the gate count — the
	// O(n²) pairwise sum and the O(n) linear method. 0 means no limit.
	MaxGates int
	// MaxPairs bounds the O(n²) pair count n·(n−1)/2. 0 means no limit.
	MaxPairs int64
	// Timeout is a per-rung deadline: each attempted rung gets this much
	// time, and a rung that exceeds it degrades to the next-cheaper one.
	// 0 means no deadline.
	Timeout time.Duration
}

// pairs returns the O(n²) pair count of n gates.
func pairs(n int) int64 { return int64(n) * int64(n-1) / 2 }

// Degradation reason classes, the label values of degradations_total.
const (
	reasonMaxPairs = "max-pairs"
	reasonMaxGates = "max-gates"
	reasonTimeout  = "timeout"
	reasonBudget   = "budget"
	reasonOther    = "other"
)

// allowsTruth reports whether the O(n²) rung fits the static budget; the
// reason names what tripped, kind classifies it for the metrics label.
func (b EstimateBudget) allowsTruth(n int) (ok bool, kind, why string) {
	if b.MaxPairs > 0 && pairs(n) > b.MaxPairs {
		return false, reasonMaxPairs, fmtReason("o(n²) skipped: %d pairs > MaxPairs=%d", pairs(n), b.MaxPairs)
	}
	if b.MaxGates > 0 && n > b.MaxGates {
		return false, reasonMaxGates, fmtReason("o(n²) skipped: %d gates > MaxGates=%d", n, b.MaxGates)
	}
	return true, "", ""
}

// allowsLinear reports whether the O(n) rung fits the static budget.
func (b EstimateBudget) allowsLinear(n int) (ok bool, kind, why string) {
	if b.MaxGates > 0 && n > b.MaxGates {
		return false, reasonMaxGates, fmtReason("o(n) skipped: %d gates > MaxGates=%d", n, b.MaxGates)
	}
	return true, "", ""
}

func fmtReason(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// rungCtx derives the per-rung context: the caller's ctx, bounded by the
// budget timeout when one is set.
func (b EstimateBudget) rungCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.Timeout > 0 {
		return context.WithTimeout(ctx, b.Timeout)
	}
	return ctx, func() {}
}

// degradable reports whether an error should trigger a fall to the next
// rung: per-rung deadlines and budget refusals degrade; caller cancellation
// and real failures do not.
func degradable(ctx context.Context, err error) bool {
	if err == nil {
		return false
	}
	// A dead parent context means the caller gave up — don't keep trying.
	if ctx.Err() != nil {
		return false
	}
	return errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrBudgetExceeded)
}

// noteDegradation records one fall down the ladder in the telemetry layer:
// degradations_total{reason=<kind>}, a structured warning naming the skipped
// rung, and — when ctx carries a trace — a "degraded.<rung>" span attribute
// so the flight recorder shows which rung fell and why. No-op cost when
// telemetry is disabled.
func noteDegradation(ctx context.Context, rung, kind, why string) {
	if telemetry.MetricsOn() {
		telemetry.Inc(telemetry.Label("degradations_total", "reason", kind))
	}
	telemetry.SpanAttrStr(ctx, "degraded."+rung, kind+": "+why)
	telemetry.Warn("estimation degraded", "rung", rung, "reason", kind, "detail", why)
}

// markDegraded flags a result obtained below the requested rung and logs
// the method that finally ran.
func markDegraded(res Result, reasons []string) Result {
	if len(reasons) == 0 {
		return res
	}
	res.Degraded = true
	res.DegradeReason = strings.Join(reasons, "; ")
	telemetry.Warn("degraded result", "method", res.Method, "reason", res.DegradeReason)
	return res
}

// EstimateBudgeted estimates a design's statistics under a budget,
// degrading O(n) → O(1) when the linear method is ruled out (early-mode
// estimation has no O(n²) rung). The Result is flagged Degraded when a
// cheaper method than the best available one was used, and every
// degradation is counted in degradations_total{reason=...}.
func (e *Estimator) EstimateBudgeted(ctx context.Context, design Design, budget EstimateBudget) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.EstimateBudgeted")
	if err := design.Validate(); err != nil {
		return Result{}, err
	}
	if e.Tiles < 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, "leakest.EstimateBudgeted",
			"negative Tiles %d", e.Tiles)
	}
	ctx, tr := telemetry.EnsureTrace(ctx)
	ctx, endEst := telemetry.WithSpan(ctx, "estimate")
	defer endEst()
	telemetry.SpanAttrInt(ctx, "gates", int64(design.N))
	defer func() { resultAttrs(ctx, res, err) }()
	m, err := e.newModelCtx(ctx, design)
	if err != nil {
		return Result{}, err
	}
	var reasons []string

	if ok, kind, why := budget.allowsLinear(design.N); !ok {
		noteDegradation(ctx, "o(n)", kind, why)
		reasons = append(reasons, why)
	} else {
		rctx, cancel := budget.rungCtx(ctx)
		if e.Tiles > 1 {
			// Bitwise-identical to the monolithic linear rung (§16), so the
			// ladder semantics are unchanged; the result gains TileStats.
			res, err = m.EstimateTiledCtx(rctx, e.Tiles, nil)
		} else {
			res, err = m.EstimateLinearCtx(rctx)
		}
		cancel()
		if err == nil {
			res = e.finish(markDegraded(res, nil))
			res.Timings = tr.Stages()
			return res, nil
		}
		if !degradable(ctx, err) {
			return Result{}, err
		}
		noteDegradation(ctx, "o(n)", reasonKindOf(err), err.Error())
		reasons = append(reasons, "o(n) "+reasonOf(err))
	}

	res, err = e.constantTime(ctx, m)
	if err != nil {
		return Result{}, err
	}
	res = e.finish(markDegraded(res, reasons))
	res.Timings = tr.Stages()
	return res, nil
}

// TrueLeakageBudgeted computes a placed design's statistics starting from
// the O(n²) true-leakage baseline and degrading down the ladder — O(n²) →
// O(n) → O(1) — whenever a rung trips the budget. The Result records the
// method that finally ran; Degraded and DegradeReason report what was
// skipped and why, and each fall increments degradations_total{reason=...}.
func (e *Estimator) TrueLeakageBudgeted(ctx context.Context, nl *Netlist, pl *Placement, signalProb float64, budget EstimateBudget) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.TrueLeakageBudgeted")
	ctx, tr := telemetry.EnsureTrace(ctx)
	ctx, endTruth := telemetry.WithSpan(ctx, "true_leakage")
	defer endTruth()
	defer func() { resultAttrs(ctx, res, err) }()
	endExtract := telemetry.StartSpan(ctx, "core.extract")
	design, err := e.ExtractDesign(nl, pl, signalProb)
	endExtract()
	if err != nil {
		return Result{}, err
	}
	m, err := e.newModelCtx(ctx, design)
	if err != nil {
		return Result{}, err
	}
	var reasons []string

	// Rung 1: the O(n²) pairwise sum.
	if ok, kind, why := budget.allowsTruth(design.N); !ok {
		noteDegradation(ctx, "o(n²)", kind, why)
		reasons = append(reasons, why)
	} else {
		rctx, cancel := budget.rungCtx(ctx)
		res, err = core.TrueStatsCtx(rctx, m, nl, pl)
		cancel()
		if err == nil {
			res = e.finish(markDegraded(res, nil))
			res.Timings = tr.Stages()
			return res, nil
		}
		if !degradable(ctx, err) {
			return Result{}, err
		}
		noteDegradation(ctx, "o(n²)", reasonKindOf(err), err.Error())
		reasons = append(reasons, "o(n²) "+reasonOf(err))
	}

	// Rung 2: the exact O(n) linear method.
	if ok, kind, why := budget.allowsLinear(design.N); !ok {
		noteDegradation(ctx, "o(n)", kind, why)
		reasons = append(reasons, why)
	} else {
		rctx, cancel := budget.rungCtx(ctx)
		res, err = m.EstimateLinearCtx(rctx)
		cancel()
		if err == nil {
			res = e.finish(markDegraded(res, reasons))
			res.Timings = tr.Stages()
			return res, nil
		}
		if !degradable(ctx, err) {
			return Result{}, err
		}
		noteDegradation(ctx, "o(n)", reasonKindOf(err), err.Error())
		reasons = append(reasons, "o(n) "+reasonOf(err))
	}

	// Rung 3: the constant-time integrals — always within budget.
	res, err = e.constantTime(ctx, m)
	if err != nil {
		return Result{}, err
	}
	res = e.finish(markDegraded(res, reasons))
	res.Timings = tr.Stages()
	return res, nil
}

// resultAttrs stamps the outcome of a budgeted run onto the current span:
// the method that finally ran and, when the ladder fell, the degradation
// flag and reason. Nil-check no-op without a trace.
func resultAttrs(ctx context.Context, res Result, err error) {
	if err != nil {
		return
	}
	telemetry.SpanAttrStr(ctx, "method", res.Method)
	if res.Degraded {
		telemetry.SpanAttrBool(ctx, "degraded", true)
		telemetry.SpanAttrStr(ctx, "degrade_reason", res.DegradeReason)
	}
}

// constantTime runs the O(1) rung: the polar integral when the correlation
// range permits it, the 2-D rectangular integral otherwise.
func (e *Estimator) constantTime(ctx context.Context, m *core.Model) (Result, error) {
	if res, err := m.EstimatePolarCtx(ctx); err == nil {
		return res, nil
	}
	return m.EstimateIntegral2DCtx(ctx)
}

// reasonOf renders a degradation cause for DegradeReason.
func reasonOf(err error) string {
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		return "timed out"
	case errors.Is(err, ErrBudgetExceeded):
		return "over budget: " + err.Error()
	default:
		return err.Error()
	}
}

// reasonKindOf classifies a degradation cause for the metrics label.
func reasonKindOf(err error) string {
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		return reasonTimeout
	case errors.Is(err, ErrBudgetExceeded):
		return reasonBudget
	default:
		return reasonOther
	}
}
