package leakest

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leakest/internal/cells"
	"leakest/internal/charlib"
)

// coreEstimator builds an estimator over the fast shared-core library.
func coreEstimator(t *testing.T) *Estimator {
	t.Helper()
	lib, err := charlib.SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func coreHist(t *testing.T) *Histogram {
	t.Helper()
	h, err := NewHistogram(map[string]float64{
		"INV_X1": 3, "NAND2_X1": 2, "NOR2_X1": 2, "XOR2_X1": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(nil, nil); err == nil {
		t.Errorf("nil library accepted")
	}
	lib, _ := charlib.SharedCore()
	bad := &Process{LNominal: -1}
	if _, err := NewEstimator(lib, bad); err == nil {
		t.Errorf("invalid process accepted")
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Process() != lib.Process || est.Library() != lib {
		t.Errorf("accessors wrong")
	}
}

func TestEstimateAllMethods(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	var linear Result
	for _, method := range []Method{Linear, Integral2D, Naive, Auto} {
		res, err := est.Estimate(design, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !(res.Mean > 0 && res.Std > 0) {
			t.Errorf("%v: degenerate result %+v", method, res)
		}
		if method == Linear {
			linear = res
		}
	}
	// All correlated methods must agree on the mean exactly.
	integ, _ := est.Estimate(design, Integral2D)
	if integ.Mean != linear.Mean {
		t.Errorf("means differ across methods: %g vs %g", integ.Mean, linear.Mean)
	}
	// And the naive baseline must report smaller σ.
	naive, _ := est.Estimate(design, Naive)
	if naive.Std >= linear.Std {
		t.Errorf("naive σ %g not below correlated %g", naive.Std, linear.Std)
	}
	// Unknown method.
	if _, err := est.Estimate(design, Method(99)); err == nil {
		t.Errorf("unknown method accepted")
	}
}

func TestAutoSwitchesMethod(t *testing.T) {
	est := coreEstimator(t)
	small := Design{Hist: coreHist(t), N: 100, W: 20, H: 20, SignalProb: 0.5}
	res, err := est.Estimate(small, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "linear" {
		t.Errorf("auto small design used %s", res.Method)
	}
	big := Design{Hist: coreHist(t), N: 250000, W: 1000, H: 1000, SignalProb: 0.5}
	res, err = est.Estimate(big, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Method, "polar") && !strings.Contains(res.Method, "integral") {
		t.Errorf("auto large design used %s", res.Method)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Auto: "auto", Linear: "linear", Integral2D: "integral-2d",
		Polar: "polar-1d", Naive: "naive",
	} {
		if m.String() != want {
			t.Errorf("Method(%d) = %s, want %s", int(m), m, want)
		}
	}
}

func TestLateModeFlow(t *testing.T) {
	est := coreEstimator(t)
	nl, err := RandomCircuit(est.Library(), 17, "late", 400, 16, coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := AutoPlace(nl, 17)
	if err != nil {
		t.Fatal(err)
	}
	design, err := est.ExtractDesign(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if design.N != 400 {
		t.Errorf("extracted N = %d", design.N)
	}
	late, err := est.EstimateNetlist(nl, pl, 0.5, Linear)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := est.TrueLeakage(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := math.Abs(100 * (late.Mean - truth.Mean) / truth.Mean)
	stdErr := math.Abs(100 * (late.Std - truth.Std) / truth.Std)
	t.Logf("late-mode: mean err %.2f%%, std err %.2f%%", meanErr, stdErr)
	if meanErr > 3 || stdErr > 8 {
		t.Errorf("late-mode errors too large: mean %.2f%%, std %.2f%%", meanErr, stdErr)
	}
}

func TestMonteCarloFacade(t *testing.T) {
	est := coreEstimator(t)
	nl, err := RandomCircuit(est.Library(), 23, "mc", 100, 8, coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := AutoPlace(nl, 23)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := est.MonteCarlo(nl, pl, 0.5, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := est.TrueLeakage(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Mean-truth.Mean)/truth.Mean > 0.1 {
		t.Errorf("MC mean %g far from analytic %g", mc.Mean, truth.Mean)
	}
}

func TestVtMeanCorrection(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 400, W: 40, H: 40, SignalProb: 0.5}
	plain, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	est.ApplyVtMean = true
	corrected, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	factor := est.VtMeanFactor()
	if factor <= 1 {
		t.Fatalf("factor = %g", factor)
	}
	if math.Abs(corrected.Mean-plain.Mean*factor)/corrected.Mean > 1e-12 {
		t.Errorf("corrected mean %g != plain %g × %g", corrected.Mean, plain.Mean, factor)
	}
	if corrected.Std != plain.Std {
		t.Errorf("Vt correction must not change σ")
	}
	if !strings.Contains(corrected.Note, "random-Vt") {
		t.Errorf("missing note: %q", corrected.Note)
	}
}

func TestMaxLeakageSignalProb(t *testing.T) {
	est := coreEstimator(t)
	p, err := est.MaxLeakageSignalProb(coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Fatalf("p* = %g", p)
	}
	mStar, _, err := est.DesignStatsAtSignalProb(coreHist(t), p)
	if err != nil {
		t.Fatal(err)
	}
	mHalf, _, _ := est.DesignStatsAtSignalProb(coreHist(t), 0.5)
	if mStar < mHalf*(1-1e-9) {
		t.Errorf("p* mean %g below p=0.5 mean %g", mStar, mHalf)
	}
}

func TestBenchIO(t *testing.T) {
	est := coreEstimator(t)
	nl, err := RandomCircuit(est.Library(), 5, "io", 60, 8, coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench(bytes.NewReader(buf.Bytes()), "io")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Gates) != len(nl.Gates) {
		t.Errorf("round trip: %d vs %d gates", len(back.Gates), len(nl.Gates))
	}
}

func TestISCASFacade(t *testing.T) {
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 160 || len(pl.Site) != 160 {
		t.Errorf("c432 shape wrong: %d gates, %d sites", len(nl.Gates), len(pl.Site))
	}
	if _, _, err := ISCASCircuit(lib, "bogus", 3); err == nil {
		t.Errorf("bogus circuit accepted")
	}
	if names := ISCASNames(); len(names) != 10 {
		t.Errorf("ISCASNames = %v", names)
	}
}

func TestLibrarySaveLoadFacade(t *testing.T) {
	lib, err := charlib.SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := SaveLibrary(lib, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLibrary(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(lib.Cells) {
		t.Errorf("round trip lost cells")
	}
	if err := SaveLibrary(nil, path); err == nil {
		t.Errorf("nil library accepted")
	}
}

func TestBuiltinCellsAndCharacterize(t *testing.T) {
	if got := len(BuiltinCells()); got != 62 {
		t.Errorf("BuiltinCells = %d, want 62", got)
	}
	// Characterize a one-cell library through the public API.
	sub := []*Cell{cells.CoreSubset()[0]}
	lib, err := Characterize(sub, CharConfig{Process: DefaultProcess(), MCSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 1 {
		t.Errorf("characterized %d cells", len(lib.Cells))
	}
}

func TestTrimExt(t *testing.T) {
	for in, want := range map[string]string{
		"/a/b/c432.bench": "c432",
		"c17.bench":       "c17",
		"noext":           "noext",
		"/p/q/noext":      "noext",
	} {
		if got := trimExt(in); got != want {
			t.Errorf("trimExt(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPolarRequiresFit(t *testing.T) {
	est := coreEstimator(t)
	// Default process correlation range is 4000 µm — wider than this die.
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}
	if _, err := est.Estimate(design, Polar); err == nil {
		t.Errorf("polar accepted an over-wide correlation range")
	}
}

func TestReadBenchFile(t *testing.T) {
	est := coreEstimator(t)
	nl, err := RandomCircuit(est.Library(), 2, "filetest", 40, 8, coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "filetest.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "filetest" {
		t.Errorf("name from path = %q", back.Name)
	}
	if len(back.Gates) != len(nl.Gates) {
		t.Errorf("gates lost: %d vs %d", len(back.Gates), len(nl.Gates))
	}
	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "missing.bench")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestDistributionAndBreakdownFacade(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 400, W: 40, H: 40, SignalProb: 0.5}
	res, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DistributionOf(res)
	if err != nil {
		t.Fatal(err)
	}
	if !(d.Quantile(0.99) > res.Mean) {
		t.Errorf("p99 %g not above mean %g", d.Quantile(0.99), res.Mean)
	}
	bd, err := est.Breakdown(design)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Total-res.Std*res.Std)/(res.Std*res.Std) > 1e-9 {
		t.Errorf("breakdown total %g vs σ² %g", bd.Total, res.Std*res.Std)
	}
	badDesign := design
	badDesign.N = 0
	if _, err := est.Breakdown(badDesign); err == nil {
		t.Errorf("invalid design accepted by Breakdown")
	}
}

func TestFastTrueLeakageFacade(t *testing.T) {
	est := coreEstimator(t)
	nl, err := RandomCircuit(est.Library(), 31, "fast", 300, 16, coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := AutoPlace(nl, 31)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := est.TrueLeakage(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := est.FastTrueLeakage(nl, pl, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Mean != exact.Mean {
		t.Errorf("means differ: %g vs %g", fast.Mean, exact.Mean)
	}
	if e := math.Abs(fast.Std-exact.Std) / exact.Std; e > 0.01 {
		t.Errorf("tiled σ off by %.3f%%", 100*e)
	}
	// Vt mean factor path: both apply it consistently.
	est.ApplyVtMean = true
	f1, err := est.TrueLeakage(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := est.FastTrueLeakage(nl, pl, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1.Mean-f2.Mean)/f1.Mean > 1e-12 {
		t.Errorf("Vt factor applied inconsistently")
	}
	est.ApplyVtMean = false
}

func TestSetMode(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 400, W: 40, H: 40, SignalProb: 0.5}
	a, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	est.SetMode(MCSimplified)
	b, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if a.Std == b.Std {
		t.Errorf("mode switch had no effect on σ")
	}
	est.SetMode(Analytic)
}

func TestReport(t *testing.T) {
	est := coreEstimator(t)
	est.ApplyVtMean = true
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.45}
	var buf bytes.Buffer
	if err := est.Report(&buf, "", design); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Full-chip leakage sign-off",
		"## Design characteristics",
		"| cells | 2500 |",
		"## Estimates",
		"| linear |",
		"| integral-2d |",
		"| naive |",
		"## Leakage distribution",
		"| p99 |",
		"## Variance breakdown",
		"## Yield vs leakage budget",
		"Budget for 95% yield",
		"random-Vt mean factor",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Polar does not apply at this geometry: the report notes the failure
	// rather than erroring out.
	if !strings.Contains(out, "| polar-1d | — ") {
		t.Errorf("report should note the polar failure:\n%s", out)
	}
	// Custom title.
	buf.Reset()
	if err := est.Report(&buf, "My Chip", design); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# My Chip") {
		t.Errorf("custom title not used")
	}
	est.ApplyVtMean = false
}

func TestReportAllMethodsFail(t *testing.T) {
	est := coreEstimator(t)
	bad := Design{Hist: coreHist(t), N: 0}
	var buf bytes.Buffer
	if err := est.Report(&buf, "", bad); err == nil {
		t.Errorf("invalid design produced a report")
	}
}
