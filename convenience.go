package leakest

import (
	"context"
	"fmt"
	"io"
	"os"

	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/core"
	"leakest/internal/iscas"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// arityOf builds the pin-count lookup the netlist substrate needs from a
// characterized library.
func arityOf(lib *Library) netlist.CellArity {
	return func(typ string) (int, error) {
		cc, err := lib.Cell(typ)
		if err != nil {
			return 0, err
		}
		return cc.NumInputs, nil
	}
}

// RandomCircuit generates a random netlist of n gates whose types follow
// hist — a member of the paper's "set of all designs sharing the same
// high-level characteristics".
func RandomCircuit(lib *Library, seed int64, name string, n, numPI int, hist *Histogram) (*Netlist, error) {
	rng := stats.NewRNG(seed, "public/"+name)
	return netlist.RandomCircuit(rng, name, n, numPI, hist, arityOf(lib))
}

// AutoPlace places a netlist's gates on distinct uniformly random sites of
// an automatically sized square grid at the default site pitch.
func AutoPlace(nl *Netlist, seed int64) (*Placement, error) {
	defer telemetry.TimeStage("placement.autoplace")()
	grid, err := placement.AutoGrid(len(nl.Gates))
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, "place/"+nl.Name)
	return placement.Random(rng, grid, len(nl.Gates))
}

// ReadBench parses an ISCAS85 ".bench" netlist, mapping generic Boolean
// operators to the built-in library's X1 cells.
func ReadBench(r io.Reader, name string) (*Netlist, error) {
	return netlist.ReadBench(r, name, netlist.DefaultTechMap())
}

// ReadBenchFile parses a ".bench" netlist from a file.
func ReadBenchFile(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBench(f, trimExt(path))
}

// WriteBench renders a netlist in ISCAS85 ".bench" format.
func WriteBench(w io.Writer, nl *Netlist) error {
	return netlist.WriteBench(w, nl, netlist.DefaultTechMap())
}

func trimExt(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}

// StreamHeader is the design line of a leakest-stream placed netlist (the
// streaming tile-ordered interchange of DESIGN.md §16).
type StreamHeader = netlist.StreamHeader

// WriteStream renders a placed netlist in leakest-stream format: gates
// grouped by the tiles×tiles partition in tile-index order, ready for
// EstimateStream.
func WriteStream(w io.Writer, nl *Netlist, pl *Placement, tiles int) error {
	return netlist.WritePlaced(w, nl, pl, tiles)
}

// WriteSyntheticStream streams a synthetic placed design of the given gate
// count straight to w — the generator behind the multi-million-gate scale
// experiments — occupying the first gates sites in tile order with cell
// types assigned round-robin.
func WriteSyntheticStream(w io.Writer, name string, rows, cols int, siteW, siteH float64, tiles int, types []string, gates int) error {
	return netlist.WriteSyntheticStream(w, name, rows, cols, siteW, siteH, tiles, types, gates)
}

// EstimateStream performs late-mode estimation from a leakest-stream placed
// netlist without materializing it. One pass over the stream accumulates the
// cell-usage histogram, the gate count, and the per-tile gate populations —
// peak memory is O(cell types) + O(tiles²) + O(scan buffer), independent of
// the gate count — then the tiled linear estimator of DESIGN.md §16 combines
// per-tile moments exactly through the inter-tile covariance. The global
// moments are bitwise identical to the monolithic linear estimator fed the
// same (histogram, N, W, H); Result.TileStats carries the per-tile picture
// using the stream's actual per-tile populations when the model partition
// matches the stream's (it does whenever the header's tiles fit both grid
// dimensions).
func (e *Estimator) EstimateStream(ctx context.Context, r io.Reader, signalProb float64) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.EstimateStream")
	ctx, tr := telemetry.EnsureTrace(ctx)
	ctx, endEst := telemetry.WithSpan(ctx, "estimate.stream")
	defer endEst()

	endScan := telemetry.StartSpan(ctx, "netlist.stream_scan")
	// Per-type tallies live in a small linear-scanned slice, not a map: the
	// comparison `names[i] == string(typ)` compiles without materializing
	// the key, so the per-gate callback stays allocation-free (a map
	// increment would allocate one string per gate).
	var (
		typeNames []string
		typeTally []float64
		tileGates []int
		rep       *telemetry.Reporter
		seen      int64
	)
	hdr, err := netlist.ScanPlaced(r, netlist.StreamVisitor{
		Design: func(h StreamHeader) error {
			tileGates = make([]int, len(placement.Partition(h.Grid(), h.Tiles)))
			rep = telemetry.StartProgress(ctx, "netlist.stream_scan", int64(h.Gates))
			return nil
		},
		Gate: func(ti int, typ []byte, _, _ int) error {
			idx := -1
			for i := range typeNames {
				if typeNames[i] == string(typ) {
					idx = i
					break
				}
			}
			if idx >= 0 {
				typeTally[idx]++
			} else {
				typeNames = append(typeNames, string(typ))
				typeTally = append(typeTally, 1)
			}
			tileGates[ti]++
			seen++
			if seen%(1<<16) == 0 {
				rep.Tick(seen)
				return ctx.Err()
			}
			return nil
		},
	})
	rep.Done(seen)
	endScan()
	if err != nil {
		if cerr := lkerr.FromContext(ctx, "leakest.EstimateStream"); cerr != nil {
			return Result{}, cerr
		}
		return Result{}, err
	}
	telemetry.SamplePeakAlloc()
	telemetry.SpanAttrInt(ctx, "gates", int64(hdr.Gates))
	telemetry.SpanAttrInt(ctx, "tiles", int64(len(tileGates)))

	typeCounts := make(map[string]float64, len(typeNames))
	for i, name := range typeNames {
		typeCounts[name] = typeTally[i]
	}
	hist, err := stats.NewHistogram(typeCounts)
	if err != nil {
		return Result{}, err
	}
	design := Design{
		Hist:       hist,
		N:          hdr.Gates,
		W:          float64(hdr.Cols) * hdr.SiteW,
		H:          float64(hdr.Rows) * hdr.SiteH,
		SignalProb: signalProb,
	}
	if err := design.Validate(); err != nil {
		return Result{}, err
	}
	m, err := e.newModelCtx(ctx, design)
	if err != nil {
		return Result{}, err
	}
	// The stream's per-tile populations apply when the model grid admits the
	// same tiles×tiles partition as the site grid; on degenerate shapes fall
	// back to the estimator's own largest-remainder allocation.
	counts := tileGates
	if len(counts) != m.TiledPartitionLen(hdr.Tiles) {
		counts = nil
	}
	res, err = m.EstimateTiledCtx(ctx, hdr.Tiles, counts)
	if err != nil {
		return Result{}, err
	}
	telemetry.SamplePeakAlloc()
	res = e.finish(res)
	telemetry.SpanAttrStr(ctx, "method", res.Method)
	res.Timings = tr.Stages()
	return res, nil
}

// ISCASCircuit synthesizes one of the ISCAS85 stand-in benchmarks (c432 …
// c7552) with its published gate count and a function-appropriate cell mix,
// placed on the uniform site grid. Deterministic per seed.
func ISCASCircuit(lib *Library, name string, seed int64) (*Netlist, *Placement, error) {
	ckt, err := iscas.Build(name, seed, arityOf(lib))
	if err != nil {
		return nil, nil, err
	}
	return ckt.Netlist, ckt.Placement, nil
}

// ISCASNames lists the available benchmark circuits, smallest first.
func ISCASNames() []string { return iscas.Names() }

// MonteCarloResult summarizes a full-chip Monte-Carlo run.
type MonteCarloResult = chipmc.Result

// TailStats is the distribution-tail summary — quantiles, exceedance at a
// spec, importance-sampling diagnostics — attached to MonteCarloResult.Tail
// when the estimator's Spec/Quantiles/TailTrials fields request it.
type TailStats = chipmc.TailStats

// QuantilePoint is one reported leakage quantile.
type QuantilePoint = chipmc.QuantilePoint

// TailConfig is the full tail-estimation configuration (spec, quantile
// list, importance-sampled trial budget, tilt override, ESS floor).
type TailConfig = chipmc.TailConfig

// MCSampler selects how the Monte Carlo constructs the correlated
// channel-length field per trial (see the Estimator.Sampler field).
type MCSampler = chipmc.Sampler

// The sampler choices: SamplerAuto picks per design, SamplerDense forces
// the O(n³)-setup dense-Cholesky reference, SamplerFFT forces the
// O(S log S) circulant-embedding grid sampler, and SamplerQMC draws trials
// from a scrambled-Sobol low-discrepancy sequence with batched FFT pair
// fields — same distribution, materially fewer trials to a given standard
// error (see the Estimator.Batch field).
const (
	SamplerAuto  = chipmc.SamplerAuto
	SamplerDense = chipmc.SamplerDense
	SamplerFFT   = chipmc.SamplerFFT
	SamplerQMC   = chipmc.SamplerQMC
)

// ParseSampler maps a flag-style name ("auto", "dense", "fft", "qmc") to
// the corresponding MCSampler, with a typed InvalidInput error on anything
// else.
func ParseSampler(name string) (MCSampler, error) { return chipmc.ParseSampler(name) }

// MonteCarlo samples the full-chip leakage distribution of a placed design
// directly: a spatially correlated channel-length field is drawn per trial
// and every gate's leakage is evaluated from its characterization curve.
// Small designs use a dense field factorization; larger ones (up to
// hundreds of thousands of gates) use the FFT grid sampler, per the
// estimator's Sampler setting. It serves as an independent ground truth
// for the analytic estimators.
func (e *Estimator) MonteCarlo(nl *Netlist, pl *Placement, signalProb float64, samples int, seed int64) (MonteCarloResult, error) {
	return e.MonteCarloContext(context.Background(), nl, pl, signalProb, samples, seed)
}

// MonteCarloContext is MonteCarlo with cancellation: ctx is checked once
// per covariance-assembly row and once per chip-level trial, so a cancel or
// deadline stops the run within one check interval. Oversized designs
// (beyond the selected sampler's gate limit) return a typed BudgetExceeded
// error suggesting the analytic estimators.
func (e *Estimator) MonteCarloContext(ctx context.Context, nl *Netlist, pl *Placement, signalProb float64, samples int, seed int64) (res MonteCarloResult, err error) {
	defer lkerr.RecoverInto(&err, "leakest.MonteCarlo")
	return chipmc.RunContext(ctx, chipmc.Config{
		Lib:        e.lib,
		Proc:       e.proc,
		SignalProb: signalProb,
		Samples:    samples,
		Seed:       seed,
		Workers:    e.Workers,
		Sampler:    e.Sampler,
		Batch:      e.Batch,
		Tiles:      e.Tiles,
		Tail:       e.tailConfig(),
	}, nl, pl)
}

// MonteCarloBudgeted is MonteCarloContext with an explicit gate budget:
// designs larger than maxGates are refused up front with a typed
// BudgetExceeded error naming the limit, instead of attempting the field
// construction. maxGates ≤ 0 selects the active sampler's default limit.
func (e *Estimator) MonteCarloBudgeted(ctx context.Context, nl *Netlist, pl *Placement, signalProb float64, samples int, seed int64, maxGates int) (res MonteCarloResult, err error) {
	defer lkerr.RecoverInto(&err, "leakest.MonteCarlo")
	return chipmc.RunContext(ctx, chipmc.Config{
		Lib:        e.lib,
		Proc:       e.proc,
		SignalProb: signalProb,
		Samples:    samples,
		Seed:       seed,
		MaxGates:   maxGates,
		Workers:    e.Workers,
		Sampler:    e.Sampler,
		Batch:      e.Batch,
		Tiles:      e.Tiles,
		Tail:       e.tailConfig(),
	}, nl, pl)
}

// DesignStatsAtSignalProb returns the per-gate effective leakage mean and
// standard deviation of a design histogram at signal probability p — the
// quantity swept in the paper's Fig. 3.
func (e *Estimator) DesignStatsAtSignalProb(hist *Histogram, p float64) (mean, std float64, err error) {
	return charlib.DesignStatsAtP(e.lib, hist, p, e.mode == MCSimplified)
}

// SaveLibrary writes a characterized library to a file for reuse by the
// command-line tools.
func SaveLibrary(lib *Library, path string) error {
	if lib == nil {
		return fmt.Errorf("leakest: nil library")
	}
	return lib.SaveFile(path)
}

// Distribution is a two-moment lognormal picture of full-chip leakage,
// providing quantiles, exceedance probabilities and yield budgets on top of
// the estimated (mean, σ).
type Distribution = core.Distribution

// VarianceBreakdown decomposes the leakage variance into independent,
// die-to-die, and within-die-correlation contributions.
type VarianceBreakdown = core.VarianceBreakdown

// DistributionOf matches a lognormal distribution to an estimation result
// (the Wilkinson/Fenton approximation; validated against the full-chip
// Monte Carlo).
func DistributionOf(r Result) (Distribution, error) { return core.DistributionOf(r) }

// Breakdown returns the variance decomposition of a design under the
// linear-time estimator, explaining how much of the spread is independent
// noise, shared die-to-die shift, and within-die correlation.
func (e *Estimator) Breakdown(design Design) (VarianceBreakdown, error) {
	m, err := e.model(design)
	if err != nil {
		return VarianceBreakdown{}, err
	}
	return m.BreakdownLinear()
}

// FastTrueLeakage approximates the O(n²) true leakage by spatial tiling
// (tile edge in µm; 0 selects an automatic fraction of the correlation
// length). It trades sub-percent σ accuracy for near-linear runtime on
// large placed designs.
func (e *Estimator) FastTrueLeakage(nl *Netlist, pl *Placement, signalProb, tile float64) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.FastTrueLeakage")
	design, err := e.ExtractDesign(nl, pl, signalProb)
	if err != nil {
		return Result{}, err
	}
	m, err := e.model(design)
	if err != nil {
		return Result{}, err
	}
	res, err = core.FastTrueStats(m, nl, pl, tile)
	if err != nil {
		return Result{}, err
	}
	return e.finish(res), nil
}

// Block is one rectangular region of a heterogeneous floorplan, with its
// own cell population (see EstimateFloorplan).
type Block = core.Block

// FloorplanResult carries combined and per-block floorplan statistics.
type FloorplanResult = core.FloorplanResult

// EstimateFloorplan performs floorplan-level early estimation: each
// non-overlapping block is its own Random-Gate population, intra-block
// variance is exact (linear method) and inter-block covariance is
// aggregated over block tiles. An extension of the paper's single-
// population model to heterogeneous chips; validated against placed-design
// truth in the core tests.
func (e *Estimator) EstimateFloorplan(blocks []Block) (FloorplanResult, error) {
	fp, err := core.EstimateFloorplan(e.lib, e.proc, blocks, e.mode)
	if err != nil {
		return FloorplanResult{}, err
	}
	fp.Total = e.finish(fp.Total)
	return fp, nil
}
