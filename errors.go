package leakest

import "leakest/internal/lkerr"

// ErrorCode classifies every failure that can escape the public API. Use
// CodeOf or the Err* sentinels with errors.Is to branch on the class:
//
//	res, err := est.EstimateContext(ctx, design, leakest.Auto)
//	switch {
//	case errors.Is(err, leakest.ErrInvalidInput):
//		// fix the design spec
//	case errors.Is(err, leakest.ErrCanceled):
//		// the caller's ctx was canceled
//	case errors.Is(err, leakest.ErrBudgetExceeded):
//		// too big for the requested method; try an analytic estimator
//	}
type ErrorCode = lkerr.Code

// EstimationError is the concrete typed error; errors.As extracts it to
// read the faulting site (Op) and message.
type EstimationError = lkerr.Error

// Error codes.
const (
	// CodeInvalidInput marks a caller error (out-of-range parameters,
	// empty histograms, inconsistent netlist/placement pairs).
	CodeInvalidInput = lkerr.InvalidInput
	// CodeNumerical marks an internal numeric failure (NaN/Inf from a
	// kernel, non-positive-definite covariance, recovered panic).
	CodeNumerical = lkerr.Numerical
	// CodeCanceled means the caller's context was canceled mid-computation.
	CodeCanceled = lkerr.Canceled
	// CodeDeadlineExceeded means a deadline or budget timeout expired.
	CodeDeadlineExceeded = lkerr.DeadlineExceeded
	// CodeBudgetExceeded means a size budget ruled the computation out.
	CodeBudgetExceeded = lkerr.BudgetExceeded
	// CodeDegraded marks an exhausted degradation ladder.
	CodeDegraded = lkerr.Degraded
)

// Sentinel errors for errors.Is; each matches every error of its class.
// Canceled and DeadlineExceeded errors additionally satisfy
// errors.Is(err, context.Canceled) and errors.Is(err, context.DeadlineExceeded).
var (
	ErrInvalidInput     = lkerr.ErrInvalidInput
	ErrNumerical        = lkerr.ErrNumerical
	ErrCanceled         = lkerr.ErrCanceled
	ErrDeadlineExceeded = lkerr.ErrDeadlineExceeded
	ErrBudgetExceeded   = lkerr.ErrBudgetExceeded
	ErrDegraded         = lkerr.ErrDegraded
)

// CodeOf extracts the ErrorCode from an error chain; 0 means unclassified.
func CodeOf(err error) ErrorCode { return lkerr.CodeOf(err) }
