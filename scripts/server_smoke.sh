#!/usr/bin/env bash
# server_smoke.sh — end-to-end smoke test for leakestd, the estimation
# service. Builds the binary, boots it on a loopback port, and verifies:
#
#   1. POST /v1/estimate on a small histogram design answers 200 with
#      finite moments;
#   2. concurrent duplicate requests are collapsed by the singleflight
#      artifact cache (exactly one library characterization, the rest
#      served as cache hits — read off /metrics);
#   3. a placed .bench design with a tail request answers the `tail` block:
#      quantiles, then an exceedance at a spec placed from the sampled Q90
#      with a healthy importance-sampled estimate;
#   4. SIGTERM drains and the process exits 0.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building leakestd"
go build -o "$tmp/leakestd" ./cmd/leakestd

echo "== starting leakestd"
"$tmp/leakestd" -addr 127.0.0.1:0 -cells iscas -char-mc 2000 -workers 2 \
  >"$tmp/log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$tmp/log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$tmp/log" >&2; echo "leakestd died on startup" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { cat "$tmp/log" >&2; echo "leakestd never reported its address" >&2; exit 1; }
echo "   listening on $addr"

body='{"design":{"hist":{"INV_X1":3,"NAND2_X1":2,"NOR2_X1":1},"n":2000,"w_um":500,"h_um":500}}'

echo "== POST /v1/estimate (small histogram design)"
code=$(curl -s -o "$tmp/resp1.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/estimate")
[ "$code" = 200 ] || { cat "$tmp/resp1.json" >&2; echo "estimate answered $code, want 200" >&2; exit 1; }
grep -Eq '"mean_a": *[0-9]' "$tmp/resp1.json" || { cat "$tmp/resp1.json" >&2; echo "no finite mean in response" >&2; exit 1; }
grep -Eq '"std_a": *[0-9]'  "$tmp/resp1.json" || { cat "$tmp/resp1.json" >&2; echo "no finite std in response" >&2; exit 1; }
echo "   200 with finite moments"

echo "== 4 concurrent duplicate requests (singleflight check)"
for i in 1 2 3 4; do
  curl -s -o "$tmp/dup$i.json" -H 'Content-Type: application/json' \
    -d "$body" "http://$addr/v1/estimate" &
done
wait $(jobs -p | grep -v "^$pid$") 2>/dev/null || true
for i in 1 2 3 4; do
  grep -Eq '"mean_a": *[0-9]' "$tmp/dup$i.json" || { cat "$tmp/dup$i.json" >&2; echo "duplicate $i lacks a finite mean" >&2; exit 1; }
done

curl -s "http://$addr/metrics" >"$tmp/metrics"
misses=$(sed -n 's/^server_cache_misses_total{artifact="library"} //p' "$tmp/metrics")
hits=$(sed -n 's/^server_cache_hits_total{artifact="library"} //p' "$tmp/metrics")
[ "${misses:-0}" = 1 ] || { echo "library characterized ${misses:-0} times across 5 requests, want exactly 1 (singleflight)" >&2; exit 1; }
[ "${hits:-0}" -ge 4 ] || { echo "library cache hits ${hits:-0}, want >= 4" >&2; exit 1; }
echo "   1 characterization, $hits cache hits across 5 requests"

echo "== /debug/traces flight recorder"
rid=$(sed -n 's/.*"request_id": *"\([^"]*\)".*/\1/p' "$tmp/resp1.json" | head -n1)
[ -n "$rid" ] || { cat "$tmp/resp1.json" >&2; echo "no request_id in estimate response" >&2; exit 1; }
curl -s "http://$addr/debug/traces" >"$tmp/traces.json"
go run ./scripts/jsoncheck.go "$tmp/traces.json"
grep -q "\"$rid\"" "$tmp/traces.json" || { cat "$tmp/traces.json" >&2; echo "trace $rid missing from /debug/traces listing" >&2; exit 1; }
code=$(curl -s -o "$tmp/trace.json" -w '%{http_code}' "http://$addr/debug/traces/$rid")
[ "$code" = 200 ] || { cat "$tmp/trace.json" >&2; echo "GET /debug/traces/$rid answered $code, want 200" >&2; exit 1; }
go run ./scripts/jsoncheck.go "$tmp/trace.json"
grep -q '"spans"' "$tmp/trace.json" || { cat "$tmp/trace.json" >&2; echo "recorded trace has no span tree" >&2; exit 1; }
code=$(curl -s -o "$tmp/trace_chrome.json" -w '%{http_code}' "http://$addr/debug/traces/$rid?format=chrome")
[ "$code" = 200 ] || { cat "$tmp/trace_chrome.json" >&2; echo "Chrome export answered $code, want 200" >&2; exit 1; }
go run ./scripts/jsoncheck.go -array "$tmp/trace_chrome.json"
echo "   trace $rid retrievable; Chrome export parses as JSON"

echo "== tail estimation (quantiles, exceedance, importance sampling)"
bench='INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\ng1 = NAND(a, b)\ng2 = NOT(g1)\ng3 = NOR(g2, c)\ng4 = AND(g1, g3)\nf = NAND(g2, g4)\n'
tail1="{\"bench\":\"$bench\",\"mc_samples\":3000,\"seed\":7,\"tail\":{\"quantiles\":[0.5,0.9]}}"
code=$(curl -s -o "$tmp/tail1.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -d "$tail1" "http://$addr/v1/estimate")
[ "$code" = 200 ] || { cat "$tmp/tail1.json" >&2; echo "tail quantile request answered $code, want 200" >&2; exit 1; }
go run ./scripts/jsoncheck.go "$tmp/tail1.json"
q50=$(go run ./scripts/jsoncheck.go -get monte_carlo.tail.quantiles.0.value_a "$tmp/tail1.json")
q90=$(go run ./scripts/jsoncheck.go -get monte_carlo.tail.quantiles.1.value_a "$tmp/tail1.json")
awk -v a="$q50" -v b="$q90" 'BEGIN { exit !(a > 0 && b > a) }' \
  || { cat "$tmp/tail1.json" >&2; echo "quantiles not positive-ascending: Q50=$q50 Q90=$q90" >&2; exit 1; }
echo "   Q50=$q50 A, Q90=$q90 A"

tail2="{\"bench\":\"$bench\",\"mc_samples\":2000,\"seed\":7,\"tail\":{\"spec_a\":$q90,\"is_trials\":4000}}"
code=$(curl -s -o "$tmp/tail2.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -d "$tail2" "http://$addr/v1/estimate")
[ "$code" = 200 ] || { cat "$tmp/tail2.json" >&2; echo "tail exceedance request answered $code, want 200" >&2; exit 1; }
go run ./scripts/jsoncheck.go "$tmp/tail2.json"
pex=$(go run ./scripts/jsoncheck.go -get monte_carlo.tail.p_exceed "$tmp/tail2.json")
src=$(go run ./scripts/jsoncheck.go -get monte_carlo.tail.source "$tmp/tail2.json")
# The spec sits at the sampled Q90, so P[I > spec] ≈ 0.1; a generous band
# keeps the smoke test robust to seed and trial-count changes.
awk -v p="$pex" 'BEGIN { exit !(p > 0.02 && p < 0.4) }' \
  || { cat "$tmp/tail2.json" >&2; echo "p_exceed=$pex outside the sanity band around 0.1" >&2; exit 1; }
[ "$src" = is ] || { cat "$tmp/tail2.json" >&2; echo "tail source $src, want a healthy importance-sampled estimate" >&2; exit 1; }
echo "   P[I > Q90] = $pex (source $src)"

echo "== SIGTERM drain"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" = 0 ] || { cat "$tmp/log" >&2; echo "leakestd exited $rc on SIGTERM, want 0" >&2; exit 1; }
grep -q "drained cleanly" "$tmp/log" || { cat "$tmp/log" >&2; echo "no clean-drain log line" >&2; exit 1; }
echo "   drained cleanly"

echo "server smoke: OK"
