// Command jsoncheck validates that a file parses as JSON, so shell scripts
// (scripts/server_smoke.sh) can check API responses without assuming jq or
// python on the host. With -array the document must additionally be a
// non-empty JSON array — the shape of a Chrome trace-event export.
//
//	go run ./scripts/jsoncheck.go [-array] FILE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	array := flag.Bool("array", false, "require a non-empty JSON array")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck [-array] FILE")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %v\n", err)
		os.Exit(1)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %s: not valid JSON: %v\n", path, err)
		os.Exit(1)
	}
	if *array {
		arr, ok := doc.([]any)
		if !ok {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: not a JSON array\n", path)
			os.Exit(1)
		}
		if len(arr) == 0 {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: empty JSON array\n", path)
			os.Exit(1)
		}
	}
}
