// Command jsoncheck validates that a file parses as JSON, so shell scripts
// (scripts/server_smoke.sh) can check API responses without assuming jq or
// python on the host. With -array the document must additionally be a
// non-empty JSON array — the shape of a Chrome trace-event export. With
// -get PATH the value at a dotted path (object keys and numeric array
// indices, e.g. monte_carlo.tail.quantiles.1.value_a) is printed to stdout;
// a missing path is an error.
//
//	go run ./scripts/jsoncheck.go [-array] [-get PATH] FILE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	array := flag.Bool("array", false, "require a non-empty JSON array")
	get := flag.String("get", "", "print the value at this dotted path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck [-array] [-get PATH] FILE")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %v\n", err)
		os.Exit(1)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %s: not valid JSON: %v\n", path, err)
		os.Exit(1)
	}
	if *array {
		arr, ok := doc.([]any)
		if !ok {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: not a JSON array\n", path)
			os.Exit(1)
		}
		if len(arr) == 0 {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: empty JSON array\n", path)
			os.Exit(1)
		}
	}
	if *get != "" {
		cur := doc
		for _, key := range strings.Split(*get, ".") {
			switch node := cur.(type) {
			case map[string]any:
				v, ok := node[key]
				if !ok {
					fmt.Fprintf(os.Stderr, "jsoncheck: %s: no key %q on path %q\n", path, key, *get)
					os.Exit(1)
				}
				cur = v
			case []any:
				i, err := strconv.Atoi(key)
				if err != nil || i < 0 || i >= len(node) {
					fmt.Fprintf(os.Stderr, "jsoncheck: %s: bad index %q on path %q\n", path, key, *get)
					os.Exit(1)
				}
				cur = node[i]
			default:
				fmt.Fprintf(os.Stderr, "jsoncheck: %s: path %q descends into a scalar at %q\n", path, *get, key)
				os.Exit(1)
			}
		}
		switch v := cur.(type) {
		case float64:
			fmt.Println(strconv.FormatFloat(v, 'g', -1, 64))
		case string:
			fmt.Println(v)
		case bool, nil:
			fmt.Println(v)
		default:
			out, _ := json.Marshal(v)
			fmt.Println(string(out))
		}
	}
}
