GO ?= go

.PHONY: build test check vet race race-parallel fuzz bench conformance qmc-conformance tail-conformance tiled-conformance server-smoke tracecheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the fault-injection registry and shared-library caches are
# concurrency-sensitive).
check: vet race

# conformance is the statistical verification gate: the harness package
# under the race detector, then `leakest verify` at two worker counts (the
# report must be identical — the second run also writes the JSON artifact
# CI uploads). Short mode keeps it CI-sized; run `leakest verify` without
# -short for the full-depth local pass.
conformance:
	$(GO) test -race ./internal/conformance/
	$(GO) run ./cmd/leakest verify -short -workers 1
	$(GO) run ./cmd/leakest verify -short -workers 4 -json CONFORMANCE_leakest.json

# qmc-conformance is the race-enabled gate for the quasi-Monte-Carlo
# sampler, bottom-up: the Sobol/scramble and pair-field unit layers, the
# batched FFT transform, the chipmc qmc path (determinism across worker
# counts and batch sizes, dense-referee agreement, degrade plumbing,
# alloc pins), then the statistical suite — frozen dense/fft referees,
# equal-SE trial ratio, convergence-slope gates, and the degrade
# self-check — first under the race detector, then via `leakest verify
# -qmc` at two worker counts (the reports must be identical; the second
# run writes the JSON artifact CI uploads).
qmc-conformance:
	$(GO) test -race ./internal/randvar/ -run 'Sobol|TopModes|Pair|SetMode|SamplePartial'
	$(GO) test -race ./internal/fft/
	$(GO) test -race ./internal/chipmc/ -run 'TestQMC'
	$(GO) test -race ./internal/conformance/ -run 'QMC'
	$(GO) run ./cmd/leakest verify -qmc -workers 1
	$(GO) run ./cmd/leakest verify -qmc -workers 4 -json QMC_CONFORMANCE_leakest.json

# tail-conformance is the focused race-enabled gate for the distribution-tail
# estimators: the chipmc tail unit tests (IS agreement, fallbacks, weight
# faults, determinism across workers, race hammer), the stats tail
# primitives, and the conformance tail gates including the full-size
# 10⁶-trial brute-force referee (TestTailGatesFull is skipped by -short
# everywhere else, so this target is where it runs under the race detector).
tail-conformance:
	$(GO) test -race ./internal/stats/ -run 'Quantile|Exceedance|Binomial'
	$(GO) test -race ./internal/chipmc/ -run 'TestTail'
	$(GO) test -race . -run 'TestDeterminismTail|TestTailAccumulatorRaceHammer'
	$(GO) test -race ./internal/conformance/ -run 'TestTail'

# tiled-conformance is the race-enabled gate for the §16 tiled pipeline,
# bottom-up: the tile-partition and lag-count layers, the exact tiled
# estimators, the per-tile Monte-Carlo runner (determinism, scratch reuse,
# alloc pins), the streaming netlist reader (including its fuzz seed
# corpus), then the statistical suite — bitwise tiled-vs-monolithic at
# several tile counts, tile-count and worker invariance, the quadrature
# envelope, the tiled MC law vs its serial pairwise reference, the
# streaming round trip, and the mutation self-check — first under the race
# detector, then via `leakest verify -tiled` at two worker counts (the
# reports must be identical; the second run writes the JSON artifact CI
# uploads).
tiled-conformance:
	$(GO) test -race ./internal/placement/ -run 'Tile|Partition'
	$(GO) test -race ./internal/core/ -run 'Tiled'
	$(GO) test -race ./internal/chipmc/ -run 'Tiled'
	$(GO) test -race ./internal/netlist/ -run 'Stream|ScanPlaced'
	$(GO) test -race ./internal/conformance/ -run 'Tiled'
	$(GO) test -race . -run 'TestEstimatorTiles|TestEstimateStream|TestMonteCarloTiles'
	$(GO) run ./cmd/leakest verify -tiled -workers 1
	$(GO) run ./cmd/leakest verify -tiled -workers 4 -json TILED_CONFORMANCE_leakest.json

# server-smoke boots leakestd on a loopback port and exercises the HTTP
# API end to end: a small estimate must answer 200 with finite moments,
# concurrent duplicates must collapse onto one library characterization
# (singleflight, read off /metrics), and SIGTERM must drain to exit 0.
server-smoke:
	./scripts/server_smoke.sh

# tracecheck pins the tracing layer's zero-overhead contract: with no trace,
# no registry and no logger attached, every instrumentation hook — and the
# chipmc trial loop they sit on — must be allocation-free. The AllocsPerRun
# tests fail on any regression, so this is the cheap CI gate for changes that
# touch the disabled telemetry path.
tracecheck:
	$(GO) test ./internal/telemetry/ -run 'TestDisabledTracingAllocFree|TestSpanNoopWhenAllSinksOff'
	$(GO) test ./internal/chipmc/ -run 'TestTrialBodyAllocs|TestQMCTrialBodyAllocs|TestTiledTrialBodyAllocs'
	$(GO) test ./internal/randvar/ -run TestSobolAllocs

# A short fuzz pass over the .bench parser; CI runs the seed corpus via
# `go test`, this target digs further locally.
fuzz:
	$(GO) test -fuzz=FuzzReadBench -fuzztime=30s ./internal/netlist/

# race-parallel is a focused race-detector pass over the deterministic
# worker pool and its four call sites (the full `race` target covers them
# too; this one is the fast CI job for parallel-path changes).
race-parallel:
	$(GO) test -race ./internal/parallel/ ./internal/core/ -run 'Parallel|Sharding|ForEach|Ticker'
	$(GO) test -race . -run 'TestDeterminism|TestParallel|TestWorkersField'

# bench runs every paper benchmark once and leaves a machine-readable
# record in BENCH_leakest.json (name, ns/op, B/op, allocs/op, gate count,
# GOMAXPROCS, worker count) via cmd/benchjson. Set LEAKEST_WORKERS=N to run
# the single-design benchmarks at a fixed pool size (recorded in the
# report); the results are bitwise identical either way. A failed `go test`
# yields no benchmark lines, which benchjson turns back into a non-zero
# exit. The Fig6 and Table1 paper-accuracy benchmarks always run under a
# wall-time budget (≈6× and ≈38× their local times, to absorb CI-host
# noise) so a perf regression in the estimators they sweep fails the
# target; add more gates via BENCHJSON_FLAGS="-budget ChipMCTiled=60s"
# (see cmd/benchjson).
BENCHJSON_BUDGETS = -budget Fig6=30s -budget Table1=5s
BENCHJSON_FLAGS ?=
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson -o BENCH_leakest.json $(BENCHJSON_BUDGETS) $(BENCHJSON_FLAGS)
