GO ?= go

.PHONY: build test check vet race fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the fault-injection registry and shared-library caches are
# concurrency-sensitive).
check: vet race

# A short fuzz pass over the .bench parser; CI runs the seed corpus via
# `go test`, this target digs further locally.
fuzz:
	$(GO) test -fuzz=FuzzReadBench -fuzztime=30s ./internal/netlist/

# bench runs every paper benchmark once and leaves a machine-readable
# record in BENCH_leakest.json (name, ns/op, B/op, allocs/op, gate count)
# via cmd/benchjson. A failed `go test` yields no benchmark lines, which
# benchjson turns back into a non-zero exit.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson -o BENCH_leakest.json
