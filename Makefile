GO ?= go

.PHONY: build test check vet race fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the fault-injection registry and shared-library caches are
# concurrency-sensitive).
check: vet race

# A short fuzz pass over the .bench parser; CI runs the seed corpus via
# `go test`, this target digs further locally.
fuzz:
	$(GO) test -fuzz=FuzzReadBench -fuzztime=30s ./internal/netlist/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
