package leakest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"leakest/internal/fault"
)

// TestBudgetRungBoundaries pins the static admission rules at their exact
// boundaries: a budget equal to the cost is allowed (strict > comparisons),
// one unit less degrades with the matching reason class.
func TestBudgetRungBoundaries(t *testing.T) {
	const n = 100
	exactPairs := pairs(n) // 4950
	cases := []struct {
		name     string
		budget   EstimateBudget
		truthOK  bool
		linearOK bool
		kind     string
	}{
		{"no-limits", EstimateBudget{}, true, true, ""},
		{"pairs-exact", EstimateBudget{MaxPairs: exactPairs}, true, true, ""},
		{"pairs-one-under", EstimateBudget{MaxPairs: exactPairs - 1}, false, true, reasonMaxPairs},
		{"gates-exact", EstimateBudget{MaxGates: n}, true, true, ""},
		{"gates-one-under", EstimateBudget{MaxGates: n - 1}, false, false, reasonMaxGates},
		// MaxPairs only bounds the O(n²) rung; the linear method is immune.
		{"pairs-tiny", EstimateBudget{MaxPairs: 1}, false, true, reasonMaxPairs},
		// Both limits set: the pair limit trips first for the truth rung.
		{"both-under", EstimateBudget{MaxPairs: 1, MaxGates: n - 1}, false, false, reasonMaxPairs},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ok, kind, why := c.budget.allowsTruth(n)
			if ok != c.truthOK {
				t.Errorf("allowsTruth = %v, want %v (%s)", ok, c.truthOK, why)
			}
			if !ok && kind != c.kind {
				t.Errorf("truth degradation kind = %q, want %q", kind, c.kind)
			}
			if ok && why != "" {
				t.Errorf("allowed rung carries a reason: %q", why)
			}
			lok, lkind, _ := c.budget.allowsLinear(n)
			if lok != c.linearOK {
				t.Errorf("allowsLinear = %v, want %v", lok, c.linearOK)
			}
			if !lok && lkind != reasonMaxGates {
				t.Errorf("linear degradation kind = %q, want %q", lkind, reasonMaxGates)
			}
		})
	}
}

// metricDelta samples an int64 metric before/after fn and returns the
// increment.
func metricDelta(key string, fn func()) int64 {
	EnableMetrics()
	before, _ := MetricsSnapshot()[key].(int64)
	fn()
	after, _ := MetricsSnapshot()[key].(int64)
	return after - before
}

// TestTrueLeakageBudgetedGateBoundary runs the full ladder at the exact
// MaxGates boundary: equal to n the O(n²) truth runs undegraded; one less
// rules out both gate-bounded rungs and falls through to the O(1) integral,
// incrementing degradations_total{reason="max-gates"} once per skipped rung.
func TestTrueLeakageBudgetedGateBoundary(t *testing.T) {
	const n = 16
	est, nl, pl := robustCircuit(t, n)

	res, err := est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, EstimateBudget{MaxGates: n})
	if err != nil {
		t.Fatalf("MaxGates=n: %v", err)
	}
	if res.Degraded || res.Method != "true-n2" {
		t.Fatalf("MaxGates=n must run the O(n²) rung undegraded; got method %q, degraded %v (%s)",
			res.Method, res.Degraded, res.DegradeReason)
	}

	var res2 Result
	delta := metricDelta(`degradations_total{reason="max-gates"}`, func() {
		res2, err = est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, EstimateBudget{MaxGates: n - 1})
	})
	if err != nil {
		t.Fatalf("MaxGates=n-1: %v", err)
	}
	if !res2.Degraded {
		t.Fatal("MaxGates=n-1 must degrade")
	}
	if res2.Method != "polar-1d" && res2.Method != "integral-2d" {
		t.Errorf("degraded method = %q, want a constant-time integral", res2.Method)
	}
	if !strings.Contains(res2.DegradeReason, "o(n²) skipped") || !strings.Contains(res2.DegradeReason, "o(n) skipped") {
		t.Errorf("DegradeReason must name both skipped rungs; got %q", res2.DegradeReason)
	}
	if delta != 2 {
		t.Errorf("degradations_total{reason=\"max-gates\"} += %d, want 2 (one per skipped rung)", delta)
	}
}

// TestTrueLeakageBudgetedPairBoundary: MaxPairs exactly at the pair count
// admits the truth; one pair less skips only the O(n²) rung and lands on
// the exact linear method, counting one max-pairs degradation.
func TestTrueLeakageBudgetedPairBoundary(t *testing.T) {
	const n = 16
	est, nl, pl := robustCircuit(t, n)

	res, err := est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, EstimateBudget{MaxPairs: pairs(n)})
	if err != nil {
		t.Fatalf("MaxPairs=pairs(n): %v", err)
	}
	if res.Degraded || res.Method != "true-n2" {
		t.Fatalf("MaxPairs=pairs(n) must admit the O(n²) rung; got %q, degraded %v", res.Method, res.Degraded)
	}

	var res2 Result
	delta := metricDelta(`degradations_total{reason="max-pairs"}`, func() {
		res2, err = est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, EstimateBudget{MaxPairs: pairs(n) - 1})
	})
	if err != nil {
		t.Fatalf("MaxPairs=pairs(n)-1: %v", err)
	}
	if !res2.Degraded || res2.Method != "linear" {
		t.Fatalf("one pair under budget must degrade to the linear rung; got %q, degraded %v", res2.Method, res2.Degraded)
	}
	if delta != 1 {
		t.Errorf("degradations_total{reason=\"max-pairs\"} += %d, want 1", delta)
	}
}

// TestEstimateBudgetedGateBoundary covers the early-mode ladder (no O(n²)
// rung): MaxGates at n runs linear; one under degrades straight to O(1)
// with a single max-gates increment.
func TestEstimateBudgetedGateBoundary(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 100, W: 50, H: 50, SignalProb: 0.5}

	res, err := est.EstimateBudgeted(context.Background(), design, EstimateBudget{MaxGates: design.N})
	if err != nil {
		t.Fatalf("MaxGates=n: %v", err)
	}
	if res.Degraded || res.Method != "linear" {
		t.Fatalf("MaxGates=n must run the linear rung; got %q, degraded %v", res.Method, res.Degraded)
	}

	var res2 Result
	delta := metricDelta(`degradations_total{reason="max-gates"}`, func() {
		res2, err = est.EstimateBudgeted(context.Background(), design, EstimateBudget{MaxGates: design.N - 1})
	})
	if err != nil {
		t.Fatalf("MaxGates=n-1: %v", err)
	}
	if !res2.Degraded {
		t.Fatal("MaxGates=n-1 must degrade")
	}
	if res2.Method != "polar-1d" && res2.Method != "integral-2d" {
		t.Errorf("degraded method = %q, want a constant-time integral", res2.Method)
	}
	if delta != 1 {
		t.Errorf("degradations_total{reason=\"max-gates\"} += %d, want 1 (early mode has one gate-bounded rung)", delta)
	}
}

// TestBudgetTimeoutCountsPerRung: an unmeetable per-rung deadline times out
// the O(n²) and O(n) rungs in turn, lands on the uninterruptible O(1)
// integral, and counts one timeout degradation per fallen rung.
func TestBudgetTimeoutCountsPerRung(t *testing.T) {
	est, nl, pl := robustCircuit(t, 200)

	var res Result
	var err error
	delta := metricDelta(`degradations_total{reason="timeout"}`, func() {
		res, err = est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, EstimateBudget{Timeout: time.Nanosecond})
	})
	if err != nil {
		t.Fatalf("TrueLeakageBudgeted: %v", err)
	}
	if !res.Degraded {
		t.Fatal("a 1 ns per-rung deadline must degrade")
	}
	if res.Method != "polar-1d" && res.Method != "integral-2d" {
		t.Errorf("method = %q, want a constant-time integral", res.Method)
	}
	if !strings.Contains(res.DegradeReason, "timed out") {
		t.Errorf("DegradeReason = %q, want a timeout mention", res.DegradeReason)
	}
	if delta != 2 {
		t.Errorf("degradations_total{reason=\"timeout\"} += %d, want 2", delta)
	}
}

// TestBudgetTimeoutDegradesOnlyTheSlowRung is the per-rung deadline
// boundary: a Sleep fault makes each O(n²) truth row take far longer than
// the budget Timeout, so that rung alone blows its deadline and degrades —
// counting exactly one degradations_total{reason="timeout"} — while the
// unfaulted O(n) rung finishes within a fresh per-rung deadline and serves
// the result. The call as a whole must succeed: Timeout is a rung budget,
// not a call budget.
func TestBudgetTimeoutDegradesOnlyTheSlowRung(t *testing.T) {
	est, nl, pl := robustCircuit(t, 60)
	defer fault.Reset()
	// Each truth row pauses 400 ms against a 40 ms rung deadline: the O(n²)
	// rung cannot finish a single row before its context fires, regardless
	// of scheduler jitter. The linear rung never hits this site.
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 400 * time.Millisecond})

	var res Result
	var err error
	delta := metricDelta(`degradations_total{reason="timeout"}`, func() {
		res, err = est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5,
			EstimateBudget{Timeout: 40 * time.Millisecond})
	})
	if err != nil {
		t.Fatalf("a rung deadline must degrade, not fail the call: %v", err)
	}
	if !res.Degraded {
		t.Fatal("timed-out O(n²) rung must mark the result degraded")
	}
	if res.Method != "linear" {
		t.Errorf("method = %q, want the next rung down (linear)", res.Method)
	}
	if !strings.Contains(res.DegradeReason, "timed out") {
		t.Errorf("DegradeReason = %q, want a timeout mention", res.DegradeReason)
	}
	if delta != 1 {
		t.Errorf("degradations_total{reason=\"timeout\"} += %d, want 1 (only the truth rung timed out)", delta)
	}
}

// TestBudgetTimeoutGenerousDeadlineDoesNotDegrade: a deadline the rung
// comfortably meets must leave the ladder untouched — the boundary's other
// side.
func TestBudgetTimeoutGenerousDeadlineDoesNotDegrade(t *testing.T) {
	est, nl, pl := robustCircuit(t, 60)
	var res Result
	var err error
	delta := metricDelta(`degradations_total{reason="timeout"}`, func() {
		res, err = est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5,
			EstimateBudget{Timeout: time.Hour})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Method != "true-n2" {
		t.Errorf("generous deadline degraded: method %q, degraded %v (%s)",
			res.Method, res.Degraded, res.DegradeReason)
	}
	if delta != 0 {
		t.Errorf("degradations_total{reason=\"timeout\"} += %d, want 0", delta)
	}
}

// TestBudgetCallerCancelIsNotDegradable: a dead parent context must surface
// as a typed cancellation, never as a silent fall down the ladder.
func TestBudgetCallerCancelIsNotDegradable(t *testing.T) {
	est, nl, pl := robustCircuit(t, 150)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := est.TrueLeakageBudgeted(ctx, nl, pl, 0.5, EstimateBudget{Timeout: time.Second})
	if err == nil {
		t.Fatal("canceled context must fail, not degrade")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("got %v, want ErrCanceled", err)
	}
}

// TestMonteCarloBudgetBoundary pins the sampler's gate cap at its exact
// boundary: n gates pass with MaxGates = n, and MaxGates = n−1 returns the
// typed BudgetExceeded without running any trials.
func TestMonteCarloBudgetBoundary(t *testing.T) {
	const n = 16
	est, nl, pl := robustCircuit(t, n)
	if _, err := est.MonteCarloBudgeted(context.Background(), nl, pl, 0.5, 10, 1, n); err != nil {
		t.Fatalf("MaxGates=n: %v", err)
	}
	_, err := est.MonteCarloBudgeted(context.Background(), nl, pl, 0.5, 10, 1, n-1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("MaxGates=n-1: got %v, want ErrBudgetExceeded", err)
	}
}
