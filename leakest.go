// Package leakest estimates the mean and standard deviation of full-chip
// subthreshold leakage under process variations, considering logic
// structure and both die-to-die and spatially correlated within-die
// channel-length variation. It reproduces the Random-Gate (RG) methodology
// of Heloue, Azizi and Najm, "Modeling and Estimation of Full-Chip Leakage
// Current Considering Within-Die Correlation", DAC 2007.
//
// The flow mirrors the paper's Fig. 1. Three ingredients are combined:
//
//  1. a process description (channel-length µ/σ split into D2D and WID
//     components, a WID spatial correlation function, and random Vt sigma);
//  2. a standard-cell library characterized for leakage under that process
//     (a built-in synthetic 90 nm-class, 62-cell library is provided);
//  3. the high-level characteristics of the candidate design: cell-usage
//     histogram, gate count, and layout dimensions.
//
// From these, an Estimator produces full-chip leakage statistics in O(n) or
// O(1) time — either early (characteristics given as expectations) or late
// (characteristics extracted from a placed netlist). The O(n²) "true
// leakage" of a specific placed design is also available as the validation
// baseline.
//
// Quick start:
//
//	lib, _ := leakest.DefaultLibrary()            // characterize built-in cells
//	est, _ := leakest.NewEstimator(lib, nil)      // default process
//	design := leakest.Design{
//		Hist: hist, N: 250000, W: 1000, H: 1000, SignalProb: 0.5,
//	}
//	res, _ := est.Estimate(design, leakest.Auto)
//	fmt.Println(res.Mean, res.Std)
package leakest

import (
	"context"
	"fmt"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// Re-exported model types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Process describes the variation model (µ_L, D2D/WID sigma split, WID
	// spatial correlation, random Vt sigma).
	Process = spatial.Process
	// CorrFunc is a within-die spatial correlation function ρ(d).
	CorrFunc = spatial.CorrFunc
	// ExpCorr, GaussCorr, SphericalCorr and TruncatedExpCorr are the
	// built-in correlation families.
	ExpCorr          = spatial.ExpCorr
	GaussCorr        = spatial.GaussCorr
	SphericalCorr    = spatial.SphericalCorr
	TruncatedExpCorr = spatial.TruncatedExpCorr
	// Library is a leakage-characterized cell library.
	Library = charlib.Library
	// CharConfig controls cell characterization.
	CharConfig = charlib.Config
	// Cell is a transistor-level standard-cell description.
	Cell = cells.Cell
	// Design holds the high-level design characteristics of the paper's
	// Fig. 1 (histogram, gate count, layout dimensions, signal
	// probability).
	Design = core.DesignSpec
	// Result is an estimation outcome.
	Result = core.Result
	// TileStat is one tile's contribution in a tiled estimation (Result.TileStats).
	TileStat = core.TileStat
	// Mode selects analytic-fit or MC-simplified cell statistics.
	Mode = core.Mode
	// Histogram is a cell-usage frequency distribution.
	Histogram = stats.Histogram
	// Netlist is a gate-level netlist for late-mode estimation.
	Netlist = netlist.Netlist
	// Placement assigns netlist gates to the uniform site grid.
	Placement = placement.Placement
	// Grid is the rectangular site array of the full-chip model.
	Grid = placement.Grid
)

// Estimation modes.
const (
	// Analytic uses fitted (a,b,c) cell moments and the exact
	// leakage-correlation mapping.
	Analytic = core.Analytic
	// MCSimplified uses Monte-Carlo cell moments with ρ_leak = ρ_L.
	MCSimplified = core.MCSimplified
)

// Method selects the estimation algorithm.
type Method int

// Available estimation methods.
const (
	// Auto follows the paper's advice: the linear-time algorithm for small
	// designs, the constant-time integral beyond autoThreshold gates.
	Auto Method = iota
	// Linear is the exact O(n) distance-histogram method (Eq. 17).
	Linear
	// Integral2D is the O(1) rectangular double integral (Eq. 20).
	Integral2D
	// Polar is the O(1) single polar integral (Eqs. 25–26); it requires
	// the correlation range to fit inside the die.
	Polar
	// Naive ignores spatial correlation (independent gates) — the early
	// estimator baseline; provided for comparison only.
	Naive
)

// autoThreshold is the gate count above which Auto switches from the exact
// linear method to constant-time integration (the paper observes the linear
// method runs in under a second below about a thousand gates).
const autoThreshold = 1000

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Linear:
		return "linear"
	case Integral2D:
		return "integral-2d"
	case Polar:
		return "polar-1d"
	case Naive:
		return "naive"
	default:
		return "auto"
	}
}

// DefaultProcess returns the synthetic 90 nm-class process description.
func DefaultProcess() *Process { return spatial.Default90nm() }

// BuiltinCells returns the full built-in 62-cell library (transistor-level
// descriptions, not yet characterized).
func BuiltinCells() []*Cell { return cells.Library() }

// Characterize runs leakage characterization of transistor-level cells
// under cfg, producing a Library usable by NewEstimator.
func Characterize(cellList []*Cell, cfg CharConfig) (*Library, error) {
	return CharacterizeContext(context.Background(), cellList, cfg)
}

// CharacterizeContext is Characterize with cancellation: ctx is checked
// before every (cell, state) characterization and periodically inside each
// Monte-Carlo loop, so a cancel or deadline stops the work within one check
// interval and returns a typed Canceled / DeadlineExceeded error.
func CharacterizeContext(ctx context.Context, cellList []*Cell, cfg CharConfig) (lib *Library, err error) {
	defer lkerr.RecoverInto(&err, "leakest.Characterize")
	return charlib.CharacterizeContext(ctx, cellList, cfg)
}

// DefaultLibrary characterizes (once per process, cached) the built-in
// 62-cell library under the default process.
func DefaultLibrary() (*Library, error) { return charlib.SharedFull() }

// LoadLibrary reads a characterized library previously written with
// Library.SaveFile.
func LoadLibrary(path string) (*Library, error) { return charlib.LoadFile(path) }

// NewHistogram builds a cell-usage histogram from name→weight pairs.
func NewHistogram(weights map[string]float64) (*Histogram, error) {
	return stats.NewHistogram(weights)
}

// Estimator binds a characterized library to a process description and
// produces full-chip leakage estimates.
type Estimator struct {
	lib  *Library
	proc *Process
	mode Mode
	// ApplyVtMean multiplies estimated means by the random-Vt lognormal
	// factor (§2.1); the variance is unaffected, as the paper argues and
	// the Vt-ablation experiment confirms.
	ApplyVtMean bool
	// Workers is the goroutine count for the long loops (the O(n²) pair
	// sum, the linear estimator's distance columns, and the full-chip
	// Monte Carlo): 0 selects runtime.GOMAXPROCS(0), 1 forces the serial
	// path. Every result is bitwise identical at any setting — see the
	// determinism contract in internal/parallel.
	Workers int
	// Sampler selects the Monte-Carlo field construction: SamplerAuto
	// (default) routes small designs to the dense-Cholesky reference and
	// large ones to the O(S log S) circulant-embedding FFT sampler;
	// SamplerDense, SamplerFFT, and SamplerQMC force one path. SamplerQMC
	// replaces the pseudo-random trial deviates with a scrambled-Sobol
	// low-discrepancy sequence — identical distribution, materially fewer
	// trials to a given standard error on typical designs.
	Sampler MCSampler
	// Batch is the number of Monte-Carlo trial fields the qmc sampler
	// pushes through one batched 2-D FFT pass (0 selects the default;
	// results are bitwise independent of the setting). Ignored by the
	// other samplers.
	Batch int
	// Spec is a full-chip leakage spec in amperes. When > 0, MonteCarlo
	// runs additionally report the exceedance probability P[I_leak > Spec]
	// — one minus the parametric yield at the spec — in Result.Tail.
	Spec float64
	// Quantiles lists probabilities (each strictly inside (0,1)) at which
	// MonteCarlo runs report leakage quantiles in Result.Tail; empty
	// requests none.
	Quantiles []float64
	// TailTrials is the importance-sampled trial budget for deep-tail
	// exceedance estimation (the mean-shifted proposal of
	// chipmc.TailConfig); 0 estimates the exceedance from the primary
	// trials alone. Requires Spec > 0.
	TailTrials int
	// Tiles > 1 activates the tiled pipeline of DESIGN.md §16: the die is
	// partitioned into a Tiles×Tiles arrangement, per-tile moments are
	// estimated independently, and the chip-level moments are combined
	// through the inter-tile covariance. For Linear (and Auto) the
	// combination is exact — bitwise identical to the monolithic estimator
	// at any tile or worker count — and the Result additionally carries
	// per-tile statistics in Result.TileStats. Integral2D gains centroid
	// cross terms; Polar and Naive do not tile and are refused. MonteCarlo
	// runs switch to per-tile FFT field sampling, lifting the gate budget
	// to millions (see chipmc.DefaultMaxGatesTiled). 0 and 1 select the
	// monolithic paths.
	Tiles int
}

// tailConfig assembles the chipmc tail configuration from the estimator's
// tail fields; nil when no tail statistics are requested.
func (e *Estimator) tailConfig() *TailConfig {
	if e.Spec == 0 && len(e.Quantiles) == 0 {
		return nil
	}
	return &TailConfig{Spec: e.Spec, Quantiles: e.Quantiles, ISTrials: e.TailTrials}
}

// NewEstimator creates an estimator. proc may be nil to use the process the
// library was characterized under; a non-nil proc may change the spatial
// correlation model but must keep the same (µ_L, σ_L).
func NewEstimator(lib *Library, proc *Process) (*Estimator, error) {
	if lib == nil {
		return nil, fmt.Errorf("leakest: nil library")
	}
	if proc == nil {
		proc = lib.Process
	}
	if err := proc.Validate(); err != nil {
		return nil, fmt.Errorf("leakest: %w", err)
	}
	return &Estimator{lib: lib, proc: proc, mode: Analytic}, nil
}

// SetMode switches between Analytic (default) and MCSimplified statistics.
func (e *Estimator) SetMode(m Mode) { e.mode = m }

// Library returns the estimator's characterized library.
func (e *Estimator) Library() *Library { return e.lib }

// Process returns the estimator's process description.
func (e *Estimator) Process() *Process { return e.proc }

// model builds the RG model for a design.
func (e *Estimator) model(design Design) (*core.Model, error) {
	return e.newModelCtx(context.Background(), design)
}

// newModelCtx builds the RG model for a design and stamps the estimator's
// worker count onto it, so every model-backed loop shares one setting.
func (e *Estimator) newModelCtx(ctx context.Context, design Design) (*core.Model, error) {
	m, err := core.NewModelCtx(ctx, e.lib, e.proc, design, e.mode)
	if err != nil {
		return nil, err
	}
	m.Workers = e.Workers
	return m, nil
}

// Estimate returns the full-chip leakage statistics of a design described
// by its high-level characteristics (early-mode estimation).
func (e *Estimator) Estimate(design Design, method Method) (Result, error) {
	return e.EstimateContext(context.Background(), design, method)
}

// EstimateContext is Estimate with cancellation and telemetry. The design
// is validated at entry (typed InvalidInput errors), ctx is checked
// periodically inside the model-construction and linear-method loops, and
// panics escaping the numeric kernels are converted to typed Numerical
// errors. The returned Result carries a per-stage timing breakdown; attach
// a ProgressFunc with WithProgress to observe long loops while they run.
func (e *Estimator) EstimateContext(ctx context.Context, design Design, method Method) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.Estimate")
	if err := design.Validate(); err != nil {
		return Result{}, err
	}
	ctx, tr := telemetry.EnsureTrace(ctx)
	ctx, endEst := telemetry.WithSpan(ctx, "estimate")
	defer endEst()
	telemetry.SpanAttrInt(ctx, "gates", int64(design.N))
	m, err := e.newModelCtx(ctx, design)
	if err != nil {
		return Result{}, err
	}
	res, err = e.dispatch(ctx, m, method)
	if err != nil {
		return Result{}, err
	}
	res = e.finish(res)
	telemetry.SpanAttrStr(ctx, "method", res.Method)
	res.Timings = tr.Stages()
	return res, nil
}

func (e *Estimator) dispatch(ctx context.Context, m *core.Model, method Method) (Result, error) {
	if e.Tiles < 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, "leakest.Estimate",
			"negative Tiles %d", e.Tiles)
	}
	if e.Tiles > 1 {
		switch method {
		case Linear, Auto:
			return m.EstimateTiledCtx(ctx, e.Tiles, nil)
		case Integral2D:
			return m.EstimateTiledIntegral2DCtx(ctx, e.Tiles, nil)
		default:
			return Result{}, lkerr.New(lkerr.InvalidInput, "leakest.Estimate",
				"method %s does not support tiling; use linear, auto, or integral-2d", method)
		}
	}
	switch method {
	case Linear:
		return m.EstimateLinearCtx(ctx)
	case Integral2D:
		return m.EstimateIntegral2DCtx(ctx)
	case Polar:
		return m.EstimatePolarCtx(ctx)
	case Naive:
		return m.EstimateNaiveCtx(ctx)
	case Auto:
		if m.Spec.N <= autoThreshold {
			return m.EstimateLinearCtx(ctx)
		}
		if res, err := m.EstimatePolarCtx(ctx); err == nil {
			return res, nil
		}
		return m.EstimateIntegral2DCtx(ctx)
	default:
		return Result{}, lkerr.New(lkerr.InvalidInput, "leakest.Estimate",
			"unknown method %d", int(method))
	}
}

// finish applies the optional Vt mean correction.
func (e *Estimator) finish(res Result) Result {
	if e.ApplyVtMean {
		factor := e.lib.VtMeanFactor()
		res.Mean *= factor
		res.Note = appendNote(res.Note, fmt.Sprintf("mean ×%.3f random-Vt correction", factor))
	}
	return res
}

func appendNote(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "; " + extra
}

// ExtractDesign derives the high-level characteristics from a placed
// netlist (late-mode extraction).
func (e *Estimator) ExtractDesign(nl *Netlist, pl *Placement, signalProb float64) (Design, error) {
	return core.ExtractSpec(nl, pl, signalProb)
}

// EstimateNetlist performs late-mode estimation: it extracts the design
// characteristics from the placed netlist and estimates with the chosen
// method.
func (e *Estimator) EstimateNetlist(nl *Netlist, pl *Placement, signalProb float64, method Method) (Result, error) {
	design, err := e.ExtractDesign(nl, pl, signalProb)
	if err != nil {
		return Result{}, err
	}
	return e.Estimate(design, method)
}

// TrueLeakage computes the O(n²) pairwise-covariance statistics of a
// specific placed design — the expensive late-mode baseline the estimators
// are validated against.
func (e *Estimator) TrueLeakage(nl *Netlist, pl *Placement, signalProb float64) (Result, error) {
	return e.TrueLeakageContext(context.Background(), nl, pl, signalProb)
}

// TrueLeakageContext is TrueLeakage with cancellation and telemetry: the
// O(n²) pair loop checks ctx once per row — reporting progress there — so a
// cancel stops the computation within one row's work and returns a typed
// Canceled / DeadlineExceeded error. The Result carries the
// extraction/model/pair-loop timing breakdown.
func (e *Estimator) TrueLeakageContext(ctx context.Context, nl *Netlist, pl *Placement, signalProb float64) (res Result, err error) {
	defer lkerr.RecoverInto(&err, "leakest.TrueLeakage")
	ctx, tr := telemetry.EnsureTrace(ctx)
	ctx, endTruth := telemetry.WithSpan(ctx, "true_leakage")
	defer endTruth()
	endExtract := telemetry.StartSpan(ctx, "core.extract")
	design, err := e.ExtractDesign(nl, pl, signalProb)
	endExtract()
	if err != nil {
		return Result{}, err
	}
	telemetry.SpanAttrInt(ctx, "gates", int64(design.N))
	m, err := e.newModelCtx(ctx, design)
	if err != nil {
		return Result{}, err
	}
	res, err = core.TrueStatsCtx(ctx, m, nl, pl)
	if err != nil {
		return Result{}, err
	}
	res = e.finish(res)
	telemetry.SpanAttrStr(ctx, "method", res.Method)
	res.Timings = tr.Stages()
	return res, nil
}

// MaxLeakageSignalProb returns the signal probability that maximizes the
// design's mean leakage — the paper's conservative setting when eventual
// signal probabilities are unknown (§2.1.4).
func (e *Estimator) MaxLeakageSignalProb(hist *Histogram) (float64, error) {
	return charlib.MaximizingSignalProb(e.lib, hist, e.mode == MCSimplified)
}

// VtMeanFactor returns the multiplicative mean-leakage correction due to
// random Vt fluctuation under the estimator's process.
func (e *Estimator) VtMeanFactor() float64 { return e.lib.VtMeanFactor() }
