// Process extraction → estimation, end to end: simulate noisy spatial-
// correlation measurements from test structures (the input the paper
// assumes from its reference [5]), robustly fit a valid correlation model,
// assemble a process description from the fit, and feed it to the
// Random-Gate estimator. Shows how far estimation error moves when the
// correlation model comes from measurements instead of ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	"leakest"
	"leakest/internal/cells"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func main() {
	// Ground-truth process the "fab" actually has.
	truth := leakest.DefaultProcess()
	truth.WIDCorr = leakest.ExpCorr{Lambda: 150} // µm
	fmt.Printf("true process: %s, D2D floor %.2f\n", truth.WIDCorr.Name(), truth.CorrFloor())

	// 1. Simulate test-structure measurements: sample correlations at a
	//    ladder of distances, 300 device pairs each (≈6 % noise).
	rng := stats.NewRNG(11, "extract-demo")
	var distances []float64
	for d := 0.0; d <= 1200; d += 60 {
		distances = append(distances, d)
	}
	samples := spatial.SimulateCorrMeasurement(rng, truth, distances, 300)
	fmt.Printf("measured %d correlation samples (300 pairs each)\n\n", len(samples))

	// 2. Robust extraction: fit valid correlation families, best by RMSE.
	fit, err := spatial.FitCorrFunc(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted model: family %s, RMSE %.4f, floor %.3f\n",
		fit.Family, fit.RMSE, fit.Floor)
	fmt.Println("\n  d (µm)   true ρ   measured   fitted")
	for i := 0; i < len(samples); i += 4 {
		s := samples[i]
		model := fit.Floor + (1-fit.Floor)*fit.Func.Rho(s.D)
		fmt.Printf("  %6.0f   %.4f   %.4f     %.4f\n", s.D, truth.TotalCorr(s.D), s.Rho, model)
	}

	// 3. Assemble a process from the fit and estimate a design with both
	//    the true and the extracted process.
	extracted, err := fit.BuildProcess(truth.LNominal, truth.TotalSigma(), truth.SigmaVt)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := leakest.Characterize(cells.ISCASSubset(), leakest.CharConfig{
		Process: truth, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 20, "NAND2_X1": 25, "NOR2_X1": 15, "AND2_X1": 10, "XOR2_X1": 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	design := leakest.Design{Hist: hist, N: 250000, W: 1000, H: 1000, SignalProb: 0.5}

	estimate := func(proc *leakest.Process) leakest.Result {
		est, err := leakest.NewEstimator(lib, proc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(design, leakest.Integral2D)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	withTruth := estimate(truth)
	withFit := estimate(extracted)
	fmt.Printf("\nestimation with true process:      mean %.4g A, σ %.4g A\n",
		withTruth.Mean, withTruth.Std)
	fmt.Printf("estimation with extracted process: mean %.4g A, σ %.4g A\n",
		withFit.Mean, withFit.Std)
	fmt.Printf("σ discrepancy from extraction noise: %.2f%%\n",
		100*math.Abs(withFit.Std-withTruth.Std)/withTruth.Std)
}
