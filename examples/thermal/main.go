// Leakage–temperature feedback: a classic consequence of the leakage
// statistics this library estimates. Die temperature raises leakage
// (roughly an order of magnitude per 100 K); leakage power raises die
// temperature through the package thermal resistance. The fixed point
//
//	T = T_amb + θ·(P_dyn + Vdd·I_leak(T))
//
// may fail to exist for leaky parts — thermal runaway. Because leakage is
// statistical, the SAME design converges for a typical die but can run
// away for a +3σ leakage corner die: exactly the tail the Random-Gate
// estimator quantifies.
package main

import (
	"fmt"
	"log"

	"leakest"
	"leakest/internal/cells"
	"leakest/internal/quad"
)

const (
	vdd      = 1.0   // V
	tAmb     = 320.0 // K (47 °C ambient)
	pDyn     = 0.5   // W of dynamic power
	maxIters = 300
)

func main() {
	proc := leakest.DefaultProcess()
	proc.WIDCorr = leakest.TruncatedExpCorr{Lambda: 500, R: 2000}
	hist, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 20, "NAND2_X1": 25, "NAND3_X1": 8, "NOR2_X1": 18,
		"AND2_X1": 12, "OR2_X1": 8, "XOR2_X1": 6, "BUF_X1": 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	design := leakest.Design{Hist: hist, N: 2_000_000, W: 2830, H: 2830, SignalProb: 0.5}

	// Characterize at a ladder of junction temperatures and spline the
	// full-chip mean and σ against T.
	temps := []float64{300, 320, 340, 360, 380, 400, 420}
	means := make([]float64, len(temps))
	stds := make([]float64, len(temps))
	fmt.Println("characterizing across temperature...")
	for i, tk := range temps {
		cellList, err := cells.AtTemperature(cells.ISCASSubset(), tk)
		if err != nil {
			log.Fatal(err)
		}
		lib, err := leakest.Characterize(cellList, leakest.CharConfig{
			Process: leakest.DefaultProcess(), Seed: 1, MCSamples: 2000,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := leakest.NewEstimator(lib, proc)
		if err != nil {
			log.Fatal(err)
		}
		est.ApplyVtMean = true
		res, err := est.Estimate(design, leakest.Integral2D)
		if err != nil {
			log.Fatal(err)
		}
		means[i] = res.Mean
		stds[i] = res.Std
		fmt.Printf("  T=%.0f K: mean %.3g A, σ %.3g A\n", tk, res.Mean, res.Std)
	}
	meanOfT, err := quad.NewSpline(temps, means)
	if err != nil {
		log.Fatal(err)
	}
	stdOfT, err := quad.NewSpline(temps, stds)
	if err != nil {
		log.Fatal(err)
	}

	// Self-consistent junction temperature for a die at the given leakage
	// quantile (0 = typical die, 3 = +3σ corner die) under a package with
	// thermal resistance theta (K/W).
	solve := func(sigmas, theta float64) (tJ float64, converged bool) {
		tJ = tAmb
		for i := 0; i < maxIters; i++ {
			iLeak := meanOfT.Eval(tJ) + sigmas*stdOfT.Eval(tJ)
			next := tAmb + theta*(pDyn+vdd*iLeak)
			if next > 470 {
				return next, false // far beyond the model: runaway
			}
			if diff := next - tJ; diff < 0.01 && diff > -0.01 {
				return next, true
			}
			// Damped update for stability near the bifurcation.
			tJ += 0.6 * (next - tJ)
		}
		return tJ, false
	}

	// Package selection: the cheapest package (largest θJA) that keeps even
	// the +3σ leakage corner thermally stable.
	corners := []struct {
		label  string
		sigmas float64
	}{
		{"typ", 0}, {"+1σ", 1}, {"+2σ", 2}, {"+3σ", 3},
	}
	fmt.Printf("\nself-consistent junction temperature by package (amb %.0f K, Pdyn %.2f W):\n", tAmb, pDyn)
	fmt.Printf("  %-10s", "θJA (K/W)")
	for _, c := range corners {
		fmt.Printf("  %-12s", c.label+" die")
	}
	fmt.Println()
	bestTheta := 0.0
	for _, theta := range []float64{10, 15, 20, 25, 30, 40} {
		fmt.Printf("  %-10.0f", theta)
		allOK := true
		for _, c := range corners {
			tj, ok := solve(c.sigmas, theta)
			if ok {
				fmt.Printf("  %-12s", fmt.Sprintf("%.0f K", tj))
			} else {
				fmt.Printf("  %-12s", "RUNAWAY")
				allOK = false
			}
		}
		fmt.Println()
		if allOK && theta > bestTheta {
			bestTheta = theta
		}
	}
	if bestTheta > 0 {
		fmt.Printf("\ncheapest package keeping the +3σ corner stable: θJA = %.0f K/W\n", bestTheta)
	} else {
		fmt.Println("\nno surveyed package keeps the +3σ corner stable — the design must shed leakage")
	}
	fmt.Println("the statistical estimator turns 'will some dies run away?' into a quantile question")
}
