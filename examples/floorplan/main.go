// Floorplan-level early estimation: a heterogeneous SoC — logic core,
// SRAM array, and a register-file block — is estimated block by block and
// combined with inter-block correlation, before any netlist exists. The
// breakdown shows which block owns the leakage budget and how much the
// blocks' spatial proximity adds through within-die correlation.
package main

import (
	"fmt"
	"log"

	"leakest"
	"leakest/internal/cells"
)

func main() {
	// Characterize the cells the blocks use (core subset: logic + DFF +
	// SRAM topologies).
	lib, err := leakest.Characterize(cells.CoreSubset(), leakest.CharConfig{
		Process: leakest.DefaultProcess(), Seed: 1, MCSamples: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	proc := leakest.DefaultProcess()
	proc.WIDCorr = leakest.TruncatedExpCorr{Lambda: 250, R: 1000}
	est, err := leakest.NewEstimator(lib, proc)
	if err != nil {
		log.Fatal(err)
	}
	est.ApplyVtMean = true

	logic, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 20, "NAND2_X1": 28, "NAND3_X1": 10, "NOR2_X1": 18,
		"AOI21_X1": 10, "XOR2_X1": 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	sram, err := leakest.NewHistogram(map[string]float64{
		"SRAM6T": 93, "INV_X1": 4, "NAND2_X1": 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	regs, err := leakest.NewHistogram(map[string]float64{
		"DFF_X1": 62, "INV_X1": 18, "NAND2_X1": 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	blocks := []leakest.Block{
		{
			Name: "cpu-logic",
			Spec: leakest.Design{Hist: logic, N: 600_000, W: 1600, H: 1500, SignalProb: 0.5},
			X:    0, Y: 0,
		},
		{
			Name: "l2-sram",
			Spec: leakest.Design{Hist: sram, N: 2_200_000, W: 2000, H: 1500, SignalProb: 0.5},
			X:    1700, Y: 0,
		},
		{
			Name: "regfile",
			Spec: leakest.Design{Hist: regs, N: 150_000, W: 700, H: 700, SignalProb: 0.5},
			X:    0, Y: 1600,
		},
	}

	fp, err := est.EstimateFloorplan(blocks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("floorplan-level early leakage budget")
	fmt.Printf("%-12s %10s %12s %12s %8s\n", "block", "gates", "mean (A)", "std (A)", "share")
	for i, b := range blocks {
		r := fp.PerBlock[i]
		fmt.Printf("%-12s %10d %12.4g %12.4g %7.1f%%\n",
			b.Name, b.Spec.N, r.Mean, r.Std, 100*r.Mean/sumMeans(fp))
	}
	fmt.Printf("\nfull chip:   mean %.4g A, σ %.4g A (%s)\n",
		fp.Total.Mean, fp.Total.Std, fp.Total.Note)
	fmt.Printf("inter-block correlation adds %.3g A² of variance (%.1f%% of total σ²)\n",
		fp.InterBlockCov, 100*fp.InterBlockCov/(fp.Total.Std*fp.Total.Std))

	dist, err := leakest.DistributionOf(fp.Total)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p95 leakage corner: %.4g A\n", dist.Quantile(0.95))
	fmt.Println("\nthe SRAM array dominates the budget — early enough to resize it,")
	fmt.Println("swap in high-Vt bit cells, or plan power gating, before RTL exists")
}

func sumMeans(fp leakest.FloorplanResult) float64 {
	s := 0.0
	for _, r := range fp.PerBlock {
		s += r.Mean
	}
	return s
}
