// Signal-probability analysis (the paper's §2.1.4 and Fig. 3): sweep the
// probability that any logic signal is 1 and observe that full-chip mean
// leakage is nearly flat — unlike single gates, whose leakage spreads up to
// ~10× across input states — then find the conservative maximizing setting.
package main

import (
	"fmt"
	"log"
	"strings"

	"leakest"
	"leakest/internal/cells"
)

func main() {
	lib, err := leakest.Characterize(cells.ISCASSubset(), leakest.CharConfig{
		Process: leakest.DefaultProcess(),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := leakest.NewEstimator(lib, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Single-gate spread across input states (NAND3: stacked pull-down).
	cc, err := lib.Cell("NAND3_X1")
	if err != nil {
		log.Fatal(err)
	}
	minS, maxS := cc.States[0].MCMean, cc.States[0].MCMean
	for _, st := range cc.States {
		if st.MCMean < minS {
			minS = st.MCMean
		}
		if st.MCMean > maxS {
			maxS = st.MCMean
		}
	}
	fmt.Printf("NAND3_X1 state-to-state leakage spread: %.1fx\n\n", maxS/minS)

	hist, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 20, "NAND2_X1": 25, "NAND3_X1": 10, "NOR2_X1": 20,
		"AND2_X1": 15, "OR2_X1": 6, "XOR2_X1": 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sweep p and plot the normalized full-chip mean as an ASCII bar chart.
	fmt.Println("full-chip mean leakage vs signal probability (normalized):")
	var vals []float64
	max := 0.0
	for p := 0.0; p <= 1.0001; p += 0.05 {
		m, _, err := est.DesignStatsAtSignalProb(hist, min1(p))
		if err != nil {
			log.Fatal(err)
		}
		vals = append(vals, m)
		if m > max {
			max = m
		}
	}
	minV := vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
	}
	for i, v := range vals {
		p := float64(i) * 0.05
		bar := int(60 * v / max)
		fmt.Printf("p=%.2f %s %.4f\n", p, strings.Repeat("#", bar), v/max)
	}
	fmt.Printf("\nfull-chip spread over p: %.1f%% (vs ~%.0fx for a single gate)\n",
		100*(max-minV)/max, maxS/minS)

	pStar, err := est.MaxLeakageSignalProb(hist)
	if err != nil {
		log.Fatal(err)
	}
	mStar, sStar, err := est.DesignStatsAtSignalProb(hist, pStar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconservative setting p* = %.3f: per-gate mean %.4g A, per-gate σ %.4g A\n",
		pStar, mStar, sStar)
	fmt.Println("use p* in Design.SignalProb for a conservative full-chip estimate")
}

func min1(p float64) float64 {
	if p > 1 {
		return 1
	}
	return p
}
