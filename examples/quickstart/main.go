// Quickstart: characterize the built-in cell library, describe a candidate
// design by its high-level characteristics (the paper's Fig. 1 inputs), and
// estimate its full-chip leakage statistics in constant time.
package main

import (
	"fmt"
	"log"

	"leakest"
)

func main() {
	// 1. Characterize the built-in 62-cell library under the default
	//    synthetic 90 nm process (cached after the first call, ~10 s).
	fmt.Println("characterizing the 62-cell library...")
	lib, err := leakest.DefaultLibrary()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Bind the library to a process with a within-die correlation
	//    length appropriate for a multi-mm² die.
	proc := leakest.DefaultProcess()
	proc.WIDCorr = leakest.TruncatedExpCorr{Lambda: 500, R: 2000} // µm
	est, err := leakest.NewEstimator(lib, proc)
	if err != nil {
		log.Fatal(err)
	}
	est.ApplyVtMean = true // include the random-Vt mean correction

	// 3. Describe the candidate design: expected cell usage, gate count
	//    and floorplan dimensions — no netlist required (early mode).
	hist, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 18, "BUF_X2": 5, "NAND2_X1": 22, "NAND3_X1": 6,
		"NOR2_X1": 14, "AOI21_X1": 7, "OAI21_X1": 6, "XOR2_X1": 4,
		"MUX2_X1": 4, "DFF_X1": 12, "SRAM6T": 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	design := leakest.Design{
		Hist: hist,
		N:    1_000_000,     // one million placeable cells
		W:    2000, H: 2000, // 2×2 mm die, µm
	}

	// 4. Pick the conservative signal-probability setting (§2.1.4) and
	//    estimate. Auto selects the constant-time method at this size.
	design.SignalProb, err = est.MaxLeakageSignalProb(hist)
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate(design, leakest.Auto)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndesign: %d cells on a %.1f×%.1f mm die\n",
		design.N, design.W/1000, design.H/1000)
	fmt.Printf("signal probability (leakage-maximizing): %.3f\n", design.SignalProb)
	fmt.Printf("method: %s\n", res.Method)
	fmt.Printf("mean leakage: %.3g A\n", res.Mean)
	fmt.Printf("std deviation: %.3g A (%.1f%% of mean)\n", res.Std, 100*res.Std/res.Mean)
	fmt.Printf("mean + 3σ design corner: %.3g A\n", res.Mean+3*res.Std)

	// 5. Contrast with the naive no-correlation estimate — the reason
	//    within-die correlation must be modelled.
	naive, err := est.Estimate(design, leakest.Naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nignoring correlation would report σ = %.3g A — %.0fx too small\n",
		naive.Std, res.Std/naive.Std)
}
