// Early-mode design planning: compare candidate floorplans and cell-mix
// choices for leakage *before* a netlist exists — the paper's primary
// motivation for a constant-time early estimator. The scenario trades off
// die aspect ratio, area, and a low-leakage cell mix against a
// performance-oriented mix, and budgets the mean + 3σ corner.
package main

import (
	"fmt"
	"log"

	"leakest"
	"leakest/internal/cells"
)

func main() {
	// A reduced characterization keeps the example snappy; swap in
	// leakest.DefaultLibrary() for the full 62-cell library.
	lib, err := leakest.Characterize(cells.ISCASSubset(), leakest.CharConfig{
		Process: leakest.DefaultProcess(),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	proc := leakest.DefaultProcess()
	proc.WIDCorr = leakest.TruncatedExpCorr{Lambda: 400, R: 1600}
	est, err := leakest.NewEstimator(lib, proc)
	if err != nil {
		log.Fatal(err)
	}
	est.ApplyVtMean = true

	// Two candidate cell mixes from prior-design experience: a
	// performance mix rich in buffers, compound AND/OR and XOR cells
	// (more transistors per function), and a leakage-aware mix built from
	// single-stage NAND/NOR/INV cells that exploit the stack effect.
	perfMix, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 18, "BUF_X1": 8, "NAND2_X1": 22, "NOR2_X1": 12,
		"AND2_X1": 16, "OR2_X1": 12, "XOR2_X1": 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	lpMix, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 30, "NAND2_X1": 28, "NAND3_X1": 14, "NOR2_X1": 22, "XOR2_X1": 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three candidate floorplans for the same 360k-gate block.
	const n = 360_000
	floorplans := []struct {
		name string
		w, h float64 // µm
	}{
		{"square 1.2×1.2 mm", 1200, 1200},
		{"wide   2.0×0.72 mm", 2000, 720},
		{"dense  1.0×1.0 mm", 1000, 1000},
	}

	fmt.Printf("early-mode leakage budget for a %d-gate block\n\n", n)
	fmt.Printf("%-22s %-12s %12s %12s %14s\n", "floorplan", "mix", "mean (A)", "std (A)", "mean+3σ (A)")
	for _, mix := range []struct {
		name string
		h    *leakest.Histogram
	}{{"perf", perfMix}, {"low-leak", lpMix}} {
		p, err := est.MaxLeakageSignalProb(mix.h)
		if err != nil {
			log.Fatal(err)
		}
		for _, fp := range floorplans {
			design := leakest.Design{Hist: mix.h, N: n, W: fp.w, H: fp.h, SignalProb: p}
			res, err := est.Estimate(design, leakest.Auto)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %-12s %12.4g %12.4g %14.4g\n",
				fp.name, mix.name, res.Mean, res.Std, res.Mean+3*res.Std)
		}
	}

	fmt.Println("\nobservations:")
	fmt.Println(" - the mean depends only on the mix (Eq. 13), not the floorplan;")
	fmt.Println(" - σ grows when the die shrinks relative to the correlation length")
	fmt.Println("   (more of the die is mutually correlated: variance → n² regime);")
	fmt.Println(" - the low-leakage mix buys margin at the 3σ corner, quantified")
	fmt.Println("   before a single gate is placed.")
}
