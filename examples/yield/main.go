// Leakage-yield analysis: turn the estimated full-chip (mean, σ) into a
// distributional picture — quantiles, power-budget exceedance, and a yield
// curve — and decompose *where* the variance comes from. The lognormal
// two-moment approximation is cross-checked against a direct full-chip
// Monte Carlo on a placed instance of the design.
package main

import (
	"fmt"
	"log"
	"strings"

	"leakest"
	"leakest/internal/cells"
)

func main() {
	lib, err := leakest.Characterize(cells.ISCASSubset(), leakest.CharConfig{
		Process: leakest.DefaultProcess(),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	proc := leakest.DefaultProcess()
	proc.WIDCorr = leakest.TruncatedExpCorr{Lambda: 25, R: 100}
	est, err := leakest.NewEstimator(lib, proc)
	if err != nil {
		log.Fatal(err)
	}

	hist, err := leakest.NewHistogram(map[string]float64{
		"INV_X1": 22, "NAND2_X1": 26, "NAND3_X1": 8, "NOR2_X1": 18,
		"AND2_X1": 12, "OR2_X1": 8, "XOR2_X1": 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	design := leakest.Design{Hist: hist, N: 2500, W: 100, H: 100, SignalProb: 0.5}

	res, err := est.Estimate(design, leakest.Linear)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := leakest.DistributionOf(res)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design: %d gates, %.0f×%.0f µm\n", design.N, design.W, design.H)
	fmt.Printf("estimated leakage: mean %.4g A, σ %.4g A\n\n", res.Mean, res.Std)

	// Where does the variance come from?
	bd, err := est.Breakdown(design)
	if err != nil {
		log.Fatal(err)
	}
	i, fl, w := bd.Fractions()
	fmt.Printf("variance breakdown: independent %.1f%%, die-to-die %.1f%%, within-die corr %.1f%%\n\n",
		100*i, 100*fl, 100*w)

	// Distribution summary.
	fmt.Println("leakage distribution (lognormal matched to mean/σ):")
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		fmt.Printf("  p%-4.0f %.4g A\n", q*100, dist.Quantile(q))
	}

	// Yield curve: fraction of dies within a leakage budget.
	fmt.Println("\nyield vs leakage budget:")
	for _, mult := range []float64{0.8, 1.0, 1.2, 1.5, 2.0} {
		budget := res.Mean * mult
		y := dist.CDF(budget)
		bars := strings.Repeat("#", int(50*y))
		fmt.Printf("  budget %.2f×mean: yield %6.2f%% %s\n", mult, 100*y, bars)
	}
	budget95, err := dist.YieldBudget(0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudget for 95%% yield: %.4g A (%.2f× the mean)\n", budget95, budget95/res.Mean)

	// Cross-check the lognormal picture against a placed-instance MC.
	nl, err := leakest.RandomCircuit(lib, 7, "yield-check", design.N, 16, hist)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := leakest.AutoPlace(nl, 7)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := est.MonteCarlo(nl, pl, 0.5, 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte-Carlo check (one placed instance, %d trials):\n", mc.Samples)
	fmt.Printf("  MC [p5, p95] = [%.4g, %.4g] A\n", mc.Q05, mc.Q95)
	fmt.Printf("  lognormal    = [%.4g, %.4g] A\n", dist.Quantile(0.05), dist.Quantile(0.95))
}
