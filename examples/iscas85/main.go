// Late-mode estimation on the ISCAS85 benchmark suite: extract the
// high-level characteristics from each placed netlist, estimate with the
// linear-time Random-Gate method, and compare against the O(n²) true
// leakage and a full-chip Monte Carlo — the flow behind the paper's
// Table 1.
package main

import (
	"fmt"
	"log"
	"math"

	"leakest"
	"leakest/internal/cells"
)

func main() {
	lib, err := leakest.Characterize(cells.ISCASSubset(), leakest.CharConfig{
		Process: leakest.DefaultProcess(),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Correlation length matched to benchmark-scale dies (tens of µm).
	proc := leakest.DefaultProcess()
	proc.WIDCorr = leakest.TruncatedExpCorr{Lambda: 30, R: 120}
	est, err := leakest.NewEstimator(lib, proc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %6s %12s %12s %9s %9s\n",
		"circuit", "gates", "true σ (A)", "RG σ (A)", "σ err", "MC σ err")
	for _, name := range leakest.ISCASNames() {
		nl, pl, err := leakest.ISCASCircuit(lib, name, 1)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := est.TrueLeakage(nl, pl, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.EstimateNetlist(nl, pl, 0.5, leakest.Linear)
		if err != nil {
			log.Fatal(err)
		}
		// Independent Monte-Carlo check on the smaller circuits.
		mcNote := "-"
		if len(nl.Gates) <= 1200 {
			mc, err := est.MonteCarlo(nl, pl, 0.5, 1200, 1)
			if err != nil {
				log.Fatal(err)
			}
			mcNote = fmt.Sprintf("%.2f%%", 100*math.Abs(mc.Std-truth.Std)/truth.Std)
		}
		fmt.Printf("%-8s %6d %12.4g %12.4g %8.2f%% %9s\n",
			name, len(nl.Gates), truth.Std, res.Std,
			100*math.Abs(res.Std-truth.Std)/truth.Std, mcNote)
	}
	fmt.Println("\nσ err: Random-Gate estimate vs O(n²) true leakage (paper Table 1: 0.23%–1.38%)")
	fmt.Println("MC σ err: chip-level Monte Carlo vs the same truth (sampling noise included)")
}
