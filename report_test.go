package leakest

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// failingWriter returns an error once limit bytes have been accepted,
// emulating a closed pipe partway through a report.
type failingWriter struct {
	limit   int
	written int
}

var errWriterClosed = errors.New("writer closed")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		n := f.limit - f.written
		if n < 0 {
			n = 0
		}
		f.written += n
		return n, errWriterClosed
	}
	f.written += len(p)
	return len(p), nil
}

func TestReportSections(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 400, W: 50, H: 50, SignalProb: 0.5}

	var buf bytes.Buffer
	if err := est.Report(&buf, "Test chip", design); err != nil {
		t.Fatalf("Report: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Test chip",
		"## Design characteristics",
		"| cells | 400 |",
		"## Estimates",
		"| linear |",
		"| naive |",
		"## Leakage distribution",
		"| p95 |",
		"## Variance breakdown",
		"within-die correlation",
		"## Yield vs leakage budget",
		"Budget for 95% yield",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportDefaultTitle(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 100, W: 30, H: 30, SignalProb: 0.5}
	var buf bytes.Buffer
	if err := est.Report(&buf, "", design); err != nil {
		t.Fatalf("Report: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "# Full-chip leakage sign-off\n") {
		t.Errorf("empty title must fall back to the default; got %q",
			strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

// TestReportWriterError checks the first write failure is surfaced, at the
// very first byte and partway through (after the header has gone out).
func TestReportWriterError(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 100, W: 30, H: 30, SignalProb: 0.5}
	for _, limit := range []int{0, 64} {
		err := est.Report(&failingWriter{limit: limit}, "Doomed", design)
		if !errors.Is(err, errWriterClosed) {
			t.Errorf("limit %d: got %v, want the writer's error", limit, err)
		}
	}
}

// TestReportNoMethodSucceeds: an invalid design makes every estimation
// method fail; the report must return an error rather than emit a document
// with an empty estimates table.
func TestReportNoMethodSucceeds(t *testing.T) {
	est := coreEstimator(t)
	bad := Design{Hist: coreHist(t), N: 0, W: 30, H: 30, SignalProb: 0.5}
	var buf bytes.Buffer
	err := est.Report(&buf, "Broken", bad)
	if err == nil {
		t.Fatal("report on an unestimable design must fail")
	}
	if !strings.Contains(err.Error(), "no estimation method succeeded") {
		t.Errorf("error = %v, want the no-method-succeeded diagnostic", err)
	}
}
