module leakest

go 1.22
