package leakest

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"leakest/internal/cells"
	"leakest/internal/fault"
)

// robustCircuit builds a placed random circuit for the cancellation and
// degradation tests.
func robustCircuit(t *testing.T, n int) (*Estimator, *Netlist, *Placement) {
	t.Helper()
	est := coreEstimator(t)
	nl, err := RandomCircuit(est.Library(), 7, "robust", n, 8, coreHist(t))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := AutoPlace(nl, 7)
	if err != nil {
		t.Fatal(err)
	}
	return est, nl, pl
}

func TestEstimateValidatesDesign(t *testing.T) {
	est := coreEstimator(t)
	good := Design{Hist: coreHist(t), N: 100, W: 50, H: 50, SignalProb: 0.5}
	bad := []struct {
		name   string
		mutate func(*Design)
	}{
		{"nil histogram", func(d *Design) { d.Hist = nil }},
		{"zero gates", func(d *Design) { d.N = 0 }},
		{"negative gates", func(d *Design) { d.N = -5 }},
		{"zero width", func(d *Design) { d.W = 0 }},
		{"NaN width", func(d *Design) { d.W = math.NaN() }},
		{"Inf height", func(d *Design) { d.H = math.Inf(1) }},
		{"negative height", func(d *Design) { d.H = -10 }},
		{"signal prob > 1", func(d *Design) { d.SignalProb = 1.5 }},
		{"signal prob < 0", func(d *Design) { d.SignalProb = -0.1 }},
		{"NaN signal prob", func(d *Design) { d.SignalProb = math.NaN() }},
	}
	for _, c := range bad {
		d := good
		c.mutate(&d)
		_, err := est.Estimate(d, Auto)
		if !errors.Is(err, ErrInvalidInput) {
			t.Errorf("%s: got %v, want InvalidInput", c.name, err)
		}
	}
	if _, err := est.Estimate(good, Auto); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
	// Unknown methods are invalid input too.
	if _, err := est.Estimate(good, Method(99)); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("unknown method: want InvalidInput")
	}
}

func TestCanceledContextStopsEstimate(t *testing.T) {
	est := coreEstimator(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	design := Design{Hist: coreHist(t), N: 500, W: 100, H: 100, SignalProb: 0.5}
	_, err := est.EstimateContext(ctx, design, Linear)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("EstimateContext on canceled ctx: got %v, want Canceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("typed Canceled error does not match context.Canceled")
	}
}

func TestCanceledContextStopsCharacterization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CharacterizeContext(ctx, cells.CoreSubset(), CharConfig{
		Process: DefaultProcess(), MCSamples: 500, Seed: 1,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("CharacterizeContext on canceled ctx: got %v, want Canceled", err)
	}
}

func TestDeadlineStopsCharacterizationMidLoop(t *testing.T) {
	defer fault.Reset()
	// Slow every state characterization so a short deadline lands mid-run.
	fault.Arm(fault.SiteCharState, fault.Action{Kind: fault.Sleep, Delay: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := CharacterizeContext(ctx, cells.CoreSubset(), CharConfig{
		Process: DefaultProcess(), MCSamples: 500, Seed: 1,
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	// The full core subset has dozens of states; the deadline must have
	// stopped characterization after only a few.
	states := 0
	for _, c := range cells.CoreSubset() {
		states += c.NumStates()
	}
	if hits := fault.Hits(fault.SiteCharState); hits >= states {
		t.Errorf("characterization ran all %d states despite deadline", hits)
	}
}

func TestCanceledContextStopsTrueLeakage(t *testing.T) {
	est, nl, pl := robustCircuit(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := est.TrueLeakageContext(ctx, nl, pl, 0.5)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("TrueLeakageContext on canceled ctx: got %v, want Canceled", err)
	}
}

func TestDeadlineStopsTrueLeakageMidLoop(t *testing.T) {
	defer fault.Reset()
	est, nl, pl := robustCircuit(t, 200)
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := est.TrueLeakageContext(ctx, nl, pl, 0.5)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if hits := fault.Hits(fault.SiteTruthRow); hits >= len(nl.Gates) {
		t.Errorf("pair loop ran all %d rows despite deadline", hits)
	}
}

func TestCanceledContextStopsMonteCarloMidLoop(t *testing.T) {
	defer fault.Reset()
	est, nl, pl := robustCircuit(t, 16)
	// Cancel before starting: typed Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.MonteCarloContext(ctx, nl, pl, 0.5, 100, 1); !errors.Is(err, ErrCanceled) {
		t.Errorf("pre-canceled MC: got %v, want Canceled", err)
	}
	// Slow trials + short deadline: stops within one check interval.
	fault.Arm(fault.SiteChipMCTrial, fault.Action{Kind: fault.Sleep, Delay: 2 * time.Millisecond})
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	const samples = 2000
	_, err := est.MonteCarloContext(dctx, nl, pl, 0.5, samples, 1)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if hits := fault.Hits(fault.SiteChipMCTrial); hits >= samples {
		t.Errorf("MC ran all %d trials despite deadline", hits)
	}
}

func TestMonteCarloGateBudgetTyped(t *testing.T) {
	est, nl, pl := robustCircuit(t, 16)
	// A per-run budget below the gate count must refuse with a typed
	// BudgetExceeded, not run forever or crash.
	_, err := est.MonteCarloBudgeted(context.Background(), nl, pl, 0.5, 50, 1, 8)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("got %v, want BudgetExceeded", err)
	}
	if err != nil && !strings.Contains(err.Error(), "analytic estimators") {
		t.Errorf("budget error does not point to the analytic estimators: %v", err)
	}
}

func TestBudgetRulesOutTruthDegradesToLinear(t *testing.T) {
	est, nl, pl := robustCircuit(t, 150)
	budget := EstimateBudget{MaxPairs: 100} // rules out 150·149/2 pairs
	res, err := est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Errorf("result not flagged Degraded")
	}
	if res.Method != "linear" {
		t.Errorf("degraded to %q, want linear", res.Method)
	}
	if !strings.Contains(res.DegradeReason, "MaxPairs") {
		t.Errorf("DegradeReason %q does not name the tripped budget", res.DegradeReason)
	}
	// The degraded statistics must match the O(n) estimator exactly.
	want, err := est.EstimateNetlist(nl, pl, 0.5, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != want.Mean || res.Std != want.Std {
		t.Errorf("degraded result (%g, %g) != linear estimator (%g, %g)",
			res.Mean, res.Std, want.Mean, want.Std)
	}
}

func TestBudgetRulesOutLinearDegradesToConstantTime(t *testing.T) {
	est, nl, pl := robustCircuit(t, 150)
	budget := EstimateBudget{MaxGates: 10} // rules out both O(n²) and O(n)
	res, err := est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Errorf("result not flagged Degraded")
	}
	if res.Method != "polar-1d" && res.Method != "integral-2d" {
		t.Errorf("degraded to %q, want a constant-time method", res.Method)
	}
	// Within budget: no degradation, exact truth.
	res, err = est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, EstimateBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Method != "true-n2" {
		t.Errorf("unlimited budget gave %q (degraded=%v), want true-n2", res.Method, res.Degraded)
	}
}

func TestBudgetTimeoutDegradesToLinear(t *testing.T) {
	defer fault.Reset()
	est, nl, pl := robustCircuit(t, 200)
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 2 * time.Millisecond})
	budget := EstimateBudget{Timeout: 25 * time.Millisecond}
	res, err := est.TrueLeakageBudgeted(context.Background(), nl, pl, 0.5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Method != "linear" {
		t.Errorf("timed-out truth degraded to %q (degraded=%v), want linear", res.Method, res.Degraded)
	}
	if !strings.Contains(res.DegradeReason, "timed out") {
		t.Errorf("DegradeReason %q does not mention the timeout", res.DegradeReason)
	}
}

func TestEstimateBudgetedEarlyMode(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 5000, W: 200, H: 200, SignalProb: 0.5}
	// Within budget: exact linear, not degraded.
	res, err := est.EstimateBudgeted(context.Background(), design, EstimateBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Method != "linear" {
		t.Errorf("unlimited budget gave %q (degraded=%v)", res.Method, res.Degraded)
	}
	// MaxGates below N: constant-time fallback, flagged.
	res, err = est.EstimateBudgeted(context.Background(), design, EstimateBudget{MaxGates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Errorf("result not flagged Degraded")
	}
	if res.Method != "polar-1d" && res.Method != "integral-2d" {
		t.Errorf("degraded to %q, want a constant-time method", res.Method)
	}
}

// TestFaultSitesMapToTypedErrors is the fault-injection table: every
// instrumented site, armed with NaN corruption or a panic, must surface as
// a typed Numerical error from the public API — never as a silent NaN
// result.
func TestFaultSitesMapToTypedErrors(t *testing.T) {
	est, nl, pl := robustCircuit(t, 16)
	design := Design{Hist: coreHist(t), N: 500, W: 100, H: 100, SignalProb: 0.5}

	charCfg := CharConfig{Process: DefaultProcess(), MCSamples: 500, Seed: 1}
	charCells := cells.ISCASSubset()[:2]

	cases := []struct {
		name string
		site string
		kind fault.Kind
		run  func() error
	}{
		{"characterization NaN", fault.SiteCharMoments, fault.NaN, func() error {
			_, err := Characterize(charCells, charCfg)
			return err
		}},
		{"characterization panic", fault.SiteCharState, fault.Panic, func() error {
			_, err := Characterize(charCells, charCfg)
			return err
		}},
		{"Cholesky NaN", fault.SiteCholesky, fault.NaN, func() error {
			_, err := est.MonteCarlo(nl, pl, 0.5, 50, 1)
			return err
		}},
		{"Cholesky panic", fault.SiteCholesky, fault.Panic, func() error {
			_, err := est.MonteCarlo(nl, pl, 0.5, 50, 1)
			return err
		}},
		{"MC accumulation NaN", fault.SiteChipMCTrial, fault.NaN, func() error {
			_, err := est.MonteCarlo(nl, pl, 0.5, 50, 1)
			return err
		}},
		{"MC accumulation panic", fault.SiteChipMCTrial, fault.Panic, func() error {
			_, err := est.MonteCarlo(nl, pl, 0.5, 50, 1)
			return err
		}},
		{"truth accumulation NaN", fault.SiteTruthRow, fault.NaN, func() error {
			_, err := est.TrueLeakage(nl, pl, 0.5)
			return err
		}},
		{"truth accumulation panic", fault.SiteTruthRow, fault.Panic, func() error {
			_, err := est.TrueLeakage(nl, pl, 0.5)
			return err
		}},
		{"linear accumulation NaN", fault.SiteLinearAccum, fault.NaN, func() error {
			_, err := est.Estimate(design, Linear)
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer fault.Reset()
			fault.Arm(c.site, fault.Action{Kind: c.kind})
			err := c.run()
			if !errors.Is(err, ErrNumerical) {
				t.Errorf("fault at %s surfaced as %v, want Numerical", c.site, err)
			}
			var ee *EstimationError
			if !errors.As(err, &ee) || ee.Op == "" {
				t.Errorf("fault at %s lost its faulting site: %v", c.site, err)
			}
		})
	}
}

// TestNoSilentNaNWithoutFaults double-checks the guards do not misfire on
// healthy runs under every public entry point used above.
func TestNoSilentNaNWithoutFaults(t *testing.T) {
	est, nl, pl := robustCircuit(t, 16)
	if _, err := est.MonteCarlo(nl, pl, 0.5, 50, 1); err != nil {
		t.Errorf("MonteCarlo: %v", err)
	}
	if _, err := est.TrueLeakage(nl, pl, 0.5); err != nil {
		t.Errorf("TrueLeakage: %v", err)
	}
}
