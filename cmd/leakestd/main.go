// Command leakestd serves full-chip leakage estimation over HTTP/JSON.
//
//	leakestd -addr :8080 -workers 4
//
// Endpoints:
//
//	POST   /v1/estimate    synchronous estimation (histogram or .bench)
//	POST   /v1/jobs        asynchronous job submission
//	GET    /v1/jobs/{id}   job state, progress, result
//	DELETE /v1/jobs/{id}   job cancellation
//	GET    /healthz        liveness (503 while draining)
//	GET    /metrics        Prometheus text format
//
// The service degrades gracefully under overload: queued requests are
// admitted with tightening estimation budgets (so they answer with cheaper
// estimators, reason recorded in the response) and only requests past the
// hard queue cap are shed with 429 + Retry-After. SIGTERM/SIGINT drains
// in-flight work under the -drain deadline, then force-cancels.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leakest"
	"leakest/internal/cells"
	"leakest/internal/server"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "leakestd: "+format+"\n", args...)
	os.Exit(1)
}

func cellSet(name string) ([]*cells.Cell, error) {
	switch name {
	case "full":
		return leakest.BuiltinCells(), nil
	case "core":
		return cells.CoreSubset(), nil
	case "iscas":
		return cells.ISCASSubset(), nil
	default:
		return nil, fmt.Errorf("unknown cell set %q (full|core|iscas)", name)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent estimation workers; 0 = server default")
	queueCap := flag.Int("queue-cap", 0, "hard queue cap before shedding with 429; 0 = 4x workers")
	maxJobs := flag.Int("max-jobs", 0, "max live async jobs before shedding; 0 = server default")
	cellsFlag := flag.String("cells", "iscas", "cell library to characterize on demand: full|core|iscas")
	charMC := flag.Int("char-mc", 0, "Monte-Carlo samples per cell for on-demand characterization; 0 = library default")
	reqTimeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	verbose := flag.Bool("v", false, "structured debug log on stderr")
	flag.Parse()

	if *verbose {
		leakest.SetLogger(slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug})))
	}
	cellLib, err := cellSet(*cellsFlag)
	if err != nil {
		fail("%v", err)
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		MaxJobs:        *maxJobs,
		Cells:          cellLib,
		CharMCSamples:  *charMC,
		DefaultTimeout: *reqTimeout,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "leakestd: serving on %s (workers=%d, cells=%s)\n",
		ln.Addr(), srv.Workers(), *cellsFlag)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fail("serve: %v", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "leakestd: shutting down (drain deadline %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections while the estimation workers drain; the
	// server refuses new work (503) the moment draining begins, so the two
	// shutdowns can overlap.
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Shutdown(dctx) }()
	if err := srv.Shutdown(dctx); err != nil {
		fail("drain: %v", err)
	}
	<-httpDone
	fmt.Fprintln(os.Stderr, "leakestd: drained cleanly")
}
