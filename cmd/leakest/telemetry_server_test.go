package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestTelemetryServerShutsDownOnCancel: the Ctrl-C regression test. The
// -listen server must answer while the run context is live, then stop
// accepting connections once it is canceled — via http.Server.Shutdown,
// not by being abandoned.
func TestTelemetryServerShutsDownOnCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ts := startTelemetryServer(ctx, ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "metrics ok")
	}), nil)
	addr := ln.Addr().String()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET while live: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "metrics ok" {
		t.Fatalf("live server answered %d %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case <-ts.done:
	case <-time.After(3 * time.Second):
		t.Fatal("server did not shut down after context cancel")
	}
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("listener still accepting connections after shutdown")
	}
}

// TestTelemetryServerDrainsInFlight: a request already being served when the
// context is canceled completes instead of being torn down mid-response.
func TestTelemetryServerDrainsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ts := startTelemetryServer(ctx, ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	}), nil)

	type got struct {
		body string
		err  error
	}
	result := make(chan got, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			result <- got{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		result <- got{body: string(b), err: err}
	}()

	<-entered
	cancel()
	// Shutdown is now waiting on the in-flight handler; let it finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	r := <-result
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request: body %q err %v, want a drained response", r.body, r.err)
	}
	select {
	case <-ts.done:
	case <-time.After(3 * time.Second):
		t.Fatal("server did not finish shutdown after draining")
	}
}
