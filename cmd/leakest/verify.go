package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"leakest/internal/conformance"
)

// runVerify implements the `leakest verify` subcommand: the statistical
// conformance harness that cross-validates every estimation path and the
// frozen experiment goldens, then proves its own sensitivity with the
// mutation self-check. Exit codes: 0 all green, 1 conformance or self-check
// failure, 2 bad invocation or infrastructure error.
func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leakest verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	short := fs.Bool("short", false, "trim fixture sizes and MC trial counts (the CI setting)")
	workers := fs.Int("workers", 0, "goroutines for the estimator loops; 0 = all cores (report identical at any setting)")
	seed := fs.Int64("seed", 0, "override every random stream (0 = the shared characterization seed)")
	jsonPath := fs.String("json", "", "write the full conformance report JSON to this path; \"-\" = stdout")
	qmc := fs.Bool("qmc", false, "run the quasi-Monte-Carlo suite instead: scrambled-Sobol convergence, equal-SE ratio, and frozen-referee gates")
	tiled := fs.Bool("tiled", false, "run the tiled-pipeline suite instead: bitwise tiled-vs-monolithic, tile/worker invariance, streaming round trip, and the tiled MC law")
	skipMutation := fs.Bool("skip-mutation", false, "skip the mutation self-check (it roughly doubles the runtime)")
	verbose := fs.Bool("v", false, "list every check, not just failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "leakest verify: unexpected arguments %q\n", fs.Args())
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := conformance.Config{Short: *short, Seed: *seed, Workers: *workers}

	run, selfCheck := conformance.Run, conformance.MutationSelfCheck
	switch {
	case *qmc && *tiled:
		fmt.Fprintln(stderr, "leakest verify: -qmc and -tiled are mutually exclusive")
		return 2
	case *qmc:
		run, selfCheck = conformance.RunQMC, conformance.QMCSelfCheck
	case *tiled:
		run, selfCheck = conformance.RunTiled, conformance.TiledSelfCheck
	}
	rep, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "leakest verify: %v\n", err)
		return 2
	}
	if !*skipMutation {
		results, err := selfCheck(ctx, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "leakest verify: %v\n", err)
			return 2
		}
		rep.SelfCheck = results
	}

	rep.Summarize(stdout, *verbose)
	ok := rep.OK()
	if rep.SelfCheck != nil {
		for _, r := range rep.SelfCheck {
			if r.Caught {
				continue
			}
			ok = false
			fmt.Fprintf(stdout, "SELF-CHECK FAIL: a %g× %s/%s perturbation slipped through every check\n",
				r.Factor, r.Target, r.Moment)
		}
		if conformance.AllCaught(rep.SelfCheck) {
			fmt.Fprintf(stdout, "mutation self-check: %d/%d perturbations caught\n",
				len(rep.SelfCheck), len(rep.SelfCheck))
		}
	}
	if *jsonPath != "" {
		out := stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(stderr, "leakest verify: %v\n", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintf(stderr, "leakest verify: %v\n", err)
			return 2
		}
		if *jsonPath != "-" {
			fmt.Fprintf(stderr, "wrote %s\n", *jsonPath)
		}
	}
	if !ok {
		return 1
	}
	return 0
}
