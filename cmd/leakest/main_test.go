package main

import (
	"testing"

	"leakest"
)

func TestParseHist(t *testing.T) {
	h, err := parseHist("INV_X1:3, NAND2_X1:2 ,NOR2_X1:1,")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 {
		t.Fatalf("parsed %d entries", h.Len())
	}
	if p := h.Prob("INV_X1"); p != 0.5 {
		t.Errorf("P(INV_X1) = %g, want 0.5", p)
	}
	bad := []string{
		"INV_X1",       // no colon
		"INV_X1:x",     // bad weight
		"INV_X1:-1",    // negative weight
		"",             // empty
		"INV_X1:0,B:0", // zero total
	}
	for _, s := range bad {
		if _, err := parseHist(s); err == nil {
			t.Errorf("parseHist(%q) accepted", s)
		}
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]leakest.Method{
		"auto":     leakest.Auto,
		"linear":   leakest.Linear,
		"integral": leakest.Integral2D,
		"polar":    leakest.Polar,
		"naive":    leakest.Naive,
	}
	for s, want := range cases {
		got, err := parseMethod(s)
		if err != nil {
			t.Errorf("parseMethod(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("parseMethod(%q) = %v", s, got)
		}
	}
	if _, err := parseMethod("spicy"); err == nil {
		t.Errorf("unknown method accepted")
	}
}
