package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// telemetryServer wraps the -listen HTTP server with context-driven graceful
// shutdown: when the run's context is canceled (Ctrl-C, -timeout), the
// server is stopped via http.Server.Shutdown so in-flight /metrics and
// pprof requests drain and the listener closes, instead of the goroutine
// being abandoned until process exit.
type telemetryServer struct {
	srv  *http.Server
	done chan struct{} // closed once Serve has returned and shutdown finished
}

// startTelemetryServer serves handler on ln until ctx is canceled, then
// shuts down gracefully. onErr (optional) receives a listener failure.
func startTelemetryServer(ctx context.Context, ln net.Listener, handler http.Handler, onErr func(error)) *telemetryServer {
	ts := &telemetryServer{
		srv:  &http.Server{Handler: handler},
		done: make(chan struct{}),
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ts.srv.Serve(ln) }()
	go func() {
		defer close(ts.done)
		select {
		case err := <-serveErr:
			// The listener died on its own (port stolen, bad handler):
			// report it; there is nothing left to shut down.
			if err != nil && !errors.Is(err, http.ErrServerClosed) && onErr != nil {
				onErr(err)
			}
			return
		case <-ctx.Done():
		}
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = ts.srv.Shutdown(sctx)
		<-serveErr
	}()
	return ts
}

// Wait blocks until the server has fully stopped, bounded by d.
func (t *telemetryServer) Wait(d time.Duration) {
	select {
	case <-t.done:
	case <-time.After(d):
	}
}
