// Command leakest estimates full-chip leakage statistics with the
// Random-Gate model of the DAC 2007 paper.
//
// Early mode (design characteristics as expectations):
//
//	leakest -n 250000 -w 1000 -h 1000 -hist "INV_X1:3,NAND2_X1:2,NOR2_X1:1"
//
// Late mode (extract characteristics from a placed netlist):
//
//	leakest -bench c432.bench [-truth]
//
// A characterized library JSON (from cellchar) can be supplied with -lib;
// otherwise the built-in ISCAS cell subset is characterized on the fly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"leakest"
	"leakest/internal/cells"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "leakest: "+format+"\n", args...)
	os.Exit(1)
}

// meter renders a live single-line progress display (-v) and remembers the
// last report so an interrupted run can say how far it got.
type meter struct {
	verbose bool
	last    atomic.Value // leakest.Progress
}

func (m *meter) report(p leakest.Progress) {
	m.last.Store(p)
	if !m.verbose {
		return
	}
	if p.Final {
		// A final report with Done < Total is a stage that stopped early
		// (cancel, deadline, budget); render its real percentage.
		fmt.Fprintf(os.Stderr, "\r%-24s %d/%d (%.1f%%) in %s            \n",
			p.Stage, p.Done, p.Total, p.Percent(), p.Elapsed.Round(time.Millisecond))
		return
	}
	eta := "?"
	if p.ETA >= 0 {
		eta = p.ETA.Round(time.Second).String()
	}
	fmt.Fprintf(os.Stderr, "\r%-24s %d/%d (%.1f%%) eta %s      ",
		p.Stage, p.Done, p.Total, p.Percent(), eta)
}

// partial returns the last progress report seen, if any.
func (m *meter) partial() (leakest.Progress, bool) {
	p, ok := m.last.Load().(leakest.Progress)
	return p, ok
}

var prog meter

// failErr renders a typed estimation error with its class so scripts can
// tell a bad invocation from a cancel or an internal numeric failure.
func failErr(what string, err error) {
	switch {
	case errors.Is(err, leakest.ErrCanceled):
		if prog.verbose {
			fmt.Fprintln(os.Stderr)
		}
		if p, ok := prog.partial(); ok && p.Done < p.Total {
			fmt.Fprintf(os.Stderr, "leakest: interrupted during %s at %d/%d (%.1f%%, %s elapsed)\n",
				p.Stage, p.Done, p.Total, p.Percent(), p.Elapsed.Round(time.Millisecond))
		}
		fail("%s: interrupted (%v)", what, err)
	case errors.Is(err, leakest.ErrDeadlineExceeded):
		fail("%s: timed out (%v)", what, err)
	case errors.Is(err, leakest.ErrBudgetExceeded):
		fail("%s: over budget (%v)", what, err)
	case errors.Is(err, leakest.ErrInvalidInput):
		fail("%s: invalid input (%v)", what, err)
	default:
		fail("%s: %v", what, err)
	}
}

func parseHist(s string) (*leakest.Histogram, error) {
	weights := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad histogram entry %q (want CELL:WEIGHT)", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight in %q: %v", part, err)
		}
		weights[strings.TrimSpace(kv[0])] = w
	}
	return leakest.NewHistogram(weights)
}

// parseQuantiles parses the -quantiles flag: comma-separated probabilities,
// each strictly inside (0, 1). Validation beyond syntax (range, NaN,
// duplicates) is the library's job, so bad values surface as the same typed
// InvalidInput errors the server returns.
func parseQuantiles(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var qs []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		q, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad quantile %q: %v", part, err)
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// printTail renders the Monte-Carlo tail block: quantiles, the exceedance
// estimate with its provenance, and the importance-sampling diagnostics.
func printTail(ts *leakest.TailStats) {
	if ts == nil {
		return
	}
	for _, qp := range ts.Quantiles {
		fmt.Printf("  P%-7s %.4g A\n", strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", 100*qp.P), "0"), "."), qp.Value)
	}
	if ts.Spec == 0 {
		return
	}
	fmt.Printf("  P[I > %.4g A] = %.3g ± %.2g (%s", ts.Spec, ts.P, ts.SE, ts.Source)
	if ts.ISTrials > 0 {
		fmt.Printf("; IS %d trials, shift %.2f, hit ESS %.1f", ts.ISTrials, ts.Shift, ts.HitESS)
	}
	fmt.Printf(")\n")
	if ts.Degraded {
		fmt.Printf("  tail degraded: %s\n", ts.DegradedReason)
	}
}

func parseMethod(s string) (leakest.Method, error) {
	switch s {
	case "auto":
		return leakest.Auto, nil
	case "linear":
		return leakest.Linear, nil
	case "integral":
		return leakest.Integral2D, nil
	case "polar":
		return leakest.Polar, nil
	case "naive":
		return leakest.Naive, nil
	default:
		return 0, fmt.Errorf("unknown method %q (auto|linear|integral|polar|naive)", s)
	}
}

func main() {
	// Subcommands come before the flag-driven estimation modes; `leakest
	// verify` runs the conformance harness.
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		os.Exit(runVerify(os.Args[2:], os.Stdout, os.Stderr))
	}
	libPath := flag.String("lib", "", "characterized library JSON (from cellchar); default: characterize built-in cells")
	full := flag.Bool("full", false, "with no -lib: characterize the full 62-cell library instead of the ISCAS subset")
	benchPath := flag.String("bench", "", "late mode: ISCAS85 .bench netlist to estimate")
	histFlag := flag.String("hist", "", "early mode: cell-usage histogram, e.g. \"INV_X1:3,NAND2_X1:2\"")
	n := flag.Int("n", 0, "early mode: number of cells")
	w := flag.Float64("w", 0, "early mode: layout width in µm")
	h := flag.Float64("h", 0, "early mode: layout height in µm")
	p := flag.Float64("p", -1, "signal probability; -1 = use the leakage-maximizing setting")
	methodFlag := flag.String("method", "auto", "estimator: auto|linear|integral|polar|naive")
	truth := flag.Bool("truth", false, "late mode: also compute the O(n²) true leakage for comparison")
	mc := flag.Int("mc", 0, "late mode: also run a full-chip Monte Carlo with this many samples")
	samplerFlag := flag.String("sampler", "auto", "Monte-Carlo field sampler: auto|dense|fft|qmc")
	tiles := flag.Int("tiles", 0, "partition the die T×T and estimate per-tile with exact inter-tile combination (linear/auto/integral methods); 0 or 1 = monolithic")
	streamPath := flag.String("stream", "", "streaming mode: one-pass estimate of a leakest-stream v1 file (die size and tiling come from its header)")
	batch := flag.Int("batch", 0, "with -sampler qmc: trial fields per batched FFT pass; 0 = default")
	spec := flag.Float64("spec", 0, "with -mc: leakage spec in A; report P[I_leak > spec] (yield at spec)")
	quantilesFlag := flag.String("quantiles", "", "with -mc: comma-separated tail probabilities, e.g. \"0.5,0.95,0.999\"")
	tailTrials := flag.Int("tail-trials", 0, "with -spec: importance-sampled deep-tail trial budget; 0 = plain MC only")
	vt := flag.Bool("vt", true, "apply the random-Vt mean correction")
	seed := flag.Int64("seed", 1, "random seed (placement of -bench netlists)")
	workers := flag.Int("workers", 0, "goroutines for the long loops; 0 = all cores, 1 = serial (results identical)")
	reportPath := flag.String("report", "", "write a markdown sign-off report to this path")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget (e.g. 30s); 0 = none")
	maxGates := flag.Int("max-gates", 0, "budget: degrade to cheaper estimators beyond this many gates; 0 = no limit")
	maxPairs := flag.Int64("max-pairs", 0, "budget: skip the O(n²) truth beyond this many gate pairs; 0 = no limit")
	listen := flag.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address during the run")
	verbose := flag.Bool("v", false, "verbose: structured pipeline log and a live progress meter on stderr")
	jsonReport := flag.String("json-report", "", "write a JSON run report (result, stage timings, metrics) to this path; \"-\" = stdout")
	tracePath := flag.String("trace", "", "write the run's span tree as Chrome trace-event JSON (open in chrome://tracing) to this path")
	flag.Parse()

	// Ctrl-C cancels the run cleanly; -timeout bounds it. Both surface as
	// typed Canceled / DeadlineExceeded errors from the library. The meter
	// keeps the last progress report so an interrupted run prints how far
	// it got before dying.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	prog.verbose = *verbose
	ctx = leakest.WithProgress(ctx, prog.report)
	var runTrace *leakest.Trace
	if *tracePath != "" {
		runTrace = leakest.NewTrace()
		ctx = leakest.WithTrace(ctx, runTrace)
	}
	if *verbose {
		leakest.SetLogger(slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug})))
	}
	if *jsonReport != "" {
		leakest.EnableMetrics()
	}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fail("telemetry server: %v", err)
		}
		ts := startTelemetryServer(ctx, ln, leakest.TelemetryHandler(), func(err error) {
			fmt.Fprintf(os.Stderr, "leakest: telemetry server: %v\n", err)
		})
		// On any return path, cancel the run context (Ctrl-C already has)
		// and wait for the graceful http.Server.Shutdown to finish.
		defer func() {
			stop()
			ts.Wait(3 * time.Second)
		}()
		fmt.Fprintf(os.Stderr, "serving /metrics, /debug/vars and /debug/pprof/ on %s\n", ln.Addr())
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	budget := leakest.EstimateBudget{MaxGates: *maxGates, MaxPairs: *maxPairs}
	budgeted := *maxGates > 0 || *maxPairs > 0

	method, err := parseMethod(*methodFlag)
	if err != nil {
		fail("%v", err)
	}

	var lib *leakest.Library
	switch {
	case *libPath != "":
		lib, err = leakest.LoadLibrary(*libPath)
		if err != nil {
			fail("loading library: %v", err)
		}
	case *full:
		fmt.Fprintln(os.Stderr, "characterizing the full 62-cell library (~10 s)...")
		lib, err = leakest.DefaultLibrary()
		if err != nil {
			fail("characterizing: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "characterizing the built-in ISCAS cell subset...")
		lib, err = leakest.CharacterizeContext(ctx, cells.ISCASSubset(), leakest.CharConfig{
			Process: leakest.DefaultProcess(), Seed: 20070604, Workers: *workers,
		})
		if err != nil {
			failErr("characterizing", err)
		}
	}

	est, err := leakest.NewEstimator(lib, nil)
	if err != nil {
		fail("%v", err)
	}
	est.ApplyVtMean = *vt
	est.Workers = *workers
	est.Sampler, err = leakest.ParseSampler(*samplerFlag)
	if err != nil {
		fail("%v", err)
	}
	est.Batch = *batch
	est.Tiles = *tiles
	est.Spec = *spec
	est.TailTrials = *tailTrials
	est.Quantiles, err = parseQuantiles(*quantilesFlag)
	if err != nil {
		fail("%v", err)
	}
	if (*spec != 0 || *quantilesFlag != "" || *tailTrials != 0) && *mc == 0 {
		fail("-spec, -quantiles and -tail-trials need a Monte-Carlo run; add -mc N")
	}

	// Streaming mode: the netlist never fully materializes, so the design is
	// extracted and estimated in one pass and the in-memory-only extras
	// (-truth, -mc, -report) are refused up front.
	if *streamPath != "" {
		if *benchPath != "" || *histFlag != "" {
			fail("-stream is its own input mode; drop -bench/-hist")
		}
		if *truth || *mc > 0 || *reportPath != "" {
			fail("-truth, -mc and -report need an in-memory netlist; not available with -stream")
		}
		sp := *p
		if sp < 0 {
			sp = 0.5
			fmt.Fprintln(os.Stderr, "note: streaming mode defaults the signal probability to 0.5 (pass -p to override)")
		}
		f, err := os.Open(*streamPath)
		if err != nil {
			fail("%v", err)
		}
		res, err := est.EstimateStream(ctx, f, sp)
		f.Close()
		if err != nil {
			failErr("streaming estimate", err)
		}
		gates := 0
		for _, ts := range res.TileStats {
			gates += ts.Gates
		}
		fmt.Printf("stream mode: %d gates in %d tiles\n", gates, len(res.TileStats))
		fmt.Printf("\nmethod: %s", res.Method)
		if res.Note != "" {
			fmt.Printf(" (%s)", res.Note)
		}
		fmt.Printf("\nmean leakage: %.4g A\nstd  leakage: %.4g A  (%.2f%% of mean)\n",
			res.Mean, res.Std, 100*res.Std/res.Mean)
		fmt.Printf("mean + 3σ:    %.4g A\n", res.Mean+3*res.Std)
		if *jsonReport != "" {
			writeJSONReport(*jsonReport, leakest.Design{N: gates, SignalProb: sp}, res, nil, nil)
		}
		if runTrace != nil {
			writeTraceFile(*tracePath, runTrace)
		}
		return
	}

	var design leakest.Design
	var nl *leakest.Netlist
	var pl *leakest.Placement
	if *benchPath != "" {
		nl, err = leakest.ReadBenchFile(*benchPath)
		if err != nil {
			fail("reading %s: %v", *benchPath, err)
		}
		pl, err = leakest.AutoPlace(nl, *seed)
		if err != nil {
			fail("placing: %v", err)
		}
		design, err = est.ExtractDesign(nl, pl, 0.5)
		if err != nil {
			fail("extracting characteristics: %v", err)
		}
		fmt.Printf("late mode: %s — %d gates, %d cell types, die %.1f×%.1f µm\n",
			nl.Name, design.N, design.Hist.Len(), design.W, design.H)
	} else {
		if *histFlag == "" || *n == 0 || *w == 0 || *h == 0 {
			fail("early mode needs -hist, -n, -w and -h (or use -bench FILE); see -help")
		}
		hist, err := parseHist(*histFlag)
		if err != nil {
			fail("%v", err)
		}
		design = leakest.Design{Hist: hist, N: *n, W: *w, H: *h}
		fmt.Printf("early mode: %d gates, %d cell types, die %.1f×%.1f µm\n",
			design.N, design.Hist.Len(), design.W, design.H)
	}

	if *p < 0 {
		pStar, err := est.MaxLeakageSignalProb(design.Hist)
		if err != nil {
			fail("maximizing signal probability: %v", err)
		}
		design.SignalProb = pStar
		fmt.Printf("signal probability: %.3f (leakage-maximizing, conservative)\n", pStar)
	} else {
		design.SignalProb = *p
		fmt.Printf("signal probability: %.3f\n", *p)
	}

	var res leakest.Result
	if budgeted {
		res, err = est.EstimateBudgeted(ctx, design, budget)
	} else {
		res, err = est.EstimateContext(ctx, design, method)
	}
	if err != nil {
		failErr("estimating", err)
	}
	fmt.Printf("\nmethod: %s", res.Method)
	if res.Note != "" {
		fmt.Printf(" (%s)", res.Note)
	}
	if len(res.TileStats) > 0 {
		fmt.Printf("\ntiles: %d (exact inter-tile combination)", len(res.TileStats))
	}
	if res.Degraded {
		fmt.Printf("\ndegraded: %s", res.DegradeReason)
	}
	fmt.Printf("\nmean leakage: %.4g A\nstd  leakage: %.4g A  (%.2f%% of mean)\n",
		res.Mean, res.Std, 100*res.Std/res.Mean)
	fmt.Printf("mean + 3σ:    %.4g A\n", res.Mean+3*res.Std)

	var truthRes *leakest.Result
	if *truth && nl != nil {
		var tr leakest.Result
		if budgeted {
			tr, err = est.TrueLeakageBudgeted(ctx, nl, pl, design.SignalProb, budget)
		} else {
			tr, err = est.TrueLeakageContext(ctx, nl, pl, design.SignalProb)
		}
		if err != nil {
			failErr("true leakage", err)
		}
		if tr.Degraded {
			fmt.Printf("\ntruth degraded to %s: %s\n", tr.Method, tr.DegradeReason)
		}
		fmt.Printf("\ntrue O(n²):   mean %.4g A, std %.4g A\n", tr.Mean, tr.Std)
		fmt.Printf("estimate err: mean %+.2f%%, std %+.2f%%\n",
			100*(res.Mean-tr.Mean)/tr.Mean, 100*(res.Std-tr.Std)/tr.Std)
		truthRes = &tr
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fail("creating report: %v", err)
		}
		title := "Full-chip leakage sign-off"
		if nl != nil {
			title = "Leakage sign-off: " + nl.Name
		}
		if err := est.Report(f, title, design); err != nil {
			fail("writing report: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("closing report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *reportPath)
	}
	var mcRes *leakest.MonteCarloResult
	if *mc > 0 && nl != nil {
		if est.ApplyVtMean {
			fmt.Fprintln(os.Stderr, "note: Monte Carlo below excludes the Vt mean factor")
		}
		r, err := est.MonteCarloContext(ctx, nl, pl, design.SignalProb, *mc, *seed)
		if err != nil {
			failErr("monte carlo", err)
		}
		fmt.Printf("\nchip MC (%d): mean %.4g A, std %.4g A, 5th–95th pct [%.4g, %.4g] A\n",
			r.Samples, r.Mean, r.Std, r.Q05, r.Q95)
		printTail(r.Tail)
		mcRes = &r
	}
	if *jsonReport != "" {
		writeJSONReport(*jsonReport, design, res, truthRes, mcRes)
	}
	if runTrace != nil {
		writeTraceFile(*tracePath, runTrace)
	}
}

// writeTraceFile renders the run's span tree as Chrome trace-event JSON.
// Called at the end of main (not deferred): fail() exits the process, and a
// half-written trace from a failed run would not be loadable anyway.
func writeTraceFile(path string, tr *leakest.Trace) {
	tr.SetOutcome("ok")
	f, err := os.Create(path)
	if err != nil {
		fail("trace file: %v", err)
	}
	if err := leakest.WriteChromeTrace(f, tr.Snapshot()); err != nil {
		f.Close()
		fail("trace file: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("trace file: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote trace (%s) to %s\n", tr.ID(), path)
}

// runReport is the machine-readable summary written by -json-report: the
// design, the estimate (with its per-stage timing breakdown), the optional
// O(n²) truth and Monte-Carlo results, and a snapshot of every metric the
// run collected.
type runReport struct {
	Design struct {
		N          int     `json:"n"`
		W          float64 `json:"w_um"`
		H          float64 `json:"h_um"`
		SignalProb float64 `json:"signal_prob"`
	} `json:"design"`
	Result     leakest.Result            `json:"result"`
	Truth      *leakest.Result           `json:"truth,omitempty"`
	MonteCarlo *leakest.MonteCarloResult `json:"monte_carlo,omitempty"`
	Metrics    map[string]any            `json:"metrics"`
}

func writeJSONReport(path string, design leakest.Design, res leakest.Result, truth *leakest.Result, mc *leakest.MonteCarloResult) {
	var rep runReport
	rep.Design.N = design.N
	rep.Design.W = design.W
	rep.Design.H = design.H
	rep.Design.SignalProb = design.SignalProb
	rep.Result = res
	rep.Truth = truth
	rep.MonteCarlo = mc
	rep.Metrics = leakest.MetricsSnapshot()
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail("encoding json report: %v", err)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fail("writing json report: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
