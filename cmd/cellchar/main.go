// Command cellchar characterizes the built-in standard-cell library for
// statistical leakage and writes the result as JSON for reuse by the other
// tools. It optionally prints the §2.1.2 accuracy report comparing the
// analytical (a, b, c)+MGF moments against Monte Carlo.
//
// Usage:
//
//	cellchar -out library.json [-subset full|core|iscas] [-mc 20000] [-report]
package main

import (
	"flag"
	"fmt"
	"os"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/experiments"
	"leakest/internal/spatial"
)

func main() {
	out := flag.String("out", "library.json", "output path for the characterized library")
	subset := flag.String("subset", "full", "cell subset: full (62 cells), core, or iscas")
	mcSamples := flag.Int("mc", 20000, "Monte-Carlo samples per cell state")
	seed := flag.Int64("seed", 20070604, "random seed")
	report := flag.Bool("report", false, "print the fit-vs-MC accuracy table (paper §2.1.2)")
	sigma := flag.Float64("sigma", 0, "override total channel-length sigma in µm (0 = default 4% of L)")
	flag.Parse()

	var cellList []*cells.Cell
	switch *subset {
	case "full":
		cellList = cells.Library()
	case "core":
		cellList = cells.CoreSubset()
	case "iscas":
		cellList = cells.ISCASSubset()
	default:
		fmt.Fprintf(os.Stderr, "cellchar: unknown subset %q\n", *subset)
		os.Exit(2)
	}

	proc := spatial.Default90nm()
	if *sigma > 0 {
		// Keep the 50/50 D2D/WID split at the requested total.
		proc.SigmaD2D = *sigma * 0.7071067811865476
		proc.SigmaWID = proc.SigmaD2D
	}
	fmt.Fprintf(os.Stderr, "characterizing %d cells (process: L=%g µm, σ=%g µm, %s)...\n",
		len(cellList), proc.LNominal, proc.TotalSigma(), proc.WIDCorr.Name())

	lib, err := charlib.Characterize(cellList, charlib.Config{
		Process:   proc,
		MCSamples: *mcSamples,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellchar: %v\n", err)
		os.Exit(1)
	}
	if err := lib.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "cellchar: %v\n", err)
		os.Exit(1)
	}
	states := 0
	for _, cc := range lib.Cells {
		states += len(cc.States)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells, %d states)\n", *out, len(lib.Cells), states)

	if *report {
		t, err := experiments.CellAccuracy(lib)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellchar: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(t.String())
	}
}
