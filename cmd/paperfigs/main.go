// Command paperfigs regenerates every table and figure of the paper's
// evaluation section (and the ablations catalogued in DESIGN.md) and prints
// them as plain-text tables with notes comparing against the numbers the
// paper reports.
//
// Usage:
//
//	paperfigs                 # run everything at paper scale
//	paperfigs -exp table1     # one experiment
//	paperfigs -quick          # reduced sizes for a fast smoke run
//
// Experiments: cellacc (E1/§2.1.2), fig2 (E2), fig3 (E3), fig6 (E4),
// table1 (E5/Table 1), simplcorr (E6/§3.1.2), fig7 (E7), vt (E9),
// naive (E10), scaling (E11), gateleak (EX1 extension), gridcmp (EX2
// grid-model comparison), temp (EX3 temperature sweep), sigprop (EX4
// propagated signal probabilities).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"leakest/internal/charlib"
	"leakest/internal/conformance"
	"leakest/internal/core"
	"leakest/internal/experiments"
	"leakest/internal/stats"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperfigs: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all|cellacc|fig2|fig3|fig6|table1|simplcorr|fig7|vt|naive|gateleak|gridcmp|temp|sigprop|scaling)")
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	fullLib := flag.Bool("fulllib", false, "use the full 62-cell library where possible (slower characterization)")
	flag.Parse()

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// The chip-level experiments use the ISCAS cell subset (its mixes are
	// what the benchmark circuits instantiate); cellacc and fig3 can use
	// the full library.
	fmt.Fprintln(os.Stderr, "characterizing cell library...")
	lib, err := charlib.SharedISCAS()
	if err != nil {
		fail("%v", err)
	}
	wideLib := lib
	if *fullLib {
		fmt.Fprintln(os.Stderr, "characterizing the full 62-cell library (~10 s)...")
		wideLib, err = charlib.SharedFull()
		if err != nil {
			fail("%v", err)
		}
	}

	hist, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 25, "BUF_X1": 5, "NAND2_X1": 25, "NAND3_X1": 8,
		"NOR2_X1": 15, "AND2_X1": 12, "OR2_X1": 6, "XOR2_X1": 4,
	})
	if err != nil {
		fail("%v", err)
	}

	pick := func(full, reduced []int) []int {
		if *quick {
			return reduced
		}
		return full
	}
	ran := 0
	checked := 0
	var violations []string
	// checkClaims gates every claim an experiment makes about itself against
	// the conformance envelopes (recorded measured errors plus declared
	// headroom). A claim with no recorded envelope is itself a violation —
	// new claims must land together with their envelope.
	checkClaims := func(name string, t *experiments.Table) {
		for _, c := range t.Claims {
			label := c.Name
			if c.N > 0 {
				label = fmt.Sprintf("%s@%d", c.Name, c.N)
			}
			checked++
			bound, ok := conformance.RecordedEnvelope(c.Name, c.N)
			switch {
			case !ok:
				violations = append(violations,
					fmt.Sprintf("%s: %s has no recorded envelope (value %.4g)", name, label, c.Value))
				fmt.Fprintf(os.Stderr, "check %-24s %10.4g  FAIL (no recorded envelope)\n", label, c.Value)
			case c.Value > bound:
				violations = append(violations,
					fmt.Sprintf("%s: %s = %.4g exceeds the recorded envelope %.4g", name, label, c.Value, bound))
				fmt.Fprintf(os.Stderr, "check %-24s %10.4g  FAIL (> %.4g)\n", label, c.Value, bound)
			default:
				fmt.Fprintf(os.Stderr, "check %-24s %10.4g  ok (≤ %.4g)\n", label, c.Value, bound)
			}
		}
	}
	run := func(name string, fn func() (*experiments.Table, error)) {
		if !want(name) {
			return
		}
		ran++
		start := time.Now()
		t, err := fn()
		if err != nil {
			fail("%s: %v", name, err)
		}
		fmt.Println(t.String())
		checkClaims(name, t)
		fmt.Fprintf(os.Stderr, "[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("cellacc", func() (*experiments.Table, error) {
		return experiments.CellAccuracy(wideLib)
	})
	run("fig2", func() (*experiments.Table, error) {
		samples := 60000
		if *quick {
			samples = 8000
		}
		return experiments.Fig2(experiments.Fig2Config{Lib: lib, MCSamples: samples, Seed: *seed})
	})
	run("fig3", func() (*experiments.Table, error) {
		nandHeavy, err := stats.NewHistogram(map[string]float64{"NAND2_X1": 4, "NAND3_X1": 2, "INV_X1": 2})
		if err != nil {
			return nil, err
		}
		norHeavy, err := stats.NewHistogram(map[string]float64{"NOR2_X1": 5, "INV_X1": 2, "OR2_X1": 1})
		if err != nil {
			return nil, err
		}
		return experiments.Fig3(experiments.Fig3Config{
			Lib: lib,
			Profiles: map[string]*stats.Histogram{
				"nand-heavy": nandHeavy, "nor-heavy": norHeavy, "balanced": hist,
			},
		})
	})
	run("fig6", func() (*experiments.Table, error) {
		return experiments.Fig6(experiments.Fig6Config{
			Lib:   lib,
			Hist:  hist,
			Sides: pick([]int{10, 21, 32, 45, 71, 106}, []int{8, 16, 32}),
			Reps:  pickInt(*quick, 10, 4),
			Seed:  *seed,
			Mode:  core.Analytic,
		})
	})
	run("table1", func() (*experiments.Table, error) {
		return experiments.Table1(experiments.Table1Config{Lib: lib, Seed: *seed, Mode: core.Analytic})
	})
	run("simplcorr", func() (*experiments.Table, error) {
		return experiments.SimplifiedCorr(experiments.SimplifiedCorrConfig{
			Lib: lib, Hist: hist, Sides: pick([]int{32, 71, 106}, []int{16, 32}),
		})
	})
	run("fig7", func() (*experiments.Table, error) {
		return experiments.Fig7(experiments.Fig7Config{
			Lib:   lib,
			Hist:  hist,
			Sides: pick([]int{5, 8, 16, 32, 71, 106, 178, 316, 562, 1000}, []int{5, 16, 64}),
			Mode:  core.Analytic,
		})
	})
	run("vt", func() (*experiments.Table, error) {
		return experiments.VtAblation(experiments.VtAblationConfig{
			Lib: lib, Hist: hist,
			Sides:   pick([]int{16, 32, 50}, []int{10}),
			Samples: pickInt(*quick, 1500, 300),
			Seed:    *seed,
		})
	})
	run("naive", func() (*experiments.Table, error) {
		return experiments.NaiveBaseline(experiments.NaiveBaselineConfig{
			Lib: lib, Hist: hist,
			Sides: pick([]int{10, 32, 100, 316, 1000}, []int{10, 32}),
			Mode:  core.Analytic,
		})
	})
	run("gateleak", func() (*experiments.Table, error) {
		return experiments.GateLeakAblation(experiments.GateLeakConfig{
			Hist: hist,
			Side: pickInt(*quick, 45, 16),
			Seed: *seed,
		})
	})
	run("gridcmp", func() (*experiments.Table, error) {
		return experiments.GridCompare(experiments.GridCompareConfig{
			Lib:  lib,
			Hist: hist,
			Side: pickInt(*quick, 45, 16),
			Seed: *seed,
		})
	})
	run("temp", func() (*experiments.Table, error) {
		return experiments.TemperatureSweep(experiments.TemperatureConfig{
			Hist: hist,
			Side: pickInt(*quick, 32, 10),
			Seed: *seed,
		})
	})
	run("sigprop", func() (*experiments.Table, error) {
		return experiments.SignalPropagation(experiments.SigPropConfig{
			Lib:  lib,
			Hist: hist,
			Side: pickInt(*quick, 32, 12),
			Seed: *seed,
		})
	})
	run("scaling", func() (*experiments.Table, error) {
		return experiments.Scaling(experiments.ScalingConfig{
			Lib: lib, Hist: hist,
			TrueSides: pick([]int{16, 32, 59}, []int{10, 16}),
			FastSides: pick([]int{32, 100, 316, 1000}, []int{32, 100}),
			Seed:      *seed,
			Mode:      core.Analytic,
		})
	})
	if ran == 0 {
		known := []string{"all", "cellacc", "fig2", "fig3", "fig6", "table1", "simplcorr", "fig7", "vt", "naive", "gateleak", "gridcmp", "temp", "sigprop", "scaling"}
		fail("unknown experiment %q (known: %s)", *exp, strings.Join(known, ", "))
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "paperfigs: %d of %d claim(s) outside their recorded envelope:\n",
			len(violations), checked)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	if checked > 0 {
		fmt.Fprintf(os.Stderr, "paperfigs: all %d claim(s) within their recorded envelopes\n", checked)
	}
}

func pickInt(quick bool, full, reduced int) int {
	if quick {
		return reduced
	}
	return full
}
