package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseLine(t *testing.T) {
	line := "BenchmarkEstimateLinear-8   \t       1\t  12345678 ns/op\t  4096 B/op\t     12 allocs/op\t  0.44 avg-mean-err-%"
	b, ok := parseLine(line)
	if !ok {
		t.Fatalf("line not recognized")
	}
	if b.Name != "EstimateLinear" || b.Iterations != 1 {
		t.Errorf("name/iters = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 12345678 || b.BytesPerOp != 4096 || b.AllocsOp != 12 {
		t.Errorf("parsed values = %+v", b)
	}
	if b.Gates != 1000000 {
		t.Errorf("gates = %d, want the EstimateLinear design size", b.Gates)
	}
	if b.Procs != 8 {
		t.Errorf("procs = %d, want 8 from the -8 suffix", b.Procs)
	}
	if b.Metrics["avg-mean-err-%"] != 0.44 {
		t.Errorf("custom metric missing: %+v", b.Metrics)
	}
}

func TestParseLineHealthMetrics(t *testing.T) {
	line := "BenchmarkChipMCFFT-4 \t 1\t 305737340 ns/op\t 0.5 cache-hits/op\t 2 degradations/op\t 1.000 sampler:fft"
	b, ok := parseLine(line)
	if !ok {
		t.Fatalf("line not recognized")
	}
	if b.Sampler != "fft" {
		t.Errorf("sampler = %q, want fft", b.Sampler)
	}
	if b.CacheHits != 0.5 || b.Degradations != 2 {
		t.Errorf("cache-hits/degradations = %v/%v, want 0.5/2", b.CacheHits, b.Degradations)
	}
	if len(b.Metrics) != 0 {
		t.Errorf("promoted units must not also land in Metrics: %+v", b.Metrics)
	}
}

func TestParseLineQMCSamplerAndBatch(t *testing.T) {
	line := "BenchmarkChipMCQMC-4 \t 1\t 205737340 ns/op\t 1.000 sampler:qmc\t 16 batch"
	b, ok := parseLine(line)
	if !ok {
		t.Fatalf("line not recognized")
	}
	if b.Sampler != "qmc" {
		t.Errorf("sampler = %q, want qmc", b.Sampler)
	}
	if b.Batch != 16 {
		t.Errorf("batch = %d, want 16", b.Batch)
	}
	if b.Gates != 10000 {
		t.Errorf("gates = %d, want the ChipMCQMC design size", b.Gates)
	}
	if len(b.Metrics) != 0 {
		t.Errorf("promoted units must not also land in Metrics: %+v", b.Metrics)
	}
}

func TestParseLineTilesAndPeakBytes(t *testing.T) {
	line := "BenchmarkChipMCTiled-8 \t 1\t 905737340 ns/op\t 64 tiles\t 1.234e+08 peak-bytes"
	b, ok := parseLine(line)
	if !ok {
		t.Fatalf("line not recognized")
	}
	if b.Tiles != 64 {
		t.Errorf("tiles = %d, want 64", b.Tiles)
	}
	if b.PeakBytes != 1.234e8 {
		t.Errorf("peak-bytes = %v, want 1.234e8", b.PeakBytes)
	}
	if b.Gates != 1000000 {
		t.Errorf("gates = %d, want the ChipMCTiled design size", b.Gates)
	}
	if len(b.Metrics) != 0 {
		t.Errorf("promoted units must not also land in Metrics: %+v", b.Metrics)
	}

	b, ok = parseLine("BenchmarkEstimateStream-8 \t 1\t 2905737340 ns/op\t 256 tiles\t 5.6e+07 peak-bytes")
	if !ok {
		t.Fatalf("stream line not recognized")
	}
	if b.Gates != 10000000 || b.Tiles != 256 || b.PeakBytes != 5.6e7 {
		t.Errorf("stream bench parsed as %+v", b)
	}
}

func TestParseLineWorkersSubBenchmark(t *testing.T) {
	b, ok := parseLine("BenchmarkTrueLeakageWorkers/workers=4-8 \t 3\t 41000000 ns/op")
	if !ok {
		t.Fatalf("line not recognized")
	}
	if b.Name != "TrueLeakageWorkers/workers=4" {
		t.Errorf("name = %q; the sub-benchmark path must survive", b.Name)
	}
	if b.Workers != 4 || b.Procs != 8 {
		t.Errorf("workers/procs = %d/%d, want 4/8", b.Workers, b.Procs)
	}
	if b.Gates != 3512 {
		t.Errorf("gates = %d, want the c7552 size keyed off the base name", b.Gates)
	}
}

func TestParseLineKeepsNonNumericSuffix(t *testing.T) {
	// A dash that is part of the benchmark name (no GOMAXPROCS suffix,
	// as with -cpu=1 output on some toolchains) must not be stripped.
	b, ok := parseLine("BenchmarkPolar-1d 5 1000 ns/op")
	if !ok || b.Name != "Polar-1d" || b.Procs != 0 {
		t.Errorf("b = %+v, ok = %v", b, ok)
	}
	b, ok = parseLine("BenchmarkTruth-fast 5 1000 ns/op")
	if !ok || b.Name != "Truth-fast" || b.Procs != 0 {
		t.Errorf("non-numeric suffix stripped: %+v, ok = %v", b, ok)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  \tleakest\t33s",
		"goos: linux", "# TYPE x counter",
		"BenchmarkBroken-8 notanumber 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseLineWithoutGateCount(t *testing.T) {
	b, ok := parseLine("BenchmarkFig2-4 1 31944639 ns/op")
	if !ok || b.Gates != 0 {
		t.Errorf("b = %+v, ok = %v; want gates omitted", b, ok)
	}
}

func TestBudgetFlagParsing(t *testing.T) {
	b := budgets{}
	if err := b.Set("Fig6=41s"); err != nil {
		t.Fatal(err)
	}
	if err := b.Set("Table1=1500ms"); err != nil {
		t.Fatal(err)
	}
	if b["Fig6"] != 41*time.Second || b["Table1"] != 1500*time.Millisecond {
		t.Errorf("budgets = %v", b)
	}
	for _, bad := range []string{"Fig6", "=41s", "Fig6=", "Fig6=-1s", "Fig6=0s", "Fig6=fast"} {
		if err := b.Set(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if got := b.String(); got != "Fig6=41s,Table1=1.5s" {
		t.Errorf("String() = %q", got)
	}
}

func TestOverBudget(t *testing.T) {
	bs := []Bench{
		{Name: "Fig6", NsPerOp: 40e9},
		{Name: "Table1", NsPerOp: 3e9},
		{Name: "TrueLeakageWorkers/workers=4", NsPerOp: 9e9},
	}
	bud := budgets{
		"Fig6":               41 * time.Second, // under
		"Table1":             2 * time.Second,  // over
		"TrueLeakageWorkers": 5 * time.Second,  // sub-benchmark over, keyed by base name
		"ChipMCFFT":          10 * time.Second, // never ran
	}
	viols := overBudget(bs, bud)
	if len(viols) != 3 {
		t.Fatalf("violations = %v, want 3", viols)
	}
	joined := strings.Join(viols, "\n")
	for _, want := range []string{"BenchmarkTable1 took", "BenchmarkTrueLeakageWorkers/workers=4 took", "BenchmarkChipMCFFT has a 10s budget but did not run"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "BenchmarkFig6") {
		t.Errorf("under-budget benchmark flagged:\n%s", joined)
	}
	if viols := overBudget(bs, budgets{}); viols != nil {
		t.Errorf("no budgets must mean no violations, got %v", viols)
	}
}
