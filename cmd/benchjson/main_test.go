package main

import "testing"

func TestParseLine(t *testing.T) {
	line := "BenchmarkEstimateLinear-8   \t       1\t  12345678 ns/op\t  4096 B/op\t     12 allocs/op\t  0.44 avg-mean-err-%"
	b, ok := parseLine(line)
	if !ok {
		t.Fatalf("line not recognized")
	}
	if b.Name != "EstimateLinear" || b.Iterations != 1 {
		t.Errorf("name/iters = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 12345678 || b.BytesPerOp != 4096 || b.AllocsOp != 12 {
		t.Errorf("parsed values = %+v", b)
	}
	if b.Gates != 1000000 {
		t.Errorf("gates = %d, want the EstimateLinear design size", b.Gates)
	}
	if b.Metrics["avg-mean-err-%"] != 0.44 {
		t.Errorf("custom metric missing: %+v", b.Metrics)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  \tleakest\t33s",
		"goos: linux", "# TYPE x counter",
		"BenchmarkBroken-8 notanumber 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseLineWithoutGateCount(t *testing.T) {
	b, ok := parseLine("BenchmarkFig2-4 1 31944639 ns/op")
	if !ok || b.Gates != 0 {
		t.Errorf("b = %+v, ok = %v; want gates omitted", b, ok)
	}
}
