// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable benchmark report. It echoes every input line to
// stdout unchanged (so `make bench` still shows the normal benchmark text)
// and writes a JSON array of parsed results — name, iterations, ns/op,
// B/op, allocs/op, the design's gate count where one is defined, and any
// custom b.ReportMetric values — to the -o path.
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' . | benchjson -o BENCH_leakest.json
//
// Repeatable -budget NAME=DURATION flags turn the report into a regression
// gate: the run exits non-zero when the named benchmark's ns/op exceeds the
// budget, or when a budgeted benchmark is missing from the input (a
// silently skipped benchmark must not pass its gate).
//
//	... | benchjson -o BENCH_leakest.json -budget Fig6=41s -budget Table1=2s
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// gateCounts maps benchmarks that exercise a single design to its gate
// count, so ns/op can be read as time-per-design-size. Experiment-table
// benchmarks sweep many sizes and are reported without one.
var gateCounts = map[string]int{
	"EstimateLinear":       1000000,
	"EstimateConstantTime": 1000000,
	"TrueLeakage":          383,  // c880
	"TrueLeakageWorkers":   3512, // c7552
	"FastTrueLeakage":      3512, // c7552
	"Floorplan":            130000,
	"ChipMCFFT":            10000,
	"ChipMCQMC":            10000,
	"TruthClassed":         11236, // 106², Fig. 6's largest size
	"ChipMCTiled":          1000000,
	"EstimateStream":       10000000,
}

// budgets collects the repeatable -budget NAME=DURATION flags.
type budgets map[string]time.Duration

func (b budgets) String() string {
	parts := make([]string, 0, len(b))
	for name, d := range b {
		parts = append(parts, name+"="+d.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (b budgets) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=DURATION, got %q", s)
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return err
	}
	if d <= 0 {
		return fmt.Errorf("budget %q must be positive", s)
	}
	b[name] = d
	return nil
}

// overBudget checks every parsed benchmark whose base name carries a budget
// and returns one violation line per benchmark over its budget — plus one
// per budgeted name that never appeared in the input.
func overBudget(bs []Bench, bud budgets) []string {
	var out []string
	seen := make(map[string]bool, len(bud))
	for _, b := range bs {
		base := b.Name
		if i := strings.IndexByte(base, '/'); i >= 0 {
			base = base[:i]
		}
		limit, ok := bud[base]
		if !ok {
			continue
		}
		seen[base] = true
		if got := time.Duration(b.NsPerOp); got > limit {
			out = append(out, fmt.Sprintf("Benchmark%s took %s, over its %s budget", b.Name, got.Round(time.Millisecond), limit))
		}
	}
	for name := range bud {
		if !seen[name] {
			out = append(out, fmt.Sprintf("Benchmark%s has a %s budget but did not run", name, bud[name]))
		}
	}
	sort.Strings(out)
	return out
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	Gates      int     `json:"gates,omitempty"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -P name
	// suffix); Workers is the pool size of a "/workers=N" sub-benchmark.
	// Both are kept so entries at different parallelism settings stay
	// distinguishable in the report.
	Procs   int                `json:"procs,omitempty"`
	Workers int                `json:"workers,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Numerical-health facts reported by the benchmarks themselves (see
	// reportHealthMetrics in bench_test.go): the Monte-Carlo sampler the
	// run actually used, and per-op degradation / artifact-cache-hit
	// counts read from the telemetry registry.
	Sampler      string  `json:"sampler,omitempty"`
	Degradations float64 `json:"degradations_per_op,omitempty"`
	CacheHits    float64 `json:"cache_hits_per_op,omitempty"`
	// Batch is the qmc sampler's trial-fields-per-FFT-pass batch size
	// (the "batch" unit BenchmarkChipMCQMC reports).
	Batch int `json:"batch,omitempty"`
	// Tiles is the tile count a tiled-pipeline benchmark ran with, and
	// PeakBytes its high-water heap mark (the "tiles" and "peak-bytes"
	// units of BenchmarkChipMCTiled and BenchmarkEstimateStream).
	Tiles     int     `json:"tiles,omitempty"`
	PeakBytes float64 `json:"peak_bytes,omitempty"`
}

// Report is the top-level document written to -o.
type Report struct {
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  V unit  V unit ..." line;
// ok is false for non-benchmark lines.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	// Strip the -P suffix only when it is numeric: benchmark names may
	// themselves contain dashes, which must survive.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	// Gate counts key off the base name so "/workers=N" (and other
	// sub-benchmark) variants of a single-design benchmark keep theirs.
	base := name
	if i := strings.IndexByte(base, '/'); i >= 0 {
		base = base[:i]
	}
	b := Bench{Name: name, Iterations: iters, Gates: gateCounts[base], Procs: procs}
	for _, part := range strings.Split(name, "/")[1:] {
		if w, ok := strings.CutPrefix(part, "workers="); ok {
			if n, err := strconv.Atoi(w); err == nil {
				b.Workers = n
			}
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		case "degradations/op":
			b.Degradations = v
		case "cache-hits/op":
			b.CacheHits = v
		case "batch":
			b.Batch = int(v)
		case "tiles":
			b.Tiles = int(v)
		case "peak-bytes":
			b.PeakBytes = v
		default:
			if s, ok := strings.CutPrefix(unit, "sampler:"); ok {
				b.Sampler = s
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func main() {
	out := flag.String("o", "BENCH_leakest.json", "output path for the JSON report")
	bud := budgets{}
	flag.Var(bud, "budget", "fail when a benchmark exceeds its wall-time budget, e.g. Fig6=41s (repeatable)")
	flag.Parse()

	rep := Report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	if viols := overBudget(rep.Benchmarks, bud); len(viols) > 0 {
		for _, v := range viols {
			fmt.Fprintf(os.Stderr, "benchjson: %s\n", v)
		}
		os.Exit(1)
	}
}
