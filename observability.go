package leakest

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"time"

	"leakest/internal/telemetry"
)

// This file is the public surface of the telemetry layer
// (internal/telemetry): metrics, stage spans, progress reporting and
// structured logging for the estimation pipeline.
//
// Everything here is off by default and costs the instrumented hot paths a
// nil-check (one atomic load) when off — see the "Observability" section of
// the README for the zero-overhead contract. Turn pieces on independently:
//
//	leakest.EnableMetrics()                  // start collecting metrics
//	http.ListenAndServe(addr, leakest.TelemetryHandler())
//	leakest.SetLogger(slog.Default())        // structured pipeline logging
//	ctx = leakest.WithProgress(ctx, fn)      // per-call progress reports
type (
	// Progress is one rate-limited progress report from a long-running
	// pipeline loop (characterization, the linear estimator, the O(n²)
	// pair loop, or the chip Monte-Carlo trials).
	Progress = telemetry.Progress
	// ProgressFunc receives progress reports. It runs on the estimation
	// goroutine, so it must be fast and must not block.
	ProgressFunc = telemetry.ProgressFunc
	// StageTiming is one entry of Result.Timings: a pipeline stage and its
	// wall-clock duration.
	StageTiming = telemetry.StageTiming
	// Trace is a request-scoped span tree: every estimation call under a
	// WithTrace context records its stages (and their numerical-health
	// attributes — sampler, degradation rung, clamp bias, …) into it.
	Trace = telemetry.Trace
	// TraceSnapshot is a Trace's exported form: ID, outcome, and the span
	// tree with per-span attributes.
	TraceSnapshot = telemetry.TraceSnapshot
)

// WithProgress returns a context whose estimation calls report loop
// progress to fn, at most ~10 times per second per loop plus one final
// report. Thread it through EstimateContext, CharacterizeContext,
// TrueLeakageContext, MonteCarloContext and the budgeted variants.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return telemetry.WithProgress(ctx, fn)
}

// WithProgressInterval is WithProgress with an explicit minimum interval
// between reports; interval ≤ 0 reports at every loop checkpoint.
func WithProgressInterval(ctx context.Context, fn ProgressFunc, interval time.Duration) context.Context {
	return telemetry.WithProgressInterval(ctx, fn, interval)
}

// SetLogger installs a structured logger for the estimation pipeline
// (degradation warnings, stage completions at Debug level). A nil logger —
// the default — disables logging entirely.
func SetLogger(l *slog.Logger) { telemetry.SetLogger(l) }

// EnableMetrics turns on the process-wide metrics registry (counters such
// as chipmc_trials_total and histograms such as
// estimate_duration_seconds{method=...}) and returns nothing; metrics stay
// off — and the hot paths at uninstrumented speed — until it is called.
func EnableMetrics() { telemetry.Enable() }

// MetricsSnapshot returns the current value of every collected metric,
// keyed by full metric name (empty when EnableMetrics was never called).
func MetricsSnapshot() map[string]any {
	r := telemetry.Default()
	if r == nil {
		return map[string]any{}
	}
	return r.Snapshot()
}

// WriteMetrics renders the collected metrics in the Prometheus text
// exposition format; it writes nothing when metrics are disabled.
func WriteMetrics(w interface{ Write([]byte) (int, error) }) {
	if r := telemetry.Default(); r != nil {
		r.WritePrometheus(w)
	}
}

// NewTrace returns an empty trace; attach it with WithTrace to collect the
// span tree of every estimation call under that context.
func NewTrace() *Trace { return telemetry.NewTrace() }

// WithTrace returns a context carrying t. Estimation calls under it record
// their stage spans and attributes into t instead of a fresh per-call trace,
// so one CLI run (characterize → estimate → truth → MC) yields one tree.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return telemetry.WithTrace(ctx, t)
}

// WriteChromeTrace renders a trace snapshot as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto (cmd/leakest -trace writes this).
func WriteChromeTrace(w io.Writer, snap TraceSnapshot) error {
	return telemetry.WriteChrome(w, snap)
}

// TelemetryHandler enables metrics collection and returns the
// observability endpoint of the estimation pipeline: Prometheus text at
// /metrics, the expvar dump at /debug/vars, and the pprof suite under
// /debug/pprof/. cmd/leakest serves it behind -listen; embedders can mount
// it on their own server.
func TelemetryHandler() http.Handler {
	return telemetry.NewMux(telemetry.Enable())
}
