package leakest

import (
	"bytes"
	"context"
	"testing"

	"leakest/internal/charlib"
	"leakest/internal/lkerr"
)

// tiledTestEstimator builds a shared-library estimator and a small placed
// design for the public tiled-surface tests.
func tiledTestEstimator(t *testing.T, n int) (*Estimator, *Netlist, *Placement) {
	t.Helper()
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := RandomCircuit(lib, 11, "tiled-public", n, 6, mustHist(t, map[string]float64{
		"INV_X1": 2, "NAND2_X1": 3, "NOR2_X1": 1}))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := AutoPlace(nl, 12)
	if err != nil {
		t.Fatal(err)
	}
	return est, nl, pl
}

func mustHist(t *testing.T, w map[string]float64) *Histogram {
	t.Helper()
	h, err := NewHistogram(w)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestEstimatorTiles: the public Tiles knob routes linear/auto/integral to
// the tiled estimators — bitwise equal moments for linear — and refuses the
// untileable methods.
func TestEstimatorTiles(t *testing.T) {
	est, nl, pl := tiledTestEstimator(t, 120)
	design, err := est.ExtractDesign(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	est.Tiles = 3
	for _, method := range []Method{Linear, Auto} {
		tiled, err := est.Estimate(design, method)
		if err != nil {
			t.Fatal(err)
		}
		if tiled.Mean != mono.Mean || tiled.Std != mono.Std {
			t.Fatalf("%s tiled moments (%v, %v) != monolithic (%v, %v)",
				method, tiled.Mean, tiled.Std, mono.Mean, mono.Std)
		}
		if tiled.Method != "linear-tiled" {
			t.Fatalf("method %q, want linear-tiled", tiled.Method)
		}
		if len(tiled.TileStats) != 9 {
			t.Fatalf("%d tile stats, want 9", len(tiled.TileStats))
		}
	}
	if res, err := est.Estimate(design, Integral2D); err != nil {
		t.Fatal(err)
	} else if res.Method != "integral2d-tiled" {
		t.Fatalf("method %q, want integral2d-tiled", res.Method)
	}
	for _, method := range []Method{Polar, Naive} {
		if _, err := est.Estimate(design, method); !lkerr.IsCode(err, lkerr.InvalidInput) {
			t.Fatalf("%s with Tiles=3: got %v, want InvalidInput", method, err)
		}
	}
	est.Tiles = -3
	if _, err := est.Estimate(design, Linear); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("Tiles=-3: got %v, want InvalidInput", err)
	}
	if _, err := est.EstimateBudgeted(context.Background(), design, EstimateBudget{}); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("budgeted Tiles=-3: got %v, want InvalidInput", err)
	}
}

// TestEstimateStream: the one-pass streaming estimator reproduces the
// in-memory tiled (and hence monolithic linear) result bitwise, because the
// stream header carries the same (histogram, N, W, H) the extractor derives.
func TestEstimateStream(t *testing.T) {
	est, nl, pl := tiledTestEstimator(t, 90)
	const tiles = 3
	var buf bytes.Buffer
	if err := WriteStream(&buf, nl, pl, tiles); err != nil {
		t.Fatal(err)
	}
	streamed, err := est.EstimateStream(context.Background(), bytes.NewReader(buf.Bytes()), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := est.EstimateNetlist(nl, pl, 0.5, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Mean != mono.Mean || streamed.Std != mono.Std {
		t.Fatalf("streamed (%v, %v) != in-memory linear (%v, %v)",
			streamed.Mean, streamed.Std, mono.Mean, mono.Std)
	}
	if streamed.Method != "linear-tiled" {
		t.Fatalf("method %q", streamed.Method)
	}
	gates := 0
	for _, ts := range streamed.TileStats {
		gates += ts.Gates
	}
	if gates != len(nl.Gates) {
		t.Fatalf("tile stats cover %d gates, want %d", gates, len(nl.Gates))
	}
	// Malformed streams surface as typed InvalidInput.
	if _, err := est.EstimateStream(context.Background(), bytes.NewReader(buf.Bytes()[:buf.Len()/2]), 0.5); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("truncated stream: got %v, want InvalidInput", err)
	}
}

// TestMonteCarloTiles: the Tiles knob reaches the Monte-Carlo path and its
// validation (polar-style refusals are chipmc's: dense sampler + tiling).
func TestMonteCarloTiles(t *testing.T) {
	est, nl, pl := tiledTestEstimator(t, 64)
	est.Tiles = 2
	res, err := est.MonteCarlo(nl, pl, 0.5, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 24 || res.Std <= 0 {
		t.Fatalf("tiled MC result %+v", res)
	}
	est.Sampler = SamplerDense
	if _, err := est.MonteCarlo(nl, pl, 0.5, 24, 7); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("tiled+dense: got %v, want InvalidInput", err)
	}
}
