package leakest

import (
	"fmt"
	"io"
	"time"
)

// Report writes a markdown leakage sign-off report for a design: the
// high-level characteristics, estimates from every applicable method, the
// matched leakage distribution with quantiles, the variance breakdown, and
// a yield-versus-budget table. It is the human-facing summary of the
// paper's Fig. 1 flow and is exposed in cmd/leakest via -report.
func (e *Estimator) Report(w io.Writer, title string, design Design) error {
	if title == "" {
		title = "Full-chip leakage sign-off"
	}
	pr := func(format string, args ...any) {} // replaced below to thread errors
	var firstErr error
	pr = func(format string, args ...any) {
		if firstErr != nil {
			return
		}
		_, firstErr = fmt.Fprintf(w, format, args...)
	}

	pr("# %s\n\n", title)
	pr("Method: Random-Gate statistical leakage estimation " +
		"(Heloue/Azizi/Najm, DAC 2007).\n\n")
	pr("## Design characteristics\n\n")
	pr("| characteristic | value |\n|---|---|\n")
	pr("| cells | %d |\n", design.N)
	pr("| layout | %.4g × %.4g µm (%.3g mm²) |\n",
		design.W, design.H, design.W*design.H/1e6)
	pr("| cell types | %d |\n", design.Hist.Len())
	pr("| signal probability | %.3f |\n", design.SignalProb)
	pr("| process | L = %.4g µm, σ_L = %.4g µm (D2D %.4g / WID %.4g), %s |\n",
		e.proc.LNominal, e.proc.TotalSigma(), e.proc.SigmaD2D, e.proc.SigmaWID,
		e.proc.WIDCorr.Name())
	if e.ApplyVtMean {
		pr("| random-Vt mean factor | ×%.3f (σ_Vt = %.3g V) |\n",
			e.VtMeanFactor(), e.proc.SigmaVt)
	}
	pr("\n## Estimates\n\n")
	pr("| method | mean (A) | σ (A) | σ/mean | note |\n|---|---|---|---|---|\n")
	var primary Result
	havePrimary := false
	for _, method := range []Method{Linear, Integral2D, Polar, Naive} {
		res, err := e.Estimate(design, method)
		if err != nil {
			pr("| %s | — | — | — | %v |\n", method, err)
			continue
		}
		pr("| %s | %.4g | %.4g | %.2f%% | %s |\n",
			method, res.Mean, res.Std, 100*res.Std/res.Mean, res.Note)
		if !havePrimary {
			primary, havePrimary = res, true
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if !havePrimary {
		return fmt.Errorf("leakest: no estimation method succeeded for the report")
	}

	dist, err := DistributionOf(primary)
	if err != nil {
		return err
	}
	pr("\n## Leakage distribution (lognormal, matched to the %s estimate)\n\n", primary.Method)
	pr("| quantile | leakage (A) |\n|---|---|\n")
	for _, q := range []float64{0.05, 0.25, 0.50, 0.75, 0.95, 0.99, 0.999} {
		pr("| p%g | %.4g |\n", q*100, dist.Quantile(q))
	}

	bd, err := e.Breakdown(design)
	if err != nil {
		return err
	}
	i, fl, wid := bd.Fractions()
	pr("\n## Variance breakdown\n\n")
	pr("| source | share of σ² |\n|---|---|\n")
	pr("| independent (gate choice, local) | %.1f%% |\n", 100*i)
	pr("| die-to-die (shared) | %.1f%% |\n", 100*fl)
	pr("| within-die correlation | %.1f%% |\n", 100*wid)

	pr("\n## Yield vs leakage budget\n\n")
	pr("| budget | yield |\n|---|---|\n")
	for _, mult := range []float64{0.9, 1.0, 1.1, 1.25, 1.5, 2.0} {
		pr("| %.2f × mean | %.2f%% |\n", mult, 100*dist.CDF(primary.Mean*mult))
	}
	b95, err := dist.YieldBudget(0.95)
	if err != nil {
		return err
	}
	pr("\nBudget for 95%% yield: **%.4g A** (%.2f× the mean).\n", b95, b95/primary.Mean)
	pr("\n_Generated %s._\n", time.Now().UTC().Format(time.RFC3339))
	return firstErr
}
