package charlib

import (
	"sync"

	"leakest/internal/cells"
	"leakest/internal/spatial"
)

// The shared characterizations below memoize the expensive cell
// characterization for the default process. Characterization depends only
// on the channel-length mean and total sigma — not on the spatial
// correlation function — so a shared library can be combined with any
// correlation model whose sigma split matches (the estimators validate
// this).

var (
	sharedFullOnce sync.Once
	sharedFull     *Library
	sharedFullErr  error

	sharedCoreOnce sync.Once
	sharedCore     *Library
	sharedCoreErr  error

	sharedISCASOnce sync.Once
	sharedISCAS     *Library
	sharedISCASErr  error
)

// SharedFull returns the full 62-cell library characterized under the
// default 90 nm process, computed once per process.
func SharedFull() (*Library, error) {
	sharedFullOnce.Do(func() {
		sharedFull, sharedFullErr = Characterize(cells.Library(), Config{
			Process: spatial.Default90nm(),
			Seed:    20070604, // DAC 2007 opening day
		})
	})
	return sharedFull, sharedFullErr
}

// SharedCore returns the characterized topology-diverse core subset, for
// fast tests and examples.
func SharedCore() (*Library, error) {
	sharedCoreOnce.Do(func() {
		sharedCore, sharedCoreErr = Characterize(cells.CoreSubset(), Config{
			Process:   spatial.Default90nm(),
			MCSamples: 5000,
			Seed:      20070604,
		})
	})
	return sharedCore, sharedCoreErr
}

// SharedISCAS returns the characterized cell subset used by the synthetic
// ISCAS85 benchmarks (Table 1 experiment).
func SharedISCAS() (*Library, error) {
	sharedISCASOnce.Do(func() {
		sharedISCAS, sharedISCASErr = Characterize(cells.ISCASSubset(), Config{
			Process: spatial.Default90nm(),
			Seed:    20070604,
		})
	})
	return sharedISCAS, sharedISCASErr
}
