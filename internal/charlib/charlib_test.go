package charlib

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"leakest/internal/cells"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func coreLib(t *testing.T) *Library {
	t.Helper()
	lib, err := SharedCore()
	if err != nil {
		t.Fatalf("SharedCore: %v", err)
	}
	return lib
}

func TestCharacterizeCore(t *testing.T) {
	lib := coreLib(t)
	if len(lib.Cells) != len(cells.CoreSubset()) {
		t.Fatalf("characterized %d cells", len(lib.Cells))
	}
	for _, cc := range lib.Cells {
		if len(cc.States) != 1<<uint(cc.NumInputs) {
			t.Errorf("%s: %d states for %d inputs", cc.Name, len(cc.States), cc.NumInputs)
		}
		for _, st := range cc.States {
			if !(st.MCMean > 0 && st.MCStd > 0) {
				t.Errorf("%s/%d: MC moments %g, %g", cc.Name, st.State, st.MCMean, st.MCStd)
			}
			if !(st.FitMean > 0 && st.FitStd > 0) {
				t.Errorf("%s/%d: fit moments %g, %g", cc.Name, st.State, st.FitMean, st.FitStd)
			}
			if st.A <= 0 {
				t.Errorf("%s/%d: fit amplitude %g", cc.Name, st.State, st.A)
			}
			if st.B >= 0 {
				t.Errorf("%s/%d: fitted b = %g, leakage must decrease with L", cc.Name, st.State, st.B)
			}
		}
	}
}

// The §2.1.2 validation: analytical moments close to MC moments for every
// cell and state. The paper reports mean errors < 2 % (avg 0.44 %) and
// sigma errors avg 3.1 %, max ≈ 10 %.
func TestAnalyticalVsMCAccuracy(t *testing.T) {
	lib := coreLib(t)
	var meanErrs, stdErrs []float64
	for _, cc := range lib.Cells {
		for _, st := range cc.States {
			meanErrs = append(meanErrs, math.Abs(stats.RelErr(st.FitMean, st.MCMean)))
			stdErrs = append(stdErrs, math.Abs(stats.RelErr(st.FitStd, st.MCStd)))
		}
	}
	meanAvg := stats.Mean(meanErrs)
	stdAvg := stats.Mean(stdErrs)
	_, meanMax := stats.MinMax(meanErrs)
	_, stdMax := stats.MinMax(stdErrs)
	t.Logf("mean err: avg %.2f%%, max %.2f%% | std err: avg %.2f%%, max %.2f%%",
		meanAvg, meanMax, stdAvg, stdMax)
	// Generous envelopes: MC with 5000 samples has ~1.5 % noise on std.
	if meanAvg > 3 || meanMax > 8 {
		t.Errorf("mean errors too large: avg %.2f%%, max %.2f%%", meanAvg, meanMax)
	}
	if stdAvg > 8 || stdMax > 25 {
		t.Errorf("std errors too large: avg %.2f%%, max %.2f%%", stdAvg, stdMax)
	}
}

func TestFitABCRecoversExactModel(t *testing.T) {
	// If ln I is exactly quadratic the fit must recover (a, b, c).
	a, b, c := 2.5e-9, -75.0, 300.0
	ls := []float64{0.080, 0.084, 0.088, 0.092, 0.096, 0.100}
	gotA, gotB, gotC, err := FitABC(ls, func(l float64) float64 {
		return math.Log(a) + b*l + c*l*l
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotA-a)/a > 1e-6 || math.Abs(gotB-b) > 1e-6*math.Abs(b) || math.Abs(gotC-c) > 1e-4*math.Abs(c) {
		t.Errorf("fit = (%g, %g, %g), want (%g, %g, %g)", gotA, gotB, gotC, a, b, c)
	}
}

func TestFitABCErrors(t *testing.T) {
	if _, _, _, err := FitABC([]float64{1, 2}, func(float64) float64 { return 0 }); err == nil {
		t.Errorf("expected error for too few points")
	}
	if _, _, _, err := FitABC([]float64{1, 1, 1}, func(float64) float64 { return 0 }); err == nil {
		t.Errorf("expected error for degenerate grid")
	}
}

func TestStateProbAndEffectiveStats(t *testing.T) {
	lib := coreLib(t)
	nand, err := lib.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	// State probabilities sum to 1 for any p.
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		sum := 0.0
		for s := uint(0); s < 4; s++ {
			sum += nand.StateProb(s, p)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("p=%g: state probs sum to %g", p, sum)
		}
	}
	// p = 0 selects state 0 exactly.
	m0, _ := nand.EffectiveStats(0, true)
	if math.Abs(m0-nand.States[0].MCMean) > 1e-18 {
		t.Errorf("p=0 mean %g != state-0 mean %g", m0, nand.States[0].MCMean)
	}
	// p = 1 selects the all-ones state.
	m1, _ := nand.EffectiveStats(1, true)
	if math.Abs(m1-nand.States[3].MCMean) > 1e-18 {
		t.Errorf("p=1 mean %g != state-3 mean %g", m1, nand.States[3].MCMean)
	}
	// Mixture mean is a convex combination: within [min, max] state means.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, st := range nand.States {
		lo = math.Min(lo, st.MCMean)
		hi = math.Max(hi, st.MCMean)
	}
	m, sd := nand.EffectiveStats(0.5, true)
	if m < lo || m > hi {
		t.Errorf("p=0.5 mean %g outside [%g, %g]", m, lo, hi)
	}
	if sd <= 0 {
		t.Errorf("p=0.5 std = %g", sd)
	}
}

func TestCellLookup(t *testing.T) {
	lib := coreLib(t)
	if _, err := lib.Cell("INV_X1"); err != nil {
		t.Errorf("Cell(INV_X1): %v", err)
	}
	if _, err := lib.Cell("NOPE"); err == nil {
		t.Errorf("expected error for unknown cell")
	}
	names := lib.Names()
	if len(names) != len(lib.Cells) {
		t.Errorf("Names() length mismatch")
	}
}

func TestVtMeanFactor(t *testing.T) {
	lib := coreLib(t)
	f := lib.VtMeanFactor()
	if f <= 1 {
		t.Errorf("Vt mean factor = %g, must exceed 1", f)
	}
	// σ_Vt = 30 mV, n·vT ≈ 36 mV ⇒ factor = exp(0.5·(30/36.26)²) ≈ 1.41.
	want := math.Exp(0.5 * math.Pow(0.030/(1.4*0.0259), 2))
	if math.Abs(f-want) > 1e-9 {
		t.Errorf("factor = %g, want %g", f, want)
	}
	noVt := *lib.Process
	noVt.SigmaVt = 0
	lib2 := &Library{Process: &noVt}
	if lib2.VtMeanFactor() != 1 {
		t.Errorf("zero-σVt factor should be 1")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	lib := coreLib(t)
	var buf bytes.Buffer
	if err := lib.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Cells) != len(lib.Cells) {
		t.Fatalf("round trip lost cells: %d vs %d", len(got.Cells), len(lib.Cells))
	}
	a, _ := lib.Cell("NAND2_X1")
	b, err := got.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.States {
		if a.States[i].MCMean != b.States[i].MCMean || a.States[i].A != b.States[i].A {
			t.Errorf("state %d: moments differ after round trip", i)
		}
		// Curves rebuilt: evaluation must match.
		l := lib.Process.LNominal * 1.02
		if x, y := a.States[i].Leakage(l), b.States[i].Leakage(l); math.Abs(x-y)/x > 1e-12 {
			t.Errorf("state %d: curve differs after round trip (%g vs %g)", i, x, y)
		}
	}
	if got.Process.LNominal != lib.Process.LNominal {
		t.Errorf("process lost in round trip")
	}
	if got.Process.WIDCorr.Name() != lib.Process.WIDCorr.Name() {
		t.Errorf("correlation function lost: %s vs %s",
			got.Process.WIDCorr.Name(), lib.Process.WIDCorr.Name())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Errorf("expected decode error")
	}
	if _, err := Load(bytes.NewBufferString("{}")); err == nil {
		t.Errorf("expected missing-process error")
	}
}

func TestConfigValidation(t *testing.T) {
	proc := spatial.Default90nm()
	bad := []Config{
		{},
		{Process: proc, CurvePoints: 2},
		{Process: proc, FitPoints: 2},
		{Process: proc, MCSamples: 10},
		{Process: &spatial.Process{LNominal: -1}},
	}
	for i, cfg := range bad {
		if _, err := Characterize(cells.CoreSubset()[:1], cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Characterize(nil, Config{Process: proc}); err == nil {
		t.Errorf("empty library accepted")
	}
}

func TestPairCovAndLeakageCorr(t *testing.T) {
	lib := coreLib(t)
	nand, _ := lib.Cell("NAND2_X1")
	nor, _ := lib.Cell("NOR2_X1")
	a := &nand.States[0]
	b := &nor.States[0]
	mu, sigma := lib.Process.LNominal, lib.Process.TotalSigma()

	// ρ_L = 0 ⇒ covariance 0, correlation 0.
	cov, err := PairCov(a, b, 0, mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov) > 1e-12*a.FitMean*b.FitMean {
		t.Errorf("ρ=0 covariance = %g", cov)
	}
	// ρ_L = 1 with itself ⇒ correlation exactly 1.
	rho, err := LeakageCorr(a, a, 1, mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-9 {
		t.Errorf("self correlation at ρ=1 is %g", rho)
	}
	// Monotone and near the y = x line (Fig. 2's observation).
	prev := -1.0
	for _, r := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95, 1} {
		rho, err := LeakageCorr(a, b, r, mu, sigma)
		if err != nil {
			t.Fatalf("ρ_L=%g: %v", r, err)
		}
		if rho < prev {
			t.Errorf("leakage correlation not monotone at ρ_L=%g", r)
		}
		prev = rho
		if math.Abs(rho-r) > 0.12 {
			t.Errorf("ρ_leak(%g) = %g strays far from y=x", r, rho)
		}
	}
	// Domain error.
	if _, err := PairCov(a, b, 1.5, mu, sigma); err == nil {
		t.Errorf("expected error for ρ outside [-1,1]")
	}
}

func TestMCPairCorrMatchesAnalytic(t *testing.T) {
	lib := coreLib(t)
	nand, _ := lib.Cell("NAND2_X1")
	inv, _ := lib.Cell("INV_X1")
	a := &nand.States[1]
	b := &inv.States[0]
	mu, sigma := lib.Process.LNominal, lib.Process.TotalSigma()
	rng := stats.NewRNG(77, "mc-pair")
	for _, r := range []float64{0.0, 0.5, 0.9} {
		mc := MCPairCorr(a, b, r, mu, sigma, 40000, rng)
		an, err := LeakageCorr(a, b, r, mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc-an) > 0.03 {
			t.Errorf("ρ_L=%g: MC %g vs analytic %g", r, mc, an)
		}
	}
}

func TestSimplifiedCorrIsIdentity(t *testing.T) {
	for _, r := range []float64{0, 0.3, 1} {
		if SimplifiedCorr(r) != r {
			t.Errorf("SimplifiedCorr(%g) = %g", r, SimplifiedCorr(r))
		}
	}
}

func TestDesignStatsAtPAndMaximizer(t *testing.T) {
	lib := coreLib(t)
	hist, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 4, "NAND2_X1": 3, "NOR2_X1": 2, "XOR2_X1": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m0, s0, err := DesignStatsAtP(lib, hist, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !(m0 > 0 && s0 > 0) {
		t.Fatalf("p=0 stats: %g, %g", m0, s0)
	}
	// Error paths.
	if _, _, err := DesignStatsAtP(lib, hist, -0.1, true); err == nil {
		t.Errorf("expected error for p<0")
	}
	badHist, _ := stats.NewHistogram(map[string]float64{"MISSING": 1})
	if _, _, err := DesignStatsAtP(lib, badHist, 0.5, true); err == nil {
		t.Errorf("expected error for unknown cell")
	}
	// Maximizer: must beat (or tie) a coarse sweep.
	pStar, err := MaximizingSignalProb(lib, hist, true)
	if err != nil {
		t.Fatal(err)
	}
	if pStar < 0 || pStar > 1 {
		t.Fatalf("p* = %g", pStar)
	}
	mStar, _, _ := DesignStatsAtP(lib, hist, pStar, true)
	for p := 0.0; p <= 1.0001; p += 0.05 {
		m, _, _ := DesignStatsAtP(lib, hist, math.Min(p, 1), true)
		if m > mStar*(1+1e-9) {
			t.Errorf("p=%g beats p*=%g: %g > %g", p, pStar, m, mStar)
		}
	}
}

func TestEffectiveStatsPins(t *testing.T) {
	lib := coreLib(t)
	nand, err := lib.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	// Uniform pins reproduce EffectiveStats.
	for _, p := range []float64{0, 0.3, 0.5, 1} {
		m1, s1 := nand.EffectiveStats(p, false)
		m2, s2, cs := nand.EffectiveStatsPins([]float64{p, p}, false)
		if math.Abs(m1-m2) > 1e-18 || math.Abs(s1-s2) > 1e-18 {
			t.Errorf("p=%g: pins path differs: (%g,%g) vs (%g,%g)", p, m2, s2, m1, s1)
		}
		if cs <= 0 {
			t.Errorf("p=%g: corrSigma = %g", p, cs)
		}
	}
	// Heterogeneous pins: state probabilities must still sum to 1.
	sum := 0.0
	for s := uint(0); s < 4; s++ {
		sum += nand.StateProbPins(s, []float64{0.2, 0.9})
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("heterogeneous state probs sum to %g", sum)
	}
	// Short pin vector defaults missing pins to 0.5.
	short := nand.StateProbPins(0, []float64{0.2})
	if math.Abs(short-0.8*0.5) > 1e-12 {
		t.Errorf("short pin vector: %g, want 0.4", short)
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	lib := coreLib(t)
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := lib.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(lib.Cells) {
		t.Errorf("file round trip lost cells")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
	if err := lib.SaveFile("/nonexistent-dir/lib.json"); err == nil {
		t.Errorf("unwritable path accepted")
	}
}

func TestSharedLibraries(t *testing.T) {
	a, err := SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("SharedISCAS not memoized")
	}
	if len(a.Cells) != 8 {
		t.Errorf("ISCAS subset has %d cells", len(a.Cells))
	}
}
