package charlib

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"leakest/internal/spatial"
)

// libraryJSON is the wire form of Library; the spline curves are rebuilt
// from the stored grid samples on load.
type libraryJSON struct {
	Process *spatial.Process `json:"process"`
	Cells   []CellChar       `json:"cells"`
}

// Save writes the characterized library as indented JSON.
func (l *Library) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(libraryJSON{Process: l.Process, Cells: l.Cells})
}

// SaveFile writes the characterized library to path.
func (l *Library) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a characterized library previously written by Save.
func Load(r io.Reader) (*Library, error) {
	var w libraryJSON
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("charlib: decode: %w", err)
	}
	if w.Process == nil {
		return nil, fmt.Errorf("charlib: library JSON missing process")
	}
	lib := &Library{Process: w.Process, Cells: w.Cells}
	if err := lib.rebuild(); err != nil {
		return nil, err
	}
	return lib, nil
}

// LoadFile reads a characterized library from path.
func LoadFile(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
