package charlib

import (
	"fmt"
	"math"

	"leakest/internal/stats"
)

// DesignStatsAtP returns the per-gate effective leakage mean and standard
// deviation of a design with cell-usage histogram hist when every signal has
// probability p of being 1 (§2.1.4). Multiplying the mean by the gate count
// gives the full-chip mean of Fig. 3. When mc is true the Monte-Carlo cell
// moments are used, otherwise the analytical-fit moments.
func DesignStatsAtP(lib *Library, hist *stats.Histogram, p float64, mc bool) (mean, std float64, err error) {
	if p < 0 || p > 1 {
		return 0, 0, fmt.Errorf("charlib: signal probability %g outside [0, 1]", p)
	}
	m, m2 := 0.0, 0.0
	for _, name := range hist.Labels() {
		alpha := hist.Prob(name)
		if alpha == 0 {
			continue
		}
		cc, err := lib.Cell(name)
		if err != nil {
			return 0, 0, err
		}
		mu, sd := cc.EffectiveStats(p, mc)
		m += alpha * mu
		m2 += alpha * (sd*sd + mu*mu)
	}
	v := m2 - m*m
	if v < 0 {
		v = 0
	}
	return m, math.Sqrt(v), nil
}

// MaximizingSignalProb finds the signal probability p* ∈ [0, 1] that
// maximizes the design mean leakage for the given histogram — the paper's
// conservative setting (§2.1.4). A coarse grid scan brackets the maximum
// and golden-section search refines it.
func MaximizingSignalProb(lib *Library, hist *stats.Histogram, mc bool) (float64, error) {
	eval := func(p float64) (float64, error) {
		m, _, err := DesignStatsAtP(lib, hist, p, mc)
		return m, err
	}
	const gridN = 21
	bestP, bestV := 0.0, 0.0
	for i := 0; i < gridN; i++ {
		p := float64(i) / (gridN - 1)
		v, err := eval(p)
		if err != nil {
			return 0, err
		}
		if v > bestV {
			bestP, bestV = p, v
		}
	}
	// Golden-section refinement around the bracketing neighbours.
	lo := bestP - 1.0/(gridN-1)
	hi := bestP + 1.0/(gridN-1)
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, err := eval(x1)
	if err != nil {
		return 0, err
	}
	f2, err := eval(x2)
	if err != nil {
		return 0, err
	}
	for iter := 0; iter < 40 && hi-lo > 1e-6; iter++ {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			if f2, err = eval(x2); err != nil {
				return 0, err
			}
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			if f1, err = eval(x1); err != nil {
				return 0, err
			}
		}
	}
	return 0.5 * (lo + hi), nil
}
