// Package charlib characterizes a standard-cell library for statistical
// leakage (Section 2.1 of the paper). For every cell and every input/state
// combination it produces:
//
//   - a tabulated leakage-versus-channel-length curve I(L) (the substitute
//     for the paper's SPICE runs), stored as a cubic spline in ln I;
//   - Monte-Carlo moments of the leakage under L ~ N(µ, σ²), with all
//     devices in the cell fully correlated in L (§2.1.1);
//   - the analytical model X = a·e^(bL+cL²): the (a, b, c) triplet fitted
//     by least squares in the log domain, and the exact moments through the
//     non-central-χ² MGF (§2.1.2, Eqs. 1–5);
//   - the machinery to map channel-length correlation to leakage
//     correlation between any two characterized states (§2.1.3), and the
//     signal-probability weighting of states (§2.1.4).
package charlib

import (
	"context"
	"fmt"
	"math"

	"leakest/internal/cells"
	"leakest/internal/fault"
	"leakest/internal/linalg"
	"leakest/internal/lkerr"
	"leakest/internal/parallel"
	"leakest/internal/quad"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// Config controls characterization.
type Config struct {
	// Process supplies µ_L and the total σ_L.
	Process *spatial.Process
	// CurvePoints is the number of L-grid points for the tabulated curve
	// (default 15, spanning ±CurveSpan sigmas).
	CurvePoints int
	// CurveSpan is the half-width of the tabulation grid in sigmas
	// (default 6).
	CurveSpan float64
	// FitPoints and FitSpan control the analytical regression grid
	// (defaults 9 points over ±3 sigmas — a "limited sampling" as in the
	// paper).
	FitPoints int
	FitSpan   float64
	// MCSamples is the Monte-Carlo sample count per state (default 20000).
	MCSamples int
	// Seed makes the MC reproducible.
	Seed int64
	// Workers is the goroutine count characterizing (cell, state) pairs:
	// 0 selects runtime.GOMAXPROCS(0), 1 forces the serial path. The
	// library is bitwise identical at any setting — every state draws from
	// its own PRNG stream keyed by (Seed, cell name, state).
	Workers int
}

func (c *Config) setDefaults() error {
	if c.Process == nil {
		return fmt.Errorf("charlib: Config.Process is required")
	}
	if err := c.Process.Validate(); err != nil {
		return fmt.Errorf("charlib: invalid process: %w", err)
	}
	if c.CurvePoints == 0 {
		c.CurvePoints = 15
	}
	if c.CurveSpan == 0 {
		c.CurveSpan = 6
	}
	if c.FitPoints == 0 {
		c.FitPoints = 9
	}
	if c.FitSpan == 0 {
		c.FitSpan = 3
	}
	if c.MCSamples == 0 {
		c.MCSamples = 20000
	}
	if c.CurvePoints < 4 || c.FitPoints < 3 {
		return fmt.Errorf("charlib: too few grid points (%d curve, %d fit)", c.CurvePoints, c.FitPoints)
	}
	if c.MCSamples < 100 {
		return fmt.Errorf("charlib: MCSamples %d too small", c.MCSamples)
	}
	return nil
}

// StateChar is the characterization of one (cell, input-state) pair.
type StateChar struct {
	// State encodes the input bits.
	State uint
	// MCMean and MCStd are the Monte-Carlo leakage moments.
	MCMean, MCStd float64
	// A, B, C are the fitted parameters of X = A·e^(BL+CL²).
	A, B, C float64
	// FitMean and FitStd are the exact moments of the fitted model
	// (Eqs. 1–5).
	FitMean, FitStd float64
	// GridL and GridLnI are the tabulated curve samples (ln of amperes),
	// retained for serialization and full-chip Monte Carlo.
	GridL, GridLnI []float64

	curve *quad.Spline // spline over (L, ln I)
}

// Leakage evaluates the tabulated curve at channel length l.
func (s *StateChar) Leakage(l float64) float64 {
	return math.Exp(s.curve.Eval(l))
}

// CellChar aggregates the per-state characterizations of one cell.
type CellChar struct {
	Name       string
	NumInputs  int
	NumDevices int
	Class      string
	States     []StateChar
}

// StateProb returns the probability of input state s when every input is an
// independent Bernoulli with P(1) = p (the signal probability of §2.1.4).
func (c *CellChar) StateProb(s uint, p float64) float64 {
	prob := 1.0
	for i := 0; i < c.NumInputs; i++ {
		if s&(1<<uint(i)) != 0 {
			prob *= p
		} else {
			prob *= 1 - p
		}
	}
	return prob
}

// EffectiveStats returns the state-weighted leakage mean and standard
// deviation of the cell at signal probability p. The state enters as a
// mixture: E[X] = Σ_s P(s)µ_s and E[X²] = Σ_s P(s)(σ_s² + µ_s²), using the
// MC moments when mc is true and the analytical-fit moments otherwise.
func (c *CellChar) EffectiveStats(p float64, mc bool) (mean, std float64) {
	m, m2 := 0.0, 0.0
	for i := range c.States {
		st := &c.States[i]
		w := c.StateProb(st.State, p)
		if w == 0 {
			continue
		}
		mu, sd := st.FitMean, st.FitStd
		if mc {
			mu, sd = st.MCMean, st.MCStd
		}
		m += w * mu
		m2 += w * (sd*sd + mu*mu)
	}
	v := m2 - m*m
	if v < 0 {
		v = 0
	}
	return m, math.Sqrt(v)
}

// Library is a fully characterized cell library.
type Library struct {
	// Process records the variation model the characterization assumed.
	Process *spatial.Process
	// Cells holds one entry per library cell, sorted by name.
	Cells []CellChar

	byName map[string]*CellChar
}

// Cell returns the characterization of the named cell, or an error.
func (l *Library) Cell(name string) (*CellChar, error) {
	if c, ok := l.byName[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("charlib: cell %q not characterized", name)
}

// Names returns the characterized cell names in order.
func (l *Library) Names() []string {
	out := make([]string, len(l.Cells))
	for i := range l.Cells {
		out[i] = l.Cells[i].Name
	}
	return out
}

// VtMeanFactor returns the multiplicative correction to the mean leakage
// due to purely random per-device Vt fluctuation: E[e^(−ΔVt/(n·vT))] for
// ΔVt ~ N(0, σ_Vt²). As the paper notes (§2.1), this affects the mean only;
// the variance contribution is negligible at full-chip scale (verified by
// the Vt-ablation experiment). The NMOS slope factor and thermal voltage of
// the default technology card are used.
func (l *Library) VtMeanFactor() float64 {
	if l.Process.SigmaVt == 0 {
		return 1
	}
	const nvt = 1.4 * 0.0259 // n·vT of the default 90 nm card
	return randvar.LogNormalMeanFactor(1/nvt, l.Process.SigmaVt)
}

// rebuild reconstructs the spline curves and the name index after
// characterization or deserialization.
func (l *Library) rebuild() error {
	l.byName = make(map[string]*CellChar, len(l.Cells))
	for i := range l.Cells {
		cc := &l.Cells[i]
		if _, dup := l.byName[cc.Name]; dup {
			return fmt.Errorf("charlib: duplicate cell %q", cc.Name)
		}
		l.byName[cc.Name] = cc
		for j := range cc.States {
			st := &cc.States[j]
			sp, err := quad.NewSpline(st.GridL, st.GridLnI)
			if err != nil {
				return fmt.Errorf("charlib: %s state %d: %w", cc.Name, st.State, err)
			}
			st.curve = sp
		}
	}
	return nil
}

// Characterize runs the full characterization of lib under cfg.
func Characterize(lib []*cells.Cell, cfg Config) (*Library, error) {
	return CharacterizeContext(context.Background(), lib, cfg)
}

// CharacterizeContext is Characterize with cancellation: ctx is checked
// before every (cell, state) characterization and periodically inside each
// state's Monte-Carlo loop, so a cancel lands within one check interval.
func CharacterizeContext(ctx context.Context, lib []*cells.Cell, cfg Config) (*Library, error) {
	const op = "charlib.Characterize"
	ctx, endChar := telemetry.WithSpan(ctx, "charlib.characterize")
	defer endChar()
	if err := cfg.setDefaults(); err != nil {
		return nil, lkerr.Wrap(lkerr.InvalidInput, op, err)
	}
	if len(lib) == 0 {
		return nil, lkerr.New(lkerr.InvalidInput, op, "empty cell library")
	}
	proc := cfg.Process
	mu, sigma := proc.LNominal, proc.TotalSigma()

	// Progress is counted in (cell, state) characterization units — the
	// uniform quantum of work — and reported at the existing per-state
	// cancellation checkpoint.
	totalStates := int64(0)
	for _, cell := range lib {
		totalStates += int64(cell.NumStates())
	}
	telemetry.SpanAttrInt(ctx, "charlib.cells", int64(len(lib)))
	telemetry.SpanAttrInt(ctx, "charlib.states", totalStates)
	rep := telemetry.StartProgress(ctx, "charlib.characterize", totalStates)
	var cellsC *telemetry.Counter
	if r := telemetry.Default(); r != nil {
		cellsC = r.Counter("charlib_cells_characterized")
	}

	// Fan out per (cell, state): each task owns one pre-allocated States
	// slot and its own PRNG stream (seeded inside characterizeState from
	// the cell name and state index), so the fan-out order cannot leak
	// into the result.
	out := &Library{Process: proc, Cells: make([]CellChar, len(lib))}
	type charTask struct {
		cell  int
		state uint
	}
	tasks := make([]charTask, 0, totalStates)
	for ci, cell := range lib {
		out.Cells[ci] = CellChar{
			Name:       cell.Name,
			NumInputs:  cell.NumInputs,
			NumDevices: cell.NumDevices,
			Class:      cell.Class,
			States:     make([]StateChar, cell.NumStates()),
		}
		for s := uint(0); s < uint(cell.NumStates()); s++ {
			tasks = append(tasks, charTask{cell: ci, state: s})
		}
	}
	tick := parallel.NewTicker(rep)
	err := parallel.ForEach(ctx, op, cfg.Workers, len(tasks), func(_, i int) error {
		tk := tasks[i]
		cell := lib[tk.cell]
		st, err := characterizeState(ctx, cell, tk.state, mu, sigma, &cfg)
		if err != nil {
			return lkerr.Wrap(lkerr.Numerical, op,
				fmt.Errorf("%s state %d: %w", cell.Name, tk.state, err))
		}
		out.Cells[tk.cell].States[tk.state] = st
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		return nil, err
	}
	cellsC.Add(int64(len(lib)))
	rep.Done(totalStates)
	if err := out.rebuild(); err != nil {
		return nil, err
	}
	return out, nil
}

// mcCheckInterval is how many Monte-Carlo samples run between cancellation
// checks inside a state characterization.
const mcCheckInterval = 4096

func characterizeState(ctx context.Context, cell *cells.Cell, state uint, mu, sigma float64, cfg *Config) (StateChar, error) {
	fault.Hit(fault.SiteCharState)
	st := StateChar{State: state}
	// 1. Tabulate ln I over the curve grid; clamp the lower end above zero
	//    channel length.
	lo := mu - cfg.CurveSpan*sigma
	hi := mu + cfg.CurveSpan*sigma
	if lo <= 0.3*mu {
		lo = 0.3 * mu
	}
	st.GridL = quad.Linspace(lo, hi, cfg.CurvePoints)
	st.GridLnI = make([]float64, len(st.GridL))
	for i, l := range st.GridL {
		// TotalLeakage = subthreshold + gate tunneling; the latter is zero
		// unless the cell's devices have gate leakage enabled.
		x := cell.TotalLeakage(state, l, nil)
		if !(x > 0) {
			return st, fmt.Errorf("non-positive leakage %g at L=%g", x, l)
		}
		st.GridLnI[i] = math.Log(x)
	}
	sp, err := quad.NewSpline(st.GridL, st.GridLnI)
	if err != nil {
		return st, err
	}
	st.curve = sp

	// 2. Analytical fit over the (narrower) fit grid: linear least squares
	//    for ln X = ln a + bL + cL².
	fitL := quad.Linspace(mu-cfg.FitSpan*sigma, mu+cfg.FitSpan*sigma, cfg.FitPoints)
	a3, b3, c3, err := FitABC(fitL, func(l float64) float64 { return sp.Eval(l) })
	if err != nil {
		return st, fmt.Errorf("fit: %w", err)
	}
	st.A, st.B, st.C = a3, b3, c3
	params, err := randvar.NewMGFParams(a3, b3, c3, mu, sigma)
	if err != nil {
		return st, fmt.Errorf("mgf: %w", err)
	}
	st.FitMean, st.FitStd, err = params.Moments()
	if err != nil {
		return st, fmt.Errorf("moments: %w", err)
	}

	// 3. Monte Carlo over the exact tabulated curve.
	rng := stats.NewRNG(cfg.Seed, fmt.Sprintf("char/%s/%d", cell.Name, state))
	var run stats.Running
	for i := 0; i < cfg.MCSamples; i++ {
		if i%mcCheckInterval == 0 {
			if err := lkerr.FromContext(ctx, "charlib.Characterize"); err != nil {
				return st, err
			}
		}
		l := mu + sigma*rng.NormFloat64()
		if l < sp.Min() {
			l = sp.Min()
		}
		run.Push(math.Exp(sp.Eval(l)))
	}
	st.MCMean = fault.Corrupt(fault.SiteCharMoments, run.Mean())
	st.MCStd = run.StdDev()
	for _, q := range []struct {
		name string
		v    float64
	}{
		{"MC mean", st.MCMean}, {"MC std", st.MCStd},
		{"fit mean", st.FitMean}, {"fit std", st.FitStd},
	} {
		if err := lkerr.CheckFinite("charlib.Characterize", q.name, q.v); err != nil {
			return st, err
		}
	}
	return st, nil
}

// FitABC fits ln X(L) = ln a + b·L + c·L² by least squares over the given
// channel lengths, where lnI evaluates ln X. It returns (a, b, c).
//
// The regression is performed in the centred/scaled variable
// z = (L − L̄)/s to keep the Vandermonde system well conditioned (raw L
// values cluster around 0.09 µm), then mapped back to (a, b, c).
func FitABC(ls []float64, lnI func(float64) float64) (a, b, c float64, err error) {
	if len(ls) < 3 {
		return 0, 0, 0, fmt.Errorf("charlib: FitABC needs ≥3 points, got %d", len(ls))
	}
	mean := stats.Mean(ls)
	scale := 0.0
	for _, l := range ls {
		scale += math.Abs(l - mean)
	}
	scale /= float64(len(ls))
	if scale == 0 {
		return 0, 0, 0, fmt.Errorf("charlib: FitABC with degenerate grid")
	}
	zs := make([]float64, len(ls))
	ys := make([]float64, len(ls))
	for i, l := range ls {
		zs[i] = (l - mean) / scale
		ys[i] = lnI(l)
	}
	// ln X = α0 + α1·z + α2·z².
	alpha, err := linalg.PolyFit(zs, ys, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	// Map back: z = (L−m)/s ⇒
	//   c = α2/s², b = α1/s − 2α2·m/s², ln a = α0 − α1·m/s + α2·m²/s².
	c = alpha[2] / (scale * scale)
	b = alpha[1]/scale - 2*alpha[2]*mean/(scale*scale)
	lnA := alpha[0] - alpha[1]*mean/scale + alpha[2]*mean*mean/(scale*scale)
	return math.Exp(lnA), b, c, nil
}

// StateProbPins returns the probability of input state s when each input
// pin i is an independent Bernoulli with the given 1-probability — the
// heterogeneous generalization of StateProb used with propagated per-net
// signal probabilities.
func (c *CellChar) StateProbPins(s uint, pinProbs []float64) float64 {
	prob := 1.0
	for i := 0; i < c.NumInputs; i++ {
		p := 0.5
		if i < len(pinProbs) {
			p = pinProbs[i]
		}
		if s&(1<<uint(i)) != 0 {
			prob *= p
		} else {
			prob *= 1 - p
		}
	}
	return prob
}

// EffectiveStatsPins returns the state-weighted leakage moments of the
// cell under heterogeneous per-pin signal probabilities, plus the
// spatially correlated sigma (the state-weighted average of per-state
// sigmas) used by the simplified pairwise covariance.
func (c *CellChar) EffectiveStatsPins(pinProbs []float64, mc bool) (mean, std, corrSigma float64) {
	m, m2, cs := 0.0, 0.0, 0.0
	for i := range c.States {
		st := &c.States[i]
		w := c.StateProbPins(st.State, pinProbs)
		if w == 0 {
			continue
		}
		mu, sd := st.FitMean, st.FitStd
		if mc {
			mu, sd = st.MCMean, st.MCStd
		}
		m += w * mu
		m2 += w * (sd*sd + mu*mu)
		cs += w * sd
	}
	v := m2 - m*m
	if v < 0 {
		v = 0
	}
	return m, math.Sqrt(v), cs
}
