package charlib

import (
	"fmt"
	"math"
	"math/rand"

	"leakest/internal/randvar"
)

// PairCov returns the covariance Cov(X_a(l₁), X_b(l₂)) between the fitted
// leakage models of two characterized states whose channel lengths are
// bivariate normal with common marginal N(mu, sigma²) and correlation rhoL
// (the paper's §2.1.3 mapping, evaluated in closed form).
//
// With X = A·e^(BL+CL²), E[X_a·X_b] is a bivariate Gaussian
// quadratic-exponential moment; the perfectly correlated endpoint rhoL = 1
// reduces exactly to a one-dimensional moment of the combined exponent.
func PairCov(a, b *StateChar, rhoL, mu, sigma float64) (float64, error) {
	if rhoL < -1 || rhoL > 1 {
		return 0, fmt.Errorf("charlib: rhoL = %g outside [-1, 1]", rhoL)
	}
	var e2 float64
	var err error
	if rhoL > 1-1e-9 {
		e2, err = randvar.GaussExpMoment1D(a.B+b.B, a.C+b.C, mu, sigma)
		if err != nil {
			return 0, fmt.Errorf("charlib: pair moment at ρ=1: %w", err)
		}
		e2 *= a.A * b.A
	} else {
		m, merr := randvar.GaussQuadExp2D(a.C, b.C, a.B, b.B, mu, mu, sigma, sigma, rhoL)
		if merr != nil {
			return 0, fmt.Errorf("charlib: pair moment: %w", merr)
		}
		e2 = a.A * b.A * m
	}
	return e2 - a.FitMean*b.FitMean, nil
}

// LeakageCorr returns the leakage correlation f_{a,b}(ρ_L) between the
// fitted models of two states: PairCov normalized by the fitted standard
// deviations.
func LeakageCorr(a, b *StateChar, rhoL, mu, sigma float64) (float64, error) {
	if a.FitStd == 0 || b.FitStd == 0 {
		return 0, fmt.Errorf("charlib: zero fitted std in correlation mapping")
	}
	cov, err := PairCov(a, b, rhoL, mu, sigma)
	if err != nil {
		return 0, err
	}
	rho := cov / (a.FitStd * b.FitStd)
	// Guard round-off at the boundary; the mathematical value is in [-1, 1].
	if rho > 1 {
		rho = 1
	}
	if rho < -1 {
		rho = -1
	}
	return rho, nil
}

// MCPairCorr estimates the leakage correlation of two characterized states
// by direct Monte Carlo over the tabulated curves: it samples bivariate
// normal channel lengths with correlation rhoL and computes the sample
// correlation of the two leakages. Used to validate the analytic mapping
// (the MC trace of Fig. 2).
func MCPairCorr(a, b *StateChar, rhoL, mu, sigma float64, samples int, rng *rand.Rand) float64 {
	if samples < 2 {
		panic(fmt.Sprintf("charlib: MCPairCorr needs ≥2 samples, got %d", samples))
	}
	// Single-pass accumulation of means, variances and cross moment.
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < samples; i++ {
		l1, l2 := randvar.BivariateNormal(rng, mu, sigma, mu, sigma, rhoL)
		x := a.Leakage(l1)
		y := b.Leakage(l2)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	n := float64(samples)
	mx, my := sx/n, sy/n
	vx := sxx/n - mx*mx
	vy := syy/n - my*my
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return (sxy/n - mx*my) / math.Sqrt(vx*vy)
}

// SimplifiedCorr implements the §3.1.2 simplified assumption
// ρ_leak ≈ ρ_L, used when cells were characterized by Monte Carlo and no
// (a, b, c) triplet is available.
func SimplifiedCorr(rhoL float64) float64 { return rhoL }
