package charlib

import (
	"math"

	"leakest/internal/stats"
)

// FitAccuracy returns the worst absolute relative error (in percent) of the
// fitted analytical moments against the Monte-Carlo moments, across every
// cell and input state of the library — the E1 experiment's summary
// numbers, exposed so the conformance harness can freeze them as goldens.
func (l *Library) FitAccuracy() (meanMaxPct, stdMaxPct float64) {
	for i := range l.Cells {
		for _, st := range l.Cells[i].States {
			if me := math.Abs(stats.RelErr(st.FitMean, st.MCMean)); me > meanMaxPct {
				meanMaxPct = me
			}
			if se := math.Abs(stats.RelErr(st.FitStd, st.MCStd)); se > stdMaxPct {
				stdMaxPct = se
			}
		}
	}
	return meanMaxPct, stdMaxPct
}
