// Package lkerr defines the typed error taxonomy of the leakage estimator.
// Every failure that can escape a public entry point is classified by a
// Code, wrapped in an *Error that records the faulting site (the "op"), and
// plays well with errors.Is / errors.As. Context cancellation maps onto the
// Canceled and DeadlineExceeded codes so that errors.Is(err,
// context.Canceled) keeps working for callers that prefer the standard
// sentinels.
package lkerr

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Code classifies a failure.
type Code int

const (
	// InvalidInput marks a caller error: out-of-range parameters, empty
	// histograms, inconsistent netlist/placement pairs.
	InvalidInput Code = iota + 1
	// Numerical marks an internal numeric failure: NaN/Inf produced by a
	// kernel, a non-positive-definite covariance, a recovered panic.
	Numerical
	// Canceled means the caller's context was canceled mid-computation.
	Canceled
	// DeadlineExceeded means the caller's deadline (or an EstimateBudget
	// timeout) expired mid-computation.
	DeadlineExceeded
	// BudgetExceeded means a size budget (gate count, pair count) ruled the
	// requested computation out before it started.
	BudgetExceeded
	// Degraded marks an outcome obtained by falling back to a cheaper
	// estimator after a budget ruled out the requested one. It is normally
	// recorded on the Result, not returned as an error; the code exists so a
	// degradation ladder that exhausts every rung can still report what it
	// attempted.
	Degraded
)

// String implements fmt.Stringer.
func (c Code) String() string {
	switch c {
	case InvalidInput:
		return "invalid-input"
	case Numerical:
		return "numerical"
	case Canceled:
		return "canceled"
	case DeadlineExceeded:
		return "deadline-exceeded"
	case BudgetExceeded:
		return "budget-exceeded"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("code(%d)", int(c))
	}
}

// Error is a classified failure with the faulting site attached.
type Error struct {
	// Code classifies the failure.
	Code Code
	// Op names the faulting site, e.g. "chipmc.Run" or "linalg.Cholesky".
	Op string
	// Msg is the human-readable description.
	Msg string
	// Err is the wrapped cause, if any.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := e.Code.String()
	if e.Op != "" {
		s = e.Op + ": " + s
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap returns the wrapped cause.
func (e *Error) Unwrap() error { return e.Err }

// Is reports code-class equality: errors.Is(err, lkerr.ErrCanceled) matches
// any Canceled error regardless of op and message, and the Canceled /
// DeadlineExceeded classes additionally match the standard context
// sentinels.
func (e *Error) Is(target error) bool {
	switch target {
	case context.Canceled:
		return e.Code == Canceled
	case context.DeadlineExceeded:
		return e.Code == DeadlineExceeded
	}
	if t, ok := target.(*Error); ok {
		return t.Code == e.Code && (t.Op == "" || t.Op == e.Op)
	}
	return false
}

// Sentinel targets for errors.Is. They carry only a code, so they match any
// error of that class.
var (
	ErrInvalidInput     = &Error{Code: InvalidInput}
	ErrNumerical        = &Error{Code: Numerical}
	ErrCanceled         = &Error{Code: Canceled}
	ErrDeadlineExceeded = &Error{Code: DeadlineExceeded}
	ErrBudgetExceeded   = &Error{Code: BudgetExceeded}
	ErrDegraded         = &Error{Code: Degraded}
)

// New builds a classified error.
func New(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error, preserving it as the cause. A nil err
// yields nil. If err is already an *Error it is returned unchanged, so
// classification survives multi-layer wrapping without re-tagging.
func Wrap(code Code, op string, err error) error {
	if err == nil {
		return nil
	}
	var le *Error
	if errors.As(err, &le) {
		return err
	}
	return &Error{Code: code, Op: op, Err: err}
}

// CodeOf extracts the code from an error chain; 0 means unclassified.
// Untyped context errors classify as Canceled / DeadlineExceeded.
func CodeOf(err error) Code {
	var le *Error
	if errors.As(err, &le) {
		return le.Code
	}
	switch {
	case errors.Is(err, context.Canceled):
		return Canceled
	case errors.Is(err, context.DeadlineExceeded):
		return DeadlineExceeded
	}
	return 0
}

// IsCode reports whether the error chain carries the given code.
func IsCode(err error, c Code) bool { return CodeOf(err) == c }

// FromContext converts a done context into the matching typed error; it
// returns nil while ctx is still live. It is the periodic cancellation
// check used inside sample and pair loops.
func FromContext(ctx context.Context, op string) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
	default:
		return nil
	}
	switch ctx.Err() {
	case context.DeadlineExceeded:
		return &Error{Code: DeadlineExceeded, Op: op, Err: context.DeadlineExceeded}
	default:
		return &Error{Code: Canceled, Op: op, Err: ctx.Err()}
	}
}

// CheckFinite returns a Numerical error naming the offending quantity when
// v is NaN or ±Inf, and nil otherwise.
func CheckFinite(op, name string, v float64) error {
	if math.IsNaN(v) {
		return New(Numerical, op, "%s is NaN", name)
	}
	if math.IsInf(v, 0) {
		return New(Numerical, op, "%s is %v", name, v)
	}
	return nil
}

// RecoverInto converts an in-flight panic into a Numerical error carrying
// the faulting site, storing it in *errp. Use it deferred at public API
// boundaries:
//
//	defer lkerr.RecoverInto(&err, "leakest.Estimate")
//
// Errors already present in *errp are preserved when no panic occurred.
func RecoverInto(errp *error, op string) {
	r := recover()
	if r == nil {
		return
	}
	if pe, ok := r.(error); ok {
		*errp = &Error{Code: Numerical, Op: op, Msg: "panic", Err: pe}
		return
	}
	*errp = New(Numerical, op, "panic: %v", r)
}
