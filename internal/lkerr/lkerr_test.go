package lkerr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestErrorFormatting(t *testing.T) {
	e := New(InvalidInput, "core.Validate", "gate count %d must be positive", -3)
	want := "core.Validate: invalid-input: gate count -3 must be positive"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
	cause := errors.New("boom")
	w := Wrap(Numerical, "linalg.Cholesky", cause).(*Error)
	if !errors.Is(w, cause) {
		t.Errorf("wrapped cause not reachable via errors.Is")
	}
	if w.Unwrap() != cause {
		t.Errorf("Unwrap lost the cause")
	}
}

func TestIsCodeClasses(t *testing.T) {
	cases := []struct {
		err      error
		code     Code
		sentinel error
	}{
		{New(InvalidInput, "op", "x"), InvalidInput, ErrInvalidInput},
		{New(Numerical, "op", "x"), Numerical, ErrNumerical},
		{New(Canceled, "op", "x"), Canceled, ErrCanceled},
		{New(DeadlineExceeded, "op", "x"), DeadlineExceeded, ErrDeadlineExceeded},
		{New(BudgetExceeded, "op", "x"), BudgetExceeded, ErrBudgetExceeded},
		{New(Degraded, "op", "x"), Degraded, ErrDegraded},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v does not match its sentinel", c.err)
		}
		if CodeOf(c.err) != c.code {
			t.Errorf("CodeOf(%v) = %v, want %v", c.err, CodeOf(c.err), c.code)
		}
		if !IsCode(c.err, c.code) {
			t.Errorf("IsCode(%v, %v) = false", c.err, c.code)
		}
		// Wrapping through fmt keeps the classification.
		wrapped := fmt.Errorf("outer: %w", c.err)
		if !errors.Is(wrapped, c.sentinel) || CodeOf(wrapped) != c.code {
			t.Errorf("classification lost through fmt wrapping of %v", c.err)
		}
	}
	// Cross-class must not match.
	if errors.Is(New(Canceled, "op", "x"), ErrNumerical) {
		t.Errorf("Canceled matched Numerical sentinel")
	}
}

func TestContextSentinelInterop(t *testing.T) {
	ce := New(Canceled, "op", "stopped")
	if !errors.Is(ce, context.Canceled) {
		t.Errorf("Canceled error does not match context.Canceled")
	}
	de := New(DeadlineExceeded, "op", "late")
	if !errors.Is(de, context.DeadlineExceeded) {
		t.Errorf("DeadlineExceeded error does not match context.DeadlineExceeded")
	}
	if CodeOf(context.Canceled) != Canceled {
		t.Errorf("raw context.Canceled not classified")
	}
	if CodeOf(fmt.Errorf("x: %w", context.DeadlineExceeded)) != DeadlineExceeded {
		t.Errorf("wrapped context.DeadlineExceeded not classified")
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background(), "op"); err != nil {
		t.Fatalf("live context produced %v", err)
	}
	if err := FromContext(nil, "op"); err != nil {
		t.Fatalf("nil context produced %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx, "loop")
	if !IsCode(err, Canceled) {
		t.Fatalf("canceled context gave %v", err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	err = FromContext(dctx, "loop")
	if !IsCode(err, DeadlineExceeded) {
		t.Fatalf("expired context gave %v", err)
	}
}

func TestWrapIdempotent(t *testing.T) {
	inner := New(BudgetExceeded, "chipmc.Run", "too big")
	out := Wrap(Numerical, "outer", fmt.Errorf("x: %w", inner))
	if CodeOf(out) != BudgetExceeded {
		t.Errorf("Wrap re-tagged an already classified error: %v", out)
	}
	if Wrap(Numerical, "op", nil) != nil {
		t.Errorf("Wrap(nil) != nil")
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite("op", "mean", 1.5); err != nil {
		t.Errorf("finite value rejected: %v", err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := CheckFinite("core.TrueStats", "variance", v)
		if !IsCode(err, Numerical) {
			t.Errorf("CheckFinite(%v) = %v, want Numerical", v, err)
		}
	}
}

func TestRecoverInto(t *testing.T) {
	f := func() (err error) {
		defer RecoverInto(&err, "leakest.Estimate")
		panic("index out of range")
	}
	err := f()
	if !IsCode(err, Numerical) {
		t.Fatalf("panic mapped to %v, want Numerical", err)
	}
	var le *Error
	if !errors.As(err, &le) || le.Op != "leakest.Estimate" {
		t.Errorf("faulting site lost: %v", err)
	}
	// Error-valued panics keep the cause.
	cause := errors.New("inner fault")
	g := func() (err error) {
		defer RecoverInto(&err, "op")
		panic(cause)
	}
	if !errors.Is(g(), cause) {
		t.Errorf("error panic cause lost")
	}
	// No panic: existing error preserved.
	h := func() (err error) {
		defer RecoverInto(&err, "op")
		return cause
	}
	if h() != cause {
		t.Errorf("RecoverInto clobbered a returned error")
	}
}
