package device

import (
	"math"
	"testing"
)

func TestAtTemperatureScaling(t *testing.T) {
	base := Default90nmTech(NMOS)
	hot, err := base.AtTemperature(400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hot.VT-base.VT*400.0/300.0) > 1e-15 {
		t.Errorf("vT at 400K = %g", hot.VT)
	}
	if math.Abs(hot.Vt0-(base.Vt0-0.1)) > 1e-12 {
		t.Errorf("Vt0 at 400K = %g, want %g", hot.Vt0, base.Vt0-0.1)
	}
	if hot.ISpec <= base.ISpec {
		t.Errorf("ISpec should grow with T")
	}
	// Identity at the reference temperature.
	same, err := base.AtTemperature(300)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Errorf("300 K card changed: %+v", same)
	}
}

func TestAtTemperatureLeakageGrowth(t *testing.T) {
	// Classic behaviour: roughly an order of magnitude per 100 K.
	m := NewMOSFET(NMOS, 0.3, 0.09)
	cold := m.OffLeakage(0.09, 0)
	hotTech, err := m.Tech.AtTemperature(400)
	if err != nil {
		t.Fatal(err)
	}
	hotDev := m
	hotDev.Tech = hotTech
	hot := hotDev.OffLeakage(0.09, 0)
	ratio := hot / cold
	t.Logf("300→400 K off-leakage ratio: %.1fx", ratio)
	if ratio < 4 || ratio > 100 {
		t.Errorf("100 K leakage growth %.1fx outside the plausible 4–100x", ratio)
	}
	// Monotone in T.
	prev := cold
	for _, temp := range []float64{325, 350, 375, 400} {
		card, err := m.Tech.AtTemperature(temp)
		if err != nil {
			t.Fatal(err)
		}
		d := m
		d.Tech = card
		x := d.OffLeakage(0.09, 0)
		if x <= prev {
			t.Fatalf("leakage not increasing at %g K", temp)
		}
		prev = x
	}
}

func TestAtTemperatureBounds(t *testing.T) {
	base := Default90nmTech(NMOS)
	for _, temp := range []float64{100, 500} {
		if _, err := base.AtTemperature(temp); err == nil {
			t.Errorf("temperature %g K accepted", temp)
		}
	}
}
