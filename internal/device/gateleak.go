package device

import "math"

// Gate tunneling leakage — an optional extension beyond the paper, which
// models subthreshold leakage only. Thin-oxide gate tunneling flows when
// the channel is inverted (gate driven towards the on state) and scales
// with gate area W·L; note the *opposite* channel-length dependence to
// subthreshold leakage (longer channel ⇒ more tunneling area), which makes
// the gate component dilute the L-induced full-chip variability. The
// gate-leakage ablation experiment quantifies this.

// gateSlope is the exponential gate-drive sensitivity of the tunneling
// current in volts; tunneling collapses quickly as the gate drive is
// removed.
const gateSlope = 0.12

// GateLeak returns the gate tunneling current in amperes for gate and
// source voltages vg, vs and channel length l (µm). It is zero unless the
// technology card enables it via JGate (A/µm² at full gate drive).
func (m MOSFET) GateLeak(vg, vs, l float64) float64 {
	t := m.Tech
	if t.JGate == 0 {
		return 0
	}
	drive := vg - vs
	if m.Kind == PMOS {
		drive = vs - vg
	}
	return t.JGate * m.W * l * math.Exp((drive-t.Vdd)/gateSlope)
}
