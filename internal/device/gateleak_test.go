package device

import (
	"math"
	"testing"
)

func TestGateLeakDisabledByDefault(t *testing.T) {
	m := NewMOSFET(NMOS, 0.3, 0.09)
	if g := m.GateLeak(1, 0, 0.09); g != 0 {
		t.Errorf("default tech should have no gate leakage, got %g", g)
	}
}

func TestGateLeakMagnitudeAndBias(t *testing.T) {
	m := NewMOSFET(NMOS, 0.3, 0.09)
	m.Tech.JGate = 3e-7
	// Full drive: J·W·L exactly.
	on := m.GateLeak(m.Tech.Vdd, 0, 0.09)
	want := 3e-7 * 0.3 * 0.09
	if math.Abs(on-want)/want > 1e-12 {
		t.Errorf("full-drive gate leak %g, want %g", on, want)
	}
	// No drive: collapsed by orders of magnitude.
	off := m.GateLeak(0, 0, 0.09)
	if off > on*1e-3 {
		t.Errorf("zero-drive gate leak %g not collapsed (on %g)", off, on)
	}
	// PMOS mirrors: driven when gate below source.
	p := NewMOSFET(PMOS, 0.6, 0.09)
	p.Tech.JGate = 3e-7
	pOn := p.GateLeak(0, p.Tech.Vdd, 0.09)
	pOff := p.GateLeak(p.Tech.Vdd, p.Tech.Vdd, 0.09)
	if !(pOn > pOff*1e3) {
		t.Errorf("PMOS gate leak bias direction wrong: on %g off %g", pOn, pOff)
	}
}

func TestGateLeakGrowsWithL(t *testing.T) {
	// Opposite dependence to subthreshold: more channel area, more
	// tunneling.
	m := NewMOSFET(NMOS, 0.3, 0.09)
	m.Tech.JGate = 3e-7
	if !(m.GateLeak(1, 0, 0.10) > m.GateLeak(1, 0, 0.08)) {
		t.Errorf("gate leak must increase with L")
	}
}

func TestJGateValidation(t *testing.T) {
	tech := Default90nmTech(NMOS)
	tech.JGate = -1
	if err := tech.Validate(); err == nil {
		t.Errorf("negative JGate accepted")
	}
	tech.JGate = 1e-7
	if err := tech.Validate(); err != nil {
		t.Errorf("valid JGate rejected: %v", err)
	}
}
