// Package device implements the synthetic 90 nm-class MOSFET model that
// drives cell leakage characterization. The paper used a proprietary
// commercial 90 nm kit with SPICE; we substitute a single-piece EKV-style
// analytic model that is smooth and monotone from deep subthreshold through
// strong inversion, which is exactly what the transistor-stack solver in
// internal/circuit requires (see DESIGN.md, Substitutions).
//
// The channel current of an NMOS device is
//
//	I = ISpec·(W/L)·[F((Vp−Vs)/vT) − F((Vp−Vd)/vT)],  F(u) = ln²(1+e^{u/2})
//	Vp = (Vg − Vth)/n,   Vth = Vt0 − Kroll·e^{−L/Lt} − η·(Vd−Vs) + ΔVt
//
// In subthreshold F(u) → e^u, recovering the textbook exponential law with
// slope factor n and DIBL η; in strong inversion F(u) → (u/2)², giving a
// quadratic on-current. The exponential Vt roll-off term makes leakage an
// exponential-like function of channel length L — the physical origin of the
// paper's a·e^(bL+cL²) fit. PMOS devices are handled by voltage mirroring.
package device

import (
	"fmt"
	"math"
)

// Kind discriminates NMOS from PMOS devices.
type Kind int

// Device kinds.
const (
	NMOS Kind = iota
	PMOS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Tech holds the technology parameters shared by all devices of one kind.
type Tech struct {
	// ISpec is the specific current prefactor in amperes (scaled by W/L).
	ISpec float64
	// N is the subthreshold slope factor (typically 1.2–1.6).
	N float64
	// Vt0 is the long-channel threshold voltage magnitude, volts.
	Vt0 float64
	// Kroll and Lt parameterize the Vt roll-off ΔVth = −Kroll·e^(−L/Lt):
	// shorter channels have exponentially lower Vt, hence exponentially
	// higher leakage. Lt is in µm.
	Kroll, Lt float64
	// Eta is the DIBL coefficient (V of Vt reduction per V of Vds).
	Eta float64
	// JGate is the gate tunneling current density at full gate drive, in
	// A/µm² of gate area; 0 (the default) disables gate leakage. See
	// gateleak.go.
	JGate float64
	// VT is the thermal voltage kT/q, volts.
	VT float64
	// Vdd is the supply voltage, volts.
	Vdd float64
}

// Default90nmTech returns the synthetic 90 nm-class technology card:
// 1.0 V supply, Vt ≈ 0.29 V at nominal L = 0.09 µm, subthreshold swing
// ≈ 86 mV/dec, and a roll-off strength giving dVt/dL ≈ −2.6 V/µm at
// nominal L, i.e. roughly 10 mV of Vt per nanometre of channel length —
// representative of published 90 nm data.
func Default90nmTech(kind Kind) Tech {
	t := Tech{
		ISpec: 3.0e-6,
		N:     1.4,
		Vt0:   0.395,
		Kroll: 1.0,
		Lt:    0.04,
		Eta:   0.08,
		VT:    0.0259,
		Vdd:   1.0,
	}
	if kind == PMOS {
		// PMOS: lower mobility → lower specific current; slightly higher |Vt|.
		t.ISpec = 1.2e-6
		t.Vt0 = 0.42
	}
	return t
}

// Validate checks the technology card for physical sanity.
func (t Tech) Validate() error {
	switch {
	case t.ISpec <= 0:
		return fmt.Errorf("device: ISpec %g must be positive", t.ISpec)
	case t.N < 1:
		return fmt.Errorf("device: slope factor n = %g must be ≥ 1", t.N)
	case t.Vt0 <= 0 || t.Vt0 >= t.Vdd:
		return fmt.Errorf("device: Vt0 = %g outside (0, Vdd=%g)", t.Vt0, t.Vdd)
	case t.Lt <= 0:
		return fmt.Errorf("device: roll-off length Lt = %g must be positive", t.Lt)
	case t.VT <= 0:
		return fmt.Errorf("device: thermal voltage %g must be positive", t.VT)
	case t.Vdd <= 0:
		return fmt.Errorf("device: Vdd %g must be positive", t.Vdd)
	case t.Eta < 0:
		return fmt.Errorf("device: DIBL η = %g must be non-negative", t.Eta)
	case t.JGate < 0:
		return fmt.Errorf("device: gate current density %g must be non-negative", t.JGate)
	}
	return nil
}

// Vth returns the effective threshold voltage at channel length l (µm),
// drain-source voltage vds ≥ 0, and random per-device offset dvt.
func (t Tech) Vth(l, vds, dvt float64) float64 {
	return t.Vt0 - t.Kroll*math.Exp(-l/t.Lt) - t.Eta*vds + dvt
}

// ekvF is the EKV interpolation function F(u) = ln²(1 + e^{u/2}), evaluated
// stably for large |u|.
func ekvF(u float64) float64 {
	if u > 80 {
		// ln(1+e^{u/2}) ≈ u/2 for large u.
		return u * u / 4
	}
	ln := math.Log1p(math.Exp(u / 2))
	return ln * ln
}

// MOSFET is a single transistor instance: a technology card plus geometry.
type MOSFET struct {
	Kind Kind
	Tech Tech
	// W and LNominal are the drawn width and nominal channel length in µm.
	W, LNominal float64
}

// NewMOSFET builds a device with the default technology for its kind.
func NewMOSFET(kind Kind, w, l float64) MOSFET {
	return MOSFET{Kind: kind, Tech: Default90nmTech(kind), W: w, LNominal: l}
}

// Ids returns the drain current in amperes for terminal voltages vg, vs, vd
// (volts, referenced to ground), channel length l (µm) and per-device Vt
// offset dvt (volts). Positive current flows drain→source for NMOS.
//
// For a PMOS device the calculation mirrors about Vdd: the PMOS conducts
// when its gate is low and its "source" is the high terminal.
func (m MOSFET) Ids(vg, vs, vd, l, dvt float64) float64 {
	t := m.Tech
	if m.Kind == PMOS {
		// Mirror all voltages about Vdd and treat as NMOS; current sign is
		// preserved as magnitude flowing source→drain in the PMOS sense.
		vg, vs, vd = t.Vdd-vg, t.Vdd-vs, t.Vdd-vd
	}
	// Orient so vd ≥ vs; the channel is symmetric, with DIBL driven by the
	// actual drain-source magnitude.
	sign := 1.0
	if vd < vs {
		vs, vd = vd, vs
		sign = -1
	}
	vth := t.Vth(l, vd-vs, dvt)
	vp := (vg - vth) / t.N
	fwd := ekvF((vp - vs) / t.VT)
	rev := ekvF((vp - vd) / t.VT)
	return sign * t.ISpec * (m.W / l) * (fwd - rev)
}

// OffLeakage returns the subthreshold leakage magnitude of the device when
// fully off with the full supply across it: gate at the off rail, source at
// the off rail, drain at the opposite rail.
func (m MOSFET) OffLeakage(l, dvt float64) float64 {
	if m.Kind == PMOS {
		// Gate at Vdd, source at Vdd, drain at 0.
		return math.Abs(m.Ids(m.Tech.Vdd, m.Tech.Vdd, 0, l, dvt))
	}
	// Gate at 0, source at 0, drain at Vdd.
	return math.Abs(m.Ids(0, 0, m.Tech.Vdd, l, dvt))
}

// OnCurrent returns the saturated on-current magnitude of the device.
func (m MOSFET) OnCurrent(l, dvt float64) float64 {
	if m.Kind == PMOS {
		return math.Abs(m.Ids(0, m.Tech.Vdd, 0, l, dvt))
	}
	return math.Abs(m.Ids(m.Tech.Vdd, 0, m.Tech.Vdd, l, dvt))
}

// SubthresholdSwing returns the modelled subthreshold swing in mV/decade,
// n·vT·ln10·1000.
func (t Tech) SubthresholdSwing() float64 {
	return t.N * t.VT * math.Ln10 * 1000
}
