package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTechValidate(t *testing.T) {
	for _, k := range []Kind{NMOS, PMOS} {
		if err := Default90nmTech(k).Validate(); err != nil {
			t.Errorf("%v default tech invalid: %v", k, err)
		}
	}
	good := Default90nmTech(NMOS)
	mutations := []func(*Tech){
		func(c *Tech) { c.ISpec = 0 },
		func(c *Tech) { c.N = 0.5 },
		func(c *Tech) { c.Vt0 = 0 },
		func(c *Tech) { c.Vt0 = 2 },
		func(c *Tech) { c.Lt = 0 },
		func(c *Tech) { c.VT = 0 },
		func(c *Tech) { c.Vdd = 0 },
		func(c *Tech) { c.Eta = -1 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Errorf("Kind strings wrong: %s %s", NMOS, PMOS)
	}
}

func TestSubthresholdSlope(t *testing.T) {
	// Leakage should decrease by 10× per swing S of gate underdrive.
	m := NewMOSFET(NMOS, 0.3, 0.09)
	s := m.Tech.SubthresholdSwing() / 1000 // volts per decade
	if s < 0.07 || s > 0.11 {
		t.Fatalf("swing = %g V/dec, outside plausible range", s)
	}
	i1 := m.Ids(0, 0, m.Tech.Vdd, m.LNominal, 0)
	i2 := m.Ids(-s, 0, m.Tech.Vdd, m.LNominal, 0)
	ratio := i1 / i2
	if math.Abs(ratio-10) > 0.5 {
		t.Errorf("one-swing ratio = %g, want ≈10", ratio)
	}
}

func TestOffLeakageMagnitude(t *testing.T) {
	// Synthetic 90nm device should leak in the nA–tens-of-nA range when off
	// and conduct µA–mA range when on: Ion/Ioff ≥ 10³.
	for _, k := range []Kind{NMOS, PMOS} {
		m := NewMOSFET(k, 0.3, 0.09)
		off := m.OffLeakage(m.LNominal, 0)
		on := m.OnCurrent(m.LNominal, 0)
		if off < 1e-10 || off > 1e-6 {
			t.Errorf("%v off leakage %g A implausible", k, off)
		}
		if on/off < 1e3 {
			t.Errorf("%v Ion/Ioff = %g too small", k, on/off)
		}
	}
}

func TestLeakageExponentialInL(t *testing.T) {
	// Shorter L ⇒ exponentially more leakage; the log-derivative magnitude
	// should be in the tens-per-µm range so that ±4%L moves leakage
	// noticeably (the paper's entire premise).
	m := NewMOSFET(NMOS, 0.3, 0.09)
	l0 := 0.09
	dl := 0.001
	b := (math.Log(m.OffLeakage(l0+dl, 0)) - math.Log(m.OffLeakage(l0-dl, 0))) / (2 * dl)
	if b >= 0 {
		t.Fatalf("leakage must decrease with L, got dlnI/dL = %g", b)
	}
	if -b < 30 || -b > 300 {
		t.Errorf("dlnI/dL = %g /µm outside plausible range", b)
	}
}

func TestVtRandomOffsetDirection(t *testing.T) {
	m := NewMOSFET(NMOS, 0.3, 0.09)
	up := m.OffLeakage(m.LNominal, +0.03)
	dn := m.OffLeakage(m.LNominal, -0.03)
	base := m.OffLeakage(m.LNominal, 0)
	if !(dn > base && base > up) {
		t.Errorf("Vt offset direction wrong: up=%g base=%g dn=%g", up, base, dn)
	}
	// Symmetric exponential: ratio should be exp(2·0.03/(n·vT)) approximately.
	want := math.Exp(2 * 0.03 / (m.Tech.N * m.Tech.VT))
	if got := dn / up; math.Abs(got-want)/want > 0.05 {
		t.Errorf("±30 mV ratio = %g, want ≈ %g", got, want)
	}
}

func TestIdsAntisymmetry(t *testing.T) {
	// Swapping source and drain must negate the current (channel symmetry).
	m := NewMOSFET(NMOS, 0.3, 0.09)
	f := func(vg, vs, vd float64) bool {
		vg = math.Mod(math.Abs(vg), 1)
		vs = math.Mod(math.Abs(vs), 1)
		vd = math.Mod(math.Abs(vd), 1)
		a := m.Ids(vg, vs, vd, 0.09, 0)
		b := m.Ids(vg, vd, vs, 0.09, 0)
		return math.Abs(a+b) <= 1e-12*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIdsMonotoneInDrain(t *testing.T) {
	// For fixed vg, vs, current is non-decreasing in vd — the property the
	// stack bisection solver relies on.
	m := NewMOSFET(NMOS, 0.3, 0.09)
	for _, vg := range []float64{0, 0.2, 0.5, 1.0} {
		prev := math.Inf(-1)
		for vd := 0.0; vd <= 1.0; vd += 0.01 {
			i := m.Ids(vg, 0, vd, 0.09, 0)
			if i < prev-1e-18 {
				t.Fatalf("vg=%g: current not monotone at vd=%g", vg, vd)
			}
			prev = i
		}
	}
}

func TestIdsZeroAtZeroVds(t *testing.T) {
	m := NewMOSFET(NMOS, 0.3, 0.09)
	for _, vg := range []float64{0, 0.5, 1} {
		for _, v := range []float64{0, 0.3, 1} {
			if i := m.Ids(vg, v, v, 0.09, 0); i != 0 {
				t.Errorf("vg=%g v=%g: Ids = %g, want 0", vg, v, i)
			}
		}
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	// A PMOS with the NMOS tech card mirrored should produce the same
	// magnitudes in the mirrored configuration.
	n := NewMOSFET(NMOS, 0.3, 0.09)
	p := MOSFET{Kind: PMOS, Tech: n.Tech, W: 0.3, LNominal: 0.09}
	vdd := n.Tech.Vdd
	// NMOS off: vg=0, vs=0, vd=vdd. PMOS off: vg=vdd, vs=vdd, vd=0.
	in := n.Ids(0, 0, vdd, 0.09, 0)
	ip := p.Ids(vdd, vdd, 0, 0.09, 0)
	if math.Abs(math.Abs(in)-math.Abs(ip)) > 1e-15 {
		t.Errorf("mirror mismatch: NMOS %g vs PMOS %g", in, ip)
	}
}

func TestDIBLIncreasesLeakage(t *testing.T) {
	m := NewMOSFET(NMOS, 0.3, 0.09)
	full := m.Ids(0, 0, m.Tech.Vdd, 0.09, 0)
	half := m.Ids(0, 0, m.Tech.Vdd/2, 0.09, 0)
	// More drain bias ⇒ lower Vt via DIBL ⇒ disproportionally more current:
	// full should exceed 2× half (the linear 1−e^{−Vds/vT} factor saturates).
	if full <= half {
		t.Fatalf("DIBL: full=%g ≤ half=%g", full, half)
	}
	noDIBL := m
	noDIBL.Tech.Eta = 0
	if m.Ids(0, 0, m.Tech.Vdd, 0.09, 0) <= noDIBL.Ids(0, 0, m.Tech.Vdd, 0.09, 0) {
		t.Errorf("η>0 should leak more than η=0 at full Vds")
	}
}

func TestEkvFLimits(t *testing.T) {
	// Subthreshold limit: F(u) → e^u for u ≪ 0 (relative error ~e^{u/2}).
	for _, u := range []float64{-10, -16, -20} {
		if got, want := ekvF(u), math.Exp(u); math.Abs(got-want)/want > 2.1*math.Exp(u/2) {
			t.Errorf("F(%g) = %g, want ≈ e^u = %g", u, got, want)
		}
	}
	// Strong-inversion limit: F(u) → u²/4 for u ≫ 0.
	for _, u := range []float64{50, 79, 81, 200} {
		if got, want := ekvF(u), u*u/4; math.Abs(got-want)/want > 0.05 {
			t.Errorf("F(%g) = %g, want ≈ u²/4 = %g", u, got, want)
		}
	}
	// Continuity across the u=80 branch.
	if d := math.Abs(ekvF(80-1e-9) - ekvF(80+1e-9)); d > 1e-6 {
		t.Errorf("branch discontinuity at u=80: %g", d)
	}
}
