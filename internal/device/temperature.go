package device

import (
	"fmt"
	"math"
)

// Temperature scaling — an extension beyond the paper, which characterizes
// at a single operating point. Subthreshold leakage is strongly
// temperature-dependent through three mechanisms:
//
//   - the thermal voltage vT = kT/q grows linearly with T, flattening the
//     exponential (more subthreshold current);
//   - the threshold voltage falls roughly linearly with T (≈ −1 mV/K);
//   - the mobility (and hence the specific current prefactor) falls as
//     ~T^−1.5, partially offset by the vT² factor inside I_spec.
//
// Together these produce the classic ~order-of-magnitude leakage increase
// per 100 K, which the temperature-sweep experiment and the thermal-runaway
// example exercise.

// refTempK is the characterization reference temperature.
const refTempK = 300.0

// tempCoefVt is the threshold-voltage temperature coefficient in V/K.
const tempCoefVt = 0.001

// AtTemperature returns the technology card scaled from the 300 K
// reference to the given junction temperature in kelvin.
func (t Tech) AtTemperature(tempK float64) (Tech, error) {
	if tempK < 200 || tempK > 450 {
		return Tech{}, fmt.Errorf("device: temperature %g K outside the model's 200–450 K validity", tempK)
	}
	out := t
	ratio := tempK / refTempK
	out.VT = t.VT * ratio
	out.Vt0 = t.Vt0 - tempCoefVt*(tempK-refTempK)
	// I_spec ∝ µ(T)·vT²(T) with µ ∝ T^−1.5 ⇒ I_spec ∝ T^0.5.
	out.ISpec = t.ISpec * math.Sqrt(ratio)
	if err := out.Validate(); err != nil {
		return Tech{}, fmt.Errorf("device: card invalid at %g K: %w", tempK, err)
	}
	return out, nil
}
