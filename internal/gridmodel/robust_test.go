package gridmodel

import (
	"context"
	"errors"
	"testing"
	"time"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
)

func TestSampleDistributionCanceled(t *testing.T) {
	cfg, nl, pl := setup(t, 16)
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SampleDistributionCtx(ctx, nl, pl, 0.5, 100, 1); !errors.Is(err, lkerr.ErrCanceled) {
		t.Errorf("pre-canceled ctx: got %v, want Canceled", err)
	}
}

func TestSampleDistributionDeadlineMidLoop(t *testing.T) {
	defer fault.Reset()
	cfg, nl, pl := setup(t, 16)
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.SiteGridTrial, fault.Action{Kind: fault.Sleep, Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	const samples = 2000
	if _, err := m.SampleDistributionCtx(ctx, nl, pl, 0.5, samples, 1); !errors.Is(err, lkerr.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if hits := fault.Hits(fault.SiteGridTrial); hits >= samples {
		t.Errorf("sampler ran all %d trials despite deadline", hits)
	}
}

func TestSampleDistributionFaultNaN(t *testing.T) {
	defer fault.Reset()
	cfg, nl, pl := setup(t, 16)
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.SiteGridTrial, fault.Action{Kind: fault.NaN})
	if _, err := m.SampleDistribution(nl, pl, 0.5, 50, 1); !errors.Is(err, lkerr.ErrNumerical) {
		t.Errorf("NaN fault surfaced as %v, want Numerical", err)
	}
}
