// Package gridmodel implements a grid-based spatial-correlation leakage
// estimator in the style of the late-mode prior work the paper builds on
// (Chang & Sapatnekar, DAC 2005 — the paper's reference [3]): the die is
// partitioned into a g×g grid of regions, the channel length is modelled
// as piecewise-constant per region with a region-to-region correlation
// matrix, and the region variables are reduced to a small set of
// independent factors by principal-component analysis.
//
// Two capabilities result:
//
//   - moments: full-chip mean/σ with O(R²·T²) aggregation over regions and
//     cell types (instead of O(n²) over gates), at the cost of quantizing
//     the correlation function to region centres;
//   - distribution: cheap Monte-Carlo over the low-dimensional factor
//     space (no n×n Cholesky), yielding full-chip leakage quantiles.
//
// Within this repository it serves as the baseline family the Random-Gate
// approach is contrasted with, and as a second independent cross-check of
// the estimators.
package gridmodel

import (
	"context"
	"fmt"
	"math"
	"sort"

	"leakest/internal/charlib"
	"leakest/internal/fault"
	"leakest/internal/linalg"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// Config controls grid-model construction.
type Config struct {
	// Lib is the characterized library.
	Lib *charlib.Library
	// Proc is the variation model; (µ, σ) must match the characterization.
	Proc *spatial.Process
	// GridDim is the number of regions per die edge (default 8).
	GridDim int
	// PCAFraction is the spectrum fraction the factor reduction keeps
	// (default 0.99).
	PCAFraction float64
}

// Model is a constructed grid correlation model for one placement.
type Model struct {
	cfg     Config
	grid    placement.Grid
	regions int     // per edge
	rw, rh  float64 // region dimensions
	// corr is the region-to-region channel-length correlation matrix.
	corr *linalg.Matrix
	// factors is the PCA factor matrix (regions² × k), scaled to the total
	// channel-length sigma. Computed lazily: only the factor-space sampler
	// needs the (cubic-cost) eigendecomposition.
	factors *linalg.Matrix
	// k is the retained factor count (0 until the factors are built).
	k int
}

// New builds the region correlation model for a die of the given grid.
func New(cfg Config, dieGrid placement.Grid) (*Model, error) {
	if cfg.Lib == nil || cfg.Proc == nil {
		return nil, fmt.Errorf("gridmodel: Lib and Proc are required")
	}
	if err := cfg.Proc.Validate(); err != nil {
		return nil, fmt.Errorf("gridmodel: %w", err)
	}
	if math.Abs(cfg.Proc.LNominal-cfg.Lib.Process.LNominal) > 1e-12 ||
		math.Abs(cfg.Proc.TotalSigma()-cfg.Lib.Process.TotalSigma()) > 1e-12 {
		return nil, fmt.Errorf("gridmodel: process inconsistent with characterization")
	}
	if cfg.GridDim == 0 {
		cfg.GridDim = 8
	}
	if cfg.GridDim < 1 || cfg.GridDim > 64 {
		return nil, fmt.Errorf("gridmodel: grid dimension %d outside [1, 64]", cfg.GridDim)
	}
	if cfg.PCAFraction == 0 {
		cfg.PCAFraction = 0.99
	}

	g := cfg.GridDim
	r := g * g
	m := &Model{
		cfg:     cfg,
		grid:    dieGrid,
		regions: g,
		rw:      dieGrid.W() / float64(g),
		rh:      dieGrid.H() / float64(g),
	}
	// Region-centre correlation matrix of the *total* channel-length
	// variation (D2D floor included).
	m.corr = linalg.NewMatrix(r, r)
	centers := make([][2]float64, r)
	for i := 0; i < r; i++ {
		centers[i] = [2]float64{
			(float64(i%g) + 0.5) * m.rw,
			(float64(i/g) + 0.5) * m.rh,
		}
	}
	for i := 0; i < r; i++ {
		m.corr.Set(i, i, 1)
		for j := i + 1; j < r; j++ {
			d := math.Hypot(centers[i][0]-centers[j][0], centers[i][1]-centers[j][1])
			rho := cfg.Proc.TotalCorr(d)
			m.corr.Set(i, j, rho)
			m.corr.Set(j, i, rho)
		}
	}
	return m, nil
}

// buildFactors performs the PCA factor reduction on first use, scaled by
// σ_L so that region L = µ + factors·z with z ~ N(0, I).
func (m *Model) buildFactors() error {
	if m.factors != nil {
		return nil
	}
	b, k, err := linalg.PCAFactors(m.corr, m.cfg.PCAFraction)
	if err != nil {
		return fmt.Errorf("gridmodel: PCA: %w", err)
	}
	r := m.regions * m.regions
	sigma := m.cfg.Proc.TotalSigma()
	m.factors = linalg.NewMatrix(r, k)
	for i := 0; i < r; i++ {
		for c := 0; c < k; c++ {
			m.factors.Set(i, c, b.At(i, c)*sigma)
		}
	}
	m.k = k
	return nil
}

// Regions returns the per-edge region count.
func (m *Model) Regions() int { return m.regions }

// Factors returns the retained factor count after PCA reduction, building
// the factorization if needed. It returns 0 if the reduction fails (the
// sampler reports the underlying error).
func (m *Model) Factors() int {
	if err := m.buildFactors(); err != nil {
		return 0
	}
	return m.k
}

// regionOf maps a die coordinate to its region index.
func (m *Model) regionOf(x, y float64) int {
	cx := int(x / m.rw)
	cy := int(y / m.rh)
	if cx >= m.regions {
		cx = m.regions - 1
	}
	if cy >= m.regions {
		cy = m.regions - 1
	}
	return cy*m.regions + cx
}

// Moments computes the full-chip leakage mean and standard deviation of a
// placed netlist under the grid model: per-gate effective moments at the
// signal probability, pairwise covariances through the region-quantized
// correlation with the simplified ρ_leak = ρ_L mapping (as in the MC-mode
// prior work), aggregated per (region, type).
func (m *Model) Moments(nl *netlist.Netlist, pl *placement.Placement, signalProb float64) (mean, std float64, err error) {
	n := len(nl.Gates)
	if n == 0 {
		return 0, 0, fmt.Errorf("gridmodel: empty netlist")
	}
	if len(pl.Site) != n {
		return 0, 0, fmt.Errorf("gridmodel: placement covers %d gates, netlist has %d", len(pl.Site), n)
	}
	if signalProb < 0 || signalProb > 1 {
		return 0, 0, fmt.Errorf("gridmodel: signal probability %g outside [0, 1]", signalProb)
	}
	types := nl.SortedTypes()
	tIdx := make(map[string]int, len(types))
	mus := make([]float64, len(types))
	mixVar := make([]float64, len(types))  // full per-gate variance (diagonal)
	corrSig := make([]float64, len(types)) // L-correlated sigma (off-diagonal)
	for i, typ := range types {
		tIdx[typ] = i
		cc, err := m.cfg.Lib.Cell(typ)
		if err != nil {
			return 0, 0, fmt.Errorf("gridmodel: %w", err)
		}
		mu, sd := cc.EffectiveStats(signalProb, false)
		mus[i] = mu
		mixVar[i] = sd * sd
		// Only the channel-length-induced part of a gate's spread is
		// spatially correlated; the state-choice component is independent
		// across gates. Under the simplified ρ_leak = ρ_L mapping this is
		// the state-weighted average of the per-state sigmas.
		s := 0.0
		for j := range cc.States {
			s += cc.StateProb(cc.States[j].State, signalProb) * cc.States[j].FitStd
		}
		corrSig[i] = s
	}
	// Aggregate correlated-σ mass per region: s[r] = Σ_{gates in r} σ_g.
	r := m.regions * m.regions
	sMass := make([]float64, r)
	selfCorr2 := make([]float64, r) // Σ corrSig² per region, to exclude a=b
	variance := 0.0
	for g, gate := range nl.Gates {
		ti := tIdx[gate.Type]
		mean += mus[ti]
		variance += mixVar[ti]
		x, y := pl.Pos(g)
		ri := m.regionOf(x, y)
		sMass[ri] += corrSig[ti]
		selfCorr2[ri] += corrSig[ti] * corrSig[ti]
	}
	// Off-diagonal: Σ_{a≠b} σ_a σ_b ρ(region_a, region_b)
	// = Σ_{ri,rj} s[ri]·s[rj]·ρ_ij with the a=b self terms excluded;
	// same-region gate pairs use ρ = 1 under the quantization.
	for ri := 0; ri < r; ri++ {
		if sMass[ri] == 0 {
			continue
		}
		variance += sMass[ri]*sMass[ri] - selfCorr2[ri]
		for rj := ri + 1; rj < r; rj++ {
			if sMass[rj] == 0 {
				continue
			}
			variance += 2 * sMass[ri] * sMass[rj] * m.corr.At(ri, rj)
		}
	}
	if variance < 0 {
		variance = 0
	}
	std = math.Sqrt(variance)
	if err := lkerr.CheckFinite("gridmodel.Moments", "mean", mean); err != nil {
		return 0, 0, err
	}
	if err := lkerr.CheckFinite("gridmodel.Moments", "std", std); err != nil {
		return 0, 0, err
	}
	return mean, std, nil
}

// DistResult summarizes a factor-space Monte Carlo.
type DistResult struct {
	Mean, Std float64
	Q05, Q95  float64
	Samples   int
	// Factors is the sampled dimension (after PCA truncation).
	Factors int
}

// SampleDistribution draws the full-chip leakage distribution by sampling
// the PCA factor space: z ~ N(0, I_k) gives the region channel lengths,
// each gate's leakage is evaluated from its characterization curve at its
// region's L, and states are sampled from the signal probability. The cost
// per trial is O(n + R·k) — no n×n factorization.
func (m *Model) SampleDistribution(nl *netlist.Netlist, pl *placement.Placement, signalProb float64, samples int, seed int64) (DistResult, error) {
	return m.SampleDistributionCtx(context.Background(), nl, pl, signalProb, samples, seed)
}

// SampleDistributionCtx is SampleDistribution with cancellation: ctx is
// checked once per factor-space trial.
func (m *Model) SampleDistributionCtx(ctx context.Context, nl *netlist.Netlist, pl *placement.Placement, signalProb float64, samples int, seed int64) (DistResult, error) {
	n := len(nl.Gates)
	if n == 0 {
		return DistResult{}, fmt.Errorf("gridmodel: empty netlist")
	}
	if len(pl.Site) != n {
		return DistResult{}, fmt.Errorf("gridmodel: placement covers %d gates, netlist has %d", len(pl.Site), n)
	}
	if samples < 10 {
		return DistResult{}, fmt.Errorf("gridmodel: %d samples too few", samples)
	}
	if signalProb < 0 || signalProb > 1 {
		return DistResult{}, fmt.Errorf("gridmodel: signal probability %g outside [0, 1]", signalProb)
	}
	if err := m.buildFactors(); err != nil {
		return DistResult{}, err
	}
	// Per-gate state tables and region assignment.
	type gateInfo struct {
		states []*charlib.StateChar
		cum    []float64
		region int
	}
	gates := make([]gateInfo, n)
	for g, gate := range nl.Gates {
		cc, err := m.cfg.Lib.Cell(gate.Type)
		if err != nil {
			return DistResult{}, fmt.Errorf("gridmodel: %w", err)
		}
		gi := gateInfo{}
		cum := 0.0
		for i := range cc.States {
			p := cc.StateProb(cc.States[i].State, signalProb)
			if p == 0 {
				continue
			}
			cum += p
			gi.states = append(gi.states, &cc.States[i])
			gi.cum = append(gi.cum, cum)
		}
		if len(gi.states) == 0 {
			return DistResult{}, fmt.Errorf("gridmodel: gate %d has no reachable states", g)
		}
		gi.cum[len(gi.cum)-1] = 1
		x, y := pl.Pos(g)
		gi.region = m.regionOf(x, y)
		gates[g] = gi
	}

	r := m.regions * m.regions
	rng := stats.NewRNG(seed, "gridmodel/"+nl.Name)
	z := make([]float64, m.k)
	ls := make([]float64, r)
	totals := make([]float64, samples)
	var run stats.Running
	mu := m.cfg.Proc.LNominal
	lMin := 0.3 * mu // clamp against deep-tail extrapolation
	for trial := 0; trial < samples; trial++ {
		if err := lkerr.FromContext(ctx, "gridmodel.SampleDistribution"); err != nil {
			return DistResult{}, err
		}
		fault.Hit(fault.SiteGridTrial)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		for ri := 0; ri < r; ri++ {
			row := m.factors.Row(ri)
			l := mu
			for c, zc := range z {
				l += row[c] * zc
			}
			if l < lMin {
				l = lMin
			}
			ls[ri] = l
		}
		total := 0.0
		for g := range gates {
			gi := &gates[g]
			st := gi.states[0]
			if len(gi.states) > 1 {
				u := rng.Float64()
				idx := sort.SearchFloat64s(gi.cum, u)
				if idx >= len(gi.states) {
					idx = len(gi.states) - 1
				}
				st = gi.states[idx]
			}
			total += st.Leakage(ls[gi.region])
		}
		total = fault.Corrupt(fault.SiteGridTrial, total)
		totals[trial] = total
		run.Push(total)
	}
	res := DistResult{
		Mean:    run.Mean(),
		Std:     run.StdDev(),
		Q05:     stats.Quantile(totals, 0.05),
		Q95:     stats.Quantile(totals, 0.95),
		Samples: samples,
		Factors: m.k,
	}
	if err := lkerr.CheckFinite("gridmodel.SampleDistribution", "mean", res.Mean); err != nil {
		return DistResult{}, err
	}
	if err := lkerr.CheckFinite("gridmodel.SampleDistribution", "std", res.Std); err != nil {
		return DistResult{}, err
	}
	return res, nil
}
