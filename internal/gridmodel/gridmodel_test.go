package gridmodel

import (
	"math"
	"testing"

	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func setup(t *testing.T, n int) (Config, *netlist.Netlist, *placement.Placement) {
	t.Helper()
	lib, err := charlib.SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	base := spatial.Default90nm()
	proc := &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 25, R: 100},
	}
	hist, _ := stats.NewHistogram(map[string]float64{
		"INV_X1": 2, "NAND2_X1": 2, "NOR2_X1": 1,
	})
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	rng := stats.NewRNG(31, "gridmodel-test")
	nl, err := netlist.RandomCircuit(rng, "gm", n, 8, hist,
		func(typ string) (int, error) { return byName[typ], nil })
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := placement.AutoGrid(n)
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Lib: lib, Proc: proc}, nl, pl
}

func TestNewValidation(t *testing.T) {
	cfg, _, pl := setup(t, 16)
	if _, err := New(Config{}, pl.Grid); err == nil {
		t.Errorf("empty config accepted")
	}
	bad := cfg
	bad.GridDim = 100
	if _, err := New(bad, pl.Grid); err == nil {
		t.Errorf("oversized grid accepted")
	}
	wrongProc := *cfg.Proc
	wrongProc.SigmaWID *= 2
	bad = cfg
	bad.Proc = &wrongProc
	if _, err := New(bad, pl.Grid); err == nil {
		t.Errorf("inconsistent process accepted")
	}
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if m.Regions() != 8 {
		t.Errorf("default grid dim = %d", m.Regions())
	}
	if m.Factors() <= 0 || m.Factors() > 64 {
		t.Errorf("factor count %d implausible", m.Factors())
	}
}

func TestPCATruncationReducesFactors(t *testing.T) {
	cfg, _, pl := setup(t, 400)
	cfg.GridDim = 8
	full, err := New(Config{Lib: cfg.Lib, Proc: cfg.Proc, GridDim: 8, PCAFraction: 1}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := New(Config{Lib: cfg.Lib, Proc: cfg.Proc, GridDim: 8, PCAFraction: 0.95}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("factors: full %d, 95%% %d (of %d regions)", full.Factors(), trunc.Factors(), 64)
	if trunc.Factors() >= full.Factors() {
		t.Errorf("PCA truncation did not reduce dimensions: %d vs %d", trunc.Factors(), full.Factors())
	}
	// With a strong D2D floor, a handful of factors dominates.
	if trunc.Factors() > 32 {
		t.Errorf("95%% of spectrum needs %d factors — quantization suspect", trunc.Factors())
	}
}

func TestMomentsMatchTrueStats(t *testing.T) {
	cfg, nl, pl := setup(t, 400)
	cfg.GridDim = 12
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	mean, std, err := m.Moments(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the exact O(n²) with the same simplified mapping.
	spec, err := core.ExtractSpec(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, core.MCSimplified)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.TrueStats(model, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	// The grid model uses fit moments (mode-independent mean differences
	// are small); means must agree to within the moment-source difference.
	if e := math.Abs(stats.RelErr(mean, truth.Mean)); e > 2 {
		t.Errorf("grid mean %.4g vs true %.4g (%.2f%%)", mean, truth.Mean, e)
	}
	if e := math.Abs(stats.RelErr(std, truth.Std)); e > 6 {
		t.Errorf("grid σ %.4g vs true %.4g (%.2f%%)", std, truth.Std, e)
	}
	t.Logf("grid (%d regions): σ=%.4g, true σ=%.4g (%.2f%%)",
		m.Regions()*m.Regions(), std, truth.Std, math.Abs(stats.RelErr(std, truth.Std)))
}

func TestMomentsRefinesWithGrid(t *testing.T) {
	cfg, nl, pl := setup(t, 400)
	spec, _ := core.ExtractSpec(nl, pl, 0.5)
	model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, core.AnalyticSimplified)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.TrueStats(model, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(dim int) float64 {
		c := cfg
		c.GridDim = dim
		m, err := New(c, pl.Grid)
		if err != nil {
			t.Fatal(err)
		}
		_, std, err := m.Moments(nl, pl, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(stats.RelErr(std, truth.Std))
	}
	coarse := errAt(2)
	fine := errAt(16)
	t.Logf("σ err: 2×2 grid %.3f%%, 16×16 grid %.3f%%", coarse, fine)
	if fine > coarse {
		t.Errorf("finer grid less accurate: %.3f%% vs %.3f%%", fine, coarse)
	}
	if fine > 3 {
		t.Errorf("16×16 grid error %.3f%% too large", fine)
	}
}

func TestSampleDistributionMatchesMoments(t *testing.T) {
	cfg, nl, pl := setup(t, 225)
	cfg.GridDim = 10
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	mean, std, err := m.Moments(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := m.SampleDistribution(nl, pl, 0.5, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("moments: µ=%.4g σ=%.4g | sampled: µ=%.4g σ=%.4g (k=%d factors)",
		mean, std, dist.Mean, dist.Std, dist.Factors)
	se := std / math.Sqrt(float64(dist.Samples))
	if math.Abs(dist.Mean-mean) > 6*se {
		t.Errorf("sampled mean %.5g vs analytic %.5g", dist.Mean, mean)
	}
	if e := math.Abs(stats.RelErr(dist.Std, std)); e > 10 {
		t.Errorf("sampled σ %.5g vs analytic %.5g (%.1f%%)", dist.Std, std, e)
	}
	if !(dist.Q05 < dist.Mean && dist.Mean < dist.Q95) {
		t.Errorf("quantiles disordered")
	}
}

func TestSampleDistributionErrors(t *testing.T) {
	cfg, nl, pl := setup(t, 16)
	m, err := New(cfg, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SampleDistribution(nl, pl, 0.5, 2, 1); err == nil {
		t.Errorf("too-few samples accepted")
	}
	if _, err := m.SampleDistribution(nl, pl, 2, 100, 1); err == nil {
		t.Errorf("bad signal probability accepted")
	}
	empty := &netlist.Netlist{Name: "e"}
	if _, err := m.SampleDistribution(empty, pl, 0.5, 100, 1); err == nil {
		t.Errorf("empty netlist accepted")
	}
	if _, _, err := m.Moments(empty, pl, 0.5); err == nil {
		t.Errorf("Moments accepted empty netlist")
	}
	if _, _, err := m.Moments(nl, pl, -1); err == nil {
		t.Errorf("Moments accepted bad probability")
	}
}
