package cells

import (
	"math"
	"strings"
	"testing"
)

func find(t *testing.T, name string) *Cell {
	t.Helper()
	for _, c := range Library() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("cell %s not in library", name)
	return nil
}

func TestLibraryHas62Cells(t *testing.T) {
	lib := Library()
	if len(lib) != 62 {
		t.Fatalf("library has %d cells, want 62 (the paper's count)", len(lib))
	}
	// Names unique, classes known, device counts positive.
	seen := map[string]bool{}
	for _, c := range lib {
		if seen[c.Name] {
			t.Errorf("duplicate name %s", c.Name)
		}
		seen[c.Name] = true
		if c.Class != "comb" && c.Class != "seq" && c.Class != "sram" {
			t.Errorf("%s: unknown class %q", c.Name, c.Class)
		}
		if c.NumDevices <= 0 {
			t.Errorf("%s: no devices", c.Name)
		}
		if c.NumInputs < 0 || c.NumInputs > 6 {
			t.Errorf("%s: implausible input count %d", c.Name, c.NumInputs)
		}
	}
	// The paper highlights SRAM, flip-flops and a range of logic cells.
	for _, want := range []string{"SRAM6T", "DFF_X1", "NAND4_X1", "XOR2_X1", "AOI221_X1"} {
		if !seen[want] {
			t.Errorf("library missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	m := ByName(Library())
	if len(m) != 62 {
		t.Fatalf("ByName lost cells: %d", len(m))
	}
	if m["INV_X1"].Name != "INV_X1" {
		t.Errorf("ByName lookup broken")
	}
}

func TestAllCellStatesEvaluate(t *testing.T) {
	// Every (cell, state) pair must produce a positive, finite leakage at
	// nominal L, and perturbing L must move it in the expected direction.
	for _, c := range Library() {
		for s := uint(0); s < uint(c.NumStates()); s++ {
			x := c.Leakage(s, lNom, nil)
			if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
				t.Fatalf("%s state %d: leakage = %g", c.Name, s, x)
			}
			short := c.Leakage(s, lNom*0.95, nil)
			if short <= x {
				t.Errorf("%s state %d: shorter L must leak more (%g vs %g)", c.Name, s, short, x)
			}
		}
	}
}

func TestInverterStates(t *testing.T) {
	inv := find(t, "INV_X1")
	if inv.NumStates() != 2 {
		t.Fatalf("INV_X1 states = %d", inv.NumStates())
	}
	// Input low: NMOS off (leaks), PMOS on. Input high: PMOS off.
	// PMOS is wider but has lower specific current; both states must be
	// positive and differ (asymmetric device cards).
	l0 := inv.Leakage(0, lNom, nil)
	l1 := inv.Leakage(1, lNom, nil)
	if l0 == l1 {
		t.Errorf("INV states unexpectedly identical: %g", l0)
	}
}

func TestNANDStackEffectAcrossStates(t *testing.T) {
	nand := find(t, "NAND2_X1")
	// State 0 (both inputs low): both NMOS off — full stack effect, lowest
	// pull-down leakage. State 3 (both high): output low, PMOS leak only.
	l00 := nand.Leakage(0, lNom, nil)
	l01 := nand.Leakage(1, lNom, nil)
	l10 := nand.Leakage(2, lNom, nil)
	l11 := nand.Leakage(3, lNom, nil)
	// All-off stack should be the minimum of the three output-high states.
	if !(l00 < l01 && l00 < l10) {
		t.Errorf("stack effect missing: l00=%g l01=%g l10=%g l11=%g", l00, l01, l10, l11)
	}
	// The spread across states should be substantial (the paper reports up
	// to ~10X for single gates).
	min, max := l00, l00
	for _, v := range []float64{l01, l10, l11} {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min < 1.5 {
		t.Errorf("state spread = %g too small", max/min)
	}
}

func TestSignalsConsistency(t *testing.T) {
	// XOR2: last stage output must equal a ⊕ b for all states.
	xor := find(t, "XOR2_X1")
	for s := uint(0); s < 4; s++ {
		sig := xor.Signals(s)
		a := s&1 != 0
		b := s&2 != 0
		if got := sig[len(sig)-1]; got != (a != b) {
			t.Errorf("XOR2 state %d: out = %v", s, got)
		}
	}
	// FA: carry and sum stages.
	fa := find(t, "FA_X1")
	for s := uint(0); s < 8; s++ {
		sig := fa.Signals(s)
		a, b, ci := s&1 != 0, s&2 != 0, s&4 != 0
		n := 0
		for _, v := range []bool{a, b, ci} {
			if v {
				n++
			}
		}
		co := sig[fa.NumInputs+1]  // stage 1: co
		sum := sig[fa.NumInputs+3] // stage 3: s
		if co != (n >= 2) {
			t.Errorf("FA state %d: co = %v, ones = %d", s, co, n)
		}
		if sum != (n%2 == 1) {
			t.Errorf("FA state %d: sum = %v, ones = %d", s, sum, n)
		}
	}
	// MAJ3.
	maj := find(t, "MAJ3_X1")
	for s := uint(0); s < 8; s++ {
		sig := maj.Signals(s)
		n := 0
		for i := 0; i < 3; i++ {
			if s&(1<<uint(i)) != 0 {
				n++
			}
		}
		if got := sig[len(sig)-1]; got != (n >= 2) {
			t.Errorf("MAJ3 state %d: out = %v", s, got)
		}
	}
	// MUX2: inputs d0=bit0, d1=bit1, s=bit2.
	mux := find(t, "MUX2_X1")
	for s := uint(0); s < 8; s++ {
		sig := mux.Signals(s)
		d0, d1, sel := s&1 != 0, s&2 != 0, s&4 != 0
		want := d0
		if sel {
			want = d1
		}
		if got := sig[len(sig)-1]; got != want {
			t.Errorf("MUX2 state %d: out = %v, want %v", s, got, want)
		}
	}
}

func TestDFFStateConsistency(t *testing.T) {
	dff := find(t, "DFF_X1")
	if dff.NumInputs != 4 {
		t.Fatalf("DFF inputs = %d", dff.NumInputs)
	}
	// CLK=0 (transparent master): master node follows D.
	// Signals: D=0 CLK=1 M=2 S=3 clkb=4 clki=5 m_in=6 ...
	sig := dff.Signals(0b0001) // D=1, CLK=0, M=0, S=0
	if !sig[6] {
		t.Errorf("CLK=0: master node should follow D=1")
	}
	// CLK=1: master holds M regardless of D.
	sig = dff.Signals(0b0011) // D=1, CLK=1, M=0, S=0
	if sig[6] {
		t.Errorf("CLK=1: master node should hold M=0")
	}
	// CLK=1: slave follows mq = !m_in.
	if sig[9] != !sig[6] {
		t.Errorf("CLK=1: slave should follow !master")
	}
	// TG consistency: when the input TG is ON (CLK=0) the master node
	// equals D, so the TG carries no DC current. This keeps total leakage
	// modest; a contradiction would show up as an enormous ON current.
	for s := uint(0); s < uint(dff.NumStates()); s++ {
		x := dff.Leakage(s, lNom, nil)
		if x > 1e-5 {
			t.Errorf("DFF state %04b: leakage %g suspiciously large (TG contradiction?)", s, x)
		}
	}
}

func TestSRAMCell(t *testing.T) {
	sram := find(t, "SRAM6T")
	if sram.NumStates() != 1 {
		t.Fatalf("SRAM states = %d", sram.NumStates())
	}
	if sram.NumDevices != 6 {
		t.Errorf("SRAM devices = %d, want 6", sram.NumDevices)
	}
	x := sram.Leakage(0, lNom, nil)
	// Three leaking narrow devices: order ~3 single-device leakages scaled
	// by width ratios.
	if !(x > 0 && x < 1e-6) {
		t.Errorf("SRAM leakage = %g implausible", x)
	}
}

func TestMaxStateLeakage(t *testing.T) {
	nand := find(t, "NAND2_X1")
	best, state := nand.MaxStateLeakage(lNom)
	for s := uint(0); s < 4; s++ {
		if x := nand.Leakage(s, lNom, nil); x > best {
			t.Errorf("state %d leakage %g exceeds reported max %g (state %d)", s, x, best, state)
		}
	}
}

func TestVtOffsetsLowerVtMoreLeakage(t *testing.T) {
	inv := find(t, "INV_X1")
	dvt := make([]float64, inv.NumDevices)
	for i := range dvt {
		dvt[i] = -0.05
	}
	hot := inv.Leakage(0, lNom, dvt)
	base := inv.Leakage(0, lNom, nil)
	if hot <= base {
		t.Errorf("lower Vt must increase leakage: %g vs %g", hot, base)
	}
}

func TestLeakagePanics(t *testing.T) {
	inv := find(t, "INV_X1")
	for _, f := range []func(){
		func() { inv.Leakage(5, lNom, nil) },
		func() { inv.Leakage(0, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCoreSubset(t *testing.T) {
	sub := CoreSubset()
	if len(sub) < 5 {
		t.Fatalf("core subset too small: %d", len(sub))
	}
	classes := map[string]bool{}
	for _, c := range sub {
		classes[c.Class] = true
	}
	for _, want := range []string{"comb", "seq", "sram"} {
		if !classes[want] {
			t.Errorf("core subset missing class %s", want)
		}
	}
}

func TestDriveStrengthScalesLeakage(t *testing.T) {
	x1 := find(t, "INV_X1")
	x4 := find(t, "INV_X4")
	r := x4.Leakage(0, lNom, nil) / x1.Leakage(0, lNom, nil)
	if math.Abs(r-4) > 0.01 {
		t.Errorf("INV_X4/INV_X1 leakage ratio = %g, want 4", r)
	}
}

func TestTotalLibraryStateCount(t *testing.T) {
	// Keep a record of the characterization workload; guards against an
	// accidental explosion of pseudo-inputs.
	total := 0
	for _, c := range Library() {
		total += c.NumStates()
	}
	if total < 100 || total > 1200 {
		t.Errorf("total library states = %d outside expected envelope", total)
	}
	t.Logf("library: 62 cells, %d total states", total)
}

func TestSequentialCellsHaveTGs(t *testing.T) {
	for _, name := range []string{"DFF_X1", "DLATCH_X1", "SDFF_X1"} {
		c := find(t, name)
		if len(c.Extras) == 0 {
			t.Errorf("%s has no transmission-gate extras", name)
		}
		if !strings.HasPrefix(c.Class, "seq") {
			t.Errorf("%s class = %s", name, c.Class)
		}
	}
}

func TestGateLeakageEnablement(t *testing.T) {
	// Fresh subset with gate leakage off: zero gate contribution.
	plain := ISCASSubset()
	for _, c := range plain {
		if g := c.GateLeakage(0, lNom); g != 0 {
			t.Fatalf("%s: gate leakage %g without enablement", c.Name, g)
		}
	}
	// Enabled: every cell gains a positive gate term and TotalLeakage adds
	// up; subthreshold is unchanged.
	gated := EnableGateLeakage(ISCASSubset(), 3e-7)
	for i, c := range gated {
		sub := c.Leakage(0, lNom, nil)
		gate := c.GateLeakage(0, lNom)
		if gate <= 0 {
			t.Errorf("%s: gate leakage %g after enablement", c.Name, gate)
		}
		if tot := c.TotalLeakage(0, lNom, nil); math.Abs(tot-(sub+gate)) > 1e-18 {
			t.Errorf("%s: TotalLeakage %g != %g + %g", c.Name, tot, sub, gate)
		}
		if plainSub := plain[i].Leakage(0, lNom, nil); math.Abs(plainSub-sub)/plainSub > 1e-12 {
			t.Errorf("%s: enabling gate leakage changed subthreshold", c.Name)
		}
	}
	// Gate leakage increases with L (tunneling area) — opposite to
	// subthreshold.
	inv := gated[0]
	if !(inv.GateLeakage(0, lNom*1.05) > inv.GateLeakage(0, lNom*0.95)) {
		t.Errorf("gate leakage should grow with L")
	}
	// Sequential extras also participate.
	dff := EnableGateLeakage([]*Cell{dffCell("DFF_T", 1)}, 3e-7)[0]
	if dff.GateLeakage(0, lNom) <= 0 {
		t.Errorf("DFF extras have no gate leakage")
	}
}

func TestAtTemperatureCells(t *testing.T) {
	hot, err := AtTemperature(ISCASSubset(), 375)
	if err != nil {
		t.Fatal(err)
	}
	cold := ISCASSubset()
	for i := range hot {
		h := hot[i].Leakage(0, lNom, nil)
		c := cold[i].Leakage(0, lNom, nil)
		if h < 2*c {
			t.Errorf("%s: 375 K leakage %g not well above 300 K %g", hot[i].Name, h, c)
		}
	}
	if _, err := AtTemperature(ISCASSubset(), 1000); err == nil {
		t.Errorf("absurd temperature accepted")
	}
	// Extras path: DFF contains extras whose cards must also rescale.
	dffs, err := AtTemperature([]*Cell{dffCell("DFF_T", 1)}, 375)
	if err != nil {
		t.Fatal(err)
	}
	base := dffCell("DFF_T", 1)
	if dffs[0].Leakage(0, lNom, nil) <= base.Leakage(0, lNom, nil) {
		t.Errorf("DFF extras not rescaled")
	}
}

func TestOutputProbability(t *testing.T) {
	nand := find(t, "NAND2_X1")
	// P(out=1) = 1 − p_a·p_b.
	for _, probs := range [][2]float64{{0.5, 0.5}, {0.2, 0.9}, {1, 1}, {0, 0.7}} {
		got, err := nand.OutputProbability(probs[:])
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - probs[0]*probs[1]
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("NAND2(%v): %g, want %g", probs, got, want)
		}
	}
	// XOR2: p_a(1−p_b) + (1−p_a)p_b.
	xor := find(t, "XOR2_X1")
	got, err := xor.OutputProbability([]float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3*0.2 + 0.7*0.8
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("XOR2: %g, want %g", got, want)
	}
	// Errors.
	if _, err := nand.OutputProbability([]float64{0.5}); err == nil {
		t.Errorf("pin-count mismatch accepted")
	}
	if _, err := nand.OutputProbability([]float64{0.5, 2}); err == nil {
		t.Errorf("out-of-range probability accepted")
	}
	sram := find(t, "SRAM6T")
	if _, err := sram.OutputProbability(nil); err == nil {
		t.Errorf("stage-less cell should have no output probability")
	}
}
