// Package cells defines the standard-cell library used for leakage
// characterization: 62 cells spanning inverters and buffers of several drive
// strengths, NAND/NOR stacks up to 4 inputs, AND/OR compositions, complex
// AOI/OAI gates, XOR/XNOR, multiplexers, adders, latches, flip-flops and an
// SRAM bit cell — the same topology diversity as the commercial 90 nm
// library the paper characterizes (see DESIGN.md, Substitutions).
//
// A cell is a feed-forward list of static CMOS stages plus optional
// explicitly biased devices (for transmission gates and the SRAM cell whose
// node voltages are determined by a stored state rather than by stage
// logic). Sequential cells expose their internal state bits as extra
// "pseudo-inputs" so that, as in the paper, every cell is characterized for
// every input (and state) combination.
package cells

import (
	"fmt"
	"math"

	"leakest/internal/circuit"
	"leakest/internal/device"
)

// Stage is one static CMOS stage: a pull-up network of PMOS between Vdd and
// the stage output, a dual pull-down network of NMOS between the output and
// ground, and the Boolean function the stage realizes over the cell's
// signal vector.
//
// A Stage with nil PUN and PDN is a pure derived signal: its Logic defines
// an internal node value (e.g. a latch storage node whose voltage follows a
// stored pseudo-state) without contributing stage leakage. Such nodes are
// referenced by gate pins of later stages and by the selectors of Extras.
type Stage struct {
	// PUN and PDN are the pull-up and pull-down networks. Gate pins index
	// the signal vector: 0..NumInputs-1 are cell inputs, NumInputs+k is the
	// output of stage k. Both nil for a derived signal.
	PUN, PDN *circuit.Network
	// Logic computes the stage output from the current signal values.
	Logic func(sig []bool) bool
}

// Cell is one library cell.
type Cell struct {
	// Name is the library cell name, e.g. "NAND2_X1".
	Name string
	// NumInputs counts the cell's inputs including any sequential
	// pseudo-state bits (documented per cell).
	NumInputs int
	// Stages lists the feed-forward CMOS stages.
	Stages []Stage
	// Extras lists explicitly biased devices (transmission gates, SRAM
	// core) whose leakage adds to the stage leakage.
	Extras []circuit.BiasedDevice
	// NumDevices is the total transistor count (stages + extras).
	NumDevices int
	// Vdd is the supply voltage (volts), shared by all devices.
	Vdd float64
	// Class tags the cell kind: "comb", "seq" or "sram".
	Class string
}

// NumStates returns the number of input/state combinations, 2^NumInputs.
func (c *Cell) NumStates() int { return 1 << uint(c.NumInputs) }

// SignalCount returns the length of the cell's signal vector.
func (c *Cell) SignalCount() int { return c.NumInputs + len(c.Stages) }

// Signals evaluates the full signal vector for the input state encoded in
// the bits of state (bit i is input i).
func (c *Cell) Signals(state uint) []bool {
	sig := make([]bool, 0, c.SignalCount())
	for i := 0; i < c.NumInputs; i++ {
		sig = append(sig, state&(1<<uint(i)) != 0)
	}
	for _, st := range c.Stages {
		sig = append(sig, st.Logic(sig))
	}
	return sig
}

// Leakage returns the total subthreshold leakage of the cell in state
// `state` at shared channel length l (µm) with optional per-device Vt
// offsets dvt (indexed by the cell's device order; nil for none).
//
// For each stage, only the OFF network carries current: if the stage output
// is high the pull-down network leaks from the output (at Vdd) to ground;
// if low, the pull-up leaks from Vdd to the output (at ground). The ON
// network has no voltage across it and contributes nothing. Explicitly
// biased extras are added afterwards.
func (c *Cell) Leakage(state uint, l float64, dvt []float64) float64 {
	if state >= uint(c.NumStates()) {
		panic(fmt.Sprintf("cells: state %d out of range for %s (%d inputs)", state, c.Name, c.NumInputs))
	}
	if l <= 0 {
		panic(fmt.Sprintf("cells: non-positive channel length %g", l))
	}
	sig := c.Signals(state)
	v := make([]float64, len(sig))
	for i, b := range sig {
		if b {
			v[i] = c.Vdd
		}
	}
	env := &circuit.Env{V: v, L: l, DVt: dvt}
	total := 0.0
	for i, st := range c.Stages {
		if st.PUN == nil { // derived signal: no hardware of its own
			continue
		}
		out := sig[c.NumInputs+i]
		if out {
			total += st.PDN.Current(c.Vdd, 0, env)
		} else {
			total += st.PUN.Current(c.Vdd, 0, env)
		}
	}
	for _, ex := range c.Extras {
		total += ex.Leakage(env)
	}
	return total
}

// MaxStateLeakage returns the largest leakage over all states at nominal l,
// along with the maximizing state.
func (c *Cell) MaxStateLeakage(l float64) (float64, uint) {
	best, bestState := math.Inf(-1), uint(0)
	for s := uint(0); s < uint(c.NumStates()); s++ {
		if x := c.Leakage(s, l, nil); x > best {
			best, bestState = x, s
		}
	}
	return best, bestState
}

// finish assigns Vt indices to every network and extra, computes the device
// count, and validates stage wiring. Call exactly once after assembling the
// cell.
func (c *Cell) finish() *Cell {
	next := 0
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.Logic == nil {
			panic(fmt.Sprintf("cells: %s stage %d has no logic", c.Name, i))
		}
		if (st.PUN == nil) != (st.PDN == nil) {
			panic(fmt.Sprintf("cells: %s stage %d has only one network", c.Name, i))
		}
		if st.PUN != nil {
			next = st.PUN.AssignVtIndices(next)
			next = st.PDN.AssignVtIndices(next)
		}
	}
	for i := range c.Extras {
		c.Extras[i].VtIdx = next
		next++
	}
	c.NumDevices = next
	if c.Vdd <= 0 {
		panic(fmt.Sprintf("cells: %s has no supply voltage", c.Name))
	}
	return c
}

// GateLeakage returns the total gate tunneling leakage of the cell in the
// given state at channel length l. It is zero unless gate leakage has been
// enabled on the cell's devices (see EnableGateLeakage).
func (c *Cell) GateLeakage(state uint, l float64) float64 {
	sig := c.Signals(state)
	v := make([]float64, len(sig))
	for i, b := range sig {
		if b {
			v[i] = c.Vdd
		}
	}
	env := &circuit.Env{V: v, L: l}
	total := 0.0
	for _, st := range c.Stages {
		if st.PUN == nil {
			continue
		}
		total += st.PUN.GateLeakage(c.Vdd, env)
		total += st.PDN.GateLeakage(c.Vdd, env)
	}
	for _, ex := range c.Extras {
		total += ex.GateLeakage(env)
	}
	return total
}

// TotalLeakage returns subthreshold plus gate leakage for the state.
func (c *Cell) TotalLeakage(state uint, l float64, dvt []float64) float64 {
	return c.Leakage(state, l, dvt) + c.GateLeakage(state, l)
}

// EnableGateLeakage sets the gate tunneling current density (A/µm²) on
// every device of every cell in the list, in place, and returns the list.
// Characterizing an enabled library captures the combined subthreshold +
// gate leakage in the same statistical framework — the gate-leakage
// ablation experiment quantifies the effect on full-chip variability.
func EnableGateLeakage(cellList []*Cell, jGate float64) []*Cell {
	set := func(m *device.MOSFET) { m.Tech.JGate = jGate }
	for _, c := range cellList {
		for i := range c.Stages {
			st := &c.Stages[i]
			if st.PUN != nil {
				st.PUN.MapDevices(set)
				st.PDN.MapDevices(set)
			}
		}
		for i := range c.Extras {
			c.Extras[i].Dev.Tech.JGate = jGate
		}
	}
	return cellList
}

// AtTemperature rescales every device's technology card from the 300 K
// reference to the given junction temperature (kelvin), in place, and
// returns the list. Characterizing the rescaled library captures the
// temperature dependence of the leakage statistics; see the temperature
// experiment and the thermal-runaway example.
func AtTemperature(cellList []*Cell, tempK float64) ([]*Cell, error) {
	var firstErr error
	apply := func(m *device.MOSFET) {
		card, err := m.Tech.AtTemperature(tempK)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		m.Tech = card
	}
	for _, c := range cellList {
		for i := range c.Stages {
			st := &c.Stages[i]
			if st.PUN != nil {
				st.PUN.MapDevices(apply)
				st.PDN.MapDevices(apply)
			}
		}
		for i := range c.Extras {
			card, err := c.Extras[i].Dev.Tech.AtTemperature(tempK)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			c.Extras[i].Dev.Tech = card
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return cellList, nil
}

// OutputProbability returns the probability that the cell's output (the
// last stage's signal) is 1, given independent per-pin 1-probabilities.
// Sequential pseudo-state pins take their entries in pinProbs like any
// other input (0.5 is the customary choice). The cell function is
// enumerated exactly over all 2^k input states.
func (c *Cell) OutputProbability(pinProbs []float64) (float64, error) {
	if len(pinProbs) != c.NumInputs {
		return 0, fmt.Errorf("cells: %s has %d inputs, got %d pin probabilities",
			c.Name, c.NumInputs, len(pinProbs))
	}
	for i, p := range pinProbs {
		if p < 0 || p > 1 {
			return 0, fmt.Errorf("cells: %s pin %d probability %g outside [0, 1]", c.Name, i, p)
		}
	}
	if len(c.Stages) == 0 {
		// Input-less storage cells (SRAM) have no logic output.
		return 0, fmt.Errorf("cells: %s has no output stage", c.Name)
	}
	pOut := 0.0
	for s := uint(0); s < uint(c.NumStates()); s++ {
		w := 1.0
		for i := 0; i < c.NumInputs; i++ {
			if s&(1<<uint(i)) != 0 {
				w *= pinProbs[i]
			} else {
				w *= 1 - pinProbs[i]
			}
		}
		if w == 0 {
			continue
		}
		sig := c.Signals(s)
		if sig[len(sig)-1] {
			pOut += w
		}
	}
	return pOut, nil
}
