package cells

import (
	"fmt"
	"sort"

	"leakest/internal/circuit"
	"leakest/internal/device"
)

// Base device widths in µm for a unit-drive (X1) cell; PMOS are twice as
// wide to balance the lower hole mobility. Devices in an n-deep series
// stack are n× wider, the usual logical-effort sizing.
const (
	baseWN = 0.3
	baseWP = 0.6
	lNom   = 0.09
	vdd    = 1.0
)

func nmos(w float64) device.MOSFET { return device.NewMOSFET(device.NMOS, w, lNom) }
func pmos(w float64) device.MOSFET { return device.NewMOSFET(device.PMOS, w, lNom) }

// nDev and pDev return leaf networks with the stack-compensated width
// w = base·drive·stack.
func nDev(pin int, drive, stack float64) *circuit.Network {
	return circuit.Dev(nmos(baseWN*drive*stack), pin)
}

func pDev(pin int, drive, stack float64) *circuit.Network {
	return circuit.Dev(pmos(baseWP*drive*stack), pin)
}

// invStage builds an inverter of the given drive on input pin `in`.
func invStage(in int, drive float64) Stage {
	return Stage{
		PUN:   pDev(in, drive, 1),
		PDN:   nDev(in, drive, 1),
		Logic: func(sig []bool) bool { return !sig[in] },
	}
}

// nandStage builds a k-input NAND: series NMOS stack, parallel PMOS.
func nandStage(ins []int, drive float64) Stage {
	k := float64(len(ins))
	var ns, ps []*circuit.Network
	for _, in := range ins {
		ns = append(ns, nDev(in, drive, k))
		ps = append(ps, pDev(in, drive, 1))
	}
	pins := append([]int(nil), ins...)
	return Stage{
		PUN: circuit.Parallel(ps...),
		PDN: circuit.Series(ns...),
		Logic: func(sig []bool) bool {
			for _, in := range pins {
				if !sig[in] {
					return true
				}
			}
			return false
		},
	}
}

// norStage builds a k-input NOR: parallel NMOS, series PMOS stack.
func norStage(ins []int, drive float64) Stage {
	k := float64(len(ins))
	var ns, ps []*circuit.Network
	for _, in := range ins {
		ns = append(ns, nDev(in, drive, 1))
		ps = append(ps, pDev(in, drive, k))
	}
	pins := append([]int(nil), ins...)
	return Stage{
		PUN: circuit.Series(ps...),
		PDN: circuit.Parallel(ns...),
		Logic: func(sig []bool) bool {
			for _, in := range pins {
				if sig[in] {
					return false
				}
			}
			return true
		},
	}
}

// derived builds a pure derived-signal stage with no hardware.
func derived(logic func(sig []bool) bool) Stage {
	return Stage{Logic: logic}
}

// aoi21Stage: out = !(a·b + c). PDN = (a·b) ∥ c, PUN is the dual.
func aoi21Stage(a, b, c int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(b, drive, 2)),
			nDev(c, drive, 1)),
		PUN: circuit.Series(
			circuit.Parallel(pDev(a, drive, 2), pDev(b, drive, 2)),
			pDev(c, drive, 2)),
		Logic: func(sig []bool) bool { return !(sig[a] && sig[b] || sig[c]) },
	}
}

// oai21Stage: out = !((a+b)·c).
func oai21Stage(a, b, c int, drive float64) Stage {
	return Stage{
		PDN: circuit.Series(
			circuit.Parallel(nDev(a, drive, 2), nDev(b, drive, 2)),
			nDev(c, drive, 2)),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(b, drive, 2)),
			pDev(c, drive, 1)),
		Logic: func(sig []bool) bool { return !((sig[a] || sig[b]) && sig[c]) },
	}
}

// aoi22Stage: out = !(a·b + c·d).
func aoi22Stage(a, b, c, d int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(b, drive, 2)),
			circuit.Series(nDev(c, drive, 2), nDev(d, drive, 2))),
		PUN: circuit.Series(
			circuit.Parallel(pDev(a, drive, 2), pDev(b, drive, 2)),
			circuit.Parallel(pDev(c, drive, 2), pDev(d, drive, 2))),
		Logic: func(sig []bool) bool { return !(sig[a] && sig[b] || sig[c] && sig[d]) },
	}
}

// oai22Stage: out = !((a+b)·(c+d)).
func oai22Stage(a, b, c, d int, drive float64) Stage {
	return Stage{
		PDN: circuit.Series(
			circuit.Parallel(nDev(a, drive, 2), nDev(b, drive, 2)),
			circuit.Parallel(nDev(c, drive, 2), nDev(d, drive, 2))),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(b, drive, 2)),
			circuit.Series(pDev(c, drive, 2), pDev(d, drive, 2))),
		Logic: func(sig []bool) bool { return !((sig[a] || sig[b]) && (sig[c] || sig[d])) },
	}
}

// aoi211Stage: out = !(a·b + c + d).
func aoi211Stage(a, b, c, d int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(b, drive, 2)),
			nDev(c, drive, 1), nDev(d, drive, 1)),
		PUN: circuit.Series(
			circuit.Parallel(pDev(a, drive, 3), pDev(b, drive, 3)),
			pDev(c, drive, 3), pDev(d, drive, 3)),
		Logic: func(sig []bool) bool { return !(sig[a] && sig[b] || sig[c] || sig[d]) },
	}
}

// oai211Stage: out = !((a+b)·c·d).
func oai211Stage(a, b, c, d int, drive float64) Stage {
	return Stage{
		PDN: circuit.Series(
			circuit.Parallel(nDev(a, drive, 3), nDev(b, drive, 3)),
			nDev(c, drive, 3), nDev(d, drive, 3)),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(b, drive, 2)),
			pDev(c, drive, 1), pDev(d, drive, 1)),
		Logic: func(sig []bool) bool { return !((sig[a] || sig[b]) && sig[c] && sig[d]) },
	}
}

// aoi221Stage: out = !(a·b + c·d + e).
func aoi221Stage(a, b, c, d, e int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(b, drive, 2)),
			circuit.Series(nDev(c, drive, 2), nDev(d, drive, 2)),
			nDev(e, drive, 1)),
		PUN: circuit.Series(
			circuit.Parallel(pDev(a, drive, 3), pDev(b, drive, 3)),
			circuit.Parallel(pDev(c, drive, 3), pDev(d, drive, 3)),
			pDev(e, drive, 3)),
		Logic: func(sig []bool) bool {
			return !(sig[a] && sig[b] || sig[c] && sig[d] || sig[e])
		},
	}
}

// oai221Stage: out = !((a+b)·(c+d)·e).
func oai221Stage(a, b, c, d, e int, drive float64) Stage {
	return Stage{
		PDN: circuit.Series(
			circuit.Parallel(nDev(a, drive, 3), nDev(b, drive, 3)),
			circuit.Parallel(pinN(c, drive), pinN(d, drive)),
			nDev(e, drive, 3)),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(b, drive, 2)),
			circuit.Series(pDev(c, drive, 2), pDev(d, drive, 2)),
			pDev(e, drive, 1)),
		Logic: func(sig []bool) bool {
			return !((sig[a] || sig[b]) && (sig[c] || sig[d]) && sig[e])
		},
	}
}

// pinN is nDev with stack 3 (helper to keep oai221Stage lines short).
func pinN(pin int, drive float64) *circuit.Network { return nDev(pin, drive, 3) }

// xorStage: out = a ⊕ b, given pre-inverted signals na = !a, nb = !b.
func xorStage(a, na, b, nb int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(b, drive, 2)),
			circuit.Series(nDev(na, drive, 2), nDev(nb, drive, 2))),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(nb, drive, 2)),
			circuit.Series(pDev(na, drive, 2), pDev(b, drive, 2))),
		Logic: func(sig []bool) bool { return sig[a] != sig[b] },
	}
}

// xnorStage: out = !(a ⊕ b).
func xnorStage(a, na, b, nb int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(nb, drive, 2)),
			circuit.Series(nDev(na, drive, 2), nDev(b, drive, 2))),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(b, drive, 2)),
			circuit.Series(pDev(na, drive, 2), pDev(nb, drive, 2))),
		Logic: func(sig []bool) bool { return sig[a] == sig[b] },
	}
}

// majInvStage: out = !(a·b + c·(a+b)), the mirror-adder carry gate.
func majInvStage(a, b, c int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 2), nDev(b, drive, 2)),
			circuit.Series(nDev(c, drive, 2), circuit.Parallel(nDev(a, drive, 2), nDev(b, drive, 2)))),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 2), pDev(b, drive, 2)),
			circuit.Series(pDev(c, drive, 2), circuit.Parallel(pDev(a, drive, 2), pDev(b, drive, 2)))),
		Logic: func(sig []bool) bool {
			return !(sig[a] && sig[b] || sig[c] && (sig[a] || sig[b]))
		},
	}
}

// sumInvStage: out = !(a·b·c + cob·(a+b+c)), the mirror-adder sum gate,
// where cob is the inverted carry signal.
func sumInvStage(a, b, c, cob int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(a, drive, 3), nDev(b, drive, 3), nDev(c, drive, 3)),
			circuit.Series(nDev(cob, drive, 2),
				circuit.Parallel(nDev(a, drive, 2), nDev(b, drive, 2), nDev(c, drive, 2)))),
		PUN: circuit.Parallel(
			circuit.Series(pDev(a, drive, 3), pDev(b, drive, 3), pDev(c, drive, 3)),
			circuit.Series(pDev(cob, drive, 2),
				circuit.Parallel(pDev(a, drive, 2), pDev(b, drive, 2), pDev(c, drive, 2)))),
		Logic: func(sig []bool) bool {
			return !(sig[a] && sig[b] && sig[c] || sig[cob] && (sig[a] || sig[b] || sig[c]))
		},
	}
}

// mux2InvStage: out = !(d1·s + d0·ns), with ns = !s pre-inverted.
func mux2InvStage(d0, d1, s, ns int, drive float64) Stage {
	return Stage{
		PDN: circuit.Parallel(
			circuit.Series(nDev(d1, drive, 2), nDev(s, drive, 2)),
			circuit.Series(nDev(d0, drive, 2), nDev(ns, drive, 2))),
		PUN: circuit.Series(
			circuit.Parallel(pDev(d1, drive, 2), pDev(s, drive, 2)),
			circuit.Parallel(pDev(d0, drive, 2), pDev(ns, drive, 2))),
		Logic: func(sig []bool) bool { return !(sig[d1] && sig[s] || sig[d0] && !sig[s]) },
	}
}

// --- extras helpers for sequential cells ------------------------------

// voltageOf converts a Boolean selector over the signal vector into a
// voltage selector (rail levels).
func voltageOf(idx int) func(v []float64) float64 { return circuit.Sig(idx) }

// invExtras appends the two devices of an inverter whose input and output
// node voltages are the signals at indices in and out.
func invExtras(ex []circuit.BiasedDevice, in, out int) []circuit.BiasedDevice {
	return append(ex,
		circuit.BiasedDevice{Dev: pmos(baseWP), Gate: voltageOf(in), Source: circuit.Rail(vdd), Drain: voltageOf(out)},
		circuit.BiasedDevice{Dev: nmos(baseWN), Gate: voltageOf(in), Source: circuit.Rail(0), Drain: voltageOf(out)},
	)
}

// tgExtras appends a transmission gate between the nodes at signal indices
// a and b, with NMOS gate at signal ngate and PMOS gate at signal pgate.
func tgExtras(ex []circuit.BiasedDevice, a, b, ngate, pgate int) []circuit.BiasedDevice {
	return append(ex,
		circuit.BiasedDevice{Dev: nmos(baseWN), Gate: voltageOf(ngate), Source: voltageOf(a), Drain: voltageOf(b)},
		circuit.BiasedDevice{Dev: pmos(baseWP), Gate: voltageOf(pgate), Source: voltageOf(a), Drain: voltageOf(b)},
	)
}

// --- cell constructors --------------------------------------------------

func newCell(name, class string, numInputs int) *Cell {
	return &Cell{Name: name, Class: class, NumInputs: numInputs, Vdd: vdd}
}

func invCell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 1)
	c.Stages = []Stage{invStage(0, drive)}
	return c.finish()
}

func bufCell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 1)
	c.Stages = []Stage{invStage(0, 1), invStage(1, drive)}
	return c.finish()
}

func nandCell(name string, k int, drive float64) *Cell {
	c := newCell(name, "comb", k)
	ins := make([]int, k)
	for i := range ins {
		ins[i] = i
	}
	c.Stages = []Stage{nandStage(ins, drive)}
	return c.finish()
}

func norCell(name string, k int, drive float64) *Cell {
	c := newCell(name, "comb", k)
	ins := make([]int, k)
	for i := range ins {
		ins[i] = i
	}
	c.Stages = []Stage{norStage(ins, drive)}
	return c.finish()
}

func andCell(name string, k int, drive float64) *Cell {
	c := newCell(name, "comb", k)
	ins := make([]int, k)
	for i := range ins {
		ins[i] = i
	}
	c.Stages = []Stage{nandStage(ins, 1), invStage(k, drive)}
	return c.finish()
}

func orCell(name string, k int, drive float64) *Cell {
	c := newCell(name, "comb", k)
	ins := make([]int, k)
	for i := range ins {
		ins[i] = i
	}
	c.Stages = []Stage{norStage(ins, 1), invStage(k, drive)}
	return c.finish()
}

func xorCell(name string, drive float64, xnor bool) *Cell {
	c := newCell(name, "comb", 2)
	// signals: a=0 b=1 na=2 nb=3 out=4
	st := xorStage(0, 2, 1, 3, drive)
	if xnor {
		st = xnorStage(0, 2, 1, 3, drive)
	}
	c.Stages = []Stage{invStage(0, 1), invStage(1, 1), st}
	return c.finish()
}

func mux2Cell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 3)
	// inputs d0=0 d1=1 s=2; signals: ns=3, muxb=4, out=5
	c.Stages = []Stage{
		invStage(2, 1),
		mux2InvStage(0, 1, 2, 3, drive),
		invStage(4, drive),
	}
	return c.finish()
}

func haCell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 2)
	// a=0 b=1; na=2 nb=3 sum=4 cb=5 co=6
	c.Stages = []Stage{
		invStage(0, 1), invStage(1, 1),
		xorStage(0, 2, 1, 3, drive),
		nandStage([]int{0, 1}, 1),
		invStage(5, drive),
	}
	return c.finish()
}

func faCell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 3)
	// a=0 b=1 ci=2; cob=3 co=4 sb=5 s=6
	c.Stages = []Stage{
		majInvStage(0, 1, 2, drive),
		invStage(3, drive),
		sumInvStage(0, 1, 2, 3, drive),
		invStage(5, drive),
	}
	return c.finish()
}

func aoiCell(name string, st Stage, numInputs int) *Cell {
	c := newCell(name, "comb", numInputs)
	c.Stages = []Stage{st}
	return c.finish()
}

func nand2bCell(name string, drive float64) *Cell {
	// out = !(!a · b): inverted-input NAND.
	c := newCell(name, "comb", 2)
	c.Stages = []Stage{invStage(0, 1), nandStage([]int{2, 1}, drive)}
	return c.finish()
}

func nor2bCell(name string, drive float64) *Cell {
	// out = !(!a + b): inverted-input NOR.
	c := newCell(name, "comb", 2)
	c.Stages = []Stage{invStage(0, 1), norStage([]int{2, 1}, drive)}
	return c.finish()
}

func ao21Cell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 3)
	c.Stages = []Stage{aoi21Stage(0, 1, 2, 1), invStage(3, drive)}
	return c.finish()
}

func oa21Cell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 3)
	c.Stages = []Stage{oai21Stage(0, 1, 2, 1), invStage(3, drive)}
	return c.finish()
}

func maj3Cell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 3)
	c.Stages = []Stage{majInvStage(0, 1, 2, 1), invStage(3, drive)}
	return c.finish()
}

func xor3Cell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 3)
	// a=0 b=1 c=2; na=3 nb=4 t=5(a⊕b) nt=6 nc=7 out=8(t⊕c)
	c.Stages = []Stage{
		invStage(0, 1), invStage(1, 1),
		xorStage(0, 3, 1, 4, 1),
		invStage(5, 1), invStage(2, 1),
		xorStage(5, 6, 2, 7, drive),
	}
	return c.finish()
}

// tbufCell models a tristate buffer: inputs A(0), EN(1). The output driver
// devices are extras biased against a bus node assumed held at the last
// driven value — taken as A when enabled and at Vdd when tristated (a
// conservative, fixed assumption for characterization).
func tbufCell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 2)
	// signals: a=0 en=1 enb=2 n1=3 n2=4
	c.Stages = []Stage{
		invStage(1, 1),
		nandStage([]int{0, 1}, 1),
		norStage([]int{0, 2}, 1),
	}
	out := func(v []float64) float64 {
		if v[1] > vdd/2 { // enabled: bus follows A
			return v[0]
		}
		return vdd // tristated: bus held high
	}
	c.Extras = []circuit.BiasedDevice{
		{Dev: pmos(baseWP * drive), Gate: circuit.Sig(3), Source: circuit.Rail(vdd), Drain: out},
		{Dev: nmos(baseWN * drive), Gate: circuit.Sig(4), Source: circuit.Rail(0), Drain: out},
	}
	return c.finish()
}

// tinvCell models a tristate inverter: inputs A(0), EN(1). The stacked
// output stage is a true series stage; when tristated the output is taken
// to sit at !A (the value the bus last held), so the stage logic remains
// consistent in every state.
func tinvCell(name string, drive float64) *Cell {
	c := newCell(name, "comb", 2)
	// signals: a=0 en=1 enb=2 out=3
	c.Stages = []Stage{
		invStage(1, 1),
		{
			PUN:   circuit.Series(pDev(2, drive, 2), pDev(0, drive, 2)),
			PDN:   circuit.Series(nDev(0, drive, 2), nDev(1, drive, 2)),
			Logic: func(sig []bool) bool { return !sig[0] },
		},
	}
	return c.finish()
}

// dlatchCell models a transparent-high D latch built from an input
// transmission gate, a storage inverter pair, a feedback transmission gate
// and an output inverter. Inputs: D(0), EN(1), and the stored pseudo-state
// S(2) that the storage node holds while the latch is opaque.
func dlatchCell(name string, drive float64) *Cell {
	c := newCell(name, "seq", 3)
	// signals: D=0 EN=1 S=2 | enb=3(stage) | l_in=4 lq=5 lfb=6 q=7 (derived)
	c.Stages = []Stage{
		invStage(1, 1), // enb, real inverter
		derived(func(sig []bool) bool { // l_in: storage node
			if sig[1] {
				return sig[0]
			}
			return sig[2]
		}),
		derived(func(sig []bool) bool { return !sig[4] }), // lq
		derived(func(sig []bool) bool { return sig[4] }),  // lfb = !lq
		derived(func(sig []bool) bool { return !sig[5] }), // q = !lq
	}
	var ex []circuit.BiasedDevice
	ex = tgExtras(ex, 0, 4, 1, 3) // input TG: on when EN=1
	ex = invExtras(ex, 4, 5)      // storage inverter
	ex = invExtras(ex, 5, 6)      // feedback inverter
	ex = tgExtras(ex, 6, 4, 3, 1) // feedback TG: on when EN=0
	ex = invExtras(ex, 5, 7)      // output inverter
	c.Extras = ex
	_ = drive
	return c.finish()
}

// dffCell models a positive-edge master-slave D flip-flop built from two
// transmission-gate latches and a local clock buffer. Inputs: D(0), CLK(1),
// and two pseudo-states: M(2), the master storage-node value that holds
// while CLK=1, and S(3), the slave storage-node value that holds while
// CLK=0. 22 transistors.
func dffCell(name string, drive float64) *Cell {
	c := newCell(name, "seq", 4)
	// signals: D=0 CLK=1 M=2 S=3 | clkb=4 clki=5 (stages, real clock buffer)
	// derived: m_in=6 mq=7 mfb=8 s_in=9 sq=10 sfb=11 q=12
	c.Stages = []Stage{
		invStage(1, 1), // clkb
		invStage(4, 1), // clki
		derived(func(sig []bool) bool { // m_in: master node
			if sig[1] {
				return sig[2]
			}
			return sig[0]
		}),
		derived(func(sig []bool) bool { return !sig[6] }), // mq
		derived(func(sig []bool) bool { return sig[6] }),  // mfb
		derived(func(sig []bool) bool { // s_in: slave node
			if sig[1] {
				return sig[7] // transparent: follows mq
			}
			return sig[3] // opaque: holds S
		}),
		derived(func(sig []bool) bool { return !sig[9] }),  // sq
		derived(func(sig []bool) bool { return sig[9] }),   // sfb
		derived(func(sig []bool) bool { return !sig[10] }), // q (output buffer)
	}
	var ex []circuit.BiasedDevice
	ex = tgExtras(ex, 0, 6, 4, 5)  // master input TG: on when CLK=0
	ex = invExtras(ex, 6, 7)       // master inverter
	ex = invExtras(ex, 7, 8)       // master feedback inverter
	ex = tgExtras(ex, 8, 6, 5, 4)  // master feedback TG: on when CLK=1
	ex = tgExtras(ex, 7, 9, 5, 4)  // slave input TG: on when CLK=1
	ex = invExtras(ex, 9, 10)      // slave inverter
	ex = invExtras(ex, 10, 11)     // slave feedback inverter
	ex = tgExtras(ex, 11, 9, 4, 5) // slave feedback TG: on when CLK=0
	ex = invExtras(ex, 10, 12)     // output inverter
	c.Extras = ex
	_ = drive
	return c.finish()
}

// dffrCell is the DFF with an active-low asynchronous reset: the master and
// slave inverters become NAND2 gates with the reset. Inputs: D(0), CLK(1),
// RB(2, reset-bar), M(3), S(4).
func dffrCell(name string) *Cell {
	c := newCell(name, "seq", 5)
	// signals: D=0 CLK=1 RB=2 M=3 S=4 | clkb=5 clki=6 (stages)
	// m_in=7 (derived) mqNAND=8 (stage) mfb=9 (derived)
	// s_in=10 (derived) sqNAND=11 (stage) sfb=12 q=13 (derived)
	c.Stages = []Stage{
		invStage(1, 1), // 5: clkb
		invStage(5, 1), // 6: clki
		derived(func(sig []bool) bool { // 7: m_in
			if !sig[2] {
				return false // reset forces the master node low
			}
			if sig[1] {
				return sig[3]
			}
			return sig[0]
		}),
		nandStage([]int{7, 2}, 1),                         // 8: mq = !(m_in·RB)
		derived(func(sig []bool) bool { return !sig[8] }), // 9: mfb
		derived(func(sig []bool) bool { // 10: s_in
			if !sig[2] {
				return false
			}
			if sig[1] {
				return !sig[8] // transparent: follows !mq = m_in
			}
			return sig[4]
		}),
		nandStage([]int{10, 2}, 1),                         // 11: sq = !(s_in·RB)
		derived(func(sig []bool) bool { return !sig[11] }), // 12: sfb
		derived(func(sig []bool) bool { return !sig[11] }), // 13: q
	}
	var ex []circuit.BiasedDevice
	ex = tgExtras(ex, 0, 7, 5, 6)   // master input TG (CLK=0)
	ex = tgExtras(ex, 9, 7, 6, 5)   // master feedback TG (CLK=1)
	ex = tgExtras(ex, 12, 10, 5, 6) // slave feedback TG (CLK=0)
	ex = invExtras(ex, 11, 13)      // output inverter
	c.Extras = ex
	return c.finish()
}

// dffsCell is the DFF with an active-low asynchronous set (dual of DFFR).
// Inputs: D(0), CLK(1), SB(2, set-bar), M(3), S(4).
func dffsCell(name string) *Cell {
	c := newCell(name, "seq", 5)
	// Set is realized with NOR gates on the inverted set line.
	// signals: D=0 CLK=1 SB=2 M=3 S=4 | clkb=5 clki=6 m_in=7 set=8(stage)
	// mq=9(stage NOR) s_in=10 sq=11(stage NOR) q=12
	c.Stages = []Stage{
		invStage(1, 1), // 5: clkb
		invStage(5, 1), // 6: clki
		derived(func(sig []bool) bool { // 7: m_in
			if !sig[2] {
				return true
			}
			if sig[1] {
				return sig[3]
			}
			return sig[0]
		}),
		invStage(2, 1),           // 8: set = !SB
		norStage([]int{7, 8}, 1), // 9: mq = !(m_in + set)
		derived(func(sig []bool) bool { // 10: s_in
			if !sig[2] {
				return true
			}
			if sig[1] {
				return !sig[9]
			}
			return sig[4]
		}),
		norStage([]int{10, 8}, 1),                          // 11: sq
		derived(func(sig []bool) bool { return !sig[11] }), // 12: q
	}
	var ex []circuit.BiasedDevice
	ex = tgExtras(ex, 0, 7, 5, 6)
	ex = tgExtras(ex, 9, 7, 6, 5) // feedback uses mq's complement path
	ex = invExtras(ex, 11, 12)
	c.Extras = ex
	return c.finish()
}

// sdffCell is a scan D flip-flop: a scan multiplexer in front of the DFF
// core. Inputs: D(0), SI(1), SE(2), CLK(3), M(4), S(5).
func sdffCell(name string) *Cell {
	c := newCell(name, "seq", 6)
	// signals: | seb=6 muxb=7 mux=8 clkb=9 clki=10 (stages)
	// m_in=11 mq=12 mfb=13 s_in=14 sq=15 sfb=16 q=17 (derived)
	c.Stages = []Stage{
		invStage(2, 1),              // 6: seb
		mux2InvStage(0, 1, 2, 6, 1), // 7: muxb = !(SI·SE + D·!SE)
		invStage(7, 1),              // 8: mux
		invStage(3, 1),              // 9: clkb
		invStage(9, 1),              // 10: clki
		derived(func(sig []bool) bool { // 11: m_in
			if sig[3] {
				return sig[4]
			}
			return sig[8]
		}),
		derived(func(sig []bool) bool { return !sig[11] }), // 12: mq
		derived(func(sig []bool) bool { return sig[11] }),  // 13: mfb
		derived(func(sig []bool) bool { // 14: s_in
			if sig[3] {
				return sig[12]
			}
			return sig[5]
		}),
		derived(func(sig []bool) bool { return !sig[14] }), // 15: sq
		derived(func(sig []bool) bool { return sig[14] }),  // 16: sfb
		derived(func(sig []bool) bool { return !sig[15] }), // 17: q
	}
	var ex []circuit.BiasedDevice
	ex = tgExtras(ex, 8, 11, 9, 10)  // master input TG (CLK=0)
	ex = invExtras(ex, 11, 12)       // master inverter
	ex = invExtras(ex, 12, 13)       // master feedback inverter
	ex = tgExtras(ex, 13, 11, 10, 9) // master feedback TG (CLK=1)
	ex = tgExtras(ex, 12, 14, 10, 9) // slave input TG (CLK=1)
	ex = invExtras(ex, 14, 15)       // slave inverter
	ex = invExtras(ex, 15, 16)       // slave feedback inverter
	ex = tgExtras(ex, 16, 14, 9, 10) // slave feedback TG (CLK=0)
	ex = invExtras(ex, 15, 17)       // output inverter
	c.Extras = ex
	return c.finish()
}

// sramCell is the 6-transistor SRAM bit cell in standby: wordline low,
// both bitlines precharged high, storing Q=1/QB=0. Three devices leak: the
// left pull-down (off with Vdd across it), the right pull-up, and the right
// access transistor (bitline-high against the low internal node). The cell
// has no inputs — a single characterization state.
func sramCell(name string) *Cell {
	c := newCell(name, "sram", 0)
	const (
		wnPD = 0.20 // pull-down width
		wpPU = 0.12 // pull-up width
		wnAX = 0.15 // access width
	)
	q, qb, bl, wl := circuit.Rail(vdd), circuit.Rail(0), circuit.Rail(vdd), circuit.Rail(0)
	c.Extras = []circuit.BiasedDevice{
		{Dev: pmos(wpPU), Gate: qb, Source: circuit.Rail(vdd), Drain: q}, // PU-L (on, Vds=0)
		{Dev: nmos(wnPD), Gate: qb, Source: circuit.Rail(0), Drain: q},   // PD-L (leaks)
		{Dev: pmos(wpPU), Gate: q, Source: circuit.Rail(vdd), Drain: qb}, // PU-R (leaks)
		{Dev: nmos(wnPD), Gate: q, Source: circuit.Rail(0), Drain: qb},   // PD-R (on, Vds=0)
		{Dev: nmos(wnAX), Gate: wl, Source: q, Drain: bl},                // AX-L (Vds=0)
		{Dev: nmos(wnAX), Gate: wl, Source: qb, Drain: bl},               // AX-R (leaks)
	}
	return c.finish()
}

// Library returns the full 62-cell library. Cells are rebuilt on every
// call; they are cheap to construct and callers (the characterization
// engine) cache the expensive derived data instead.
func Library() []*Cell {
	lib := []*Cell{
		invCell("INV_X1", 1), invCell("INV_X2", 2), invCell("INV_X4", 4),
		invCell("INV_X8", 8), invCell("INV_X16", 16),
		bufCell("BUF_X1", 1), bufCell("BUF_X2", 2), bufCell("BUF_X4", 4), bufCell("BUF_X8", 8),
		nandCell("NAND2_X1", 2, 1), nandCell("NAND2_X2", 2, 2), nandCell("NAND2_X4", 2, 4),
		nandCell("NAND3_X1", 3, 1), nandCell("NAND3_X2", 3, 2),
		nandCell("NAND4_X1", 4, 1),
		norCell("NOR2_X1", 2, 1), norCell("NOR2_X2", 2, 2), norCell("NOR2_X4", 2, 4),
		norCell("NOR3_X1", 3, 1), norCell("NOR3_X2", 3, 2),
		norCell("NOR4_X1", 4, 1),
		andCell("AND2_X1", 2, 1), andCell("AND2_X2", 2, 2), andCell("AND3_X1", 3, 1),
		andCell("AND4_X1", 4, 1),
		orCell("OR2_X1", 2, 1), orCell("OR2_X2", 2, 2), orCell("OR3_X1", 3, 1),
		orCell("OR4_X1", 4, 1),
		aoiCell("AOI21_X1", aoi21Stage(0, 1, 2, 1), 3),
		aoiCell("AOI21_X2", aoi21Stage(0, 1, 2, 2), 3),
		aoiCell("AOI22_X1", aoi22Stage(0, 1, 2, 3, 1), 4),
		aoiCell("AOI211_X1", aoi211Stage(0, 1, 2, 3, 1), 4),
		aoiCell("AOI221_X1", aoi221Stage(0, 1, 2, 3, 4, 1), 5),
		aoiCell("OAI21_X1", oai21Stage(0, 1, 2, 1), 3),
		aoiCell("OAI21_X2", oai21Stage(0, 1, 2, 2), 3),
		aoiCell("OAI22_X1", oai22Stage(0, 1, 2, 3, 1), 4),
		aoiCell("OAI211_X1", oai211Stage(0, 1, 2, 3, 1), 4),
		aoiCell("OAI221_X1", oai221Stage(0, 1, 2, 3, 4, 1), 5),
		xorCell("XOR2_X1", 1, false), xorCell("XOR2_X2", 2, false),
		xorCell("XNOR2_X1", 1, true),
		xor3Cell("XOR3_X1", 1),
		mux2Cell("MUX2_X1", 1), mux2Cell("MUX2_X2", 2),
		nand2bCell("NAND2B_X1", 1),
		nor2bCell("NOR2B_X1", 1),
		ao21Cell("AO21_X1", 1),
		oa21Cell("OA21_X1", 1),
		maj3Cell("MAJ3_X1", 1),
		haCell("HA_X1", 1),
		faCell("FA_X1", 1),
		tbufCell("TBUF_X1", 2),
		tinvCell("TINV_X1", 1),
		dlatchCell("DLATCH_X1", 1), dlatchCell("DLATCH_X2", 2),
		dffCell("DFF_X1", 1), dffCell("DFF_X2", 2),
		dffrCell("DFFR_X1"),
		dffsCell("DFFS_X1"),
		sdffCell("SDFF_X1"),
		sramCell("SRAM6T"),
	}
	sort.Slice(lib, func(i, j int) bool { return lib[i].Name < lib[j].Name })
	return lib
}

// CoreSubset returns a small, topology-diverse subset used by fast tests:
// an inverter, NAND/NOR stacks, a complex gate, an XOR, a flip-flop and the
// SRAM cell.
func CoreSubset() []*Cell {
	return []*Cell{
		invCell("INV_X1", 1),
		nandCell("NAND2_X1", 2, 1),
		nandCell("NAND3_X1", 3, 1),
		norCell("NOR2_X1", 2, 1),
		aoiCell("AOI21_X1", aoi21Stage(0, 1, 2, 1), 3),
		xorCell("XOR2_X1", 1, false),
		dffCell("DFF_X1", 1),
		sramCell("SRAM6T"),
	}
}

// ISCASSubset returns the cell types used by the synthetic ISCAS85
// benchmark suite — the working set of the Table 1 experiment.
func ISCASSubset() []*Cell {
	return []*Cell{
		invCell("INV_X1", 1),
		bufCell("BUF_X1", 1),
		nandCell("NAND2_X1", 2, 1),
		nandCell("NAND3_X1", 3, 1),
		norCell("NOR2_X1", 2, 1),
		andCell("AND2_X1", 2, 1),
		orCell("OR2_X1", 2, 1),
		xorCell("XOR2_X1", 1, false),
	}
}

// ByName indexes a cell list by name.
func ByName(lib []*Cell) map[string]*Cell {
	m := make(map[string]*Cell, len(lib))
	for _, c := range lib {
		if _, dup := m[c.Name]; dup {
			panic(fmt.Sprintf("cells: duplicate cell name %s", c.Name))
		}
		m[c.Name] = c
	}
	return m
}
