// Package parallel is the deterministic worker pool behind the pipeline's
// four long loops: chip-level Monte-Carlo trials (chipmc), per-(cell, state)
// characterization (charlib), the O(n²) pair-sum rows (core.TrueStats), and
// the linear estimator's distance-vector columns (core.EstimateLinear).
//
// The pool trades no reproducibility for speed. Its determinism contract:
//
//   - Tasks are independent: fn(i) may read shared immutable state and must
//     write only to slots owned by index i (totals[i], rowSums[i], …).
//   - Any randomness inside a task comes from a PRNG stream derived from
//     (seed, i), never from a stream shared across tasks.
//   - Callers merge per-index partial results in fixed index order on the
//     coordinating goroutine after ForEach returns.
//
// Under that contract the result is bitwise identical at every worker
// count, including the serial Workers = 1 path, because no floating-point
// reduction ever crosses racing goroutines.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// Resolve maps a Workers configuration value to the effective pool size for
// n tasks: zero or negative selects runtime.GOMAXPROCS(0), and the result
// never exceeds n (more than one goroutine per task cannot help).
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(worker, i) for every index i in [0, n) on up to workers
// goroutines (after Resolve). worker ∈ [0, workers) identifies the executing
// slot so tasks can reuse per-worker scratch buffers.
//
// Cancellation and failure semantics match the serial loops the pool
// replaced: ctx is checked before every task (a cancel or deadline stops the
// fan-out within one task's work and returns the typed Canceled /
// DeadlineExceeded error for op), the first failure stops further task
// claims, and ForEach returns only after every worker has exited — no
// goroutine outlives the call. Indices are claimed in increasing order and a
// claimed task always runs to completion, so when several tasks fail the
// error of the lowest failing index is reported. A panic inside a task is
// re-raised on the calling goroutine, preserving the public entry points'
// RecoverInto classification.
//
// workers == 1 runs inline on the calling goroutine — exactly the serial
// loop, with the same per-iteration cancellation checkpoint.
//
// When ctx carries a telemetry trace, each worker goroutine is recorded as
// one "<op>.shard" child span of the context's current span. Workers only
// write their own shard slot; the spans are merged into the trace after the
// join, in worker-index order, so the trace structure is deterministic at
// any worker count (shard spans never enter the flat Stages breakdown —
// Result.Timings stays independent of the pool size). Without a trace the
// path allocates nothing.
func ForEach(ctx context.Context, op string, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers, n)
	tr, parent := telemetry.SpanContext(ctx)
	var shards []shardStat
	if tr != nil {
		shards = make([]shardStat, workers)
	}
	if workers == 1 {
		if shards != nil {
			shards[0].start = time.Now()
		}
		for i := 0; i < n; i++ {
			if err := lkerr.FromContext(ctx, op); err != nil {
				mergeShards(tr, parent, op, shards)
				return err
			}
			if err := fn(0, i); err != nil {
				mergeShards(tr, parent, op, shards)
				return err
			}
			if shards != nil {
				shards[0].tasks++
			}
		}
		mergeShards(tr, parent, op, shards)
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool

		mu       sync.Mutex
		errIdx   = n
		firstErr error
		panIdx   = n
		firstPan any
	)
	fail := func(i int, err error, pan any) {
		mu.Lock()
		if pan != nil {
			if i < panIdx {
				panIdx, firstPan = i, pan
			}
		} else if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	runTask := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(i, nil, r)
			}
		}()
		if err := fn(w, i); err != nil {
			fail(i, err, nil)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			if shards != nil {
				// Worker w owns slot w exclusively; the coordinating
				// goroutine reads it only after wg.Wait.
				shards[w].start = time.Now()
				defer func() { shards[w].end = time.Now() }()
			}
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := lkerr.FromContext(ctx, op); err != nil {
					fail(i, err, nil)
					return
				}
				runTask(w, i)
				if shards != nil {
					shards[w].tasks++
				}
			}
		}(w)
	}
	wg.Wait()
	mergeShards(tr, parent, op, shards)

	if firstPan != nil && panIdx <= errIdx {
		panic(firstPan)
	}
	return firstErr
}

// shardStat is one worker goroutine's lifetime and task count; each worker
// writes only its own slot, read by the coordinator after the join.
type shardStat struct {
	start time.Time
	end   time.Time
	tasks int
}

// mergeShards folds the per-worker shard stats into the trace as
// "<op>.shard" child spans, in worker-index order — the deterministic merge
// the pool's determinism contract extends to tracing. No-op without a
// trace.
func mergeShards(tr *telemetry.Trace, parent int, op string, shards []shardStat) {
	if tr == nil || shards == nil {
		return
	}
	for w := range shards {
		s := shards[w]
		if s.start.IsZero() {
			continue
		}
		end := s.end
		if end.IsZero() {
			end = time.Now()
		}
		tr.AddSpanAt(parent, op+".shard", s.start, end.Sub(s.start),
			telemetry.Attr{Key: "worker", Value: w},
			telemetry.Attr{Key: "tasks", Value: s.tasks})
	}
}

// Ticker serializes per-task progress ticks from pool workers onto one
// telemetry.Reporter (which is single-goroutine by contract). It counts
// completed tasks, so ticks are monotone regardless of completion order.
//
// A nil Ticker is valid and inert; NewTicker returns nil when no
// ProgressFunc is attached, keeping the disabled path free of the mutex.
type Ticker struct {
	mu   sync.Mutex
	rep  *telemetry.Reporter
	done int64
}

// NewTicker wraps rep for concurrent ticking, or returns nil when rep is
// nil (no progress consumer on the context).
func NewTicker(rep *telemetry.Reporter) *Ticker {
	if rep == nil {
		return nil
	}
	return &Ticker{rep: rep}
}

// Tick records one completed task and forwards the running count to the
// reporter under its rate limit.
func (t *Ticker) Tick() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done++
	t.rep.Tick(t.done)
	t.mu.Unlock()
}

// Count returns how many tasks have completed so far — the Done value for a
// final progress report when a fan-out stops early.
func (t *Ticker) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}
