// Package parallel is the deterministic worker pool behind the pipeline's
// four long loops: chip-level Monte-Carlo trials (chipmc), per-(cell, state)
// characterization (charlib), the O(n²) pair-sum rows (core.TrueStats), and
// the linear estimator's distance-vector columns (core.EstimateLinear).
//
// The pool trades no reproducibility for speed. Its determinism contract:
//
//   - Tasks are independent: fn(i) may read shared immutable state and must
//     write only to slots owned by index i (totals[i], rowSums[i], …).
//   - Any randomness inside a task comes from a PRNG stream derived from
//     (seed, i), never from a stream shared across tasks.
//   - Callers merge per-index partial results in fixed index order on the
//     coordinating goroutine after ForEach returns.
//
// Under that contract the result is bitwise identical at every worker
// count, including the serial Workers = 1 path, because no floating-point
// reduction ever crosses racing goroutines.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// Resolve maps a Workers configuration value to the effective pool size for
// n tasks: zero or negative selects runtime.GOMAXPROCS(0), and the result
// never exceeds n (more than one goroutine per task cannot help).
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(worker, i) for every index i in [0, n) on up to workers
// goroutines (after Resolve). worker ∈ [0, workers) identifies the executing
// slot so tasks can reuse per-worker scratch buffers.
//
// Cancellation and failure semantics match the serial loops the pool
// replaced: ctx is checked before every task (a cancel or deadline stops the
// fan-out within one task's work and returns the typed Canceled /
// DeadlineExceeded error for op), the first failure stops further task
// claims, and ForEach returns only after every worker has exited — no
// goroutine outlives the call. Indices are claimed in increasing order and a
// claimed task always runs to completion, so when several tasks fail the
// error of the lowest failing index is reported. A panic inside a task is
// re-raised on the calling goroutine, preserving the public entry points'
// RecoverInto classification.
//
// workers == 1 runs inline on the calling goroutine — exactly the serial
// loop, with the same per-iteration cancellation checkpoint.
func ForEach(ctx context.Context, op string, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := lkerr.FromContext(ctx, op); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool

		mu       sync.Mutex
		errIdx   = n
		firstErr error
		panIdx   = n
		firstPan any
	)
	fail := func(i int, err error, pan any) {
		mu.Lock()
		if pan != nil {
			if i < panIdx {
				panIdx, firstPan = i, pan
			}
		} else if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	runTask := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(i, nil, r)
			}
		}()
		if err := fn(w, i); err != nil {
			fail(i, err, nil)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := lkerr.FromContext(ctx, op); err != nil {
					fail(i, err, nil)
					return
				}
				runTask(w, i)
			}
		}(w)
	}
	wg.Wait()

	if firstPan != nil && panIdx <= errIdx {
		panic(firstPan)
	}
	return firstErr
}

// Ticker serializes per-task progress ticks from pool workers onto one
// telemetry.Reporter (which is single-goroutine by contract). It counts
// completed tasks, so ticks are monotone regardless of completion order.
//
// A nil Ticker is valid and inert; NewTicker returns nil when no
// ProgressFunc is attached, keeping the disabled path free of the mutex.
type Ticker struct {
	mu   sync.Mutex
	rep  *telemetry.Reporter
	done int64
}

// NewTicker wraps rep for concurrent ticking, or returns nil when rep is
// nil (no progress consumer on the context).
func NewTicker(rep *telemetry.Reporter) *Ticker {
	if rep == nil {
		return nil
	}
	return &Ticker{rep: rep}
}

// Tick records one completed task and forwards the running count to the
// reporter under its rate limit.
func (t *Ticker) Tick() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done++
	t.rep.Tick(t.done)
	t.mu.Unlock()
}

// Count returns how many tasks have completed so far — the Done value for a
// final progress report when a fan-out stops early.
func (t *Ticker) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}
