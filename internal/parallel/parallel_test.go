package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"leakest/internal/lkerr"
)

func TestResolve(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, cores},  // default: all cores
		{-3, 100, cores}, // negative behaves like default
		{1, 100, 1},      // explicit serial
		{7, 3, 3},        // clamped to the task count
		{7, 0, 7},        // n unknown: keep the request
		{2, 100, 2},
	}
	for _, c := range cases {
		if c.want > c.n && c.n > 0 {
			c.want = c.n
		}
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	if got := Resolve(0, 1); got != 1 {
		t.Errorf("Resolve(0, 1) = %d, want 1", got)
	}
}

// Every index must run exactly once, at any worker count.
func TestForEachCoverage(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 7, 16} {
		hits := make([]atomic.Int64, n)
		err := ForEach(context.Background(), "test", workers, n, func(_, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), "test", 4, 0, func(_, _ int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Errorf("err = %v, called = %v; want nil, false", err, called)
	}
}

// When several tasks fail, the error of the lowest failing index must win —
// that is what the serial loop would have returned first.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), "test", workers, 64, func(_, i int) error {
			if i%3 == 1 { // indices 1, 4, 7, ...
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 1 failed" {
			t.Errorf("workers=%d: err = %v, want the index-1 failure", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), "test", 2, 10_000, func(_, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Errorf("all %d tasks ran despite an early failure", n)
	}
}

// A panic inside a task must resurface on the calling goroutine so the
// public entry points' RecoverInto still classifies it.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Errorf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			_ = ForEach(context.Background(), "test", workers, 32, func(_, i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEach(ctx, "test.op", workers, 10_000, func(_, i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, lkerr.ErrCanceled) {
			t.Errorf("workers=%d: err = %v, want typed Canceled", workers, err)
		}
		if n := ran.Load(); n == 10_000 {
			t.Errorf("workers=%d: all tasks ran despite the cancel", workers)
		}
	}
}

// ForEach must not leave goroutines behind, even when it stops early.
func TestForEachNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = ForEach(ctx, "test", 8, 1000, func(_, i int) error {
			if i == 3 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	// Let exiting workers finish their final instructions.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines settled at %d, started with %d", runtime.NumGoroutine(), before)
}

func TestTickerNilSafe(t *testing.T) {
	var tk *Ticker
	tk.Tick() // must not panic
	if tk.Count() != 0 {
		t.Errorf("nil Ticker count = %d", tk.Count())
	}
	if NewTicker(nil) != nil {
		t.Errorf("NewTicker(nil) should be nil")
	}
}
