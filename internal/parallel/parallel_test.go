package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

func TestResolve(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, cores},  // default: all cores
		{-3, 100, cores}, // negative behaves like default
		{1, 100, 1},      // explicit serial
		{7, 3, 3},        // clamped to the task count
		{7, 0, 7},        // n unknown: keep the request
		{2, 100, 2},
	}
	for _, c := range cases {
		if c.want > c.n && c.n > 0 {
			c.want = c.n
		}
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	if got := Resolve(0, 1); got != 1 {
		t.Errorf("Resolve(0, 1) = %d, want 1", got)
	}
}

// Every index must run exactly once, at any worker count.
func TestForEachCoverage(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 7, 16} {
		hits := make([]atomic.Int64, n)
		err := ForEach(context.Background(), "test", workers, n, func(_, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), "test", 4, 0, func(_, _ int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Errorf("err = %v, called = %v; want nil, false", err, called)
	}
}

// When several tasks fail, the error of the lowest failing index must win —
// that is what the serial loop would have returned first.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), "test", workers, 64, func(_, i int) error {
			if i%3 == 1 { // indices 1, 4, 7, ...
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 1 failed" {
			t.Errorf("workers=%d: err = %v, want the index-1 failure", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), "test", 2, 10_000, func(_, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Errorf("all %d tasks ran despite an early failure", n)
	}
}

// A panic inside a task must resurface on the calling goroutine so the
// public entry points' RecoverInto still classifies it.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Errorf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			_ = ForEach(context.Background(), "test", workers, 32, func(_, i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEach(ctx, "test.op", workers, 10_000, func(_, i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, lkerr.ErrCanceled) {
			t.Errorf("workers=%d: err = %v, want typed Canceled", workers, err)
		}
		if n := ran.Load(); n == 10_000 {
			t.Errorf("workers=%d: all tasks ran despite the cancel", workers)
		}
	}
}

// ForEach must not leave goroutines behind, even when it stops early.
func TestForEachNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = ForEach(ctx, "test", 8, 1000, func(_, i int) error {
			if i == 3 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	// Let exiting workers finish their final instructions.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines settled at %d, started with %d", runtime.NumGoroutine(), before)
}

// shardSpans returns the "<op>.shard" spans of tr's snapshot, in recorded
// order.
func shardSpans(t *testing.T, tr *telemetry.Trace, op string) []telemetry.SpanSnapshot {
	t.Helper()
	var out []telemetry.SpanSnapshot
	for _, sp := range tr.Snapshot().Spans {
		if sp.Stage == op+".shard" {
			out = append(out, sp)
		}
	}
	return out
}

func TestForEachShardSpansDeterministicStructure(t *testing.T) {
	// The tracing extension of the pool's determinism contract: the merged
	// shard spans have identical structure at every worker count and across
	// repeated runs — names, parent, one span per started worker, worker
	// attrs in index order. Only timings may differ.
	const n = 23
	for _, workers := range []int{1, 2, 4, 8} {
		for run := 0; run < 3; run++ {
			tr := telemetry.NewTrace()
			ctx := telemetry.WithTrace(context.Background(), tr)
			ctx, end := telemetry.WithSpan(ctx, "mc")
			err := ForEach(ctx, "chipmc", workers, n, func(w, i int) error { return nil })
			end()
			if err != nil {
				t.Fatal(err)
			}
			spans := shardSpans(t, tr, "chipmc")
			want := Resolve(workers, n)
			if len(spans) != want {
				t.Fatalf("workers=%d run=%d: %d shard spans, want %d", workers, run, len(spans), want)
			}
			snap := tr.Snapshot()
			var parentID int
			for _, sp := range snap.Spans {
				if sp.Stage == "mc" {
					parentID = sp.ID
				}
			}
			tasks := 0
			for w, sp := range spans {
				if sp.Parent != parentID {
					t.Errorf("workers=%d: shard %d parent = %d, want %d", workers, w, sp.Parent, parentID)
				}
				if len(sp.Attrs) != 2 || sp.Attrs[0].Key != "worker" || sp.Attrs[0].Value != w {
					t.Errorf("workers=%d: shard %d attrs = %+v, want worker=%d first", workers, w, sp.Attrs, w)
				}
				if sp.Attrs[1].Key != "tasks" {
					t.Errorf("workers=%d: shard %d second attr = %+v, want tasks", workers, w, sp.Attrs[1])
				}
				tasks += sp.Attrs[1].Value.(int)
			}
			if tasks != n {
				t.Errorf("workers=%d run=%d: shard task counts sum to %d, want %d", workers, run, tasks, n)
			}
		}
	}
}

func TestForEachShardSpansSkipFlatStages(t *testing.T) {
	// Result.Timings is built from the trace's flat stage list; shard spans
	// must never land there or timings would vary with the worker count.
	tr := telemetry.NewTrace()
	ctx := telemetry.WithTrace(context.Background(), tr)
	if err := ForEach(ctx, "op", 4, 16, func(w, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if stages := tr.Stages(); len(stages) != 0 {
		t.Errorf("shard spans leaked into Stages: %+v", stages)
	}
}

func TestForEachShardSpansMergedOnError(t *testing.T) {
	tr := telemetry.NewTrace()
	ctx := telemetry.WithTrace(context.Background(), tr)
	boom := errors.New("boom")
	err := ForEach(ctx, "op", 4, 16, func(w, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(shardSpans(t, tr, "op")) == 0 {
		t.Errorf("no shard spans merged on the error path")
	}
}

func TestForEachNoTraceNoSpans(t *testing.T) {
	// Without a trace the pool must not record anything (and, per the
	// zero-overhead contract, not allocate shard stats at all).
	if err := ForEach(context.Background(), "op", 4, 16, func(w, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestTickerNilSafe(t *testing.T) {
	var tk *Ticker
	tk.Tick() // must not panic
	if tk.Count() != 0 {
		t.Errorf("nil Ticker count = %d", tk.Count())
	}
	if NewTicker(nil) != nil {
		t.Errorf("NewTicker(nil) should be nil")
	}
}
