package iscas

import (
	"testing"

	"leakest/internal/cells"
	"leakest/internal/stats"
)

func arity(t *testing.T) func(string) (int, error) {
	t.Helper()
	byName := cells.ByName(cells.Library())
	return func(typ string) (int, error) {
		return byName[typ].NumInputs, nil
	}
}

func TestSpecsMatchPublishedCounts(t *testing.T) {
	want := map[string]int{
		"c432": 160, "c499": 202, "c880": 383, "c1355": 546, "c1908": 880,
		"c2670": 1193, "c3540": 1669, "c5315": 2307, "c6288": 2416, "c7552": 3512,
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		if want[s.Name] != s.Gates {
			t.Errorf("%s: %d gates, want %d", s.Name, s.Gates, want[s.Name])
		}
		if s.PIs <= 0 || len(s.Mix) == 0 {
			t.Errorf("%s: incomplete spec", s.Name)
		}
	}
}

func TestTable1NamesAreNine(t *testing.T) {
	names := Table1Names()
	if len(names) != 9 {
		t.Fatalf("Table 1 has %d circuits, want 9", len(names))
	}
	specs := map[string]bool{}
	for _, s := range Specs() {
		specs[s.Name] = true
	}
	for _, n := range names {
		if !specs[n] {
			t.Errorf("Table 1 circuit %s has no spec", n)
		}
	}
	// c3540 is deliberately not in the paper's table.
	for _, n := range names {
		if n == "c3540" {
			t.Errorf("c3540 should not be in Table 1")
		}
	}
}

func TestBuildDeterministicAndValid(t *testing.T) {
	a, err := Build("c432", 7, arity(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Netlist.Validate(); err != nil {
		t.Fatalf("c432 invalid: %v", err)
	}
	if len(a.Netlist.Gates) != 160 {
		t.Errorf("c432 gate count %d", len(a.Netlist.Gates))
	}
	if len(a.Placement.Site) != 160 {
		t.Errorf("placement covers %d gates", len(a.Placement.Site))
	}
	b, err := Build("c432", 7, arity(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Netlist.Gates {
		if a.Netlist.Gates[i].Type != b.Netlist.Gates[i].Type {
			t.Fatalf("gate %d type differs between identical builds", i)
		}
	}
	for i := range a.Placement.Site {
		if a.Placement.Site[i] != b.Placement.Site[i] {
			t.Fatalf("placement differs between identical builds")
		}
	}
	// Different seed ⇒ different circuit.
	c, _ := Build("c432", 8, arity(t))
	same := true
	for i := range a.Placement.Site {
		if a.Placement.Site[i] != c.Placement.Site[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("seeds 7 and 8 produced identical placements")
	}
}

func TestBuildHistogramsMatchMix(t *testing.T) {
	for _, name := range []string{"c6288", "c499", "c7552"} {
		ckt, err := Build(name, 11, arity(t))
		if err != nil {
			t.Fatal(err)
		}
		target, _ := stats.NewHistogram(ckt.Spec.Mix)
		got, err := ckt.Netlist.Histogram()
		if err != nil {
			t.Fatal(err)
		}
		if d := stats.TotalVariationDistance(target, got); d > 0.06 {
			t.Errorf("%s: realized mix TV distance %g from spec", name, d)
		}
	}
	// c6288 must be NOR-dominated (it is a multiplier array).
	ckt, _ := Build("c6288", 11, arity(t))
	h, _ := ckt.Netlist.Histogram()
	if h.Prob("NOR2_X1") < 0.7 {
		t.Errorf("c6288 NOR fraction = %g, want > 0.7", h.Prob("NOR2_X1"))
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("c9999", 1, arity(t)); err == nil {
		t.Errorf("unknown circuit accepted")
	}
}

func TestNamesSortedBySize(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("Names() = %d entries", len(names))
	}
	if names[0] != "c432" || names[len(names)-1] != "c7552" {
		t.Errorf("size ordering wrong: first %s last %s", names[0], names[len(names)-1])
	}
}
