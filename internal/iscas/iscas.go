// Package iscas provides a synthetic stand-in for the ISCAS85 benchmark
// suite used in Table 1 of the paper. The original netlists are published,
// but the paper's placed-and-routed versions came from a commercial flow;
// we generate, deterministically per circuit, a netlist with the published
// gate count and a cell mix appropriate to the circuit's function (the
// c6288 multiplier is NOR-dominated, the c499/c1355 ECC circuits are
// XOR/NAND-heavy, the ALUs are mixed), then place it on the uniform site
// grid. The Table 1 experiment depends only on the (histogram, n, W, H)
// characteristics versus the realized placement — which this construction
// preserves (see DESIGN.md, Substitutions).
package iscas

import (
	"fmt"
	"sort"

	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

// Spec describes one synthetic benchmark circuit.
type Spec struct {
	Name  string
	Gates int // published ISCAS85 gate count
	PIs   int // published primary-input count
	// Mix is the target cell-usage weighting by library cell name.
	Mix map[string]float64
}

// Specs returns the benchmark specifications in Table 1 order (plus c3540,
// which the paper's table omits). Gate and PI counts are the published
// ISCAS85 figures.
func Specs() []Spec {
	mixed := func(weights ...float64) map[string]float64 {
		names := []string{"NAND2_X1", "NAND3_X1", "NOR2_X1", "AND2_X1", "OR2_X1", "INV_X1", "BUF_X1", "XOR2_X1"}
		m := make(map[string]float64, len(names))
		for i, w := range weights {
			if w > 0 {
				m[names[i]] = w
			}
		}
		return m
	}
	return []Spec{
		{Name: "c432", Gates: 160, PIs: 36, Mix: map[string]float64{
			"NAND2_X1": 79, "NAND3_X1": 20, "NOR2_X1": 19, "XOR2_X1": 18, "INV_X1": 24}},
		{Name: "c499", Gates: 202, PIs: 41, Mix: map[string]float64{
			"XOR2_X1": 104, "AND2_X1": 56, "OR2_X1": 2, "INV_X1": 40}},
		{Name: "c880", Gates: 383, PIs: 60, Mix: mixed(87, 30, 61, 117, 29, 59, 0, 0)},
		{Name: "c1355", Gates: 546, PIs: 41, Mix: map[string]float64{
			"NAND2_X1": 416, "AND2_X1": 56, "OR2_X1": 2, "INV_X1": 72}},
		{Name: "c1908", Gates: 880, PIs: 33, Mix: map[string]float64{
			"NAND2_X1": 377, "NAND3_X1": 56, "AND2_X1": 63, "NOR2_X1": 1, "OR2_X1": 2,
			"INV_X1": 277, "BUF_X1": 104}},
		{Name: "c2670", Gates: 1193, PIs: 233, Mix: mixed(332, 77, 77, 333, 77, 321, 0, 0)},
		{Name: "c3540", Gates: 1669, PIs: 50, Mix: mixed(495, 100, 212, 297, 92, 473, 0, 0)},
		{Name: "c5315", Gates: 2307, PIs: 178, Mix: mixed(718, 67, 214, 454, 214, 581, 59, 0)},
		{Name: "c6288", Gates: 2416, PIs: 32, Mix: map[string]float64{
			"NOR2_X1": 2128, "AND2_X1": 256, "INV_X1": 32}},
		{Name: "c7552", Gates: 3512, PIs: 207, Mix: mixed(1028, 116, 314, 776, 244, 876, 158, 0)},
	}
}

// Table1Names returns the nine circuit names of the paper's Table 1 in its
// column order.
func Table1Names() []string {
	return []string{"c499", "c1355", "c432", "c1908", "c880", "c2670", "c5315", "c7552", "c6288"}
}

// Circuit is a synthesized and placed benchmark.
type Circuit struct {
	Spec      Spec
	Netlist   *netlist.Netlist
	Placement *placement.Placement
}

// Build synthesizes the named benchmark: a random DAG with the spec's exact
// cell mix proportions and gate count, placed randomly on an auto-sized
// square grid. The construction is deterministic for a given seed.
func Build(name string, seed int64, arity netlist.CellArity) (*Circuit, error) {
	var spec *Spec
	for _, s := range Specs() {
		if s.Name == name {
			sc := s
			spec = &sc
			break
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("iscas: unknown circuit %q", name)
	}
	hist, err := stats.NewHistogram(spec.Mix)
	if err != nil {
		return nil, fmt.Errorf("iscas: %s: %w", name, err)
	}
	rng := stats.NewRNG(seed, "iscas/"+name)
	nl, err := netlist.RandomCircuit(rng, name, spec.Gates, spec.PIs, hist, arity)
	if err != nil {
		return nil, fmt.Errorf("iscas: %s: %w", name, err)
	}
	grid, err := placement.AutoGrid(spec.Gates)
	if err != nil {
		return nil, err
	}
	pl, err := placement.Random(rng, grid, spec.Gates)
	if err != nil {
		return nil, err
	}
	return &Circuit{Spec: *spec, Netlist: nl, Placement: pl}, nil
}

// Names returns all available circuit names, sorted by gate count.
func Names() []string {
	specs := Specs()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Gates < specs[j].Gates })
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
