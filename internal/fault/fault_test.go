package fault

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	Reset()
	Hit("some/site") // must not panic
	if v := Corrupt("some/site", 42); v != 42 {
		t.Errorf("Corrupt changed an unarmed value: %g", v)
	}
	if Hits("some/site") != 0 {
		t.Errorf("unarmed site has hits")
	}
}

func TestNaNCorruption(t *testing.T) {
	defer Reset()
	Arm(SiteChipMCTrial, Action{Kind: NaN})
	if v := Corrupt(SiteChipMCTrial, 1.0); !math.IsNaN(v) {
		t.Errorf("armed NaN site returned %g", v)
	}
	// Other sites unaffected.
	if v := Corrupt(SiteTruthRow, 2.0); v != 2.0 {
		t.Errorf("unrelated site corrupted: %g", v)
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	Arm(SiteCholesky, Action{Kind: Panic})
	defer func() {
		if recover() == nil {
			t.Errorf("armed Panic site did not panic")
		}
	}()
	Hit(SiteCholesky)
}

func TestAfterDelaysFiring(t *testing.T) {
	defer Reset()
	Arm(SiteTruthRow, Action{Kind: NaN, After: 3})
	for i := 0; i < 3; i++ {
		if v := Corrupt(SiteTruthRow, 1); math.IsNaN(v) {
			t.Fatalf("fired on hit %d, want after 3", i+1)
		}
	}
	if v := Corrupt(SiteTruthRow, 1); !math.IsNaN(v) {
		t.Errorf("did not fire on hit 4")
	}
	if h := Hits(SiteTruthRow); h != 4 {
		t.Errorf("Hits = %d, want 4", h)
	}
}

func TestErrorKind(t *testing.T) {
	defer Reset()
	Arm(SiteFFTSetup, Action{Kind: Error})
	if err := Failure(SiteFFTSetup); err == nil {
		t.Errorf("armed Error site returned nil")
	}
	// Other sites and other kinds stay inert for Failure.
	if err := Failure(SiteCacheFill); err != nil {
		t.Errorf("unrelated site failed: %v", err)
	}
	Arm(SiteCacheFill, Action{Kind: NaN})
	if err := Failure(SiteCacheFill); err != nil {
		t.Errorf("NaN-armed site returned an error from Failure: %v", err)
	}
	Reset()
	if err := Failure(SiteFFTSetup); err != nil {
		t.Errorf("Failure after Reset: %v", err)
	}
}

func TestErrorKindHonorsAfter(t *testing.T) {
	defer Reset()
	Arm(SiteJobExec, Action{Kind: Error, After: 2})
	for i := 0; i < 2; i++ {
		if err := Failure(SiteJobExec); err != nil {
			t.Fatalf("fired on hit %d, want after 2", i+1)
		}
	}
	if err := Failure(SiteJobExec); err == nil {
		t.Errorf("did not fire on hit 3")
	}
}

func TestSleepKind(t *testing.T) {
	defer Reset()
	Arm(SiteCharState, Action{Kind: Sleep, Delay: 10 * time.Millisecond})
	start := time.Now()
	Hit(SiteCharState)
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("sleep fault too short: %v", d)
	}
}

func TestConcurrentHitsAreRaceFree(t *testing.T) {
	defer Reset()
	Arm(SiteChipMCTrial, Action{Kind: NaN, After: 1 << 30})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Hit(SiteChipMCTrial)
				Corrupt(SiteChipMCTrial, 1)
			}
		}()
	}
	wg.Wait()
	if h := Hits(SiteChipMCTrial); h != 16000 {
		t.Errorf("Hits = %d, want 16000", h)
	}
}
