// Package fault is a test-only fault-injection registry. Long-running
// kernels declare named injection sites; tests arm a site with a fault kind
// (NaN corruption, panic, slow iteration) to prove that every failure mode
// surfaces as the right typed error and never as a silent NaN result.
//
// Production cost is one atomic load per site hit: when nothing is armed —
// always, outside tests — every hook is a no-op. Arm refuses to run outside
// `go test` (it panics), so the registry cannot be abused as a runtime
// feature flag.
package fault

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Site names. Each constant marks one instrumented location.
const (
	// SiteCharState fires inside per-state cell characterization.
	SiteCharState = "charlib/characterize-state"
	// SiteCharMoments corrupts the Monte-Carlo moments of a characterized
	// state.
	SiteCharMoments = "charlib/mc-moments"
	// SiteCholesky fires at the start of a Cholesky factorization and can
	// corrupt its first pivot.
	SiteCholesky = "linalg/cholesky"
	// SiteChipMCTrial fires once per chip Monte-Carlo trial and can corrupt
	// the accumulated total.
	SiteChipMCTrial = "chipmc/trial"
	// SiteISWeight fires once per importance-sampled tail trial and can
	// corrupt its likelihood-ratio weight; armed with NaN it proves a
	// poisoned weight surfaces as a typed Numerical error, never a silent
	// NaN tail probability. (The conformance mutation self-check does NOT
	// use this site — Arm is test-only — it mis-weights via
	// chipmc.TailConfig.WeightScale instead.)
	SiteISWeight = "chipmc/is-weight"
	// SiteTruthRow fires once per row of the O(n²) true-leakage pair loop
	// and can corrupt the accumulated variance.
	SiteTruthRow = "core/truth-row"
	// SiteLinearAccum corrupts the linear estimator's covariance mass.
	SiteLinearAccum = "core/linear-accumulate"
	// SiteGridTrial fires once per grid-model factor-space trial.
	SiteGridTrial = "gridmodel/trial"
	// SiteFFTSetup fires inside the chipmc.fft_setup stage; armed with Error
	// it makes the circulant-embedding construction report failure, driving
	// the documented dense-sampler fallback.
	SiteFFTSetup = "chipmc/fft-setup"
	// SiteGridEmbed fires at the start of the GridSampler embedding build
	// (panic / slow-setup faults for the torus-spectrum path).
	SiteGridEmbed = "randvar/grid-embed"
	// SiteCacheFill fires inside an estimation-server artifact-cache fill;
	// armed with Panic or Error it proves a failed fill surfaces as a typed
	// error to every singleflight waiter and is recomputed on the next miss.
	SiteCacheFill = "server/cache-fill"
	// SiteJobExec fires at the start of an estimation-server job execution;
	// armed with Panic it proves a crashing job is marked failed with a
	// typed error instead of wedging the worker pool.
	SiteJobExec = "server/job-exec"
)

// Kind selects the failure a site produces when armed.
type Kind int

const (
	// None leaves the site inert.
	None Kind = iota
	// NaN makes Corrupt return NaN at the site.
	NaN
	// Panic makes Hit panic at the site.
	Panic
	// Sleep makes Hit delay by Action.Delay at every firing — the "slow
	// iteration" fault for exercising deadlines.
	Sleep
	// Error makes Failure return an injected error at the site — the
	// "dependency failed" fault for exercising fallback paths.
	Error
)

// Action describes an armed fault.
type Action struct {
	Kind Kind
	// Delay is the per-hit pause for Sleep faults.
	Delay time.Duration
	// After delays firing until the site has been hit that many times
	// (0 = fire immediately). Lets tests corrupt mid-loop rather than at
	// entry.
	After int
}

type armed struct {
	action Action
	hits   atomic.Int64
}

var (
	enabled atomic.Bool // fast path: false unless something is armed
	mu      sync.RWMutex
	sites   map[string]*armed
)

// Arm activates a fault at the named site. It panics outside `go test`.
func Arm(site string, a Action) {
	if !testing.Testing() {
		panic("fault: Arm called outside tests")
	}
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*armed)
	}
	sites[site] = &armed{action: a}
	enabled.Store(true)
}

// Reset disarms every site. Tests should defer it after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = nil
	enabled.Store(false)
}

// lookup returns the armed fault for a site if it is due to fire.
func lookup(site string) (Action, bool) {
	mu.RLock()
	ar := sites[site]
	mu.RUnlock()
	if ar == nil {
		return Action{}, false
	}
	n := ar.hits.Add(1)
	if int(n) <= ar.action.After {
		return Action{}, false
	}
	return ar.action, true
}

// Hit fires control-flow faults (Panic, Sleep) at a site. It is a no-op
// when the site is not armed.
func Hit(site string) {
	if !enabled.Load() {
		return
	}
	a, ok := lookup(site)
	if !ok {
		return
	}
	switch a.Kind {
	case Panic:
		panic("fault: injected panic at " + site)
	case Sleep:
		time.Sleep(a.Delay)
	}
}

// Failure returns an injected error when the site is armed with an Error
// fault, and nil otherwise. Callers fold it into their own error path:
//
//	if err == nil {
//		err = fault.Failure(fault.SiteFFTSetup)
//	}
func Failure(site string) error {
	if !enabled.Load() {
		return nil
	}
	if a, ok := lookup(site); ok && a.Kind == Error {
		return errors.New("fault: injected failure at " + site)
	}
	return nil
}

// Corrupt passes v through unless the site is armed with a NaN fault, in
// which case it returns NaN.
func Corrupt(site string, v float64) float64 {
	if !enabled.Load() {
		return v
	}
	if a, ok := lookup(site); ok && a.Kind == NaN {
		return math.NaN()
	}
	return v
}

// Hits reports how many times a site has fired since it was armed; it is 0
// for unarmed sites. Tests use it to assert a loop stopped early.
func Hits(site string) int {
	mu.RLock()
	defer mu.RUnlock()
	if ar := sites[site]; ar != nil {
		return int(ar.hits.Load())
	}
	return 0
}
