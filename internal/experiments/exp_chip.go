package experiments

import (
	"fmt"
	"math"
	"time"

	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/core"
	"leakest/internal/iscas"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// ChipProcess returns the variation model used by the chip-level
// experiments: the default 90 nm sigma split with a within-die correlation
// length matched to the benchmark die scale (tens to hundreds of µm), and a
// hard range suitable for the polar estimator.
func ChipProcess() *spatial.Process {
	base := spatial.Default90nm()
	return &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 30, R: 120},
	}
}

// arityOf builds a netlist.CellArity from a characterized library.
func arityOf(lib *charlib.Library) netlist.CellArity {
	return func(typ string) (int, error) {
		cc, err := lib.Cell(typ)
		if err != nil {
			return 0, err
		}
		return cc.NumInputs, nil
	}
}

// Fig6Config parameterizes the random-circuit convergence experiment.
type Fig6Config struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Hist *stats.Histogram
	// Sides lists RG-array side lengths; each size is side² gates (the
	// paper sweeps up to 106² = 11 236).
	Sides []int
	// Reps is the number of random circuits per size.
	Reps int
	Seed int64
	Mode core.Mode
	// SignalProb for all gates (default 0.5).
	SignalProb float64
}

// Fig6 regenerates Figure 6: for each circuit size, many random circuits
// sharing the same high-level characteristics are generated, placed, and
// analysed with the O(n²) true-leakage computation; the maximum positive
// and negative deviations of their means and standard deviations from the
// Random-Gate estimate are reported. The paper finds the envelope shrinks
// towards zero with size (2.2 % at 11 236 gates).
func Fig6(cfg Fig6Config) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil || len(cfg.Sides) == 0 {
		return nil, fmt.Errorf("experiments: Fig6 needs a library, histogram and sizes")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.Reps == 0 {
		cfg.Reps = 10
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	arity := arityOf(cfg.Lib)
	t := &Table{
		ID:    "E4",
		Title: "Fig. 6: random-circuit deviation from the RG estimate vs circuit size",
		Header: []string{"n", "mean err +max", "mean err -max", "std err +max", "std err -max",
			"|envelope|"},
	}
	lastEnvelope := 0.0
	for _, side := range cfg.Sides {
		n := side * side
		w := float64(side) * placement.DefaultSitePitch
		spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, cfg.Mode)
		if err != nil {
			return nil, err
		}
		est, err := model.EstimateLinear()
		if err != nil {
			return nil, err
		}
		grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
		if err != nil {
			return nil, err
		}
		meanPos, meanNeg, stdPos, stdNeg := 0.0, 0.0, 0.0, 0.0
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := stats.NewRNG(cfg.Seed, fmt.Sprintf("fig6/%d/%d", n, rep))
			nl, err := netlist.RandomCircuit(rng, fmt.Sprintf("rand%d-%d", n, rep), n, 16, cfg.Hist, arity)
			if err != nil {
				return nil, err
			}
			pl, err := placement.Random(rng, grid, n)
			if err != nil {
				return nil, err
			}
			truth, err := core.TrueStats(model, nl, pl)
			if err != nil {
				return nil, err
			}
			meanErr := stats.RelErr(truth.Mean, est.Mean)
			stdErr := stats.RelErr(truth.Std, est.Std)
			meanPos = math.Max(meanPos, meanErr)
			meanNeg = math.Min(meanNeg, meanErr)
			stdPos = math.Max(stdPos, stdErr)
			stdNeg = math.Min(stdNeg, stdErr)
		}
		envelope := math.Max(math.Max(meanPos, -meanNeg), math.Max(stdPos, -stdNeg))
		lastEnvelope = envelope
		t.AddRow(fmt.Sprintf("%d", n), pct(meanPos), pct(meanNeg), pct(stdPos), pct(stdNeg), pct(envelope))
		t.AddClaim("e4.envelope", n, envelope)
	}
	t.AddNote("envelope at the largest size: %s (paper: 2.2%% at 11 236 gates)", pct(lastEnvelope))
	t.AddNote("%d random circuits per size, mode %s", cfg.Reps, cfg.Mode)
	return t, nil
}

// Table1Config parameterizes the ISCAS85 late-mode experiment.
type Table1Config struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Seed int64
	Mode core.Mode
	// SignalProb for all gates (default 0.5).
	SignalProb float64
	// Names optionally restricts the circuits (default: the paper's nine).
	Names []string
}

// Table1 regenerates Table 1: for each (synthetic) ISCAS85 circuit, the
// high-level characteristics are extracted from the placed netlist, the
// Random-Gate model estimates the full-chip statistics, and the error
// against the O(n²) true leakage is reported. The paper's errors range from
// 0.23 % to 1.38 % for σ, with negligible mean errors.
func Table1(cfg Table1Config) (*Table, error) {
	if cfg.Lib == nil {
		return nil, fmt.Errorf("experiments: Table1 needs a library")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	if len(cfg.Names) == 0 {
		cfg.Names = iscas.Table1Names()
	}
	arity := arityOf(cfg.Lib)
	t := &Table{
		ID:     "E5",
		Title:  "Table 1: % error in full-chip std dev, RG estimate vs true leakage (ISCAS85)",
		Header: []string{"circuit", "gates", "true std (A)", "RG std (A)", "std err", "mean err"},
	}
	worst := 0.0
	for _, name := range cfg.Names {
		ckt, err := iscas.Build(name, cfg.Seed, arity)
		if err != nil {
			return nil, err
		}
		spec, err := core.ExtractSpec(ckt.Netlist, ckt.Placement, cfg.SignalProb)
		if err != nil {
			return nil, err
		}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, cfg.Mode)
		if err != nil {
			return nil, err
		}
		truth, err := core.TrueStats(model, ckt.Netlist, ckt.Placement)
		if err != nil {
			return nil, err
		}
		est, err := model.EstimateLinear()
		if err != nil {
			return nil, err
		}
		stdErr := math.Abs(stats.RelErr(est.Std, truth.Std))
		meanErr := math.Abs(stats.RelErr(est.Mean, truth.Mean))
		worst = math.Max(worst, stdErr)
		t.AddRow(name, fmt.Sprintf("%d", len(ckt.Netlist.Gates)),
			f(truth.Std), f(est.Std), pct(stdErr), pct(meanErr))
	}
	t.AddNote("worst σ error: %s (paper: 0.23%%–1.38%% across the table)", pct(worst))
	t.AddClaim("e5.std_err_worst", 0, worst)
	return t, nil
}

// Fig7Config parameterizes the integral-vs-linear comparison.
type Fig7Config struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Hist *stats.Histogram
	// Sides lists RG-array side lengths (n = side²); the paper sweeps from
	// tens of gates to beyond 10⁵.
	Sides      []int
	Mode       core.Mode
	SignalProb float64
}

// Fig7 regenerates Figure 7: the % error between the constant-time
// numerical-integration estimate (Eq. 20) and the linear-time algorithm
// (Eq. 17) as a function of circuit size. The paper reports > 1 % below
// ~100 gates and < 0.01 % beyond ten thousand gates.
func Fig7(cfg Fig7Config) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil || len(cfg.Sides) == 0 {
		return nil, fmt.Errorf("experiments: Fig7 needs a library, histogram and sizes")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	t := &Table{
		ID:     "E7",
		Title:  "Fig. 7: % error of constant-time integration vs linear-time algorithm",
		Header: []string{"n", "linear std (A)", "integral std (A)", "|err|", "polar std (A)", "|polar err|"},
	}
	for _, side := range cfg.Sides {
		n := side * side
		w := float64(side) * placement.DefaultSitePitch
		spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, cfg.Mode)
		if err != nil {
			return nil, err
		}
		lin, err := model.EstimateLinear()
		if err != nil {
			return nil, err
		}
		integ, err := model.EstimateIntegral2D()
		if err != nil {
			return nil, err
		}
		polarStd, polarErr := "n/a", "n/a"
		if p, err := model.EstimatePolar(); err == nil {
			polarStd = f(p.Std)
			pe := math.Abs(stats.RelErr(p.Std, lin.Std))
			polarErr = pct(pe)
			t.AddClaim("e7.polar_err", n, pe)
		}
		ie := math.Abs(stats.RelErr(integ.Std, lin.Std))
		t.AddClaim("e7.integral_err", n, ie)
		t.AddRow(fmt.Sprintf("%d", n), f(lin.Std), f(integ.Std),
			pct(ie), polarStd, polarErr)
	}
	t.AddNote("paper: error > 1%% below ~100 gates, < 0.01%% beyond 10⁴ gates")
	t.AddNote("polar applies once the correlation range fits inside the die (n/a otherwise)")
	return t, nil
}

// SimplifiedCorrConfig parameterizes the §3.1.2 assumption check.
type SimplifiedCorrConfig struct {
	Lib        *charlib.Library
	Proc       *spatial.Process
	Hist       *stats.Histogram
	Sides      []int
	SignalProb float64
}

// SimplifiedCorr regenerates the §3.1.2 validation: the error in the
// full-chip σ introduced by assuming ρ_leak = ρ_L instead of the exact
// f_{m,n} mapping, under WID-only and WID+D2D variations. The paper bounds
// it below 2.8 %.
func SimplifiedCorr(cfg SimplifiedCorrConfig) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil || len(cfg.Sides) == 0 {
		return nil, fmt.Errorf("experiments: SimplifiedCorr needs a library, histogram and sizes")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	t := &Table{
		ID:     "E6",
		Title:  "§3.1.2: error of the simplified assumption rho_leak = rho_L",
		Header: []string{"variations", "n", "exact std (A)", "simplified std (A)", "|err|"},
	}
	worst := 0.0
	for _, allWID := range []bool{true, false} {
		proc := cfg.Proc
		label := "WID+D2D"
		if allWID {
			proc = cfg.Proc.AllWID()
			label = "WID only"
		}
		for _, side := range cfg.Sides {
			n := side * side
			w := float64(side) * placement.DefaultSitePitch
			spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}
			exact, err := core.NewModel(cfg.Lib, proc, spec, core.Analytic)
			if err != nil {
				return nil, err
			}
			simplified, err := core.NewModel(cfg.Lib, proc, spec, core.AnalyticSimplified)
			if err != nil {
				return nil, err
			}
			e, err := exact.EstimateLinear()
			if err != nil {
				return nil, err
			}
			s, err := simplified.EstimateLinear()
			if err != nil {
				return nil, err
			}
			errPct := math.Abs(stats.RelErr(s.Std, e.Std))
			worst = math.Max(worst, errPct)
			t.AddRow(label, fmt.Sprintf("%d", n), f(e.Std), f(s.Std), pct(errPct))
		}
	}
	t.AddNote("worst error: %s (paper: below 2.8%% in both configurations)", pct(worst))
	t.AddClaim("e6.simpl_err_worst", 0, worst)
	return t, nil
}

// VtAblationConfig parameterizes the Vt-randomness ablation.
type VtAblationConfig struct {
	Lib   *charlib.Library
	Proc  *spatial.Process
	Hist  *stats.Histogram
	Sides []int
	// Samples per chip-level Monte Carlo (default 1500).
	Samples    int
	Seed       int64
	SignalProb float64
}

// VtAblation validates the §2.1 modelling decision: purely random Vt
// fluctuation multiplies the mean leakage by a known lognormal factor but
// contributes negligibly to the full-chip spread (variance of independent
// contributions grows ~n while correlated-L variance grows ~n²).
func VtAblation(cfg VtAblationConfig) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil || len(cfg.Sides) == 0 {
		return nil, fmt.Errorf("experiments: VtAblation needs a library, histogram and sizes")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.Samples == 0 {
		cfg.Samples = 1500
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	arity := arityOf(cfg.Lib)
	t := &Table{
		ID:     "E9",
		Title:  "Vt-randomness ablation: mean multiplies, spread barely moves (§2.1)",
		Header: []string{"n", "mean ratio (MC)", "analytic factor", "CV no-Vt", "CV with-Vt"},
	}
	factor := cfg.Lib.VtMeanFactor()
	for _, side := range cfg.Sides {
		n := side * side
		rng := stats.NewRNG(cfg.Seed, fmt.Sprintf("vt/%d", n))
		nl, err := netlist.RandomCircuit(rng, fmt.Sprintf("vt%d", n), n, 16, cfg.Hist, arity)
		if err != nil {
			return nil, err
		}
		grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
		if err != nil {
			return nil, err
		}
		pl, err := placement.Random(rng, grid, n)
		if err != nil {
			return nil, err
		}
		base, err := chipmc.Run(chipmc.Config{
			Lib: cfg.Lib, Proc: cfg.Proc, SignalProb: cfg.SignalProb,
			Samples: cfg.Samples, Seed: cfg.Seed}, nl, pl)
		if err != nil {
			return nil, err
		}
		withVt, err := chipmc.Run(chipmc.Config{
			Lib: cfg.Lib, Proc: cfg.Proc, SignalProb: cfg.SignalProb,
			Samples: cfg.Samples, Seed: cfg.Seed, IncludeVt: true}, nl, pl)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", withVt.Mean/base.Mean),
			fmt.Sprintf("%.3f", factor),
			fmt.Sprintf("%.4f", base.Std/base.Mean),
			fmt.Sprintf("%.4f", withVt.Std/withVt.Mean))
	}
	t.AddNote("CV = σ/µ; matching CVs confirm Vt randomness is irrelevant to full-chip variance")
	return t, nil
}

// NaiveBaselineConfig parameterizes the independence-assumption comparison.
type NaiveBaselineConfig struct {
	Lib        *charlib.Library
	Proc       *spatial.Process
	Hist       *stats.Histogram
	Sides      []int
	Mode       core.Mode
	SignalProb float64
}

// NaiveBaseline contrasts the paper's correlated estimator with the early
// no-correlation estimators ([1, 2]-style): the naive σ falls further and
// further below the correlated σ as circuits grow, because correlated
// variance grows ~n² while independent variance grows ~n.
func NaiveBaseline(cfg NaiveBaselineConfig) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil || len(cfg.Sides) == 0 {
		return nil, fmt.Errorf("experiments: NaiveBaseline needs a library, histogram and sizes")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	t := &Table{
		ID:     "E10",
		Title:  "naive independence baseline vs correlated RG estimate",
		Header: []string{"n", "correlated std (A)", "naive std (A)", "naive/correlated"},
	}
	prevRatio := math.Inf(1)
	for _, side := range cfg.Sides {
		n := side * side
		w := float64(side) * placement.DefaultSitePitch
		spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, cfg.Mode)
		if err != nil {
			return nil, err
		}
		lin, err := model.EstimateLinear()
		if err != nil {
			return nil, err
		}
		naive, err := model.EstimateNaive()
		if err != nil {
			return nil, err
		}
		ratio := naive.Std / lin.Std
		t.AddRow(fmt.Sprintf("%d", n), f(lin.Std), f(naive.Std), fmt.Sprintf("%.4f", ratio))
		prevRatio = ratio
	}
	t.AddNote("final under-estimation factor: %.1fx — ignoring correlation is catastrophic at scale", 1/prevRatio)
	return t, nil
}

// ScalingConfig parameterizes the runtime-scaling measurement.
type ScalingConfig struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Hist *stats.Histogram
	// TrueSides are the sizes run through the O(n²) truth (kept small).
	TrueSides []int
	// FastSides are the sizes run through O(n) and O(1) estimators.
	FastSides  []int
	Seed       int64
	Mode       core.Mode
	SignalProb float64
}

// Scaling measures wall-clock runtime of the O(n²), O(n) and O(1)
// estimators across circuit sizes — the paper's complexity claims made
// concrete. Numbers are machine-dependent; the scaling trend is the point.
func Scaling(cfg ScalingConfig) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil {
		return nil, fmt.Errorf("experiments: Scaling needs a library and histogram")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	if len(cfg.TrueSides) == 0 {
		cfg.TrueSides = []int{16, 24, 32}
	}
	if len(cfg.FastSides) == 0 {
		cfg.FastSides = []int{32, 100, 316, 1000}
	}
	arity := arityOf(cfg.Lib)
	t := &Table{
		ID:     "E11",
		Title:  "estimator runtime scaling (O(n²) true vs O(n) linear vs O(1) integral)",
		Header: []string{"method", "n", "time"},
	}
	timeIt := func(fn func() error) (time.Duration, error) {
		start := time.Now()
		err := fn()
		return time.Since(start), err
	}
	for _, side := range cfg.TrueSides {
		n := side * side
		rng := stats.NewRNG(cfg.Seed, fmt.Sprintf("scaling/%d", n))
		nl, err := netlist.RandomCircuit(rng, fmt.Sprintf("s%d", n), n, 16, cfg.Hist, arity)
		if err != nil {
			return nil, err
		}
		grid, _ := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
		pl, err := placement.Random(rng, grid, n)
		if err != nil {
			return nil, err
		}
		spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: grid.W(), H: grid.H(), SignalProb: cfg.SignalProb}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, cfg.Mode)
		if err != nil {
			return nil, err
		}
		// Warm the pair cache outside the timed region (one-time setup).
		if _, err := core.TrueStats(model, nl, pl); err != nil {
			return nil, err
		}
		d, err := timeIt(func() error { _, err := core.TrueStats(model, nl, pl); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow("true O(n²)", fmt.Sprintf("%d", n), d.String())
	}
	for _, side := range cfg.FastSides {
		n := side * side
		w := float64(side) * placement.DefaultSitePitch
		spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, cfg.Mode)
		if err != nil {
			return nil, err
		}
		d, err := timeIt(func() error { _, err := model.EstimateLinear(); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow("linear O(n)", fmt.Sprintf("%d", n), d.String())
		d, err = timeIt(func() error { _, err := model.EstimateIntegral2D(); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow("integral O(1)", fmt.Sprintf("%d", n), d.String())
		if _, err := model.EstimatePolar(); err == nil {
			d, _ = timeIt(func() error { _, err := model.EstimatePolar(); return err })
			t.AddRow("polar O(1)", fmt.Sprintf("%d", n), d.String())
		}
	}
	t.AddNote("paper: O(n) takes < 1 s below 1000 gates; integration recommended beyond")
	return t, nil
}
