// Package experiments regenerates every table and figure of the paper's
// evaluation (plus the ablations DESIGN.md calls out) as plain-text tables:
//
//	E1  §2.1.2  cell-model accuracy (analytical fit vs Monte Carlo)
//	E2  Fig. 2  leakage correlation vs channel-length correlation
//	E3  Fig. 3  full-chip mean leakage vs signal probability
//	E4  Fig. 6  random-circuit convergence to the RG estimate
//	E5  Table 1 ISCAS85 late-mode estimation errors
//	E6  §3.1.2  simplified-correlation assumption error
//	E7  Fig. 7  integral vs linear-time agreement across circuit size
//	E9  §2.1    Vt-randomness ablation (mean shifts, spread does not)
//	E10 §1      naive no-correlation baseline comparison
//	E11 §3      estimator runtime scaling
//
// Each driver accepts explicit workload parameters so the benchmark harness
// can run the paper-scale configuration while unit tests run reduced ones.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells plus notes
// comparing against the numbers the paper reports and machine-checkable
// claims for the conformance gate.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Claims []Claim
}

// Claim is a machine-checkable scalar an experiment asserts about itself,
// named after the conformance envelope tables (e.g. "e4.envelope",
// "e7.integral_err"). Values carry the metric's native unit — percent for
// the *_err/envelope metrics, absolute for the e2 deviations. N is the
// circuit size for size-dependent envelopes and 0 for size-free ones.
type Claim struct {
	Name  string  `json:"name"`
	N     int     `json:"n,omitempty"`
	Value float64 `json:"value"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddClaim records a checkable metric alongside the rendered rows.
func (t *Table) AddClaim(name string, n int, value float64) {
	t.Claims = append(t.Claims, Claim{Name: name, N: n, Value: value})
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// pct formats a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
