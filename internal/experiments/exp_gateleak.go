package experiments

import (
	"fmt"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// GateLeakConfig parameterizes the gate-tunneling ablation.
type GateLeakConfig struct {
	Proc *spatial.Process
	Hist *stats.Histogram
	// JGate is the tunneling density to enable, A/µm² (default 3e-7 —
	// comparable in magnitude to the subthreshold component, as in thin-
	// oxide 90 nm nodes).
	JGate float64
	// Side² gates are estimated.
	Side       int
	SignalProb float64
	Seed       int64
}

// GateLeakAblation is an extension beyond the paper: it re-characterizes
// the ISCAS cell subset with gate tunneling enabled and compares full-chip
// statistics against the subthreshold-only baseline. Gate tunneling grows
// with gate area (∝ W·L), opposing the exponential decrease of
// subthreshold leakage with L, so enabling it raises the mean while
// *diluting* the relative spread — the statistical framework of the paper
// absorbs the additional mechanism without modification.
func GateLeakAblation(cfg GateLeakConfig) (*Table, error) {
	if cfg.Hist == nil {
		return nil, fmt.Errorf("experiments: GateLeakAblation needs a histogram")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.JGate == 0 {
		cfg.JGate = 3e-7
	}
	if cfg.Side == 0 {
		cfg.Side = 32
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}

	charCfg := charlib.Config{Process: spatial.Default90nm(), Seed: cfg.Seed + 20070604}
	base, err := charlib.Characterize(cells.ISCASSubset(), charCfg)
	if err != nil {
		return nil, err
	}
	gated, err := charlib.Characterize(
		cells.EnableGateLeakage(cells.ISCASSubset(), cfg.JGate), charCfg)
	if err != nil {
		return nil, err
	}

	n := cfg.Side * cfg.Side
	w := float64(cfg.Side) * placement.DefaultSitePitch
	spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}

	t := &Table{
		ID:     "EX1",
		Title:  "gate-tunneling ablation (extension): mean rises, relative spread dilutes",
		Header: []string{"library", "mean (A)", "std (A)", "CV"},
	}
	var cv [2]float64
	for i, lib := range []*charlib.Library{base, gated} {
		model, err := core.NewModel(lib, cfg.Proc, spec, core.Analytic)
		if err != nil {
			return nil, err
		}
		res, err := model.EstimateLinear()
		if err != nil {
			return nil, err
		}
		name := "subthreshold only"
		if i == 1 {
			name = fmt.Sprintf("+gate (J=%.1g A/µm²)", cfg.JGate)
		}
		cv[i] = res.Std / res.Mean
		t.AddRow(name, f(res.Mean), f(res.Std), fmt.Sprintf("%.4f", cv[i]))
	}
	if cv[1] < cv[0] {
		t.AddNote("relative spread diluted by %.1f%% — gate tunneling is insensitive to the L variation driving subthreshold spread",
			100*(cv[0]-cv[1])/cv[0])
	} else {
		t.AddNote("relative spread changed from %.4f to %.4f", cv[0], cv[1])
	}
	t.AddNote("n = %d gates, %s process", n, cfg.Proc.WIDCorr.Name())
	return t, nil
}
