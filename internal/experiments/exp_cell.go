package experiments

import (
	"fmt"
	"math"
	"sort"

	"leakest/internal/charlib"
	"leakest/internal/stats"
)

// CellAccuracy regenerates the §2.1.2 validation: the analytical
// (a, b, c)+MGF moments against the Monte-Carlo moments for every cell and
// input state. The paper reports mean errors below 2 % (average 0.44 %) and
// standard-deviation errors averaging 3.1 % with a ≈10 % maximum.
func CellAccuracy(lib *charlib.Library) (*Table, error) {
	if lib == nil {
		return nil, fmt.Errorf("experiments: nil library")
	}
	t := &Table{
		ID:     "E1",
		Title:  "cell model accuracy: analytical (a,b,c)+MGF vs Monte Carlo (§2.1.2)",
		Header: []string{"cell", "states", "worst |mean err|", "worst |std err|"},
	}
	var meanErrs, stdErrs []float64
	for i := range lib.Cells {
		cc := &lib.Cells[i]
		worstMean, worstStd := 0.0, 0.0
		for _, st := range cc.States {
			me := math.Abs(stats.RelErr(st.FitMean, st.MCMean))
			se := math.Abs(stats.RelErr(st.FitStd, st.MCStd))
			meanErrs = append(meanErrs, me)
			stdErrs = append(stdErrs, se)
			if me > worstMean {
				worstMean = me
			}
			if se > worstStd {
				worstStd = se
			}
		}
		t.AddRow(cc.Name, fmt.Sprintf("%d", len(cc.States)), pct(worstMean), pct(worstStd))
	}
	_, meanMax := stats.MinMax(meanErrs)
	_, stdMax := stats.MinMax(stdErrs)
	t.AddNote("mean error: avg %s, max %s (paper: avg 0.44%%, max < 2%%)",
		pct(stats.Mean(meanErrs)), pct(meanMax))
	t.AddNote("std error:  avg %s, max %s (paper: avg 3.1%%, max ≈ 10%%)",
		pct(stats.Mean(stdErrs)), pct(stdMax))
	t.AddClaim("e1.mean_err_max", 0, meanMax)
	t.AddClaim("e1.std_err_max", 0, stdMax)
	return t, nil
}

// Fig2Config parameterizes the leakage-correlation experiment.
type Fig2Config struct {
	Lib *charlib.Library
	// CellA/StateA and CellB/StateB select the gate pair (defaults:
	// NAND2_X1 state 0 vs NOR2_X1 state 0).
	CellA, CellB   string
	StateA, StateB int
	// MCSamples per correlation point (default 40000).
	MCSamples int
	Seed      int64
}

// Fig2 regenerates Figure 2: leakage correlation versus channel-length
// correlation for one pair of gates, computed both by Monte Carlo over the
// tabulated curves and by the closed-form f_{m,n} mapping; the paper
// observes both hug the y = x line.
func Fig2(cfg Fig2Config) (*Table, error) {
	if cfg.Lib == nil {
		return nil, fmt.Errorf("experiments: nil library")
	}
	if cfg.CellA == "" {
		cfg.CellA, cfg.CellB = "NAND2_X1", "NOR2_X1"
	}
	if cfg.MCSamples == 0 {
		cfg.MCSamples = 40000
	}
	ca, err := cfg.Lib.Cell(cfg.CellA)
	if err != nil {
		return nil, err
	}
	cb, err := cfg.Lib.Cell(cfg.CellB)
	if err != nil {
		return nil, err
	}
	if cfg.StateA >= len(ca.States) || cfg.StateB >= len(cb.States) {
		return nil, fmt.Errorf("experiments: state out of range")
	}
	sa, sb := &ca.States[cfg.StateA], &cb.States[cfg.StateB]
	mu, sigma := cfg.Lib.Process.LNominal, cfg.Lib.Process.TotalSigma()
	rng := stats.NewRNG(cfg.Seed, "fig2")

	t := &Table{
		ID: "E2",
		Title: fmt.Sprintf("Fig. 2: leakage correlation vs length correlation (%s/%d × %s/%d)",
			cfg.CellA, cfg.StateA, cfg.CellB, cfg.StateB),
		Header: []string{"rho_L", "rho_leak (MC)", "rho_leak (analytic)", "|analytic - y=x|"},
	}
	maxDev := 0.0
	maxMismatch := 0.0
	for _, rho := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1} {
		an, err := charlib.LeakageCorr(sa, sb, rho, mu, sigma)
		if err != nil {
			return nil, err
		}
		mc := charlib.MCPairCorr(sa, sb, rho, mu, sigma, cfg.MCSamples, rng)
		t.AddRow(f(rho), f(mc), f(an), f(math.Abs(an-rho)))
		if d := math.Abs(an - rho); d > maxDev {
			maxDev = d
		}
		if d := math.Abs(an - mc); d > maxMismatch {
			maxMismatch = d
		}
	}
	t.AddNote("max deviation of analytic mapping from y=x: %.4f (paper: near the y=x line)", maxDev)
	t.AddNote("max MC-vs-analytic mismatch: %.4f (paper: good match)", maxMismatch)
	t.AddClaim("e2.identity_dev", 0, maxDev)
	t.AddClaim("e2.mc_mismatch", 0, maxMismatch)
	return t, nil
}

// Fig3Config parameterizes the signal-probability sweep.
type Fig3Config struct {
	Lib *charlib.Library
	// Profiles maps a label to a cell-usage histogram; the paper notes the
	// effect depends on the frequency of use of the various cells.
	Profiles map[string]*stats.Histogram
	// Steps is the number of probability points (default 21).
	Steps int
}

// Fig3 regenerates Figure 3: full-chip mean leakage (per gate, normalized
// to its maximum over p) as a function of the signal probability, for
// several usage profiles. The spread across p is far smaller than the 10×
// single-gate state dependence — the law-of-large-numbers flattening the
// paper describes — and the maximizing p* is reported per profile.
func Fig3(cfg Fig3Config) (*Table, error) {
	if cfg.Lib == nil || len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("experiments: Fig3 needs a library and profiles")
	}
	if cfg.Steps < 3 {
		cfg.Steps = 21
	}
	labels := make([]string, 0, len(cfg.Profiles))
	for l := range cfg.Profiles {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	t := &Table{
		ID:     "E3",
		Title:  "Fig. 3: normalized full-chip mean leakage vs signal probability",
		Header: append([]string{"p"}, labels...),
	}
	type curve struct {
		vals []float64
		max  float64
		pMax float64
	}
	curves := make(map[string]*curve, len(labels))
	for _, l := range labels {
		curves[l] = &curve{}
	}
	ps := make([]float64, cfg.Steps)
	for i := range ps {
		ps[i] = float64(i) / float64(cfg.Steps-1)
		for _, l := range labels {
			m, _, err := charlib.DesignStatsAtP(cfg.Lib, cfg.Profiles[l], ps[i], false)
			if err != nil {
				return nil, err
			}
			c := curves[l]
			c.vals = append(c.vals, m)
			if m > c.max {
				c.max, c.pMax = m, ps[i]
			}
		}
	}
	for i, p := range ps {
		row := []string{f(p)}
		for _, l := range labels {
			row = append(row, fmt.Sprintf("%.4f", curves[l].vals[i]/curves[l].max))
		}
		t.AddRow(row...)
	}
	for _, l := range labels {
		c := curves[l]
		min, _ := stats.MinMax(c.vals)
		pStar, err := charlib.MaximizingSignalProb(cfg.Lib, cfg.Profiles[l], false)
		if err != nil {
			return nil, err
		}
		t.AddNote("%s: grid p* ≈ %.2f (refined %.3f), full-chip spread %.1f%% (single gates spread up to ~10x)",
			l, c.pMax, pStar, 100*(c.max-min)/c.max)
	}
	return t, nil
}
