package experiments

import (
	"fmt"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// SigPropConfig parameterizes the propagated-probability experiment.
type SigPropConfig struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Hist *stats.Histogram
	// Side² gates are analysed.
	Side int
	// InputProbs lists the primary-input probabilities to sweep.
	InputProbs []float64
	Seed       int64
}

// OutputProbFromCells builds the netlist propagation hook from the
// transistor-level cell library.
func OutputProbFromCells(cellList []*cells.Cell) netlist.OutputProbFunc {
	byName := cells.ByName(cellList)
	return func(typ string, pinProbs []float64) (float64, error) {
		c, ok := byName[typ]
		if !ok {
			return 0, fmt.Errorf("experiments: unknown cell %q", typ)
		}
		return c.OutputProbability(pinProbs)
	}
}

// SignalPropagation is an extension beyond the paper: instead of one
// uniform signal probability (the high-level abstraction of §2.1.4),
// per-net probabilities are propagated through the netlist and each gate's
// state distribution follows from its actual fanins. The experiment
// quantifies how far the uniform abstraction sits from the propagated
// refinement and how closely the paper's conservative maximizing-p*
// setting tracks the propagated maximum (it maximizes the *uniform* mean,
// so it can sit marginally below the propagated one — the note reports
// which way it fell).
func SignalPropagation(cfg SigPropConfig) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil {
		return nil, fmt.Errorf("experiments: SignalPropagation needs a library and histogram")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.Side == 0 {
		cfg.Side = 24
	}
	if len(cfg.InputProbs) == 0 {
		cfg.InputProbs = []float64{0.25, 0.5, 0.75}
	}
	n := cfg.Side * cfg.Side
	arity := arityOf(cfg.Lib)
	rng := stats.NewRNG(cfg.Seed, "sigprop")
	nl, err := netlist.RandomCircuit(rng, "sp", n, 16, cfg.Hist, arity)
	if err != nil {
		return nil, err
	}
	grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return nil, err
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		return nil, err
	}
	outProb := OutputProbFromCells(cells.Library())

	t := &Table{
		ID:     "EX4",
		Title:  fmt.Sprintf("propagated per-net signal probabilities vs the uniform abstraction (n=%d)", n),
		Header: []string{"input p", "uniform mean (A)", "propagated mean (A)", "Δmean", "uniform std (A)", "propagated std (A)", "Δstd"},
	}
	pStar, err := charlib.MaximizingSignalProb(cfg.Lib, cfg.Hist, false)
	if err != nil {
		return nil, err
	}
	spec, err := core.ExtractSpec(nl, pl, pStar)
	if err != nil {
		return nil, err
	}
	conservative, err := core.NewModel(cfg.Lib, cfg.Proc, spec, core.AnalyticSimplified)
	if err != nil {
		return nil, err
	}
	consRes, err := conservative.EstimateLinear()
	if err != nil {
		return nil, err
	}

	maxPropMean := 0.0
	for _, p := range cfg.InputProbs {
		// Uniform abstraction at the input probability.
		spec, err := core.ExtractSpec(nl, pl, p)
		if err != nil {
			return nil, err
		}
		model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, core.AnalyticSimplified)
		if err != nil {
			return nil, err
		}
		uniform, err := core.TrueStats(model, nl, pl)
		if err != nil {
			return nil, err
		}
		// Propagated refinement.
		_, gatePins, err := netlist.PropagateProbabilities(nl, p, arity, outProb)
		if err != nil {
			return nil, err
		}
		prop, err := core.PropagatedTrueStats(model, nl, pl, gatePins)
		if err != nil {
			return nil, err
		}
		if prop.Mean > maxPropMean {
			maxPropMean = prop.Mean
		}
		t.AddRow(f(p),
			f(uniform.Mean), f(prop.Mean), pct(stats.RelErr(prop.Mean, uniform.Mean)),
			f(uniform.Std), f(prop.Std), pct(stats.RelErr(prop.Std, uniform.Std)))
	}
	t.AddNote("conservative RG estimate at p* = %.3f: mean %s A — %s the largest propagated mean",
		pStar, f(consRes.Mean), coversWord(consRes.Mean >= maxPropMean))
	t.AddNote("propagation is exact per gate under fanin independence (reconvergence ignored, as usual)")
	return t, nil
}

func coversWord(ok bool) string {
	if ok {
		return "covers"
	}
	return "does NOT cover"
}
