package experiments

import (
	"fmt"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// TemperatureConfig parameterizes the temperature sweep.
type TemperatureConfig struct {
	Proc *spatial.Process
	Hist *stats.Histogram
	// TempsK lists junction temperatures (default 300–400 K in 25 K steps).
	TempsK []float64
	// Side² gates are estimated.
	Side       int
	SignalProb float64
	Seed       int64
}

// TemperatureSweep is an extension beyond the paper (which characterizes
// at one operating point): the ISCAS cell subset is re-characterized at a
// ladder of junction temperatures and a fixed design is estimated at each.
// The mean grows steeply (roughly an order of magnitude per 100 K) while
// the relative spread narrows mildly — hotter devices sit higher on the
// leakage-vs-L curve where the log-slope |b| is smaller.
func TemperatureSweep(cfg TemperatureConfig) (*Table, error) {
	if cfg.Hist == nil {
		return nil, fmt.Errorf("experiments: TemperatureSweep needs a histogram")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if len(cfg.TempsK) == 0 {
		cfg.TempsK = []float64{300, 325, 350, 375, 400}
	}
	if cfg.Side == 0 {
		cfg.Side = 32
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	n := cfg.Side * cfg.Side
	w := float64(cfg.Side) * placement.DefaultSitePitch
	spec := core.DesignSpec{Hist: cfg.Hist, N: n, W: w, H: w, SignalProb: cfg.SignalProb}

	t := &Table{
		ID:     "EX3",
		Title:  fmt.Sprintf("temperature sweep (extension): full-chip leakage vs junction temperature (n=%d)", n),
		Header: []string{"T (K)", "mean (A)", "std (A)", "CV", "mean vs 300K"},
	}
	base := 0.0
	for _, temp := range cfg.TempsK {
		cellList, err := cells.AtTemperature(cells.ISCASSubset(), temp)
		if err != nil {
			return nil, err
		}
		lib, err := charlib.Characterize(cellList, charlib.Config{
			Process: spatial.Default90nm(),
			Seed:    cfg.Seed + 20070604,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: characterize at %g K: %w", temp, err)
		}
		model, err := core.NewModel(lib, cfg.Proc, spec, core.Analytic)
		if err != nil {
			return nil, err
		}
		res, err := model.EstimateLinear()
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Mean
		}
		t.AddRow(fmt.Sprintf("%.0f", temp), f(res.Mean), f(res.Std),
			fmt.Sprintf("%.4f", res.Std/res.Mean),
			fmt.Sprintf("%.1fx", res.Mean/base))
	}
	t.AddNote("characterization repeated per temperature; the estimation mathematics is unchanged")
	return t, nil
}
