package experiments

import (
	"fmt"
	"math"
	"time"

	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/gridmodel"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// GridCompareConfig parameterizes the grid-model comparison.
type GridCompareConfig struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Hist *stats.Histogram
	// Side² gates are analysed.
	Side int
	// GridDims lists the region resolutions to sweep.
	GridDims   []int
	Seed       int64
	SignalProb float64
}

// GridCompare contrasts the paper's Random-Gate estimator with a grid-based
// spatial-correlation model in the style of the prior late-mode work
// (reference [3]): both are compared against the exact O(n²) truth on the
// same placed circuit, with runtimes. The RG linear method needs only the
// high-level characteristics; the grid model needs the placement, and its
// accuracy depends on the region resolution relative to the correlation
// length.
func GridCompare(cfg GridCompareConfig) (*Table, error) {
	if cfg.Lib == nil || cfg.Hist == nil {
		return nil, fmt.Errorf("experiments: GridCompare needs a library and histogram")
	}
	if cfg.Proc == nil {
		cfg.Proc = ChipProcess()
	}
	if cfg.Side == 0 {
		cfg.Side = 32
	}
	if len(cfg.GridDims) == 0 {
		cfg.GridDims = []int{2, 4, 8, 16}
	}
	if cfg.SignalProb == 0 {
		cfg.SignalProb = 0.5
	}
	n := cfg.Side * cfg.Side
	arity := arityOf(cfg.Lib)
	rng := stats.NewRNG(cfg.Seed, "gridcompare")
	nl, err := netlist.RandomCircuit(rng, "gc", n, 16, cfg.Hist, arity)
	if err != nil {
		return nil, err
	}
	grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return nil, err
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		return nil, err
	}
	spec, err := core.ExtractSpec(nl, pl, cfg.SignalProb)
	if err != nil {
		return nil, err
	}
	// Truth and RG estimate use the same simplified mapping as the grid
	// model so the comparison isolates the spatial treatment.
	model, err := core.NewModel(cfg.Lib, cfg.Proc, spec, core.AnalyticSimplified)
	if err != nil {
		return nil, err
	}
	truth, err := core.TrueStats(model, nl, pl)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "EX2",
		Title:  fmt.Sprintf("RG estimator vs grid-based prior-work model (n=%d, vs exact O(n²) σ)", n),
		Header: []string{"method", "std (A)", "|err|", "time"},
	}
	start := time.Now()
	lin, err := model.EstimateLinear()
	if err != nil {
		return nil, err
	}
	t.AddRow("RG linear (Eq.17)", f(lin.Std),
		pct(math.Abs(stats.RelErr(lin.Std, truth.Std))), time.Since(start).Round(time.Microsecond).String())
	for _, dim := range cfg.GridDims {
		start = time.Now()
		gm, err := gridmodel.New(gridmodel.Config{
			Lib: cfg.Lib, Proc: cfg.Proc, GridDim: dim,
		}, pl.Grid)
		if err != nil {
			return nil, err
		}
		_, std, err := gm.Moments(nl, pl, cfg.SignalProb)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("grid model %d×%d", dim, dim), f(std),
			pct(math.Abs(stats.RelErr(std, truth.Std))), time.Since(start).Round(time.Microsecond).String())
	}
	t.AddNote("exact O(n²) σ = %s A", f(truth.Std))
	t.AddNote("the RG method reaches grid-model accuracy without needing the placement — the paper's point")
	return t, nil
}
