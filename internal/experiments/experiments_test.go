package experiments

import (
	"strconv"
	"strings"
	"testing"

	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/stats"
)

func iscasLib(t *testing.T) *charlib.Library {
	t.Helper()
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func smallHist(t *testing.T) *stats.Histogram {
	t.Helper()
	h, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 3, "NAND2_X1": 3, "NOR2_X1": 2, "XOR2_X1": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// lastCell extracts the numeric percentage in the given column of the last
// row of a table.
func cellPct(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tb.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", tb.Rows[row][col], err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestCellAccuracyDriver(t *testing.T) {
	tb, err := CellAccuracy(iscasLib(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Errorf("%d rows, want 8 (ISCAS subset)", len(tb.Rows))
	}
	if len(tb.Notes) != 2 {
		t.Errorf("expected paper-comparison notes, got %v", tb.Notes)
	}
	if _, err := CellAccuracy(nil); err == nil {
		t.Errorf("nil library accepted")
	}
}

func TestFig2Driver(t *testing.T) {
	tb, err := Fig2(Fig2Config{Lib: iscasLib(t), MCSamples: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Errorf("%d correlation points", len(tb.Rows))
	}
	// First row is ρ=0: analytic correlation must be ~0; last is ρ=1.
	if v, _ := strconv.ParseFloat(tb.Rows[0][2], 64); v > 0.01 {
		t.Errorf("analytic ρ_leak(0) = %g", v)
	}
	if v, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][2], 64); v < 0.9 {
		t.Errorf("analytic ρ_leak(1) = %g", v)
	}
	if _, err := Fig2(Fig2Config{}); err == nil {
		t.Errorf("nil library accepted")
	}
	if _, err := Fig2(Fig2Config{Lib: iscasLib(t), CellA: "NOPE", CellB: "NAND2_X1"}); err == nil {
		t.Errorf("unknown cell accepted")
	}
	if _, err := Fig2(Fig2Config{Lib: iscasLib(t), CellA: "INV_X1", CellB: "INV_X1", StateA: 99}); err == nil {
		t.Errorf("out-of-range state accepted")
	}
}

func TestFig3Driver(t *testing.T) {
	lib := iscasLib(t)
	nandHeavy, _ := stats.NewHistogram(map[string]float64{"NAND2_X1": 5, "INV_X1": 1})
	norHeavy, _ := stats.NewHistogram(map[string]float64{"NOR2_X1": 5, "INV_X1": 1})
	tb, err := Fig3(Fig3Config{
		Lib:      lib,
		Profiles: map[string]*stats.Histogram{"nand-heavy": nandHeavy, "nor-heavy": norHeavy},
		Steps:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Errorf("%d rows", len(tb.Rows))
	}
	// Normalized values must peak at exactly 1 somewhere per profile.
	for col := 1; col <= 2; col++ {
		peak := 0.0
		for _, row := range tb.Rows {
			v, _ := strconv.ParseFloat(row[col], 64)
			if v > peak {
				peak = v
			}
			if v <= 0 || v > 1.0001 {
				t.Errorf("normalized value %g out of (0,1]", v)
			}
		}
		if peak < 0.9999 {
			t.Errorf("profile column %d never reaches 1 (peak %g)", col, peak)
		}
	}
	if len(tb.Notes) != 2 {
		t.Errorf("expected one note per profile")
	}
	if _, err := Fig3(Fig3Config{Lib: lib}); err == nil {
		t.Errorf("missing profiles accepted")
	}
}

func TestFig6DriverShrinkingEnvelope(t *testing.T) {
	tb, err := Fig6(Fig6Config{
		Lib:   iscasLib(t),
		Hist:  smallHist(t),
		Sides: []int{8, 20},
		Reps:  4,
		Seed:  3,
		Mode:  core.Analytic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	small := cellPct(t, tb, 0, 5)
	large := cellPct(t, tb, 1, 5)
	t.Logf("envelope: n=64 → %.2f%%, n=400 → %.2f%%", small, large)
	if large >= small {
		t.Errorf("envelope did not shrink with size: %.2f%% → %.2f%%", small, large)
	}
	if _, err := Fig6(Fig6Config{Lib: iscasLib(t)}); err == nil {
		t.Errorf("incomplete config accepted")
	}
}

func TestTable1Driver(t *testing.T) {
	tb, err := Table1(Table1Config{
		Lib:   iscasLib(t),
		Seed:  5,
		Mode:  core.Analytic,
		Names: []string{"c432", "c499"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if e := cellPct(t, tb, i, 4); e > 10 {
			t.Errorf("%s: σ error %.2f%% too large for a late-mode estimate", row[0], e)
		}
	}
	if _, err := Table1(Table1Config{}); err == nil {
		t.Errorf("nil library accepted")
	}
}

func TestFig7DriverErrorShrinks(t *testing.T) {
	tb, err := Fig7(Fig7Config{
		Lib:   iscasLib(t),
		Hist:  smallHist(t),
		Sides: []int{8, 64},
		Mode:  core.Analytic,
	})
	if err != nil {
		t.Fatal(err)
	}
	small := cellPct(t, tb, 0, 3)
	large := cellPct(t, tb, 1, 3)
	t.Logf("integral err: n=64 → %.3f%%, n=4096 → %.3f%%", small, large)
	if large >= small {
		t.Errorf("integral error did not shrink: %.3f%% → %.3f%%", small, large)
	}
	// At n=4096 (die 128 µm > R=120 µm) polar must apply.
	if tb.Rows[1][4] == "n/a" {
		t.Errorf("polar should apply at n=4096")
	}
	if tb.Rows[0][4] != "n/a" {
		t.Errorf("polar should NOT apply at n=64 (die smaller than range)")
	}
}

func TestSimplifiedCorrDriver(t *testing.T) {
	tb, err := SimplifiedCorr(SimplifiedCorrConfig{
		Lib:   iscasLib(t),
		Hist:  smallHist(t),
		Sides: []int{16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // WID-only and WID+D2D
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for i := range tb.Rows {
		if e := cellPct(t, tb, i, 4); e > 6 {
			t.Errorf("row %d: simplified error %.2f%% above envelope", i, e)
		}
	}
}

func TestVtAblationDriver(t *testing.T) {
	tb, err := VtAblation(VtAblationConfig{
		Lib:     iscasLib(t),
		Hist:    smallHist(t),
		Sides:   []int{10},
		Samples: 400,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	ratio, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	factor, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	if ratio < factor*0.85 || ratio > factor*1.15 {
		t.Errorf("MC mean ratio %.3f far from analytic factor %.3f", ratio, factor)
	}
}

func TestNaiveBaselineDriver(t *testing.T) {
	tb, err := NaiveBaseline(NaiveBaselineConfig{
		Lib:   iscasLib(t),
		Hist:  smallHist(t),
		Sides: []int{8, 32},
		Mode:  core.Analytic,
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := strconv.ParseFloat(tb.Rows[0][3], 64)
	r1, _ := strconv.ParseFloat(tb.Rows[1][3], 64)
	if !(r1 < r0 && r0 < 1) {
		t.Errorf("naive/correlated ratios not shrinking below 1: %g, %g", r0, r1)
	}
}

func TestScalingDriver(t *testing.T) {
	tb, err := Scaling(ScalingConfig{
		Lib:       iscasLib(t),
		Hist:      smallHist(t),
		TrueSides: []int{8},
		FastSides: []int{16},
		Seed:      3,
		Mode:      core.Analytic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Errorf("expected at least true/linear/integral rows, got %d", len(tb.Rows))
	}
	methods := map[string]bool{}
	for _, row := range tb.Rows {
		methods[row[0]] = true
	}
	for _, want := range []string{"true O(n²)", "linear O(n)", "integral O(1)"} {
		if !methods[want] {
			t.Errorf("missing method %q", want)
		}
	}
}

func TestGateLeakAblationDriver(t *testing.T) {
	tb, err := GateLeakAblation(GateLeakConfig{
		Hist: smallHist(t),
		Side: 16,
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	base, _ := strconv.ParseFloat(tb.Rows[0][3], 64)
	gated, _ := strconv.ParseFloat(tb.Rows[1][3], 64)
	if !(gated < base) {
		t.Errorf("gate leakage should dilute the CV: %.4f vs %.4f", gated, base)
	}
	if _, err := GateLeakAblation(GateLeakConfig{}); err == nil {
		t.Errorf("missing histogram accepted")
	}
}

func TestGridCompareDriver(t *testing.T) {
	tb, err := GridCompare(GridCompareConfig{
		Lib:      iscasLib(t),
		Hist:     smallHist(t),
		Side:     16,
		GridDims: []int{2, 8},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 { // RG + two grid resolutions
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// The finer grid must beat the coarse one against the same truth.
	coarse := cellPct(t, tb, 1, 2)
	fine := cellPct(t, tb, 2, 2)
	if fine > coarse+0.5 {
		t.Errorf("finer grid worse: %.2f%% vs %.2f%%", fine, coarse)
	}
	if _, err := GridCompare(GridCompareConfig{}); err == nil {
		t.Errorf("empty config accepted")
	}
}

func TestTemperatureSweepDriver(t *testing.T) {
	tb, err := TemperatureSweep(TemperatureConfig{
		Hist:   smallHist(t),
		TempsK: []float64{300, 375},
		Side:   10,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	cold, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	hot, _ := strconv.ParseFloat(tb.Rows[1][1], 64)
	if hot < 3*cold {
		t.Errorf("75 K should multiply the mean several-fold: %g vs %g", hot, cold)
	}
	if _, err := TemperatureSweep(TemperatureConfig{}); err == nil {
		t.Errorf("missing histogram accepted")
	}
	if _, err := TemperatureSweep(TemperatureConfig{Hist: smallHist(t), TempsK: []float64{900}}); err == nil {
		t.Errorf("out-of-range temperature accepted")
	}
}

func TestSignalPropagationDriver(t *testing.T) {
	tb, err := SignalPropagation(SigPropConfig{
		Lib:        iscasLib(t),
		Hist:       smallHist(t),
		Side:       12,
		InputProbs: []float64{0.5},
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Propagated and uniform must be in the same ballpark (same circuit,
	// same physics), but generally different.
	dMean := cellPct(t, tb, 0, 3)
	if dMean > 40 || dMean < -40 {
		t.Errorf("Δmean %.1f%% implausibly large", dMean)
	}
	if !strings.Contains(tb.Notes[0], "covers") {
		t.Errorf("missing conservativeness note: %v", tb.Notes)
	}
	if _, err := SignalPropagation(SigPropConfig{}); err == nil {
		t.Errorf("empty config accepted")
	}
}

// TestDriversEmitClaims pins the machine-checkable claim names each
// experiment hands to the paperfigs conformance gate, and that every claim
// stays under the envelope recorded for it.
func TestDriversEmitClaims(t *testing.T) {
	lib := iscasLib(t)
	hist := smallHist(t)

	claimNames := func(tb *Table) map[string]int {
		m := map[string]int{}
		for _, c := range tb.Claims {
			m[c.Name]++
			if c.Value < 0 {
				t.Errorf("claim %s carries a negative magnitude %g", c.Name, c.Value)
			}
		}
		return m
	}

	cell, err := CellAccuracy(lib)
	if err != nil {
		t.Fatal(err)
	}
	got := claimNames(cell)
	if got["e1.mean_err_max"] != 1 || got["e1.std_err_max"] != 1 {
		t.Errorf("CellAccuracy claims = %v", got)
	}

	fig7, err := Fig7(Fig7Config{Lib: lib, Hist: hist, Sides: []int{5, 64}, Mode: core.Analytic})
	if err != nil {
		t.Fatal(err)
	}
	got = claimNames(fig7)
	if got["e7.integral_err"] != 2 {
		t.Errorf("Fig7 must claim one integral error per size; got %v", got)
	}
	// Polar succeeds only when the correlation range fits the die: at n=4096
	// it applies, at n=25 it does not.
	if got["e7.polar_err"] != 1 {
		t.Errorf("Fig7 polar claims = %v, want exactly the large size", got)
	}

	simpl, err := SimplifiedCorr(SimplifiedCorrConfig{Lib: lib, Hist: hist, Sides: []int{12}})
	if err != nil {
		t.Fatal(err)
	}
	if got = claimNames(simpl); got["e6.simpl_err_worst"] != 1 {
		t.Errorf("SimplifiedCorr claims = %v", got)
	}
}
