package placement

import (
	"math"
	"testing"
	"testing/quick"

	"leakest/internal/stats"
)

func TestNewGridShape(t *testing.T) {
	g, err := NewGrid(100, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 10 || g.Cols != 10 {
		t.Errorf("100-site square grid = %dx%d", g.Rows, g.Cols)
	}
	if g.W() != 20 || g.H() != 20 || g.Area() != 400 {
		t.Errorf("geometry wrong: W=%g H=%g A=%g", g.W(), g.H(), g.Area())
	}
	// Wide aspect.
	g, _ = NewGrid(100, 2, 2, 4)
	if g.Cols <= g.Rows {
		t.Errorf("aspect 4 grid not wide: %dx%d", g.Rows, g.Cols)
	}
	if g.Sites() < 100 {
		t.Errorf("grid has too few sites: %d", g.Sites())
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(0, 2, 2, 1); err == nil {
		t.Errorf("zero sites accepted")
	}
	if _, err := NewGrid(10, 0, 2, 1); err == nil {
		t.Errorf("zero pitch accepted")
	}
	// Non-positive aspect defaults to square rather than failing.
	g, err := NewGrid(16, 2, 2, -1)
	if err != nil || g.Rows != 4 || g.Cols != 4 {
		t.Errorf("negative aspect: %v %dx%d", err, g.Rows, g.Cols)
	}
}

// Property: grids always cover n with minimal row excess.
func TestNewGridCoversN(t *testing.T) {
	f := func(n uint16) bool {
		num := int(n%5000) + 1
		g, err := NewGrid(num, 2, 2, 1)
		if err != nil {
			return false
		}
		return g.Sites() >= num && g.Sites()-num < g.Cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowMajorPositions(t *testing.T) {
	g, _ := NewGrid(6, 2, 3, 1)
	p, err := RowMajor(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, y := p.Pos(0)
	if x != 1 || y != 1.5 {
		t.Errorf("gate 0 at (%g, %g), want (1, 1.5)", x, y)
	}
	// Neighbour in the same row is one pitch away.
	if d := p.Dist(0, 1); d != 2 {
		t.Errorf("horizontal neighbour distance = %g", d)
	}
	// Distances are symmetric and zero on the diagonal.
	if p.Dist(2, 5) != p.Dist(5, 2) || p.Dist(3, 3) != 0 {
		t.Errorf("distance symmetry violated")
	}
}

func TestRandomPlacementDistinctSites(t *testing.T) {
	g, _ := NewGrid(50, 2, 2, 1)
	rng := stats.NewRNG(4, "placement")
	p, err := Random(rng, g, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range p.Site {
		if seen[s] {
			t.Fatalf("site %d assigned twice", s)
		}
		if s < 0 || s >= g.Sites() {
			t.Fatalf("site %d out of range", s)
		}
		seen[s] = true
	}
}

func TestPlacementOverflow(t *testing.T) {
	g, _ := NewGrid(4, 2, 2, 1)
	if _, err := RowMajor(g, 100); err == nil {
		t.Errorf("overfull RowMajor accepted")
	}
	rng := stats.NewRNG(1, "overflow")
	if _, err := Random(rng, g, 100); err == nil {
		t.Errorf("overfull Random accepted")
	}
}

func TestMaxDist(t *testing.T) {
	g, _ := NewGrid(100, 2, 2, 1)
	want := math.Hypot(g.W(), g.H())
	if g.MaxDist() != want {
		t.Errorf("MaxDist = %g, want %g", g.MaxDist(), want)
	}
}

// Property: LagDist of a lag class matches Dist of every site pair in that
// class bitwise at the default (power-of-two) pitch — the invariant that lets
// the distance-class kernel tables reuse per-pair golden values unchanged.
func TestLagDistMatchesPairDist(t *testing.T) {
	g, _ := NewGrid(64, DefaultSitePitch, DefaultSitePitch, 1)
	p, err := RowMajor(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		ri, ci := p.RowCol(i)
		for j := 0; j < 64; j++ {
			rj, cj := p.RowCol(j)
			want := p.Dist(i, j)
			if got := g.LagDist(ri-rj, ci-cj); got != want {
				t.Fatalf("LagDist(%d,%d) = %v, Dist(%d,%d) = %v", ri-rj, ci-cj, got, i, j, want)
			}
		}
	}
	// Sign of the lag must not matter.
	if g.LagDist(-3, 5) != g.LagDist(3, -5) {
		t.Error("LagDist not symmetric in lag sign")
	}
}

func TestRowCol(t *testing.T) {
	g := Grid{Rows: 4, Cols: 7, SiteW: 2, SiteH: 2}
	p, err := RowMajor(g, g.Sites())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Site {
		r, c := p.RowCol(i)
		if r*g.Cols+c != p.Site[i] {
			t.Fatalf("RowCol(%d) = (%d,%d), site %d", i, r, c, p.Site[i])
		}
		x, y := p.Pos(i)
		if cx, cy := g.Center(r, c); x != cx || y != cy {
			t.Fatalf("Pos(%d) = (%g,%g) but Center(%d,%d) = (%g,%g)", i, x, y, r, c, cx, cy)
		}
	}
}

func TestAutoGrid(t *testing.T) {
	g, err := AutoGrid(11236) // 106², the paper's largest Fig. 6 size
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 106 || g.Cols != 106 {
		t.Errorf("AutoGrid(11236) = %dx%d, want 106x106", g.Rows, g.Cols)
	}
	if g.SiteW != DefaultSitePitch {
		t.Errorf("pitch = %g", g.SiteW)
	}
}
