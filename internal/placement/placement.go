// Package placement places netlist gates on the uniform rectangular site
// grid of the paper's full-chip model (Fig. 4): k rows × m columns of
// identical sites of size ΔW × ΔH, where a site's area is the average cell
// area including its share of routing. Distances between placed gates drive
// the spatial-correlation terms of the leakage variance.
package placement

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultSitePitch is the default site edge length in µm. At 2 µm × 2 µm a
// site corresponds to ≈250k placeable gates per mm², representative of
// 90 nm standard-cell densities with routing overhead.
const DefaultSitePitch = 2.0

// Grid is a k-rows × m-cols array of uniform sites.
type Grid struct {
	Rows, Cols   int
	SiteW, SiteH float64
}

// NewGrid builds the most nearly square grid with at least n sites for the
// given target aspect ratio W/H (aspect 1 gives a square array). The grid
// has Cols·Rows ≥ n with the smallest excess.
func NewGrid(n int, siteW, siteH, aspect float64) (Grid, error) {
	if n <= 0 {
		return Grid{}, fmt.Errorf("placement: site count %d must be positive", n)
	}
	if siteW <= 0 || siteH <= 0 {
		return Grid{}, fmt.Errorf("placement: non-positive site pitch %g×%g", siteW, siteH)
	}
	if aspect <= 0 {
		aspect = 1
	}
	// Want m·ΔW / (k·ΔH) ≈ aspect with k·m ≥ n.
	m := int(math.Round(math.Sqrt(float64(n) * aspect * siteH / siteW)))
	if m < 1 {
		m = 1
	}
	k := (n + m - 1) / m
	return Grid{Rows: k, Cols: m, SiteW: siteW, SiteH: siteH}, nil
}

// Sites returns the total number of sites.
func (g Grid) Sites() int { return g.Rows * g.Cols }

// W returns the die width m·ΔW in µm.
func (g Grid) W() float64 { return float64(g.Cols) * g.SiteW }

// H returns the die height k·ΔH in µm.
func (g Grid) H() float64 { return float64(g.Rows) * g.SiteH }

// Area returns the die area in µm².
func (g Grid) Area() float64 { return g.W() * g.H() }

// Center returns the centre coordinates of the site at (row, col).
func (g Grid) Center(row, col int) (x, y float64) {
	return (float64(col) + 0.5) * g.SiteW, (float64(row) + 0.5) * g.SiteH
}

// Placement assigns each of n gates to a distinct site of a grid.
type Placement struct {
	Grid Grid
	// Site[i] is the site index (row-major) of gate i.
	Site []int
}

// RowMajor places n gates on the grid in row-major order.
func RowMajor(g Grid, n int) (*Placement, error) {
	if n > g.Sites() {
		return nil, fmt.Errorf("placement: %d gates exceed %d sites", n, g.Sites())
	}
	p := &Placement{Grid: g, Site: make([]int, n)}
	for i := range p.Site {
		p.Site[i] = i
	}
	return p, nil
}

// Random places n gates on distinct uniformly random sites of the grid —
// the placement model for the randomly generated circuits of §3.1.1.
func Random(rng *rand.Rand, g Grid, n int) (*Placement, error) {
	if n > g.Sites() {
		return nil, fmt.Errorf("placement: %d gates exceed %d sites", n, g.Sites())
	}
	perm := rng.Perm(g.Sites())
	p := &Placement{Grid: g, Site: perm[:n]}
	return p, nil
}

// Pos returns the coordinates of gate i in µm.
func (p *Placement) Pos(i int) (x, y float64) {
	s := p.Site[i]
	return p.Grid.Center(s/p.Grid.Cols, s%p.Grid.Cols)
}

// Dist returns the Euclidean centre-to-centre distance between gates i and
// j in µm.
func (p *Placement) Dist(i, j int) float64 {
	xi, yi := p.Pos(i)
	xj, yj := p.Pos(j)
	return math.Hypot(xi-xj, yi-yj)
}

// MaxDist returns the largest possible distance on the grid (the diagonal).
func (g Grid) MaxDist() float64 { return math.Hypot(g.W(), g.H()) }

// LagDist returns the centre-to-centre distance of two sites separated by
// dr rows and dc columns — the canonical distance of one (|Δrow|, |Δcol|)
// lag class. On a grid there are only Rows·Cols distinct classes, which the
// distance-class kernel tables (core.TrueStats) and the circulant-embedding
// sampler (randvar) key off. At the default power-of-two site pitch the
// products below are exact, so LagDist agrees bitwise with the Dist of any
// site pair in the class.
func (g Grid) LagDist(dr, dc int) float64 {
	return math.Hypot(float64(dc)*g.SiteW, float64(dr)*g.SiteH)
}

// RowCol returns the grid row and column of gate i.
func (p *Placement) RowCol(i int) (row, col int) {
	s := p.Site[i]
	return s / p.Grid.Cols, s % p.Grid.Cols
}

// AutoGrid builds a square-aspect grid for n gates at the default site
// pitch — the common case throughout the experiments.
func AutoGrid(n int) (Grid, error) {
	return NewGrid(n, DefaultSitePitch, DefaultSitePitch, 1)
}
