package placement

import "testing"

func TestTileEdges(t *testing.T) {
	cases := []struct {
		dim, t int
		want   []int
	}{
		{10, 2, []int{0, 5, 10}},
		{10, 3, []int{0, 3, 6, 10}},
		{1, 4, []int{0, 1}}, // t clamped to dim
		{5, 0, []int{0, 5}}, // t clamped to 1
		{7, 7, []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}
	for _, c := range cases {
		got := TileEdges(c.dim, c.t)
		if len(got) != len(c.want) {
			t.Fatalf("TileEdges(%d,%d) = %v, want %v", c.dim, c.t, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("TileEdges(%d,%d) = %v, want %v", c.dim, c.t, got, c.want)
			}
		}
	}
}

// TestPartitionCovers checks that every site lands in exactly one tile and
// the tiles come back in row-major tile order.
func TestPartitionCovers(t *testing.T) {
	grids := []Grid{
		{Rows: 24, Cols: 24, SiteW: 2, SiteH: 2},
		{Rows: 4, Cols: 64, SiteW: 2, SiteH: 2},
		{Rows: 1, Cols: 1, SiteW: 2, SiteH: 2},
		{Rows: 5, Cols: 3, SiteW: 1.5, SiteH: 2.5},
	}
	for _, g := range grids {
		for _, tt := range []int{1, 2, 3, 5, 8} {
			tiles := Partition(g, tt)
			seen := make([]int, g.Sites())
			for idx, tile := range tiles {
				if tile.Rows() <= 0 || tile.Cols() <= 0 {
					t.Fatalf("grid %v t=%d: tile %d empty: %+v", g, tt, idx, tile)
				}
				if tile.Sites() != tile.Rows()*tile.Cols() {
					t.Fatalf("grid %v t=%d: tile %d Sites mismatch", g, tt, idx)
				}
				for r := tile.Row0; r < tile.Row1; r++ {
					for c := tile.Col0; c < tile.Col1; c++ {
						if !tile.Contains(r, c) {
							t.Fatalf("grid %v t=%d: tile %d !Contains(%d,%d)", g, tt, idx, r, c)
						}
						seen[r*g.Cols+c]++
					}
				}
			}
			for s, n := range seen {
				if n != 1 {
					t.Fatalf("grid %v t=%d: site %d covered %d times", g, tt, s, n)
				}
			}
			// Row-major tile order: Row0 non-decreasing, Col0 increasing
			// within a tile row.
			for i := 1; i < len(tiles); i++ {
				a, b := tiles[i-1], tiles[i]
				if b.Row0 < a.Row0 || (b.Row0 == a.Row0 && b.Col0 <= a.Col0) {
					t.Fatalf("grid %v t=%d: tiles not in row-major order at %d", g, tt, i)
				}
			}
		}
	}
}

func TestTileCentroid(t *testing.T) {
	g := Grid{Rows: 10, Cols: 10, SiteW: 2, SiteH: 3}
	tile := Tile{Row0: 0, Row1: 5, Col0: 5, Col1: 10}
	x, y := tile.Centroid(g)
	if x != 15 || y != 7.5 {
		t.Fatalf("Centroid = (%g, %g), want (15, 7.5)", x, y)
	}
}
