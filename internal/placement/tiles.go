package placement

// Tile is one rectangle of a T×T die partition, half-open in both
// dimensions: rows [Row0, Row1), columns [Col0, Col1) of the site grid.
type Tile struct {
	Row0, Row1 int
	Col0, Col1 int
}

// Rows returns the tile's row extent.
func (t Tile) Rows() int { return t.Row1 - t.Row0 }

// Cols returns the tile's column extent.
func (t Tile) Cols() int { return t.Col1 - t.Col0 }

// Sites returns the number of sites the tile covers.
func (t Tile) Sites() int { return t.Rows() * t.Cols() }

// Contains reports whether the site at (row, col) falls inside the tile.
func (t Tile) Contains(row, col int) bool {
	return row >= t.Row0 && row < t.Row1 && col >= t.Col0 && col < t.Col1
}

// Centroid returns the tile's geometric center in die coordinates under
// the given grid's site pitch — the point the inter-tile covariance is
// evaluated at for the centroid-granularity estimators.
func (t Tile) Centroid(g Grid) (x, y float64) {
	x = (float64(t.Col0+t.Col1) / 2) * g.SiteW
	y = (float64(t.Row0+t.Row1) / 2) * g.SiteH
	return x, y
}

// TileEdges returns the t+1 partition boundaries of a dimension of extent
// dim: edges[i] = i·dim/t, so consecutive tiles differ in size by at most
// one site and the union covers [0, dim) exactly. t is clamped to [1, dim]
// (a dimension cannot be split finer than its site count).
func TileEdges(dim, t int) []int {
	if t < 1 {
		t = 1
	}
	if t > dim {
		t = dim
	}
	edges := make([]int, t+1)
	for i := 0; i <= t; i++ {
		edges[i] = i * dim / t
	}
	return edges
}

// Partition splits the grid into a T×T arrangement of tiles, returned in
// row-major tile order (tile index = tileRow·tilesAcross + tileCol). T is
// clamped per dimension to the site extent, so degenerate grids (1×N, or
// T larger than a side) still partition cleanly; the result covers every
// site exactly once.
func Partition(g Grid, t int) []Tile {
	rowEdges := TileEdges(g.Rows, t)
	colEdges := TileEdges(g.Cols, t)
	tr := len(rowEdges) - 1
	tc := len(colEdges) - 1
	tiles := make([]Tile, 0, tr*tc)
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			tiles = append(tiles, Tile{
				Row0: rowEdges[r], Row1: rowEdges[r+1],
				Col0: colEdges[c], Col1: colEdges[c+1],
			})
		}
	}
	return tiles
}
