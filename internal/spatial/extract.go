package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"leakest/internal/telemetry"
)

// This file provides robust extraction of a spatial correlation model from
// noisy measured correlation samples — the capability the paper assumes
// from its reference [5] (Xiong, Zolotov, He, "Robust extraction of spatial
// correlation", ISPD 2006). Raw empirical correlations from limited test
// structures are noisy and generally not a valid (positive-semidefinite)
// correlation function; constraining the fit to a parametric family
// restores validity while following the data.

// CorrSample is one measured correlation at a separation distance.
type CorrSample struct {
	// D is the separation in µm.
	D float64
	// Rho is the measured correlation in [-1, 1].
	Rho float64
}

// CorrFit is the outcome of fitting a correlation family to measurements.
type CorrFit struct {
	// Func is the fitted, valid correlation function.
	Func CorrFunc
	// Family names the fitted family ("exp", "gauss", "spherical",
	// "truncexp").
	Family string
	// RMSE is the root-mean-square residual of the fit.
	RMSE float64
	// Floor is the fitted distance-independent component (the D2D share of
	// the total correlation); subtracted before fitting the decaying part.
	Floor float64
}

// rmseFor evaluates the fit quality of a candidate function with floor c:
// model(d) = c + (1−c)·ρ(d).
func rmseFor(f CorrFunc, floor float64, samples []CorrSample) float64 {
	s := 0.0
	for _, smp := range samples {
		m := floor + (1-floor)*f.Rho(smp.D)
		r := m - smp.Rho
		s += r * r
	}
	return math.Sqrt(s / float64(len(samples)))
}

// fitScale golden-sections a single positive scale parameter against RMSE.
func fitScale(build func(scale float64) CorrFunc, floor float64, samples []CorrSample, lo, hi float64) (CorrFunc, float64) {
	const phi = 0.6180339887498949
	// Work in log-space: scales span decades.
	llo, lhi := math.Log(lo), math.Log(hi)
	x1 := lhi - phi*(lhi-llo)
	x2 := llo + phi*(lhi-llo)
	f1 := rmseFor(build(math.Exp(x1)), floor, samples)
	f2 := rmseFor(build(math.Exp(x2)), floor, samples)
	for i := 0; i < 60; i++ {
		if f1 < f2 {
			lhi, x2, f2 = x2, x1, f1
			x1 = lhi - phi*(lhi-llo)
			f1 = rmseFor(build(math.Exp(x1)), floor, samples)
		} else {
			llo, x1, f1 = x1, x2, f2
			x2 = llo + phi*(lhi-llo)
			f2 = rmseFor(build(math.Exp(x2)), floor, samples)
		}
	}
	best := math.Exp(0.5 * (llo + lhi))
	return build(best), rmseFor(build(best), floor, samples)
}

// FitCorrFunc fits each built-in correlation family to the samples and
// returns the best by RMSE. The floor (D2D component) is estimated from the
// far-distance samples; the returned Func models the *within-die* part, to
// be combined with the floor through Process.SigmaD2D/SigmaWID as
//
//	σ_D2D²/(σ_D2D²+σ_WID²) = Floor.
//
// At least four samples spanning distinct distances are required.
func FitCorrFunc(samples []CorrSample) (CorrFit, error) {
	defer telemetry.TimeStage("spatial.fitcorr")()
	if len(samples) < 4 {
		return CorrFit{}, fmt.Errorf("spatial: need ≥4 correlation samples, got %d", len(samples))
	}
	sorted := append([]CorrSample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].D < sorted[j].D })
	if sorted[0].D < 0 {
		return CorrFit{}, fmt.Errorf("spatial: negative distance %g", sorted[0].D)
	}
	if sorted[0].D == sorted[len(sorted)-1].D {
		return CorrFit{}, fmt.Errorf("spatial: all samples at the same distance")
	}
	for _, s := range sorted {
		if s.Rho < -1 || s.Rho > 1 {
			return CorrFit{}, fmt.Errorf("spatial: correlation %g outside [-1, 1]", s.Rho)
		}
	}
	dMax := sorted[len(sorted)-1].D

	// Floor estimate: mean of the farthest quartile, clamped to [0, 0.95].
	q := len(sorted) / 4
	if q < 1 {
		q = 1
	}
	floor := 0.0
	for _, s := range sorted[len(sorted)-q:] {
		floor += s.Rho
	}
	floor /= float64(q)
	if floor < 0 {
		floor = 0
	}
	if floor > 0.95 {
		floor = 0.95
	}

	best := CorrFit{RMSE: math.Inf(1)}
	lo, hi := dMax/1e3, dMax*10
	// A small far-distance mean can be measurement noise rather than a real
	// D2D floor, so each family is fitted both with the estimated floor and
	// without one; the best residual wins.
	for _, fl := range []float64{floor, 0} {
		try := func(family string, fn CorrFunc, rmse float64) {
			if rmse < best.RMSE {
				best = CorrFit{Func: fn, Family: family, RMSE: rmse, Floor: fl}
			}
		}
		fn, rmse := fitScale(func(s float64) CorrFunc { return ExpCorr{Lambda: s} }, fl, sorted, lo, hi)
		try("exp", fn, rmse)
		fn, rmse = fitScale(func(s float64) CorrFunc { return GaussCorr{Lambda: s} }, fl, sorted, lo, hi)
		try("gauss", fn, rmse)
		fn, rmse = fitScale(func(s float64) CorrFunc { return SphericalCorr{R: s} }, fl, sorted, lo, hi)
		try("spherical", fn, rmse)
		// Truncated exponential: scan the truncation multiple, fit λ per
		// value.
		for _, mult := range []float64{3, 4, 6, 8} {
			fn, rmse = fitScale(func(s float64) CorrFunc {
				return TruncatedExpCorr{Lambda: s, R: mult * s}
			}, fl, sorted, lo, hi)
			try("truncexp", fn, rmse)
		}
		if fl == 0 {
			break // both branches identical when the estimate is zero
		}
	}
	return best, nil
}

// BuildProcess assembles a Process from a correlation fit and the total
// channel-length statistics: the fitted floor becomes the D2D variance
// share and the fitted function the WID correlation.
func (cf CorrFit) BuildProcess(lNominal, sigmaTotal, sigmaVt float64) (*Process, error) {
	if cf.Func == nil {
		return nil, fmt.Errorf("spatial: empty correlation fit")
	}
	vTot := sigmaTotal * sigmaTotal
	p := &Process{
		LNominal: lNominal,
		SigmaD2D: math.Sqrt(vTot * cf.Floor),
		SigmaWID: math.Sqrt(vTot * (1 - cf.Floor)),
		WIDCorr:  cf.Func,
		SigmaVt:  sigmaVt,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SimulateCorrMeasurement produces noisy correlation samples from a true
// process, emulating test-structure extraction: nPairs device pairs per
// distance, whose finite sample size injects ~1/√nPairs noise. Used by the
// extraction tests and the process-extraction example.
func SimulateCorrMeasurement(rng *rand.Rand, proc *Process, distances []float64, nPairs int) []CorrSample {
	if nPairs < 8 {
		nPairs = 8
	}
	out := make([]CorrSample, 0, len(distances))
	for _, d := range distances {
		rho := proc.TotalCorr(d)
		// Sample correlation of a bivariate normal with nPairs pairs:
		// approximately Normal(ρ, (1−ρ²)/√n) via the Fisher transform.
		z := math.Atanh(clampRho(rho)) + rng.NormFloat64()/math.Sqrt(float64(nPairs-3))
		out = append(out, CorrSample{D: d, Rho: math.Tanh(z)})
	}
	return out
}

func clampRho(r float64) float64 {
	const eps = 1e-9
	if r > 1-eps {
		return 1 - eps
	}
	if r < -1+eps {
		return -1 + eps
	}
	return r
}
