package spatial

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// FuzzProcessJSON asserts the Process wire format is total and stable:
// arbitrary bytes either fail to parse or yield a process that survives a
// marshal/unmarshal round trip unchanged.
func FuzzProcessJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"l_nominal_um":0.09,"sigma_d2d_um":0.0025,"sigma_wid_um":0.0025,"sigma_vt_v":0.03,"wid_corr":{"type":"truncexp","lambda":1000,"r":4000}}`,
		`{"wid_corr":{"type":"exp","lambda":30}}`,
		`{"wid_corr":{"type":"gauss","lambda":0.5}}`,
		`{"wid_corr":{"type":"spherical","r":120}}`,
		`{"wid_corr":{"type":"none"}}`,
		`{"wid_corr":{"type":""}}`,
		// Shapes the parser must reject: unknown type, non-positive and
		// boundary-abusing lengths (JSON has no NaN, but 1e999 overflows).
		`{"wid_corr":{"type":"bogus"}}`,
		`{"wid_corr":{"type":"exp","lambda":0}}`,
		`{"wid_corr":{"type":"exp","lambda":-1}}`,
		`{"wid_corr":{"type":"truncexp","lambda":1e999,"r":1}}`,
		`{"l_nominal_um":"not a number"}`,
		`[1,2,3]`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Process
		if err := json.Unmarshal(data, &p); err != nil {
			return
		}
		// A parsed correlation must be usable: the spec validation bounds
		// its parameters, so Rho must stay within [0, 1] at any distance.
		if p.WIDCorr != nil {
			for _, d := range []float64{0, 1e-6, 1, 1e3, 1e12} {
				rho := p.WIDCorr.Rho(d)
				if math.IsNaN(rho) || rho < 0 || rho > 1 {
					t.Fatalf("Rho(%g) = %g outside [0, 1] for %s", d, rho, p.WIDCorr.Name())
				}
			}
			if r := p.WIDCorr.Range(); !(r > 0) {
				t.Fatalf("Range() = %g, want positive (or +Inf)", r)
			}
		}
		out, err := json.Marshal(&p)
		if err != nil {
			t.Fatalf("re-marshal of a parsed process failed: %v", err)
		}
		var back Process
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to parse: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip changed the process:\n first: %+v\nsecond: %+v", p, back)
		}
	})
}

// FuzzCorrSpecBuild drives Build with raw field values — including the
// NaN/Inf corners JSON cannot encode — and asserts a successful build
// always yields a well-behaved correlation function.
func FuzzCorrSpecBuild(f *testing.F) {
	f.Add("exp", 30.0, 0.0)
	f.Add("gauss", 0.5, 0.0)
	f.Add("spherical", 0.0, 120.0)
	f.Add("truncexp", 1000.0, 4000.0)
	f.Add("truncexp", 1e-300, 1e300)
	f.Add("none", 0.0, 0.0)
	f.Add("exp", math.NaN(), 0.0)
	f.Add("truncexp", math.Inf(1), 1.0)
	f.Add("spherical", 0.0, -5.0)
	f.Add("bogus", 1.0, 1.0)
	f.Fuzz(func(t *testing.T, typ string, lambda, r float64) {
		spec := CorrSpec{Type: typ, Lambda: lambda, R: r}
		c, err := spec.Build()
		if err != nil {
			return
		}
		if c == nil {
			return // the "none" spec
		}
		if rho := c.Rho(0); math.Abs(rho-1) > 1e-12 {
			t.Fatalf("Rho(0) = %g, want 1 for %s", rho, c.Name())
		}
		prev := math.Inf(1)
		for _, d := range []float64{0, 1e-9, 1e-3, 1, 1e3, 1e9, 1e300} {
			rho := c.Rho(d)
			if math.IsNaN(rho) || rho < 0 || rho > 1 {
				t.Fatalf("Rho(%g) = %g outside [0, 1] for %s", d, rho, c.Name())
			}
			if rho > prev+1e-12 {
				t.Fatalf("Rho not non-increasing at d=%g for %s: %g > %g", d, c.Name(), rho, prev)
			}
			prev = rho
		}
		if rng := c.Range(); !(rng > 0) {
			t.Fatalf("Range() = %g, want positive (or +Inf) for %s", rng, c.Name())
		}
		// A built function must serialize back to a spec that rebuilds to
		// the identical function.
		back, err := SpecOf(c)
		if err != nil {
			t.Fatalf("SpecOf(%s): %v", c.Name(), err)
		}
		c2, err := back.Build()
		if err != nil {
			t.Fatalf("rebuilding %s from its own spec: %v", c.Name(), err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("spec round trip changed the function: %#v vs %#v", c, c2)
		}
	})
}
