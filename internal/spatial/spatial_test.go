package spatial

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func corrFuncs() []CorrFunc {
	return []CorrFunc{
		ExpCorr{Lambda: 500},
		GaussCorr{Lambda: 800},
		SphericalCorr{R: 2000},
		TruncatedExpCorr{Lambda: 500, R: 2500},
	}
}

func TestCorrFuncAxioms(t *testing.T) {
	for _, cf := range corrFuncs() {
		if r0 := cf.Rho(0); math.Abs(r0-1) > 1e-12 {
			t.Errorf("%s: ρ(0) = %g, want 1", cf.Name(), r0)
		}
		prev := 1.0
		for d := 0.0; d <= 5000; d += 50 {
			r := cf.Rho(d)
			if r < -1e-12 || r > 1+1e-12 {
				t.Errorf("%s: ρ(%g) = %g out of [0,1]", cf.Name(), d, r)
			}
			if r > prev+1e-12 {
				t.Errorf("%s: ρ not non-increasing at d=%g (%g > %g)", cf.Name(), d, r, prev)
			}
			prev = r
		}
		if cf.Name() == "" {
			t.Errorf("empty name")
		}
	}
}

func TestFiniteSupport(t *testing.T) {
	s := SphericalCorr{R: 1000}
	if s.Rho(1000) != 0 || s.Rho(1500) != 0 {
		t.Errorf("spherical must vanish beyond R")
	}
	if s.Range() != 1000 {
		t.Errorf("Range = %g", s.Range())
	}
	te := TruncatedExpCorr{Lambda: 300, R: 1200}
	if te.Rho(1200) != 0 {
		t.Errorf("truncexp must vanish at R")
	}
	// Continuity at the truncation point.
	if v := te.Rho(1200 - 1e-9); math.Abs(v) > 1e-10 {
		t.Errorf("truncexp discontinuous at R: ρ(R⁻) = %g", v)
	}
	if !math.IsInf(ExpCorr{Lambda: 1}.Range(), 1) {
		t.Errorf("exp Range should be +Inf")
	}
	if !math.IsInf(GaussCorr{Lambda: 1}.Range(), 1) {
		t.Errorf("gauss Range should be +Inf")
	}
}

func TestTruncatedExpApproximatesExp(t *testing.T) {
	lam := 400.0
	e := ExpCorr{Lambda: lam}
	te := TruncatedExpCorr{Lambda: lam, R: 10 * lam}
	for d := 0.0; d < 3*lam; d += 37 {
		if diff := math.Abs(e.Rho(d) - te.Rho(d)); diff > 1e-3 {
			t.Errorf("d=%g: |exp−truncexp| = %g", d, diff)
		}
	}
}

func TestProcessValidate(t *testing.T) {
	p := Default90nm()
	if err := p.Validate(); err != nil {
		t.Fatalf("default process invalid: %v", err)
	}
	bad := []*Process{
		{LNominal: 0, SigmaWID: 0.001, WIDCorr: ExpCorr{Lambda: 1}},
		{LNominal: 0.09, SigmaD2D: -1},
		{LNominal: 0.09},
		{LNominal: 0.09, SigmaWID: 0.001, WIDCorr: nil},
		{LNominal: 0.09, SigmaWID: 0.001, WIDCorr: ExpCorr{Lambda: 1}, SigmaVt: -0.1},
		{LNominal: 0.09, SigmaWID: 0.05, WIDCorr: ExpCorr{Lambda: 1}}, // >25% of L
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad process %d accepted", i)
		}
	}
}

func TestTotalSigmaAndCorr(t *testing.T) {
	p := &Process{
		LNominal: 0.09,
		SigmaD2D: 0.003,
		SigmaWID: 0.004,
		WIDCorr:  ExpCorr{Lambda: 1000},
	}
	if got := p.TotalSigma(); math.Abs(got-0.005) > 1e-15 {
		t.Errorf("TotalSigma = %g, want 0.005 (3-4-5)", got)
	}
	// ρ(0) = 1 regardless of split.
	if got := p.TotalCorr(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("TotalCorr(0) = %g", got)
	}
	// At infinity, the D2D floor remains: 9/25.
	if got := p.TotalCorr(1e12); math.Abs(got-0.36) > 1e-9 {
		t.Errorf("TotalCorr(∞) = %g, want 0.36", got)
	}
	if got := p.CorrFloor(); math.Abs(got-0.36) > 1e-12 {
		t.Errorf("CorrFloor = %g, want 0.36", got)
	}
	// WID-only process: floor is zero.
	w := p.WIDOnly()
	if w.CorrFloor() != 0 {
		t.Errorf("WIDOnly floor = %g", w.CorrFloor())
	}
	if w.SigmaD2D != 0 || p.SigmaD2D == 0 {
		t.Errorf("WIDOnly must zero D2D without mutating the original")
	}
	// Degenerate process (no variation): correlation 0 by convention.
	z := &Process{LNominal: 0.09}
	if z.TotalCorr(5) != 0 || z.CorrFloor() != 0 {
		t.Errorf("zero-variation process should report zero correlation")
	}
}

// Property: TotalCorr is within [floor, 1] and non-increasing for all
// correlation families and random D2D/WID splits.
func TestTotalCorrProperty(t *testing.T) {
	f := func(split float64, famIdx uint8) bool {
		split = math.Abs(math.Mod(split, 1))
		fams := corrFuncs()
		p := &Process{
			LNominal: 0.09,
			SigmaD2D: 0.005 * math.Sqrt(split),
			SigmaWID: 0.005 * math.Sqrt(1-split),
			WIDCorr:  fams[int(famIdx)%len(fams)],
		}
		floor := p.CorrFloor()
		prev := 1.0
		for d := 0.0; d <= 6000; d += 100 {
			r := p.TotalCorr(d)
			if r < floor-1e-9 || r > 1+1e-9 || r > prev+1e-9 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEffectiveRange(t *testing.T) {
	p := &Process{
		LNominal: 0.09,
		SigmaWID: 0.004,
		WIDCorr:  ExpCorr{Lambda: 1000},
	}
	r := p.EffectiveRange(1e-3)
	// exp(−r/1000) = 1e-3 ⇒ r ≈ 6907.8.
	if math.Abs(r-1000*math.Log(1000)) > 1 {
		t.Errorf("EffectiveRange = %g, want ≈ %g", r, 1000*math.Log(1000))
	}
	// Finite support wins.
	p.WIDCorr = SphericalCorr{R: 1234}
	if got := p.EffectiveRange(1e-3); got != 1234 {
		t.Errorf("finite-support EffectiveRange = %g, want 1234", got)
	}
	// No WID variation ⇒ zero range.
	p2 := &Process{LNominal: 0.09, SigmaD2D: 0.005}
	if got := p2.EffectiveRange(1e-3); got != 0 {
		t.Errorf("no-WID EffectiveRange = %g", got)
	}
	// eps ≤ 0 defaults sanely rather than looping forever.
	p.WIDCorr = ExpCorr{Lambda: 10}
	if got := p.EffectiveRange(0); got <= 0 || math.IsInf(got, 1) {
		t.Errorf("eps=0 EffectiveRange = %g", got)
	}
}

func TestDefault90nmShape(t *testing.T) {
	p := Default90nm()
	if p.LNominal != 0.09 {
		t.Errorf("LNominal = %g", p.LNominal)
	}
	// Equal split between D2D and WID.
	if math.Abs(p.SigmaD2D-p.SigmaWID) > 1e-15 {
		t.Errorf("expected 50/50 split, got %g vs %g", p.SigmaD2D, p.SigmaWID)
	}
	if math.Abs(p.TotalSigma()-0.04*0.09) > 1e-12 {
		t.Errorf("total sigma = %g", p.TotalSigma())
	}
	if !strings.Contains(p.WIDCorr.Name(), "truncexp") {
		t.Errorf("unexpected default correlation %s", p.WIDCorr.Name())
	}
}

func TestValidatePSD(t *testing.T) {
	// The exponential family is PSD in the plane: no jitter needed.
	p := &Process{
		LNominal: 0.09,
		SigmaD2D: 0.0025,
		SigmaWID: 0.0025,
		WIDCorr:  ExpCorr{Lambda: 50},
	}
	jit, err := p.ValidatePSD(8, 10)
	if err != nil {
		t.Fatalf("exp model rejected: %v", err)
	}
	if jit > 1e-8 {
		t.Errorf("exp model needed jitter %g", jit)
	}
	// The Gaussian family is PSD too but numerically marginal on dense
	// grids (eigenvalues decay extremely fast); it must at worst need a
	// tiny jitter.
	p.WIDCorr = GaussCorr{Lambda: 60}
	if _, err := p.ValidatePSD(8, 10); err != nil {
		t.Errorf("gaussian model rejected: %v", err)
	}
	// Bounds checking.
	if _, err := p.ValidatePSD(1, 10); err == nil {
		t.Errorf("grid dim 1 accepted")
	}
	if _, err := p.ValidatePSD(8, 0); err == nil {
		t.Errorf("zero pitch accepted")
	}
	// The truncated exponential is not an exactly valid correlation in the
	// plane; document the diagnostic outcome (jitter or clean) rather than
	// assert failure — it must at least not error with the default repair.
	p.WIDCorr = TruncatedExpCorr{Lambda: 30, R: 120}
	jit, err = p.ValidatePSD(10, 12)
	if err != nil {
		t.Errorf("truncexp beyond repair: %v", err)
	}
	t.Logf("truncexp PSD jitter: %g", jit)
}
