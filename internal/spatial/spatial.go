// Package spatial models process variation for statistical leakage
// estimation: the die-to-die (D2D) / within-die (WID) decomposition of
// channel-length variation, random threshold-voltage fluctuation, and the
// spatial correlation of the WID component as a function of distance
// (Section 2 of the paper).
//
// All distances are in micrometres (µm); channel lengths are in µm as well
// so that the regression exponents b, c of the cell-leakage fit are O(10²)
// rather than O(10⁸).
package spatial

import (
	"fmt"
	"math"

	"leakest/internal/linalg"
)

// CorrFunc is a within-die spatial correlation function ρ(d) of the
// channel-length variation between two devices separated by distance d.
// Implementations must satisfy ρ(0) = 1, |ρ(d)| ≤ 1, and be non-increasing.
type CorrFunc interface {
	// Rho returns the correlation at separation d ≥ 0.
	Rho(d float64) float64
	// Range returns the distance beyond which Rho is exactly zero, or
	// math.Inf(1) if the function has unbounded support. The polar
	// constant-time estimator (Eq. 25) requires a finite Range, and the
	// circulant-embedding grid sampler (randvar.GridSampler) sizes its
	// embedding torus to span at least twice a finite Range — when that
	// is affordable — so the wrapped kernel stays positive semi-definite.
	Range() float64
	// Name identifies the function family for reports.
	Name() string
}

// ExpCorr is the exponential correlation model ρ(d) = exp(−d/λ), the
// default in much of the statistical-timing literature.
type ExpCorr struct {
	// Lambda is the correlation length in µm.
	Lambda float64
}

// Rho implements CorrFunc.
func (e ExpCorr) Rho(d float64) float64 { return math.Exp(-d / e.Lambda) }

// Range implements CorrFunc; the exponential has unbounded support.
func (e ExpCorr) Range() float64 { return math.Inf(1) }

// Name implements CorrFunc.
func (e ExpCorr) Name() string { return fmt.Sprintf("exp(λ=%gµm)", e.Lambda) }

// GaussCorr is the squared-exponential model ρ(d) = exp(−(d/λ)²).
type GaussCorr struct {
	// Lambda is the correlation length in µm.
	Lambda float64
}

// Rho implements CorrFunc.
func (g GaussCorr) Rho(d float64) float64 { x := d / g.Lambda; return math.Exp(-x * x) }

// Range implements CorrFunc.
func (g GaussCorr) Range() float64 { return math.Inf(1) }

// Name implements CorrFunc.
func (g GaussCorr) Name() string { return fmt.Sprintf("gauss(λ=%gµm)", g.Lambda) }

// SphericalCorr is the geostatistical spherical model with finite support:
//
//	ρ(d) = 1 − 1.5(d/R) + 0.5(d/R)³  for d < R, 0 beyond.
//
// Its compact support makes the single-integral polar method (Eq. 25)
// directly applicable with D_max = R.
type SphericalCorr struct {
	// R is the support radius in µm.
	R float64
}

// Rho implements CorrFunc.
func (s SphericalCorr) Rho(d float64) float64 {
	if d >= s.R {
		return 0
	}
	x := d / s.R
	return 1 - 1.5*x + 0.5*x*x*x
}

// Range implements CorrFunc.
func (s SphericalCorr) Range() float64 { return s.R }

// Name implements CorrFunc.
func (s SphericalCorr) Name() string { return fmt.Sprintf("spherical(R=%gµm)", s.R) }

// TruncatedExpCorr is an exponential decay shifted and rescaled to reach
// exactly zero at distance R, preserving ρ(0) = 1 and continuity:
//
//	ρ(d) = (exp(−d/λ) − exp(−R/λ)) / (1 − exp(−R/λ))  for d < R, 0 beyond.
//
// It approximates ExpCorr for R ≫ λ while providing the compact support the
// polar estimator needs.
type TruncatedExpCorr struct {
	Lambda float64 // correlation length, µm
	R      float64 // support radius, µm
}

// Rho implements CorrFunc.
func (t TruncatedExpCorr) Rho(d float64) float64 {
	if d >= t.R {
		return 0
	}
	tail := math.Exp(-t.R / t.Lambda)
	if tail == 1 {
		// R/λ underflowed: the decay is flat across the whole support (the
		// λ → ∞ limit), and the generic form would divide 0 by 0.
		return 1
	}
	return (math.Exp(-d/t.Lambda) - tail) / (1 - tail)
}

// Range implements CorrFunc.
func (t TruncatedExpCorr) Range() float64 { return t.R }

// Name implements CorrFunc.
func (t TruncatedExpCorr) Name() string {
	return fmt.Sprintf("truncexp(λ=%gµm,R=%gµm)", t.Lambda, t.R)
}

// Process holds the variation model of the fabrication process: the nominal
// channel length, the D2D and WID sigma split, the WID spatial correlation,
// and the random Vt fluctuation.
type Process struct {
	// LNominal is the nominal (mean) channel length, µm.
	LNominal float64
	// SigmaD2D is the die-to-die channel-length sigma, µm.
	SigmaD2D float64
	// SigmaWID is the within-die channel-length sigma, µm.
	SigmaWID float64
	// WIDCorr is the within-die spatial correlation of channel length.
	WIDCorr CorrFunc
	// SigmaVt is the sigma of the purely random (uncorrelated) threshold
	// voltage fluctuation per device, in volts. It affects the mean of the
	// total leakage multiplicatively and is negligible for its variance
	// (Section 2.1 of the paper).
	SigmaVt float64
}

// Validate checks the physical sanity of the process description.
func (p *Process) Validate() error {
	if p.LNominal <= 0 {
		return fmt.Errorf("spatial: nominal length %g must be positive", p.LNominal)
	}
	if p.SigmaD2D < 0 || p.SigmaWID < 0 {
		return fmt.Errorf("spatial: negative sigma (D2D %g, WID %g)", p.SigmaD2D, p.SigmaWID)
	}
	if p.SigmaD2D == 0 && p.SigmaWID == 0 {
		return fmt.Errorf("spatial: process has no channel-length variation")
	}
	if p.SigmaVt < 0 {
		return fmt.Errorf("spatial: negative Vt sigma %g", p.SigmaVt)
	}
	if p.WIDCorr == nil && p.SigmaWID > 0 {
		return fmt.Errorf("spatial: WID variation present but no correlation function")
	}
	tot := p.TotalSigma()
	if tot > 0.25*p.LNominal {
		return fmt.Errorf("spatial: total σ_L %g > 25%% of L %g — outside model validity", tot, p.LNominal)
	}
	return nil
}

// TotalSigma returns the total channel-length sigma
// σ = sqrt(σ_D2D² + σ_WID²), the independence decomposition of Section 2.
func (p *Process) TotalSigma() float64 {
	return math.Sqrt(p.SigmaD2D*p.SigmaD2D + p.SigmaWID*p.SigmaWID)
}

// TotalCorr returns the total channel-length correlation between two devices
// at separation d, combining the fully shared D2D component with the
// distance-decaying WID component by the "simple normalization" of
// Section 2:
//
//	ρ_L(d) = (σ_D2D² + σ_WID²·ρ_WID(d)) / (σ_D2D² + σ_WID²).
func (p *Process) TotalCorr(d float64) float64 {
	vd := p.SigmaD2D * p.SigmaD2D
	vw := p.SigmaWID * p.SigmaWID
	if vd+vw == 0 {
		return 0
	}
	rw := 0.0
	if vw > 0 {
		rw = p.WIDCorr.Rho(d)
	}
	return (vd + vw*rw) / (vd + vw)
}

// CorrFloor returns the distance→∞ limit of TotalCorr, the constant ρ_C the
// polar estimator splits off in Eq. (26): σ_D2D²/(σ_D2D²+σ_WID²). This is
// exact when the WID correlation has finite range and the asymptote
// otherwise.
func (p *Process) CorrFloor() float64 {
	vd := p.SigmaD2D * p.SigmaD2D
	vw := p.SigmaWID * p.SigmaWID
	if vd+vw == 0 {
		return 0
	}
	return vd / (vd + vw)
}

// EffectiveRange returns the distance at which the WID part of the total
// correlation has decayed below eps (relative to its d=0 value). For
// finite-support correlation functions the hard range is returned when it
// is smaller. It is used to pick D_max for the polar estimator and
// truncation radii for sparse covariance assembly.
func (p *Process) EffectiveRange(eps float64) float64 {
	if p.SigmaWID == 0 || p.WIDCorr == nil {
		return 0
	}
	if r := p.WIDCorr.Range(); !math.IsInf(r, 1) {
		return r
	}
	if eps <= 0 {
		eps = 1e-4
	}
	// Exponential-family search: double until below eps, then bisect.
	d := 1.0
	for p.WIDCorr.Rho(d) > eps {
		d *= 2
		if d > 1e9 {
			return d
		}
	}
	lo, hi := 0.0, d
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.WIDCorr.Rho(mid) > eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Default90nm returns a representative 90 nm-class process: L = 0.09 µm,
// 3σ total ≈ 12 % of L split between D2D and WID, an exponential WID
// correlation with a 1 mm correlation length truncated at 4λ, and 30 mV of
// random Vt sigma.
//
// The paper used a commercial 90 nm kit whose parameters are proprietary;
// this synthetic process exercises the identical estimation mathematics
// (see DESIGN.md, Substitutions).
func Default90nm() *Process {
	const l = 0.09 // µm
	sigmaTotal := 0.04 * l
	return &Process{
		LNominal: l,
		SigmaD2D: sigmaTotal * math.Sqrt(0.5),
		SigmaWID: sigmaTotal * math.Sqrt(0.5),
		WIDCorr:  TruncatedExpCorr{Lambda: 1000, R: 4000},
		SigmaVt:  0.030,
	}
}

// WIDOnly returns a copy of p with the D2D component removed, used by the
// validation experiments that isolate within-die effects (Section 3.1.2
// runs both configurations). The total sigma shrinks accordingly.
func (p *Process) WIDOnly() *Process {
	q := *p
	q.SigmaD2D = 0
	return &q
}

// AllWID returns a copy of p with the D2D variance folded into the WID
// component, keeping the total sigma unchanged. This is the "solely WID
// variations" configuration of §3.1.2 that remains consistent with a
// characterization done at the total sigma.
func (p *Process) AllWID() *Process {
	q := *p
	q.SigmaWID = p.TotalSigma()
	q.SigmaD2D = 0
	return &q
}

// ValidatePSD checks that the total channel-length correlation, sampled on
// a gridDim×gridDim array of points with the given pitch (µm), forms a
// positive-semidefinite matrix — the condition for the correlation model
// to be physically realizable (cf. the robust-extraction literature the
// paper cites as [5]). It returns the relative diagonal jitter that a
// Cholesky factorization needed: 0 for a cleanly PSD model, a small
// positive value for round-off-marginal models, or an error if no
// reasonable jitter repairs it.
func (p *Process) ValidatePSD(gridDim int, pitch float64) (float64, error) {
	if gridDim < 2 || gridDim > 64 {
		return 0, fmt.Errorf("spatial: PSD grid dimension %d outside [2, 64]", gridDim)
	}
	if pitch <= 0 {
		return 0, fmt.Errorf("spatial: non-positive pitch %g", pitch)
	}
	n := gridDim * gridDim
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		xi, yi := float64(i%gridDim)*pitch, float64(i/gridDim)*pitch
		m.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			xj, yj := float64(j%gridDim)*pitch, float64(j/gridDim)*pitch
			rho := p.TotalCorr(math.Hypot(xi-xj, yi-yj))
			m.Set(i, j, rho)
			m.Set(j, i, rho)
		}
	}
	_, jit, err := linalg.CholeskyJittered(m, 1e-3)
	if err != nil {
		return 0, fmt.Errorf("spatial: correlation model not PSD on a %d×%d grid (pitch %g): %w",
			gridDim, gridDim, pitch, err)
	}
	return jit, nil
}
