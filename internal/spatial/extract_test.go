package spatial

import (
	"math"
	"testing"

	"math/rand"
)

func TestFitCorrFuncRecoversExp(t *testing.T) {
	// Noise-free samples from an exponential must be recovered by the exp
	// family with near-zero RMSE.
	truth := ExpCorr{Lambda: 250}
	var samples []CorrSample
	for d := 0.0; d <= 1500; d += 75 {
		samples = append(samples, CorrSample{D: d, Rho: truth.Rho(d)})
	}
	fit, err := FitCorrFunc(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSE > 1e-3 {
		t.Errorf("RMSE %g too large for noise-free data (family %s)", fit.RMSE, fit.Family)
	}
	// Fitted curve matches the truth across the range.
	for d := 0.0; d <= 1500; d += 50 {
		model := fit.Floor + (1-fit.Floor)*fit.Func.Rho(d)
		if math.Abs(model-truth.Rho(d)) > 0.01 {
			t.Errorf("d=%g: fit %g vs truth %g", d, model, truth.Rho(d))
		}
	}
}

func TestFitCorrFuncRecoversFloor(t *testing.T) {
	// A process with a D2D floor: the fit should recover roughly the right
	// floor and a decaying WID part.
	proc := &Process{
		LNominal: 0.09,
		SigmaD2D: 0.0036 * math.Sqrt(0.4),
		SigmaWID: 0.0036 * math.Sqrt(0.6),
		WIDCorr:  ExpCorr{Lambda: 120},
	}
	var samples []CorrSample
	for d := 0.0; d <= 1200; d += 40 {
		samples = append(samples, CorrSample{D: d, Rho: proc.TotalCorr(d)})
	}
	fit, err := FitCorrFunc(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Floor-0.4) > 0.05 {
		t.Errorf("fitted floor %g, want ≈ 0.4", fit.Floor)
	}
	rebuilt, err := fit.BuildProcess(0.09, 0.0036, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt process reproduces the measured total correlation.
	for _, d := range []float64{0, 50, 150, 400, 1000} {
		if diff := math.Abs(rebuilt.TotalCorr(d) - proc.TotalCorr(d)); diff > 0.05 {
			t.Errorf("d=%g: rebuilt ρ %g vs true %g", d, rebuilt.TotalCorr(d), proc.TotalCorr(d))
		}
	}
	if math.Abs(rebuilt.TotalSigma()-0.0036) > 1e-12 {
		t.Errorf("rebuilt total sigma %g", rebuilt.TotalSigma())
	}
}

func TestFitCorrFuncNoisyMeasurement(t *testing.T) {
	// End-to-end: simulate noisy test-structure data and verify the
	// extracted model tracks the truth within the noise level.
	proc := Default90nm()
	proc.WIDCorr = ExpCorr{Lambda: 800}
	rng := rand.New(rand.NewSource(42))
	var distances []float64
	for d := 0.0; d <= 6000; d += 200 {
		distances = append(distances, d)
	}
	samples := SimulateCorrMeasurement(rng, proc, distances, 400)
	fit, err := FitCorrFunc(samples)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("family %s, RMSE %.4f, floor %.3f", fit.Family, fit.RMSE, fit.Floor)
	if fit.RMSE > 0.08 {
		t.Errorf("noisy-fit RMSE %g implausibly large", fit.RMSE)
	}
	maxErr := 0.0
	for _, d := range distances {
		model := fit.Floor + (1-fit.Floor)*fit.Func.Rho(d)
		if e := math.Abs(model - proc.TotalCorr(d)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.12 {
		t.Errorf("extracted model deviates %.3f from truth", maxErr)
	}
}

func TestFitCorrFuncErrors(t *testing.T) {
	good := []CorrSample{{0, 1}, {10, 0.8}, {20, 0.6}, {30, 0.4}}
	if _, err := FitCorrFunc(good[:3]); err == nil {
		t.Errorf("too few samples accepted")
	}
	bad := append([]CorrSample(nil), good...)
	bad[1].Rho = 2
	if _, err := FitCorrFunc(bad); err == nil {
		t.Errorf("out-of-range correlation accepted")
	}
	bad = append([]CorrSample(nil), good...)
	bad[2].D = -5
	if _, err := FitCorrFunc(bad); err == nil {
		t.Errorf("negative distance accepted")
	}
	same := []CorrSample{{5, 1}, {5, 0.9}, {5, 0.8}, {5, 0.7}}
	if _, err := FitCorrFunc(same); err == nil {
		t.Errorf("degenerate distances accepted")
	}
	var empty CorrFit
	if _, err := empty.BuildProcess(0.09, 0.0036, 0); err == nil {
		t.Errorf("empty fit built a process")
	}
}

func TestSimulateCorrMeasurement(t *testing.T) {
	proc := Default90nm()
	rng := rand.New(rand.NewSource(3))
	ds := []float64{0, 100, 500, 2000}
	samples := SimulateCorrMeasurement(rng, proc, ds, 1000)
	if len(samples) != len(ds) {
		t.Fatalf("%d samples", len(samples))
	}
	for i, s := range samples {
		if s.D != ds[i] {
			t.Errorf("distance reordered")
		}
		if s.Rho < -1 || s.Rho > 1 {
			t.Errorf("sample correlation %g out of range", s.Rho)
		}
		// With 1000 pairs the noise is ~3%: samples track the truth.
		if math.Abs(s.Rho-proc.TotalCorr(s.D)) > 0.15 {
			t.Errorf("d=%g: sample %g far from truth %g", s.D, s.Rho, proc.TotalCorr(s.D))
		}
	}
	// nPairs clamp path.
	tiny := SimulateCorrMeasurement(rng, proc, ds, 1)
	if len(tiny) != len(ds) {
		t.Errorf("clamped nPairs broke sampling")
	}
}
