package spatial

import (
	"encoding/json"
	"math"
	"testing"
)

func TestCorrSpecRoundTrip(t *testing.T) {
	funcs := []CorrFunc{
		ExpCorr{Lambda: 123},
		GaussCorr{Lambda: 45},
		SphericalCorr{R: 678},
		TruncatedExpCorr{Lambda: 12, R: 90},
		nil,
	}
	for _, f := range funcs {
		spec, err := SpecOf(f)
		if err != nil {
			t.Fatalf("SpecOf(%v): %v", f, err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", spec, err)
		}
		if f == nil {
			if back != nil {
				t.Errorf("nil did not round trip")
			}
			continue
		}
		if back.Name() != f.Name() {
			t.Errorf("round trip %s → %s", f.Name(), back.Name())
		}
		for d := 0.0; d < 200; d += 13 {
			if back.Rho(d) != f.Rho(d) {
				t.Errorf("%s: ρ(%g) changed", f.Name(), d)
			}
		}
	}
}

type fakeCorr struct{}

func (fakeCorr) Rho(float64) float64 { return 0 }
func (fakeCorr) Range() float64      { return 0 }
func (fakeCorr) Name() string        { return "fake" }

func TestSpecOfUnknown(t *testing.T) {
	if _, err := SpecOf(fakeCorr{}); err == nil {
		t.Errorf("unknown correlation type serialized")
	}
}

func TestCorrSpecBuildErrors(t *testing.T) {
	bad := []CorrSpec{
		{Type: "exp"},
		{Type: "gauss", Lambda: -1},
		{Type: "spherical"},
		{Type: "truncexp", Lambda: 1},
		{Type: "mystery"},
	}
	for _, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Errorf("bad spec %+v built", spec)
		}
	}
	// Empty type means "no correlation function".
	f, err := CorrSpec{}.Build()
	if err != nil || f != nil {
		t.Errorf("empty spec: %v, %v", f, err)
	}
}

func TestProcessJSONRoundTrip(t *testing.T) {
	p := Default90nm()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Process
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.LNominal != p.LNominal || q.SigmaD2D != p.SigmaD2D ||
		q.SigmaWID != p.SigmaWID || q.SigmaVt != p.SigmaVt {
		t.Errorf("scalars changed: %+v vs %+v", q, *p)
	}
	if q.WIDCorr.Name() != p.WIDCorr.Name() {
		t.Errorf("correlation changed: %s vs %s", q.WIDCorr.Name(), p.WIDCorr.Name())
	}
	// Unserializable correlation function fails marshalling.
	bad := *p
	bad.WIDCorr = fakeCorr{}
	if _, err := json.Marshal(&bad); err == nil {
		t.Errorf("fake correlation marshalled")
	}
	// Corrupt JSON fails unmarshalling.
	if err := json.Unmarshal([]byte(`{"wid_corr":{"type":"exp"}}`), &q); err == nil {
		t.Errorf("invalid spec unmarshalled")
	}
	if err := json.Unmarshal([]byte(`{`), &q); err == nil {
		t.Errorf("syntax error unmarshalled")
	}
}

func TestAllWIDKeepsTotalSigma(t *testing.T) {
	p := Default90nm()
	q := p.AllWID()
	if q.SigmaD2D != 0 {
		t.Errorf("AllWID left D2D = %g", q.SigmaD2D)
	}
	if math.Abs(q.TotalSigma()-p.TotalSigma()) > 1e-15 {
		t.Errorf("AllWID changed total sigma: %g vs %g", q.TotalSigma(), p.TotalSigma())
	}
	if q.CorrFloor() != 0 {
		t.Errorf("AllWID floor = %g", q.CorrFloor())
	}
	if p.SigmaD2D == 0 {
		t.Errorf("AllWID mutated the original")
	}
}

func TestTruncatedExpRange(t *testing.T) {
	te := TruncatedExpCorr{Lambda: 10, R: 77}
	if te.Range() != 77 {
		t.Errorf("Range = %g", te.Range())
	}
}
