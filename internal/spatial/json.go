package spatial

import (
	"encoding/json"
	"fmt"
	"math"
)

// CorrSpec is the serializable description of a correlation function.
type CorrSpec struct {
	Type   string  `json:"type"`
	Lambda float64 `json:"lambda,omitempty"`
	R      float64 `json:"r,omitempty"`
}

// SpecOf returns the CorrSpec describing a built-in correlation function.
func SpecOf(c CorrFunc) (CorrSpec, error) {
	switch v := c.(type) {
	case ExpCorr:
		return CorrSpec{Type: "exp", Lambda: v.Lambda}, nil
	case GaussCorr:
		return CorrSpec{Type: "gauss", Lambda: v.Lambda}, nil
	case SphericalCorr:
		return CorrSpec{Type: "spherical", R: v.R}, nil
	case TruncatedExpCorr:
		return CorrSpec{Type: "truncexp", Lambda: v.Lambda, R: v.R}, nil
	case nil:
		return CorrSpec{Type: "none"}, nil
	default:
		return CorrSpec{}, fmt.Errorf("spatial: cannot serialize correlation %T", c)
	}
}

// positiveFinite guards spec parameters: NaN slips through a `<= 0` test
// (every comparison with NaN is false) and +Inf lengths turn Rho into
// exp(-0) surprises, so both are rejected alongside the non-positives.
func positiveFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}

// Build constructs the correlation function described by the spec.
func (s CorrSpec) Build() (CorrFunc, error) {
	switch s.Type {
	case "exp":
		if !positiveFinite(s.Lambda) {
			return nil, fmt.Errorf("spatial: exp spec needs finite lambda > 0")
		}
		return ExpCorr{Lambda: s.Lambda}, nil
	case "gauss":
		if !positiveFinite(s.Lambda) {
			return nil, fmt.Errorf("spatial: gauss spec needs finite lambda > 0")
		}
		return GaussCorr{Lambda: s.Lambda}, nil
	case "spherical":
		if !positiveFinite(s.R) {
			return nil, fmt.Errorf("spatial: spherical spec needs finite r > 0")
		}
		return SphericalCorr{R: s.R}, nil
	case "truncexp":
		if !positiveFinite(s.Lambda) || !positiveFinite(s.R) {
			return nil, fmt.Errorf("spatial: truncexp spec needs finite lambda and r > 0")
		}
		return TruncatedExpCorr{Lambda: s.Lambda, R: s.R}, nil
	case "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("spatial: unknown correlation type %q", s.Type)
	}
}

// processJSON is the wire form of Process.
type processJSON struct {
	LNominal float64  `json:"l_nominal_um"`
	SigmaD2D float64  `json:"sigma_d2d_um"`
	SigmaWID float64  `json:"sigma_wid_um"`
	SigmaVt  float64  `json:"sigma_vt_v"`
	WIDCorr  CorrSpec `json:"wid_corr"`
}

// MarshalJSON implements json.Marshaler.
func (p *Process) MarshalJSON() ([]byte, error) {
	spec, err := SpecOf(p.WIDCorr)
	if err != nil {
		return nil, err
	}
	return json.Marshal(processJSON{
		LNominal: p.LNominal,
		SigmaD2D: p.SigmaD2D,
		SigmaWID: p.SigmaWID,
		SigmaVt:  p.SigmaVt,
		WIDCorr:  spec,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Process) UnmarshalJSON(data []byte) error {
	var w processJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	corr, err := w.WIDCorr.Build()
	if err != nil {
		return err
	}
	p.LNominal = w.LNominal
	p.SigmaD2D = w.SigmaD2D
	p.SigmaWID = w.SigmaWID
	p.SigmaVt = w.SigmaVt
	p.WIDCorr = corr
	return nil
}
