package stats

import "math"

// MeanSE returns the standard error of the sample mean of n observations
// drawn from a distribution with standard deviation sigma: sigma/√n. It is
// the natural tolerance unit for comparing a Monte-Carlo mean against an
// analytic one.
func MeanSE(sigma float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return sigma / math.Sqrt(float64(n))
}

// StdSE returns the normal-theory standard error of the sample standard
// deviation of n observations: sigma/√(2(n−1)). Heavy-tailed populations
// (the lognormal chip totals, for instance) have a somewhat larger true
// error, which callers absorb by widening the z multiplier rather than the
// formula.
func StdSE(sigma float64, n int) float64 {
	if n <= 1 {
		return math.Inf(1)
	}
	return sigma / math.Sqrt(2*float64(n-1))
}

// SlopeLogLog fits ln(y) = a + b·ln(x) by least squares and returns the
// slope b — the convergence-order estimator behind the qmc conformance
// gate, where plain Monte Carlo error decays with slope ≈ −1/2 and a
// scrambled low-discrepancy sequence materially steeper. Panics on length
// mismatch or fewer than two points; any non-positive coordinate (which has
// no logarithm) yields NaN so gates fail loudly rather than pass on
// garbage.
func SlopeLogLog(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: SlopeLogLog length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: SlopeLogLog needs at least two points")
	}
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		if x <= 0 || ys[i] <= 0 {
			return math.NaN()
		}
		lx, ly := math.Log(x), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}
