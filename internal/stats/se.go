package stats

import "math"

// MeanSE returns the standard error of the sample mean of n observations
// drawn from a distribution with standard deviation sigma: sigma/√n. It is
// the natural tolerance unit for comparing a Monte-Carlo mean against an
// analytic one.
func MeanSE(sigma float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return sigma / math.Sqrt(float64(n))
}

// StdSE returns the normal-theory standard error of the sample standard
// deviation of n observations: sigma/√(2(n−1)). Heavy-tailed populations
// (the lognormal chip totals, for instance) have a somewhat larger true
// error, which callers absorb by widening the z multiplier rather than the
// formula.
func StdSE(sigma float64, n int) float64 {
	if n <= 1 {
		return math.Inf(1)
	}
	return sigma / math.Sqrt(2*float64(n-1))
}
