package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the distribution-tail primitives behind chipmc's
// TailStats: multi-quantile extraction over a materialized trial set,
// exceedance (yield-at-spec) estimation with binomial standard errors, and
// the weighted variant used by the importance-sampled deep-tail estimator.
//
// Edge-case contract (regression-tested):
//   - empty input never panics: quantiles are NaN, exceedance is the
//     explicit no-data value (P and SE NaN, zero hits);
//   - one trial is a legal run: the quantile is that sample, the exceedance
//     is exactly 0 or 1 with zero SE;
//   - a spec exactly at a sample point counts that sample as NOT exceeding
//     (exceedance is strictly greater-than);
//   - all-exceed / none-exceed return exactly {1, 0} with SE exactly 0 —
//     never NaN from a negative rounding residue under the square root.

// quantileSorted evaluates the q-quantile of an ascending-sorted, non-empty
// sample by linear interpolation between order statistics — the same
// estimator as Quantile, factored out so multi-quantile callers sort once.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the qs-quantiles of xs, sorting one copy of the input
// once (Quantile re-sorts per call). Empty xs yields NaN at every requested
// probability; a probability outside [0,1] panics, matching Quantile.
func Quantiles(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i, q := range qs {
			if q < 0 || q > 1 {
				panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
			}
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// NormalizeQuantiles validates and canonicalizes a requested quantile list:
// every probability must be strictly inside (0, 1) and finite; duplicates
// are dropped and the result is ascending. A nil or empty list stays empty.
// The open interval is deliberate — P0 and P1 of a sample are its extremes,
// not distribution quantiles, and accepting them would hide caller bugs.
func NormalizeQuantiles(qs []float64) ([]float64, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	out := make([]float64, 0, len(qs))
	for _, q := range qs {
		if math.IsNaN(q) || q <= 0 || q >= 1 {
			return nil, fmt.Errorf("stats: quantile probability %g outside (0, 1)", q)
		}
		out = append(out, q)
	}
	sort.Float64s(out)
	dedup := out[:1]
	for _, q := range out[1:] {
		if q != dedup[len(dedup)-1] {
			dedup = append(dedup, q)
		}
	}
	return dedup, nil
}

// BinomialSE returns the binomial standard error sqrt(p(1−p)/n) of an
// exceedance proportion. It is exactly 0 at p ∈ {0, 1} (an observed-certain
// outcome has no binomial spread) and NaN when n ≤ 0 or p is outside [0, 1].
func BinomialSE(p float64, n int) float64 {
	if n <= 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	v := p * (1 - p)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v / float64(n))
}

// Exceedance is a plain Monte-Carlo estimate of P[X > spec].
type Exceedance struct {
	// P is the estimated exceedance probability (hits/n); NaN when N is 0.
	P float64
	// SE is the binomial standard error; exactly 0 at P ∈ {0, 1}.
	SE float64
	// Hits counts samples strictly greater than the spec.
	Hits int
	// N is the sample count.
	N int
}

// ExceedanceOf counts the samples strictly above spec and returns the
// proportion with its binomial SE. Strictness matters at the edge case the
// regression suite pins: a spec exactly at a sample point does not count
// that sample as exceeding.
func ExceedanceOf(xs []float64, spec float64) Exceedance {
	n := len(xs)
	if n == 0 {
		return Exceedance{P: math.NaN(), SE: math.NaN()}
	}
	hits := 0
	for _, x := range xs {
		if x > spec {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	return Exceedance{P: p, SE: BinomialSE(p, n), Hits: hits, N: n}
}

// WeightedExceedance is an importance-sampled estimate of P[X > spec]:
// the mean of w_i·1{x_i > spec} over proposal draws, with the effective-
// sample-size diagnostics the fallback contract is decided on.
type WeightedExceedance struct {
	// P is the self-unnormalized IS estimate (1/n)·Σ w_i·1{x_i > spec};
	// unbiased when the weights are exact likelihood ratios. NaN when N is 0.
	P float64
	// SE is the sample standard error of the weighted indicator mean —
	// exactly 0 when no trial exceeds (every term is 0).
	SE float64
	// Hits counts proposal samples strictly above spec.
	Hits int
	// N is the proposal sample count.
	N int
	// ESS is the Kish effective sample size (Σw)²/Σw² over all weights.
	// Under a deep-tail tilt it is tiny by design (≈ n·e^{−θ²}); the health
	// signal is HitESS.
	ESS float64
	// HitESS is the effective sample size over the contributing (exceeding)
	// trials only — the number of "plain-MC-equivalent" tail samples the
	// estimate rests on. 0 when nothing exceeds.
	HitESS float64
}

// ExceedanceWeighted computes the importance-sampled exceedance of paired
// samples and likelihood-ratio weights. It panics on length mismatch (a
// caller bug, like Covariance) and returns the no-data value on empty input.
func ExceedanceWeighted(xs, ws []float64, spec float64) WeightedExceedance {
	n := len(xs)
	if len(ws) != n {
		panic(fmt.Sprintf("stats: ExceedanceWeighted length mismatch %d vs %d", n, len(ws)))
	}
	if n == 0 {
		return WeightedExceedance{P: math.NaN(), SE: math.NaN()}
	}
	var sumW, sumW2, hitW, hitW2 float64
	hits := 0
	// Welford over y_i = w_i·1{x_i > spec} gives the estimate and its SE in
	// one deterministic serial pass (the caller hands totals in trial order).
	var run Running
	for i, x := range xs {
		w := ws[i]
		sumW += w
		sumW2 += w * w
		y := 0.0
		if x > spec {
			hits++
			hitW += w
			hitW2 += w * w
			y = w
		}
		run.Push(y)
	}
	out := WeightedExceedance{P: run.Mean(), Hits: hits, N: n}
	if hits == 0 {
		// Every term is exactly zero: the estimate and its spread are 0.
		out.P, out.SE = 0, 0
	} else {
		out.SE = run.StdDev() / math.Sqrt(float64(n))
	}
	if sumW2 > 0 {
		out.ESS = sumW * sumW / sumW2
	}
	if hitW2 > 0 {
		out.HitESS = hitW * hitW / hitW2
	}
	return out
}
