package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Histogram is a discrete probability distribution over string-labeled
// categories — in this library, the frequency-of-use distribution over
// standard cells (the α_i of the paper, Eq. 6).
type Histogram struct {
	labels []string
	probs  []float64
	cum    []float64 // cumulative, for sampling
}

// NewHistogram builds a normalized histogram from label→weight pairs.
// Weights must be non-negative and sum to a positive value. Labels are
// stored sorted for deterministic iteration.
func NewHistogram(weights map[string]float64) (*Histogram, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: empty histogram")
	}
	labels := make([]string, 0, len(weights))
	for l := range weights {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	total := 0.0
	for _, l := range labels {
		w := weights[l]
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: negative or NaN weight %g for %q", w, l)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: histogram weights sum to %g", total)
	}
	h := &Histogram{labels: labels}
	h.probs = make([]float64, len(labels))
	h.cum = make([]float64, len(labels))
	c := 0.0
	for i, l := range labels {
		h.probs[i] = weights[l] / total
		c += h.probs[i]
		h.cum[i] = c
	}
	h.cum[len(h.cum)-1] = 1 // guard against round-off
	return h, nil
}

// FromCounts builds a histogram from integer usage counts (e.g. extracted
// from a netlist).
func FromCounts(counts map[string]int) (*Histogram, error) {
	w := make(map[string]float64, len(counts))
	for l, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("stats: negative count %d for %q", c, l)
		}
		if c > 0 {
			w[l] = float64(c)
		}
	}
	return NewHistogram(w)
}

// Len returns the number of categories.
func (h *Histogram) Len() int { return len(h.labels) }

// Labels returns the category labels in deterministic (sorted) order.
// The returned slice must not be modified.
func (h *Histogram) Labels() []string { return h.labels }

// Prob returns the probability of label l (0 if absent).
func (h *Histogram) Prob(l string) float64 {
	i := sort.SearchStrings(h.labels, l)
	if i < len(h.labels) && h.labels[i] == l {
		return h.probs[i]
	}
	return 0
}

// ProbAt returns the probability of the i-th label.
func (h *Histogram) ProbAt(i int) float64 { return h.probs[i] }

// Sample draws a label according to the distribution.
func (h *Histogram) Sample(rng *rand.Rand) string {
	u := rng.Float64()
	i := sort.SearchFloat64s(h.cum, u)
	if i >= len(h.labels) {
		i = len(h.labels) - 1
	}
	return h.labels[i]
}

// SampleN draws n labels and returns the realized counts; useful for
// generating random circuits matching the histogram in distribution.
func (h *Histogram) SampleN(rng *rand.Rand, n int) map[string]int {
	counts := make(map[string]int, h.Len())
	for i := 0; i < n; i++ {
		counts[h.Sample(rng)]++
	}
	return counts
}

// TotalVariationDistance returns the total-variation distance between two
// histograms over the union of their supports, in [0,1].
func TotalVariationDistance(a, b *Histogram) float64 {
	seen := make(map[string]bool)
	d := 0.0
	for _, l := range a.labels {
		seen[l] = true
		d += math.Abs(a.Prob(l) - b.Prob(l))
	}
	for _, l := range b.labels {
		if !seen[l] {
			d += b.Prob(l)
		}
	}
	return d / 2
}
