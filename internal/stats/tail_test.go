package stats

import (
	"math"
	"testing"
)

// TestQuantilesMatchesQuantile pins the refactor: the multi-quantile path
// must agree bitwise with the historical single-quantile estimator.
func TestQuantilesMatchesQuantile(t *testing.T) {
	rng := NewRNG(7, "tail-test")
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
	}
	qs := []float64{0, 0.001, 0.05, 0.5, 0.95, 0.999, 1}
	got := Quantiles(xs, qs)
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Errorf("Quantiles[%g] = %v, Quantile = %v", q, got[i], want)
		}
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	// Empty input: NaN per requested probability, no panic.
	for _, v := range Quantiles(nil, []float64{0.5, 0.99}) {
		if !math.IsNaN(v) {
			t.Errorf("empty-input quantile = %v, want NaN", v)
		}
	}
	// One trial: every quantile is that sample.
	for _, v := range Quantiles([]float64{3.5}, []float64{0.01, 0.5, 0.999}) {
		if v != 3.5 {
			t.Errorf("1-trial quantile = %v, want 3.5", v)
		}
	}
	// Out-of-range probability panics even on empty input.
	defer func() {
		if recover() == nil {
			t.Error("Quantiles(nil, {1.5}) did not panic")
		}
	}()
	Quantiles(nil, []float64{1.5})
}

// TestQuantilesMonotone is the seed-corpus property the fuzz target extends:
// estimated quantiles are monotone in the requested probability.
func TestQuantilesMonotone(t *testing.T) {
	rng := NewRNG(11, "tail-monotone")
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	qs := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	vals := Quantiles(xs, qs)
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Errorf("quantile at p=%g (%v) below p=%g (%v)", qs[i], vals[i], qs[i-1], vals[i-1])
		}
	}
}

func TestNormalizeQuantiles(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want []float64
		err  bool
	}{
		{name: "empty", in: nil, want: nil},
		{name: "sorted-deduped", in: []float64{0.99, 0.5, 0.95, 0.5}, want: []float64{0.5, 0.95, 0.99}},
		{name: "nan", in: []float64{0.5, math.NaN()}, err: true},
		{name: "zero", in: []float64{0}, err: true},
		{name: "one", in: []float64{1}, err: true},
		{name: "negative", in: []float64{-0.1}, err: true},
		{name: "above-one", in: []float64{1.5}, err: true},
		{name: "inf", in: []float64{math.Inf(1)}, err: true},
	}
	for _, tc := range cases {
		got, err := NormalizeQuantiles(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%s: no error for %v", tc.name, tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// TestExceedanceEdgeCases is the table-driven regression suite for the
// quantile/exceedance edge cases the satellite names: 0- and 1-trial runs,
// spec exactly at a sample point, and the all-exceed / none-exceed corners
// that must be exactly {1, 0} with zero SE rather than NaN.
func TestExceedanceEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		spec     float64
		wantP    float64
		wantSE   float64
		wantHits int
	}{
		{name: "zero-trials", xs: nil, spec: 1, wantP: math.NaN(), wantSE: math.NaN()},
		{name: "one-trial-below", xs: []float64{0.5}, spec: 1, wantP: 0, wantSE: 0},
		{name: "one-trial-above", xs: []float64{2}, spec: 1, wantP: 1, wantSE: 0, wantHits: 1},
		{name: "spec-at-sample", xs: []float64{1, 2, 3}, spec: 2, wantP: 1.0 / 3, wantSE: BinomialSE(1.0/3, 3), wantHits: 1},
		{name: "all-exceed", xs: []float64{2, 3, 4, 5}, spec: 1, wantP: 1, wantSE: 0, wantHits: 4},
		{name: "none-exceed", xs: []float64{2, 3, 4, 5}, spec: 10, wantP: 0, wantSE: 0},
		{name: "spec-at-max", xs: []float64{1, 2, 3}, spec: 3, wantP: 0, wantSE: 0},
	}
	for _, tc := range cases {
		got := ExceedanceOf(tc.xs, tc.spec)
		if math.IsNaN(tc.wantP) {
			if !math.IsNaN(got.P) || !math.IsNaN(got.SE) {
				t.Errorf("%s: got (%v, %v), want NaN no-data values", tc.name, got.P, got.SE)
			}
			continue
		}
		if got.P != tc.wantP || got.SE != tc.wantSE || got.Hits != tc.wantHits {
			t.Errorf("%s: got P=%v SE=%v hits=%d, want P=%v SE=%v hits=%d",
				tc.name, got.P, got.SE, got.Hits, tc.wantP, tc.wantSE, tc.wantHits)
		}
		if got.N != len(tc.xs) {
			t.Errorf("%s: N=%d, want %d", tc.name, got.N, len(tc.xs))
		}
	}
}

func TestBinomialSE(t *testing.T) {
	if se := BinomialSE(0.5, 100); math.Abs(se-0.05) > 1e-15 {
		t.Errorf("BinomialSE(0.5, 100) = %v, want 0.05", se)
	}
	for _, p := range []float64{0, 1} {
		if se := BinomialSE(p, 10); se != 0 {
			t.Errorf("BinomialSE(%g, 10) = %v, want exactly 0", p, se)
		}
	}
	for _, bad := range []struct {
		p float64
		n int
	}{{0.5, 0}, {0.5, -1}, {math.NaN(), 5}, {-0.1, 5}, {1.1, 5}} {
		if se := BinomialSE(bad.p, bad.n); !math.IsNaN(se) {
			t.Errorf("BinomialSE(%g, %d) = %v, want NaN", bad.p, bad.n, se)
		}
	}
}

func TestExceedanceWeighted(t *testing.T) {
	// Unit weights must reproduce the plain estimator exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ones := []float64{1, 1, 1, 1, 1}
	w := ExceedanceWeighted(xs, ones, 3)
	plain := ExceedanceOf(xs, 3)
	if w.P != plain.P || w.Hits != plain.Hits {
		t.Errorf("unit-weight IS (P=%v hits=%d) != plain (P=%v hits=%d)", w.P, w.Hits, plain.P, plain.Hits)
	}
	if math.Abs(w.ESS-5) > 1e-12 || math.Abs(w.HitESS-2) > 1e-12 {
		t.Errorf("unit-weight ESS=%v hitESS=%v, want 5 and 2", w.ESS, w.HitESS)
	}

	// None-exceed: estimate and SE exactly zero, never NaN.
	w = ExceedanceWeighted(xs, ones, 10)
	if w.P != 0 || w.SE != 0 || w.Hits != 0 || w.HitESS != 0 {
		t.Errorf("none-exceed weighted = %+v, want exact zeros", w)
	}

	// Empty input: explicit no-data values.
	w = ExceedanceWeighted(nil, nil, 1)
	if !math.IsNaN(w.P) || !math.IsNaN(w.SE) {
		t.Errorf("empty weighted = %+v, want NaN no-data values", w)
	}

	// Uniform weight scaling scales P and SE but leaves ESS invariant —
	// the property that makes ESS a pure diagnostic.
	ws := []float64{0.5, 2, 1, 0.25, 4}
	base := ExceedanceWeighted(xs, ws, 2.5)
	scaled := make([]float64, len(ws))
	for i := range ws {
		scaled[i] = 3 * ws[i]
	}
	sc := ExceedanceWeighted(xs, scaled, 2.5)
	if math.Abs(sc.P-3*base.P) > 1e-12*base.P || math.Abs(sc.SE-3*base.SE) > 1e-12*math.Max(base.SE, 1) {
		t.Errorf("3×-scaled weighted (P=%v SE=%v), want 3×(%v, %v)", sc.P, sc.SE, base.P, base.SE)
	}
	if math.Abs(sc.ESS-base.ESS) > 1e-9 || math.Abs(sc.HitESS-base.HitESS) > 1e-9 {
		t.Errorf("ESS changed under uniform scaling: %v/%v vs %v/%v", sc.ESS, sc.HitESS, base.ESS, base.HitESS)
	}

	// Length mismatch is a caller bug and panics.
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	ExceedanceWeighted(xs, ones[:3], 1)
}
