package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	// Sample variance with n-1: sum of squared devs is 32, /7.
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", v, 32.0/7)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %g", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Errorf("empty/degenerate cases wrong")
	}
	m, s := MeanStd(xs)
	if m != 5 || s != StdDev(xs) {
		t.Errorf("MeanStd inconsistent")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10} // ys = 2xs, perfectly correlated
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Errorf("Correlation = %g, want 1", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("Correlation = %g, want -1", c)
	}
	if c := Correlation(xs, []float64{3, 3, 3, 3, 3}); c != 0 {
		t.Errorf("zero-variance correlation = %g, want 0", c)
	}
	if cv := Covariance(xs, ys); math.Abs(cv-2*Variance(xs)) > 1e-12 {
		t.Errorf("Covariance = %g", cv)
	}
}

func TestCovariancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on length mismatch")
		}
	}()
	Covariance([]float64{1}, []float64{1, 2})
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("empty quantile should be NaN")
	}
}

func TestMinMaxRelErr(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g", min, max)
	}
	if e := RelErr(110, 100); e != 10 {
		t.Errorf("RelErr = %g, want 10", e)
	}
	if e := RelErr(90, 100); e != -10 {
		t.Errorf("RelErr = %g, want -10", e)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := NewRNG(42, "running")
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		r.Push(xs[i])
	}
	if r.N() != 1000 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-10 {
		t.Errorf("running mean %g != batch %g", r.Mean(), Mean(xs))
	}
	if math.Abs(r.Variance()-Variance(xs)) > 1e-10 {
		t.Errorf("running var %g != batch %g", r.Variance(), Variance(xs))
	}
	var empty Running
	if empty.Variance() != 0 || empty.StdDev() != 0 {
		t.Errorf("empty Running variance should be 0")
	}
}

func TestNewRNGStreamsDiffer(t *testing.T) {
	a := NewRNG(1, "a")
	b := NewRNG(1, "b")
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Errorf("streams 'a' and 'b' are identical")
	}
	// Same seed and label must reproduce.
	c := NewRNG(1, "a")
	d := NewRNG(1, "a")
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			t.Fatalf("same stream not reproducible")
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(map[string]float64{"inv": 2, "nand2": 1, "nor2": 1})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
	if p := h.Prob("inv"); p != 0.5 {
		t.Errorf("P(inv) = %g, want 0.5", p)
	}
	if p := h.Prob("absent"); p != 0 {
		t.Errorf("P(absent) = %g, want 0", p)
	}
	sum := 0.0
	for i := 0; i < h.Len(); i++ {
		sum += h.ProbAt(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Errorf("expected error on empty histogram")
	}
	if _, err := NewHistogram(map[string]float64{"a": -1}); err == nil {
		t.Errorf("expected error on negative weight")
	}
	if _, err := NewHistogram(map[string]float64{"a": 0}); err == nil {
		t.Errorf("expected error on zero total")
	}
	if _, err := FromCounts(map[string]int{"a": -1}); err == nil {
		t.Errorf("expected error on negative count")
	}
}

func TestHistogramSampling(t *testing.T) {
	h, _ := NewHistogram(map[string]float64{"x": 3, "y": 1})
	rng := NewRNG(9, "hist")
	counts := h.SampleN(rng, 40000)
	fx := float64(counts["x"]) / 40000
	if math.Abs(fx-0.75) > 0.02 {
		t.Errorf("empirical P(x) = %g, want ≈0.75", fx)
	}
	// Property: empirical distribution converges (TV distance small).
	emp, err := FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if d := TotalVariationDistance(h, emp); d > 0.02 {
		t.Errorf("TV distance = %g too large", d)
	}
}

func TestTotalVariationDistance(t *testing.T) {
	a, _ := NewHistogram(map[string]float64{"x": 1})
	b, _ := NewHistogram(map[string]float64{"y": 1})
	if d := TotalVariationDistance(a, b); d != 1 {
		t.Errorf("disjoint TV = %g, want 1", d)
	}
	if d := TotalVariationDistance(a, a); d != 0 {
		t.Errorf("self TV = %g, want 0", d)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed, "quantile")
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		min, max := MinMax(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev || v < min-1e-12 || v > max+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlopeLogLog(t *testing.T) {
	// Exact power law y = 3·x^(-1/2) must recover the slope to machine
	// precision.
	xs := []float64{128, 512, 2048}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, -0.5)
	}
	if got := SlopeLogLog(xs, ys); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("SlopeLogLog = %g, want -0.5", got)
	}
	for i, x := range xs {
		ys[i] = 0.7 * math.Pow(x, -1)
	}
	if got := SlopeLogLog(xs, ys); math.Abs(got+1) > 1e-12 {
		t.Errorf("SlopeLogLog = %g, want -1", got)
	}
	// Non-positive coordinates have no logarithm: NaN, not a panic.
	if got := SlopeLogLog([]float64{1, 2}, []float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("SlopeLogLog with zero y = %g, want NaN", got)
	}
	if got := SlopeLogLog([]float64{2, 2}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("SlopeLogLog with degenerate x = %g, want NaN", got)
	}
	for _, bad := range [][2][]float64{
		{{1, 2}, {1}},
		{{1}, {1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SlopeLogLog(%v, %v) must panic", bad[0], bad[1])
				}
			}()
			SlopeLogLog(bad[0], bad[1])
		}()
	}
}
