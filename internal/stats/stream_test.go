package stats

import (
	"fmt"
	"math/rand"
	"testing"
)

// Stream.SeedFor must reproduce the hash NewRNG computes for the same
// concatenated key, so the chipmc hot loop can drop the fmt.Sprintf key
// without changing a single sampled value.
func TestStreamMatchesNewRNG(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 20070604, 1 << 40} {
		st := NewStream(seed, "chipmc/mc-test/trial#")
		for _, i := range []int{0, 1, 9, 10, 99, 12345, 1 << 20} {
			want := NewRNG(seed, fmt.Sprintf("chipmc/mc-test/trial#%d", i))
			got := rand.New(rand.NewSource(st.SeedFor(i)))
			for k := 0; k < 4; k++ {
				w, g := want.NormFloat64(), got.NormFloat64()
				if w != g {
					t.Fatalf("seed %d index %d draw %d: stream %g, NewRNG %g", seed, i, k, g, w)
				}
			}
		}
	}
}

// Reseeding a reused *rand.Rand must rebuild the exact NewSource state —
// the property the per-worker RNG reuse in chipmc relies on.
func TestReseedMatchesNewSource(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rng.NormFloat64() // advance past the fresh state
	st := NewStream(42, "reseed#")
	s := st.SeedFor(3)
	rng.Seed(s)
	fresh := rand.New(rand.NewSource(s))
	for k := 0; k < 8; k++ {
		if a, b := rng.NormFloat64(), fresh.NormFloat64(); a != b {
			t.Fatalf("draw %d: reseeded %g, fresh %g", k, a, b)
		}
	}
}

func BenchmarkStreamSeedFor(b *testing.B) {
	st := NewStream(1, "chipmc/bench/trial#")
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = st.SeedFor(i)
	}
	_ = sink
}
