// Package stats provides descriptive statistics, histograms, and
// reproducible random-number streams for the leakage-estimation experiments.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// fnv1aPrime is the FNV-1a 64-bit multiplier shared by NewRNG and Stream.
const fnv1aPrime = 1099511628211

// fnv1aSeed hashes the eight little-endian bytes of seed followed by the
// label bytes with FNV-1a, starting from the offset basis.
func fnv1aSeed(seed int64, label string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xff
		h *= fnv1aPrime
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnv1aPrime
	}
	return h
}

// NewRNG returns a deterministic random stream derived from a base seed and
// a stream label, so that independent experiment stages draw from
// non-overlapping, reproducible streams.
func NewRNG(seed int64, stream string) *rand.Rand {
	return rand.New(rand.NewSource(int64(fnv1aSeed(seed, stream) & 0x7fffffffffffffff)))
}

// Stream is a partially evaluated NewRNG: it freezes the FNV-1a hash state
// after (seed, prefix) so per-index seeds can be derived in a hot loop
// without the fmt.Sprintf key allocation. SeedFor(i) equals the source seed
// NewRNG(seed, prefix+strconv.Itoa(i)) would use, bitwise, so reseeding a
// reusable *rand.Rand with it reproduces the historical per-index streams
// exactly.
type Stream struct{ h uint64 }

// NewStream hashes (seed, prefix) once; SeedFor extends the hash with the
// decimal digits of an index.
func NewStream(seed int64, prefix string) Stream {
	return Stream{h: fnv1aSeed(seed, prefix)}
}

// SeedFor returns the PRNG source seed of index i's stream (i ≥ 0).
// rand.NewSource(s) and (*rand.Rand).Seed(s) build identical generator
// states, so rng.Seed(st.SeedFor(i)) matches NewRNG's stream for the same
// key with zero allocations.
func (s Stream) SeedFor(i int) int64 {
	h := s.h
	var buf [20]byte
	b := strconv.AppendInt(buf[:0], int64(i), 10)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnv1aPrime
	}
	return int64(h & 0x7fffffffffffffff)
}

// Mean returns the arithmetic mean of xs; it returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs; it returns 0
// for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns the mean and sample standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Covariance returns the unbiased sample covariance of paired samples.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) != n {
		panic(fmt.Sprintf("stats: Covariance length mismatch %d vs %d", n, len(ys)))
	}
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient of paired samples.
// It returns 0 when either sample has zero variance.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// RelErr returns the signed relative error (got − want)/want in percent.
// It panics when want is 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		panic("stats: RelErr with zero reference")
	}
	return 100 * (got - want) / want
}

// Running accumulates streaming mean and variance using Welford's method,
// avoiding the need to retain samples for large Monte-Carlo runs.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Push adds a sample to the accumulator.
func (r *Running) Push(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples pushed.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased running sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased running sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }
