package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RecorderConfig bounds the flight recorder's two retention rings.
type RecorderConfig struct {
	// Recent is how many completed traces the rolling ring keeps,
	// regardless of outcome. Default 64.
	Recent int
	// Notable is how many slow/degraded/failed traces the notable ring
	// keeps; these survive the churn of the recent ring. Default 256.
	Notable int
	// SlowThreshold marks a trace notable by duration alone. Default 1s.
	SlowThreshold time.Duration
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Recent <= 0 {
		c.Recent = 64
	}
	if c.Notable <= 0 {
		c.Notable = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = time.Second
	}
	return c
}

// FlightRecorder is a bounded in-memory ring of completed traces: the last
// Recent traces of any kind, plus (in a separate ring, so they outlive
// recent churn) every recent trace that was slow, degraded, or failed.
// It backs GET /debug/traces and /debug/traces/{id}.
type FlightRecorder struct {
	mu      sync.Mutex
	cfg     RecorderConfig
	recent  []TraceSnapshot
	notable []TraceSnapshot
}

// NewFlightRecorder returns an empty recorder with cfg's bounds (zero
// fields take defaults).
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	return &FlightRecorder{cfg: cfg.withDefaults()}
}

// notableSnap reports whether snap belongs in the notable ring: any
// non-"ok" outcome (degraded, error, …) or a duration past SlowThreshold.
func (f *FlightRecorder) notableSnap(snap TraceSnapshot) bool {
	if snap.Outcome != "" && snap.Outcome != "ok" {
		return true
	}
	return snap.DurS >= f.cfg.SlowThreshold.Seconds()
}

// Record retains a completed trace's snapshot, evicting the oldest entry of
// whichever ring overflows.
func (f *FlightRecorder) Record(snap TraceSnapshot) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recent = appendRing(f.recent, snap, f.cfg.Recent)
	if f.notableSnap(snap) {
		f.notable = appendRing(f.notable, snap, f.cfg.Notable)
	}
}

// appendRing appends snap, dropping the front when the ring exceeds max.
func appendRing(ring []TraceSnapshot, snap TraceSnapshot, max int) []TraceSnapshot {
	ring = append(ring, snap)
	if len(ring) > max {
		// Shift rather than reslice so the backing array stays bounded.
		copy(ring, ring[1:])
		ring = ring[:max]
	}
	return ring
}

// Get returns the retained trace with the given ID. The notable ring is
// checked first: a degraded trace stays retrievable after the recent ring
// has churned past it.
func (f *FlightRecorder) Get(id string) (TraceSnapshot, bool) {
	if f == nil {
		return TraceSnapshot{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ring := range [2][]TraceSnapshot{f.notable, f.recent} {
		for i := len(ring) - 1; i >= 0; i-- {
			if ring[i].ID == id {
				return ring[i], true
			}
		}
	}
	return TraceSnapshot{}, false
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	ID      string    `json:"id"`
	Start   time.Time `json:"start"`
	DurS    float64   `json:"duration_s"`
	Outcome string    `json:"outcome,omitempty"`
	Root    string    `json:"root,omitempty"`
	Spans   int       `json:"spans"`
	Notable bool      `json:"notable,omitempty"`
}

// List returns summaries of every retained trace, newest first, notable
// entries not duplicated across the two rings.
func (f *FlightRecorder) List() []TraceSummary {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[string]bool, len(f.notable)+len(f.recent))
	out := make([]TraceSummary, 0, len(f.notable)+len(f.recent))
	add := func(ring []TraceSnapshot, notable bool) {
		for i := len(ring) - 1; i >= 0; i-- {
			snap := ring[i]
			if seen[snap.ID] {
				continue
			}
			seen[snap.ID] = true
			out = append(out, TraceSummary{
				ID: snap.ID, Start: snap.Start, DurS: snap.DurS,
				Outcome: snap.Outcome, Root: snap.Root(),
				Spans: len(snap.Spans), Notable: notable || f.notableSnap(snap),
			})
		}
	}
	add(f.recent, false)
	add(f.notable, true)
	return out
}

// recorder is the process-wide default flight recorder; nil until
// EnableFlightRecorder/SetFlightRecorder.
var recorder atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs f as the process-wide flight recorder; nil
// disables trace retention (the zero-overhead default — Record on a nil
// recorder is a no-op).
func SetFlightRecorder(f *FlightRecorder) { recorder.Store(f) }

// Recorder returns the installed flight recorder, or nil.
func Recorder() *FlightRecorder { return recorder.Load() }

// EnableFlightRecorder installs (once) and returns the default flight
// recorder with default bounds. Safe to call repeatedly.
func EnableFlightRecorder() *FlightRecorder {
	if f := recorder.Load(); f != nil {
		return f
	}
	f := NewFlightRecorder(RecorderConfig{})
	recorder.CompareAndSwap(nil, f)
	return recorder.Load()
}

// chromeEvent is one Chrome trace-event ("X" = complete event with
// duration); timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace snapshot in the Chrome trace-event JSON
// format (the array form), loadable in chrome://tracing or Perfetto. Each
// span becomes one complete ("X") event; span and trace attributes land in
// the event args.
func WriteChrome(w io.Writer, snap TraceSnapshot) error {
	events := make([]chromeEvent, 0, len(snap.Spans)+1)
	rootArgs := map[string]any{"trace_id": snap.ID}
	if snap.Outcome != "" {
		rootArgs["outcome"] = snap.Outcome
	}
	for _, a := range snap.Attrs {
		rootArgs[a.Key] = a.Value
	}
	events = append(events, chromeEvent{
		Name: "trace " + snap.ID, Ph: "X", PID: 1, TID: 1,
		Ts: 0, Dur: snap.DurS * 1e6, Args: rootArgs,
	})
	for _, sp := range snap.Spans {
		var args map[string]any
		if len(sp.Attrs) > 0 {
			args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
		}
		events = append(events, chromeEvent{
			Name: sp.Stage, Ph: "X", PID: 1, TID: 1,
			Ts: sp.StartS * 1e6, Dur: sp.DurS * 1e6, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
