package telemetry

import (
	"strings"
	"testing"
)

// TestPeakAllocHighWaterMark checks the monotone high-water-mark contract
// and the gauge publication.
func TestPeakAllocHighWaterMark(t *testing.T) {
	resetForTest()
	defer resetForTest()
	ResetPeakAlloc()
	defer ResetPeakAlloc()

	first := SamplePeakAlloc()
	if first == 0 {
		t.Fatal("sampled zero heap allocation")
	}
	if PeakAllocBytes() != first {
		t.Fatalf("PeakAllocBytes %d != sampled %d", PeakAllocBytes(), first)
	}
	// The mark never goes down, even if the heap shrinks between samples.
	second := SamplePeakAlloc()
	if second < first {
		t.Fatalf("high-water mark regressed: %d < %d", second, first)
	}
	// With metrics on, the sample lands in the gauge.
	r := Enable()
	sampled := SamplePeakAlloc()
	if got := r.Gauge("process_peak_alloc_bytes").Value(); got != float64(sampled) {
		t.Fatalf("gauge %g, want %d", got, sampled)
	}
	ResetPeakAlloc()
	if PeakAllocBytes() != 0 {
		t.Fatal("ResetPeakAlloc did not clear the mark")
	}
}

// TestTileMetricsPrometheusGolden pins the Prometheus exposition of the
// three tiled-pipeline metrics: the chipmc_tiles_total counter, the
// tile_duration_seconds histogram, and the process_peak_alloc_bytes gauge.
func TestTileMetricsPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("chipmc_tiles_total").Add(9)
	r.Gauge("process_peak_alloc_bytes").Set(1048576)
	h := r.Histogram("tile_duration_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# TYPE chipmc_tiles_total counter
chipmc_tiles_total 9
# TYPE process_peak_alloc_bytes gauge
process_peak_alloc_bytes 1.048576e+06
# TYPE tile_duration_seconds histogram
tile_duration_seconds_bucket{le="0.001"} 1
tile_duration_seconds_bucket{le="0.01"} 2
tile_duration_seconds_bucket{le="+Inf"} 2
tile_duration_seconds_sum 0.0025
tile_duration_seconds_count 2
`
	if got := sb.String(); got != want {
		t.Errorf("Prometheus text:\n%s\nwant:\n%s", got, want)
	}
}
