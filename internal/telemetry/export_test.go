package telemetry

// resetForTest returns the package to its zero-overhead default state —
// no registry, no logger, no flight recorder — so tests and the
// disabled-path benchmarks can run in any order within one test binary.
func resetForTest() {
	def.Store(nil)
	sinkOn.Store(false)
	logger.Store(nil)
	recorder.Store(nil)
}
