// Package telemetry is the zero-dependency observability layer of the
// leakage estimator: a concurrent metrics registry (atomic counters, gauges
// and fixed-bucket histograms with Prometheus-text and expvar exposition),
// lightweight stage spans that build a per-run timing breakdown, a
// context-threaded progress reporter for long loops, and structured logging
// via log/slog.
//
// The layer follows the same contract as internal/fault: when nothing is
// registered — no default registry, no logger, no trace in the context —
// every hook degrades to a single atomic load (or a nil check) and the
// instrumented hot paths run at their uninstrumented speed. Instrumentation
// therefore lives at stage granularity (one span per pipeline stage, one
// progress tick per existing cancellation checkpoint), never per inner-loop
// iteration.
package telemetry

import (
	"log/slog"
	"sync/atomic"
)

// def is the process-wide default registry; nil until Enable/SetDefault.
// sinkOn mirrors "def != nil" so hot paths pay one atomic bool load.
var (
	def    atomic.Pointer[Registry]
	sinkOn atomic.Bool
)

// SetDefault installs r as the process-wide metrics sink; nil disables
// metrics collection again (the zero-overhead default).
func SetDefault(r *Registry) {
	def.Store(r)
	sinkOn.Store(r != nil)
}

// Default returns the installed metrics sink, or nil when metrics are off.
func Default() *Registry { return def.Load() }

// MetricsOn reports whether a metrics sink is installed — the fast-path
// gate instrumented code checks before building metric names.
func MetricsOn() bool { return sinkOn.Load() }

// Enable installs (once) and returns the default registry. Safe to call
// repeatedly; concurrent first calls race benignly toward one winner.
func Enable() *Registry {
	if r := def.Load(); r != nil {
		return r
	}
	r := NewRegistry()
	if def.CompareAndSwap(nil, r) {
		sinkOn.Store(true)
	}
	return def.Load()
}

// Inc adds 1 to the named counter on the default registry; no-op when
// metrics are disabled.
func Inc(name string) { Add(name, 1) }

// Add adds delta to the named counter on the default registry; no-op when
// metrics are disabled.
func Add(name string, delta int64) {
	if !sinkOn.Load() {
		return
	}
	if r := def.Load(); r != nil {
		r.Counter(name).Add(delta)
	}
}

// SetGauge sets the named gauge on the default registry; no-op when metrics
// are disabled.
func SetGauge(name string, v float64) {
	if !sinkOn.Load() {
		return
	}
	if r := def.Load(); r != nil {
		r.Gauge(name).Set(v)
	}
}

// ObserveSeconds records v into the named duration histogram (default
// duration buckets) on the default registry; no-op when metrics are
// disabled.
func ObserveSeconds(name string, v float64) { ObserveSecondsEx(name, v, "") }

// ObserveSecondsEx is ObserveSeconds carrying a trace-ID exemplar: the
// bucket the sample lands in remembers traceID, so the /metrics exposition
// links the latency spike to the recorded trace. Empty traceID records no
// exemplar. No-op when metrics are disabled.
func ObserveSecondsEx(name string, v float64, traceID string) {
	if !sinkOn.Load() {
		return
	}
	if r := def.Load(); r != nil {
		r.Histogram(name, DurationBuckets).ObserveEx(v, traceID)
	}
}

// logger is the process-wide structured logger; nil (the default) disables
// logging entirely.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs the structured logger used by the estimation pipeline;
// nil disables logging (the zero-overhead default).
func SetLogger(l *slog.Logger) { logger.Store(l) }

// Logger returns the installed logger, or nil when logging is disabled.
func Logger() *slog.Logger { return logger.Load() }

// Infof-style nil-checked logging helpers. args are slog key/value pairs.

// Info logs at Info level when a logger is installed.
func Info(msg string, args ...any) {
	if l := logger.Load(); l != nil {
		l.Info(msg, args...)
	}
}

// Warn logs at Warn level when a logger is installed.
func Warn(msg string, args ...any) {
	if l := logger.Load(); l != nil {
		l.Warn(msg, args...)
	}
}

// Debug logs at Debug level when a logger is installed.
func Debug(msg string, args ...any) {
	if l := logger.Load(); l != nil {
		l.Debug(msg, args...)
	}
}
