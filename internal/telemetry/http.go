package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar registration: expvar.Publish
// panics on duplicate names, and the snapshot closure reads Default() so it
// tracks whichever registry is installed later.
var publishOnce sync.Once

// PublishExpvar exposes the default registry under the expvar name
// "leakest_metrics" (visible at /debug/vars). Safe to call repeatedly.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("leakest_metrics", expvar.Func(func() any {
			r := Default()
			if r == nil {
				return map[string]any{}
			}
			return r.Snapshot()
		}))
	})
}

// PromHandler serves the registry in the Prometheus text exposition format.
// Only GET and HEAD are meaningful on a read-only exposition endpoint;
// anything else gets 405 with the Allow header the RFC requires.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// TracesListHandler serves the flight-recorder listing as JSON, newest
// first. With no recorder installed it answers an empty list, not an error,
// so probes keep working when tracing is off.
func TracesListHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		list := Recorder().List()
		if list == nil {
			list = []TraceSummary{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"traces": list})
	})
}

// TraceGetHandler serves one retained trace's full span tree as JSON, or —
// with ?format=chrome — as Chrome trace-event JSON for chrome://tracing.
// The trace ID comes from the request path (Go 1.22 pattern "{id}").
func TraceGetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		snap, ok := Recorder().Get(id)
		if !ok {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		switch req.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(snap)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="`+snap.ID+`.chrome.json"`)
			WriteChrome(w, snap)
		default:
			http.Error(w, "unknown format (want json or chrome)", http.StatusBadRequest)
		}
	})
}

// NewMux builds the observability endpoint served behind cmd/leakest
// -listen: Prometheus text at /metrics, the expvar JSON dump at
// /debug/vars, the flight recorder under /debug/traces, and the full pprof
// suite under /debug/pprof/. The handlers are registered on a private mux so
// importing net/http/pprof's DefaultServeMux side effects is irrelevant.
func NewMux(r *Registry) *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", PromHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("GET /debug/traces", TracesListHandler())
	mux.Handle("GET /debug/traces/{id}", TraceGetHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
