package telemetry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StageTiming is one entry of a per-run timing breakdown.
type StageTiming struct {
	// Stage names the pipeline stage (see DESIGN.md for the stage name
	// reference).
	Stage string `json:"stage"`
	// Duration is the stage's wall-clock time.
	Duration time.Duration `json:"duration"`
}

// Seconds returns the duration in seconds, for report rendering.
func (s StageTiming) Seconds() float64 { return s.Duration.Seconds() }

// Attr is one key/value attribute attached to a span or a trace: the
// numerical-health facts that explain a run (sampler chosen, degradation
// rung, clamp bias, cache hit/miss, …).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// span is the internal record of one tree node. Offsets are relative to the
// trace origin; end < 0 marks a span still open.
type span struct {
	parent int
	stage  string
	start  time.Duration
	end    time.Duration
	attrs  []Attr
}

// Trace is the request-scoped record of one estimation run: a tree of spans
// (parent/child, start/end offsets, per-span attributes) plus the flat
// completion-order stage timings that feed Result.Timings. It is safe for
// concurrent use; worker goroutines merge their spans through AddSpanAt on
// the coordinating goroutine, so tree structure stays deterministic.
type Trace struct {
	mu      sync.Mutex
	id      string
	origin  time.Time
	spans   []span
	attrs   []Attr // trace-level attributes (no current span in context)
	stages  []StageTiming
	outcome string
}

// traceSeq feeds lazily generated trace IDs; process-unique, not global.
var traceSeq atomic.Uint64

// NewTrace returns an empty trace anchored at the current time.
func NewTrace() *Trace { return &Trace{origin: time.Now()} }

// SetID names the trace (e.g. with the server request ID). An empty trace ID
// is replaced lazily by ID().
func (t *Trace) SetID(id string) {
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the trace's identifier, generating a process-unique one on
// first use when none was set.
func (t *Trace) ID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.id == "" {
		t.id = fmt.Sprintf("t-%08x", traceSeq.Add(1))
	}
	return t.id
}

// SetOutcome records how the traced run ended ("ok", "degraded", "error",
// …); the flight recorder's notable ring keys off it.
func (t *Trace) SetOutcome(outcome string) {
	t.mu.Lock()
	t.outcome = outcome
	t.mu.Unlock()
}

// add appends one completed stage to the flat timing breakdown.
func (t *Trace) add(stage string, d time.Duration) {
	t.mu.Lock()
	t.stages = append(t.stages, StageTiming{Stage: stage, Duration: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded timings, in completion order.
func (t *Trace) Stages() []StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageTiming(nil), t.stages...)
}

// startSpan opens a child of parent (0 = top level) and returns its 1-based
// span ID.
func (t *Trace) startSpan(parent int, stage string) int {
	now := time.Since(t.origin)
	t.mu.Lock()
	t.spans = append(t.spans, span{parent: parent, stage: stage, start: now, end: -1})
	id := len(t.spans)
	t.mu.Unlock()
	return id
}

// endSpan closes span id after duration d and appends the flat stage timing.
func (t *Trace) endSpan(id int, stage string, d time.Duration) {
	t.mu.Lock()
	if id >= 1 && id <= len(t.spans) {
		sp := &t.spans[id-1]
		sp.end = sp.start + d
	}
	t.stages = append(t.stages, StageTiming{Stage: stage, Duration: d})
	t.mu.Unlock()
}

// setAttr attaches key=value to span id, or to the trace itself when id is 0.
// Re-setting a key overwrites its value.
func (t *Trace) setAttr(id int, key string, value any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	list := &t.attrs
	if id >= 1 && id <= len(t.spans) {
		list = &t.spans[id-1].attrs
	}
	for i := range *list {
		if (*list)[i].Key == key {
			(*list)[i].Value = value
			return
		}
	}
	*list = append(*list, Attr{Key: key, Value: value})
}

// AddSpanAt records an already-completed span under parent with explicit
// timing — the deterministic-merge entry point the parallel pool uses to
// fold worker-goroutine spans into the trace in a fixed order after the
// fan-out joins. It returns the new span's ID. Unlike StartSpan, the span
// does not enter the flat Stages breakdown (Result.Timings must not vary
// with the worker count).
func (t *Trace) AddSpanAt(parent int, stage string, start time.Time, d time.Duration, attrs ...Attr) int {
	off := start.Sub(t.origin)
	t.mu.Lock()
	t.spans = append(t.spans, span{
		parent: parent, stage: stage,
		start: off, end: off + d,
		attrs: append([]Attr(nil), attrs...),
	})
	id := len(t.spans)
	t.mu.Unlock()
	return id
}

// SpanSnapshot is the exported form of one span-tree node; times are
// seconds relative to the trace start.
type SpanSnapshot struct {
	ID     int     `json:"id"`
	Parent int     `json:"parent,omitempty"`
	Stage  string  `json:"stage"`
	StartS float64 `json:"start_s"`
	DurS   float64 `json:"duration_s"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// TraceSnapshot is the wire- and flight-recorder form of a trace: the
// structured `trace` block of leakestd responses and /debug/traces bodies.
type TraceSnapshot struct {
	ID      string         `json:"id"`
	Start   time.Time      `json:"start"`
	DurS    float64        `json:"duration_s"`
	Outcome string         `json:"outcome,omitempty"`
	Attrs   []Attr         `json:"attrs,omitempty"`
	Spans   []SpanSnapshot `json:"spans,omitempty"`
}

// Root returns the stage name of the snapshot's first top-level span.
func (s TraceSnapshot) Root() string {
	for _, sp := range s.Spans {
		if sp.Parent == 0 {
			return sp.Stage
		}
	}
	return ""
}

// Snapshot renders the trace's current state. A span still open is reported
// with the duration it has accumulated so far.
func (t *Trace) Snapshot() TraceSnapshot {
	id := t.ID() // force an ID outside the lock below
	now := time.Since(t.origin)
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:      id,
		Start:   t.origin,
		DurS:    now.Seconds(),
		Outcome: t.outcome,
		Attrs:   append([]Attr(nil), t.attrs...),
		Spans:   make([]SpanSnapshot, len(t.spans)),
	}
	for i, sp := range t.spans {
		end := sp.end
		if end < 0 {
			end = now
		}
		snap.Spans[i] = SpanSnapshot{
			ID: i + 1, Parent: sp.parent, Stage: sp.stage,
			StartS: sp.start.Seconds(),
			DurS:   (end - sp.start).Seconds(),
			Attrs:  append([]Attr(nil), sp.attrs...),
		}
	}
	return snap
}

type traceKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying t; spans started under it record
// their stage timings into t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanContext returns the trace carried by ctx and the current span ID
// (0 when no enclosing WithSpan). The parallel pool uses it to parent its
// deterministically merged shard spans.
func SpanContext(ctx context.Context) (*Trace, int) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return nil, 0
	}
	id, _ := ctx.Value(spanKey{}).(int)
	return tr, id
}

// spanIDFrom returns ctx's current span ID, 0 when none.
func spanIDFrom(ctx context.Context) int {
	id, _ := ctx.Value(spanKey{}).(int)
	return id
}

// EnsureTrace returns ctx with a trace attached, reusing one already
// present. Public entry points call it so every Result can carry a timing
// breakdown.
func EnsureTrace(ctx context.Context) (context.Context, *Trace) {
	if t := TraceFrom(ctx); t != nil {
		return ctx, t
	}
	t := NewTrace()
	return WithTrace(ctx, t), t
}

// noopEnd is the shared span terminator returned when every sink is off.
var noopEnd = func() {}

// observeStage feeds the stage histogram, attaching the trace ID as the
// exemplar so a latency spike on /metrics links to a recorded trace.
func observeStage(tr *Trace, stage string, d time.Duration) {
	if !sinkOn.Load() {
		return
	}
	ex := ""
	if tr != nil {
		ex = tr.ID()
	}
	ObserveSecondsEx(Label("estimate_stage_duration_seconds", "stage", stage), d.Seconds(), ex)
}

// StartSpan begins timing the named pipeline stage and returns the function
// that ends it. The span is recorded as a leaf child of the context's
// current span (see WithSpan); on end, the duration is appended to the
// context's Trace (if any) and observed into the default registry's
// estimate_stage_duration_seconds{stage=...} histogram (if metrics are
// enabled). With no trace and no sink the span is a nil-check no-op; spans
// are placed at stage granularity, never inside inner loops.
func StartSpan(ctx context.Context, stage string) func() {
	tr := TraceFrom(ctx)
	if tr == nil && !sinkOn.Load() && logger.Load() == nil {
		return noopEnd
	}
	sid := 0
	if tr != nil {
		sid = tr.startSpan(spanIDFrom(ctx), stage)
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		if tr != nil {
			tr.endSpan(sid, stage, d)
		}
		observeStage(tr, stage, d)
		Debug("stage done", "stage", stage, "duration", d)
	}
}

// WithSpan is StartSpan for stages that contain other stages: the returned
// context carries the new span, so spans (and attributes) recorded under it
// become its children. End closes the span; use it deferred like StartSpan.
// Disabled-path cost matches StartSpan (a nil check), and without a trace no
// derived context is allocated.
func WithSpan(ctx context.Context, stage string) (context.Context, func()) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, StartSpan(ctx, stage) // metrics/log-only timing, no tree
	}
	sid := tr.startSpan(spanIDFrom(ctx), stage)
	ctx = context.WithValue(ctx, spanKey{}, sid)
	start := time.Now()
	return ctx, func() {
		d := time.Since(start)
		tr.endSpan(sid, stage, d)
		observeStage(tr, stage, d)
		Debug("stage done", "stage", stage, "duration", d)
	}
}

// SpanAttr* attach one attribute to the context's current span (or to the
// trace itself outside any WithSpan). They are nil-check no-ops without a
// trace — the typed variants exist so the disabled path never boxes the
// value into an interface.

// SpanAttrStr records a string attribute on the current span.
func SpanAttrStr(ctx context.Context, key, value string) {
	if tr := TraceFrom(ctx); tr != nil {
		tr.setAttr(spanIDFrom(ctx), key, value)
	}
}

// SpanAttrInt records an integer attribute on the current span.
func SpanAttrInt(ctx context.Context, key string, value int64) {
	if tr := TraceFrom(ctx); tr != nil {
		tr.setAttr(spanIDFrom(ctx), key, value)
	}
}

// SpanAttrFloat records a float attribute on the current span.
func SpanAttrFloat(ctx context.Context, key string, value float64) {
	if tr := TraceFrom(ctx); tr != nil {
		tr.setAttr(spanIDFrom(ctx), key, value)
	}
}

// SpanAttrBool records a boolean attribute on the current span.
func SpanAttrBool(ctx context.Context, key string, value bool) {
	if tr := TraceFrom(ctx); tr != nil {
		tr.setAttr(spanIDFrom(ctx), key, value)
	}
}

// TimeStage is StartSpan for call sites that have no context (e.g. the
// Cholesky kernel in internal/linalg): the duration goes to the default
// registry and debug log only. It is a single atomic load when telemetry is
// off.
func TimeStage(stage string) func() {
	if !sinkOn.Load() && logger.Load() == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		ObserveSeconds(Label("estimate_stage_duration_seconds", "stage", stage), d.Seconds())
		Debug("stage done", "stage", stage, "duration", d)
	}
}
