package telemetry

import (
	"context"
	"sync"
	"time"
)

// StageTiming is one entry of a per-run timing breakdown.
type StageTiming struct {
	// Stage names the pipeline stage (see DESIGN.md for the stage name
	// reference).
	Stage string `json:"stage"`
	// Duration is the stage's wall-clock time.
	Duration time.Duration `json:"duration"`
}

// Seconds returns the duration in seconds, for report rendering.
func (s StageTiming) Seconds() float64 { return s.Duration.Seconds() }

// Trace collects the stage timings of one estimation run, in completion
// order. It is safe for concurrent use; the pipeline itself is
// single-goroutine, but a caller may share one Trace across parallel runs.
type Trace struct {
	mu     sync.Mutex
	stages []StageTiming
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// add appends one completed stage.
func (t *Trace) add(stage string, d time.Duration) {
	t.mu.Lock()
	t.stages = append(t.stages, StageTiming{Stage: stage, Duration: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded timings.
func (t *Trace) Stages() []StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageTiming(nil), t.stages...)
}

type traceKey struct{}

// WithTrace returns a context carrying t; spans started under it record
// their stage timings into t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// EnsureTrace returns ctx with a trace attached, reusing one already
// present. Public entry points call it so every Result can carry a timing
// breakdown.
func EnsureTrace(ctx context.Context) (context.Context, *Trace) {
	if t := TraceFrom(ctx); t != nil {
		return ctx, t
	}
	t := NewTrace()
	return WithTrace(ctx, t), t
}

// noopEnd is the shared span terminator returned when every sink is off.
var noopEnd = func() {}

// StartSpan begins timing the named pipeline stage and returns the function
// that ends it. On end, the duration is appended to the context's Trace (if
// any) and observed into the default registry's
// stage_duration_seconds{stage=...} histogram (if metrics are enabled).
// With no trace and no sink the span is a nil-check no-op; spans are placed
// at stage granularity, never inside inner loops.
func StartSpan(ctx context.Context, stage string) func() {
	tr := TraceFrom(ctx)
	if tr == nil && !sinkOn.Load() && logger.Load() == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		if tr != nil {
			tr.add(stage, d)
		}
		ObserveSeconds(Label("stage_duration_seconds", "stage", stage), d.Seconds())
		Debug("stage done", "stage", stage, "duration", d)
	}
}

// TimeStage is StartSpan for call sites that have no context (e.g. the
// Cholesky kernel in internal/linalg): the duration goes to the default
// registry and debug log only. It is a single atomic load when telemetry is
// off.
func TimeStage(stage string) func() {
	if !sinkOn.Load() && logger.Load() == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		ObserveSeconds(Label("stage_duration_seconds", "stage", stage), d.Seconds())
		Debug("stage done", "stage", stage, "duration", d)
	}
}
