package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestProgressDeliversEveryTickAtZeroInterval(t *testing.T) {
	var got []Progress
	ctx := WithProgressInterval(context.Background(), func(p Progress) { got = append(got, p) }, 0)
	rep := StartProgress(ctx, "s", 3)
	rep.Tick(1)
	rep.Tick(2)
	rep.Done(3)
	if len(got) != 3 {
		t.Fatalf("got %d reports, want 3: %+v", len(got), got)
	}
	for i, p := range got {
		if p.Stage != "s" || p.Total != 3 || p.Done != int64(i+1) {
			t.Errorf("report %d = %+v", i, p)
		}
	}
	if got[0].Final || got[1].Final || !got[2].Final {
		t.Errorf("Final flags wrong: %+v", got)
	}
	if got[0].ETA < 0 {
		t.Errorf("tick with done>0 has no ETA: %+v", got[0])
	}
	if got[2].ETA != 0 {
		t.Errorf("final ETA = %v, want 0", got[2].ETA)
	}
}

func TestProgressRateLimit(t *testing.T) {
	var got []Progress
	ctx := WithProgressInterval(context.Background(), func(p Progress) { got = append(got, p) }, time.Hour)
	rep := StartProgress(ctx, "s", 100)
	rep.Tick(1)   // delivered: first tick is never limited
	rep.Tick(2)   // suppressed
	rep.Tick(3)   // suppressed
	rep.Done(100) // delivered: Done bypasses the limit
	if len(got) != 2 {
		t.Fatalf("got %d reports, want 2: %+v", len(got), got)
	}
	if got[0].Done != 1 || got[1].Done != 100 || !got[1].Final {
		t.Errorf("reports = %+v", got)
	}
}

func TestProgressTerminalTickBeatsRateLimit(t *testing.T) {
	// Regression: a terminal tick (done == total) landing inside the rate
	// window used to be swallowed, so a consumer waiting on Final hung when
	// the loop relied on Tick alone. It must always be delivered — and a
	// following Done must not duplicate it.
	var got []Progress
	ctx := WithProgressInterval(context.Background(), func(p Progress) { got = append(got, p) }, time.Hour)
	rep := StartProgress(ctx, "s", 100)
	rep.Tick(1)   // delivered: first tick opens the window
	rep.Tick(50)  // suppressed, inside the window
	rep.Tick(100) // terminal: must be delivered despite the window
	rep.Done(100) // idempotent after a terminal tick
	if len(got) != 2 {
		t.Fatalf("got %d reports, want 2: %+v", len(got), got)
	}
	final := got[1]
	if !final.Final || final.Done != 100 || final.Percent() != 100 {
		t.Errorf("terminal report = %+v, want Final at 100%%", final)
	}
}

func TestProgressDoneWithPartialCountStillFinal(t *testing.T) {
	// Error paths call Done with however far the loop got; the Final report
	// must still fire so consumers unblock.
	var got []Progress
	ctx := WithProgressInterval(context.Background(), func(p Progress) { got = append(got, p) }, time.Hour)
	rep := StartProgress(ctx, "s", 100)
	rep.Tick(10)
	rep.Done(37)
	if len(got) != 2 || !got[1].Final || got[1].Done != 37 {
		t.Fatalf("reports = %+v, want a Final at done=37", got)
	}
	rep.Done(37) // second Done stays a no-op
	if len(got) != 2 {
		t.Errorf("duplicate Final delivered: %+v", got)
	}
}

func TestProgressNilSafety(t *testing.T) {
	// No ProgressFunc in the context → nil reporter, inert everywhere.
	rep := StartProgress(context.Background(), "s", 10)
	if rep != nil {
		t.Fatalf("expected nil reporter without a ProgressFunc")
	}
	rep.Tick(1)
	rep.Done(10)
	// Nil fn must not poison the context either.
	if ctx := WithProgress(context.Background(), nil); progressFrom(ctx) != nil {
		t.Errorf("nil ProgressFunc was stored")
	}
}

func TestProgressPercent(t *testing.T) {
	if got := (Progress{Done: 25, Total: 100}).Percent(); got != 25 {
		t.Errorf("Percent = %g, want 25", got)
	}
	if got := (Progress{Done: 5}).Percent(); got != -1 {
		t.Errorf("Percent with unknown total = %g, want -1", got)
	}
}

func TestProgressUnknownTotalHasNoETA(t *testing.T) {
	var got []Progress
	ctx := WithProgressInterval(context.Background(), func(p Progress) { got = append(got, p) }, 0)
	rep := StartProgress(ctx, "s", 0)
	rep.Tick(4)
	if len(got) != 1 || got[0].ETA >= 0 {
		t.Errorf("reports = %+v, want one with negative ETA", got)
	}
}
