package telemetry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPromHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter(`requests_total{code="200"}`).Add(3)
	r.Gauge("pool_size").Set(4)

	for _, method := range []string{http.MethodGet, http.MethodHead} {
		rec := httptest.NewRecorder()
		PromHandler(r).ServeHTTP(rec, httptest.NewRequest(method, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", method, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s: content type %q, want text/plain exposition", method, ct)
		}
	}
	rec := httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`requests_total{code="200"} 3`,
		"# TYPE requests_total counter",
		"pool_size 4",
		"# TYPE pool_size gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestPromHandlerRejectsWrites(t *testing.T) {
	r := NewRegistry()
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
		rec := httptest.NewRecorder()
		PromHandler(r).ServeHTTP(rec, httptest.NewRequest(method, "/metrics", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s: status %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("%s: Allow header %q, want \"GET, HEAD\"", method, allow)
		}
	}
}

// TestPromHandlerDuringConcurrentWrites scrapes the endpoint while other
// goroutines hammer the same metrics: the exposition and the snapshot must
// stay internally consistent (no torn reads, no panics) under -race.
func TestPromHandlerDuringConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				r.Counter("writes_total").Inc()
				r.Gauge("level").Set(float64(i))
				r.Counter(fmt.Sprintf(`sharded_total{w="%d"}`, w)).Inc()
				r.Histogram("lat_seconds", nil).Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	scrape := func() string {
		rec := httptest.NewRecorder()
		PromHandler(r).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("scrape status %d", rec.Code)
		}
		return rec.Body.String()
	}
	close(start)
	for i := 0; i < 50; i++ {
		scrape()
		r.Snapshot()
	}
	wg.Wait()
	final := scrape()
	want := fmt.Sprintf("writes_total %d", writers*perWriter)
	if !strings.Contains(final, want) {
		t.Errorf("final exposition missing %q:\n%s", want, final)
	}
	snap := r.Snapshot()
	if v, _ := snap["writes_total"].(int64); v != writers*perWriter {
		t.Errorf("snapshot writes_total = %v, want %d", snap["writes_total"], writers*perWriter)
	}
}

func TestNewMuxRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("muxed_total").Inc()
	mux := NewMux(r)
	cases := []struct {
		path string
		want int
	}{
		{"/metrics", http.StatusOK},
		{"/debug/vars", http.StatusOK},
		{"/debug/pprof/", http.StatusOK},
		{"/debug/pprof/cmdline", http.StatusOK},
		{"/nope", http.StatusNotFound},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.path, nil))
		if rec.Code != c.want {
			t.Errorf("GET %s: status %d, want %d", c.path, rec.Code, c.want)
		}
	}
	// The expvar dump must carry the published registry snapshot.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if !strings.Contains(rec.Body.String(), "leakest_metrics") {
		t.Error("/debug/vars does not expose leakest_metrics")
	}
}
