package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent metrics registry. Metrics are identified by
// their full name including any label set, e.g.
//
//	estimate_duration_seconds{method="linear"}
//
// (see Label). Lookup takes a read lock; the returned metric handles update
// with plain atomics, so hot paths should hold on to handles when they tick
// a metric more than once.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// metric is the common behaviour of counters, gauges and histograms.
type metric interface {
	// promType is the Prometheus TYPE of the metric family.
	promType() string
	// writeProm renders the metric's sample lines in Prometheus text format.
	writeProm(w io.Writer, base, labels string)
	// snapshotValue returns the exposition-friendly current value.
	snapshotValue() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Label renders a full metric name with one label attached, appending to any
// labels already present: Label(`a{x="1"}`, "y", "2") = `a{x="1",y="2"}`.
func Label(name, key, value string) string {
	pair := key + `="` + escapeLabel(value) + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a full metric name into base name and label block
// (including braces), e.g. `a{x="1"}` → (`a`, `{x="1"}`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// lookup returns the metric registered under name, creating it with mk on
// first use. A type clash (same name registered as a different kind) panics:
// it is a programming error in the instrumentation, not a runtime condition.
func (r *Registry) lookup(name string, mk func() metric) metric {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[name]; m == nil {
		m = mk()
		r.metrics[name] = m
	}
	return m
}

// Counter returns the named monotonically increasing counter, registering it
// on first use.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookup(name, func() metric { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.promType()))
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookup(name, func() metric { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.promType()))
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, registering it with
// the given upper bounds (ascending; an implicit +Inf bucket is added) on
// first use. Later calls may pass nil buckets to reuse the registered ones.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	m := r.lookup(name, func() metric { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.promType()))
	}
	return h
}

// Counter is a monotonically increasing counter. A nil *Counter is valid
// and inert, so hot loops can hold a handle that is nil when metrics are
// off and tick it unconditionally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (delta must be non-negative).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; a nil counter reads 0, matching the
// inert-nil contract of Add and Inc.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) promType() string { return "counter" }
func (c *Counter) writeProm(w io.Writer, base, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", base, labels, c.Value())
}
func (c *Counter) snapshotValue() any { return c.Value() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) promType() string { return "gauge" }
func (g *Gauge) writeProm(w io.Writer, base, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(g.Value()))
}
func (g *Gauge) snapshotValue() any { return g.Value() }

// DurationBuckets are the default histogram bounds for stage and estimate
// durations, in seconds: 1 ms … 100 s on a 1-2.5-5 ladder.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics: bucket i counts observations ≤ Buckets[i], with an implicit
// +Inf bucket at the end. Each bucket can additionally carry one exemplar —
// the trace ID of the most recent observation that landed in it — linking a
// latency spike on /metrics to a recorded trace in the flight recorder.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Int64

	exMu      sync.Mutex
	exemplars []Exemplar // lazily sized len(counts); zero TraceID = none
}

// Exemplar is one bucket's trace-ID exemplar: the sample value and the trace
// that produced it.
type Exemplar struct {
	TraceID string
	Value   float64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %v", bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.ObserveEx(v, "") }

// ObserveEx records one sample and, when traceID is non-empty, stores it as
// the landing bucket's exemplar (last writer wins).
func (h *Histogram) ObserveEx(v float64, traceID string) {
	// Bucket i spans (bounds[i-1], bounds[i]]; SearchFloat64s returns the
	// first index whose bound is ≥ v, which is exactly that bucket, and
	// len(bounds) — the +Inf bucket — when v exceeds every bound.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if traceID != "" {
		h.exMu.Lock()
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.counts))
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v}
		h.exMu.Unlock()
	}
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Exemplars returns the per-bucket exemplars (last entry is the +Inf
// bucket); entries with an empty TraceID have none. Returns nil when no
// exemplar was ever recorded.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	return append([]Exemplar(nil), h.exemplars...)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) promType() string { return "histogram" }
func (h *Histogram) writeProm(w io.Writer, base, labels string) {
	ex := h.Exemplars()
	// exSuffix renders bucket i's exemplar in OpenMetrics syntax
	// (` # {trace_id="..."} value`), or nothing when the bucket has none.
	exSuffix := func(i int) string {
		if ex == nil || ex[i].TraceID == "" {
			return ""
		}
		return fmt.Sprintf(` # {trace_id="%s"} %s`, escapeLabel(ex[i].TraceID), formatFloat(ex[i].Value))
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", base, Label(labels, "le", formatFloat(bound)), cum, exSuffix(i))
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", base, Label(labels, "le", "+Inf"), cum, exSuffix(len(h.bounds)))
	fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
}
func (h *Histogram) snapshotValue() any {
	return map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": h.BucketCounts()}
}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, sorted by name with one TYPE header per metric family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	snapshot := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		snapshot[name] = m
	}
	r.mu.RUnlock()
	sort.Strings(names)
	lastBase := ""
	for _, name := range names {
		base, labels := splitName(name)
		m := snapshot[name]
		if base != lastBase {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, m.promType())
			lastBase = base
		}
		m.writeProm(w, base, labels)
	}
}

// Snapshot returns a plain map of every metric's current value, keyed by
// full metric name — the expvar / JSON-report view of the registry.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = m.snapshotValue()
	}
	return out
}
