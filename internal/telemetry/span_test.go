package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestSpanRecordsIntoTrace(t *testing.T) {
	resetForTest()
	defer resetForTest()
	ctx, tr := EnsureTrace(context.Background())
	end := StartSpan(ctx, "core.model")
	time.Sleep(time.Millisecond)
	end()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Stage != "core.model" {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Duration <= 0 {
		t.Errorf("duration = %v, want > 0", stages[0].Duration)
	}
	if stages[0].Seconds() != stages[0].Duration.Seconds() {
		t.Errorf("Seconds() disagrees with Duration")
	}
}

func TestEnsureTraceReusesExisting(t *testing.T) {
	ctx, tr := EnsureTrace(context.Background())
	ctx2, tr2 := EnsureTrace(ctx)
	if tr2 != tr {
		t.Errorf("EnsureTrace replaced an existing trace")
	}
	if TraceFrom(ctx2) != tr {
		t.Errorf("trace not reachable from derived context")
	}
}

func TestSpanNoopWhenAllSinksOff(t *testing.T) {
	resetForTest()
	defer resetForTest()
	// Without a trace, a registry or a logger the span must not allocate a
	// closure per call — StartSpan returns the shared no-op terminator.
	end := StartSpan(context.Background(), "x")
	end()
	TimeStage("x")()
	if Default() != nil {
		t.Errorf("disabled span registered metrics")
	}
}

func TestSpanFeedsStageHistogram(t *testing.T) {
	resetForTest()
	defer resetForTest()
	r := Enable()
	StartSpan(context.Background(), "linalg.cholesky")()
	TimeStage("spatial.fitcorr")()
	name := Label("estimate_stage_duration_seconds", "stage", "linalg.cholesky")
	if got := r.Histogram(name, nil).Count(); got != 1 {
		t.Errorf("span histogram count = %d, want 1", got)
	}
	name = Label("estimate_stage_duration_seconds", "stage", "spatial.fitcorr")
	if got := r.Histogram(name, nil).Count(); got != 1 {
		t.Errorf("TimeStage histogram count = %d, want 1", got)
	}
}

// The zero-overhead contract: with no trace, no registry and no logger,
// every instrumentation hook is a nil check or a single atomic load.
// Compare against the *Enabled variants (and an empty loop) to verify the
// instrumented hot paths stay within noise of uninstrumented code.

func BenchmarkStartSpanDisabled(b *testing.B) {
	resetForTest()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StartSpan(ctx, "bench")()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	resetForTest()
	Enable()
	b.Cleanup(resetForTest)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StartSpan(ctx, "bench")()
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	resetForTest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add("bench_total", 1)
	}
}

func BenchmarkCounterHandleTick(b *testing.B) {
	// The hot-loop idiom: a nil handle ticked unconditionally.
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkProgressTickNil(b *testing.B) {
	var r *Reporter
	for i := 0; i < b.N; i++ {
		r.Tick(int64(i))
	}
}

func BenchmarkProgressTickRateLimited(b *testing.B) {
	ctx := WithProgress(context.Background(), func(Progress) {})
	r := StartProgress(ctx, "bench", int64(b.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Tick(int64(i))
	}
}
