package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func snapFor(id, outcome string, durS float64) TraceSnapshot {
	return TraceSnapshot{
		ID: id, Start: time.Unix(0, 0), DurS: durS, Outcome: outcome,
		Spans: []SpanSnapshot{{ID: 1, Stage: "estimate", DurS: durS}},
	}
}

func TestRecorderRecentRingBounded(t *testing.T) {
	f := NewFlightRecorder(RecorderConfig{Recent: 4, Notable: 4})
	for i := 0; i < 10; i++ {
		f.Record(snapFor(fmt.Sprintf("t-%d", i), "ok", 0.01))
	}
	if _, ok := f.Get("t-0"); ok {
		t.Errorf("oldest ok trace should have been evicted")
	}
	if _, ok := f.Get("t-9"); !ok {
		t.Errorf("newest trace missing")
	}
	if got := len(f.List()); got != 4 {
		t.Errorf("List() = %d entries, want 4", got)
	}
}

func TestRecorderNotableSurvivesRecentChurn(t *testing.T) {
	f := NewFlightRecorder(RecorderConfig{Recent: 2, Notable: 8})
	f.Record(snapFor("t-degraded", "degraded", 0.01))
	f.Record(snapFor("t-slow", "ok", 5)) // past the 1s default threshold
	for i := 0; i < 20; i++ {
		f.Record(snapFor(fmt.Sprintf("t-ok-%d", i), "ok", 0.01))
	}
	for _, id := range []string{"t-degraded", "t-slow"} {
		snap, ok := f.Get(id)
		if !ok {
			t.Fatalf("%s evicted; notable traces must survive recent churn", id)
		}
		if snap.ID != id || len(snap.Spans) != 1 {
			t.Errorf("%s snapshot mangled: %+v", id, snap)
		}
	}
}

func TestRecorderListNewestFirstDeduped(t *testing.T) {
	f := NewFlightRecorder(RecorderConfig{Recent: 8, Notable: 8})
	f.Record(snapFor("t-a", "ok", 0.01))
	f.Record(snapFor("t-b", "error", 0.01)) // lands in both rings
	f.Record(snapFor("t-c", "ok", 0.01))
	list := f.List()
	if len(list) != 3 {
		t.Fatalf("List() = %d entries, want 3 (deduped): %+v", len(list), list)
	}
	if list[0].ID != "t-c" || list[1].ID != "t-b" || list[2].ID != "t-a" {
		t.Errorf("order = %s,%s,%s, want newest first", list[0].ID, list[1].ID, list[2].ID)
	}
	for _, s := range list {
		if s.ID == "t-b" && !s.Notable {
			t.Errorf("error trace not marked notable")
		}
		if s.Root != "estimate" {
			t.Errorf("%s root = %q", s.ID, s.Root)
		}
	}
}

func TestNilRecorderInert(t *testing.T) {
	var f *FlightRecorder
	f.Record(snapFor("t-x", "ok", 0.01)) // must not panic
	if _, ok := f.Get("t-x"); ok {
		t.Errorf("nil recorder returned a trace")
	}
	if f.List() != nil {
		t.Errorf("nil recorder listed traces")
	}
}

func TestEnableFlightRecorderIdempotent(t *testing.T) {
	resetForTest()
	defer resetForTest()
	a := EnableFlightRecorder()
	b := EnableFlightRecorder()
	if a == nil || a != b {
		t.Errorf("EnableFlightRecorder not idempotent: %p vs %p", a, b)
	}
	if Recorder() != a {
		t.Errorf("Recorder() does not return the installed recorder")
	}
}

func TestWriteChromeParsesAsJSON(t *testing.T) {
	snap := snapFor("t-chrome", "degraded", 0.25)
	snap.Attrs = []Attr{{Key: "admission.level", Value: "busy"}}
	snap.Spans[0].Attrs = []Attr{{Key: "chipmc.sampler", Value: "fft"}}
	var sb strings.Builder
	if err := WriteChrome(&sb, snap); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want root + 1 span", len(events))
	}
	root := events[0]
	if root["name"] != "trace t-chrome" || root["ph"] != "X" {
		t.Errorf("root event = %+v", root)
	}
	args := root["args"].(map[string]any)
	if args["trace_id"] != "t-chrome" || args["outcome"] != "degraded" || args["admission.level"] != "busy" {
		t.Errorf("root args = %+v", args)
	}
	span := events[1]
	if span["name"] != "estimate" || span["dur"].(float64) != 0.25*1e6 {
		t.Errorf("span event = %+v", span)
	}
	if sa := span["args"].(map[string]any); sa["chipmc.sampler"] != "fft" {
		t.Errorf("span args = %+v", sa)
	}
}

func TestDebugTracesEndpoints(t *testing.T) {
	resetForTest()
	defer resetForTest()
	f := EnableFlightRecorder()
	f.Record(snapFor("t-http", "degraded", 0.5))
	srv := httptest.NewServer(NewMux(Enable()))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/traces")
	if code != 200 {
		t.Fatalf("GET /debug/traces = %d", code)
	}
	var listing struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("listing not JSON: %v\n%s", err, body)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].ID != "t-http" {
		t.Errorf("listing = %+v", listing.Traces)
	}

	code, body = get("/debug/traces/t-http")
	if code != 200 {
		t.Fatalf("GET /debug/traces/t-http = %d", code)
	}
	var snap TraceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("trace body not JSON: %v", err)
	}
	if snap.Outcome != "degraded" || len(snap.Spans) != 1 {
		t.Errorf("snapshot = %+v", snap)
	}

	code, body = get("/debug/traces/t-http?format=chrome")
	if code != 200 {
		t.Fatalf("chrome format = %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("chrome body not JSON: %v", err)
	}

	if code, _ = get("/debug/traces/no-such-id"); code != 404 {
		t.Errorf("missing trace = %d, want 404", code)
	}
	if code, _ = get("/debug/traces/t-http?format=perfetto"); code != 400 {
		t.Errorf("unknown format = %d, want 400", code)
	}
}
