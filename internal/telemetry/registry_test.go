package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	// The registry and its counters must be safe under concurrent lookup
	// and increment (this test is the -race probe for the metrics path).
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c").Inc()
				r.Histogram("h", DurationBuckets).Observe(0.003)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g").Value(); got != goroutines*perG {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// Prometheus ≤ semantics: a sample exactly on a bound lands in that
	// bound's bucket; anything beyond the last bound lands in +Inf.
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 2.5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.5, 2.6, 1e9} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2} // (≤1): 0.5, 1 — (≤2.5): 1.0001, 2.5 — +Inf: 2.6, 1e9
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if sum := h.Sum(); sum < 1e9 {
		t.Errorf("sum = %g, want ≥ 1e9", sum)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("non-ascending bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []float64{2, 1})
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Errorf("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestLabel(t *testing.T) {
	cases := []struct{ name, key, value, want string }{
		{"a", "m", "linear", `a{m="linear"}`},
		{`a{x="1"}`, "y", "2", `a{x="1",y="2"}`},
		{"a", "v", `q"u\o` + "\n", `a{v="q\"u\\o\n"}`},
	}
	for _, c := range cases {
		if got := Label(c.name, c.key, c.value); got != c.want {
			t.Errorf("Label(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("degradations_total", "reason", "timeout")).Add(2)
	r.Gauge("g").Set(1.5)
	h := r.Histogram(Label("h", "stage", "x"), []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(3)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# TYPE degradations_total counter
degradations_total{reason="timeout"} 2
# TYPE g gauge
g 1.5
# TYPE h histogram
h_bucket{stage="x",le="1"} 2
h_bucket{stage="x",le="2"} 2
h_bucket{stage="x",le="+Inf"} 3
h_sum{stage="x"} 4.5
h_count{stage="x"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("Prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(0.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != int64(7) {
		t.Errorf("snapshot counter = %v", snap["c"])
	}
	if snap["g"] != 0.25 {
		t.Errorf("snapshot gauge = %v", snap["g"])
	}
	hv, ok := snap["h"].(map[string]any)
	if !ok || hv["count"] != int64(1) {
		t.Errorf("snapshot histogram = %v", snap["h"])
	}
}

func TestPackageHelpersDisabledAndEnabled(t *testing.T) {
	resetForTest()
	defer resetForTest()
	// Disabled: the helpers must be inert, not panic or register anything.
	Inc("helper_c")
	SetGauge("helper_g", 1)
	ObserveSeconds("helper_h", 0.1)
	if Default() != nil || MetricsOn() {
		t.Fatalf("helpers enabled metrics as a side effect")
	}
	r := Enable()
	if r == nil || Default() != r || !MetricsOn() {
		t.Fatalf("Enable did not install the default registry")
	}
	if again := Enable(); again != r {
		t.Errorf("second Enable returned a different registry")
	}
	Inc("helper_c")
	Add("helper_c", 2)
	SetGauge("helper_g", 4)
	ObserveSeconds("helper_h", 0.1)
	if got := r.Counter("helper_c").Value(); got != 3 {
		t.Errorf("helper counter = %d, want 3", got)
	}
	if got := r.Gauge("helper_g").Value(); got != 4 {
		t.Errorf("helper gauge = %g, want 4", got)
	}
	if got := r.Histogram("helper_h", nil).Count(); got != 1 {
		t.Errorf("helper histogram count = %d, want 1", got)
	}
}

func TestNilCounterHandle(t *testing.T) {
	// Hot loops hold a possibly-nil *Counter and tick unconditionally —
	// exactly what chipmc does with its trials counter when no registry is
	// installed. Every method must be inert on the nil receiver, including
	// the read side.
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Errorf("nil counter Value() = %d, want 0", got)
	}
}

// The chipmc trial loop calls trialsC.Inc() unconditionally on a handle that
// is nil whenever telemetry is disabled; this pins the exact pattern.
func TestNilCounterHotLoopPattern(t *testing.T) {
	var trialsC *Counter
	if r := Default(); r != nil {
		t.Skip("a default registry is installed; the nil path is not reachable")
	}
	for i := 0; i < 1000; i++ {
		trialsC.Inc()
	}
	if trialsC.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	allocs := testing.AllocsPerRun(100, func() { trialsC.Inc() })
	if allocs != 0 {
		t.Errorf("nil Inc allocates %.1f times", allocs)
	}
}
