package telemetry

import (
	"context"
	"time"
)

// Progress is one progress report from a long-running pipeline loop.
type Progress struct {
	// Stage names the reporting loop (same namespace as span stages).
	Stage string
	// Done and Total count loop iterations; Total may be 0 when unknown.
	Done, Total int64
	// Elapsed is the wall-clock time since the loop started.
	Elapsed time.Duration
	// ETA estimates the remaining time from the average pace so far; it is
	// negative when no estimate is available yet.
	ETA time.Duration
	// Final marks the loop's completion report, which is always delivered
	// regardless of rate limiting.
	Final bool
}

// Percent returns completion in percent, or -1 when Total is unknown.
func (p Progress) Percent() float64 {
	if p.Total <= 0 {
		return -1
	}
	return 100 * float64(p.Done) / float64(p.Total)
}

// ProgressFunc receives rate-limited progress reports. It is called from
// the estimation goroutine itself — at the loops' existing cancellation
// checkpoints — so it must be fast and must not block.
type ProgressFunc func(Progress)

// DefaultProgressInterval is the minimum delay between two non-final
// reports to one ProgressFunc.
const DefaultProgressInterval = 100 * time.Millisecond

// progressConfig is what WithProgress stores in the context.
type progressConfig struct {
	fn       ProgressFunc
	interval time.Duration
}

type progressKey struct{}

// WithProgress returns a context whose instrumented loops report progress
// to fn at most once per DefaultProgressInterval (plus a guaranteed final
// report per loop).
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return WithProgressInterval(ctx, fn, DefaultProgressInterval)
}

// WithProgressInterval is WithProgress with an explicit rate limit; an
// interval ≤ 0 delivers every checkpoint tick (useful in tests).
func WithProgressInterval(ctx context.Context, fn ProgressFunc, interval time.Duration) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, &progressConfig{fn: fn, interval: interval})
}

// progressFrom returns the context's progress configuration, or nil.
func progressFrom(ctx context.Context) *progressConfig {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(progressKey{}).(*progressConfig)
	return c
}

// Reporter delivers rate-limited progress for one loop. A nil *Reporter is
// valid and inert, so instrumented loops tick unconditionally:
//
//	rep := telemetry.StartProgress(ctx, "core.truth", int64(n))
//	for i := ...; { ...; rep.Tick(int64(i)) }
//	rep.Done(int64(n))
//
// Reporter is not safe for concurrent use; each loop owns its reporter.
type Reporter struct {
	cfg       *progressConfig
	stage     string
	total     int64
	start     time.Time
	next      time.Time
	finalSent bool
}

// StartProgress creates the reporter for one loop, or nil when ctx carries
// no ProgressFunc — the fast path costs one context lookup per loop.
func StartProgress(ctx context.Context, stage string, total int64) *Reporter {
	cfg := progressFrom(ctx)
	if cfg == nil {
		return nil
	}
	return &Reporter{cfg: cfg, stage: stage, total: total, start: time.Now()}
}

// Tick reports done iterations, subject to the rate limit — except the
// terminal tick (done == total): that one is always delivered, marked
// Final, even when it lands inside the rate window. Without this the 100%
// report could be swallowed and a consumer waiting on Final would hang on a
// loop whose caller forgot Done.
func (r *Reporter) Tick(done int64) {
	if r == nil {
		return
	}
	if r.total > 0 && done >= r.total {
		r.finish(done)
		return
	}
	now := time.Now()
	if now.Before(r.next) {
		return
	}
	r.next = now.Add(r.cfg.interval)
	r.emit(done, now, false)
}

// Done delivers the loop's final report; it bypasses the rate limit. It is
// idempotent with a terminal Tick: when that tick already delivered the
// Final report, Done is a no-op, so consumers see exactly one Final per
// loop.
func (r *Reporter) Done(done int64) {
	if r == nil {
		return
	}
	r.finish(done)
}

// finish emits the Final report once.
func (r *Reporter) finish(done int64) {
	if r.finalSent {
		return
	}
	r.finalSent = true
	r.emit(done, time.Now(), true)
}

func (r *Reporter) emit(done int64, now time.Time, final bool) {
	elapsed := now.Sub(r.start)
	eta := time.Duration(-1)
	if final {
		eta = 0
	} else if done > 0 && r.total > 0 && done <= r.total {
		eta = time.Duration(float64(elapsed) * float64(r.total-done) / float64(done))
	}
	r.cfg.fn(Progress{
		Stage:   r.stage,
		Done:    done,
		Total:   r.total,
		Elapsed: elapsed,
		ETA:     eta,
		Final:   final,
	})
}
