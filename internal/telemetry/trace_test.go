package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestWithSpanBuildsTree(t *testing.T) {
	resetForTest()
	defer resetForTest()
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, endOuter := WithSpan(ctx, "estimate")
	SpanAttrInt(ctx, "gates", 64)
	endInner := StartSpan(ctx, "core.model")
	endInner()
	cctx, endChild := WithSpan(ctx, "chipmc.run")
	SpanAttrStr(cctx, "chipmc.sampler", "fft")
	endChild()
	endOuter()

	snap := tr.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("spans = %d, want 3: %+v", len(snap.Spans), snap.Spans)
	}
	outer := snap.Spans[0]
	if outer.Stage != "estimate" || outer.Parent != 0 {
		t.Errorf("outer = %+v, want top-level estimate", outer)
	}
	if len(outer.Attrs) != 1 || outer.Attrs[0].Key != "gates" || outer.Attrs[0].Value != int64(64) {
		t.Errorf("outer attrs = %+v", outer.Attrs)
	}
	for _, sp := range snap.Spans[1:] {
		if sp.Parent != outer.ID {
			t.Errorf("span %q parent = %d, want %d", sp.Stage, sp.Parent, outer.ID)
		}
	}
	if snap.Spans[2].Attrs[0].Key != "chipmc.sampler" || snap.Spans[2].Attrs[0].Value != "fft" {
		t.Errorf("child attrs = %+v", snap.Spans[2].Attrs)
	}
	if snap.Root() != "estimate" {
		t.Errorf("Root() = %q, want estimate", snap.Root())
	}
}

func TestSpanAttrOverwritesSameKey(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, end := WithSpan(ctx, "s")
	SpanAttrStr(ctx, "k", "v1")
	SpanAttrStr(ctx, "k", "v2")
	end()
	attrs := tr.Snapshot().Spans[0].Attrs
	if len(attrs) != 1 || attrs[0].Value != "v2" {
		t.Errorf("attrs = %+v, want single k=v2", attrs)
	}
}

func TestSpanAttrOutsideSpanLandsOnTrace(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	SpanAttrBool(ctx, "flag", true)
	snap := tr.Snapshot()
	if len(snap.Attrs) != 1 || snap.Attrs[0].Key != "flag" {
		t.Errorf("trace attrs = %+v", snap.Attrs)
	}
}

func TestTraceIDLazyAndSettable(t *testing.T) {
	tr := NewTrace()
	id := tr.ID()
	if !strings.HasPrefix(id, "t-") {
		t.Errorf("lazy ID = %q, want t- prefix", id)
	}
	if tr.ID() != id {
		t.Errorf("ID not stable across calls")
	}
	tr2 := NewTrace()
	tr2.SetID("req-42")
	if tr2.ID() != "req-42" {
		t.Errorf("SetID not honored: %q", tr2.ID())
	}
	if NewTrace().ID() == id {
		t.Errorf("two traces share a lazy ID")
	}
}

func TestAddSpanAtSkipsFlatStages(t *testing.T) {
	tr := NewTrace()
	start := time.Now()
	id := tr.AddSpanAt(0, "op.shard", start, 5*time.Millisecond, Attr{Key: "worker", Value: 0})
	if id != 1 {
		t.Errorf("span id = %d, want 1", id)
	}
	if got := tr.Stages(); len(got) != 0 {
		t.Errorf("AddSpanAt leaked into Stages: %+v", got)
	}
	sp := tr.Snapshot().Spans[0]
	if sp.Stage != "op.shard" || sp.DurS < 0.004 {
		t.Errorf("merged span = %+v", sp)
	}
}

func TestSnapshotReportsOpenSpans(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, end := WithSpan(ctx, "open")
	defer end()
	time.Sleep(2 * time.Millisecond)
	sp := tr.Snapshot().Spans[0]
	if sp.DurS <= 0 {
		t.Errorf("open span duration = %v, want accumulated > 0", sp.DurS)
	}
}

func TestStageHistogramCarriesExemplarTraceID(t *testing.T) {
	resetForTest()
	defer resetForTest()
	r := Enable()
	tr := NewTrace()
	tr.SetID("t-exemplar")
	ctx := WithTrace(context.Background(), tr)
	StartSpan(ctx, "core.model")()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="t-exemplar"}`) {
		t.Errorf("Prometheus output lacks the exemplar:\n%s", sb.String())
	}
}

// The zero-overhead contract, pinned: with all sinks off, every tracing
// hook must be allocation-free on the hot path.
func TestDisabledTracingAllocFree(t *testing.T) {
	resetForTest()
	defer resetForTest()
	ctx := context.Background()
	pins := map[string]func(){
		"StartSpan": func() { StartSpan(ctx, "x")() },
		"WithSpan": func() {
			_, end := WithSpan(ctx, "x")
			end()
		},
		"SpanAttrStr":   func() { SpanAttrStr(ctx, "k", "v") },
		"SpanAttrInt":   func() { SpanAttrInt(ctx, "k", 1) },
		"SpanAttrFloat": func() { SpanAttrFloat(ctx, "k", 1.5) },
		"SpanAttrBool":  func() { SpanAttrBool(ctx, "k", true) },
		"TimeStage":     func() { TimeStage("x")() },
	}
	for name, fn := range pins {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %v per op when disabled, want 0", name, n)
		}
	}
}
