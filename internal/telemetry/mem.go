package telemetry

import (
	"runtime"
	"sync/atomic"
)

// Peak-memory tracking for the tiled estimation pipeline (DESIGN.md §16):
// the streaming/tiled paths claim O(tile) + O(T²) peak memory instead of
// O(n), and that claim is only auditable if the process records the peak it
// actually reached. SamplePeakAlloc is called at tile boundaries — never in
// per-trial hot loops, since runtime.ReadMemStats stops the world — and
// maintains a monotone high-water mark exposed as the
// process_peak_alloc_bytes gauge.

// peakAllocBytes is the high-water mark of runtime heap allocation observed
// by SamplePeakAlloc since process start (or the last ResetPeakAlloc).
var peakAllocBytes atomic.Uint64

// SamplePeakAlloc reads the runtime's current heap allocation, folds it
// into the process-wide high-water mark, publishes the mark to the
// process_peak_alloc_bytes gauge when metrics are on, and returns it.
func SamplePeakAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	cur := ms.HeapAlloc
	for {
		old := peakAllocBytes.Load()
		if cur <= old {
			cur = old
			break
		}
		if peakAllocBytes.CompareAndSwap(old, cur) {
			break
		}
	}
	if sinkOn.Load() {
		if r := def.Load(); r != nil {
			r.Gauge("process_peak_alloc_bytes").Set(float64(cur))
		}
	}
	return cur
}

// PeakAllocBytes returns the current high-water mark without sampling.
func PeakAllocBytes() uint64 { return peakAllocBytes.Load() }

// ResetPeakAlloc clears the high-water mark so a benchmark or test can
// measure the peak of one run in isolation.
func ResetPeakAlloc() { peakAllocBytes.Store(0) }
