package randvar

import (
	"math"
	"testing"

	"leakest/internal/fft"
	"leakest/internal/linalg"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func qmcTestSampler(t testing.TB, rows, cols int) *GridSampler {
	t.Helper()
	proc := &spatial.Process{
		LNominal: 0.1,
		SigmaD2D: 0,
		SigmaWID: 0.004,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 3, R: 6},
	}
	grid := placement.Grid{Rows: rows, Cols: cols, SiteW: 2, SiteH: 2}
	s, err := NewGridSampler(proc, grid)
	if err != nil {
		t.Fatalf("NewGridSampler(%dx%d): %v", rows, cols, err)
	}
	return s
}

// TestTopModesOrder pins the deterministic mode ranking the qmc sampler's
// dimension assignment depends on: amplitudes non-increasing, ties broken
// by ascending index, truncation at max, and nil for max ≤ 0.
func TestTopModesOrder(t *testing.T) {
	s := qmcTestSampler(t, 8, 8)
	all := s.TopModes(s.TorusLen())
	if len(all) == 0 {
		t.Fatal("no positive-amplitude modes on a WID sampler")
	}
	for i := 1; i < len(all); i++ {
		ai, aj := s.scale[all[i-1]], s.scale[all[i]]
		if ai < aj || (ai == aj && all[i-1] >= all[i]) {
			t.Fatalf("mode order violated at %d: (%d, %g) before (%d, %g)",
				i, all[i-1], ai, all[i], aj)
		}
	}
	top := s.TopModes(17)
	if len(top) != 17 {
		t.Fatalf("TopModes(17) returned %d modes", len(top))
	}
	for i, k := range top {
		if k != all[i] {
			t.Fatalf("truncated ranking diverges at %d: %d vs %d", i, k, all[i])
		}
	}
	if s.TopModes(0) != nil || s.TopModes(-1) != nil {
		t.Fatal("TopModes(≤0) must be nil")
	}
}

// TestPairRealChannelMatchesSampleInto is the frozen-law anchor of the
// Dietrich–Newsam pairing: feeding FillPairSpectrum from the same PRNG
// stream SampleInto would use (D2D deviate first, then the spectrum in mode
// order), the pair's REAL channel must reproduce SampleInto's field
// bitwise — the imaginary channel is the extra, independent field.
func TestPairRealChannelMatchesSampleInto(t *testing.T) {
	s := qmcTestSampler(t, 6, 10)
	sc := s.NewScratch()
	sites := s.Grid().Sites()
	ref := make([]float64, sites)
	fa := make([]float64, sites)
	fb := make([]float64, sites)
	torus := make([]complex128, s.TorusLen())
	tm, tn := s.TorusDims()
	scratch := make([]complex128, fft.Scratch2DLen(tm, tn))
	for seed := int64(1); seed <= 5; seed++ {
		rngA := stats.NewRNG(seed, "pair-ref")
		if err := s.SampleInto(rngA, sc, ref); err != nil {
			t.Fatal(err)
		}
		rngB := stats.NewRNG(seed, "pair-ref")
		z0 := rngB.NormFloat64()
		s.FillPairSpectrum(rngB, torus)
		if err := fft.Transform2DInto(torus, tm, tn, true, scratch); err != nil {
			t.Fatal(err)
		}
		s.ExtractPair(torus, z0, -z0, fa, fb)
		for i := range ref {
			if fa[i] != ref[i] {
				t.Fatalf("seed %d site %d: pair real channel %v != SampleInto %v",
					seed, i, fa[i], ref[i])
			}
			if math.IsNaN(fb[i]) {
				t.Fatalf("seed %d site %d: NaN in imaginary channel", seed, i)
			}
		}
	}
}

// TestPairImagChannelLaw checks the second field statistically: the
// imaginary channel must carry the same marginal variance and lag
// correlation as the real one and be uncorrelated with it (independent
// white-noise channels). 6000 pairs put the 5σ band at ≈9% relative.
func TestPairImagChannelLaw(t *testing.T) {
	s := qmcTestSampler(t, 4, 4)
	const pairs = 6000
	torus := make([]complex128, s.TorusLen())
	tm, tn := s.TorusDims()
	scratch := make([]complex128, fft.Scratch2DLen(tm, tn))
	sites := s.Grid().Sites()
	fa := make([]float64, sites)
	fb := make([]float64, sites)
	rng := stats.NewRNG(7, "pair-law")
	// Track site 0 and its row neighbour (lag = one pitch) on both channels.
	a0 := make([]float64, pairs)
	a1 := make([]float64, pairs)
	b0 := make([]float64, pairs)
	b1 := make([]float64, pairs)
	for p := 0; p < pairs; p++ {
		s.FillPairSpectrum(rng, torus)
		if err := fft.Transform2DInto(torus, tm, tn, true, scratch); err != nil {
			t.Fatal(err)
		}
		s.ExtractPair(torus, rng.NormFloat64(), rng.NormFloat64(), fa, fb)
		a0[p], a1[p] = fa[0], fa[1]
		b0[p], b1[p] = fb[0], fb[1]
	}
	const vw = 0.004 * 0.004
	z := 5.0 / math.Sqrt(pairs)                    // 5σ band for a correlation estimate
	vtol := 5 * vw * math.Sqrt2 / math.Sqrt(pairs) // 5σ band for a variance
	wantRho := spatial.TruncatedExpCorr{Lambda: 3, R: 6}.Rho(2)
	for name, c := range map[string][]float64{"real": a0, "imag": b0} {
		if v := stats.Variance(c); math.Abs(v-vw) > vtol {
			t.Errorf("%s channel variance %.4g, want %.4g ± %.2g", name, v, vw, vtol)
		}
	}
	if r := stats.Correlation(a0, a1); math.Abs(r-wantRho) > z {
		t.Errorf("real channel lag-1 correlation %.4f, want %.4f ± %.4f", r, wantRho, z)
	}
	if r := stats.Correlation(b0, b1); math.Abs(r-wantRho) > z {
		t.Errorf("imag channel lag-1 correlation %.4f, want %.4f ± %.4f", r, wantRho, z)
	}
	if r := stats.Correlation(a0, b0); math.Abs(r) > z {
		t.Errorf("cross-channel correlation %.4f, want 0 ± %.4f", r, z)
	}
}

// TestSetModeOverride: SetMode must reproduce exactly what FillPairSpectrum
// writes for the same deviates, and changing a mode's deviates changes only
// that entry.
func TestSetModeOverride(t *testing.T) {
	s := qmcTestSampler(t, 4, 4)
	torus := make([]complex128, s.TorusLen())
	rng := stats.NewRNG(3, "setmode")
	s.FillPairSpectrum(rng, torus)
	ref := append([]complex128(nil), torus...)
	top := s.TopModes(4)
	for _, k := range top {
		g1 := real(ref[k]) / s.scale[k]
		g2 := imag(ref[k]) / s.scale[k]
		s.SetMode(torus, k, g1, g2)
		if torus[k] != ref[k] {
			t.Fatalf("SetMode(%d) with identical deviates changed the entry", k)
		}
		s.SetMode(torus, k, g1+1, g2)
		if torus[k] == ref[k] {
			t.Fatalf("SetMode(%d) with different deviates left the entry", k)
		}
		s.SetMode(torus, k, g1, g2)
	}
	for i := range torus {
		if torus[i] != ref[i] {
			t.Fatalf("entry %d changed by SetMode round-trip", i)
		}
	}
}

// TestSamplePartialInto pins the dense-qmc hook: with fixed = 0 it is
// bitwise SampleInto; with fixed = n it consumes nothing from the PRNG and
// is a pure deterministic map of the supplied deviates.
func TestSamplePartialInto(t *testing.T) {
	const n = 6
	mean := make([]float64, n)
	cov := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cov.Set(i, j, 2*math.Pow(0.5, math.Abs(float64(i-j))))
		}
	}
	s, err := NewMVNSampler(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	out1 := make([]float64, n)
	out2 := make([]float64, n)
	rng1 := stats.NewRNG(11, "partial")
	rng2 := stats.NewRNG(11, "partial")
	for i := 0; i < 20; i++ {
		s.SampleInto(rng1, z1, out1)
		s.SamplePartialInto(rng2, z2, out2, 0)
		for j := range out1 {
			if out1[j] != out2[j] {
				t.Fatalf("draw %d dim %d: fixed=0 %v != SampleInto %v", i, j, out2[j], out1[j])
			}
		}
	}
	// fixed = n: the result must be a pure map of the supplied deviates,
	// independent of the PRNG handed in.
	for j := range z1 {
		z1[j] = float64(j) - 2
	}
	copy(z2, z1)
	s.SamplePartialInto(stats.NewRNG(11, "partial-unused"), z1, out1, n)
	s.SamplePartialInto(stats.NewRNG(99, "partial-other"), z2, out2, n)
	for j := range out1 {
		if out1[j] != out2[j] {
			t.Fatalf("fixed=n dim %d depends on the PRNG: %v vs %v", j, out1[j], out2[j])
		}
	}
	for _, bad := range []int{-1, n + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fixed=%d must panic", bad)
				}
			}()
			s.SamplePartialInto(rng1, z1, out1, bad)
		}()
	}
}

// FuzzBatchedDraw fuzzes the batched pair-field pipeline against the
// unbatched one: for arbitrary small grids (odd and even, non-square) and
// batch sizes, filling the same pair spectra and transforming them through
// one Transform2DBatchInto pass must reproduce the per-pair
// Transform2DInto fields bitwise, with every site finite.
func FuzzBatchedDraw(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(3), int64(1))
	f.Add(uint8(1), uint8(7), uint8(1), int64(9))
	f.Add(uint8(5), uint8(2), uint8(4), int64(-3))
	f.Fuzz(func(t *testing.T, rows8, cols8, pairs8 uint8, seed int64) {
		rows := int(rows8)%8 + 1
		cols := int(cols8)%8 + 1
		batchPairs := int(pairs8)%5 + 1
		s := qmcTestSampler(t, rows, cols)
		tm, tn := s.TorusDims()
		tlen := s.TorusLen()
		sites := s.Grid().Sites()
		scratch := make([]complex128, fft.Scratch2DLen(tm, tn))
		batched := make([]complex128, batchPairs*tlen)
		single := make([]complex128, tlen)
		stream := stats.NewStream(seed, "fuzz-batch#")
		rng := stats.NewRNG(seed, "fuzz-batch-z0")
		z0 := make([]float64, 2*batchPairs)
		for i := range z0 {
			z0[i] = rng.NormFloat64()
		}
		fill := func(p int, dst []complex128) {
			prng := stats.NewRNG(stream.SeedFor(p), "pair")
			s.FillPairSpectrum(prng, dst)
		}
		for p := 0; p < batchPairs; p++ {
			fill(p, batched[p*tlen:(p+1)*tlen])
		}
		if err := fft.Transform2DBatchInto(batched, batchPairs, tm, tn, true, scratch); err != nil {
			t.Fatal(err)
		}
		fa := make([]float64, sites)
		fb := make([]float64, sites)
		ra := make([]float64, sites)
		rb := make([]float64, sites)
		for p := 0; p < batchPairs; p++ {
			fill(p, single)
			if err := fft.Transform2DInto(single, tm, tn, true, scratch); err != nil {
				t.Fatal(err)
			}
			s.ExtractPair(single, z0[2*p], z0[2*p+1], ra, rb)
			s.ExtractPair(batched[p*tlen:(p+1)*tlen], z0[2*p], z0[2*p+1], fa, fb)
			for i := 0; i < sites; i++ {
				if fa[i] != ra[i] || fb[i] != rb[i] {
					t.Fatalf("%dx%d batch=%d pair %d site %d: batched (%v, %v) != single (%v, %v)",
						rows, cols, batchPairs, p, i, fa[i], fb[i], ra[i], rb[i])
				}
				if math.IsNaN(fa[i]) || math.IsInf(fa[i], 0) || math.IsNaN(fb[i]) || math.IsInf(fb[i], 0) {
					t.Fatalf("non-finite site %d in pair %d", i, p)
				}
			}
		}
	})
}
