package randvar

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"leakest/internal/linalg"
	"leakest/internal/quad"
	"leakest/internal/stats"
)

func TestNormalPDFCDF(t *testing.T) {
	// Standard normal at 0.
	if got := NormalPDF(0, 0, 1); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-14 {
		t.Errorf("pdf(0) = %g", got)
	}
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-14 {
		t.Errorf("cdf(0) = %g", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.9750021) > 1e-5 {
		t.Errorf("cdf(1.96) = %g", got)
	}
	// PDF integrates to CDF difference.
	got := quad.AdaptiveSimpson(func(x float64) float64 { return NormalPDF(x, 2, 3) }, -10, 5, 1e-12)
	want := NormalCDF(5, 2, 3) - NormalCDF(-10, 2, 3)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("∫pdf = %g, want %g", got, want)
	}
}

func TestLogNormalMeanFactor(t *testing.T) {
	// E[exp(kZ)] for Z~N(0,σ²) is exp(k²σ²/2); cross-check by quadrature.
	k, sigma := 2.5, 0.04
	want := quad.AdaptiveSimpson(func(z float64) float64 {
		return math.Exp(k*z) * NormalPDF(z, 0, sigma)
	}, -10*sigma, 10*sigma, 1e-14)
	if got := LogNormalMeanFactor(k, sigma); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean factor = %.12g, want %.12g", got, want)
	}
	if got := LogNormalMeanFactor(0, 1); got != 1 {
		t.Errorf("k=0 factor = %g, want 1", got)
	}
}

// numericExpMoment computes E[exp(cL²+bL)] for L~N(mu,σ²) by quadrature.
func numericExpMoment(b, c, mu, sigma float64) float64 {
	return quad.AdaptiveSimpson(func(l float64) float64 {
		return math.Exp(c*l*l+b*l) * NormalPDF(l, mu, sigma)
	}, mu-12*sigma, mu+12*sigma, 1e-14)
}

func TestGaussExpMoment1D(t *testing.T) {
	cases := []struct{ b, c, mu, sigma float64 }{
		{0, 0, 0, 1},
		{1.5, 0, 0.2, 0.5},
		{-3, 0.4, 1, 0.3},
		{-80, 100, 0.09, 0.0045}, // leakage-like scale: L≈90nm in µm units
		{2, -1, 0, 1},            // negative curvature always converges
	}
	for _, cse := range cases {
		got, err := GaussExpMoment1D(cse.b, cse.c, cse.mu, cse.sigma)
		if err != nil {
			t.Fatalf("case %+v: %v", cse, err)
		}
		want := numericExpMoment(cse.b, cse.c, cse.mu, cse.sigma)
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Errorf("case %+v: got %.12g, want %.12g", cse, got, want)
		}
	}
}

func TestGaussExpMoment1DDiverges(t *testing.T) {
	// c·σ² = 0.5 ⇒ 1−2cσ² = 0: moment does not exist.
	_, err := GaussExpMoment1D(0, 0.5, 0, 1)
	if !errors.Is(err, ErrDiverges) {
		t.Errorf("expected ErrDiverges, got %v", err)
	}
}

func TestGaussQuadExp2DAgainstQuadrature(t *testing.T) {
	// Cross-check the closed form against 2-D numerical integration on a
	// few leakage-like parameter sets.
	cases := []struct{ a1, a2, b1, b2, m1, m2, s1, s2, rho float64 }{
		{0, 0, 1, -1, 0, 0, 1, 1, 0.5},
		{0.3, -0.2, 0.5, 1, 0.1, -0.3, 0.7, 0.9, -0.6},
		{2, 1, -1, -2, 0.5, 0.5, 0.3, 0.25, 0.9},
		{0, 0, 0, 0, 1, 2, 1, 1, 0.0},
	}
	for _, c := range cases {
		got, err := GaussQuadExp2D(c.a1, c.a2, c.b1, c.b2, c.m1, c.m2, c.s1, c.s2, c.rho)
		if err != nil {
			t.Fatalf("case %+v: %v", c, err)
		}
		// Numeric: integrate exp(a1x²+a2y²+b1x+b2y)·N2(x,y) over a wide box.
		det := c.s1 * c.s1 * c.s2 * c.s2 * (1 - c.rho*c.rho)
		norm := 1 / (2 * math.Pi * math.Sqrt(det))
		f := func(x, y float64) float64 {
			dx, dy := x-c.m1, y-c.m2
			q := (dx*dx/(c.s1*c.s1) - 2*c.rho*dx*dy/(c.s1*c.s2) + dy*dy/(c.s2*c.s2)) / (1 - c.rho*c.rho)
			return math.Exp(c.a1*x*x+c.a2*y*y+c.b1*x+c.b2*y-0.5*q) * norm
		}
		want := quad.Integrate2D(f,
			c.m1-10*c.s1, c.m1+10*c.s1, c.m2-10*c.s2, c.m2+10*c.s2, 24, 24)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("case %+v: got %.10g, want %.10g", c, got, want)
		}
	}
}

func TestGaussQuadExp2DConsistentWith1D(t *testing.T) {
	// At ρ→0 the 2-D moment factorizes into the product of 1-D moments.
	a1, a2, b1, b2 := 0.3, -0.1, -2.0, 1.0
	mu, s := 0.09, 0.005
	m2d, err := GaussQuadExp2D(a1, a2, b1, b2, mu, mu, s, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := GaussExpMoment1D(b1, a1, mu, s)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := GaussExpMoment1D(b2, a2, mu, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2d-m1*m2) > 1e-10*(1+m1*m2) {
		t.Errorf("ρ=0: %.12g != %.12g·%.12g", m2d, m1, m2)
	}
}

func TestGaussQuadExp2DErrors(t *testing.T) {
	if _, err := GaussQuadExp2D(0, 0, 0, 0, 0, 0, -1, 1, 0); err == nil {
		t.Errorf("expected error for negative sigma")
	}
	if _, err := GaussQuadExp2D(0, 0, 0, 0, 0, 0, 1, 1, 1); err == nil {
		t.Errorf("expected error for |rho| = 1")
	}
	if _, err := GaussQuadExp2D(10, 10, 0, 0, 0, 0, 1, 1, 0); !errors.Is(err, ErrDiverges) {
		t.Errorf("expected ErrDiverges for huge quadratic, got %v", err)
	}
}

func TestMGFAgainstNumericMoments(t *testing.T) {
	// For several (a,b,c) triplets, Eqs. (1)–(5) must agree with the direct
	// quadrature of a·e^(bL+cL²) and its square.
	mu, sigma := 0.09, 0.0045 // 90 nm ±5 % (in µm)
	cases := []struct{ a, b, c float64 }{
		{1e-8, -60, 0},
		{1e-8, -60, 150},
		{3e-9, -45, -200},
		{5e-7, -100, 400},
	}
	for _, cse := range cases {
		p, err := NewMGFParams(cse.a, cse.b, cse.c, mu, sigma)
		if err != nil {
			t.Fatalf("params %+v: %v", cse, err)
		}
		mean, std, err := p.Moments()
		if err != nil {
			t.Fatalf("moments %+v: %v", cse, err)
		}
		wantMean := cse.a * numericExpMoment(cse.b, cse.c, mu, sigma)
		wantM2 := cse.a * cse.a * numericExpMoment(2*cse.b, 2*cse.c, mu, sigma)
		wantStd := math.Sqrt(wantM2 - wantMean*wantMean)
		if math.Abs(mean-wantMean) > 1e-8*wantMean {
			t.Errorf("case %+v: mean %.10g, want %.10g", cse, mean, wantMean)
		}
		if math.Abs(std-wantStd) > 1e-6*wantStd {
			t.Errorf("case %+v: std %.10g, want %.10g", cse, std, wantStd)
		}
	}
}

func TestMGFDivergence(t *testing.T) {
	// c·σ² must satisfy 1−2K₁t>0 at t=2, i.e. cσ² < 1/4.
	p, err := NewMGFParams(1, 0, 0.3, 0, 1) // K1 = 0.3 ⇒ t=2 gives 1-1.2 < 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MGF(2); !errors.Is(err, ErrDiverges) {
		t.Errorf("expected ErrDiverges at t=2, got %v", err)
	}
	if _, _, err := p.Moments(); err == nil {
		t.Errorf("Moments should propagate divergence")
	}
}

func TestNewMGFParamsErrors(t *testing.T) {
	if _, err := NewMGFParams(-1, 0, 0, 0, 1); err == nil {
		t.Errorf("expected error for a ≤ 0")
	}
	if _, err := NewMGFParams(1, 0, 0, 0, 0); err == nil {
		t.Errorf("expected error for sigma ≤ 0")
	}
}

// Property: for random well-posed triplets, the MGF moments match MC
// sampling of X = a·e^(bL+cL²) to within sampling error.
func TestMGFPropertyVsMC(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed, "mgf-mc")
		mu, sigma := 0.09, 0.0045
		b := -40 - 40*rng.Float64()
		c := (rng.Float64() - 0.3) * 2000
		if c*sigma*sigma >= 0.2 { // keep comfortably inside convergence
			c = 0.2 / (sigma * sigma) * 0.5
		}
		a := math.Exp(-18 + 2*rng.NormFloat64())
		p, err := NewMGFParams(a, b, c, mu, sigma)
		if err != nil {
			return false
		}
		mean, std, err := p.Moments()
		if err != nil {
			return false
		}
		var run stats.Running
		for i := 0; i < 20000; i++ {
			l := mu + sigma*rng.NormFloat64()
			run.Push(a * math.Exp(b*l+c*l*l))
		}
		// 5σ/√N band on the mean estimate.
		tol := 5 * std / math.Sqrt(20000)
		return math.Abs(run.Mean()-mean) < tol+1e-12*mean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMVNSampler(t *testing.T) {
	// 3-D covariance with strong structure; verify sample moments.
	cov := linalg.NewMatrixFrom(3, 3, []float64{
		4, 2, 1,
		2, 3, 0.5,
		1, 0.5, 2,
	})
	mean := []float64{1, -2, 0.5}
	s, err := NewMVNSampler(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 3 {
		t.Errorf("Dim = %d", s.Dim())
	}
	rng := stats.NewRNG(5, "mvn")
	n := 60000
	sums := make([]float64, 3)
	prods := linalg.NewMatrix(3, 3)
	x := make([]float64, 3)
	for i := 0; i < n; i++ {
		s.Sample(rng, x)
		for j := 0; j < 3; j++ {
			sums[j] += x[j]
			for k := 0; k < 3; k++ {
				prods.Add(j, k, x[j]*x[k])
			}
		}
	}
	for j := 0; j < 3; j++ {
		m := sums[j] / float64(n)
		if math.Abs(m-mean[j]) > 0.05 {
			t.Errorf("mean[%d] = %g, want %g", j, m, mean[j])
		}
		for k := 0; k < 3; k++ {
			c := prods.At(j, k)/float64(n) - (sums[j]/float64(n))*(sums[k]/float64(n))
			if math.Abs(c-cov.At(j, k)) > 0.1 {
				t.Errorf("cov[%d][%d] = %g, want %g", j, k, c, cov.At(j, k))
			}
		}
	}
}

func TestMVNSamplerErrors(t *testing.T) {
	cov := linalg.Identity(2)
	if _, err := NewMVNSampler([]float64{1}, cov); err == nil {
		t.Errorf("expected dimension mismatch error")
	}
	// Indefinite covariance must be rejected.
	bad := linalg.NewMatrixFrom(2, 2, []float64{1, 3, 3, 1})
	if _, err := NewMVNSampler([]float64{0, 0}, bad); err == nil {
		t.Errorf("expected factorization error")
	}
}

func TestBivariateNormal(t *testing.T) {
	rng := stats.NewRNG(11, "bvn")
	n := 80000
	xs := make([]float64, n)
	ys := make([]float64, n)
	rho := 0.7
	for i := 0; i < n; i++ {
		xs[i], ys[i] = BivariateNormal(rng, 2, 3, -1, 0.5, rho)
	}
	if m := stats.Mean(xs); math.Abs(m-2) > 0.05 {
		t.Errorf("mean x = %g", m)
	}
	if m := stats.Mean(ys); math.Abs(m+1) > 0.02 {
		t.Errorf("mean y = %g", m)
	}
	if s := stats.StdDev(xs); math.Abs(s-3) > 0.05 {
		t.Errorf("std x = %g", s)
	}
	if r := stats.Correlation(xs, ys); math.Abs(r-rho) > 0.02 {
		t.Errorf("correlation = %g, want %g", r, rho)
	}
}
