package randvar

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9750021048517795, 1.96},
		{0.975, 1.959963984540054},
		{0.0013498980316301035, -3},
		{0.9999683287581669, 4},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("quantile(%g) = %.12g, want %.12g", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	// Φ(Φ⁻¹(p)) = p across the domain, including deep tails.
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-6, 1 - 1e-12} {
		x := NormalQuantile(p)
		back := NormalCDF(x, 0, 1)
		if math.Abs(back-p) > 1e-12*(1+p) && math.Abs(back-p)/p > 1e-9 {
			t.Errorf("roundtrip p=%g: got %g", p, back)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.5)
		if p == 0 {
			p = 0.25
		}
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%g) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	mean, std := 3.0, 1.2
	mu, sigma, err := LogNormalFromMoments(mean, std)
	if err != nil {
		t.Fatal(err)
	}
	// Moments of lognormal(mu, sigma): mean = e^{mu+sigma²/2},
	// var = (e^{sigma²}−1)e^{2mu+sigma²}.
	gotMean := math.Exp(mu + sigma*sigma/2)
	gotVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	if math.Abs(gotMean-mean) > 1e-12 {
		t.Errorf("mean %g, want %g", gotMean, mean)
	}
	if math.Abs(math.Sqrt(gotVar)-std) > 1e-12 {
		t.Errorf("std %g, want %g", math.Sqrt(gotVar), std)
	}
	if _, _, err := LogNormalFromMoments(-1, 1); err == nil {
		t.Errorf("negative mean accepted")
	}
	if _, _, err := LogNormalFromMoments(1, -1); err == nil {
		t.Errorf("negative std accepted")
	}
	// Zero std degenerates gracefully.
	mu, sigma, err = LogNormalFromMoments(5, 0)
	if err != nil || sigma != 0 || math.Abs(math.Exp(mu)-5) > 1e-12 {
		t.Errorf("degenerate case: mu=%g sigma=%g err=%v", mu, sigma, err)
	}
}
