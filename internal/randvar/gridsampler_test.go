package randvar

import (
	"math"
	"strings"
	"testing"

	"leakest/internal/fft"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func gridTestProcess() *spatial.Process {
	const l = 0.09
	sigma := 0.04 * l
	return &spatial.Process{
		LNominal: l,
		SigmaD2D: sigma * math.Sqrt(0.5),
		SigmaWID: sigma * math.Sqrt(0.5),
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 6, R: 24},
	}
}

// Property required by the embedding: the torus covariance implied by the
// retained spectrum — the normalized inverse DFT of λ — reproduces the WID
// kernel σ_WID²·ρ(LagDist) at EVERY admissible grid lag, to FFT round-off.
// This is what makes the FFT sampler exact rather than approximate.
func TestGridSamplerKernelExactAtEveryLag(t *testing.T) {
	proc := gridTestProcess()
	for _, dims := range [][2]int{{1, 1}, {1, 16}, {5, 5}, {12, 7}, {32, 32}} {
		grid := placement.Grid{Rows: dims[0], Cols: dims[1], SiteW: 2, SiteH: 2}
		s, err := NewGridSampler(proc, grid)
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		// λ_k = scale[k]²·tm·tn; covariance at lag = (1/MN)·Σ λ_k e^{iθ·lag},
		// i.e. the normalized inverse DFT of the spectrum.
		mn := float64(s.tm * s.tn)
		cov := make([]complex128, s.tm*s.tn)
		for k, a := range s.scale {
			cov[k] = complex(a*a*mn, 0)
		}
		if err := fft.Transform2D(cov, s.tm, s.tn, true); err != nil {
			t.Fatal(err)
		}
		vw := proc.SigmaWID * proc.SigmaWID
		worst := 0.0
		for dr := 0; dr < grid.Rows; dr++ {
			for dc := 0; dc < grid.Cols; dc++ {
				got := real(cov[dr*s.tn+dc]) / mn
				want := vw * proc.WIDCorr.Rho(grid.LagDist(dr, dc))
				if d := math.Abs(got - want); d > worst {
					worst = d
				}
			}
		}
		if tol := 1e-12 * vw; worst > tol {
			t.Errorf("%dx%d grid (torus %dx%d): worst lag-covariance deviation %g > %g",
				dims[0], dims[1], s.tm, s.tn, worst, tol)
		}
	}
}

// The sampled field's empirical moments must match the dense model
// Σ_ab = σ_D2D² + σ_WID²·ρ(d_ab) within Monte-Carlo standard error.
func TestGridSamplerEmpiricalMoments(t *testing.T) {
	proc := gridTestProcess()
	grid := placement.Grid{Rows: 8, Cols: 8, SiteW: 2, SiteH: 2}
	s, err := NewGridSampler(proc, grid)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	rng := stats.NewRNG(99, "gridsampler-moments")
	sc := s.NewScratch()
	field := make([]float64, s.Sites())
	// Track site 0 against three partners: itself (variance), a neighbour,
	// and the far corner.
	partners := []int{0, 1, s.Sites() - 1}
	a := make([]float64, trials)
	bs := make([][]float64, len(partners))
	for i := range bs {
		bs[i] = make([]float64, trials)
	}
	for tr := 0; tr < trials; tr++ {
		if err := s.SampleInto(rng, sc, field); err != nil {
			t.Fatal(err)
		}
		a[tr] = field[0]
		for i, p := range partners {
			bs[i][tr] = field[p]
		}
	}
	if m := stats.Mean(a); math.Abs(m-proc.LNominal) > 5*proc.TotalSigma()/math.Sqrt(trials) {
		t.Errorf("field mean %g vs nominal %g", m, proc.LNominal)
	}
	vd := proc.SigmaD2D * proc.SigmaD2D
	vw := proc.SigmaWID * proc.SigmaWID
	pl := &placement.Placement{Grid: grid, Site: identitySites(grid.Sites())}
	for i, p := range partners {
		want := vd + vw*proc.WIDCorr.Rho(pl.Dist(0, p))
		got := stats.Covariance(a, bs[i])
		// SE of a sample covariance is O(var/√n); allow 5× with headroom.
		se := 5 * (vd + vw) * 1.5 / math.Sqrt(trials)
		if math.Abs(got-want) > se {
			t.Errorf("cov(site 0, site %d) = %g, want %g ± %g", p, got, want, se)
		}
	}
}

func identitySites(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// Two samplers over the same stream must agree bitwise, and the WID-free
// process must produce a constant field equal to mean + σ_D2D·z₀.
func TestGridSamplerDeterminismAndD2DOnly(t *testing.T) {
	proc := gridTestProcess()
	grid := placement.Grid{Rows: 6, Cols: 10, SiteW: 2, SiteH: 2}
	s1, err := NewGridSampler(proc, grid)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewGridSampler(proc, grid)
	f1 := make([]float64, s1.Sites())
	f2 := make([]float64, s2.Sites())
	if err := s1.SampleInto(stats.NewRNG(7, "det"), s1.NewScratch(), f1); err != nil {
		t.Fatal(err)
	}
	if err := s2.SampleInto(stats.NewRNG(7, "det"), s2.NewScratch(), f2); err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("draw not deterministic at site %d: %v vs %v", i, f1[i], f2[i])
		}
	}
	d2d := &spatial.Process{LNominal: 0.09, SigmaD2D: 0.002}
	sd, err := NewGridSampler(d2d, grid)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7, "d2d-only")
	want := d2d.LNominal + d2d.SigmaD2D*stats.NewRNG(7, "d2d-only").NormFloat64()
	if err := sd.SampleInto(rng, sd.NewScratch(), f1); err != nil {
		t.Fatal(err)
	}
	for i, v := range f1 {
		if v != want {
			t.Fatalf("D2D-only field not constant at %d: %v vs %v", i, v, want)
		}
	}
}

// boxcarCorr is deliberately not positive definite on the plane (a 2-D
// boxcar has a sign-changing spectrum), so every embedding attempt must be
// rejected and NewGridSampler must surface the typed failure.
type boxcarCorr struct{}

func (boxcarCorr) Rho(d float64) float64 {
	if d < 40 {
		return 1
	}
	return 0
}
func (boxcarCorr) Range() float64 { return 40 }
func (boxcarCorr) Name() string   { return "boxcar" }

func TestGridSamplerRejectsNonPSDKernel(t *testing.T) {
	proc := &spatial.Process{LNominal: 0.09, SigmaWID: 0.003, WIDCorr: boxcarCorr{}}
	grid := placement.Grid{Rows: 32, Cols: 32, SiteW: 2, SiteH: 2}
	if _, err := NewGridSampler(proc, grid); err == nil {
		t.Fatal("non-PSD kernel accepted")
	} else if !strings.Contains(err.Error(), "not PSD") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A kernel whose support radius dwarfs the die (the default 90 nm process
// carries a 4 mm truncated exponential) must NOT drag the torus to the
// 4096²-point embedding its range would nominally demand — that stalled the
// CLI for minutes on a 100-gate design. The sampler must stay on the
// grid-minimal torus, absorb the small clamped mass, renormalize the site
// variance back to exact, and keep every lag covariance within the
// documented 2·ClampBias·σ_WID² bound.
func TestGridSamplerLongRangeKernelClamps(t *testing.T) {
	proc := spatial.Default90nm()
	grid := placement.Grid{Rows: 12, Cols: 12, SiteW: 2, SiteH: 2}
	s, err := NewGridSampler(proc, grid)
	if err != nil {
		t.Fatal(err)
	}
	tm, tn := s.TorusDims()
	if want := fft.NextPow2(2*grid.Rows - 2); tm != want || tn != want {
		t.Fatalf("torus %dx%d, want grid-minimal %dx%d", tm, tn, want, want)
	}
	bias := s.ClampBias()
	if bias <= 0 || bias > embedClampBudget {
		t.Fatalf("clamp bias %g outside (0, %g]", bias, embedClampBudget)
	}
	// Reconstruct the realized covariance (normalized inverse DFT of the
	// retained spectrum) and compare against the target kernel.
	mn := float64(tm * tn)
	cov := make([]complex128, tm*tn)
	for k, a := range s.scale {
		cov[k] = complex(a*a*mn, 0)
	}
	if err := fft.Transform2D(cov, tm, tn, true); err != nil {
		t.Fatal(err)
	}
	vw := proc.SigmaWID * proc.SigmaWID
	if got := real(cov[0]) / mn; math.Abs(got-vw) > 1e-9*vw {
		t.Errorf("renormalized site variance %g, want exactly %g", got, vw)
	}
	worst := 0.0
	for dr := 0; dr < grid.Rows; dr++ {
		for dc := 0; dc < grid.Cols; dc++ {
			got := real(cov[dr*tn+dc]) / mn
			want := vw * proc.WIDCorr.Rho(grid.LagDist(dr, dc))
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
	}
	if tol := 2 * bias * vw; worst > tol {
		t.Errorf("worst lag-covariance error %g > bound 2·bias·vw = %g", worst, tol)
	}
}

func TestGridSamplerValidation(t *testing.T) {
	proc := gridTestProcess()
	if _, err := NewGridSampler(nil, placement.Grid{Rows: 2, Cols: 2, SiteW: 2, SiteH: 2}); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := NewGridSampler(proc, placement.Grid{Rows: 0, Cols: 4, SiteW: 2, SiteH: 2}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := NewGridSampler(&spatial.Process{LNominal: 0.09, SigmaWID: 0.003}, placement.Grid{Rows: 2, Cols: 2, SiteW: 2, SiteH: 2}); err == nil {
		t.Error("WID variation without correlation accepted")
	}
}

// The per-trial body must stay allocation-free once scratch is warmed — the
// property the chipmc hot loop depends on.
func TestGridSamplerSampleAllocs(t *testing.T) {
	proc := gridTestProcess()
	grid := placement.Grid{Rows: 16, Cols: 16, SiteW: 2, SiteH: 2}
	s, err := NewGridSampler(proc, grid)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3, "allocs")
	sc := s.NewScratch()
	field := make([]float64, s.Sites())
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.SampleInto(rng, sc, field); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SampleInto allocates %.1f times per draw, want 0", allocs)
	}
}

// TestGridSamplerTiltedDraw pins the importance-sampling contract of
// SampleTiltedInto: at tilt 0 the draw is bitwise identical to SampleInto
// (and returns the raw D2D deviate actually used), and at tilt θ every site
// moves by exactly σ_D2D·θ while the WID texture — the site-to-site
// differences — stays bitwise unchanged.
func TestGridSamplerTiltedDraw(t *testing.T) {
	proc := gridTestProcess()
	grid := placement.Grid{Rows: 6, Cols: 10, SiteW: 2, SiteH: 2}
	s, err := NewGridSampler(proc, grid)
	if err != nil {
		t.Fatal(err)
	}
	plain := make([]float64, s.Sites())
	tilted := make([]float64, s.Sites())
	if err := s.SampleInto(stats.NewRNG(3, "tilt"), s.NewScratch(), plain); err != nil {
		t.Fatal(err)
	}
	z0, err := s.SampleTiltedInto(stats.NewRNG(3, "tilt"), s.NewScratch(), tilted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.NewRNG(3, "tilt").NormFloat64(); z0 != want {
		t.Fatalf("returned deviate %v != first normal of the stream %v", z0, want)
	}
	for i := range plain {
		if tilted[i] != plain[i] {
			t.Fatalf("tilt=0 draw differs from SampleInto at site %d: %v vs %v", i, tilted[i], plain[i])
		}
	}

	const theta = 2.5
	z0t, err := s.SampleTiltedInto(stats.NewRNG(3, "tilt"), s.NewScratch(), tilted, theta)
	if err != nil {
		t.Fatal(err)
	}
	if z0t != z0 {
		t.Fatalf("tilted draw returned deviate %v, want the same raw draw %v", z0t, z0)
	}
	// Every site moves by σ_D2D·θ up to one rounding of the final add, which
	// also pins that the WID texture is untouched by the tilt.
	for i := range plain {
		if d := tilted[i] - plain[i] - proc.SigmaD2D*theta; math.Abs(d) > 1e-15 {
			t.Fatalf("site %d moved by %v, want σ_D2D·θ = %v", i, tilted[i]-plain[i], proc.SigmaD2D*theta)
		}
	}
}
