package randvar

import (
	"math"
	"testing"
)

// TestSobolPolyEnumeration pins the structure the direction-number table
// relies on: the canonical enumeration must yield exactly the known count of
// primitive polynomials per degree (1, 1, 2, 2, 6, 6, 18 for degrees 1–7),
// and every polynomial it returns must pass the order test.
func TestSobolPolyEnumeration(t *testing.T) {
	degs, as := sobolPolys(SobolMaxDims - 1)
	wantPerDeg := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 6, 6: 6, 7: 18}
	got := map[int]int{}
	for i, s := range degs {
		got[s]++
		p := uint32(1)<<uint(s) | as[i]<<1 | 1
		if !gf2Primitive(p, s) {
			t.Fatalf("enumerated polynomial %#b (degree %d) is not primitive", p, s)
		}
	}
	for s, n := range got {
		if s < 7 && n != wantPerDeg[s] {
			t.Fatalf("degree %d: enumerated %d primitive polynomials, want %d", s, n, wantPerDeg[s])
		}
		if n > wantPerDeg[s] {
			t.Fatalf("degree %d: enumerated %d primitive polynomials, max %d", s, n, wantPerDeg[s])
		}
	}
	// Spot-check the order test itself: x²+x+1 is primitive, x²+1 = (x+1)²
	// is not.
	if !gf2Primitive(0b111, 2) {
		t.Error("x²+x+1 must be primitive")
	}
	if gf2Primitive(0b101, 2) {
		t.Error("x²+1 is reducible and must not be primitive")
	}
}

// TestSobolStratification is the defining (0,1)-sequence property, per
// dimension: among the first 2^m points, each of the 2^m dyadic strata of
// [0,1) is hit exactly once — both unscrambled and scrambled (the Owen
// scramble maps strata onto strata).
func TestSobolStratification(t *testing.T) {
	for _, scramble := range []bool{false, true} {
		var seq *SobolSeq
		var err error
		if scramble {
			seq, err = NewSobol(SobolMaxDims, 12345)
		} else {
			seq, err = NewSobolDegraded(SobolMaxDims, 0, "unscrambled")
		}
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < SobolMaxDims; d++ {
			for m := 1; m <= 8; m++ {
				n := 1 << uint(m)
				seen := make([]bool, n)
				for i := 0; i < n; i++ {
					cell := seq.U32(uint32(i), d) >> uint(32-m)
					if seen[cell] {
						t.Fatalf("scramble=%v dim %d: stratum %d/%d hit twice in the first %d points",
							scramble, d, cell, n, n)
					}
					seen[cell] = true
				}
			}
		}
	}
}

// TestSobolScrambleBijective verifies the Owen scramble never collides: the
// triangular structure makes it a bijection on uint32, so distinct inputs
// must map to distinct outputs (checked over a contiguous block plus the
// extremes).
func TestSobolScrambleBijective(t *testing.T) {
	seen := make(map[uint32]uint32, 1<<16)
	for i := 0; i < 1<<16; i++ {
		x := uint32(i) * 65521 // spread over the word
		y := owenScramble(x, 0xdeadbeef)
		if prev, dup := seen[y]; dup {
			t.Fatalf("owenScramble collides: %#x and %#x both map to %#x", prev, x, y)
		}
		seen[y] = x
	}
}

// TestSobolScrambleSeedVariation: distinct seeds must give distinct point
// sets (the replicate mechanism), while the same seed reproduces bitwise.
func TestSobolScrambleSeedVariation(t *testing.T) {
	a, err := NewSobol(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSobol(4, 2)
	c, _ := NewSobol(4, 1)
	diff := false
	for i := uint32(0); i < 64; i++ {
		for d := 0; d < 4; d++ {
			if a.U32(i, d) != c.U32(i, d) {
				t.Fatalf("same seed must reproduce bitwise at point %d dim %d", i, d)
			}
			if a.U32(i, d) != b.U32(i, d) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("distinct scramble seeds produced identical sequences")
	}
	// The degraded "unscrambled" mode must ignore the seed entirely.
	u1, _ := NewSobolDegraded(4, 1, "unscrambled")
	u2, _ := NewSobolDegraded(4, 99, "unscrambled")
	for i := uint32(0); i < 64; i++ {
		for d := 0; d < 4; d++ {
			if u1.U32(i, d) != u2.U32(i, d) {
				t.Fatal("unscrambled sequences must not depend on the seed")
			}
		}
	}
}

// TestSobolMeanConvergence: the sample mean of each coordinate over the
// first 4096 scrambled points must be far closer to 1/2 than the plain-MC
// standard error σ/√N ≈ 0.0045 — a direct, if crude, low-discrepancy check
// that also covers the pseudo degrade (which must NOT beat it materially).
func TestSobolMeanConvergence(t *testing.T) {
	const n = 4096
	seq, err := NewSobol(SobolMaxDims, 777)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]float64, SobolMaxDims)
	sums := make([]float64, SobolMaxDims)
	for i := 0; i < n; i++ {
		seq.PointInto(uint32(i), pt)
		for d, u := range pt {
			if u <= 0 || u >= 1 {
				t.Fatalf("point %d dim %d = %g outside (0,1)", i, d, u)
			}
			sums[d] += u
		}
	}
	for d, s := range sums {
		if err := math.Abs(s/n - 0.5); err > 1e-3 {
			t.Errorf("dim %d: mean of first %d points off 1/2 by %g (want ≪ 0.0045)", d, n, err)
		}
	}
}

// TestSobolNormalsInto cross-checks the quantile mapping against PointInto.
func TestSobolNormalsInto(t *testing.T) {
	seq, err := NewSobol(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 8)
	z := make([]float64, 8)
	for i := uint32(0); i < 100; i++ {
		seq.PointInto(i, u)
		seq.NormalsInto(i, z)
		for d := range z {
			if want := NormalQuantile(u[d]); z[d] != want {
				t.Fatalf("point %d dim %d: NormalsInto %g != Φ⁻¹(PointInto) %g", i, d, z[d], want)
			}
			if math.IsNaN(z[d]) || math.IsInf(z[d], 0) {
				t.Fatalf("point %d dim %d: non-finite normal %g", i, d, z[d])
			}
		}
	}
}

// TestSobolConstructorBounds pins the dims validation and degrade modes.
func TestSobolConstructorBounds(t *testing.T) {
	for _, dims := range []int{0, -1, SobolMaxDims + 1} {
		if _, err := NewSobol(dims, 1); err == nil {
			t.Errorf("NewSobol(%d) must fail", dims)
		}
	}
	if _, err := NewSobol(SobolMaxDims, 1); err != nil {
		t.Errorf("NewSobol(SobolMaxDims): %v", err)
	}
	if _, err := NewSobolDegraded(4, 1, "bogus"); err == nil {
		t.Error("unknown degrade mode must fail")
	}
	if _, err := NewSobolDegraded(4, 1, "pseudo"); err != nil {
		t.Errorf("pseudo degrade: %v", err)
	}
}

// TestSobolAllocs pins point generation at zero allocations per point — the
// chipmc trial body inherits this bound.
func TestSobolAllocs(t *testing.T) {
	seq, err := NewSobol(SobolMaxDims, 42)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, SobolMaxDims)
	i := uint32(0)
	if n := testing.AllocsPerRun(200, func() {
		seq.NormalsInto(i, z)
		i++
	}); n != 0 {
		t.Fatalf("NormalsInto allocates %v times per point, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		seq.PointInto(i, z)
		i++
	}); n != 0 {
		t.Fatalf("PointInto allocates %v times per point, want 0", n)
	}
}

// FuzzSobolPoint fuzzes index/seed/dimension combinations: coordinates must
// stay in [0,1) (strictly inside (0,1) after the cell-centering offset),
// out-of-range dimensions must panic rather than read garbage, and distinct
// indices must never produce duplicate coordinates in any single dimension
// under scrambling (the per-dim sequence is a bijection and the scramble
// preserves it).
func FuzzSobolPoint(f *testing.F) {
	f.Add(uint32(0), uint32(1), int64(1), uint8(4))
	f.Add(uint32(1023), uint32(1024), int64(-7), uint8(SobolMaxDims))
	f.Add(uint32(1<<31), uint32(1<<31+1), int64(0), uint8(1))
	f.Fuzz(func(t *testing.T, i, j uint32, seed int64, dims8 uint8) {
		dims := int(dims8)%SobolMaxDims + 1
		seq, err := NewSobol(dims, seed)
		if err != nil {
			t.Fatalf("NewSobol(%d, %d): %v", dims, seed, err)
		}
		pt := make([]float64, dims)
		for _, idx := range []uint32{i, j} {
			seq.PointInto(idx, pt)
			for d, u := range pt {
				if !(u > 0 && u < 1) {
					t.Fatalf("point %d dim %d = %g outside (0,1)", idx, d, u)
				}
			}
		}
		if i != j {
			for d := 0; d < dims; d++ {
				if seq.U32(i, d) == seq.U32(j, d) {
					t.Fatalf("dim %d: distinct indices %d and %d collide under scrambling", d, i, j)
				}
			}
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range dimension must panic")
				}
			}()
			seq.U32(i, dims)
		}()
	})
}
