package randvar

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"leakest/internal/fault"
	"leakest/internal/fft"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/telemetry"
)

// embedClampTol is the relative tolerance (against the largest eigenvalue)
// within which negative circulant eigenvalues are attributed to round-off and
// clamped to zero. Larger negative mass means the minimal embedding is not
// positive semi-definite for this kernel, and the torus is enlarged instead.
const embedClampTol = 1e-6

// embedMaxAttempts bounds the torus-doubling retries when the minimal
// embedding of the WID kernel is not PSD.
const embedMaxAttempts = 3

// embedMaxPoints bounds the torus size (complex points): 2^25 points are
// 512 MiB of per-worker scratch, past which the embedding refuses rather
// than risk exhausting memory. Kernels whose support forces a larger torus
// belong on the dense path or a coarser grid.
const embedMaxPoints = 1 << 25

// embedExactPoints bounds how far the torus may grow purely to chase a
// kernel's support radius. A 4 mm truncated-exponential kernel demands a
// 4096² torus (16.8M points, seconds per trial) regardless of grid size —
// the default process on a 10×10 grid would pay it too. Past this budget the
// sampler keeps the grid-minimal torus and clamps the residual negative
// eigenvalue mass instead (see embedClampBudget).
const embedExactPoints = 1 << 21

// embedClampBudget bounds the relative variance bias (clamped negative
// eigenvalue mass over the kernel variance) the grid-minimal fallback
// embedding may absorb before refusing. Smooth long-range kernels measure
// well under 3% here; a kernel exceeding the budget is too far from positive
// definite on the torus to approximate honestly.
const embedClampBudget = 0.05

// GridSampler draws the spatially correlated channel-length field over every
// site of a regular placement grid in O(S log S) per trial (S = torus
// points), replacing the O(n³)/O(n²) dense-Cholesky path for large grids.
//
// It uses circulant embedding: the stationary WID covariance
// c(Δrow, Δcol) = σ_WID²·ρ_WID(LagDist) is wrapped onto a tm×tn torus
// (tm ≥ 2·Rows−2, tn ≥ 2·Cols−2, both powers of two), whose covariance
// operator is diagonalized by the 2-D DFT. One forward transform of the
// wrapped kernel at setup yields the eigenvalues λ_k; each trial then draws a
// complex white-noise vector ξ, scales by sqrt(λ_k/(tm·tn)), and runs one
// inverse transform. The real part of the resulting torus field has
// covariance exactly c at every admissible grid lag — because the inverse
// DFT of λ recovers the wrapped kernel identically (see the lag-exactness
// property test) — whenever the torus is large enough for the wrapped
// spectrum to be non-negative. When the kernel's support radius would force
// a torus beyond embedExactPoints, the sampler instead keeps the
// grid-minimal torus, clamps the (small, budgeted) negative eigenvalue mass
// to zero, and renormalizes the spectrum so the site variance stays exactly
// σ_WID²; ClampBias reports the resulting lag-covariance bias bound. The
// fully shared D2D component is a scalar shift σ_D2D·z₀ added on top,
// matching the dense sampler's Σ = σ_D2D² + σ_WID²·ρ_WID(d) decomposition.
type GridSampler struct {
	grid   placement.Grid
	tm, tn int
	mean   float64
	sd2d   float64
	// scale[k] = sqrt(max(λ_k, 0)/(tm·tn)); nil when the process has no WID
	// component (the field degenerates to the shared D2D shift).
	scale []float64
	// clampBias is the clamped negative spectral mass relative to the kernel
	// variance; 0 for an exact embedding.
	clampBias float64
}

// NewGridSamplerContext is NewGridSampler under a "randvar.grid_embed"
// trace span: when ctx carries a trace, the embedding's numerical-health
// facts — torus size and clamped eigenvalue mass — are recorded as span
// attributes, so a traced request shows how much bias the torus absorbed.
// Construction itself is identical to NewGridSampler.
func NewGridSamplerContext(ctx context.Context, proc *spatial.Process, grid placement.Grid) (*GridSampler, error) {
	end := telemetry.StartSpan(ctx, "randvar.grid_embed")
	s, err := NewGridSampler(proc, grid)
	end()
	if err == nil {
		telemetry.SpanAttrStr(ctx, "embed.torus", fmt.Sprintf("%dx%d", s.tm, s.tn))
		telemetry.SpanAttrFloat(ctx, "embed.clamp_bias", s.clampBias)
	}
	return s, err
}

// NewGridSampler builds the embedding for the process's WID kernel on the
// grid. It fails when the kernel has significantly negative eigenvalue mass
// even after torus enlargement — a kernel that is not (approximately)
// positive definite on the plane.
func NewGridSampler(proc *spatial.Process, grid placement.Grid) (*GridSampler, error) {
	if proc == nil {
		return nil, fmt.Errorf("randvar: grid sampler requires a process")
	}
	if grid.Rows < 1 || grid.Cols < 1 || grid.SiteW <= 0 || grid.SiteH <= 0 {
		return nil, fmt.Errorf("randvar: degenerate grid %dx%d (pitch %gx%g)",
			grid.Rows, grid.Cols, grid.SiteW, grid.SiteH)
	}
	fault.Hit(fault.SiteGridEmbed)
	if err := fault.Failure(fault.SiteGridEmbed); err != nil {
		return nil, err
	}
	s := &GridSampler{grid: grid, mean: proc.LNominal, sd2d: proc.SigmaD2D}
	vw := proc.SigmaWID * proc.SigmaWID
	if vw == 0 {
		s.tm, s.tn = 1, 1
		return s, nil
	}
	if proc.WIDCorr == nil {
		return nil, fmt.Errorf("randvar: WID variation present but no correlation function")
	}
	// The torus must cover the grid's lag range (≥ 2·dim−2 sites per axis)
	// and, for a compactly supported kernel, should span twice the support
	// radius so the kernel decays to zero before the wrap — otherwise the
	// wrap kink injects real negative eigenvalue mass. Chasing a support
	// radius far beyond the die is unaffordable (a 4 mm kernel would demand
	// a 4096² torus even for a 10×10 grid), so range-driven growth is capped
	// at embedExactPoints; past it the sampler keeps the grid-minimal torus
	// and clamps the negative mass under the embedClampBudget guard.
	gm := fft.NextPow2(2*grid.Rows - 2)
	gn := fft.NextPow2(2*grid.Cols - 2)
	tm, tn := gm, gn
	if r := proc.WIDCorr.Range(); !math.IsInf(r, 1) {
		if m := fft.NextPow2(int(math.Ceil(2 * r / grid.SiteH))); m > tm {
			tm = m
		}
		if m := fft.NextPow2(int(math.Ceil(2 * r / grid.SiteW))); m > tn {
			tn = m
		}
	}
	if (tm != gm || tn != gn) && tm*tn > embedExactPoints {
		if gm*gn > embedMaxPoints {
			return nil, fmt.Errorf("randvar: %dx%d embedding torus exceeds the %d-point budget",
				gm, gn, embedMaxPoints)
		}
		scale, bias, err := embedSpectrum(proc.WIDCorr, grid, vw, gm, gn, true)
		if err != nil {
			return nil, err
		}
		if bias > embedClampBudget {
			return nil, fmt.Errorf("randvar: clamped embedding of %s on %dx%d grid would bias the WID variance by %.2g (budget %g); use the dense sampler",
				proc.WIDCorr.Name(), grid.Rows, grid.Cols, bias, embedClampBudget)
		}
		s.tm, s.tn, s.scale, s.clampBias = gm, gn, scale, bias
		return s, nil
	}
	var lastErr error
	for attempt := 0; attempt < embedMaxAttempts; attempt++ {
		if tm*tn > embedMaxPoints {
			if lastErr == nil {
				lastErr = fmt.Errorf("randvar: %dx%d embedding torus exceeds the %d-point budget",
					tm, tn, embedMaxPoints)
			}
			break
		}
		scale, _, err := embedSpectrum(proc.WIDCorr, grid, vw, tm, tn, false)
		if err == nil {
			s.tm, s.tn, s.scale = tm, tn, scale
			return s, nil
		}
		lastErr = err
		tm *= 2
		tn *= 2
	}
	return nil, fmt.Errorf("randvar: circulant embedding of %s on %dx%d grid not PSD after %d torus enlargements: %w",
		proc.WIDCorr.Name(), grid.Rows, grid.Cols, embedMaxAttempts-1, lastErr)
}

// embedSpectrum wraps the kernel onto the tm×tn torus, diagonalizes it with
// one 2-D DFT, and returns the per-mode amplitude scale. With clampAll false
// any negative mass beyond the round-off clamp is an error (the exact tier);
// with clampAll true negatives are clamped to zero, the spectrum is
// renormalized so the site variance stays exactly vw, and the clamped mass
// relative to vw is returned as the bias bound.
func embedSpectrum(corr spatial.CorrFunc, grid placement.Grid, vw float64, tm, tn int, clampAll bool) ([]float64, float64, error) {
	base := make([]float64, tm*tn)
	for p := 0; p < tm; p++ {
		wp := p
		if tm-p < wp {
			wp = tm - p
		}
		row := base[p*tn : (p+1)*tn]
		for q := 0; q < tn; q++ {
			wq := q
			if tn-q < wq {
				wq = tn - q
			}
			row[q] = vw * corr.Rho(grid.LagDist(wp, wq))
		}
	}
	// Forward 2-D DFT of the (real, even-symmetric) wrapped kernel: real
	// row transforms, then complex column transforms.
	spec := make([]complex128, tm*tn)
	for p := 0; p < tm; p++ {
		if err := fft.TransformReal(spec[p*tn:(p+1)*tn], base[p*tn:(p+1)*tn]); err != nil {
			return nil, 0, err
		}
	}
	col := make([]complex128, tm)
	for q := 0; q < tn; q++ {
		for p := 0; p < tm; p++ {
			col[p] = spec[p*tn+q]
		}
		if err := fft.Transform(col, false); err != nil {
			return nil, 0, err
		}
		for p := 0; p < tm; p++ {
			spec[p*tn+q] = col[p]
		}
	}
	maxEig, minEig, maxImag := 0.0, math.Inf(1), 0.0
	posSum, negSum := 0.0, 0.0
	for _, v := range spec {
		re, im := real(v), math.Abs(imag(v))
		if re > maxEig {
			maxEig = re
		}
		if re < minEig {
			minEig = re
		}
		if im > maxImag {
			maxImag = im
		}
		if re > 0 {
			posSum += re
		} else {
			negSum -= re
		}
	}
	if maxEig <= 0 {
		return nil, 0, fmt.Errorf("randvar: embedded kernel spectrum has no positive mass on %dx%d torus", tm, tn)
	}
	if maxImag > embedClampTol*maxEig {
		return nil, 0, fmt.Errorf("randvar: embedded kernel spectrum not real on %dx%d torus (max imag %g vs max eig %g)",
			tm, tn, maxImag, maxEig)
	}
	if !clampAll && minEig < -embedClampTol*maxEig {
		return nil, 0, fmt.Errorf("randvar: embedded kernel spectrum has negative eigenvalue %g (max %g) on %dx%d torus",
			minEig, maxEig, tm, tn)
	}
	// Σλ = trace = tm·tn·vw, so clamping negatives to zero inflates the site
	// variance by negSum/(tm·tn·vw); renorm undoes the inflation exactly at
	// lag zero, leaving lag-covariance errors bounded by twice that fraction
	// (clamped mass plus the proportional rescale of the retained mass).
	norm := float64(tm) * float64(tn)
	bias := negSum / (norm * vw)
	renorm := 1.0
	if clampAll && posSum > 0 {
		renorm = (posSum - negSum) / posSum
	}
	scale := make([]float64, tm*tn)
	for k, v := range spec {
		if re := real(v); re > 0 {
			scale[k] = math.Sqrt(re * renorm / norm)
		}
	}
	return scale, bias, nil
}

// Sites returns the number of field points a draw produces (grid sites).
func (s *GridSampler) Sites() int { return s.grid.Sites() }

// Grid returns the placement grid the sampler was built for. Callers that
// cache samplers across runs use it to verify a cached embedding still
// matches the placement before reuse.
func (s *GridSampler) Grid() placement.Grid { return s.grid }

// TorusDims returns the embedding torus dimensions (1×1 for a WID-free
// process).
func (s *GridSampler) TorusDims() (tm, tn int) { return s.tm, s.tn }

// ClampBias returns the fraction of the WID variance the embedding clamped
// away because the kernel's support exceeded the affordable torus: 0 for an
// exact embedding, else a value in (0, embedClampBudget]. The site variance
// is renormalized back to exact; lag covariances carry an error bounded by
// 2·ClampBias·σ_WID².
func (s *GridSampler) ClampBias() float64 { return s.clampBias }

// GridScratch is the per-worker buffer set for SampleInto, sized for one
// sampler. Each concurrent worker owns one.
type GridScratch struct {
	torus []complex128
	fft   []complex128
}

// NewScratch allocates a scratch buffer set matching the sampler's torus.
func (s *GridSampler) NewScratch() *GridScratch {
	if s.scale == nil {
		return &GridScratch{}
	}
	return &GridScratch{
		torus: make([]complex128, s.tm*s.tn),
		fft:   make([]complex128, fft.Scratch2DLen(s.tm, s.tn)),
	}
}

// SampleInto fills field (length Sites, indexed by row-major site index) with
// one draw of the channel-length field. The draw consumes 1 + 2·tm·tn
// normals from rng in a fixed order — the shared D2D deviate first, then the
// white-noise spectrum — so a per-trial PRNG stream yields identical fields
// at any worker count. It allocates nothing: all intermediate state lives in
// sc, which must come from NewScratch on this sampler.
func (s *GridSampler) SampleInto(rng *rand.Rand, sc *GridScratch, field []float64) error {
	_, err := s.SampleTiltedInto(rng, sc, field, 0)
	return err
}

// SampleTiltedInto is SampleInto with a mean shift of the shared D2D
// deviate: the field's D2D component becomes σ_D2D·(z₀ + tilt) where z₀ is
// the raw standard-normal draw, which is returned so an importance-sampling
// caller can form the exact likelihood ratio exp(−tilt·z₀ − tilt²/2) of the
// tilted proposal against the nominal field law. The WID component is
// untouched — the tilt moves only the fully shared scalar. At tilt 0 the
// draw is bitwise identical to SampleInto (z₀ + 0 ≡ z₀ in IEEE754), which
// the grid property tests pin.
func (s *GridSampler) SampleTiltedInto(rng *rand.Rand, sc *GridScratch, field []float64, tilt float64) (z0 float64, err error) {
	g := s.grid
	if len(field) != g.Sites() {
		panic(fmt.Sprintf("randvar: grid sample field length %d != %d sites", len(field), g.Sites()))
	}
	z0 = rng.NormFloat64()
	shift := s.mean + s.sd2d*(z0+tilt)
	if s.scale == nil {
		for i := range field {
			field[i] = shift
		}
		return z0, nil
	}
	if len(sc.torus) != s.tm*s.tn {
		panic(fmt.Sprintf("randvar: grid sample scratch for %d torus points, sampler has %d",
			len(sc.torus), s.tm*s.tn))
	}
	torus := sc.torus
	for k, a := range s.scale {
		torus[k] = complex(a*rng.NormFloat64(), a*rng.NormFloat64())
	}
	if err := fft.Transform2DInto(torus, s.tm, s.tn, true, sc.fft); err != nil {
		return z0, err
	}
	for r := 0; r < g.Rows; r++ {
		row := torus[r*s.tn : r*s.tn+g.Cols]
		out := field[r*g.Cols : (r+1)*g.Cols]
		for c := range out {
			out[c] = shift + real(row[c])
		}
	}
	return z0, nil
}
