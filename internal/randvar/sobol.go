package randvar

import (
	"fmt"
	"math/bits"
)

// This file implements the scrambled-Sobol low-discrepancy sequence behind
// the chipmc quasi-MC sampler (Sampler "qmc"). Three properties matter to
// callers and are pinned by the sobol tests:
//
//   - Each dimension is a base-2 (0,1)-sequence: the first 2^m points hit
//     each of the 2^m dyadic strata exactly once, for every m — the source
//     of the better-than-1/√N convergence.
//   - Owen-style scrambling (the hash-based nested uniform scramble of
//     Laine–Karras/Burley) is a bijection on 32-bit fractions that maps
//     dyadic strata onto dyadic strata, so it preserves the stratification
//     while making every individual point exactly uniform on [0,1)^dims —
//     the scrambled estimator is unbiased and distinct seeds give
//     independent-in-expectation replicates.
//   - Generation is deterministic in (dims, seed) and allocation-free per
//     point, so the chipmc hot loop stays under its AllocsPerRun pin and the
//     §9 bitwise determinism contract extends to the qmc path.
//
// Direction numbers: dimension 0 is the van der Corput sequence; higher
// dimensions use primitive polynomials over GF(2) enumerated in the
// canonical order (degree ascending, then coefficient encoding ascending —
// the Joe–Kuo ordering) with Joe–Kuo-style initial values m_i. The
// polynomials are *derived* at init by an exhaustive primitivity search
// rather than transcribed, so the only tabulated data are the initial m_i,
// each of which init verifies to be odd and < 2^i — the exact conditions
// under which the recurrence yields a valid (0,1)-sequence in every
// dimension.

// SobolMaxDims is the number of dimensions the direction-number table
// supports. The chipmc qmc sampler needs at most 2 + 2·qmcGridModes on the
// grid path and min(n, SobolMaxDims) leading Cholesky deviates on the dense
// path; remaining coordinates stay pseudo-random.
const SobolMaxDims = 37

// sobolInitM holds the initial direction values m_1..m_s per dimension
// d = 1..SobolMaxDims-1 (dimension 0 is van der Corput and needs none).
// Entry i must be odd and < 2^(i+1); init enforces both.
var sobolInitM = [SobolMaxDims - 1][]uint32{
	{1},
	{1, 3},
	{1, 3, 1},
	{1, 1, 1},
	{1, 1, 3, 3},
	{1, 3, 5, 13},
	{1, 1, 5, 5, 17},
	{1, 1, 5, 5, 5},
	{1, 1, 7, 11, 19},
	{1, 1, 5, 1, 1},
	{1, 1, 1, 3, 11},
	{1, 3, 5, 5, 31},
	{1, 3, 3, 9, 7, 49},
	{1, 1, 1, 15, 21, 21},
	{1, 3, 1, 13, 27, 49},
	{1, 1, 1, 15, 7, 5},
	{1, 3, 1, 15, 13, 25},
	{1, 1, 5, 5, 19, 61},
	{1, 3, 7, 11, 23, 15, 103},
	{1, 3, 7, 13, 13, 15, 69},
	{1, 1, 3, 13, 7, 35, 63},
	{1, 3, 5, 9, 1, 25, 53},
	{1, 3, 1, 13, 9, 35, 107},
	{1, 3, 1, 5, 27, 61, 3},
	{1, 1, 5, 11, 19, 41, 15},
	{1, 3, 5, 3, 3, 59, 67},
	{1, 1, 7, 13, 1, 19, 45},
	{1, 3, 1, 3, 25, 29, 47},
	{1, 3, 7, 15, 29, 15, 25},
	{1, 3, 3, 5, 11, 9, 71},
	{1, 1, 3, 15, 19, 15, 111},
	{1, 3, 7, 3, 17, 51, 31},
	{1, 3, 5, 13, 11, 53, 41},
	{1, 1, 5, 5, 3, 15, 35},
	{1, 1, 7, 1, 23, 37, 21},
	{1, 3, 7, 7, 5, 53, 17},
}

// sobolV is the shared direction-number matrix: sobolV[d][b] is the
// direction number consumed when bit b of the Gray-coded index is set.
// Computed once at init; immutable afterwards.
var sobolV [SobolMaxDims][32]uint32

// gf2OrderFactors lists the prime factors of 2^s−1 for the polynomial
// degrees the table uses; the primitivity test needs them to verify the
// order of x is exactly 2^s−1.
var gf2OrderFactors = map[int][]int{
	1: {}, 2: {3}, 3: {7}, 4: {3, 5}, 5: {31}, 6: {3, 7}, 7: {127},
}

// gf2Mul multiplies two residues modulo the degree-s polynomial p (whose
// 1<<s bit is set) over GF(2).
func gf2Mul(a, b, p uint32, s int) uint32 {
	var r uint32
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<uint(s)) != 0 {
			a ^= p
		}
	}
	return r
}

// gf2PowX raises x to the e-th power modulo p (degree s).
func gf2PowX(e int, p uint32, s int) uint32 {
	r, base := uint32(1), uint32(2)
	// Reduce the base once in case s == 1 (x itself overflows one bit).
	if base&(1<<uint(s)) != 0 {
		base ^= p
	}
	for ; e > 0; e >>= 1 {
		if e&1 != 0 {
			r = gf2Mul(r, base, p, s)
		}
		base = gf2Mul(base, base, p, s)
	}
	return r
}

// gf2Primitive reports whether the degree-s polynomial p (with both the
// leading and constant bits set) is primitive over GF(2): the order of x
// modulo p must be exactly 2^s−1.
func gf2Primitive(p uint32, s int) bool {
	n := (1 << uint(s)) - 1
	if gf2PowX(n, p, s) != 1 {
		return false
	}
	for _, q := range gf2OrderFactors[s] {
		if n%q == 0 && gf2PowX(n/q, p, s) == 1 {
			return false
		}
	}
	return true
}

// sobolPolys enumerates the first count primitive polynomials over GF(2) in
// the canonical table order: degree ascending, then the interior-coefficient
// encoding a ascending (a's bit s−1−k is the coefficient of x^k... encoded
// MSB-first as in the published tables). Each result is (degree, a).
func sobolPolys(count int) (degs []int, as []uint32) {
	for s := 1; len(degs) < count; s++ {
		if s > 7 {
			panic("randvar: sobol polynomial search exceeded the tabled degrees")
		}
		for a := uint32(0); a < 1<<uint(s-1) && len(degs) < count; a++ {
			p := uint32(1)<<uint(s) | a<<1 | 1
			if gf2Primitive(p, s) {
				degs = append(degs, s)
				as = append(as, a)
			}
		}
	}
	return degs, as
}

func init() {
	// Dimension 0: van der Corput — v_b has only bit 31−b set.
	for b := 0; b < 32; b++ {
		sobolV[0][b] = 1 << uint(31-b)
	}
	degs, as := sobolPolys(SobolMaxDims - 1)
	for d := 1; d < SobolMaxDims; d++ {
		s, a, m := degs[d-1], as[d-1], sobolInitM[d-1]
		if len(m) != s {
			panic(fmt.Sprintf("randvar: sobol dim %d has %d initial values, polynomial degree %d", d, len(m), s))
		}
		v := &sobolV[d]
		for i := 1; i <= s; i++ {
			mi := m[i-1]
			if mi%2 == 0 || mi >= 1<<uint(i) {
				panic(fmt.Sprintf("randvar: sobol dim %d m_%d = %d must be odd and < 2^%d", d, i, mi, i))
			}
			v[i-1] = mi << uint(32-i)
		}
		// The classical recurrence, in shifted form:
		// v_i = v_{i−s} ⊕ (v_{i−s} >> s) ⊕ Σ_{k: a_k=1} v_{i−k}.
		for i := s + 1; i <= 32; i++ {
			x := v[i-s-1] ^ (v[i-s-1] >> uint(s))
			for k := 1; k < s; k++ {
				if a>>uint(s-1-k)&1 != 0 {
					x ^= v[i-k-1]
				}
			}
			v[i-1] = x
		}
	}
}

// Degraded sequence modes for the conformance self-check (see
// NewSobolDegraded); the zero value is the production scrambled sequence.
const (
	sobolScrambled = iota
	sobolUnscrambled
	sobolPseudo
)

// SobolSeq generates points of a (scrambled) Sobol sequence with random
// access by index: point i is computed in O(dims) without generating its
// predecessors, so parallel workers can draw disjoint index ranges with no
// shared state. The zero value is not usable; construct with NewSobol.
type SobolSeq struct {
	dims  int
	mode  int
	seeds []uint32 // per-dimension scramble seeds
}

// NewSobol returns an Owen-scrambled Sobol sequence over dims dimensions
// (1 ≤ dims ≤ SobolMaxDims). The scramble is seeded and deterministic: the
// same (dims, seed) always yields the same points, and distinct seeds yield
// independent scramble replicates of the same underlying sequence — the
// basis of both the replicate-SD convergence measurement and the §9
// determinism contract of the qmc sampler.
func NewSobol(dims int, seed int64) (*SobolSeq, error) {
	return newSobol(dims, seed, sobolScrambled)
}

// NewSobolDegraded returns a deliberately degraded sequence for the
// conformance self-check, proving the convergence gates can fail:
// mode "unscrambled" drops the Owen scramble (replicates at different seeds
// collapse onto one deterministic sequence), mode "pseudo" replaces the
// low-discrepancy points with a seeded counter-based pseudo-random stream
// (uniform but with plain-MC 1/√N convergence).
func NewSobolDegraded(dims int, seed int64, mode string) (*SobolSeq, error) {
	switch mode {
	case "unscrambled":
		return newSobol(dims, seed, sobolUnscrambled)
	case "pseudo":
		return newSobol(dims, seed, sobolPseudo)
	}
	return nil, fmt.Errorf("randvar: unknown degraded sobol mode %q (want unscrambled or pseudo)", mode)
}

func newSobol(dims int, seed int64, mode int) (*SobolSeq, error) {
	if dims < 1 || dims > SobolMaxDims {
		return nil, fmt.Errorf("randvar: sobol dims %d outside [1, %d]", dims, SobolMaxDims)
	}
	s := &SobolSeq{dims: dims, mode: mode, seeds: make([]uint32, dims)}
	for d := range s.seeds {
		s.seeds[d] = sobolMix(uint64(seed), uint32(d))
	}
	return s, nil
}

// Dims returns the number of coordinates per point.
func (s *SobolSeq) Dims() int { return s.dims }

// sobolMix derives the per-dimension scramble seed from the master seed via
// the splitmix64 finalizer: dimensions must scramble independently or the
// joint distribution of a point's coordinates would not be uniform on the
// cube.
func sobolMix(seed uint64, d uint32) uint32 {
	x := seed + 0x9e3779b97f4a7c15*uint64(d+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// owenScramble applies the hash-based Owen scramble (Laine–Karras
// permutation in reversed-bit space). Every x ^= x*C step with C even is a
// lower-triangular bijection over GF(2) — output bit j depends only on
// input bits ≤ j — so in reversed space each output digit depends only on
// more-significant input digits: exactly Owen's nested scramble structure.
// Bijectivity means scrambling never collides distinct points.
func owenScramble(x, seed uint32) uint32 {
	x = bits.Reverse32(x)
	x += seed
	x ^= x * 0x6c50b47c
	x ^= x * 0xb82f1e52
	x ^= x * 0xc7afe638
	x ^= x * 0x8d22f6e6
	return bits.Reverse32(x)
}

// U32 returns coordinate d of point i as a 32-bit fraction (the integer x
// represents x·2⁻³²). Gray-code random access: the Gray code of i selects
// which direction numbers XOR together, giving point i directly in
// O(popcount) rather than by stepping the recurrence i times.
func (s *SobolSeq) U32(i uint32, d int) uint32 {
	if d < 0 || d >= s.dims {
		panic(fmt.Sprintf("randvar: sobol dimension %d outside [0, %d)", d, s.dims))
	}
	if s.mode == sobolPseudo {
		// Counter-based uniform stream: splitmix of (seed_d, i). Uniform and
		// deterministic, but with no stratification whatsoever.
		return sobolMix(uint64(s.seeds[d])<<32|uint64(i), 0x5bd1)
	}
	v := &sobolV[d]
	var x uint32
	for g, b := i^(i>>1), 0; g != 0; g, b = g>>1, b+1 {
		if g&1 != 0 {
			x ^= v[b]
		}
	}
	if s.mode == sobolScrambled {
		x = owenScramble(x, s.seeds[d])
	}
	return x
}

// PointInto fills dst (length ≤ Dims) with the leading coordinates of point
// i, each in [0, 1). The +0.5 offset centers each 32-bit fraction in its
// dyadic cell, keeping coordinates strictly inside (0, 1) so the normal
// quantile below never sees 0 or 1. Allocation-free.
func (s *SobolSeq) PointInto(i uint32, dst []float64) {
	if len(dst) > s.dims {
		panic(fmt.Sprintf("randvar: sobol point needs %d dims, sequence has %d", len(dst), s.dims))
	}
	for d := range dst {
		dst[d] = (float64(s.U32(i, d)) + 0.5) * 0x1p-32
	}
}

// NormalsInto fills dst (length ≤ Dims) with the leading coordinates of
// point i mapped through the standard-normal quantile — the quasi-random
// analogue of Dim calls to rng.NormFloat64(). Allocation-free.
func (s *SobolSeq) NormalsInto(i uint32, dst []float64) {
	if len(dst) > s.dims {
		panic(fmt.Sprintf("randvar: sobol point needs %d dims, sequence has %d", len(dst), s.dims))
	}
	for d := range dst {
		dst[d] = NormalQuantile((float64(s.U32(i, d)) + 0.5) * 0x1p-32)
	}
}
