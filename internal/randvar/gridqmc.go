package randvar

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file holds the GridSampler primitives behind the chipmc quasi-MC
// path. The qmc sampler batches trial fields in pairs: circulant embedding
// draws a *proper* complex white-noise spectrum ξ_k = a_k·(g1 + i·g2), and
// the real and imaginary parts of its inverse 2-D DFT are two independent
// N(0, C) fields (Dietrich–Newsam pairing) — the plain sampler keeps only
// the real part and discards the second field. One pair torus plus one
// (batched) inverse FFT therefore yields two trials for the price of one.
//
// The low-discrepancy deviates drive the pair's shared D2D scalars and the
// leading spectral modes (the largest per-mode amplitudes, where nearly all
// of the field variance lives); the remaining modes stay pseudo-random from
// the pair's own PRNG stream. Both channels of an overwritten mode come
// from coordinates of the *same* Sobol point — coordinates of one scrambled
// point are jointly uniform, so each extracted field keeps the exact
// N(0, C) law and the qmc estimator stays unbiased; splitting one mode's
// two channels across two different (mutually dependent) points would not.

// TorusLen returns the number of complex points one pair torus holds
// (tm·tn; 1 when the process has no WID component). Callers allocate batch
// buffers of TorusLen per pair.
func (s *GridSampler) TorusLen() int { return s.tm * s.tn }

// TopModes returns the indices of the max largest-amplitude spectral modes
// in deterministic order (amplitude descending, index ascending on ties).
// These are the modes worth spending low-discrepancy dimensions on: the
// per-mode variance of the sampled field is proportional to scale², so the
// leading handful typically carries most of the within-die field variance.
// Returns fewer than max (possibly none) when the spectrum is smaller or
// the process has no WID component.
func (s *GridSampler) TopModes(max int) []int {
	if max <= 0 || s.scale == nil {
		return nil
	}
	idx := make([]int, 0, len(s.scale))
	for k, a := range s.scale {
		if a > 0 {
			idx = append(idx, k)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		ai, aj := s.scale[idx[i]], s.scale[idx[j]]
		if ai != aj {
			return ai > aj
		}
		return idx[i] < idx[j]
	})
	if len(idx) > max {
		idx = idx[:max]
	}
	return idx
}

// FillPairSpectrum fills torus (length TorusLen) with one pair's white-noise
// spectrum ξ_k = scale_k·(g1 + i·g2), consuming exactly 2·modes normals from
// rng in mode order — the same order SampleTiltedInto uses, so a per-pair
// PRNG stream yields identical spectra at any worker count or batch size.
// Modes with zero amplitude (clamped eigenvalues) are written as zero, and a
// WID-free sampler writes nothing (the torus stays zero). Allocation-free.
func (s *GridSampler) FillPairSpectrum(rng *rand.Rand, torus []complex128) {
	if len(torus) != s.tm*s.tn {
		panic(fmt.Sprintf("randvar: pair torus length %d != %d points", len(torus), s.tm*s.tn))
	}
	for k, a := range s.scale {
		torus[k] = complex(a*rng.NormFloat64(), a*rng.NormFloat64())
	}
}

// SetMode overwrites spectral mode k of a pair torus with the given
// standard-normal pair, scaled by the mode's amplitude — the hook the qmc
// sampler uses to substitute low-discrepancy deviates for the leading modes
// after FillPairSpectrum. k must come from TopModes.
func (s *GridSampler) SetMode(torus []complex128, k int, g1, g2 float64) {
	a := s.scale[k]
	torus[k] = complex(a*g1, a*g2)
}

// ExtractPair reads the two independent fields out of an
// inverse-transformed pair torus: fa gets the real parts shifted by the
// first trial's D2D deviate z0a, fb the imaginary parts shifted by z0b.
// Both field slices must have length Sites. Allocation-free.
func (s *GridSampler) ExtractPair(torus []complex128, z0a, z0b float64, fa, fb []float64) {
	g := s.grid
	if len(fa) != g.Sites() || len(fb) != g.Sites() {
		panic(fmt.Sprintf("randvar: pair field lengths %d/%d != %d sites", len(fa), len(fb), g.Sites()))
	}
	shiftA := s.mean + s.sd2d*z0a
	shiftB := s.mean + s.sd2d*z0b
	if s.scale == nil {
		for i := range fa {
			fa[i] = shiftA
			fb[i] = shiftB
		}
		return
	}
	if len(torus) != s.tm*s.tn {
		panic(fmt.Sprintf("randvar: pair torus length %d != %d points", len(torus), s.tm*s.tn))
	}
	for r := 0; r < g.Rows; r++ {
		row := torus[r*s.tn : r*s.tn+g.Cols]
		outA := fa[r*g.Cols : (r+1)*g.Cols]
		outB := fb[r*g.Cols : (r+1)*g.Cols]
		for c := range outA {
			outA[c] = shiftA + real(row[c])
			outB[c] = shiftB + imag(row[c])
		}
	}
}
