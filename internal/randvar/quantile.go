package randvar

import (
	"fmt"
	"math"
)

// NormalQuantile returns the inverse CDF (quantile function) of the
// standard normal distribution at probability p ∈ (0, 1), using Acklam's
// rational approximation refined by one Halley step against math.Erfc; the
// result is accurate to ~1e-15 across the domain.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("randvar: NormalQuantile(%g) outside (0, 1)", p))
	}
	// Acklam's coefficients.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step: e = Φ(x) − p.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// LogNormalFromMoments returns the log-domain parameters (µ, σ) of the
// lognormal distribution with the given mean and standard deviation:
//
//	σ² = ln(1 + (std/mean)²),  µ = ln(mean) − σ²/2.
//
// Full-chip leakage is a sum of correlated lognormal-like terms; matching a
// single lognormal to its first two moments (the Wilkinson/Fenton
// approximation) gives a usable distributional picture on top of the
// paper's (mean, σ) output.
func LogNormalFromMoments(mean, std float64) (mu, sigma float64, err error) {
	if mean <= 0 {
		return 0, 0, fmt.Errorf("randvar: lognormal mean %g must be positive", mean)
	}
	if std < 0 {
		return 0, 0, fmt.Errorf("randvar: negative std %g", std)
	}
	cv := std / mean
	s2 := math.Log1p(cv * cv)
	return math.Log(mean) - s2/2, math.Sqrt(s2), nil
}
