// Package randvar implements the random-variable machinery behind the
// leakage model: normal and lognormal helpers, multivariate-normal sampling,
// the closed-form moment E[exp(XᵀAX + bᵀX)] of a quadratic-exponential of a
// Gaussian vector (used for the pairwise leakage-correlation mapping
// f_{m,n}(ρ_L)), and the paper's non-central-χ² moment-generating function
// for the fitted cell leakage X = a·e^(bL+cL²) (Eqs. 1–5).
package randvar

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"leakest/internal/linalg"
)

// ErrDiverges is returned when a requested exponential moment does not exist
// (the Gaussian tail is overwhelmed by the quadratic growth of the exponent).
var ErrDiverges = errors.New("randvar: exponential moment diverges")

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns the cumulative distribution of N(mu, sigma²) at x.
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// LogNormalMeanFactor returns E[exp(k·Z)] for Z ~ N(0, sigma²), i.e.
// exp(k²sigma²/2). This is the multiplicative correction the paper applies
// for random (uncorrelated) Vt fluctuation on the mean leakage: with
// leakage ∝ exp(−ΔVt/(n·vT)), k = 1/(n·vT).
func LogNormalMeanFactor(k, sigma float64) float64 {
	return math.Exp(0.5 * k * k * sigma * sigma)
}

// GaussExpMoment1D returns E[exp(c·L² + b·L)] for L ~ N(mu, sigma²).
// The moment exists iff 1 − 2·c·sigma² > 0; otherwise ErrDiverges.
//
// Closed form: with s = 1 − 2cσ²,
//
//	E = s^(−1/2) · exp( (c·mu² + b·mu + σ²b²/2 + σ²·b·(2c·mu)/2... )
//
// computed robustly by completing the square:
//
//	E = s^(−1/2) · exp( (b·mu + c·mu² + σ²(b + 2c·mu)²/(2s)) − ... )
//
// The exact expression used is E = s^{-1/2} exp( c·mu²+b·mu + σ²(b+2c·mu)²/(2s) ).
func GaussExpMoment1D(b, c, mu, sigma float64) (float64, error) {
	s := 1 - 2*c*sigma*sigma
	if s <= 0 {
		return 0, fmt.Errorf("%w: 1-2cσ² = %g ≤ 0", ErrDiverges, s)
	}
	u := b + 2*c*mu
	exponent := c*mu*mu + b*mu + sigma*sigma*u*u/(2*s)
	return math.Exp(exponent) / math.Sqrt(s), nil
}

// GaussQuadExp2D returns E[exp(xᵀAx + bᵀx)] for x ~ N(m, Σ) in R², where
// A = diag(a1, a2) and Σ = [[s1², ρ·s1·s2], [ρ·s1·s2, s2²]].
//
// This is the quantity needed for E[X_m·X_n] of two fitted leakage cells
// placed at locations whose channel lengths have correlation ρ:
//
//	E[X_m X_n] = a_m·a_n · GaussQuadExp2D(c_m, c_n, b_m, b_n, ...)
//
// Closed form: with M = Σ⁻¹ − 2A (must be positive definite) and
// u = Σ⁻¹m + b,
//
//	E = |I − 2ΣA|^{−1/2} · exp( ½·uᵀM⁻¹u − ½·mᵀΣ⁻¹m ).
func GaussQuadExp2D(a1, a2, b1, b2, m1, m2, s1, s2, rho float64) (float64, error) {
	if s1 <= 0 || s2 <= 0 {
		return 0, fmt.Errorf("randvar: non-positive sigma (%g, %g)", s1, s2)
	}
	if rho <= -1 || rho >= 1 {
		// Perfectly correlated pair degenerates to the 1-D case; callers
		// handle ρ=1 via GaussExpMoment1D when s1==s2.
		return 0, fmt.Errorf("randvar: |rho| = %g must be < 1", math.Abs(rho))
	}
	v1, v2 := s1*s1, s2*s2
	cov := rho * s1 * s2
	det := v1*v2 - cov*cov // > 0 since |rho|<1
	// Σ⁻¹ entries.
	i11 := v2 / det
	i22 := v1 / det
	i12 := -cov / det
	// M = Σ⁻¹ − 2A.
	m11 := i11 - 2*a1
	m22 := i22 - 2*a2
	m12 := i12
	detM := m11*m22 - m12*m12
	if detM <= 0 || m11 <= 0 {
		return 0, fmt.Errorf("%w: Σ⁻¹−2A not positive definite (det %g)", ErrDiverges, detM)
	}
	// u = Σ⁻¹·m + b.
	u1 := i11*m1 + i12*m2 + b1
	u2 := i12*m1 + i22*m2 + b2
	// uᵀM⁻¹u with M⁻¹ = [[m22, −m12], [−m12, m11]]/detM.
	quadU := (m22*u1*u1 - 2*m12*u1*u2 + m11*u2*u2) / detM
	// mᵀΣ⁻¹m.
	quadM := i11*m1*m1 + 2*i12*m1*m2 + i22*m2*m2
	// |I − 2ΣA| = |Σ|·|M| = det·detM.
	norm := det * detM
	return math.Exp(0.5*(quadU-quadM)) / math.Sqrt(norm), nil
}

// MGFParams holds the K₁, K₂, K₃ constants of the paper's Eqs. (4)–(5) for a
// fitted cell X = a·e^(bL+cL²) with L ~ N(mu, sigma²).
type MGFParams struct {
	K1, K2, K3 float64
	// c retained to dispatch the degenerate c→0 (pure lognormal) branch.
	b, c, lnA, mu, sigma float64
}

// NewMGFParams computes the paper's constants from the regression triplet
// (a, b, c) and the channel-length statistics. a must be positive.
func NewMGFParams(a, b, c, mu, sigma float64) (MGFParams, error) {
	if a <= 0 {
		return MGFParams{}, fmt.Errorf("randvar: fit amplitude a = %g must be positive", a)
	}
	if sigma <= 0 {
		return MGFParams{}, fmt.Errorf("randvar: sigma = %g must be positive", sigma)
	}
	p := MGFParams{b: b, c: c, lnA: math.Log(a), mu: mu, sigma: sigma}
	if c != 0 {
		shift := b/(2*c) + mu
		p.K1 = c * sigma * sigma
		p.K2 = shift / sigma
		p.K3 = p.lnA + b*mu + c*mu*mu - c*shift*shift
	}
	return p, nil
}

// MGF evaluates M_Y(t) for Y = ln X, Eq. (3). Note: the paper prints the
// prefactor as (1−2K₁t)^{+1/2}; the non-central-χ² MGF requires exponent
// −1/2 (one degree of freedom, non-centrality K₂²), which is what we use and
// verify against direct numerical integration in the tests.
//
// For c = 0 the distribution is exactly lognormal and
// M_Y(t) = exp((ln a + b·mu)·t + ½ b²σ²t²).
func (p MGFParams) MGF(t float64) (float64, error) {
	if p.c == 0 {
		return math.Exp((p.lnA+p.b*p.mu)*t + 0.5*p.b*p.b*p.sigma*p.sigma*t*t), nil
	}
	s := 1 - 2*p.K1*t
	if s <= 0 {
		return 0, fmt.Errorf("%w: 1-2K₁t = %g ≤ 0 at t=%g", ErrDiverges, s, t)
	}
	return math.Exp(p.K2*p.K2*p.K1*t/s+p.K3*t) / math.Sqrt(s), nil
}

// Moments returns the exact mean and standard deviation of X = a·e^(bL+cL²),
// Eqs. (1)–(2): μ_X = M_Y(1), σ_X² = M_Y(2) − μ_X².
func (p MGFParams) Moments() (mean, std float64, err error) {
	m1, err := p.MGF(1)
	if err != nil {
		return 0, 0, fmt.Errorf("randvar: first moment: %w", err)
	}
	m2, err := p.MGF(2)
	if err != nil {
		return 0, 0, fmt.Errorf("randvar: second moment: %w", err)
	}
	v := m2 - m1*m1
	if v < 0 {
		// Round-off for nearly deterministic X; clamp.
		v = 0
	}
	return m1, math.Sqrt(v), nil
}

// MVNSampler draws samples from a multivariate normal N(mean, Σ) using a
// pre-computed Cholesky factor of Σ.
type MVNSampler struct {
	mean []float64
	l    *linalg.Matrix
	z    []float64 // scratch
}

// NewMVNSampler prepares a sampler for N(mean, cov). cov must be symmetric
// positive (semi-)definite; a tiny diagonal jitter is applied if needed.
func NewMVNSampler(mean []float64, cov *linalg.Matrix) (*MVNSampler, error) {
	if cov.Rows() != len(mean) || cov.Cols() != len(mean) {
		return nil, fmt.Errorf("randvar: cov %dx%d incompatible with mean length %d",
			cov.Rows(), cov.Cols(), len(mean))
	}
	l, _, err := linalg.CholeskyJittered(cov, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("randvar: covariance factorization: %w", err)
	}
	m := make([]float64, len(mean))
	copy(m, mean)
	return &MVNSampler{mean: m, l: l, z: make([]float64, len(mean))}, nil
}

// Dim returns the dimensionality of the sampler.
func (s *MVNSampler) Dim() int { return len(s.mean) }

// Sample fills out with one draw x = mean + L·z, z ~ N(0, I). out must have
// length Dim. It reuses the sampler's internal scratch, so it is not safe
// for concurrent use; parallel callers use SampleInto with per-worker
// scratch instead.
func (s *MVNSampler) Sample(rng *rand.Rand, out []float64) {
	s.SampleInto(rng, s.z, out)
}

// SampleInto is Sample with caller-supplied standard-normal scratch z (length
// Dim), making the sampler safe for concurrent draws as long as each worker
// owns its z and out buffers. The draw consumes exactly Dim normals from rng
// in index order, so a per-trial PRNG stream yields identical fields at any
// worker count.
func (s *MVNSampler) SampleInto(rng *rand.Rand, z, out []float64) {
	n := len(s.mean)
	if len(out) != n {
		panic(fmt.Sprintf("randvar: Sample out length %d != dim %d", len(out), n))
	}
	if len(z) != n {
		panic(fmt.Sprintf("randvar: Sample scratch length %d != dim %d", len(z), n))
	}
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		row := s.l.Row(i)
		acc := s.mean[i]
		for j := 0; j <= i; j++ {
			acc += row[j] * z[j]
		}
		out[i] = acc
	}
}

// SamplePartialInto is SampleInto except the leading fixed entries of z are
// taken as the caller supplied them — the quasi-MC hook: low-discrepancy
// deviates drive the first Cholesky directions (which carry the most field
// variance; with a D2D component the first column is the dominant shared
// shift), and only z[fixed:] is drawn from rng, in index order. With
// fixed = 0 the draw is bitwise identical to SampleInto. Allocation-free.
func (s *MVNSampler) SamplePartialInto(rng *rand.Rand, z, out []float64, fixed int) {
	n := len(s.mean)
	if len(out) != n {
		panic(fmt.Sprintf("randvar: Sample out length %d != dim %d", len(out), n))
	}
	if len(z) != n {
		panic(fmt.Sprintf("randvar: Sample scratch length %d != dim %d", len(z), n))
	}
	if fixed < 0 || fixed > n {
		panic(fmt.Sprintf("randvar: Sample fixed count %d outside [0, %d]", fixed, n))
	}
	for i := fixed; i < n; i++ {
		z[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		row := s.l.Row(i)
		acc := s.mean[i]
		for j := 0; j <= i; j++ {
			acc += row[j] * z[j]
		}
		out[i] = acc
	}
}

// BivariateNormal draws a correlated standard-normal pair with correlation
// rho, scaled to the given means and sigmas. It is the cheap special case
// used throughout cell characterization.
func BivariateNormal(rng *rand.Rand, mu1, s1, mu2, s2, rho float64) (float64, float64) {
	z1 := rng.NormFloat64()
	z2 := rng.NormFloat64()
	x1 := mu1 + s1*z1
	x2 := mu2 + s2*(rho*z1+math.Sqrt(1-rho*rho)*z2)
	return x1, x2
}
