package netlist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"

	"leakest/internal/lkerr"
	"leakest/internal/placement"
)

// The leakest-stream format is the streaming placed-netlist interchange of
// DESIGN.md §16: gate records are grouped by tile, in tile-index order, so
// a reader can process million-gate designs holding only O(largest tile) +
// O(T²) state instead of materializing the placement. The format is
// line-oriented:
//
//	leakest-stream v1
//	design <name> rows=R cols=C sitew=W siteh=H tiles=T gates=N
//	tile 0
//	g <TYPE> <ROW> <COL>
//	...
//	tile 1
//	...
//	end
//
// Tile indices refer to the row-major placement.Partition of the R×C site
// grid into a T×T arrangement and must be strictly increasing; every gate
// record must fall inside the current tile, each site may carry at most one
// gate, and the terminal "end" record guards against truncation. Blank
// lines and #-comments are permitted. All structural violations surface as
// typed lkerr.InvalidInput errors — never panics — which FuzzScanPlaced
// enforces.

// StreamMagic is the fixed first line of a leakest-stream file.
const StreamMagic = "leakest-stream v1"

// StreamHeader is the design line of a leakest-stream file.
type StreamHeader struct {
	Name         string
	Rows, Cols   int
	SiteW, SiteH float64
	// Tiles is the requested tiles-per-side T; the effective partition is
	// placement.Partition(grid, Tiles), which clamps per dimension.
	Tiles int
	// Gates is the declared gate count; ScanPlaced verifies the stream
	// carries exactly this many records.
	Gates int
}

// Grid returns the placement site grid the header describes.
func (h StreamHeader) Grid() placement.Grid {
	return placement.Grid{Rows: h.Rows, Cols: h.Cols, SiteW: h.SiteW, SiteH: h.SiteH}
}

// StreamVisitor receives a stream's contents in tile order. Any nil
// callback is skipped; any error returned aborts the scan. The cellType
// slice passed to Gate aliases the scanner's buffer and is only valid for
// the duration of the call — look it up with m[string(cellType)] (which Go
// compiles without an allocation) or copy it.
type StreamVisitor struct {
	Design    func(h StreamHeader) error
	TileStart func(index int, tile placement.Tile) error
	Gate      func(tileIndex int, cellType []byte, row, col int) error
}

// ScanPlaced reads a leakest-stream design, validating structure as it
// goes: magic line, header sanity, strictly increasing in-range tile
// records, gates inside their tile with no duplicate sites, a matching
// total gate count, and the terminal end record. Peak memory is one bitset
// over the largest tile plus the scanner buffer, independent of the gate
// count.
func ScanPlaced(r io.Reader, v StreamVisitor) (StreamHeader, error) {
	const op = "netlist.ScanPlaced"
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			lineNo++
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 || line[0] == '#' {
				continue
			}
			return line, true
		}
		return nil, false
	}

	line, ok := next()
	if !ok || string(line) != StreamMagic {
		return StreamHeader{}, lkerr.New(lkerr.InvalidInput, op,
			"line %d: not a leakest-stream file (want %q first)", lineNo, StreamMagic)
	}
	line, ok = next()
	if !ok {
		return StreamHeader{}, lkerr.New(lkerr.InvalidInput, op, "truncated: missing design line")
	}
	hdr, err := parseDesignLine(line, lineNo)
	if err != nil {
		return StreamHeader{}, err
	}
	if v.Design != nil {
		if err := v.Design(hdr); err != nil {
			return hdr, err
		}
	}

	parts := placement.Partition(hdr.Grid(), hdr.Tiles)
	maxSites := 0
	for _, t := range parts {
		if t.Sites() > maxSites {
			maxSites = t.Sites()
		}
	}
	seen := make([]uint64, (maxSites+63)/64)
	curTile := -1
	var tile placement.Tile
	tileCols := 0
	gatesSeen := 0
	ended := false

	for {
		line, ok = next()
		if !ok {
			break
		}
		if ended {
			return hdr, lkerr.New(lkerr.InvalidInput, op, "line %d: record after end", lineNo)
		}
		switch {
		case len(line) > 2 && line[0] == 'g' && line[1] == ' ':
			if curTile < 0 {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: gate record before the first tile record", lineNo)
			}
			typ, row, col, ok := parseGateLine(line[2:])
			if !ok {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: malformed gate record %q", lineNo, line)
			}
			if !tile.Contains(row, col) {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: gate at (%d,%d) outside tile %d rows [%d,%d) cols [%d,%d)",
					lineNo, row, col, curTile, tile.Row0, tile.Row1, tile.Col0, tile.Col1)
			}
			local := (row-tile.Row0)*tileCols + (col - tile.Col0)
			if seen[local/64]&(1<<(local%64)) != 0 {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: duplicate gate at site (%d,%d) in tile %d", lineNo, row, col, curTile)
			}
			seen[local/64] |= 1 << (local % 64)
			gatesSeen++
			if gatesSeen > hdr.Gates {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: more gate records than the declared %d", lineNo, hdr.Gates)
			}
			if v.Gate != nil {
				if err := v.Gate(curTile, typ, row, col); err != nil {
					return hdr, err
				}
			}
		case bytes.HasPrefix(line, []byte("tile ")):
			idx, ok := parseIntBytes(bytes.TrimSpace(line[5:]))
			if !ok {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: malformed tile record %q", lineNo, line)
			}
			if idx >= len(parts) {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: tile %d out of range (partition has %d tiles)", lineNo, idx, len(parts))
			}
			if idx <= curTile {
				return hdr, lkerr.New(lkerr.InvalidInput, op,
					"line %d: tile %d out of order after tile %d (indices must strictly increase)",
					lineNo, idx, curTile)
			}
			curTile = idx
			tile = parts[idx]
			tileCols = tile.Cols()
			for i := range seen {
				seen[i] = 0
			}
			if v.TileStart != nil {
				if err := v.TileStart(idx, tile); err != nil {
					return hdr, err
				}
			}
		case string(line) == "end":
			ended = true
		default:
			return hdr, lkerr.New(lkerr.InvalidInput, op,
				"line %d: unrecognized record %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return hdr, lkerr.Wrap(lkerr.InvalidInput, op, err)
	}
	if !ended {
		return hdr, lkerr.New(lkerr.InvalidInput, op,
			"truncated after line %d: missing end record", lineNo)
	}
	if gatesSeen != hdr.Gates {
		return hdr, lkerr.New(lkerr.InvalidInput, op,
			"stream carries %d gates, header declares %d", gatesSeen, hdr.Gates)
	}
	return hdr, nil
}

// parseDesignLine parses and validates the design header record.
func parseDesignLine(line []byte, lineNo int) (StreamHeader, error) {
	const op = "netlist.ScanPlaced"
	bad := func(format string, args ...any) (StreamHeader, error) {
		return StreamHeader{}, lkerr.New(lkerr.InvalidInput, op,
			"line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	fields := bytes.Fields(line)
	if len(fields) != 8 || string(fields[0]) != "design" {
		return bad("malformed design line %q (want design <name> rows= cols= sitew= siteh= tiles= gates=)", line)
	}
	hdr := StreamHeader{Name: string(fields[1])}
	intField := func(f []byte, key string) (int, bool) {
		rest, ok := bytes.CutPrefix(f, []byte(key+"="))
		if !ok {
			return 0, false
		}
		return parseIntBytesOK(rest)
	}
	floatField := func(f []byte, key string) (float64, bool) {
		rest, ok := bytes.CutPrefix(f, []byte(key+"="))
		if !ok {
			return 0, false
		}
		v, err := strconv.ParseFloat(string(rest), 64)
		return v, err == nil
	}
	var ok bool
	if hdr.Rows, ok = intField(fields[2], "rows"); !ok {
		return bad("bad rows field %q", fields[2])
	}
	if hdr.Cols, ok = intField(fields[3], "cols"); !ok {
		return bad("bad cols field %q", fields[3])
	}
	if hdr.SiteW, ok = floatField(fields[4], "sitew"); !ok {
		return bad("bad sitew field %q", fields[4])
	}
	if hdr.SiteH, ok = floatField(fields[5], "siteh"); !ok {
		return bad("bad siteh field %q", fields[5])
	}
	if hdr.Tiles, ok = intField(fields[6], "tiles"); !ok {
		return bad("bad tiles field %q", fields[6])
	}
	if hdr.Gates, ok = intField(fields[7], "gates"); !ok {
		return bad("bad gates field %q", fields[7])
	}
	if hdr.Rows < 1 || hdr.Cols < 1 {
		return bad("grid %d×%d must be at least 1×1", hdr.Rows, hdr.Cols)
	}
	if !(hdr.SiteW > 0) || !(hdr.SiteH > 0) ||
		math.IsInf(hdr.SiteW, 0) || math.IsInf(hdr.SiteH, 0) {
		return bad("site pitch %g×%g must be positive and finite", hdr.SiteW, hdr.SiteH)
	}
	if hdr.Tiles < 1 {
		return bad("tiles=%d must be ≥ 1", hdr.Tiles)
	}
	if hdr.Gates < 0 || hdr.Gates > hdr.Rows*hdr.Cols {
		return bad("gates=%d outside [0, %d sites]", hdr.Gates, hdr.Rows*hdr.Cols)
	}
	return hdr, nil
}

// parseGateLine splits "<TYPE> <ROW> <COL>" without allocating; the type
// slice aliases the input.
func parseGateLine(b []byte) (typ []byte, row, col int, ok bool) {
	sp1 := bytes.IndexByte(b, ' ')
	if sp1 <= 0 {
		return nil, 0, 0, false
	}
	typ = b[:sp1]
	rest := b[sp1+1:]
	sp2 := bytes.IndexByte(rest, ' ')
	if sp2 <= 0 {
		return nil, 0, 0, false
	}
	row, ok = parseIntBytes(rest[:sp2])
	if !ok {
		return nil, 0, 0, false
	}
	col, ok = parseIntBytes(rest[sp2+1:])
	if !ok {
		return nil, 0, 0, false
	}
	return typ, row, col, true
}

// parseIntBytes parses a non-negative decimal integer without allocating.
func parseIntBytes(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// parseIntBytesOK is parseIntBytes returning through the (int, bool) pair
// shape the header field helpers expect.
func parseIntBytesOK(b []byte) (int, bool) { return parseIntBytes(b) }

// WritePlaced renders a placed netlist in leakest-stream format, grouping
// gates by the T×T tile partition in tile-index order. The writer holds a
// site→gate inverse of the placement (O(sites)); it is the reader that
// carries the O(tile) memory guarantee.
func WritePlaced(w io.Writer, nl *Netlist, pl *placement.Placement, tiles int) error {
	const op = "netlist.WritePlaced"
	grid := pl.Grid
	if len(pl.Site) != len(nl.Gates) {
		return lkerr.New(lkerr.InvalidInput, op,
			"placement covers %d gates, netlist has %d", len(pl.Site), len(nl.Gates))
	}
	siteGate := make([]int, grid.Sites())
	for i := range siteGate {
		siteGate[i] = -1
	}
	for g, s := range pl.Site {
		if s < 0 || s >= len(siteGate) {
			return lkerr.New(lkerr.InvalidInput, op, "gate %d at site %d outside the grid", g, s)
		}
		if siteGate[s] >= 0 {
			return lkerr.New(lkerr.InvalidInput, op, "gates %d and %d share site %d", siteGate[s], g, s)
		}
		siteGate[s] = g
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%s\ndesign %s rows=%d cols=%d sitew=%g siteh=%g tiles=%d gates=%d\n",
		StreamMagic, nl.Name, grid.Rows, grid.Cols, grid.SiteW, grid.SiteH, tiles, len(nl.Gates))
	parts := placement.Partition(grid, tiles)
	var buf []byte
	for idx, t := range parts {
		fmt.Fprintf(bw, "tile %d\n", idx)
		for r := t.Row0; r < t.Row1; r++ {
			for c := t.Col0; c < t.Col1; c++ {
				g := siteGate[r*grid.Cols+c]
				if g < 0 {
					continue
				}
				buf = appendGateLine(buf[:0], nl.Gates[g].Type, r, c)
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("end\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSyntheticStream streams a synthetic design straight to w without
// materializing a netlist or placement: the first gates sites in tile-order
// traversal are occupied, with cell types assigned round-robin from types.
// This is the generator behind the 10M-gate streaming benchmark.
func WriteSyntheticStream(w io.Writer, name string, rows, cols int, siteW, siteH float64, tiles int, types []string, gates int) error {
	const op = "netlist.WriteSyntheticStream"
	if len(types) == 0 {
		return lkerr.New(lkerr.InvalidInput, op, "no cell types")
	}
	if rows < 1 || cols < 1 || gates < 0 || gates > rows*cols {
		return lkerr.New(lkerr.InvalidInput, op,
			"%d gates do not fit a %d×%d grid", gates, rows, cols)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%s\ndesign %s rows=%d cols=%d sitew=%g siteh=%g tiles=%d gates=%d\n",
		StreamMagic, name, rows, cols, siteW, siteH, tiles, gates)
	grid := placement.Grid{Rows: rows, Cols: cols, SiteW: siteW, SiteH: siteH}
	parts := placement.Partition(grid, tiles)
	var buf []byte
	left := gates
	g := 0
	for idx, t := range parts {
		if left == 0 {
			break
		}
		buf = append(buf[:0], "tile "...)
		buf = strconv.AppendInt(buf, int64(idx), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		for r := t.Row0; r < t.Row1 && left > 0; r++ {
			for c := t.Col0; c < t.Col1 && left > 0; c++ {
				buf = appendGateLine(buf[:0], types[g%len(types)], r, c)
				if _, err := bw.Write(buf); err != nil {
					return err
				}
				g++
				left--
			}
		}
	}
	if _, err := bw.WriteString("end\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendGateLine renders one "g TYPE ROW COL\n" record into buf.
func appendGateLine(buf []byte, typ string, row, col int) []byte {
	buf = append(buf, 'g', ' ')
	buf = append(buf, typ...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(row), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(col), 10)
	return append(buf, '\n')
}
