package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TechMap translates between generic ISCAS85 ".bench" Boolean operators and
// library cell names.
type TechMap struct {
	// OpToCell maps a bench operator (upper case) and its fanin count to a
	// library cell name.
	OpToCell func(op string, arity int) (string, error)
	// CellToOp maps a library cell name to a bench operator.
	CellToOp func(cellType string) (string, error)
}

// DefaultTechMap maps bench operators to the X1 cells of the built-in
// library and back (cell names are of the form OP<arity>_X<drive>).
func DefaultTechMap() TechMap {
	return TechMap{
		OpToCell: func(op string, arity int) (string, error) {
			switch op {
			case "NOT", "INV":
				return "INV_X1", nil
			case "BUF", "BUFF":
				return "BUF_X1", nil
			case "NAND", "NOR", "AND", "OR":
				if arity < 2 || arity > 4 {
					return "", fmt.Errorf("netlist: no %d-input %s cell", arity, op)
				}
				return fmt.Sprintf("%s%d_X1", op, arity), nil
			case "XOR":
				switch arity {
				case 2:
					return "XOR2_X1", nil
				case 3:
					return "XOR3_X1", nil
				}
				return "", fmt.Errorf("netlist: no %d-input XOR cell", arity)
			case "XNOR":
				if arity != 2 {
					return "", fmt.Errorf("netlist: no %d-input XNOR cell", arity)
				}
				return "XNOR2_X1", nil
			case "DFF":
				return "DFF_X1", nil
			default:
				return "", fmt.Errorf("netlist: unknown bench operator %q", op)
			}
		},
		CellToOp: func(cellType string) (string, error) {
			base := cellType
			if i := strings.Index(base, "_"); i >= 0 {
				base = base[:i]
			}
			switch {
			case strings.HasPrefix(base, "INV"):
				return "NOT", nil
			case strings.HasPrefix(base, "BUF"):
				return "BUFF", nil
			case strings.HasPrefix(base, "NAND"):
				return "NAND", nil
			case strings.HasPrefix(base, "NOR") && !strings.HasPrefix(base, "NOR2B"):
				return "NOR", nil
			case strings.HasPrefix(base, "AND"):
				return "AND", nil
			case strings.HasPrefix(base, "OR"):
				return "OR", nil
			case strings.HasPrefix(base, "XNOR"):
				return "XNOR", nil
			case strings.HasPrefix(base, "XOR"):
				return "XOR", nil
			case strings.HasPrefix(base, "DFF"):
				return "DFF", nil
			default:
				return "", fmt.Errorf("netlist: cell %q has no bench operator", cellType)
			}
		},
	}
}

// WriteBench renders the netlist in ISCAS85 .bench format. Gate types that
// have no bench operator (complex AOI cells etc.) cause an error; the
// synthetic benchmark suites restrict themselves to mappable cells.
func WriteBench(w io.Writer, n *Netlist, tm TechMap) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s — %d inputs, %d gates\n", n.Name, n.NumPI, len(n.Gates))
	for i := 0; i < n.NumPI; i++ {
		fmt.Fprintf(bw, "INPUT(N%d)\n", i)
	}
	for _, o := range n.Outputs {
		fmt.Fprintf(bw, "OUTPUT(N%d)\n", o)
	}
	for gi, g := range n.Gates {
		op, err := tm.CellToOp(g.Type)
		if err != nil {
			return err
		}
		names := make([]string, len(g.Fanins))
		for j, f := range g.Fanins {
			names[j] = fmt.Sprintf("N%d", f)
		}
		fmt.Fprintf(bw, "N%d = %s(%s)\n", n.NumPI+gi, op, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// ReadBench parses an ISCAS85 .bench file into a Netlist, mapping operators
// to library cells with tm. Node lines may appear in any order; the result
// is topologically sorted.
func ReadBench(r io.Reader, name string, tm TechMap) (*Netlist, error) {
	type rawGate struct {
		out    string
		op     string
		fanins []string
	}
	var inputs, outputs []string
	var raws []rawGate

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			inputs = append(inputs, extractParen(line))
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			outputs = append(outputs, extractParen(line))
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("netlist: %s:%d: malformed line %q", name, lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			po := strings.Index(rhs, "(")
			pc := strings.LastIndex(rhs, ")")
			if po < 0 || pc < po {
				return nil, fmt.Errorf("netlist: %s:%d: malformed expression %q", name, lineNo, rhs)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:po]))
			var fanins []string
			for _, f := range strings.Split(rhs[po+1:pc], ",") {
				fanins = append(fanins, strings.TrimSpace(f))
			}
			raws = append(raws, rawGate{out: out, op: op, fanins: fanins})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %s: %w", name, err)
	}

	// Assign node ids: inputs first, then gates in topological order.
	id := make(map[string]int, len(inputs)+len(raws))
	for i, in := range inputs {
		if _, dup := id[in]; dup {
			return nil, fmt.Errorf("netlist: %s: duplicate input %q", name, in)
		}
		id[in] = i
	}
	nl := &Netlist{Name: name, NumPI: len(inputs)}
	pending := raws
	for len(pending) > 0 {
		progressed := false
		var next []rawGate
		for _, rg := range pending {
			ready := true
			for _, f := range rg.fanins {
				if _, ok := id[f]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, rg)
				continue
			}
			cellType, err := tm.OpToCell(rg.op, len(rg.fanins))
			if err != nil {
				return nil, fmt.Errorf("netlist: %s: node %s: %w", name, rg.out, err)
			}
			fanins := make([]int, len(rg.fanins))
			for j, f := range rg.fanins {
				fanins[j] = id[f]
			}
			if _, dup := id[rg.out]; dup {
				return nil, fmt.Errorf("netlist: %s: node %q driven twice", name, rg.out)
			}
			id[rg.out] = nl.NumNodes()
			nl.Gates = append(nl.Gates, Gate{Type: cellType, Fanins: fanins})
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("netlist: %s: combinational cycle or undriven node (%d gates unresolved)",
				name, len(pending))
		}
		pending = next
	}
	for _, o := range outputs {
		oid, ok := id[o]
		if !ok {
			return nil, fmt.Errorf("netlist: %s: output %q undriven", name, o)
		}
		nl.Outputs = append(nl.Outputs, oid)
	}
	sort.Ints(nl.Outputs)
	return nl, nl.Validate()
}

func extractParen(line string) string {
	po := strings.Index(line, "(")
	pc := strings.LastIndex(line, ")")
	if po < 0 || pc < po {
		return ""
	}
	return strings.TrimSpace(line[po+1 : pc])
}
