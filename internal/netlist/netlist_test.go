package netlist

import (
	"bytes"
	"strings"
	"testing"

	"leakest/internal/cells"
	"leakest/internal/stats"
)

func libArity(t *testing.T) CellArity {
	t.Helper()
	byName := cells.ByName(cells.Library())
	return func(typ string) (int, error) {
		c, ok := byName[typ]
		if !ok {
			t.Fatalf("unknown cell %s", typ)
		}
		return c.NumInputs, nil
	}
}

func TestValidate(t *testing.T) {
	good := &Netlist{Name: "g", NumPI: 2, Gates: []Gate{
		{Type: "INV_X1", Fanins: []int{0}},
		{Type: "NAND2_X1", Fanins: []int{1, 2}},
	}, Outputs: []int{3}}
	if err := good.Validate(); err != nil {
		t.Errorf("good netlist rejected: %v", err)
	}
	bad := []*Netlist{
		{NumPI: -1},
		{NumPI: 1, Gates: []Gate{{Type: "", Fanins: nil}}},
		{NumPI: 1, Gates: []Gate{{Type: "INV_X1", Fanins: []int{1}}}},  // self/future ref
		{NumPI: 1, Gates: []Gate{{Type: "INV_X1", Fanins: []int{-1}}}}, // negative
		{NumPI: 1, Outputs: []int{5}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad netlist %d accepted", i)
		}
	}
}

func TestCountsAndHistogram(t *testing.T) {
	nl := &Netlist{Name: "h", NumPI: 1, Gates: []Gate{
		{Type: "INV_X1", Fanins: []int{0}},
		{Type: "INV_X1", Fanins: []int{1}},
		{Type: "NAND2_X1", Fanins: []int{0, 1}},
	}}
	c := nl.Counts()
	if c["INV_X1"] != 2 || c["NAND2_X1"] != 1 {
		t.Errorf("Counts = %v", c)
	}
	h, err := nl.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if p := h.Prob("INV_X1"); p != 2.0/3 {
		t.Errorf("P(INV) = %g", p)
	}
	empty := &Netlist{Name: "e", NumPI: 1}
	if _, err := empty.Histogram(); err == nil {
		t.Errorf("empty netlist histogram should fail")
	}
}

func TestRandomCircuitMatchesHistogram(t *testing.T) {
	hist, _ := stats.NewHistogram(map[string]float64{
		"INV_X1": 1, "NAND2_X1": 2, "NOR2_X1": 1,
	})
	rng := stats.NewRNG(3, "rand-circ")
	nl, err := RandomCircuit(rng, "rc", 4000, 16, hist, libArity(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("generated netlist invalid: %v", err)
	}
	if len(nl.Gates) != 4000 {
		t.Fatalf("gate count %d", len(nl.Gates))
	}
	got, _ := nl.Histogram()
	if d := stats.TotalVariationDistance(hist, got); d > 0.03 {
		t.Errorf("generated histogram TV distance %g from target", d)
	}
	if len(nl.Outputs) == 0 {
		t.Errorf("no outputs designated")
	}
	if _, err := RandomCircuit(rng, "bad", 0, 4, hist, libArity(t)); err == nil {
		t.Errorf("zero gates accepted")
	}
}

func TestBenchRoundTrip(t *testing.T) {
	hist, _ := stats.NewHistogram(map[string]float64{
		"INV_X1": 1, "NAND2_X1": 2, "NOR3_X1": 1, "XOR2_X1": 1, "BUF_X1": 1,
	})
	rng := stats.NewRNG(9, "bench-rt")
	nl, err := RandomCircuit(rng, "rt", 200, 8, hist, libArity(t))
	if err != nil {
		t.Fatal(err)
	}
	tm := DefaultTechMap()
	var buf bytes.Buffer
	if err := WriteBench(&buf, nl, tm); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	got, err := ReadBench(&buf, "rt", tm)
	if err != nil {
		t.Fatalf("ReadBench: %v", err)
	}
	if got.NumPI != nl.NumPI || len(got.Gates) != len(nl.Gates) {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			got.NumPI, len(got.Gates), nl.NumPI, len(nl.Gates))
	}
	// Cell usage must survive exactly.
	want := nl.Counts()
	have := got.Counts()
	for typ, n := range want {
		if have[typ] != n {
			t.Errorf("type %s: %d vs %d", typ, have[typ], n)
		}
	}
}

func TestReadBenchISCASStyle(t *testing.T) {
	src := `
# simple circuit
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G10 = NAND(G1, G2)
G11 = NOR(G10, G3)
G16 = NOT(G11)
G17 = XOR(G16, G10)
`
	nl, err := ReadBench(strings.NewReader(src), "simple", DefaultTechMap())
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumPI != 3 || len(nl.Gates) != 4 {
		t.Fatalf("shape: %d PIs, %d gates", nl.NumPI, len(nl.Gates))
	}
	c := nl.Counts()
	for _, want := range []string{"NAND2_X1", "NOR2_X1", "INV_X1", "XOR2_X1"} {
		if c[want] != 1 {
			t.Errorf("missing %s in %v", want, c)
		}
	}
	if len(nl.Outputs) != 1 {
		t.Errorf("outputs = %v", nl.Outputs)
	}
}

func TestReadBenchOutOfOrder(t *testing.T) {
	// Gates listed before their fanins must still resolve.
	src := `
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = NAND(a, a)
`
	nl, err := ReadBench(strings.NewReader(src), "ooo", DefaultTechMap())
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Errorf("out-of-order parse produced invalid netlist: %v", err)
	}
}

func TestReadBenchErrors(t *testing.T) {
	tm := DefaultTechMap()
	cases := []string{
		"INPUT(a)\nz = NOT(missing)\n",       // undriven fanin
		"INPUT(a)\nz NOT(a)\n",               // missing '='
		"INPUT(a)\nz = WEIRD(a)\n",           // unknown op
		"INPUT(a)\nOUTPUT(q)\nz = NOT(a)\n",  // undriven output
		"INPUT(a)\nz = NOT(a)\nz = NOT(a)\n", // doubly driven
		"INPUT(a)\nINPUT(a)\n",               // duplicate input
		"INPUT(a)\nx = NOT(y)\ny = NOT(x)\n", // cycle
		"INPUT(a)\nz = NAND(a, a, a, a, a)\n",
	}
	for i, src := range cases {
		if _, err := ReadBench(strings.NewReader(src), "bad", tm); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTechMapCoverage(t *testing.T) {
	tm := DefaultTechMap()
	// Every mappable op round-trips through a cell.
	for _, op := range []string{"NOT", "BUFF", "NAND", "NOR", "AND", "OR", "XOR", "XNOR"} {
		arity := 2
		if op == "NOT" || op == "BUFF" {
			arity = 1
		}
		cell, err := tm.OpToCell(op, arity)
		if err != nil {
			t.Errorf("OpToCell(%s): %v", op, err)
			continue
		}
		back, err := tm.CellToOp(cell)
		if err != nil {
			t.Errorf("CellToOp(%s): %v", cell, err)
			continue
		}
		// NOT↔INV and BUF spellings normalize.
		if back != op && !(op == "NOT" && back == "NOT") {
			if !(op == "BUFF" && back == "BUFF") {
				t.Errorf("%s → %s → %s", op, cell, back)
			}
		}
	}
	if _, err := tm.CellToOp("AOI21_X1"); err == nil {
		t.Errorf("AOI cells should not map to bench ops")
	}
	if _, err := tm.OpToCell("NAND", 7); err == nil {
		t.Errorf("7-input NAND should be rejected")
	}
}

func TestSortedTypes(t *testing.T) {
	nl := &Netlist{NumPI: 1, Gates: []Gate{
		{Type: "Z", Fanins: []int{0}},
		{Type: "A", Fanins: []int{0}},
		{Type: "Z", Fanins: []int{0}},
	}}
	got := nl.SortedTypes()
	if len(got) != 2 || got[0] != "A" || got[1] != "Z" {
		t.Errorf("SortedTypes = %v", got)
	}
}

func TestPropagateProbabilities(t *testing.T) {
	// INV chain: probabilities alternate p, 1−p, p, ...
	nl := &Netlist{Name: "chain", NumPI: 1, Gates: []Gate{
		{Type: "INV_X1", Fanins: []int{0}},
		{Type: "INV_X1", Fanins: []int{1}},
		{Type: "INV_X1", Fanins: []int{2}},
	}}
	arity := func(string) (int, error) { return 1, nil }
	outProb := func(typ string, pins []float64) (float64, error) { return 1 - pins[0], nil }
	probs, gatePins, err := PropagateProbabilities(nl, 0.3, arity, outProb)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.3, 0.7, 0.3, 0.7}
	for i, w := range want {
		if diff := probs[i] - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("node %d: %g, want %g", i, probs[i], w)
		}
	}
	if gatePins[1][0] != 0.7 {
		t.Errorf("gate 1 pin prob = %g", gatePins[1][0])
	}
	// Pseudo pins padded with 0.5.
	nl2 := &Netlist{Name: "dff", NumPI: 1, Gates: []Gate{
		{Type: "DFF_X1", Fanins: []int{0, 0}}, // D and CLK wired, M/S pseudo
	}}
	arity4 := func(string) (int, error) { return 4, nil }
	passThrough := func(typ string, pins []float64) (float64, error) { return pins[0], nil }
	_, pins, err := PropagateProbabilities(nl2, 0.9, arity4, passThrough)
	if err != nil {
		t.Fatal(err)
	}
	if len(pins[0]) != 4 || pins[0][2] != 0.5 || pins[0][3] != 0.5 {
		t.Errorf("pseudo pins not padded: %v", pins[0])
	}
	// Errors.
	if _, _, err := PropagateProbabilities(nl, 2, arity, outProb); err == nil {
		t.Errorf("bad input probability accepted")
	}
	badOut := func(string, []float64) (float64, error) { return 3, nil }
	if _, _, err := PropagateProbabilities(nl, 0.5, arity, badOut); err == nil {
		t.Errorf("out-of-range output probability accepted")
	}
	arity0 := func(string) (int, error) { return 0, nil }
	if _, _, err := PropagateProbabilities(nl, 0.5, arity0, outProb); err == nil {
		t.Errorf("fanin/pin mismatch accepted")
	}
}
