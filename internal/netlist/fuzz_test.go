package netlist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"leakest/internal/stats"
)

// iscasStyleSeeds grows the corpus with realistic circuit shapes: random
// netlists matching the gate mixes of the ISCAS85 c432 and c499 benchmarks
// (examples/iscas85), serialized through WriteBench. They are generated
// in-package — importing internal/iscas here would cycle — and exercise the
// parser on full-size well-formed inputs rather than only on malformed
// scraps.
func iscasStyleSeeds(f *testing.F) [][]byte {
	arity := func(typ string) (int, error) {
		n, ok := map[string]int{
			"INV_X1": 1, "BUF_X1": 1, "NAND2_X1": 2, "NAND3_X1": 3,
			"NOR2_X1": 2, "AND2_X1": 2, "OR2_X1": 2, "XOR2_X1": 2,
		}[typ]
		if !ok {
			return 0, fmt.Errorf("unknown cell %s", typ)
		}
		return n, nil
	}
	mixes := []struct {
		name    string
		n, pis  int
		weights map[string]float64
	}{
		// c432: 27-channel interrupt controller (160 gates, 36 inputs).
		{"c432", 160, 36, map[string]float64{
			"NAND2_X1": 79, "NAND3_X1": 20, "NOR2_X1": 19, "XOR2_X1": 18, "INV_X1": 24}},
		// c499: 32-bit SEC circuit (202 gates, 41 inputs).
		{"c499", 202, 41, map[string]float64{
			"XOR2_X1": 104, "AND2_X1": 56, "OR2_X1": 2, "INV_X1": 40}},
	}
	var out [][]byte
	tm := DefaultTechMap()
	for _, mix := range mixes {
		hist, err := stats.NewHistogram(mix.weights)
		if err != nil {
			f.Fatalf("%s histogram: %v", mix.name, err)
		}
		rng := stats.NewRNG(20070604, "fuzz/"+mix.name)
		nl, err := RandomCircuit(rng, mix.name, mix.n, mix.pis, hist, arity)
		if err != nil {
			f.Fatalf("%s circuit: %v", mix.name, err)
		}
		var buf bytes.Buffer
		if err := WriteBench(&buf, nl, tm); err != nil {
			f.Fatalf("%s serialize: %v", mix.name, err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzReadBench asserts the .bench parser is total: arbitrary input must
// either return an error or produce a structurally valid netlist — never
// panic, hang, or yield a netlist that violates its own invariants.
func FuzzReadBench(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n",
		"INPUT(N1)\nINPUT(N2)\nOUTPUT(N3)\nN3 = AND(N1, N2)\n",
		"INPUT(a)\ny = NOT(a)\nz = DFF(y)\nOUTPUT(z)\n",
		// Malformed shapes the parser must reject gracefully.
		"y = NAND(a, b)\n",                 // undefined fanins
		"INPUT(a)\ny = BOGUS(a)\n",         // unknown operator
		"INPUT(a)\ny = NAND(a)\n",          // wrong arity
		"INPUT(a)\ny = NOT(a\n",            // unbalanced parens
		"INPUT(a)\ny = NOT(a)\ny = NOT(a)", // duplicate definition
		"INPUT(a)\na = NOT(a)\n",           // self-loop / input redefined
		"x = NOT(y)\ny = NOT(x)\n",         // combinational cycle
		"INPUT(\n",
		"OUTPUT()\n",
		"=\n(\n)\n,,,\n",
		strings.Repeat("INPUT(a)\n", 100),
		"INPUT(\x00)\nOUTPUT(\xff)\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	for _, s := range iscasStyleSeeds(f) {
		f.Add(s)
	}
	tm := DefaultTechMap()
	f.Fuzz(func(t *testing.T, data []byte) {
		nl, err := ReadBench(bytes.NewReader(data), "fuzz", tm)
		if err != nil {
			return
		}
		// On success the netlist must satisfy its structural invariants:
		// every fanin index in range and topologically earlier, outputs in
		// range.
		if nl.NumPI < 0 {
			t.Fatalf("negative NumPI %d", nl.NumPI)
		}
		for gi, g := range nl.Gates {
			node := nl.NumPI + gi
			for _, fin := range g.Fanins {
				if fin < 0 || fin >= nl.NumPI+len(nl.Gates) {
					t.Fatalf("gate %d fanin %d out of range", gi, fin)
				}
				if fin >= node {
					t.Fatalf("gate %d not topologically sorted (fanin %d ≥ node %d)", gi, fin, node)
				}
			}
		}
		for _, o := range nl.Outputs {
			if o < 0 || o >= nl.NumPI+len(nl.Gates) {
				t.Fatalf("output %d out of range", o)
			}
		}
	})
}
