package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBench asserts the .bench parser is total: arbitrary input must
// either return an error or produce a structurally valid netlist — never
// panic, hang, or yield a netlist that violates its own invariants.
func FuzzReadBench(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n",
		"INPUT(N1)\nINPUT(N2)\nOUTPUT(N3)\nN3 = AND(N1, N2)\n",
		"INPUT(a)\ny = NOT(a)\nz = DFF(y)\nOUTPUT(z)\n",
		// Malformed shapes the parser must reject gracefully.
		"y = NAND(a, b)\n",                 // undefined fanins
		"INPUT(a)\ny = BOGUS(a)\n",         // unknown operator
		"INPUT(a)\ny = NAND(a)\n",          // wrong arity
		"INPUT(a)\ny = NOT(a\n",            // unbalanced parens
		"INPUT(a)\ny = NOT(a)\ny = NOT(a)", // duplicate definition
		"INPUT(a)\na = NOT(a)\n",           // self-loop / input redefined
		"x = NOT(y)\ny = NOT(x)\n",         // combinational cycle
		"INPUT(\n",
		"OUTPUT()\n",
		"=\n(\n)\n,,,\n",
		strings.Repeat("INPUT(a)\n", 100),
		"INPUT(\x00)\nOUTPUT(\xff)\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	tm := DefaultTechMap()
	f.Fuzz(func(t *testing.T, data []byte) {
		nl, err := ReadBench(bytes.NewReader(data), "fuzz", tm)
		if err != nil {
			return
		}
		// On success the netlist must satisfy its structural invariants:
		// every fanin index in range and topologically earlier, outputs in
		// range.
		if nl.NumPI < 0 {
			t.Fatalf("negative NumPI %d", nl.NumPI)
		}
		for gi, g := range nl.Gates {
			node := nl.NumPI + gi
			for _, fin := range g.Fanins {
				if fin < 0 || fin >= nl.NumPI+len(nl.Gates) {
					t.Fatalf("gate %d fanin %d out of range", gi, fin)
				}
				if fin >= node {
					t.Fatalf("gate %d not topologically sorted (fanin %d ≥ node %d)", gi, fin, node)
				}
			}
		}
		for _, o := range nl.Outputs {
			if o < 0 || o >= nl.NumPI+len(nl.Gates) {
				t.Fatalf("output %d out of range", o)
			}
		}
	})
}
