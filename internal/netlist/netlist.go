// Package netlist provides the gate-level netlist substrate for late-mode
// leakage estimation: a simple DAG netlist of library cells, the ISCAS85
// ".bench" interchange format, technology mapping between generic Boolean
// operators and library cells, random-circuit generation matching a target
// cell-usage histogram (the §3.1.1 validation workload), and extraction of
// the high-level characteristics the Random-Gate model consumes.
package netlist

import (
	"fmt"
	"math/rand"
	"sort"

	"leakest/internal/stats"
)

// Gate is one cell instance. Fanins refer to node indices: nodes
// 0..NumPI-1 are primary inputs, node NumPI+k is the output of gate k.
type Gate struct {
	Type   string
	Fanins []int
}

// Netlist is a combinational gate-level netlist in topological order.
type Netlist struct {
	Name    string
	NumPI   int
	Gates   []Gate
	Outputs []int // node indices of primary outputs
}

// NumNodes returns the total node count (primary inputs + gate outputs).
func (n *Netlist) NumNodes() int { return n.NumPI + len(n.Gates) }

// Validate checks topological ordering and fanin sanity.
func (n *Netlist) Validate() error {
	if n.NumPI < 0 {
		return fmt.Errorf("netlist %s: negative PI count", n.Name)
	}
	for gi, g := range n.Gates {
		if g.Type == "" {
			return fmt.Errorf("netlist %s: gate %d has no type", n.Name, gi)
		}
		node := n.NumPI + gi
		for _, f := range g.Fanins {
			if f < 0 || f >= node {
				return fmt.Errorf("netlist %s: gate %d fanin %d violates topological order", n.Name, gi, f)
			}
		}
	}
	for _, o := range n.Outputs {
		if o < 0 || o >= n.NumNodes() {
			return fmt.Errorf("netlist %s: output node %d out of range", n.Name, o)
		}
	}
	return nil
}

// Counts returns the cell-usage counts by type.
func (n *Netlist) Counts() map[string]int {
	m := make(map[string]int)
	for _, g := range n.Gates {
		m[g.Type]++
	}
	return m
}

// Histogram returns the cell-usage frequency distribution (the α_i of
// Eq. 6), extracted from the netlist.
func (n *Netlist) Histogram() (*stats.Histogram, error) {
	if len(n.Gates) == 0 {
		return nil, fmt.Errorf("netlist %s: no gates", n.Name)
	}
	return stats.FromCounts(n.Counts())
}

// CellArity maps a cell type name to the number of real (non-pseudo) input
// pins the netlist must wire. Sequential pseudo-state bits are not nets.
type CellArity func(cellType string) (int, error)

// RandomCircuit generates a random netlist of n gates whose cell types are
// drawn i.i.d. from hist — the construction behind Fig. 6: the set of all
// circuits sharing the same high-level characteristics. Fanins are wired
// uniformly at random among earlier nodes, preserving topological order.
func RandomCircuit(rng *rand.Rand, name string, n, numPI int, hist *stats.Histogram, arity CellArity) (*Netlist, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netlist: gate count %d must be positive", n)
	}
	if numPI <= 1 {
		numPI = 8
	}
	nl := &Netlist{Name: name, NumPI: numPI, Gates: make([]Gate, 0, n)}
	for gi := 0; gi < n; gi++ {
		typ := hist.Sample(rng)
		k, err := arity(typ)
		if err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		avail := numPI + gi
		fanins := make([]int, k)
		for j := range fanins {
			fanins[j] = rng.Intn(avail)
		}
		nl.Gates = append(nl.Gates, Gate{Type: typ, Fanins: fanins})
	}
	// Expose the last few gates as outputs.
	numOut := 4
	if numOut > n {
		numOut = n
	}
	for i := 0; i < numOut; i++ {
		nl.Outputs = append(nl.Outputs, nl.NumNodes()-1-i)
	}
	return nl, nil
}

// SortedTypes returns the distinct cell types in the netlist, sorted.
func (n *Netlist) SortedTypes() []string {
	counts := n.Counts()
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	return types
}
