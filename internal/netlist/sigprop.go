package netlist

import "fmt"

// OutputProbFunc returns the probability that a cell's output is 1 given
// independent per-pin 1-probabilities (sequential pseudo-state pins take
// 0.5 by convention). Implemented by the cells package; injected here to
// keep the netlist substrate free of transistor-level dependencies.
type OutputProbFunc func(cellType string, pinProbs []float64) (float64, error)

// PropagateProbabilities computes a signal probability for every node of
// the netlist: primary inputs take inputProb, and each gate's output
// probability follows from its fanin probabilities through its Boolean
// function under the standard independence assumption (exact for trees,
// an approximation in the presence of reconvergent fanout — the customary
// treatment in probabilistic power analysis).
//
// It returns one probability per node (inputs first, then gate outputs in
// netlist order) and, per gate, the pin-probability vectors, padding any
// pseudo-state pins beyond the wired fanins with 0.5.
func PropagateProbabilities(nl *Netlist, inputProb float64, arity CellArity, outProb OutputProbFunc) (nodeProbs []float64, gatePins [][]float64, err error) {
	if inputProb < 0 || inputProb > 1 {
		return nil, nil, fmt.Errorf("netlist: input probability %g outside [0, 1]", inputProb)
	}
	if err := nl.Validate(); err != nil {
		return nil, nil, err
	}
	nodeProbs = make([]float64, nl.NumNodes())
	for i := 0; i < nl.NumPI; i++ {
		nodeProbs[i] = inputProb
	}
	gatePins = make([][]float64, len(nl.Gates))
	for gi, g := range nl.Gates {
		pins, err := arity(g.Type)
		if err != nil {
			return nil, nil, fmt.Errorf("netlist: gate %d: %w", gi, err)
		}
		if len(g.Fanins) > pins {
			return nil, nil, fmt.Errorf("netlist: gate %d (%s) has %d fanins but %d pins",
				gi, g.Type, len(g.Fanins), pins)
		}
		pp := make([]float64, pins)
		for j := range pp {
			if j < len(g.Fanins) {
				pp[j] = nodeProbs[g.Fanins[j]]
			} else {
				pp[j] = 0.5 // unwired pseudo-state pin
			}
		}
		gatePins[gi] = pp
		p, err := outProb(g.Type, pp)
		if err != nil {
			return nil, nil, fmt.Errorf("netlist: gate %d (%s): %w", gi, g.Type, err)
		}
		if p < 0 || p > 1 {
			return nil, nil, fmt.Errorf("netlist: gate %d (%s): output probability %g outside [0, 1]",
				gi, g.Type, p)
		}
		nodeProbs[nl.NumPI+gi] = p
	}
	return nodeProbs, gatePins, nil
}
