package netlist

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"leakest/internal/lkerr"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

// streamTestDesign builds a small random placed design for round-trip tests.
func streamTestDesign(t testing.TB, n int) (*Netlist, *placement.Placement) {
	hist, err := stats.NewHistogram(map[string]float64{"INV_X1": 2, "NAND2_X1": 3, "NOR2_X1": 1})
	if err != nil {
		t.Fatal(err)
	}
	arity := func(typ string) (int, error) {
		return map[string]int{"INV_X1": 1, "NAND2_X1": 2, "NOR2_X1": 2}[typ], nil
	}
	rng := stats.NewRNG(7, "stream-test")
	nl, err := RandomCircuit(rng, "stream-test", n, 4, hist, arity)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := placement.AutoGrid(n + n/2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	return nl, pl
}

// TestStreamRoundTrip: WritePlaced → ScanPlaced recovers every gate with
// its type and site, grouped by the declared tile partition in tile order.
func TestStreamRoundTrip(t *testing.T) {
	nl, pl := streamTestDesign(t, 60)
	for _, tiles := range []int{1, 3, 7} {
		var buf bytes.Buffer
		if err := WritePlaced(&buf, nl, pl, tiles); err != nil {
			t.Fatalf("tiles=%d: write: %v", tiles, err)
		}
		parts := placement.Partition(pl.Grid, tiles)
		wantBySite := map[int]string{}
		for g, s := range pl.Site {
			wantBySite[s] = nl.Gates[g].Type
		}
		var hdrSeen StreamHeader
		lastTile := -1
		got := 0
		typeCounts := map[string]int{}
		hdr, err := ScanPlaced(bytes.NewReader(buf.Bytes()), StreamVisitor{
			Design: func(h StreamHeader) error { hdrSeen = h; return nil },
			TileStart: func(idx int, tile placement.Tile) error {
				if idx <= lastTile {
					t.Fatalf("tiles=%d: tile %d after %d", tiles, idx, lastTile)
				}
				if tile != parts[idx] {
					t.Fatalf("tiles=%d: tile %d bounds %+v, want %+v", tiles, idx, tile, parts[idx])
				}
				lastTile = idx
				return nil
			},
			Gate: func(ti int, typ []byte, row, col int) error {
				if ti != lastTile {
					t.Fatalf("gate attributed to tile %d during tile %d", ti, lastTile)
				}
				s := row*pl.Grid.Cols + col
				if want, ok := wantBySite[s]; !ok || want != string(typ) {
					t.Fatalf("tiles=%d: site %d carries %q, want %q", tiles, s, typ, want)
				}
				typeCounts[string(typ)]++
				got++
				return nil
			},
		})
		if err != nil {
			t.Fatalf("tiles=%d: scan: %v", tiles, err)
		}
		if hdrSeen != hdr {
			t.Fatalf("Design callback header %+v != returned %+v", hdrSeen, hdr)
		}
		if hdr.Grid() != pl.Grid || hdr.Gates != len(nl.Gates) || hdr.Tiles != tiles || hdr.Name != nl.Name {
			t.Fatalf("tiles=%d: header %+v does not match the design", tiles, hdr)
		}
		if got != len(nl.Gates) {
			t.Fatalf("tiles=%d: scanned %d gates, want %d", tiles, got, len(nl.Gates))
		}
		for typ, want := range nl.Counts() {
			if typeCounts[typ] != want {
				t.Fatalf("tiles=%d: %s count %d, want %d", tiles, typ, typeCounts[typ], want)
			}
		}
	}
}

// TestWriteSyntheticStream: the generator fills the first gates sites in
// tile order with round-robin types and its output scans cleanly.
func TestWriteSyntheticStream(t *testing.T) {
	types := []string{"INV_X1", "NAND2_X1"}
	var buf bytes.Buffer
	if err := WriteSyntheticStream(&buf, "syn", 10, 12, 1.5, 2.0, 4, types, 97); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	perTile := map[int]int{}
	hdr, err := ScanPlaced(bytes.NewReader(buf.Bytes()), StreamVisitor{
		Gate: func(ti int, typ []byte, row, col int) error {
			counts[string(typ)]++
			perTile[ti]++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Gates != 97 || hdr.Rows != 10 || hdr.Cols != 12 || hdr.Tiles != 4 {
		t.Fatalf("header %+v", hdr)
	}
	if counts["INV_X1"] != 49 || counts["NAND2_X1"] != 48 {
		t.Fatalf("round-robin type counts %v", counts)
	}
	total := 0
	for _, c := range perTile {
		total += c
	}
	if total != 97 {
		t.Fatalf("per-tile counts sum %d, want 97", total)
	}
	// Generation must also refuse impossible shapes.
	if err := WriteSyntheticStream(&buf, "syn", 2, 2, 1, 1, 1, types, 5); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("5 gates on 4 sites: got %v", err)
	}
	if err := WriteSyntheticStream(&buf, "syn", 2, 2, 1, 1, 1, nil, 1); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("no types: got %v", err)
	}
}

// TestScanPlacedErrors: every structural violation is a typed InvalidInput
// error mentioning the offending construct.
func TestScanPlacedErrors(t *testing.T) {
	head := StreamMagic + "\ndesign d rows=4 cols=4 sitew=1 siteh=1 tiles=2 gates=2\n"
	cases := map[string]struct {
		in   string
		want string
	}{
		"bad-magic":      {"leakest-stream v9\n", "not a leakest-stream"},
		"no-design":      {StreamMagic + "\n", "missing design line"},
		"bad-design":     {StreamMagic + "\ndesign d rows=4\n", "malformed design line"},
		"bad-rows":       {StreamMagic + "\ndesign d rows=x cols=4 sitew=1 siteh=1 tiles=2 gates=2\n", "bad rows"},
		"zero-grid":      {StreamMagic + "\ndesign d rows=0 cols=4 sitew=1 siteh=1 tiles=2 gates=2\n", "at least 1×1"},
		"bad-pitch":      {StreamMagic + "\ndesign d rows=4 cols=4 sitew=0 siteh=1 tiles=2 gates=2\n", "positive and finite"},
		"zero-tiles":     {StreamMagic + "\ndesign d rows=4 cols=4 sitew=1 siteh=1 tiles=0 gates=2\n", "must be ≥ 1"},
		"gates-over":     {StreamMagic + "\ndesign d rows=4 cols=4 sitew=1 siteh=1 tiles=2 gates=17\n", "outside [0, 16 sites]"},
		"truncated":      {head + "tile 0\ng INV_X1 0 0\n", "missing end"},
		"gate-first":     {head + "g INV_X1 0 0\n", "before the first tile"},
		"tile-range":     {head + "tile 4\n", "out of range"},
		"tile-order":     {head + "tile 1\ng INV_X1 0 2\ntile 0\n", "out of order"},
		"tile-repeat":    {head + "tile 0\ntile 0\n", "out of order"},
		"outside-tile":   {head + "tile 0\ng INV_X1 0 3\n", "outside tile"},
		"duplicate-site": {head + "tile 0\ng INV_X1 1 1\ng NAND2_X1 1 1\n", "duplicate gate"},
		"count-mismatch": {head + "tile 0\ng INV_X1 0 0\nend\n", "header declares 2"},
		"count-over":     {head + "tile 0\ng A 0 0\ng B 0 1\ng C 1 0\n", "more gate records"},
		"after-end":      {head + "tile 0\ng A 0 0\ng B 0 1\nend\ntile 1\n", "after end"},
		"malformed-gate": {head + "tile 0\ng INV_X1 zero 0\n", "malformed gate record"},
		"unknown-record": {head + "tile 0\nblob 12\n", "unrecognized record"},
		"malformed-tile": {head + "tile x\n", "malformed tile record"},
	}
	for name, tc := range cases {
		_, err := ScanPlaced(strings.NewReader(tc.in), StreamVisitor{})
		if !lkerr.IsCode(err, lkerr.InvalidInput) {
			t.Errorf("%s: got %v, want InvalidInput", name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
	// Comments and blank lines are fine, and a duplicate site in a *different*
	// tile is a distinct site and must pass.
	ok := head + "# a comment\n\ntile 0\ng A 0 0\n# inner\ntile 3\ng A 2 2\nend\n"
	if _, err := ScanPlaced(strings.NewReader(ok), StreamVisitor{}); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}

// TestScanPlacedVisitorAbort: a visitor error stops the scan and surfaces
// unchanged.
func TestScanPlacedVisitorAbort(t *testing.T) {
	nl, pl := streamTestDesign(t, 20)
	var buf bytes.Buffer
	if err := WritePlaced(&buf, nl, pl, 2); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	calls := 0
	_, err := ScanPlaced(bytes.NewReader(buf.Bytes()), StreamVisitor{
		Gate: func(int, []byte, int, int) error {
			calls++
			if calls == 3 {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the visitor's error", err)
	}
	if calls != 3 {
		t.Fatalf("scan continued after the visitor error (%d calls)", calls)
	}
}

// FuzzScanPlaced asserts the stream parser is total: arbitrary bytes either
// scan cleanly or fail with a typed InvalidInput error — never a panic —
// and a clean scan satisfies the format's own invariants.
func FuzzScanPlaced(f *testing.F) {
	head := StreamMagic + "\ndesign d rows=6 cols=6 sitew=1.5 siteh=2 tiles=2 gates=3\n"
	var syn bytes.Buffer
	if err := WriteSyntheticStream(&syn, "seed", 8, 8, 1, 1, 3, []string{"INV_X1", "NOR2_X1"}, 40); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		"",
		StreamMagic + "\n",
		head + "tile 0\ng INV_X1 0 0\ng NAND2_X1 1 2\ntile 3\ng NOR2_X1 3 3\nend\n",
		syn.String(),
		// Truncations at various depths.
		head,
		head + "tile 0\ng INV_X1 0 0\n",
		head + "tile 0\ng INV_X1 0 0\ng NAND2_X1 1 2\ntile 3\ng NOR2_X1 3 3\n",
		// Out-of-order and repeated tiles.
		head + "tile 3\ng A 3 3\ntile 0\n",
		head + "tile 1\ntile 1\n",
		// Duplicate site, out-of-tile gate, count mismatch.
		head + "tile 0\ng A 0 0\ng B 0 0\n",
		head + "tile 0\ng A 5 5\n",
		head + "tile 0\ng A 0 0\nend\n",
		// Header damage.
		"leakest-stream v2\ndesign d rows=6 cols=6 sitew=1.5 siteh=2 tiles=2 gates=3\n",
		StreamMagic + "\ndesign d rows=-1 cols=6 sitew=1.5 siteh=2 tiles=2 gates=3\n",
		StreamMagic + "\ndesign d rows=6 cols=6 sitew=nan siteh=2 tiles=2 gates=3\n",
		StreamMagic + "\ndesign d rows=99999999999999999999 cols=6 sitew=1 siteh=1 tiles=2 gates=3\n",
		head + "g stray 0 0\n",
		head + "\x00\xff\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		gates := 0
		lastTile := -1
		hdr, err := ScanPlaced(bytes.NewReader(data), StreamVisitor{
			TileStart: func(idx int, tile placement.Tile) error {
				if idx <= lastTile {
					t.Fatalf("tile %d delivered after %d", idx, lastTile)
				}
				if tile.Sites() <= 0 {
					t.Fatalf("tile %d is empty: %+v", idx, tile)
				}
				lastTile = idx
				return nil
			},
			Gate: func(ti int, typ []byte, row, col int) error {
				if ti != lastTile {
					t.Fatalf("gate in tile %d delivered during tile %d", ti, lastTile)
				}
				if len(typ) == 0 {
					t.Fatal("empty gate type delivered")
				}
				gates++
				return nil
			},
		})
		if err != nil {
			if !lkerr.IsCode(err, lkerr.InvalidInput) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if gates != hdr.Gates {
			t.Fatalf("clean scan delivered %d gates, header declares %d", gates, hdr.Gates)
		}
	})
}
