package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/parallel"
	"leakest/internal/quad"
	"leakest/internal/telemetry"
)

// Result is the outcome of one estimation: the full-chip leakage mean and
// standard deviation, plus bookkeeping about how they were obtained.
type Result struct {
	// Mean and Std are the full-chip leakage statistics in amperes.
	Mean, Std float64
	// Method names the estimator.
	Method string
	// GridRows and GridCols are the RG-array factorization used by the
	// linear method (zero for the others).
	GridRows, GridCols int
	// Note carries estimator-specific remarks (e.g. occupancy scaling).
	Note string
	// TileStats holds per-tile moments when a tiled estimator produced this
	// result (DESIGN.md §16); nil for the monolithic paths.
	TileStats []TileStat
	// Degraded reports that a budget ruled out the requested method and the
	// statistics come from a cheaper estimator (Method names which one).
	Degraded bool
	// DegradeReason explains which budget tripped and what was skipped.
	DegradeReason string
	// Timings is the per-stage wall-clock breakdown of the call that
	// produced this result (model construction, the estimator itself, and —
	// for placed designs — extraction and the pair loop), recorded by the
	// telemetry layer at the public entry points.
	Timings []telemetry.StageTiming
}

// checkFinite rejects a result whose statistics carry NaN or Inf, naming
// the offending quantity — the final-moment guard that keeps a corrupted
// accumulation from escaping as a silent NaN.
func (r Result) checkFinite(op string) (Result, error) {
	if err := lkerr.CheckFinite(op, "mean", r.Mean); err != nil {
		return Result{}, err
	}
	if err := lkerr.CheckFinite(op, "std", r.Std); err != nil {
		return Result{}, err
	}
	return r, nil
}

// modelGrid factorizes the spec into the k×m RG array of Fig. 4 whose
// aspect matches the layout. When k·m ≠ N (gate counts rarely factorize
// into the layout aspect exactly), the off-diagonal covariance mass is
// scaled by N(N−1)/(S(S−1)) — the expected pair count of N gates occupying
// N of S sites uniformly at random; with S = N the formulas reduce to the
// paper's exactly.
func (m *Model) modelGrid() (rows, cols int) {
	n := float64(m.Spec.N)
	cols = int(math.Round(math.Sqrt(n * m.Spec.W / m.Spec.H)))
	if cols < 1 {
		cols = 1
	}
	rows = int(math.Round(n / float64(cols)))
	if rows < 1 {
		rows = 1
	}
	return rows, cols
}

// timeMethod spans an estimator stage and, when metrics are enabled,
// observes estimate_duration_seconds{method=...}. The disabled path costs
// one context lookup plus two atomic loads per estimation, never per
// iteration.
func timeMethod(ctx context.Context, method, stage string) func() {
	end := telemetry.StartSpan(ctx, stage)
	if !telemetry.MetricsOn() {
		return end
	}
	start := time.Now()
	name := telemetry.Label("estimate_duration_seconds", "method", method)
	return func() {
		end()
		telemetry.ObserveSeconds(name, time.Since(start).Seconds())
	}
}

// EstimateLinear computes the full-chip statistics with the O(n) method of
// §3.1 (Eq. 17): the pairwise covariance sum regrouped by distance vector
// with multiplicity (m−|i|)(k−|j|).
func (m *Model) EstimateLinear() (Result, error) {
	return m.EstimateLinearCtx(context.Background())
}

// EstimateLinearCtx is EstimateLinear with cancellation: the distance-vector
// loop checks ctx once per grid column, where it also reports progress.
func (m *Model) EstimateLinearCtx(ctx context.Context) (Result, error) {
	defer timeMethod(ctx, "linear", "estimate.linear")()
	k, cols := m.modelGrid()
	rep := telemetry.StartProgress(ctx, "estimate.linear", int64(cols))
	s := k * cols
	dw := m.Spec.W / float64(cols)
	dh := m.Spec.H / float64(k)

	// Off-diagonal mass over distance vectors (i, j) ≠ (0, 0); the
	// diagonal term (0,0) contributes S·σ²_XI. Columns are sharded: each
	// column i owns slot colOff[i] and sums its j terms top to bottom, and
	// the columns are merged in index order below, so the result is
	// bitwise identical at any worker count (the F(ρ_L) spline is
	// read-only here).
	colOff := make([]float64, cols)
	tick := parallel.NewTicker(rep)
	err := parallel.ForEach(ctx, "core.EstimateLinear", m.Workers, cols, func(_, i int) error {
		sum := 0.0
		for j := 0; j <= k-1; j++ {
			if i == 0 && j == 0 {
				continue
			}
			d := math.Hypot(float64(i)*dw, float64(j)*dh)
			cov := m.CovAtCorr(m.Proc.TotalCorr(d))
			if cov == 0 {
				continue
			}
			// Each (±i, ±j) combination has multiplicity (m−i)(k−j); with
			// i or j zero the sign does not double.
			mult := float64((cols - i) * (k - j))
			count := 4.0
			if i == 0 || j == 0 {
				count = 2
			}
			sum += count * mult * cov
		}
		colOff[i] = sum
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		return Result{}, err
	}
	off := 0.0
	for _, v := range colOff {
		off += v
	}
	rep.Done(int64(cols))
	off = fault.Corrupt(fault.SiteLinearAccum, off)
	n := float64(m.Spec.N)
	note := ""
	if s != m.Spec.N {
		occ := n * (n - 1) / (float64(s) * float64(s-1))
		off *= occ
		note = fmt.Sprintf("occupancy-scaled: %d gates on %d×%d=%d sites", m.Spec.N, k, cols, s)
	}
	variance := n*m.variance + off
	return Result{
		Mean:     n * m.mu,
		Std:      math.Sqrt(variance),
		Method:   "linear",
		GridRows: k,
		GridCols: cols,
		Note:     note,
	}.checkFinite("core.EstimateLinear")
}

// EstimateIntegral2D computes the statistics with the constant-time 2-D
// rectangular integral of §3.2.1 (Eq. 20):
//
//	σ² ≈ 4·(n²/A²)·∫₀ᵂ∫₀ᴴ (W−x)(H−y)·C_XI(√(x²+y²)) dy dx
//
// evaluated with panelled Gauss–Legendre quadrature whose resolution tracks
// the correlation length.
func (m *Model) EstimateIntegral2D() (Result, error) {
	return m.EstimateIntegral2DCtx(context.Background())
}

// EstimateIntegral2DCtx is EstimateIntegral2D with stage telemetry attached
// to ctx (the quadrature itself is constant-time and uninterruptible).
func (m *Model) EstimateIntegral2DCtx(ctx context.Context) (Result, error) {
	defer timeMethod(ctx, "integral-2d", "estimate.integral-2d")()
	w, h := m.Spec.W, m.Spec.H
	n := float64(m.Spec.N)
	area := w * h
	integrand := func(x, y float64) float64 {
		return (w - x) * (h - y) * m.CovAtCorr(m.Proc.TotalCorr(math.Hypot(x, y)))
	}
	nx, ny := m.panelCounts()
	integral := quad.Integrate2D(integrand, 0, w, 0, h, nx, ny)
	variance := 4 * n * n / (area * area) * integral
	if variance < 0 {
		variance = 0
	}
	return Result{
		Mean:   n * m.mu,
		Std:    math.Sqrt(variance),
		Method: "integral-2d",
		Note:   fmt.Sprintf("%d×%d Gauss-Legendre panels", nx, ny),
	}.checkFinite("core.EstimateIntegral2D")
}

// panelCounts sizes the quadrature grid so each correlation length gets
// several panels.
func (m *Model) panelCounts() (nx, ny int) {
	lam := m.Proc.EffectiveRange(0.1)
	if lam <= 0 {
		lam = math.Max(m.Spec.W, m.Spec.H)
	}
	scale := func(extent float64) int {
		p := int(math.Ceil(4 * extent / lam))
		if p < 6 {
			p = 6
		}
		if p > 48 {
			p = 48
		}
		return p
	}
	return scale(m.Spec.W), scale(m.Spec.H)
}

// EstimatePolar computes the statistics with the constant-time 1-D polar
// integral of §3.2.2 (Eqs. 25–26):
//
//	σ² ≈ 4·(n²/A²)·∫₀^{Dmax} C'(r)·r·g(r) dr + n²·C_floor
//	g(r) = 0.5·r² − (W+H)·r + (π/2)·W·H
//
// where C'(r) = C_XI(r) − C_floor and C_floor is the D2D covariance floor.
// The method requires the within-die correlation to vanish within
// min(W, H); otherwise an error directs the caller to the 2-D method.
func (m *Model) EstimatePolar() (Result, error) {
	return m.EstimatePolarCtx(context.Background())
}

// EstimatePolarCtx is EstimatePolar with stage telemetry attached to ctx.
func (m *Model) EstimatePolarCtx(ctx context.Context) (Result, error) {
	w, h := m.Spec.W, m.Spec.H
	// A pure-D2D process has no within-die term: C'(r) is identically zero
	// and only the covariance floor survives, so the integration range is
	// empty and the method always applies.
	dmax := 0.0
	if m.Proc.SigmaWID > 0 && m.Proc.WIDCorr != nil {
		dmax = m.Proc.WIDCorr.Range()
		if math.IsInf(dmax, 1) {
			dmax = m.Proc.EffectiveRange(1e-4)
		}
	}
	if dmax > math.Min(w, h) {
		return Result{}, lkerr.New(lkerr.InvalidInput, "core.EstimatePolar",
			"polar method needs correlation range %.4g ≤ min(W,H) = %.4g; use EstimateIntegral2D",
			dmax, math.Min(w, h))
	}
	// The span starts after the applicability check so a refused attempt
	// (Auto falling through to the 2-D integral) leaves no timing entry.
	defer timeMethod(ctx, "polar-1d", "estimate.polar-1d")()
	floor := m.CovAtCorr(m.Proc.CorrFloor())
	g := func(r float64) float64 { return 0.5*r*r - (w+h)*r + math.Pi/2*w*h }
	integrand := func(r float64) float64 {
		c := m.CovAtCorr(m.Proc.TotalCorr(r)) - floor
		return c * r * g(r)
	}
	n := float64(m.Spec.N)
	area := w * h
	// The integrand varies on the correlation-length scale; a few panels
	// per length give quadrature error far below the model error.
	lam := m.Proc.EffectiveRange(0.5)
	panels := 16
	if lam > 0 {
		if p := int(math.Ceil(8 * dmax / lam)); p > panels {
			panels = p
		}
	}
	if panels > 256 {
		panels = 256
	}
	integral := quad.GaussLegendrePanels(integrand, 0, dmax, panels)
	variance := 4*n*n/(area*area)*integral + n*n*floor
	if variance < 0 {
		variance = 0
	}
	return Result{
		Mean:   n * m.mu,
		Std:    math.Sqrt(variance),
		Method: "polar-1d",
		Note:   fmt.Sprintf("Dmax = %.4g µm", dmax),
	}.checkFinite("core.EstimatePolar")
}

// EstimateNaive is the no-correlation baseline in the style of the early
// estimators [1, 2] the paper improves on: gates are treated as
// independent, so the variance is only n·σ²_XI. It badly underestimates
// the spread when within-die correlation is present.
func (m *Model) EstimateNaive() (Result, error) {
	return m.EstimateNaiveCtx(context.Background())
}

// EstimateNaiveCtx is EstimateNaive with stage telemetry attached to ctx.
func (m *Model) EstimateNaiveCtx(ctx context.Context) (Result, error) {
	defer timeMethod(ctx, "naive-independent", "estimate.naive")()
	n := float64(m.Spec.N)
	return Result{
		Mean:   n * m.mu,
		Std:    math.Sqrt(n * m.variance),
		Method: "naive-independent",
	}.checkFinite("core.EstimateNaive")
}
