package core

import (
	"math"
	"testing"

	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

// randomPlacedCircuit draws a small random design for the sharding
// property tests.
func randomPlacedCircuit(t *testing.T, seed int64, n int) (*Model, *netlist.Netlist, *placement.Placement) {
	t.Helper()
	lib := testLib(t)
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	arity := func(typ string) (int, error) { return byName[typ], nil }
	hist := testHist(t)
	rng := stats.NewRNG(seed, "parallel-prop")
	nl, err := netlist.RandomCircuit(rng, "pp", n, 8, hist, arity)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := placement.AutoGrid(n)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	spec := DesignSpec{Hist: hist, N: n, W: grid.W(), H: grid.H(), SignalProb: 0.5}
	m, err := NewModel(lib, testProcess(), spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	return m, nl, pl
}

// naiveTruthVariance is the reference implementation of Eq. 15's pair sum:
// a plain double loop over the upper triangle, grouped by row exactly as
// the serial algorithm sums, with no pool involved.
func naiveTruthVariance(t *testing.T, m *Model, nl *netlist.Netlist, pl *placement.Placement) (mean, variance float64) {
	t.Helper()
	types := nl.SortedTypes()
	tIdx := make(map[string]int, len(types))
	for i, typ := range types {
		tIdx[typ] = i
	}
	n := len(nl.Gates)
	gt := make([]int, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for g, gate := range nl.Gates {
		mu, sigma, err := m.CellStats(gate.Type)
		if err != nil {
			t.Fatal(err)
		}
		mean += mu
		variance += sigma * sigma
		gt[g] = tIdx[gate.Type]
		xs[g], ys[g] = pl.Pos(g)
	}
	// Warm the pair cache the same way TrueStatsCtx does, then sum.
	for i, a := range types {
		for j := i; j < len(types); j++ {
			if _, err := m.PairCovAtCorr(a, types[j], 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	for a := 0; a < n; a++ {
		key := func(b int) [2]string {
			ka, kb := types[gt[a]], types[gt[b]]
			if kb < ka {
				ka, kb = kb, ka
			}
			return [2]string{ka, kb}
		}
		row := 0.0
		for b := a + 1; b < n; b++ {
			d := math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
			rho := m.Proc.TotalCorr(d)
			if rho <= 0 {
				continue
			}
			if rho > 1 {
				rho = 1
			}
			cov := m.pairCache[key(b)].Eval(rho)
			if cov > 0 {
				row += 2 * cov
			}
		}
		variance += row
	}
	return mean, variance
}

// TestTruthShardingMatchesNaiveDoubleLoop asserts the row-sharded pair sum
// reproduces the naive reference double loop to the last bit (0 ULP) at
// every worker count, on several random small designs.
func TestTruthShardingMatchesNaiveDoubleLoop(t *testing.T) {
	for _, c := range []struct {
		seed int64
		n    int
	}{{3, 30}, {17, 77}, {42, 120}} {
		m, nl, pl := randomPlacedCircuit(t, c.seed, c.n)
		wantMean, wantVar := naiveTruthVariance(t, m, nl, pl)
		wantStd := math.Sqrt(wantVar)
		for _, w := range []int{1, 2, 3, 7} {
			m.Workers = w
			res, err := TrueStats(m, nl, pl)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", c.n, w, err)
			}
			if res.Mean != wantMean || res.Std != wantStd {
				t.Errorf("n=%d workers=%d: (mean, std) = (%x, %x), naive (%x, %x) — not 0 ULP",
					c.n, w, res.Mean, res.Std, wantMean, wantStd)
			}
		}
	}
}

// TestLinearShardingBitwiseAcrossWorkers asserts the column-sharded
// distance-vector sum of Eq. 17 is bitwise stable across worker counts.
func TestLinearShardingBitwiseAcrossWorkers(t *testing.T) {
	for _, n := range []int{64, 400, 1024} {
		m := newTestModel(t, n, Analytic)
		m.Workers = 1
		ref, err := m.EstimateLinear()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 7} {
			m.Workers = w
			got, err := m.EstimateLinear()
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if got.Mean != ref.Mean || got.Std != ref.Std {
				t.Errorf("n=%d workers=%d: (%x, %x) != serial (%x, %x)",
					n, w, got.Mean, got.Std, ref.Mean, ref.Std)
			}
		}
	}
}

// TestLinearMultiplicityRegrouping verifies Eq. 17's combinatorial core
// stays intact under the sharded loop: the multiplicities n_ij =
// (m−|i|)(k−|j|) summed with their sign counts over all distance vectors
// (i, j) ≠ (0, 0) must total S(S−1), the number of ordered site pairs.
func TestLinearMultiplicityRegrouping(t *testing.T) {
	for _, g := range []struct{ k, cols int }{
		{1, 7}, {3, 3}, {4, 9}, {11, 5}, {20, 20},
	} {
		total := int64(0)
		for i := 0; i < g.cols; i++ {
			for j := 0; j < g.k; j++ {
				if i == 0 && j == 0 {
					continue
				}
				mult := int64((g.cols - i) * (g.k - j))
				count := int64(4)
				if i == 0 || j == 0 {
					count = 2
				}
				total += count * mult
			}
		}
		s := int64(g.k * g.cols)
		if total != s*(s-1) {
			t.Errorf("grid %dx%d: Σ count·(m−i)(k−j) = %d, want S(S−1) = %d",
				g.k, g.cols, total, s*(s-1))
		}
	}
}
