package core

import (
	"context"
	"math"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/parallel"
	"leakest/internal/placement"
	"leakest/internal/quad"
	"leakest/internal/telemetry"
)

// TrueStats computes the "true leakage" of a specific placed design: the
// O(n²) pairwise-covariance sum over all cell instances (Eq. 15), the
// late-mode baseline the paper validates against. The per-gate statistics
// are state-weighted at the model's signal probability, and pairwise
// covariances follow the model's mode (exact f_{m,n} mapping or the
// simplified ρ_leak = ρ_L assumption).
func TrueStats(m *Model, nl *netlist.Netlist, pl *placement.Placement) (Result, error) {
	return TrueStatsCtx(context.Background(), m, nl, pl)
}

// maxClassTableEntries bounds the total size of the distance-class kernel
// tables (float64 entries across all type pairs): 2^24 entries are 128 MiB,
// past which TrueStatsCtx silently keeps the untabulated per-pair loop.
const maxClassTableEntries = 1 << 24

// TrueStatsCtx is TrueStats with cancellation: the O(n²) pair loop checks
// ctx once per outer row — where it also reports progress — so a cancel
// lands within one row's work.
//
// When the placement grid has far fewer (|Δrow|, |Δcol|) lag classes than
// gate pairs — the usual case — the per-pair kernel work (distance, total
// correlation, spline evaluation) is precomputed once per class and type
// pair, turning the O(n²) inner loop into an indexed table lookup. The
// per-pair accumulation order is unchanged, and at the default power-of-two
// site pitch the class distances are bitwise equal to the per-pair
// distances, so the tabulated sum is bitwise identical to the historical
// loop (guarded by tests and the conformance ULP identities).
func TrueStatsCtx(ctx context.Context, m *Model, nl *netlist.Netlist, pl *placement.Placement) (Result, error) {
	n := len(nl.Gates)
	classes := int64(pl.Grid.Rows) * int64(pl.Grid.Cols)
	pairs := int64(n) * int64(n-1) / 2
	useTables := classes <= pairs/4 && classes <= maxClassTableEntries
	return trueStats(ctx, m, nl, pl, useTables)
}

// trueStats is TrueStatsCtx with the class-table decision explicit, so the
// equivalence of the two inner loops is directly testable.
func trueStats(ctx context.Context, m *Model, nl *netlist.Netlist, pl *placement.Placement, useTables bool) (Result, error) {
	const op = "core.TrueStats"
	defer telemetry.StartSpan(ctx, "core.truth")()
	n := len(nl.Gates)
	if n == 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "empty netlist")
	}
	if len(pl.Site) != n {
		return Result{}, lkerr.New(lkerr.InvalidInput, op,
			"placement covers %d gates, netlist has %d", len(pl.Site), n)
	}

	// Index the gate types and pre-build the pairwise covariance splines.
	types := nl.SortedTypes()
	tIdx := make(map[string]int, len(types))
	for i, t := range types {
		tIdx[t] = i
	}
	pairSpl := make([][]*quad.Spline, len(types))
	for i := range pairSpl {
		pairSpl[i] = make([]*quad.Spline, len(types))
	}
	for i, a := range types {
		if err := lkerr.FromContext(ctx, op); err != nil {
			return Result{}, err
		}
		for j := i; j < len(types); j++ {
			b := types[j]
			// Warm the model cache, then grab the spline directly.
			if _, err := m.PairCovAtCorr(a, b, 0.5); err != nil {
				return Result{}, err
			}
			key := [2]string{a, b}
			if b < a {
				key = [2]string{b, a}
			}
			sp := m.pairCache[key]
			pairSpl[i][j] = sp
			pairSpl[j][i] = sp
		}
	}

	// Per-gate effective stats and positions.
	mean := 0.0
	variance := 0.0
	gt := make([]int, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	rs := make([]int, n)
	cs := make([]int, n)
	for g, gate := range nl.Gates {
		mu, sigma, err := m.CellStats(gate.Type)
		if err != nil {
			return Result{}, err
		}
		mean += mu
		variance += sigma * sigma
		gt[g] = tIdx[gate.Type]
		xs[g], ys[g] = pl.Pos(g)
		rs[g], cs[g] = pl.RowCol(g)
	}

	// Distance-class kernel tables: one cov value per (type pair, lag
	// class), replacing the per-pair Hypot/TotalCorr/spline-eval chain with
	// an indexed load.
	var classTabs [][][]float64
	if useTables {
		nt := int64(len(types)) * int64(len(types)+1) / 2
		if int64(pl.Grid.Rows)*int64(pl.Grid.Cols)*nt > maxClassTableEntries {
			useTables = false
		}
	}
	if useTables {
		endPre := telemetry.StartSpan(ctx, "truth.class_precompute")
		classTabs = buildClassTables(m, pl.Grid, pairSpl)
		endPre()
	}

	// Pairwise covariances (Eq. 15's off-diagonal part). The upper
	// triangle is sharded by row: each row a owns slot rowVar[a] and sums
	// its b > a pairs left to right exactly as the serial loop did, and
	// the rows are merged in index order below, so the result is bitwise
	// identical at any worker count. The splines, class tables, and
	// per-gate tables are read-only here (the model caches were warmed
	// above).
	cols := pl.Grid.Cols
	rep := telemetry.StartProgress(ctx, "core.truth", int64(n))
	tick := parallel.NewTicker(rep)
	rowVar := make([]float64, n)
	err := parallel.ForEach(ctx, op, m.Workers, n, func(_, a int) error {
		fault.Hit(fault.SiteTruthRow)
		sum := 0.0
		if classTabs != nil {
			ra, ca := rs[a], cs[a]
			row := classTabs[gt[a]]
			for b := a + 1; b < n; b++ {
				dr := ra - rs[b]
				if dr < 0 {
					dr = -dr
				}
				dc := ca - cs[b]
				if dc < 0 {
					dc = -dc
				}
				cov := row[gt[b]][dr*cols+dc]
				if cov > 0 {
					sum += 2 * cov
				}
			}
		} else {
			xa, ya := xs[a], ys[a]
			row := pairSpl[gt[a]]
			for b := a + 1; b < n; b++ {
				d := math.Hypot(xa-xs[b], ya-ys[b])
				rho := m.Proc.TotalCorr(d)
				if rho <= 0 {
					continue
				}
				if rho > 1 {
					rho = 1
				}
				cov := row[gt[b]].Eval(rho)
				if cov > 0 {
					sum += 2 * cov
				}
			}
		}
		rowVar[a] = sum
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		return Result{}, err
	}
	for _, v := range rowVar {
		variance += v
	}
	rep.Done(int64(n))
	telemetry.Add("truth_pairs_total", int64(n)*int64(n-1)/2)
	variance = fault.Corrupt(fault.SiteTruthRow, variance)
	return Result{
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Method: "true-n2",
	}.checkFinite(op)
}

// buildClassTables precomputes, for every (|Δrow|, |Δcol|) lag class of the
// grid and every type pair, the pairwise leakage covariance the inner loop
// would otherwise derive per pair: ρ = TotalCorr(LagDist), clamped to at
// most 1, then the pair spline at ρ. Classes with non-positive ρ keep a
// zero entry, which the accumulation skips exactly like the historical
// `continue`. The shared ρ values are computed once per class; each
// unordered type pair shares one table.
func buildClassTables(m *Model, grid placement.Grid, pairSpl [][]*quad.Spline) [][][]float64 {
	nc := grid.Rows * grid.Cols
	rhos := make([]float64, nc)
	for dr := 0; dr < grid.Rows; dr++ {
		for dc := 0; dc < grid.Cols; dc++ {
			rho := m.Proc.TotalCorr(grid.LagDist(dr, dc))
			if rho > 1 {
				rho = 1
			}
			rhos[dr*grid.Cols+dc] = rho
		}
	}
	nt := len(pairSpl)
	tabs := make([][][]float64, nt)
	for i := range tabs {
		tabs[i] = make([][]float64, nt)
	}
	for i := 0; i < nt; i++ {
		for j := i; j < nt; j++ {
			sp := pairSpl[i][j]
			tab := make([]float64, nc)
			for k, rho := range rhos {
				if rho > 0 {
					tab[k] = sp.Eval(rho)
				}
			}
			tabs[i][j] = tab
			tabs[j][i] = tab
		}
	}
	return tabs
}

// ExtractSpec derives the high-level design characteristics (Fig. 1) from a
// placed netlist — the late-mode extraction step: cell-usage histogram,
// gate count, and layout dimensions.
func ExtractSpec(nl *netlist.Netlist, pl *placement.Placement, signalProb float64) (DesignSpec, error) {
	hist, err := nl.Histogram()
	if err != nil {
		return DesignSpec{}, err
	}
	spec := DesignSpec{
		Hist:       hist,
		N:          len(nl.Gates),
		W:          pl.Grid.W(),
		H:          pl.Grid.H(),
		SignalProb: signalProb,
	}
	return spec, spec.Validate()
}
