package core

import (
	"fmt"
	"math"

	"leakest/internal/netlist"
	"leakest/internal/placement"
)

// PropagatedTrueStats refines the O(n²) true-leakage computation with
// per-net signal probabilities propagated through the netlist, instead of
// the single uniform probability the high-level abstraction uses. Each
// gate's state distribution follows from its actual fanin probabilities,
// so both its effective moments and its spatially correlated sigma become
// gate-specific. Pairwise covariances use the simplified ρ_leak = ρ_L
// mapping (exact per-gate-pair state mixing would need a table per gate
// pair; §3.1.2 bounds the simplification below 2.8 %).
//
// gatePins supplies the per-gate pin-probability vectors, e.g. from
// netlist.PropagateProbabilities.
func PropagatedTrueStats(m *Model, nl *netlist.Netlist, pl *placement.Placement, gatePins [][]float64) (Result, error) {
	n := len(nl.Gates)
	if n == 0 {
		return Result{}, fmt.Errorf("core: empty netlist")
	}
	if len(pl.Site) != n {
		return Result{}, fmt.Errorf("core: placement covers %d gates, netlist has %d", len(pl.Site), n)
	}
	if len(gatePins) != n {
		return Result{}, fmt.Errorf("core: %d pin-probability vectors for %d gates", len(gatePins), n)
	}
	mc := m.Mode.usesMCMoments()
	mean := 0.0
	variance := 0.0
	corrSig := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for g, gate := range nl.Gates {
		cc, err := m.Lib.Cell(gate.Type)
		if err != nil {
			return Result{}, err
		}
		mu, sd, cs := cc.EffectiveStatsPins(gatePins[g], mc)
		mean += mu
		variance += sd * sd
		corrSig[g] = cs
		xs[g], ys[g] = pl.Pos(g)
	}
	for a := 0; a < n; a++ {
		xa, ya, sa := xs[a], ys[a], corrSig[a]
		for b := a + 1; b < n; b++ {
			d := math.Hypot(xa-xs[b], ya-ys[b])
			rho := m.Proc.TotalCorr(d)
			if rho <= 0 {
				continue
			}
			if rho > 1 {
				rho = 1
			}
			variance += 2 * sa * corrSig[b] * rho
		}
	}
	return Result{
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Method: "true-propagated",
		Note:   "per-net propagated signal probabilities, simplified correlation",
	}, nil
}
