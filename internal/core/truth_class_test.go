package core

import (
	"context"
	"math"
	"testing"

	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

func classTestDesign(t *testing.T, n int, grid placement.Grid) (*Model, *netlist.Netlist, *placement.Placement) {
	t.Helper()
	lib := testLib(t)
	proc := testProcess()
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	hist := testHist(t)
	rng := stats.NewRNG(77, "truth-class")
	nl, err := netlist.RandomCircuit(rng, "tc", n, 16, hist,
		func(typ string) (int, error) { return byName[typ], nil })
	if err != nil {
		t.Fatal(err)
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	spec := DesignSpec{Hist: hist, N: n, W: grid.W(), H: grid.H(), SignalProb: 0.5}
	m, err := NewModel(lib, proc, spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	return m, nl, pl
}

// At the default power-of-two site pitch the class-table inner loop must be
// BITWISE identical to the historical per-pair loop: class distances equal
// pair distances exactly, so every spline evaluation and every accumulation
// term matches. This is the invariant that keeps the determinism contract
// and the frozen conformance goldens intact.
func TestClassTablesBitwiseIdenticalAtDefaultPitch(t *testing.T) {
	n := 300
	grid, err := placement.AutoGrid(n)
	if err != nil {
		t.Fatal(err)
	}
	m, nl, pl := classTestDesign(t, n, grid)
	tabbed, err := trueStats(context.Background(), m, nl, pl, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := trueStats(context.Background(), m, nl, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	if tabbed.Mean != plain.Mean || tabbed.Std != plain.Std {
		t.Errorf("class tables changed the result: µ %v vs %v, σ %v vs %v",
			tabbed.Mean, plain.Mean, tabbed.Std, plain.Std)
	}
}

// On a non-power-of-two pitch the class distance may differ from the pair
// distance by one ULP; the results must still agree to deep relative
// precision.
func TestClassTablesMatchOnOddPitch(t *testing.T) {
	n := 200
	grid, err := placement.NewGrid(n, 1.7, 2.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, nl, pl := classTestDesign(t, n, grid)
	tabbed, err := trueStats(context.Background(), m, nl, pl, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := trueStats(context.Background(), m, nl, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tabbed.Std-plain.Std) / plain.Std; rel > 1e-12 {
		t.Errorf("σ differs by %g relative on odd pitch", rel)
	}
	if rel := math.Abs(tabbed.Mean-plain.Mean) / plain.Mean; rel > 1e-12 {
		t.Errorf("µ differs by %g relative on odd pitch", rel)
	}
}

// TrueStats must stay worker-invariant with the tabulated loop.
func TestClassTablesWorkerInvariance(t *testing.T) {
	n := 256
	grid, err := placement.AutoGrid(n)
	if err != nil {
		t.Fatal(err)
	}
	m, nl, pl := classTestDesign(t, n, grid)
	m.Workers = 1
	serial, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = 4
	par, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Std != par.Std || serial.Mean != par.Mean {
		t.Errorf("worker count changed tabulated truth: σ %v vs %v", serial.Std, par.Std)
	}
}
