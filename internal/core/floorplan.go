package core

import (
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/spatial"
)

// Floorplan-level early estimation — an extension of the Random-Gate model
// to heterogeneous chips. The paper's model assumes one cell-usage
// histogram across the whole die; real chips have regions with very
// different populations (logic, SRAM arrays, register banks). A Floorplan
// is a set of non-overlapping rectangular blocks, each its own RG model;
// full-chip statistics combine exact intra-block variances (the linear
// method per block) with inter-block covariances aggregated over block
// tiles under the simplified ρ_leak = ρ_L mapping (§3.1.2 bounds that
// simplification below 2.8 %).

// Block is one rectangular region of the floorplan with its own cell
// population.
type Block struct {
	// Name labels the block in reports.
	Name string
	// Spec carries the block's histogram, gate count and dimensions; its
	// W/H are the block's dimensions.
	Spec DesignSpec
	// X, Y locate the block's lower-left corner on the die, in µm.
	X, Y float64
}

// FloorplanResult carries the combined statistics and the per-block parts.
type FloorplanResult struct {
	// Total is the full-chip result.
	Total Result
	// PerBlock lists each block's standalone statistics (intra-block
	// correlation only).
	PerBlock []Result
	// InterBlockCov is the total covariance contributed by cross-block
	// correlation, in A².
	InterBlockCov float64
}

// CorrMass returns the spatially correlated leakage sigma of one gate of
// the model's RG under the simplified mapping — the Σ w·σ aggregate used
// for cross-population covariances.
func (m *Model) CorrMass() float64 { return m.sumWSigma }

// EstimateFloorplan combines the blocks into full-chip statistics.
func EstimateFloorplan(lib *charlib.Library, proc *spatial.Process, blocks []Block, mode Mode) (FloorplanResult, error) {
	if len(blocks) == 0 {
		return FloorplanResult{}, fmt.Errorf("core: empty floorplan")
	}
	// Geometry sanity: positive placement, no overlaps.
	for i := range blocks {
		b := &blocks[i]
		if b.X < 0 || b.Y < 0 {
			return FloorplanResult{}, fmt.Errorf("core: block %q at negative position", b.Name)
		}
		if err := b.Spec.Validate(); err != nil {
			return FloorplanResult{}, fmt.Errorf("core: block %q: %w", b.Name, err)
		}
		for j := 0; j < i; j++ {
			a := &blocks[j]
			if b.X < a.X+a.Spec.W && a.X < b.X+b.Spec.W &&
				b.Y < a.Y+a.Spec.H && a.Y < b.Y+b.Spec.H {
				return FloorplanResult{}, fmt.Errorf("core: blocks %q and %q overlap", a.Name, b.Name)
			}
		}
	}

	out := FloorplanResult{}
	models := make([]*Model, len(blocks))
	mean := 0.0
	variance := 0.0
	for i := range blocks {
		m, err := NewModel(lib, proc, blocks[i].Spec, mode)
		if err != nil {
			return FloorplanResult{}, fmt.Errorf("core: block %q: %w", blocks[i].Name, err)
		}
		models[i] = m
		res, err := m.EstimateLinear()
		if err != nil {
			return FloorplanResult{}, fmt.Errorf("core: block %q: %w", blocks[i].Name, err)
		}
		res.Method = "block:" + blocks[i].Name
		out.PerBlock = append(out.PerBlock, res)
		mean += res.Mean
		variance += res.Std * res.Std
	}

	// Inter-block covariance: subdivide each block into tiles a fraction of
	// the correlation length, spread the block's correlated mass uniformly
	// over them, and sum tile-pair covariances at centre distances.
	if proc == nil {
		proc = lib.Process
	}
	tile := proc.EffectiveRange(0.5) / 4
	inter := 0.0
	type tileMass struct{ x, y, mass float64 }
	tilesOf := func(bi int) []tileMass {
		b := &blocks[bi]
		t := tile
		if t <= 0 || t > b.Spec.W {
			t = b.Spec.W
		}
		if t > b.Spec.H {
			t = b.Spec.H
		}
		nx := int(math.Ceil(b.Spec.W / t))
		ny := int(math.Ceil(b.Spec.H / t))
		total := float64(b.Spec.N) * models[bi].CorrMass()
		per := total / float64(nx*ny)
		out := make([]tileMass, 0, nx*ny)
		for ix := 0; ix < nx; ix++ {
			for iy := 0; iy < ny; iy++ {
				out = append(out, tileMass{
					x:    b.X + (float64(ix)+0.5)*b.Spec.W/float64(nx),
					y:    b.Y + (float64(iy)+0.5)*b.Spec.H/float64(ny),
					mass: per,
				})
			}
		}
		return out
	}
	tiles := make([][]tileMass, len(blocks))
	for i := range blocks {
		tiles[i] = tilesOf(i)
	}
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			for _, ta := range tiles[i] {
				for _, tb := range tiles[j] {
					rho := proc.TotalCorr(math.Hypot(ta.x-tb.x, ta.y-tb.y))
					if rho > 0 {
						inter += 2 * ta.mass * tb.mass * rho
					}
				}
			}
		}
	}
	variance += inter
	out.InterBlockCov = inter
	out.Total = Result{
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Method: "floorplan",
		Note:   fmt.Sprintf("%d blocks, tile %.3g µm", len(blocks), tile),
	}
	return out, nil
}
