package core

import (
	"fmt"
	"math"

	"leakest/internal/randvar"
)

// Distribution is a two-moment lognormal picture of the full-chip leakage:
// the paper's estimators deliver (mean, σ); matching a lognormal to them
// (the Wilkinson/Fenton approximation for sums of correlated lognormals)
// yields quantiles, exceedance probabilities and leakage-yield curves. The
// approximation is validated against the full-chip Monte Carlo in the
// chipmc tests.
type Distribution struct {
	// Mean and Std are the matched moments in amperes.
	Mean, Std float64
	// mu and sigma are the log-domain lognormal parameters.
	mu, sigma float64
}

// NewDistribution matches a lognormal to the given full-chip leakage mean
// and standard deviation.
func NewDistribution(mean, std float64) (Distribution, error) {
	mu, sigma, err := randvar.LogNormalFromMoments(mean, std)
	if err != nil {
		return Distribution{}, fmt.Errorf("core: %w", err)
	}
	return Distribution{Mean: mean, Std: std, mu: mu, sigma: sigma}, nil
}

// DistributionOf matches a lognormal to an estimation result.
func DistributionOf(r Result) (Distribution, error) {
	return NewDistribution(r.Mean, r.Std)
}

// Quantile returns the leakage value not exceeded with probability q.
func (d Distribution) Quantile(q float64) float64 {
	if d.sigma == 0 {
		return d.Mean
	}
	return math.Exp(d.mu + d.sigma*randvar.NormalQuantile(q))
}

// CDF returns P(leakage ≤ x).
func (d Distribution) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if d.sigma == 0 {
		if x < d.Mean {
			return 0
		}
		return 1
	}
	return randvar.NormalCDF(math.Log(x), d.mu, d.sigma)
}

// Exceedance returns P(leakage > budget) — the fraction of manufactured
// dies whose leakage exceeds a power budget.
func (d Distribution) Exceedance(budget float64) float64 {
	return 1 - d.CDF(budget)
}

// YieldBudget returns the leakage budget that yields the requested fraction
// of dies: the smallest budget B with P(leakage ≤ B) ≥ yield.
func (d Distribution) YieldBudget(yield float64) (float64, error) {
	if yield <= 0 || yield >= 1 {
		return 0, fmt.Errorf("core: yield %g outside (0, 1)", yield)
	}
	return d.Quantile(yield), nil
}

// String summarizes the distribution.
func (d Distribution) String() string {
	return fmt.Sprintf("lognormal(mean=%.4g A, std=%.4g A, median=%.4g A, p99=%.4g A)",
		d.Mean, d.Std, d.Quantile(0.5), d.Quantile(0.99))
}

// VarianceBreakdown decomposes the full-chip leakage variance of the
// linear-time estimate into its physical sources:
//
//   - Independent: the n·σ²_XI diagonal (gate-choice and local randomness);
//   - D2DFloor: the fully shared die-to-die component (covariance floor
//     acting over all pairs);
//   - WIDCorr: the distance-decaying within-die correlation in between.
//
// The fractions explain *why* the naive estimator fails: for large n the
// floor and WID terms, growing ~n², dwarf the ~n independent term.
type VarianceBreakdown struct {
	Total       float64 // σ² in A²
	Independent float64
	D2DFloor    float64
	WIDCorr     float64
}

// Fractions returns the three components normalized by the total.
func (v VarianceBreakdown) Fractions() (indep, floor, wid float64) {
	if v.Total == 0 {
		return 0, 0, 0
	}
	return v.Independent / v.Total, v.D2DFloor / v.Total, v.WIDCorr / v.Total
}

// String renders the breakdown compactly.
func (v VarianceBreakdown) String() string {
	i, fl, w := v.Fractions()
	return fmt.Sprintf("σ²=%.4g A² (independent %.1f%%, D2D %.1f%%, WID %.1f%%)",
		v.Total, 100*i, 100*fl, 100*w)
}

// BreakdownLinear computes the variance decomposition using the same
// distance-histogram walk as EstimateLinear.
func (m *Model) BreakdownLinear() (VarianceBreakdown, error) {
	res, err := m.EstimateLinear()
	if err != nil {
		return VarianceBreakdown{}, err
	}
	k, cols := res.GridRows, res.GridCols
	s := k * cols
	dw := m.Spec.W / float64(cols)
	dh := m.Spec.H / float64(k)
	floorCov := m.CovAtCorr(m.Proc.CorrFloor())
	offWID, offFloor := 0.0, 0.0
	for i := 0; i <= cols-1; i++ {
		for j := 0; j <= k-1; j++ {
			if i == 0 && j == 0 {
				continue
			}
			d := math.Hypot(float64(i)*dw, float64(j)*dh)
			cov := m.CovAtCorr(m.Proc.TotalCorr(d))
			mult := float64((cols - i) * (k - j))
			count := 4.0
			if i == 0 || j == 0 {
				count = 2
			}
			fl := floorCov
			if cov < fl {
				fl = cov
			}
			offFloor += count * mult * fl
			offWID += count * mult * (cov - fl)
		}
	}
	n := float64(m.Spec.N)
	if s != m.Spec.N {
		occ := n * (n - 1) / (float64(s) * float64(s-1))
		offFloor *= occ
		offWID *= occ
	}
	return VarianceBreakdown{
		Total:       res.Std * res.Std,
		Independent: n * m.variance,
		D2DFloor:    offFloor,
		WIDCorr:     offWID,
	}, nil
}
