package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistributionMatchesMoments(t *testing.T) {
	d, err := NewDistribution(2e-3, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Median below mean (right-skewed lognormal).
	med := d.Quantile(0.5)
	if !(med < d.Mean) {
		t.Errorf("median %g not below mean %g", med, d.Mean)
	}
	// Quantiles monotone.
	prev := 0.0
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		v := d.Quantile(q)
		if v <= prev {
			t.Fatalf("quantiles not monotone at q=%g", q)
		}
		prev = v
	}
	// CDF(Quantile(q)) = q.
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if got := d.CDF(d.Quantile(q)); math.Abs(got-q) > 1e-9 {
			t.Errorf("CDF∘Quantile(%g) = %g", q, got)
		}
	}
	// Exceedance complements CDF.
	b := d.Quantile(0.9)
	if got := d.Exceedance(b); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("exceedance at p90 = %g, want 0.1", got)
	}
	if d.CDF(0) != 0 || d.CDF(-1) != 0 {
		t.Errorf("CDF must vanish for non-positive leakage")
	}
	if !strings.Contains(d.String(), "lognormal") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDistributionDegenerate(t *testing.T) {
	d, err := NewDistribution(1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Quantile(0.01) != 1e-3 || d.Quantile(0.99) != 1e-3 {
		t.Errorf("zero-σ distribution should be a point mass")
	}
	if d.CDF(0.5e-3) != 0 || d.CDF(2e-3) != 1 {
		t.Errorf("point-mass CDF wrong")
	}
	if _, err := NewDistribution(-1, 1); err == nil {
		t.Errorf("negative mean accepted")
	}
}

func TestYieldBudget(t *testing.T) {
	d, _ := NewDistribution(1e-2, 3e-3)
	b, err := d.YieldBudget(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CDF(b); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("yield at budget = %g, want 0.95", got)
	}
	for _, y := range []float64{0, 1, -1, 2} {
		if _, err := d.YieldBudget(y); err == nil {
			t.Errorf("yield %g accepted", y)
		}
	}
}

func TestDistributionOfResult(t *testing.T) {
	m := newTestModel(t, 1024, Analytic)
	res, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	d, err := DistributionOf(res)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != res.Mean || d.Std != res.Std {
		t.Errorf("moments not carried over")
	}
	// The 3σ corner should correspond to a high quantile of the matched
	// lognormal (between p97 and p99.99 for moderate CV).
	corner := res.Mean + 3*res.Std
	p := d.CDF(corner)
	if p < 0.97 || p >= 1 {
		t.Errorf("3σ corner at quantile %g", p)
	}
}

// Property: for any positive (mean, std) the matched lognormal returns the
// same first two moments via its analytic formulas.
func TestDistributionMomentProperty(t *testing.T) {
	f := func(a, b float64) bool {
		mean := 1e-6 * (1 + math.Abs(math.Mod(a, 100)))
		std := mean * 0.01 * (1 + math.Abs(math.Mod(b, 50)))
		d, err := NewDistribution(mean, std)
		if err != nil {
			return false
		}
		// Verify via quantile integration: E[X] = ∫₀¹ Q(u) du (coarse
		// midpoint rule — the identity holds exactly; tolerance covers
		// discretization).
		n := 4000
		sum := 0.0
		for i := 0; i < n; i++ {
			u := (float64(i) + 0.5) / float64(n)
			sum += d.Quantile(u)
		}
		got := sum / float64(n)
		return math.Abs(got-mean)/mean < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownLinear(t *testing.T) {
	m := newTestModel(t, 1024, Analytic)
	bd, err := m.BreakdownLinear()
	if err != nil {
		t.Fatal(err)
	}
	// Components must be non-negative and sum to the total.
	if bd.Independent < 0 || bd.D2DFloor < 0 || bd.WIDCorr < 0 {
		t.Fatalf("negative component: %+v", bd)
	}
	sum := bd.Independent + bd.D2DFloor + bd.WIDCorr
	if math.Abs(sum-bd.Total)/bd.Total > 1e-9 {
		t.Errorf("components sum to %g, total %g", sum, bd.Total)
	}
	i, fl, w := bd.Fractions()
	if math.Abs(i+fl+w-1) > 1e-9 {
		t.Errorf("fractions sum to %g", i+fl+w)
	}
	if !strings.Contains(bd.String(), "σ²") {
		t.Errorf("String() = %q", bd.String())
	}
	// At n=1024 with strong correlation the correlated parts dominate.
	if i > 0.5 {
		t.Errorf("independent fraction %.2f implausibly large", i)
	}
	// WID-only process ⇒ no floor.
	mWID, err := NewModel(testLib(t), testProcess().AllWID(), squareSpec(t, 1024), Analytic)
	if err != nil {
		t.Fatal(err)
	}
	bdWID, err := mWID.BreakdownLinear()
	if err != nil {
		t.Fatal(err)
	}
	if bdWID.D2DFloor != 0 {
		t.Errorf("WID-only floor = %g, want 0", bdWID.D2DFloor)
	}
	// Zero-variance edge: fractions of an empty breakdown are zeros.
	var empty VarianceBreakdown
	if a, b, c := empty.Fractions(); a != 0 || b != 0 || c != 0 {
		t.Errorf("empty fractions: %g %g %g", a, b, c)
	}
}

// Property: the breakdown total equals EstimateLinear's variance for
// several sizes and modes.
func TestBreakdownConsistentWithEstimate(t *testing.T) {
	for _, mode := range []Mode{Analytic, MCSimplified, AnalyticSimplified} {
		for _, n := range []int{64, 400} {
			m := newTestModel(t, n, mode)
			res, err := m.EstimateLinear()
			if err != nil {
				t.Fatal(err)
			}
			bd, err := m.BreakdownLinear()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(bd.Total-res.Std*res.Std)/(res.Std*res.Std) > 1e-12 {
				t.Errorf("mode %v n=%d: breakdown total %g vs estimate %g",
					mode, n, bd.Total, res.Std*res.Std)
			}
		}
	}
}
