// Package core implements the paper's contribution: the Random Gate (RG)
// full-chip leakage model (§2.2) and the family of estimators built on it —
// the O(n²) true-leakage baseline (Eq. 15), the exact linear-time
// distance-histogram transformation (Eq. 17), the constant-time 2-D
// rectangular integral (Eq. 20), the constant-time 1-D polar integral
// (Eqs. 25–26), and the no-correlation naive baseline of the early
// estimators the paper improves upon.
package core

import (
	"context"
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/lkerr"
	"leakest/internal/quad"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// Mode selects how cell statistics and pairwise leakage correlation are
// obtained (§2.1, §3.1.2).
type Mode int

const (
	// Analytic uses the fitted (a, b, c) moments and the exact
	// f_{m,n}(ρ_L) leakage-correlation mapping.
	Analytic Mode = iota
	// MCSimplified uses the Monte-Carlo cell moments with the simplified
	// assumption ρ_leak = ρ_L (no triplets available in MC mode).
	MCSimplified
	// AnalyticSimplified pairs the fitted moments with the simplified
	// ρ_leak = ρ_L assumption — the §3.1.2 comparison that isolates the
	// error of the correlation assumption alone.
	AnalyticSimplified
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case MCSimplified:
		return "mc-simplified"
	case AnalyticSimplified:
		return "analytic-simplified"
	default:
		return "analytic"
	}
}

// usesMCMoments reports whether cell moments come from the MC
// characterization rather than the analytical fit.
func (m Mode) usesMCMoments() bool { return m == MCSimplified }

// usesSimplifiedCorr reports whether ρ_leak = ρ_L replaces the exact
// f_{m,n} mapping.
func (m Mode) usesSimplifiedCorr() bool { return m != Analytic }

// DesignSpec is the set of high-level design characteristics of Fig. 1:
// everything the Random-Gate model needs to know about a candidate design.
// For early-mode estimation these are expected values; for late-mode they
// are extracted from a netlist and placement.
type DesignSpec struct {
	// Hist is the cell-usage frequency distribution (Eq. 6's α_i).
	Hist *stats.Histogram
	// N is the (actual or expected) number of cells.
	N int
	// W and H are the layout dimensions in µm.
	W, H float64
	// SignalProb is the signal probability applied to all cell inputs
	// (§2.1.4); use the value returned by charlib.MaximizingSignalProb for
	// the paper's conservative setting.
	SignalProb float64
}

// Validate checks the spec for consistency. Violations are typed
// InvalidInput errors, so a malformed design fails loudly at the Estimate
// entry instead of surfacing as a downstream NaN.
func (s *DesignSpec) Validate() error {
	const op = "core.DesignSpec"
	if s.Hist == nil || s.Hist.Len() == 0 {
		return lkerr.New(lkerr.InvalidInput, op, "no cell-usage histogram")
	}
	if s.N <= 0 {
		return lkerr.New(lkerr.InvalidInput, op, "gate count %d must be positive", s.N)
	}
	if !(s.W > 0) || !(s.H > 0) || math.IsInf(s.W, 0) || math.IsInf(s.H, 0) {
		return lkerr.New(lkerr.InvalidInput, op, "dimensions %g×%g must be positive and finite", s.W, s.H)
	}
	if !(s.SignalProb >= 0 && s.SignalProb <= 1) {
		return lkerr.New(lkerr.InvalidInput, op, "signal probability %g outside [0, 1]", s.SignalProb)
	}
	return nil
}

// variant is one (cell, state) outcome of the Random Gate: the RG's
// discrete distribution ranges over cells via the usage histogram and over
// input states via the signal probability, so the flattened variant space
// carries weight α_cell·P(state).
type variant struct {
	weight    float64
	mu, sigma float64
	st        *charlib.StateChar
}

// Model is the constructed Random-Gate model for one design spec.
type Model struct {
	Lib  *charlib.Library
	Proc *spatial.Process
	Spec DesignSpec
	Mode Mode
	// Workers is the goroutine count for the parallelizable estimator
	// loops (the O(n²) pair sum and the linear estimator's distance
	// columns): 0 selects runtime.GOMAXPROCS(0), 1 forces the serial
	// path. Results are bitwise identical at any setting — see
	// internal/parallel for the determinism contract.
	Workers int

	vars      []variant
	mu        float64 // µ_XI, Eq. 7
	second    float64 // E[X_I²], Eq. 8
	variance  float64 // σ²_XI
	sumWSigma float64 // Σ w·σ, for the simplified correlation mode
	fSpline   *quad.Spline

	pairCache map[[2]string]*quad.Spline
	cellCache map[string][2]float64
}

// covGridPoints is the ρ-grid resolution for tabulating F(ρ_L); the mapping
// is smooth and gently curved, so a modest grid splines accurately.
const covGridPoints = 33

// NewModel builds the RG model: the variant distribution, its moments
// (Eqs. 7–8), and the aggregated covariance mapping F(ρ_L) of Eq. 10.
func NewModel(lib *charlib.Library, proc *spatial.Process, spec DesignSpec, mode Mode) (*Model, error) {
	return NewModelCtx(context.Background(), lib, proc, spec, mode)
}

// NewModelCtx is NewModel with cancellation: the F(ρ_L) tabulation — the
// only model-construction step whose cost grows with the variant count —
// checks ctx at every ρ grid point.
func NewModelCtx(ctx context.Context, lib *charlib.Library, proc *spatial.Process, spec DesignSpec, mode Mode) (*Model, error) {
	defer telemetry.StartSpan(ctx, "core.model")()
	if lib == nil {
		return nil, lkerr.New(lkerr.InvalidInput, "core.NewModel", "nil characterized library")
	}
	if proc == nil {
		proc = lib.Process
	}
	if err := proc.Validate(); err != nil {
		return nil, fmt.Errorf("core: process: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// The characterization depends on (µ_L, σ_L); the supplied process may
	// swap the correlation model but must match those.
	if math.Abs(proc.LNominal-lib.Process.LNominal) > 1e-12 ||
		math.Abs(proc.TotalSigma()-lib.Process.TotalSigma()) > 1e-12 {
		return nil, lkerr.New(lkerr.InvalidInput, "core.NewModel",
			"process (µ=%g, σ=%g) inconsistent with characterization (µ=%g, σ=%g)",
			proc.LNominal, proc.TotalSigma(), lib.Process.LNominal, lib.Process.TotalSigma())
	}

	m := &Model{
		Lib: lib, Proc: proc, Spec: spec, Mode: mode,
		pairCache: make(map[[2]string]*quad.Spline),
		cellCache: make(map[string][2]float64),
	}
	for _, name := range spec.Hist.Labels() {
		alpha := spec.Hist.Prob(name)
		if alpha == 0 {
			continue
		}
		cc, err := lib.Cell(name)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for i := range cc.States {
			st := &cc.States[i]
			w := alpha * cc.StateProb(st.State, spec.SignalProb)
			if w == 0 {
				continue
			}
			mu, sd := st.FitMean, st.FitStd
			if mode.usesMCMoments() {
				mu, sd = st.MCMean, st.MCStd
			}
			m.vars = append(m.vars, variant{weight: w, mu: mu, sigma: sd, st: st})
		}
	}
	if len(m.vars) == 0 {
		return nil, lkerr.New(lkerr.InvalidInput, "core.NewModel", "RG distribution is empty")
	}
	for _, v := range m.vars {
		m.mu += v.weight * v.mu
		m.second += v.weight * (v.sigma*v.sigma + v.mu*v.mu)
		m.sumWSigma += v.weight * v.sigma
	}
	m.variance = m.second - m.mu*m.mu
	if m.variance < 0 {
		m.variance = 0
	}
	if err := lkerr.CheckFinite("core.NewModel", "per-gate mean µ_XI", m.mu); err != nil {
		return nil, err
	}
	if err := lkerr.CheckFinite("core.NewModel", "per-gate variance σ²_XI", m.variance); err != nil {
		return nil, err
	}
	if !mode.usesSimplifiedCorr() {
		if err := m.buildFSpline(ctx); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// buildFSpline tabulates F(ρ_L) = Σ_v Σ_u w_v w_u Cov(X_v, X_u | ρ_L) over
// a ρ grid (Eq. 10 over the variant space).
func (m *Model) buildFSpline(ctx context.Context) error {
	mu, sigma := m.Proc.LNominal, m.Proc.TotalSigma()
	rhos := quad.Linspace(0, 1, covGridPoints)
	fs := make([]float64, len(rhos))
	for k, rho := range rhos {
		if err := lkerr.FromContext(ctx, "core.NewModel"); err != nil {
			return err
		}
		total := 0.0
		for i := range m.vars {
			vi := &m.vars[i]
			// Diagonal term.
			cov, err := charlib.PairCov(vi.st, vi.st, rho, mu, sigma)
			if err != nil {
				return fmt.Errorf("core: F(ρ=%g): %w", rho, err)
			}
			total += vi.weight * vi.weight * cov
			// Off-diagonal pairs, exploiting symmetry.
			for j := i + 1; j < len(m.vars); j++ {
				vj := &m.vars[j]
				cov, err := charlib.PairCov(vi.st, vj.st, rho, mu, sigma)
				if err != nil {
					return fmt.Errorf("core: F(ρ=%g): %w", rho, err)
				}
				total += 2 * vi.weight * vj.weight * cov
			}
		}
		fs[k] = total
	}
	sp, err := quad.NewSpline(rhos, fs)
	if err != nil {
		return fmt.Errorf("core: F spline: %w", err)
	}
	m.fSpline = sp
	return nil
}

// MeanPerGate returns µ_XI (Eq. 7) under the model's mode.
func (m *Model) MeanPerGate() float64 { return m.mu }

// RGVariance returns σ²_XI (Eq. 8).
func (m *Model) RGVariance() float64 { return m.variance }

// CovAtCorr returns F(ρ_L), the RG leakage covariance between two distinct
// sites whose channel-length correlation is ρ_L (Eq. 10). In MCSimplified
// mode the ρ_leak = ρ_L assumption gives F(ρ) = ρ·(Σ w σ)².
func (m *Model) CovAtCorr(rho float64) float64 {
	if rho <= 0 {
		// Uncorrelated lengths ⇒ independent leakages across sites.
		return 0
	}
	if rho > 1 {
		rho = 1
	}
	if m.Mode.usesSimplifiedCorr() {
		return rho * m.sumWSigma * m.sumWSigma
	}
	v := m.fSpline.Eval(rho)
	if v < 0 {
		v = 0
	}
	return v
}

// CovAtDist returns the RG covariance C_XI of Eq. 11 at distance d: the
// piecewise form with the site variance on the diagonal.
func (m *Model) CovAtDist(d float64) float64 {
	if d == 0 {
		return m.variance
	}
	return m.CovAtCorr(m.Proc.TotalCorr(d))
}

// CorrAtDist returns ρ_XI(d) = C_XI(d)/σ²_XI for d > 0.
func (m *Model) CorrAtDist(d float64) float64 {
	if m.variance == 0 {
		return 0
	}
	return m.CovAtDist(d) / m.variance
}

// CellStats returns the state-weighted effective (mean, sigma) of a cell
// type at the spec's signal probability, under the model's mode. Used by
// the O(n²) true-leakage computation for placed designs.
func (m *Model) CellStats(typ string) (mu, sigma float64, err error) {
	if s, ok := m.cellCache[typ]; ok {
		return s[0], s[1], nil
	}
	cc, err := m.Lib.Cell(typ)
	if err != nil {
		return 0, 0, err
	}
	mu, sigma = cc.EffectiveStats(m.Spec.SignalProb, m.Mode.usesMCMoments())
	m.cellCache[typ] = [2]float64{mu, sigma}
	return mu, sigma, nil
}

// PairCovAtCorr returns the state-weighted leakage covariance between one
// gate of type a and one of type b whose channel lengths have correlation
// rho. Results are tabulated per type pair on the ρ grid and splined, so
// repeated queries inside the O(n²) loop are cheap.
func (m *Model) PairCovAtCorr(a, b string, rho float64) (float64, error) {
	if rho <= 0 {
		return 0, nil
	}
	if rho > 1 {
		rho = 1
	}
	key := [2]string{a, b}
	if b < a {
		key = [2]string{b, a}
	}
	sp, ok := m.pairCache[key]
	if !ok {
		var err error
		sp, err = m.buildPairSpline(key[0], key[1])
		if err != nil {
			return 0, err
		}
		m.pairCache[key] = sp
	}
	v := sp.Eval(rho)
	if v < 0 {
		v = 0
	}
	return v, nil
}

func (m *Model) buildPairSpline(a, b string) (*quad.Spline, error) {
	ca, err := m.Lib.Cell(a)
	if err != nil {
		return nil, err
	}
	cb, err := m.Lib.Cell(b)
	if err != nil {
		return nil, err
	}
	mu, sigma := m.Proc.LNominal, m.Proc.TotalSigma()
	p := m.Spec.SignalProb
	rhos := quad.Linspace(0, 1, covGridPoints)
	fs := make([]float64, len(rhos))
	if m.Mode.usesSimplifiedCorr() {
		// ρ_leak = ρ_L: covariance is ρ·(Σ_s P(s)σ_as)·(Σ_t P(t)σ_bt).
		mc := m.Mode.usesMCMoments()
		std := func(st *charlib.StateChar) float64 {
			if mc {
				return st.MCStd
			}
			return st.FitStd
		}
		sa, sb := 0.0, 0.0
		for i := range ca.States {
			sa += ca.StateProb(ca.States[i].State, p) * std(&ca.States[i])
		}
		for i := range cb.States {
			sb += cb.StateProb(cb.States[i].State, p) * std(&cb.States[i])
		}
		for k, rho := range rhos {
			fs[k] = rho * sa * sb
		}
	} else {
		for k, rho := range rhos {
			total := 0.0
			for i := range ca.States {
				wa := ca.StateProb(ca.States[i].State, p)
				if wa == 0 {
					continue
				}
				for j := range cb.States {
					wb := cb.StateProb(cb.States[j].State, p)
					if wb == 0 {
						continue
					}
					cov, err := charlib.PairCov(&ca.States[i], &cb.States[j], rho, mu, sigma)
					if err != nil {
						return nil, fmt.Errorf("core: pair %s/%s at ρ=%g: %w", a, b, rho, err)
					}
					total += wa * wb * cov
				}
			}
			fs[k] = total
		}
	}
	return quad.NewSpline(rhos, fs)
}
