package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/parallel"
	"leakest/internal/placement"
	"leakest/internal/quad"
	"leakest/internal/telemetry"
)

// This file implements the tiled (hierarchical) estimators of DESIGN.md §16:
// the die is partitioned into a T×T arrangement of tiles, per-tile moments
// come from the existing estimators applied to each tile's sub-grid, and the
// tiles are combined through an inter-tile covariance. For the linear method
// the combination is exact — every ordered site pair belongs to exactly one
// (tile, tile) pair, and regrouping those pair populations by lag reproduces
// the monolithic Eq. 17 multiplicities integer-for-integer — so the tiled
// result is bitwise identical to the monolithic one at any tile count. The
// quadrature variant evaluates cross-tile covariance at tile-centroid
// granularity and is envelope-gated instead.

// TileStat is the per-tile moment record the tiled estimators attach to
// Result.TileStats: the tile's position in the tile arrangement, its gate
// count, and its standalone linear-method moments.
type TileStat struct {
	// Index is the tile's position in row-major tile order.
	Index int `json:"index"`
	// Row and Col locate the tile in the tile arrangement (not site units).
	Row int `json:"row"`
	Col int `json:"col"`
	// Gates is the number of gates attributed to the tile.
	Gates int `json:"gates"`
	// Mean and Std are the tile's standalone full-tile moments in amperes,
	// from the linear method on the tile's own sub-grid.
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// tileLagCounts regroups the ordered site-pair population of one dimension
// by lag, assembling it from the tile decomposition: for every ordered pair
// of tile intervals [s₁,e₁)×[s₂,e₂) and every lag i, the pairs (c, c+i)
// with c in the first interval and c+i in the second number
// max(0, min(e₁, e₂−i) − max(s₁, s₂−i)). Summed over all interval pairs
// (and doubled for i > 0 to cover the −i direction) this reproduces the
// monolithic lag population exactly: lc[0] = dim, lc[i] = 2·(dim − i).
// The counts are integers, so the decomposition is exact — this is what
// makes the tiled linear method bitwise identical to the monolithic one.
func tileLagCounts(edges []int, dim int) []int64 {
	t := len(edges) - 1
	lc := make([]int64, dim)
	for a := 0; a < t; a++ {
		for b := 0; b < t; b++ {
			s1, e1 := edges[a], edges[a+1]
			s2, e2 := edges[b], edges[b+1]
			lo := max(0, s2-(e1-1))
			hi := min(dim-1, e2-1-s1)
			for i := lo; i <= hi; i++ {
				ov := min(e1, e2-i) - max(s1, s2-i)
				if ov <= 0 {
					continue
				}
				if i == 0 {
					lc[0] += int64(ov)
				} else {
					lc[i] += 2 * int64(ov)
				}
			}
		}
	}
	return lc
}

// allocateTileGates distributes n gates over the tiles proportionally to
// their site counts with the largest-remainder rule (ties broken by tile
// index), so the allocation is deterministic and sums to n exactly.
func allocateTileGates(n int, tiles []placement.Tile) []int {
	total := int64(0)
	for _, t := range tiles {
		total += int64(t.Sites())
	}
	counts := make([]int, len(tiles))
	if total == 0 {
		return counts
	}
	rems := make([]int64, len(tiles))
	assigned := 0
	for i, t := range tiles {
		share := int64(n) * int64(t.Sites())
		counts[i] = int(share / total)
		rems[i] = share % total
		assigned += counts[i]
	}
	for assigned < n {
		best := -1
		for i, r := range rems {
			if r > 0 && (best < 0 || r > rems[best]) {
				best = i
			}
		}
		if best < 0 {
			best = 0
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	return counts
}

// TiledPartitionLen reports how many tiles EstimateTiledCtx produces for a
// tiles-per-side request on this model's RG array — callers supplying their
// own per-tile gate counts (e.g. the streaming estimator) use it to check
// their partition matches before handing the counts over.
func (m *Model) TiledPartitionLen(tiles int) int {
	rows, cols := m.modelGrid()
	return (len(placement.TileEdges(rows, tiles)) - 1) * (len(placement.TileEdges(cols, tiles)) - 1)
}

// tileGrid partitions the model's RG array into the tile arrangement for
// the requested tile count and validates the optional per-tile gate
// allocation, falling back to the proportional rule when none is given.
func (m *Model) tileGrid(tiles int, tileGates []int) (rows, cols int, parts []placement.Tile, counts []int, err error) {
	if tiles < 1 {
		return 0, 0, nil, nil, lkerr.New(lkerr.InvalidInput, "core.EstimateTiled",
			"tile count must be ≥ 1, got %d", tiles)
	}
	rows, cols = m.modelGrid()
	grid := placement.Grid{Rows: rows, Cols: cols,
		SiteW: m.Spec.W / float64(cols), SiteH: m.Spec.H / float64(rows)}
	parts = placement.Partition(grid, tiles)
	if tileGates != nil {
		if len(tileGates) != len(parts) {
			return 0, 0, nil, nil, lkerr.New(lkerr.InvalidInput, "core.EstimateTiled",
				"per-tile gate counts: got %d entries, tile partition has %d", len(tileGates), len(parts))
		}
		sum := 0
		for i, c := range tileGates {
			if c < 0 {
				return 0, 0, nil, nil, lkerr.New(lkerr.InvalidInput, "core.EstimateTiled",
					"per-tile gate count %d is negative (%d)", i, c)
			}
			sum += c
		}
		if sum != m.Spec.N {
			return 0, 0, nil, nil, lkerr.New(lkerr.InvalidInput, "core.EstimateTiled",
				"per-tile gate counts sum to %d, spec has %d gates", sum, m.Spec.N)
		}
		counts = tileGates
	} else {
		counts = allocateTileGates(m.Spec.N, parts)
	}
	return rows, cols, parts, counts, nil
}

// EstimateTiled computes the full-chip statistics with the tiled linear
// method: the die is partitioned into a tiles×tiles arrangement, per-tile
// moments come from the linear method on each tile's own sub-grid (reported
// in Result.TileStats), and the global moments combine the tiles through the
// exact inter-tile pair populations of tileLagCounts — bitwise identical to
// the monolithic EstimateLinear at every tile and worker count.
func (m *Model) EstimateTiled(tiles int, tileGates []int) (Result, error) {
	return m.EstimateTiledCtx(context.Background(), tiles, tileGates)
}

// EstimateTiledCtx is EstimateTiled with cancellation and tile telemetry:
// the lag loop checks ctx once per grid column, and the per-tile stats pass
// reports tile progress and observes tile_duration_seconds per tile.
func (m *Model) EstimateTiledCtx(ctx context.Context, tiles int, tileGates []int) (Result, error) {
	defer timeMethod(ctx, "linear-tiled", "estimate.linear-tiled")()
	k, cols, parts, counts, err := m.tileGrid(tiles, tileGates)
	if err != nil {
		return Result{}, err
	}
	telemetry.SpanAttrInt(ctx, "tiles", int64(len(parts)))
	rowEdges := placement.TileEdges(k, tiles)
	colEdges := placement.TileEdges(cols, tiles)
	or := tileLagCounts(rowEdges, k)
	oc := tileLagCounts(colEdges, cols)

	rep := telemetry.StartProgress(ctx, "estimate.linear-tiled", int64(cols))
	s := k * cols
	dw := m.Spec.W / float64(cols)
	dh := m.Spec.H / float64(k)

	// Off-diagonal mass, regrouped by lag exactly as the monolithic loop:
	// oc[i]·or[j] is an exact integer equal to the monolithic count·mult
	// (4·(cols−i)(k−j), halved on the axes), and the products stay far below
	// 2⁵³, so float64(oc[i]·or[j])·cov rounds identically to the monolithic
	// count·mult·cov. Columns are sharded into owned slots and merged in
	// index order, preserving the §9 bitwise-determinism contract.
	colOff := make([]float64, cols)
	tick := parallel.NewTicker(rep)
	err = parallel.ForEach(ctx, "core.EstimateTiled", m.Workers, cols, func(_, i int) error {
		sum := 0.0
		for j := 0; j <= k-1; j++ {
			if i == 0 && j == 0 {
				continue
			}
			d := math.Hypot(float64(i)*dw, float64(j)*dh)
			cov := m.CovAtCorr(m.Proc.TotalCorr(d))
			if cov == 0 {
				continue
			}
			sum += float64(oc[i]*or[j]) * cov
		}
		colOff[i] = sum
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		return Result{}, err
	}
	off := 0.0
	for _, v := range colOff {
		off += v
	}
	rep.Done(int64(cols))
	off = fault.Corrupt(fault.SiteLinearAccum, off)
	n := float64(m.Spec.N)
	note := ""
	if s != m.Spec.N {
		occ := n * (n - 1) / (float64(s) * float64(s-1))
		off *= occ
		note = fmt.Sprintf("occupancy-scaled: %d gates on %d×%d=%d sites", m.Spec.N, k, cols, s)
	}
	variance := n*m.variance + off

	stats, err := m.tileStats(ctx, parts, counts, dw, dh)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Mean:      n * m.mu,
		Std:       math.Sqrt(variance),
		Method:    "linear-tiled",
		GridRows:  k,
		GridCols:  cols,
		Note:      note,
		TileStats: stats,
	}.checkFinite("core.EstimateTiled")
}

// tileStats computes each tile's standalone linear-method moments. Interior
// tiles share their sub-grid dimensions, so the off-diagonal lag sum is
// cached per distinct (rows, cols) — at most four combinations under the
// largest-remainder partition — and only the occupancy scaling differs per
// tile. Tiles are sharded into owned slots merged in index order.
func (m *Model) tileStats(ctx context.Context, parts []placement.Tile, counts []int, dw, dh float64) ([]TileStat, error) {
	// Recover the tile-arrangement width from the partition itself: tiles in
	// the first tile row share Row0.
	across := 0
	for _, t := range parts {
		if t.Row0 == parts[0].Row0 {
			across++
		} else {
			break
		}
	}

	type dims struct{ rows, cols int }
	offCache := make(map[dims]float64)
	var cacheMu sync.Mutex
	offFor := func(d dims) float64 {
		cacheMu.Lock()
		v, ok := offCache[d]
		cacheMu.Unlock()
		if ok {
			return v
		}
		sum := 0.0
		for i := 0; i < d.cols; i++ {
			for j := 0; j < d.rows; j++ {
				if i == 0 && j == 0 {
					continue
				}
				dd := math.Hypot(float64(i)*dw, float64(j)*dh)
				cov := m.CovAtCorr(m.Proc.TotalCorr(dd))
				if cov == 0 {
					continue
				}
				mult := float64((d.cols - i) * (d.rows - j))
				count := 4.0
				if i == 0 || j == 0 {
					count = 2
				}
				sum += count * mult * cov
			}
		}
		cacheMu.Lock()
		offCache[d] = sum
		cacheMu.Unlock()
		return sum
	}

	rep := telemetry.StartProgress(ctx, "estimate.tiles", int64(len(parts)))
	tick := parallel.NewTicker(rep)
	out := make([]TileStat, len(parts))
	err := parallel.ForEach(ctx, "core.TileStats", m.Workers, len(parts), func(_, idx int) error {
		start := time.Now()
		t := parts[idx]
		nt := counts[idx]
		st := t.Sites()
		off := offFor(dims{rows: t.Rows(), cols: t.Cols()})
		if st != nt {
			occ := 0.0
			if nt > 1 && st > 1 {
				occ = float64(nt) * float64(nt-1) / (float64(st) * float64(st-1))
			}
			off *= occ
		}
		variance := float64(nt)*m.variance + off
		out[idx] = TileStat{
			Index: idx,
			Row:   idx / across,
			Col:   idx % across,
			Gates: nt,
			Mean:  float64(nt) * m.mu,
			Std:   math.Sqrt(variance),
		}
		if telemetry.MetricsOn() {
			telemetry.ObserveSeconds("tile_duration_seconds", time.Since(start).Seconds())
		}
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		return nil, err
	}
	rep.Done(int64(len(parts)))
	return out, nil
}

// EstimateTiledIntegral2D computes the statistics with the tiled variant of
// the §3.2.1 quadrature: each tile gets its own 2-D rectangular integral
// over its sub-die, and cross-tile covariance is evaluated at tile-centroid
// granularity. Unlike the tiled linear method this is an approximation —
// the centroid collapse ignores within-tile position spread across tile
// pairs — and is envelope-gated by the conformance harness rather than
// held to bitwise identity.
func (m *Model) EstimateTiledIntegral2D(tiles int, tileGates []int) (Result, error) {
	return m.EstimateTiledIntegral2DCtx(context.Background(), tiles, tileGates)
}

// EstimateTiledIntegral2DCtx is EstimateTiledIntegral2D with stage telemetry
// attached to ctx.
func (m *Model) EstimateTiledIntegral2DCtx(ctx context.Context, tiles int, tileGates []int) (Result, error) {
	defer timeMethod(ctx, "integral2d-tiled", "estimate.integral2d-tiled")()
	k, cols, parts, counts, err := m.tileGrid(tiles, tileGates)
	if err != nil {
		return Result{}, err
	}
	telemetry.SpanAttrInt(ctx, "tiles", int64(len(parts)))
	dw := m.Spec.W / float64(cols)
	dh := m.Spec.H / float64(k)
	grid := placement.Grid{Rows: k, Cols: cols, SiteW: dw, SiteH: dh}

	across := 0
	for _, t := range parts {
		if t.Row0 == parts[0].Row0 {
			across++
		} else {
			break
		}
	}

	// Per-tile self terms: the Eq. 20 integral on each tile's own sub-die.
	stats := make([]TileStat, len(parts))
	variance := 0.0
	for idx, t := range parts {
		start := time.Now()
		nt := float64(counts[idx])
		w := float64(t.Cols()) * dw
		h := float64(t.Rows()) * dh
		area := w * h
		var vt float64
		if counts[idx] > 0 && area > 0 {
			integrand := func(x, y float64) float64 {
				return (w - x) * (h - y) * m.CovAtCorr(m.Proc.TotalCorr(math.Hypot(x, y)))
			}
			nx, ny := m.tilePanels(w, h)
			integral := quad.Integrate2D(integrand, 0, w, 0, h, nx, ny)
			vt = 4 * nt * nt / (area * area) * integral
			if vt < 0 {
				vt = 0
			}
		}
		variance += vt
		stats[idx] = TileStat{
			Index: idx,
			Row:   idx / across,
			Col:   idx % across,
			Gates: counts[idx],
			Mean:  nt * m.mu,
			Std:   math.Sqrt(vt),
		}
		if telemetry.MetricsOn() {
			telemetry.ObserveSeconds("tile_duration_seconds", time.Since(start).Seconds())
		}
	}

	// Cross-tile terms at centroid granularity: n_t·n_u·C_XI(d(centroids)).
	for a := 0; a < len(parts); a++ {
		if counts[a] == 0 {
			continue
		}
		xa, ya := parts[a].Centroid(grid)
		for b := a + 1; b < len(parts); b++ {
			if counts[b] == 0 {
				continue
			}
			xb, yb := parts[b].Centroid(grid)
			d := math.Hypot(xa-xb, ya-yb)
			cov := m.CovAtCorr(m.Proc.TotalCorr(d))
			if cov == 0 {
				continue
			}
			variance += 2 * float64(counts[a]) * float64(counts[b]) * cov
		}
	}
	if variance < 0 {
		variance = 0
	}
	n := float64(m.Spec.N)
	return Result{
		Mean:      n * m.mu,
		Std:       math.Sqrt(variance),
		Method:    "integral2d-tiled",
		Note:      fmt.Sprintf("%d tiles, centroid cross terms", len(parts)),
		TileStats: stats,
	}.checkFinite("core.EstimateTiledIntegral2D")
}

// tilePanels sizes a tile's quadrature grid the same way panelCounts sizes
// the monolithic one, but for the tile's own extents.
func (m *Model) tilePanels(w, h float64) (nx, ny int) {
	lam := m.Proc.EffectiveRange(0.1)
	if lam <= 0 {
		lam = math.Max(w, h)
	}
	scale := func(extent float64) int {
		p := int(math.Ceil(4 * extent / lam))
		if p < 6 {
			p = 6
		}
		if p > 48 {
			p = 48
		}
		return p
	}
	return scale(w), scale(h)
}
