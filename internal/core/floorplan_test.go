package core

import (
	"math"
	"testing"

	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

// floorplanBlocks builds a two-block test floorplan: a logic block and an
// SRAM-flavoured block, side by side with a gap.
func floorplanBlocks(t *testing.T) []Block {
	t.Helper()
	logic := testHist(t)
	sramHeavy, err := stats.NewHistogram(map[string]float64{
		"SRAM6T": 8, "INV_X1": 1, "NAND2_X1": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := placement.DefaultSitePitch
	return []Block{
		{
			Name: "logic",
			Spec: DesignSpec{Hist: logic, N: 400, W: 40 * p, H: 10 * p, SignalProb: 0.5},
			X:    0, Y: 0,
		},
		{
			Name: "array",
			Spec: DesignSpec{Hist: sramHeavy, N: 300, W: 30 * p, H: 10 * p, SignalProb: 0.5},
			X:    44 * p, Y: 0,
		},
	}
}

func TestEstimateFloorplanValidation(t *testing.T) {
	lib := testLib(t)
	proc := testProcess()
	blocks := floorplanBlocks(t)
	if _, err := EstimateFloorplan(lib, proc, nil, Analytic); err == nil {
		t.Errorf("empty floorplan accepted")
	}
	neg := append([]Block(nil), blocks...)
	neg[0].X = -1
	if _, err := EstimateFloorplan(lib, proc, neg, Analytic); err == nil {
		t.Errorf("negative position accepted")
	}
	overlap := append([]Block(nil), blocks...)
	overlap[1].X = blocks[0].X + 1
	overlap[1].Y = blocks[0].Y
	if _, err := EstimateFloorplan(lib, proc, overlap, Analytic); err == nil {
		t.Errorf("overlapping blocks accepted")
	}
	bad := append([]Block(nil), blocks...)
	bad[0].Spec.N = 0
	if _, err := EstimateFloorplan(lib, proc, bad, Analytic); err == nil {
		t.Errorf("invalid block spec accepted")
	}
}

func TestEstimateFloorplanCombines(t *testing.T) {
	lib := testLib(t)
	proc := testProcess()
	blocks := floorplanBlocks(t)
	fp, err := EstimateFloorplan(lib, proc, blocks, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.PerBlock) != 2 {
		t.Fatalf("%d per-block results", len(fp.PerBlock))
	}
	// Mean adds exactly.
	if got := fp.PerBlock[0].Mean + fp.PerBlock[1].Mean; math.Abs(got-fp.Total.Mean)/got > 1e-12 {
		t.Errorf("means don't add: %g vs %g", got, fp.Total.Mean)
	}
	// Variance exceeds the independent-blocks sum (positive inter-block
	// correlation) but stays below the fully correlated bound.
	indep := fp.PerBlock[0].Std*fp.PerBlock[0].Std + fp.PerBlock[1].Std*fp.PerBlock[1].Std
	full := math.Pow(fp.PerBlock[0].Std+fp.PerBlock[1].Std, 2)
	total := fp.Total.Std * fp.Total.Std
	if total < indep {
		t.Errorf("total variance %g below independent sum %g", total, indep)
	}
	if total > full*(1+1e-9) {
		t.Errorf("total variance %g above fully-correlated bound %g", total, full)
	}
	if fp.InterBlockCov <= 0 {
		t.Errorf("inter-block covariance %g not positive", fp.InterBlockCov)
	}
}

func TestEstimateFloorplanDistanceEffect(t *testing.T) {
	// Moving the blocks apart must shrink the inter-block covariance.
	lib := testLib(t)
	proc := testProcess()
	near := floorplanBlocks(t)
	far := floorplanBlocks(t)
	far[1].X = near[1].X + 200 // beyond the 120 µm correlation range
	fpNear, err := EstimateFloorplan(lib, proc, near, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	fpFar, err := EstimateFloorplan(lib, proc, far, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if !(fpFar.InterBlockCov < fpNear.InterBlockCov) {
		t.Errorf("separation did not reduce inter-block covariance: %g vs %g",
			fpFar.InterBlockCov, fpNear.InterBlockCov)
	}
	// With a D2D floor the covariance never reaches zero.
	if fpFar.InterBlockCov <= 0 {
		t.Errorf("D2D floor lost: %g", fpFar.InterBlockCov)
	}
	// WID-only: beyond the range the covariance must vanish.
	widOnly := proc.AllWID()
	fpWID, err := EstimateFloorplan(lib, widOnly, far, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if fpWID.InterBlockCov != 0 {
		t.Errorf("beyond-range WID-only covariance = %g, want 0", fpWID.InterBlockCov)
	}
}

// The decisive validation: a synthetic placed design matching the
// floorplan must have true O(n²) statistics close to the floorplan
// estimate.
func TestEstimateFloorplanAgainstTruth(t *testing.T) {
	lib := testLib(t)
	proc := testProcess()
	blocks := floorplanBlocks(t)
	fp, err := EstimateFloorplan(lib, proc, blocks, AnalyticSimplified)
	if err != nil {
		t.Fatal(err)
	}

	// Build a placed design realizing the floorplan: one global site grid
	// covering the bounding box; each block's gates occupy its rectangle.
	pitch := placement.DefaultSitePitch
	globalCols := 74 // covers x ∈ [0, 148]
	globalRows := 10
	grid := placement.Grid{Rows: globalRows, Cols: globalCols, SiteW: pitch, SiteH: pitch}
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	arity := func(typ string) (int, error) { return byName[typ], nil }
	combined := &netlist.Netlist{Name: "fp", NumPI: 8}
	var sites []int
	rng := stats.NewRNG(3, "floorplan-truth")
	for _, b := range blocks {
		nl, err := netlist.RandomCircuit(rng, b.Name, b.Spec.N, 8, b.Spec.Hist, arity)
		if err != nil {
			t.Fatal(err)
		}
		// Offset fanins into the combined node space: remap everything to
		// primary inputs (fanin structure is irrelevant to leakage).
		for _, g := range nl.Gates {
			fanins := make([]int, len(g.Fanins))
			for i := range fanins {
				fanins[i] = rng.Intn(combined.NumPI)
			}
			combined.Gates = append(combined.Gates, netlist.Gate{Type: g.Type, Fanins: fanins})
		}
		// Sites: fill the block rectangle row-major.
		colLo := int(b.X / pitch)
		cols := int(b.Spec.W / pitch)
		rows := int(b.Spec.H / pitch)
		count := 0
		for r := 0; r < rows && count < b.Spec.N; r++ {
			for c := 0; c < cols && count < b.Spec.N; c++ {
				sites = append(sites, r*globalCols+colLo+c)
				count++
			}
		}
		if count != b.Spec.N {
			t.Fatalf("block %s: placed %d of %d gates", b.Name, count, b.Spec.N)
		}
	}
	pl := &placement.Placement{Grid: grid, Site: sites}

	// The model for TrueStats needs any valid spec; pair covariances come
	// from the library and mode.
	spec := DesignSpec{Hist: testHist(t), N: len(combined.Gates),
		W: grid.W(), H: grid.H(), SignalProb: 0.5}
	m, err := NewModel(lib, proc, spec, AnalyticSimplified)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TrueStats(m, combined, pl)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := math.Abs(stats.RelErr(fp.Total.Mean, truth.Mean))
	stdErr := math.Abs(stats.RelErr(fp.Total.Std, truth.Std))
	t.Logf("floorplan: µ=%.4g σ=%.4g | truth: µ=%.4g σ=%.4g (mean %.2f%%, σ %.2f%%)",
		fp.Total.Mean, fp.Total.Std, truth.Mean, truth.Std, meanErr, stdErr)
	// The realized circuit samples the histograms, so a few percent of
	// gate-mix noise is expected on top of tile quantization.
	if meanErr > 6 {
		t.Errorf("floorplan mean error %.2f%%", meanErr)
	}
	if stdErr > 8 {
		t.Errorf("floorplan σ error %.2f%%", stdErr)
	}
}
