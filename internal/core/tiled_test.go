package core

import (
	"context"
	"math"
	"testing"

	"leakest/internal/lkerr"
	"leakest/internal/placement"
)

// TestTileLagCountsClosedForm checks the decomposition identity the tiled
// linear method rests on: assembling the per-lag ordered-pair population
// from the tile intervals reproduces the closed forms lc[0] = dim and
// lc[i] = 2·(dim − i) exactly, for every tile count.
func TestTileLagCountsClosedForm(t *testing.T) {
	for _, dim := range []int{1, 2, 5, 17, 64, 100} {
		for _, tiles := range []int{1, 2, 3, 5, 8, 100} {
			edges := placement.TileEdges(dim, tiles)
			lc := tileLagCounts(edges, dim)
			if lc[0] != int64(dim) {
				t.Fatalf("dim=%d t=%d: lc[0] = %d, want %d", dim, tiles, lc[0], dim)
			}
			for i := 1; i < dim; i++ {
				if lc[i] != 2*int64(dim-i) {
					t.Fatalf("dim=%d t=%d: lc[%d] = %d, want %d", dim, tiles, i, lc[i], 2*(dim-i))
				}
			}
		}
	}
}

// TestTiledLinearBitwiseEqualsMonolithic is the §16 exactness contract: the
// tiled linear estimator must reproduce the monolithic result bit for bit
// at every tile count and worker count, on square, occupancy-scaled, and
// degenerate specs.
func TestTiledLinearBitwiseEqualsMonolithic(t *testing.T) {
	lib := testLib(t)
	proc := testProcess()
	specs := []DesignSpec{
		squareSpec(t, 576),
		{Hist: testHist(t), N: 100, W: 40, H: 12, SignalProb: 0.5}, // occupancy-scaled
		{Hist: testHist(t), N: 1, W: 2, H: 2, SignalProb: 0.5},     // one gate
		{Hist: testHist(t), N: 257, W: 300, H: 9, SignalProb: 0.3}, // skinny, prime N
	}
	for _, spec := range specs {
		mono, err := NewModel(lib, proc, spec, Analytic)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mono.EstimateLinear()
		if err != nil {
			t.Fatal(err)
		}
		for _, tiles := range []int{1, 2, 3, 5} {
			for _, workers := range []int{1, 4} {
				m, err := NewModel(lib, proc, spec, Analytic)
				if err != nil {
					t.Fatal(err)
				}
				m.Workers = workers
				got, err := m.EstimateTiled(tiles, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.Mean != want.Mean || got.Std != want.Std {
					t.Fatalf("spec N=%d tiles=%d workers=%d: tiled (%.17g, %.17g) != monolithic (%.17g, %.17g)",
						spec.N, tiles, workers, got.Mean, got.Std, want.Mean, want.Std)
				}
				if got.Method != "linear-tiled" {
					t.Fatalf("method = %q", got.Method)
				}
				if got.GridRows != want.GridRows || got.GridCols != want.GridCols {
					t.Fatalf("grid mismatch: %dx%d vs %dx%d", got.GridRows, got.GridCols, want.GridRows, want.GridCols)
				}
				if got.Note != want.Note {
					t.Fatalf("note mismatch: %q vs %q", got.Note, want.Note)
				}
			}
		}
	}
}

// TestTiledTileStats checks the per-tile records: gate counts sum to N,
// tiles appear in row-major order with consistent coordinates, per-tile
// means are n_t·µ, and per-tile stds are positive and bounded by the
// perfectly-correlated limit.
func TestTiledTileStats(t *testing.T) {
	m := newTestModel(t, 576, Analytic)
	res, err := m.EstimateTiled(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TileStats) != 9 {
		t.Fatalf("got %d tiles, want 9", len(res.TileStats))
	}
	mu := m.MeanPerGate()
	totalGates := 0
	var sumMean float64
	for i, ts := range res.TileStats {
		if ts.Index != i {
			t.Fatalf("tile %d has Index %d", i, ts.Index)
		}
		if ts.Row != i/3 || ts.Col != i%3 {
			t.Fatalf("tile %d at (%d,%d), want (%d,%d)", i, ts.Row, ts.Col, i/3, i%3)
		}
		if ts.Gates <= 0 {
			t.Fatalf("tile %d has %d gates", i, ts.Gates)
		}
		totalGates += ts.Gates
		if want := float64(ts.Gates) * mu; math.Abs(ts.Mean-want) > 1e-12*want {
			t.Fatalf("tile %d mean %g, want %g", i, ts.Mean, want)
		}
		sumMean += ts.Mean
		if ts.Std <= 0 {
			t.Fatalf("tile %d std %g", i, ts.Std)
		}
	}
	if totalGates != 576 {
		t.Fatalf("tile gates sum to %d, want 576", totalGates)
	}
	if math.Abs(sumMean-res.Mean) > 1e-9*res.Mean {
		t.Fatalf("tile means sum to %g, chip mean %g", sumMean, res.Mean)
	}
	// Per-tile variances cannot exceed the perfectly-correlated bound
	// (n_t·σ_XI)², and their independent sum cannot exceed the chip variance
	// (correlation is non-negative here).
	var indep float64
	for _, ts := range res.TileStats {
		indep += ts.Std * ts.Std
	}
	if indep > res.Std*res.Std*(1+1e-12) {
		t.Fatalf("independent tile sum %g exceeds chip variance %g", indep, res.Std*res.Std)
	}
}

// TestTiledExplicitGateCounts drives the per-tile allocation externally
// (the streaming path does this) and checks validation of bad slices.
func TestTiledExplicitGateCounts(t *testing.T) {
	m := newTestModel(t, 576, Analytic)
	mono, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	// A skewed but valid allocation: global moments must be unchanged
	// (they depend only on N), tile stats must reflect the counts.
	counts := make([]int, 4)
	counts[0] = 500
	counts[1] = 50
	counts[2] = 25
	counts[3] = 1
	res, err := m.EstimateTiled(2, counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != mono.Mean || res.Std != mono.Std {
		t.Fatalf("explicit counts changed global moments")
	}
	for i, ts := range res.TileStats {
		if ts.Gates != counts[i] {
			t.Fatalf("tile %d gates %d, want %d", i, ts.Gates, counts[i])
		}
	}
	// Wrong length, negative entries, and wrong sum must be refused.
	for _, bad := range [][]int{
		{576},
		{576, 0, 0},
		{-1, 577, 0, 0},
		{100, 100, 100, 100},
	} {
		if _, err := m.EstimateTiled(2, bad); !lkerr.IsCode(err, lkerr.InvalidInput) {
			t.Fatalf("counts %v: got %v, want InvalidInput", bad, err)
		}
	}
	if _, err := m.EstimateTiled(0, nil); !lkerr.IsCode(err, lkerr.InvalidInput) {
		t.Fatalf("tiles=0: want InvalidInput")
	}
}

// TestAllocateTileGates checks the largest-remainder allocation:
// deterministic, sums to n, proportional within one gate.
func TestAllocateTileGates(t *testing.T) {
	grid := placement.Grid{Rows: 24, Cols: 24, SiteW: 2, SiteH: 2}
	parts := placement.Partition(grid, 5)
	for _, n := range []int{0, 1, 576, 577, 123} {
		counts := allocateTileGates(n, parts)
		sum := 0
		for i, c := range counts {
			sum += c
			exact := float64(n) * float64(parts[i].Sites()) / float64(grid.Sites())
			if math.Abs(float64(c)-exact) >= 1 {
				t.Fatalf("n=%d tile %d: count %d, exact share %g", n, i, c, exact)
			}
		}
		if sum != n {
			t.Fatalf("n=%d: counts sum to %d", n, sum)
		}
	}
}

// TestTiledIntegralCloseToMonolithic envelope-gates the centroid-granular
// quadrature variant against the monolithic 2-D integral: on the chip-scale
// correlation process the centroid collapse must stay within a few percent.
func TestTiledIntegralCloseToMonolithic(t *testing.T) {
	m := newTestModel(t, 576, Analytic)
	mono, err := m.EstimateIntegral2D()
	if err != nil {
		t.Fatal(err)
	}
	for _, tiles := range []int{2, 3, 4} {
		res, err := m.EstimateTiledIntegral2D(tiles, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mean != mono.Mean {
			t.Fatalf("tiles=%d: mean %g != %g", tiles, res.Mean, mono.Mean)
		}
		relErr := math.Abs(res.Std-mono.Std) / mono.Std
		if relErr > 0.05 {
			t.Fatalf("tiles=%d: tiled integral std %g vs monolithic %g (%.2f%% off)",
				tiles, res.Std, mono.Std, 100*relErr)
		}
		if res.Method != "integral2d-tiled" {
			t.Fatalf("method %q", res.Method)
		}
	}
}

// TestTiledCancellation checks the lag loop honors context cancellation.
func TestTiledCancellation(t *testing.T) {
	m := newTestModel(t, 576, Analytic)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.EstimateTiledCtx(ctx, 2, nil); !lkerr.IsCode(err, lkerr.Canceled) {
		t.Fatalf("got %v, want Canceled", err)
	}
}
