package core

import (
	"math"
	"strings"
	"testing"

	"leakest/internal/charlib"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// testProcess returns a process whose correlation length suits the small
// dies of the test circuits (tens to hundreds of µm).
func testProcess() *spatial.Process {
	base := spatial.Default90nm()
	return &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 30, R: 120},
	}
}

func testLib(t *testing.T) *charlib.Library {
	t.Helper()
	lib, err := charlib.SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func testHist(t *testing.T) *stats.Histogram {
	t.Helper()
	h, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 3, "NAND2_X1": 3, "NOR2_X1": 2, "AOI21_X1": 1, "XOR2_X1": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func squareSpec(t *testing.T, n int) DesignSpec {
	t.Helper()
	side := int(math.Sqrt(float64(n)))
	if side*side != n {
		t.Fatalf("squareSpec needs a perfect square, got %d", n)
	}
	w := float64(side) * placement.DefaultSitePitch
	return DesignSpec{Hist: testHist(t), N: n, W: w, H: w, SignalProb: 0.5}
}

func newTestModel(t *testing.T, n int, mode Mode) *Model {
	t.Helper()
	m, err := NewModel(testLib(t), testProcess(), squareSpec(t, n), mode)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelValidation(t *testing.T) {
	lib := testLib(t)
	proc := testProcess()
	good := squareSpec(t, 64)
	if _, err := NewModel(nil, proc, good, Analytic); err == nil {
		t.Errorf("nil library accepted")
	}
	bad := good
	bad.N = 0
	if _, err := NewModel(lib, proc, bad, Analytic); err == nil {
		t.Errorf("zero gate count accepted")
	}
	bad = good
	bad.W = -1
	if _, err := NewModel(lib, proc, bad, Analytic); err == nil {
		t.Errorf("negative width accepted")
	}
	bad = good
	bad.SignalProb = 2
	if _, err := NewModel(lib, proc, bad, Analytic); err == nil {
		t.Errorf("signal probability 2 accepted")
	}
	bad = good
	bad.Hist, _ = stats.NewHistogram(map[string]float64{"UNKNOWN": 1})
	if _, err := NewModel(lib, proc, bad, Analytic); err == nil {
		t.Errorf("unknown cell accepted")
	}
	// Mismatched process sigma must be rejected.
	wrong := *proc
	wrong.SigmaWID *= 2
	if _, err := NewModel(lib, &wrong, good, Analytic); err == nil {
		t.Errorf("inconsistent process accepted")
	}
	// nil process falls back to the library's.
	m, err := NewModel(lib, nil, good, Analytic)
	if err != nil {
		t.Fatalf("nil process: %v", err)
	}
	if m.Proc != lib.Process {
		t.Errorf("nil process did not default to the library process")
	}
}

func TestRGMomentsMatchDirectComputation(t *testing.T) {
	// Eqs. 7–8: µ_XI = Σ α_i µ_i, E[X²] = Σ α_i(σ_i²+µ_i²), over the
	// state-weighted variants.
	m := newTestModel(t, 64, Analytic)
	mu, m2 := 0.0, 0.0
	for _, name := range m.Spec.Hist.Labels() {
		cc, err := m.Lib.Cell(name)
		if err != nil {
			t.Fatal(err)
		}
		a := m.Spec.Hist.Prob(name)
		cm, cs := cc.EffectiveStats(0.5, false)
		mu += a * cm
		m2 += a * (cs*cs + cm*cm)
	}
	if math.Abs(m.MeanPerGate()-mu) > 1e-15 {
		t.Errorf("µ_XI = %g, direct %g", m.MeanPerGate(), mu)
	}
	if math.Abs(m.RGVariance()-(m2-mu*mu)) > 1e-18 {
		t.Errorf("σ²_XI = %g, direct %g", m.RGVariance(), m2-mu*mu)
	}
}

func TestCovarianceStructure(t *testing.T) {
	for _, mode := range []Mode{Analytic, MCSimplified} {
		m := newTestModel(t, 64, mode)
		// Eq. 11: the diagonal is the RG variance, strictly above F(1)
		// because gate choice adds variance at a single site.
		if got := m.CovAtDist(0); got != m.RGVariance() {
			t.Errorf("%v: C(0) = %g, want σ²_XI = %g", mode, got, m.RGVariance())
		}
		f1 := m.CovAtCorr(1)
		if f1 >= m.RGVariance() {
			t.Errorf("%v: F(1) = %g should be below σ²_XI = %g", mode, f1, m.RGVariance())
		}
		if f0 := m.CovAtCorr(0); f0 != 0 {
			t.Errorf("%v: F(0) = %g, want 0", mode, f0)
		}
		// Monotone non-increasing in distance.
		prev := math.Inf(1)
		for d := 1.0; d < 300; d += 10 {
			c := m.CovAtDist(d)
			if c > prev+1e-18 {
				t.Errorf("%v: covariance increased at d=%g", mode, d)
			}
			if c < 0 {
				t.Errorf("%v: negative covariance at d=%g", mode, d)
			}
			prev = c
		}
		// Beyond the WID range only the D2D floor remains.
		floor := m.CovAtCorr(m.Proc.CorrFloor())
		if got := m.CovAtDist(1e6); math.Abs(got-floor) > 1e-9*floor {
			t.Errorf("%v: C(∞) = %g, want floor %g", mode, got, floor)
		}
		if m.CorrAtDist(1e6) <= 0 {
			t.Errorf("%v: correlation floor missing", mode)
		}
	}
}

// The central identity: the Eq. 17 distance-histogram regrouping is an
// EXACT transformation of the Eq. 15 double sum over a full k×m grid.
func TestLinearEqualsBruteForceOnFullGrid(t *testing.T) {
	m := newTestModel(t, 36, Analytic) // 6×6 grid, 36 = N so no occupancy scaling
	res, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	if res.Note != "" {
		t.Fatalf("expected exact grid, got note %q", res.Note)
	}
	k, cols := res.GridRows, res.GridCols
	if k*cols != 36 {
		t.Fatalf("grid %d×%d does not cover 36", k, cols)
	}
	dw := m.Spec.W / float64(cols)
	dh := m.Spec.H / float64(k)
	// Brute force Eq. 15 over all site pairs.
	variance := 0.0
	for a := 0; a < 36; a++ {
		ra, ca := a/cols, a%cols
		for b := 0; b < 36; b++ {
			rb, cb := b/cols, b%cols
			d := math.Hypot(float64(ca-cb)*dw, float64(ra-rb)*dh)
			variance += m.CovAtDist(d)
		}
	}
	want := math.Sqrt(variance)
	if math.Abs(res.Std-want)/want > 1e-12 {
		t.Errorf("linear σ = %.15g, brute force %.15g", res.Std, want)
	}
	if res.Mean != 36*m.MeanPerGate() {
		t.Errorf("mean = %g, want %g", res.Mean, 36*m.MeanPerGate())
	}
}

func TestLinearOccupancyScaling(t *testing.T) {
	// A prime gate count cannot factorize into a near-square grid; the
	// estimator must note the occupancy scaling and still produce sane
	// numbers close to the neighbouring square size.
	lib := testLib(t)
	proc := testProcess()
	spec := squareSpec(t, 144)
	spec.N = 149 // prime
	m, err := NewModel(lib, proc, spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Note, "occupancy") {
		t.Errorf("expected occupancy note, got %q", res.Note)
	}
	ref, _ := newTestModel(t, 144, Analytic).EstimateLinear()
	// 149 gates should leak slightly more than 144 in both moments.
	if !(res.Mean > ref.Mean && res.Std > ref.Std) {
		t.Errorf("149-gate estimates (%g, %g) not above 144-gate (%g, %g)",
			res.Mean, res.Std, ref.Mean, ref.Std)
	}
	if res.Std > ref.Std*1.1 {
		t.Errorf("149-gate σ %g implausibly far above 144-gate %g", res.Std, ref.Std)
	}
}

// Fig. 7's foundation: the 2-D integral converges to the linear-time value
// as n grows.
func TestIntegralConvergesToLinear(t *testing.T) {
	for _, mode := range []Mode{Analytic, MCSimplified} {
		var prevErr float64 = math.Inf(1)
		for _, n := range []int{64, 1024, 4096} {
			m := newTestModel(t, n, mode)
			lin, err := m.EstimateLinear()
			if err != nil {
				t.Fatal(err)
			}
			integ, err := m.EstimateIntegral2D()
			if err != nil {
				t.Fatal(err)
			}
			relErr := math.Abs(stats.RelErr(integ.Std, lin.Std))
			t.Logf("%v n=%d: linear σ=%.4g, integral σ=%.4g, err=%.3f%%", mode, n, lin.Std, integ.Std, relErr)
			if relErr > prevErr*1.5 {
				t.Errorf("%v: integral error grew with n: %g%% after %g%%", mode, relErr, prevErr)
			}
			prevErr = relErr
		}
		if prevErr > 0.5 {
			t.Errorf("%v: integral error at n=4096 is %.3f%%, want < 0.5%%", mode, prevErr)
		}
	}
}

func TestPolarMatchesIntegral2D(t *testing.T) {
	// With a finite-range correlation well inside the die, the polar
	// single integral must agree with the 2-D integral.
	m := newTestModel(t, 4096, Analytic) // die 128×128 µm, R = 120 µm
	p2, err := m.EstimateIntegral2D()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m.EstimatePolar()
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(stats.RelErr(p1.Std, p2.Std)); e > 0.5 {
		t.Errorf("polar σ=%.6g vs 2-D σ=%.6g (%.3f%% apart)", p1.Std, p2.Std, e)
	}
	if p1.Mean != p2.Mean {
		t.Errorf("means differ: %g vs %g", p1.Mean, p2.Mean)
	}
}

func TestPolarRejectsWideCorrelation(t *testing.T) {
	// Die smaller than the correlation range: polar must refuse.
	m := newTestModel(t, 64, Analytic) // die 16×16 µm < R = 120 µm
	if _, err := m.EstimatePolar(); err == nil {
		t.Errorf("polar accepted correlation range beyond the die")
	}
}

func TestNaiveUnderestimates(t *testing.T) {
	m := newTestModel(t, 4096, Analytic)
	naive, err := m.EstimateNaive()
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := m.EstimateLinear()
	if naive.Mean != lin.Mean {
		t.Errorf("naive mean %g != linear mean %g", naive.Mean, lin.Mean)
	}
	// With strong within-die correlation the independence assumption must
	// underestimate σ badly (the paper's core motivation).
	if naive.Std > lin.Std/2 {
		t.Errorf("naive σ = %g not far below correlated σ = %g", naive.Std, lin.Std)
	}
}

func TestTrueStatsExactOnDeterministicDesign(t *testing.T) {
	// A design of a single 0-input cell (SRAM) has a deterministic RG: the
	// O(n²) true statistics must match the linear-time model estimate
	// exactly on a full grid.
	lib := testLib(t)
	proc := testProcess()
	hist, _ := stats.NewHistogram(map[string]float64{"SRAM6T": 1})
	n := 49
	side := 7
	w := float64(side) * placement.DefaultSitePitch
	spec := DesignSpec{Hist: hist, N: n, W: w, H: w, SignalProb: 0.5}
	m, err := NewModel(lib, proc, spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	nl := &netlist.Netlist{Name: "sram-array", NumPI: 1}
	for i := 0; i < n; i++ {
		nl.Gates = append(nl.Gates, netlist.Gate{Type: "SRAM6T"})
	}
	grid, _ := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	pl, _ := placement.RowMajor(grid, n)

	truth, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.RelErr(lin.Mean, truth.Mean)) > 1e-9 {
		t.Errorf("mean: linear %g vs true %g", lin.Mean, truth.Mean)
	}
	if math.Abs(stats.RelErr(lin.Std, truth.Std)) > 0.01 {
		t.Errorf("std: linear %g vs true %g", lin.Std, truth.Std)
	}
}

func TestTrueStatsRandomCircuitCloseToModel(t *testing.T) {
	// A random circuit drawn from the histogram: true stats approach the
	// RG estimate (Fig. 6's convergence) — at n=400 within a few percent.
	lib := testLib(t)
	proc := testProcess()
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	arity := func(typ string) (int, error) { return byName[typ], nil }
	hist := testHist(t)
	rng := stats.NewRNG(21, "true-vs-model")
	n := 400
	nl, err := netlist.RandomCircuit(rng, "rc400", n, 16, hist, arity)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := placement.AutoGrid(n)
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	spec := DesignSpec{Hist: hist, N: n, W: grid.W(), H: grid.H(), SignalProb: 0.5}
	m, err := NewModel(lib, proc, spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(stats.RelErr(lin.Mean, truth.Mean)); e > 5 {
		t.Errorf("mean error %.2f%% too large", e)
	}
	if e := math.Abs(stats.RelErr(lin.Std, truth.Std)); e > 8 {
		t.Errorf("std error %.2f%% too large", e)
	}
}

func TestTrueStatsErrors(t *testing.T) {
	m := newTestModel(t, 64, Analytic)
	empty := &netlist.Netlist{Name: "e", NumPI: 1}
	grid, _ := placement.AutoGrid(4)
	pl, _ := placement.RowMajor(grid, 4)
	if _, err := TrueStats(m, empty, pl); err == nil {
		t.Errorf("empty netlist accepted")
	}
	one := &netlist.Netlist{Name: "o", NumPI: 1, Gates: []netlist.Gate{{Type: "INV_X1"}}}
	if _, err := TrueStats(m, one, pl); err == nil {
		t.Errorf("placement size mismatch accepted")
	}
	unknown := &netlist.Netlist{Name: "u", NumPI: 1, Gates: []netlist.Gate{
		{Type: "NOPE"}, {Type: "NOPE"}, {Type: "NOPE"}, {Type: "NOPE"}}}
	if _, err := TrueStats(m, unknown, pl); err == nil {
		t.Errorf("unknown type accepted")
	}
}

func TestExtractSpec(t *testing.T) {
	nl := &netlist.Netlist{Name: "x", NumPI: 2, Gates: []netlist.Gate{
		{Type: "INV_X1", Fanins: []int{0}},
		{Type: "NAND2_X1", Fanins: []int{0, 1}},
		{Type: "INV_X1", Fanins: []int{2}},
		{Type: "NOR2_X1", Fanins: []int{2, 3}},
	}}
	grid, _ := placement.AutoGrid(4)
	pl, _ := placement.RowMajor(grid, 4)
	spec, err := ExtractSpec(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 4 || spec.W != grid.W() || spec.H != grid.H() {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Hist.Prob("INV_X1") != 0.5 {
		t.Errorf("extracted P(INV) = %g", spec.Hist.Prob("INV_X1"))
	}
	empty := &netlist.Netlist{Name: "e", NumPI: 1}
	if _, err := ExtractSpec(empty, pl, 0.5); err == nil {
		t.Errorf("empty netlist accepted")
	}
}

func TestModeString(t *testing.T) {
	if Analytic.String() != "analytic" || MCSimplified.String() != "mc-simplified" {
		t.Errorf("mode strings: %s, %s", Analytic, MCSimplified)
	}
}

// §3.1.2: the simplified ρ_leak = ρ_L assumption changes the estimated σ
// by only a small amount relative to the exact mapping.
func TestSimplifiedAssumptionError(t *testing.T) {
	for _, wid := range []bool{true, false} {
		proc := testProcess()
		if wid {
			proc = proc.AllWID()
		}
		lib := testLib(t)
		spec := squareSpec(t, 1024)
		exact, err := NewModel(lib, proc, spec, Analytic)
		if err != nil {
			t.Fatal(err)
		}
		simp, err := NewModel(lib, proc, spec, MCSimplified)
		if err != nil {
			t.Fatal(err)
		}
		e, err := exact.EstimateLinear()
		if err != nil {
			t.Fatal(err)
		}
		s, err := simp.EstimateLinear()
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(stats.RelErr(s.Std, e.Std))
		t.Logf("WID-only=%v: exact σ=%.4g, simplified σ=%.4g, err=%.2f%%", wid, e.Std, s.Std, relErr)
		// Paper reports < 2.8%; allow slack for the MC-vs-fit moment
		// differences that also separate the two modes here.
		if relErr > 6 {
			t.Errorf("WID-only=%v: simplified-assumption error %.2f%% too large", wid, relErr)
		}
	}
}
