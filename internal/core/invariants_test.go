package core

import (
	"math"
	"testing"
	"testing/quick"

	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// Physical invariants of the estimators, checked as properties.

// procWithLambda builds the test process with a given correlation length.
func procWithLambda(lambda float64) *spatial.Process {
	base := spatial.Default90nm()
	return &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: lambda, R: 4 * lambda},
	}
}

func TestVarianceMonotoneInCorrelationLength(t *testing.T) {
	// More within-die correlation ⇒ more full-chip variance: σ(λ) must be
	// non-decreasing in λ for a fixed design.
	lib := testLib(t)
	spec := squareSpec(t, 1024)
	prev := 0.0
	for _, lambda := range []float64{5, 15, 40, 100, 300} {
		m, err := NewModel(lib, procWithLambda(lambda), spec, Analytic)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.EstimateLinear()
		if err != nil {
			t.Fatal(err)
		}
		if res.Std < prev {
			t.Fatalf("σ decreased when λ grew to %g: %g < %g", lambda, res.Std, prev)
		}
		prev = res.Std
	}
}

func TestMeanIndependentOfGeometry(t *testing.T) {
	// Eq. 13: the mean depends only on n and the histogram, never on the
	// die dimensions.
	lib := testLib(t)
	proc := testProcess()
	base := squareSpec(t, 1024)
	ref, err := NewModel(lib, proc, base, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	want := mustLinear(t, ref).Mean
	for _, dims := range [][2]float64{{32, 128}, {256, 16}, {90, 45.5}} {
		spec := base
		spec.W, spec.H = dims[0], dims[1]
		m, err := NewModel(lib, proc, spec, Analytic)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustLinear(t, m).Mean; got != want {
			t.Errorf("W×H = %v: mean %g, want %g", dims, got, want)
		}
	}
}

func mustLinear(t *testing.T, m *Model) Result {
	t.Helper()
	res, err := m.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVarianceBounds(t *testing.T) {
	// For every mode and size: n·σ²_XI ≤ σ² ≤ n·σ²_XI + n(n−1)·F(1).
	for _, mode := range []Mode{Analytic, MCSimplified, AnalyticSimplified} {
		for _, n := range []int{16, 144, 1024} {
			m := newTestModel(t, n, mode)
			res := mustLinear(t, m)
			v := res.Std * res.Std
			nf := float64(n)
			lo := nf * m.RGVariance()
			hi := nf*m.RGVariance() + nf*(nf-1)*m.CovAtCorr(1)
			if v < lo*(1-1e-9) {
				t.Errorf("%v n=%d: σ²=%g below independent bound %g", mode, n, v, lo)
			}
			if v > hi*(1+1e-9) {
				t.Errorf("%v n=%d: σ²=%g above full-correlation bound %g", mode, n, v, hi)
			}
		}
	}
}

func TestVarianceSuperlinearGrowth(t *testing.T) {
	// At fixed gate density, with correlation present, σ² grows faster
	// than n (the n → n² transition that breaks the naive estimator).
	lib := testLib(t)
	proc := testProcess()
	var prevVar, prevN float64
	for _, side := range []int{8, 16, 32, 64} {
		n := side * side
		w := float64(side) * placement.DefaultSitePitch
		spec := DesignSpec{Hist: testHist(t), N: n, W: w, H: w, SignalProb: 0.5}
		m, err := NewModel(lib, proc, spec, Analytic)
		if err != nil {
			t.Fatal(err)
		}
		res := mustLinear(t, m)
		v := res.Std * res.Std
		if prevVar > 0 {
			growth := v / prevVar
			nGrowth := float64(n) / prevN
			if growth < nGrowth {
				t.Errorf("side %d: σ² grew %.2fx for %.0fx gates — sublinear", side, growth, nGrowth)
			}
		}
		prevVar, prevN = v, float64(n)
	}
}

// sameStats reports whether two results carry identical statistics and
// bookkeeping (Result itself is not comparable since it grew Timings).
func sameStats(a, b Result) bool {
	return a.Mean == b.Mean && a.Std == b.Std && a.Method == b.Method &&
		a.GridRows == b.GridRows && a.GridCols == b.GridCols && a.Note == b.Note
}

func TestEstimateDeterministic(t *testing.T) {
	m := newTestModel(t, 256, Analytic)
	a := mustLinear(t, m)
	b := mustLinear(t, m)
	if !sameStats(a, b) {
		t.Errorf("repeated estimation differs: %+v vs %+v", a, b)
	}
	i1, err := m.EstimateIntegral2D()
	if err != nil {
		t.Fatal(err)
	}
	i2, err := m.EstimateIntegral2D()
	if err != nil {
		t.Fatal(err)
	}
	if !sameStats(i1, i2) {
		t.Errorf("integral estimation not deterministic")
	}
}

// Property: for random aspect ratios the linear and 2-D integral estimates
// agree within a few percent at moderate n (rectangular dies, not just
// squares).
func TestRectangularDieAgreement(t *testing.T) {
	lib := testLib(t)
	proc := testProcess()
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed, "rect")
		cols := 24 + rng.Intn(40)
		rows := 24 + rng.Intn(40)
		n := cols * rows
		spec := DesignSpec{
			Hist:       testHist(t),
			N:          n,
			W:          float64(cols) * placement.DefaultSitePitch,
			H:          float64(rows) * placement.DefaultSitePitch,
			SignalProb: 0.5,
		}
		m, err := NewModel(lib, proc, spec, Analytic)
		if err != nil {
			return false
		}
		lin, err := m.EstimateLinear()
		if err != nil {
			return false
		}
		integ, err := m.EstimateIntegral2D()
		if err != nil {
			return false
		}
		return math.Abs(stats.RelErr(integ.Std, lin.Std)) < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestSignalProbabilityMovesMoments(t *testing.T) {
	// Changing p changes the RG statistics (unless the histogram is all
	// zero-input cells): sanity that the state weighting is plumbed in.
	lib := testLib(t)
	proc := testProcess()
	spec := squareSpec(t, 256)
	m1, err := NewModel(lib, proc, spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	spec.SignalProb = 0.9
	m2, err := NewModel(lib, proc, spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if m1.MeanPerGate() == m2.MeanPerGate() {
		t.Errorf("signal probability had no effect on µ_XI")
	}
}
