package core

import (
	"math"
	"strings"
	"testing"

	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

// buildPlaced returns a random circuit and placement for fast-truth tests.
func buildPlaced(t *testing.T, n int, seed int64) (*Model, *netlist.Netlist, *placement.Placement) {
	t.Helper()
	lib := testLib(t)
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	arity := func(typ string) (int, error) { return byName[typ], nil }
	hist := testHist(t)
	rng := stats.NewRNG(seed, "fasttruth")
	nl, err := netlist.RandomCircuit(rng, "ft", n, 16, hist, arity)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := placement.AutoGrid(n)
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	spec := DesignSpec{Hist: hist, N: n, W: grid.W(), H: grid.H(), SignalProb: 0.5}
	m, err := NewModel(lib, testProcess(), spec, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	return m, nl, pl
}

func TestFastTruthMatchesExact(t *testing.T) {
	m, nl, pl := buildPlaced(t, 900, 4)
	exact, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range []float64{0.0, 8, 16} { // 0 = auto
		fast, err := FastTrueStats(m, nl, pl, tile)
		if err != nil {
			t.Fatalf("tile %g: %v", tile, err)
		}
		if fast.Mean != exact.Mean {
			t.Errorf("tile %g: mean %g != exact %g (mean is exact by construction)",
				tile, fast.Mean, exact.Mean)
		}
		relErr := math.Abs(stats.RelErr(fast.Std, exact.Std))
		t.Logf("tile %g: σ err %.4f%% (%s)", tile, relErr, fast.Note)
		if relErr > 1 {
			t.Errorf("tile %g: σ error %.3f%% exceeds 1%%", tile, relErr)
		}
		if !strings.Contains(fast.Note, "tiles") {
			t.Errorf("missing tile note: %q", fast.Note)
		}
	}
}

func TestFastTruthAccuracyImprovesWithSmallerTiles(t *testing.T) {
	m, nl, pl := buildPlaced(t, 900, 9)
	exact, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(tile float64) float64 {
		fast, err := FastTrueStats(m, nl, pl, tile)
		if err != nil {
			t.Fatalf("tile %g: %v", tile, err)
		}
		return math.Abs(stats.RelErr(fast.Std, exact.Std))
	}
	coarse := errAt(30)
	fine := errAt(6)
	t.Logf("tile 30 µm: %.4f%%, tile 6 µm: %.4f%%", coarse, fine)
	if fine > coarse+1e-9 {
		t.Errorf("finer tiles should not be less accurate: %.4f%% vs %.4f%%", fine, coarse)
	}
}

func TestFastTruthSingleTileIsExact(t *testing.T) {
	// A tile covering the whole die reduces to the exact O(n²) sum.
	m, nl, pl := buildPlaced(t, 196, 2)
	exact, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FastTrueStats(m, nl, pl, pl.Grid.MaxDist()+1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Std-exact.Std)/exact.Std > 1e-12 {
		t.Errorf("single-tile σ %g != exact %g", fast.Std, exact.Std)
	}
}

func TestFastTruthErrors(t *testing.T) {
	m, nl, pl := buildPlaced(t, 64, 1)
	empty := &netlist.Netlist{Name: "e"}
	if _, err := FastTrueStats(m, empty, pl, 0); err == nil {
		t.Errorf("empty netlist accepted")
	}
	grid, _ := placement.AutoGrid(4)
	small, _ := placement.RowMajor(grid, 4)
	if _, err := FastTrueStats(m, nl, small, 0); err == nil {
		t.Errorf("mismatched placement accepted")
	}
	bad := &netlist.Netlist{Name: "b", NumPI: 1}
	for i := 0; i < 64; i++ {
		bad.Gates = append(bad.Gates, netlist.Gate{Type: "NOPE"})
	}
	if _, err := FastTrueStats(m, bad, pl, 0); err == nil {
		t.Errorf("unknown type accepted")
	}
}

func TestPropagatedTrueStatsUniformConsistency(t *testing.T) {
	// With every pin at the same probability p, PropagatedTrueStats must
	// reproduce TrueStats in the simplified-correlation mode exactly.
	lib := testLib(t)
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	arity := func(typ string) (int, error) { return byName[typ], nil }
	hist := testHist(t)
	rng := stats.NewRNG(5, "prop-consistency")
	n := 225
	nl, err := netlist.RandomCircuit(rng, "pc", n, 16, hist, arity)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := placement.AutoGrid(n)
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	spec := DesignSpec{Hist: hist, N: n, W: grid.W(), H: grid.H(), SignalProb: 0.5}
	m, err := NewModel(lib, testProcess(), spec, AnalyticSimplified)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TrueStats(m, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	gatePins := make([][]float64, n)
	for g, gate := range nl.Gates {
		pins := make([]float64, byName[gate.Type])
		for i := range pins {
			pins[i] = 0.5
		}
		gatePins[g] = pins
	}
	prop, err := PropagatedTrueStats(m, nl, pl, gatePins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prop.Mean-exact.Mean)/exact.Mean > 1e-12 {
		t.Errorf("means differ: %g vs %g", prop.Mean, exact.Mean)
	}
	// The pair-spline path introduces only spline interpolation error.
	if e := math.Abs(stats.RelErr(prop.Std, exact.Std)); e > 0.05 {
		t.Errorf("σ differ: %g vs %g (%.4f%%)", prop.Std, exact.Std, e)
	}
}

func TestPropagatedTrueStatsErrors(t *testing.T) {
	m := newTestModel(t, 64, AnalyticSimplified)
	empty := &netlist.Netlist{Name: "e"}
	grid, _ := placement.AutoGrid(4)
	pl, _ := placement.RowMajor(grid, 4)
	if _, err := PropagatedTrueStats(m, empty, pl, nil); err == nil {
		t.Errorf("empty netlist accepted")
	}
	nl := &netlist.Netlist{Name: "x", NumPI: 1, Gates: []netlist.Gate{
		{Type: "INV_X1"}, {Type: "INV_X1"}, {Type: "INV_X1"}, {Type: "INV_X1"}}}
	if _, err := PropagatedTrueStats(m, nl, pl, nil); err == nil {
		t.Errorf("missing pin probabilities accepted")
	}
	bad := &netlist.Netlist{Name: "b", NumPI: 1, Gates: []netlist.Gate{
		{Type: "NOPE"}, {Type: "NOPE"}, {Type: "NOPE"}, {Type: "NOPE"}}}
	pins := [][]float64{{0.5}, {0.5}, {0.5}, {0.5}}
	if _, err := PropagatedTrueStats(m, bad, pl, pins); err == nil {
		t.Errorf("unknown type accepted")
	}
}
