package core

import (
	"fmt"
	"math"

	"sort"

	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/quad"
)

// FastTrueStats approximates the O(n²) true-leakage computation by spatial
// tiling — the style of refinement the paper alludes to ("some refinements
// are possible to reduce this cost, but with some loss of accuracy [3]").
//
// The die is partitioned into square tiles of edge `tile` µm. Pairs within
// the same tile are summed exactly; pairs in different tiles are
// aggregated per cell type and evaluated once per (tile pair, type pair)
// at the tile-centre distance. With T tiles and p types the cost is
// O(Σ n_t² + T²·p²) instead of O(n²); choosing the tile a fraction of the
// correlation length keeps the σ error well under a percent (validated in
// the tests and the accuracy/speed trade-off benchmark).
//
// A non-positive tile selects the default: a quarter of the process's
// effective correlation range (clamped to at least two site pitches).
func FastTrueStats(m *Model, nl *netlist.Netlist, pl *placement.Placement, tile float64) (Result, error) {
	n := len(nl.Gates)
	if n == 0 {
		return Result{}, fmt.Errorf("core: empty netlist")
	}
	if len(pl.Site) != n {
		return Result{}, fmt.Errorf("core: placement covers %d gates, netlist has %d", len(pl.Site), n)
	}
	if tile <= 0 {
		tile = m.Proc.EffectiveRange(0.5) / 4
		if min := 2 * math.Max(pl.Grid.SiteW, pl.Grid.SiteH); tile < min {
			tile = min
		}
	}

	// Type indexing and pairwise covariance splines (shared with the exact
	// path through the model cache).
	types := nl.SortedTypes()
	tIdx := make(map[string]int, len(types))
	for i, t := range types {
		tIdx[t] = i
	}
	pairSpl := make([][]*quad.Spline, len(types))
	for i := range pairSpl {
		pairSpl[i] = make([]*quad.Spline, len(types))
	}
	for i, a := range types {
		for j := i; j < len(types); j++ {
			if _, err := m.PairCovAtCorr(a, types[j], 0.5); err != nil {
				return Result{}, err
			}
			key := [2]string{a, types[j]}
			sp := m.pairCache[key]
			pairSpl[i][j] = sp
			pairSpl[j][i] = sp
		}
	}

	// Assign gates to tiles.
	tilesX := int(math.Ceil(pl.Grid.W() / tile))
	tilesY := int(math.Ceil(pl.Grid.H() / tile))
	if tilesX < 1 {
		tilesX = 1
	}
	if tilesY < 1 {
		tilesY = 1
	}
	type bucket struct {
		gates      []int
		cx, cy     float64 // centroid of members
		typeCounts []int
	}
	buckets := make(map[int]*bucket)
	mean := 0.0
	variance := 0.0
	gt := make([]int, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for g, gate := range nl.Gates {
		mu, sigma, err := m.CellStats(gate.Type)
		if err != nil {
			return Result{}, err
		}
		mean += mu
		variance += sigma * sigma
		gt[g] = tIdx[gate.Type]
		x, y := pl.Pos(g)
		xs[g], ys[g] = x, y
		bx := int(x / tile)
		by := int(y / tile)
		key := by*tilesX + bx
		b := buckets[key]
		if b == nil {
			b = &bucket{typeCounts: make([]int, len(types))}
			buckets[key] = b
		}
		b.gates = append(b.gates, g)
		b.cx += x
		b.cy += y
		b.typeCounts[gt[g]]++
	}
	keys := make([]int, 0, len(buckets))
	for k, b := range buckets {
		b.cx /= float64(len(b.gates))
		b.cy /= float64(len(b.gates))
		keys = append(keys, k)
	}
	// Deterministic order (map iteration is random; the sum is
	// permutation-invariant up to round-off, but reproducibility matters).
	sort.Ints(keys)

	// Exact intra-tile pairs.
	clampRho := func(rho float64) float64 {
		if rho > 1 {
			return 1
		}
		return rho
	}
	for _, k := range keys {
		b := buckets[k]
		for i := 0; i < len(b.gates); i++ {
			a := b.gates[i]
			row := pairSpl[gt[a]]
			for j := i + 1; j < len(b.gates); j++ {
				bb := b.gates[j]
				d := math.Hypot(xs[a]-xs[bb], ys[a]-ys[bb])
				rho := m.Proc.TotalCorr(d)
				if rho <= 0 {
					continue
				}
				if cov := row[gt[bb]].Eval(clampRho(rho)); cov > 0 {
					variance += 2 * cov
				}
			}
		}
	}

	// Aggregated inter-tile pairs at centroid distance.
	for i := 0; i < len(keys); i++ {
		bi := buckets[keys[i]]
		for j := i + 1; j < len(keys); j++ {
			bj := buckets[keys[j]]
			d := math.Hypot(bi.cx-bj.cx, bi.cy-bj.cy)
			rho := m.Proc.TotalCorr(d)
			if rho <= 0 {
				continue
			}
			rho = clampRho(rho)
			for ta, ca := range bi.typeCounts {
				if ca == 0 {
					continue
				}
				row := pairSpl[ta]
				for tb, cb := range bj.typeCounts {
					if cb == 0 {
						continue
					}
					if cov := row[tb].Eval(rho); cov > 0 {
						variance += 2 * float64(ca) * float64(cb) * cov
					}
				}
			}
		}
	}
	return Result{
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Method: "true-tiled",
		Note:   fmt.Sprintf("tile %.3g µm, %d tiles", tile, len(buckets)),
	}, nil
}
