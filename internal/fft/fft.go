// Package fft is a dependency-free iterative radix-2 fast Fourier
// transform used by the circulant-embedding Monte-Carlo sampler
// (internal/randvar): 1-D complex and real transforms plus a cache-blocked
// 2-D transform over row-major buffers.
//
// Transforms are unnormalized in both directions — Forward computes
// X[k] = Σ_j x[j]·e^(−2πi·jk/N) and the inverse uses the conjugated kernel
// without the 1/N factor — so that round-tripping scales by N and callers
// fold the normalization into whatever per-point factor they already apply
// (the sampler bakes 1/(M·N) into its eigenvalue scale).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two ≥ n (and 1 for n ≤ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Transform computes the in-place DFT of x (forward for inverse=false,
// conjugated kernel for inverse=true; both unnormalized). len(x) must be a
// power of two.
func Transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley–Tukey butterflies. The twiddle advances by a unit
	// rotation per butterfly; the accumulated rotation error over the
	// longest span is O(length·ε), far below the sampler's tolerance.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		half := length >> 1
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := start; k < start+half; k++ {
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// TransformReal computes the forward DFT of the real sequence src into the
// full length-N complex spectrum dst (conjugate-symmetric: dst[N−k] =
// conj(dst[k])) via one half-size complex transform. len(dst) must equal
// len(src), a power of two.
func TransformReal(dst []complex128, src []float64) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("fft: real transform dst length %d != src length %d", len(dst), n)
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		dst[0] = complex(src[0], 0)
		return nil
	}
	// Pack even/odd samples into a half-size complex sequence, transform,
	// then split the spectrum into even/odd parts E and O with
	// X[k] = E[k] + e^(−2πik/N)·O[k].
	h := n / 2
	z := make([]complex128, h)
	for k := 0; k < h; k++ {
		z[k] = complex(src[2*k], src[2*k+1])
	}
	if err := Transform(z, false); err != nil {
		return err
	}
	dst[0] = complex(real(z[0])+imag(z[0]), 0)
	dst[h] = complex(real(z[0])-imag(z[0]), 0)
	for k := 1; k < h; k++ {
		zk, zm := z[k], cmplx.Conj(z[h-k])
		e := (zk + zm) / 2
		o := (zk - zm) / complex(0, 2)
		dst[k] = e + cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))*o
	}
	for k := 1; k < h; k++ {
		dst[n-k] = cmplx.Conj(dst[k])
	}
	return nil
}

// colBlock is the number of columns gathered per pass of the column
// transforms: 16 complex128s span 256 contiguous bytes per row, so the
// strided gather still reads whole cache lines.
const colBlock = 16

// Scratch2DLen returns the scratch length Transform2DInto requires for a
// rows×cols transform.
func Scratch2DLen(rows, cols int) int {
	b := colBlock
	if cols < b {
		b = cols
	}
	return rows * b
}

// Transform2D computes the in-place 2-D DFT of the row-major rows×cols
// buffer x, allocating its own column scratch. Both dimensions must be
// powers of two.
func Transform2D(x []complex128, rows, cols int, inverse bool) error {
	return Transform2DInto(x, rows, cols, inverse, make([]complex128, Scratch2DLen(rows, cols)))
}

// Transform2DInto is Transform2D with caller-supplied scratch of at least
// Scratch2DLen(rows, cols) elements, so per-trial callers (the MC sampler)
// stay allocation-free.
func Transform2DInto(x []complex128, rows, cols int, inverse bool, scratch []complex128) error {
	return Transform2DBatchInto(x, 1, rows, cols, inverse, scratch)
}

// Transform2DBatchInto computes the in-place 2-D DFT of batch row-major
// rows×cols buffers stored contiguously in x (member b occupies
// x[b·rows·cols : (b+1)·rows·cols]). The per-member butterfly sequence is
// exactly Transform2DInto's, so each member's result is bitwise identical to
// a standalone transform at any batch size — the property the qmc sampler's
// batch-invariance contract rests on. Batching buys locality, not different
// math: within each column block the gather/transform/scatter runs across
// all members while the block's twiddle walk is hot. scratch needs
// Scratch2DLen(rows, cols) elements regardless of batch.
func Transform2DBatchInto(x []complex128, batch, rows, cols int, inverse bool, scratch []complex128) error {
	if batch < 1 {
		return fmt.Errorf("fft: batch %d must be positive", batch)
	}
	stride := rows * cols
	if len(x) != batch*stride {
		return fmt.Errorf("fft: buffer length %d != %d×%d×%d", len(x), batch, rows, cols)
	}
	if !IsPow2(rows) || !IsPow2(cols) {
		return fmt.Errorf("fft: dimensions %d×%d are not powers of two", rows, cols)
	}
	if need := Scratch2DLen(rows, cols); len(scratch) < need {
		return fmt.Errorf("fft: scratch length %d < required %d", len(scratch), need)
	}
	for b := 0; b < batch; b++ {
		t := x[b*stride : (b+1)*stride]
		for r := 0; r < rows; r++ {
			if err := Transform(t[r*cols:(r+1)*cols], inverse); err != nil {
				return err
			}
		}
	}
	if rows == 1 {
		return nil
	}
	// Columns in blocks: gather colBlock adjacent columns into contiguous
	// per-column vectors, transform each, scatter back — for every batch
	// member while the block offset (and its twiddle footprint) stays hot.
	for c0 := 0; c0 < cols; c0 += colBlock {
		bc := colBlock
		if c0+bc > cols {
			bc = cols - c0
		}
		for b := 0; b < batch; b++ {
			t := x[b*stride : (b+1)*stride]
			for r := 0; r < rows; r++ {
				row := t[r*cols+c0 : r*cols+c0+bc]
				for j, v := range row {
					scratch[j*rows+r] = v
				}
			}
			for j := 0; j < bc; j++ {
				if err := Transform(scratch[j*rows:(j+1)*rows], inverse); err != nil {
					return err
				}
			}
			for r := 0; r < rows; r++ {
				row := t[r*cols+c0 : r*cols+c0+bc]
				for j := range row {
					row[j] = scratch[j*rows+r]
				}
			}
		}
	}
	return nil
}
