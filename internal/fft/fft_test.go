package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"leakest/internal/stats"
)

// naiveDFT is the O(n²) reference both transforms are checked against.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		acc := complex(0, 0)
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j*k) / float64(n)
			acc += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = acc
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	rng := stats.NewRNG(seed, "fft-test")
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDev(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		for _, inverse := range []bool{false, true} {
			x := randComplex(n, int64(n))
			want := naiveDFT(x, inverse)
			if err := Transform(x, inverse); err != nil {
				t.Fatal(err)
			}
			if d := maxDev(x, want); d > 1e-10*float64(n) {
				t.Errorf("n=%d inverse=%v: max deviation %g", n, inverse, d)
			}
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	n := 128
	x := randComplex(n, 7)
	orig := append([]complex128(nil), x...)
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	if err := Transform(x, true); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := cmplx.Abs(x[i]/complex(float64(n), 0) - orig[i]); d > 1e-12 {
			t.Fatalf("round trip deviates by %g at %d", d, i)
		}
	}
}

func TestTransformRejectsNonPow2(t *testing.T) {
	if err := Transform(make([]complex128, 3), false); err == nil {
		t.Error("length 3 accepted")
	}
	if err := Transform(nil, false); err == nil {
		t.Error("empty input accepted")
	}
	if err := TransformReal(make([]complex128, 6), make([]float64, 6)); err == nil {
		t.Error("real length 6 accepted")
	}
	if err := TransformReal(make([]complex128, 4), make([]float64, 8)); err == nil {
		t.Error("mismatched real buffers accepted")
	}
}

func TestTransformRealMatchesComplex(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		rng := stats.NewRNG(int64(n), "fft-real")
		src := make([]float64, n)
		cx := make([]complex128, n)
		for i := range src {
			src[i] = rng.NormFloat64()
			cx[i] = complex(src[i], 0)
		}
		dst := make([]complex128, n)
		if err := TransformReal(dst, src); err != nil {
			t.Fatal(err)
		}
		if err := Transform(cx, false); err != nil {
			t.Fatal(err)
		}
		if d := maxDev(dst, cx); d > 1e-11*float64(n) {
			t.Errorf("n=%d: real transform deviates from complex by %g", n, d)
		}
	}
}

func TestTransform2DMatchesNaive(t *testing.T) {
	rows, cols := 4, 8
	x := randComplex(rows*cols, 3)
	// Naive separable reference: DFT rows, then columns.
	want := make([]complex128, rows*cols)
	copy(want, x)
	for r := 0; r < rows; r++ {
		copy(want[r*cols:(r+1)*cols], naiveDFT(want[r*cols:(r+1)*cols], false))
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := range col {
			col[r] = want[r*cols+c]
		}
		for r, v := range naiveDFT(col, false) {
			want[r*cols+c] = v
		}
	}
	if err := Transform2D(x, rows, cols, false); err != nil {
		t.Fatal(err)
	}
	if d := maxDev(x, want); d > 1e-10 {
		t.Errorf("2-D transform deviates from naive by %g", d)
	}
}

func TestTransform2DIntoMatchesTransform2D(t *testing.T) {
	rows, cols := 8, 32 // cols > colBlock exercises the block loop
	a := randComplex(rows*cols, 11)
	b := append([]complex128(nil), a...)
	if err := Transform2D(a, rows, cols, true); err != nil {
		t.Fatal(err)
	}
	scratch := make([]complex128, Scratch2DLen(rows, cols))
	if err := Transform2DInto(b, rows, cols, true, scratch); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scratch variant differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if err := Transform2DInto(b, rows, cols, true, scratch[:1]); err == nil {
		t.Error("undersized scratch accepted")
	}
	if err := Transform2D(b, 3, cols, false); err == nil {
		t.Error("non-pow2 rows accepted")
	}
	if err := Transform2D(b[:5], rows, cols, false); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestTransform2DBatchBitwise pins the batch-invariance contract: every
// member of a batched transform must be bitwise identical to a standalone
// Transform2DInto of the same data, at every batch size and for odd and even
// batches alike.
func TestTransform2DBatchBitwise(t *testing.T) {
	for _, dims := range [][2]int{{1, 8}, {4, 4}, {8, 2}, {16, 32}, {32, 16}} {
		rows, cols := dims[0], dims[1]
		stride := rows * cols
		for _, batch := range []int{1, 2, 3, 5, 8} {
			for _, inverse := range []bool{false, true} {
				src := randComplex(batch*stride, int64(rows*1000+cols*10+batch))
				got := append([]complex128(nil), src...)
				scratch := make([]complex128, Scratch2DLen(rows, cols))
				if err := Transform2DBatchInto(got, batch, rows, cols, inverse, scratch); err != nil {
					t.Fatal(err)
				}
				for b := 0; b < batch; b++ {
					want := append([]complex128(nil), src[b*stride:(b+1)*stride]...)
					if err := Transform2DInto(want, rows, cols, inverse, make([]complex128, Scratch2DLen(rows, cols))); err != nil {
						t.Fatal(err)
					}
					for k := range want {
						if got[b*stride+k] != want[k] {
							t.Fatalf("%dx%d batch=%d inverse=%v member %d: point %d differs bitwise (%v vs %v)",
								rows, cols, batch, inverse, b, k, got[b*stride+k], want[k])
						}
					}
				}
			}
		}
	}
}

// TestTransform2DBatchRejects pins the batch validation errors.
func TestTransform2DBatchRejects(t *testing.T) {
	scratch := make([]complex128, Scratch2DLen(4, 4))
	x := make([]complex128, 32)
	if err := Transform2DBatchInto(x, 0, 4, 4, false, scratch); err == nil {
		t.Error("batch 0 must be rejected")
	}
	if err := Transform2DBatchInto(x, 3, 4, 4, false, scratch); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if err := Transform2DBatchInto(x[:18], 2, 3, 3, false, scratch); err == nil {
		t.Error("non-power-of-two dims must be rejected")
	}
	if err := Transform2DBatchInto(x, 2, 4, 4, false, scratch[:1]); err == nil {
		t.Error("short scratch must be rejected")
	}
}
