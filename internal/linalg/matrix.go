// Package linalg provides the small dense linear-algebra kernel used by the
// leakage estimator: a row-major dense matrix type, Cholesky factorization
// (for sampling correlated process fields), triangular solves, and linear
// least squares (for the a·e^(bL+cL²) leakage fit).
//
// The package is deliberately minimal and dependency-free; it implements only
// the well-conditioned, symmetric-positive-definite and small-overdetermined
// problems that arise in statistical leakage analysis.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns an r×c zero matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// copied; the caller retains ownership of data.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.rows, m.cols, m.data)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %d", m.rows, m.cols, len(x)))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and b. The matrices must have identical shape.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.rows != b.rows || m.cols != b.cols {
		panic("linalg: shape mismatch in MaxAbsDiff")
	}
	max := 0.0
	for i, v := range m.data {
		if d := math.Abs(v - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
			if j < m.cols-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IsSymmetric reports whether the matrix is square and symmetric to within
// tol on each element pair.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix a such that a = L·Lᵀ. Only the lower triangle of a is read.
// It returns ErrNotPositiveDefinite if a pivot is non-positive, and a typed
// Numerical error if the finished factor contains NaN or Inf (e.g. from a
// corrupted input off the pivot path).
func Cholesky(a *Matrix) (*Matrix, error) {
	defer telemetry.TimeStage("linalg.cholesky")()
	fault.Hit(fault.SiteCholesky)
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if j == 0 {
			d = fault.Corrupt(fault.SiteCholesky, d)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/dj)
		}
	}
	if err := l.CheckFinite("linalg.Cholesky"); err != nil {
		return nil, err
	}
	return l, nil
}

// CheckFinite returns a typed Numerical error naming the first NaN or ±Inf
// element of the matrix, or nil if every element is finite.
func (m *Matrix) CheckFinite(op string) error {
	for idx, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return lkerr.New(lkerr.Numerical, op, "element (%d,%d) is %g",
				idx/m.cols, idx%m.cols, v)
		}
	}
	return nil
}

// CholeskyJittered behaves like Cholesky but, if factorization fails, retries
// with geometrically increasing diagonal jitter up to maxJitter (relative to
// the mean diagonal). It is used to sample from empirically assembled
// correlation matrices that are PSD only up to round-off.
// It returns the factor and the jitter actually applied.
func CholeskyJittered(a *Matrix, maxJitter float64) (*Matrix, float64, error) {
	l, err := Cholesky(a)
	if err == nil {
		return l, 0, nil
	}
	n := a.rows
	meanDiag := 0.0
	for i := 0; i < n; i++ {
		meanDiag += a.At(i, i)
	}
	if n > 0 {
		meanDiag /= float64(n)
	}
	for jit := 1e-12; jit <= maxJitter; jit *= 10 {
		b := a.Clone()
		for i := 0; i < n; i++ {
			b.Add(i, i, jit*meanDiag)
		}
		if l, err := Cholesky(b); err == nil {
			return l, jit * meanDiag, nil
		}
	}
	return nil, 0, fmt.Errorf("linalg: Cholesky failed even with jitter %g: %w", maxJitter, err)
}

// SolveLowerTriangular solves L·x = b for x, where L is lower triangular.
func SolveLowerTriangular(l *Matrix, b []float64) []float64 {
	n := l.rows
	if l.cols != n || len(b) != n {
		panic("linalg: dimension mismatch in SolveLowerTriangular")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperTriangular solves U·x = b for x, where U is upper triangular.
func SolveUpperTriangular(u *Matrix, b []float64) []float64 {
	n := u.rows
	if u.cols != n || len(b) != n {
		panic("linalg: dimension mismatch in SolveUpperTriangular")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := u.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveSPD solves a·x = b for symmetric positive definite a via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y := SolveLowerTriangular(l, b)
	return SolveUpperTriangular(l.T(), y), nil
}
