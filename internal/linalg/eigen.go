package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix a using
// the cyclic Jacobi method: a = Q·diag(values)·Qᵀ with orthonormal columns
// of Q as eigenvectors. Eigenvalues are returned in descending order.
//
// Jacobi is quadratic-ish per sweep but robust and adequate for the modest
// correlation matrices (tens to a few hundred rows) of the grid-based
// process model; it is not intended for large systems.
func SymEigen(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("linalg: SymEigen of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	if !a.IsSymmetric(1e-9) {
		return nil, nil, fmt.Errorf("linalg: SymEigen requires a symmetric matrix")
	}
	// Work on a copy; accumulate rotations in q.
	w := a.Clone()
	q := Identity(n)

	offDiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}
	norm := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			norm += w.At(i, j) * w.At(i, j)
		}
	}
	tol := 1e-24 * (norm + 1)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps && offDiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for qi := p + 1; qi < n; qi++ {
				apq := w.At(p, qi)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(qi, qi)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides of w and the
				// right of q.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, qi)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, qi, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(qi, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(qi, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					qkp := q.At(k, p)
					qkq := q.At(k, qi)
					q.Set(k, p, c*qkp-s*qkq)
					q.Set(k, qi, s*qkp+c*qkq)
				}
			}
		}
	}

	// Extract and sort.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for c, pr := range pairs {
		values[c] = pr.val
		for r := 0; r < n; r++ {
			vectors.Set(r, c, q.At(r, pr.idx))
		}
	}
	return values, vectors, nil
}

// PCAFactors returns a factor matrix B (n×k) such that B·Bᵀ approximates
// the symmetric PSD matrix a using its k leading eigenpairs, choosing the
// smallest k whose eigenvalues capture at least the given fraction of the
// total variance (trace). Negative eigenvalues from round-off are dropped.
// This is the principal-component reduction used by grid-based spatial
// correlation models.
func PCAFactors(a *Matrix, fraction float64) (*Matrix, int, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, 0, fmt.Errorf("linalg: PCA fraction %g outside (0, 1]", fraction)
	}
	values, vectors, err := SymEigen(a)
	if err != nil {
		return nil, 0, err
	}
	n := a.Rows()
	total := 0.0
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("linalg: matrix has no positive spectrum")
	}
	k := 0
	captured := 0.0
	for k < n && values[k] > 0 && captured < fraction*total {
		captured += values[k]
		k++
	}
	if k == 0 {
		k = 1
	}
	b := NewMatrix(n, k)
	for c := 0; c < k; c++ {
		scale := math.Sqrt(values[c])
		for r := 0; r < n; r++ {
			b.Set(r, c, vectors.At(r, c)*scale)
		}
	}
	return b, k, nil
}
