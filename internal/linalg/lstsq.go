package linalg

import (
	"fmt"
	"math"
)

// LeastSquares solves the overdetermined system A·x ≈ b in the least-squares
// sense using Householder QR with column checks. A must have at least as many
// rows as columns and full column rank.
//
// It is used to fit the log-domain leakage model
// ln X = ln a + b·L + c·L², which is linear in (ln a, b, c).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.rows, a.cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d != rows %d", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", m, n)
	}
	// Work on copies: Householder QR reduces R in place and applies the
	// same reflections to the rhs.
	r := a.Clone()
	y := make([]float64, m)
	copy(y, b)

	for k := 0; k < n; k++ {
		// Householder vector for column k, rows k..m-1.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, fmt.Errorf("linalg: rank-deficient matrix (column %d)", k)
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// v = x - norm*e1, stored in column k below the diagonal.
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		v[0] -= norm
		vNorm2 := 0.0
		for _, vi := range v {
			vNorm2 += vi * vi
		}
		if vNorm2 == 0 {
			continue
		}
		// Apply H = I - 2vvᵀ/(vᵀv) to remaining columns of R and to y.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vNorm2
			for i := k; i < m; i++ {
				r.Add(i, j, -f*v[i-k])
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += v[i-k] * y[i]
		}
		f := 2 * dot / vNorm2
		for i := k; i < m; i++ {
			y[i] -= f * v[i-k]
		}
	}

	// Back-substitute R[0:n,0:n]·x = y[0:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: singular R at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// PolyFit fits a polynomial of the given degree to the points (xs, ys) by
// least squares and returns the coefficients c[0] + c[1]x + ... + c[deg]x^deg.
func PolyFit(xs, ys []float64, deg int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("linalg: PolyFit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < deg+1 {
		return nil, fmt.Errorf("linalg: PolyFit needs at least %d points, got %d", deg+1, len(xs))
	}
	a := NewMatrix(len(xs), deg+1)
	for i, x := range xs {
		p := 1.0
		for j := 0; j <= deg; j++ {
			a.Set(i, j, p)
			p *= x
		}
	}
	return LeastSquares(a, ys)
}

// PolyEval evaluates the polynomial with coefficients c (lowest order first)
// at x using Horner's rule.
func PolyEval(c []float64, x float64) float64 {
	s := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		s = s*x + c[i]
	}
	return s
}
