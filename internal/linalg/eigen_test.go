package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		2, 0, 0,
		0, 5, 0,
		0, 0, -1,
	})
	values, vectors, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, -1}
	for i := range want {
		if math.Abs(values[i]-want[i]) > 1e-12 {
			t.Errorf("value[%d] = %g, want %g", i, values[i], want[i])
		}
	}
	// Vectors are signed permutation columns.
	for c := 0; c < 3; c++ {
		norm := 0.0
		for r := 0; r < 3; r++ {
			norm += vectors.At(r, c) * vectors.At(r, c)
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Errorf("column %d not unit norm", c)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	values, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(values[0]-3) > 1e-12 || math.Abs(values[1]-1) > 1e-12 {
		t.Errorf("values = %v, want [3 1]", values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randomSPD(rng, n)
		values, vectors, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A = QΛQᵀ.
		lam := NewMatrix(n, n)
		for i, v := range values {
			lam.Set(i, i, v)
		}
		rec := vectors.Mul(lam).Mul(vectors.T())
		if d := rec.MaxAbsDiff(a); d > 1e-8*float64(n) {
			t.Errorf("n=%d: reconstruction error %g", n, d)
		}
		// QᵀQ = I.
		if d := vectors.T().Mul(vectors).MaxAbsDiff(Identity(n)); d > 1e-9*float64(n) {
			t.Errorf("n=%d: eigenvectors not orthonormal (%g)", n, d)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if values[i] > values[i-1]+1e-12 {
				t.Errorf("n=%d: values not descending at %d", n, i)
			}
		}
		// SPD: all positive.
		for i, v := range values {
			if v <= 0 {
				t.Errorf("n=%d: SPD eigenvalue %d = %g", n, i, v)
			}
		}
	}
}

func TestSymEigenErrors(t *testing.T) {
	if _, _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Errorf("non-square accepted")
	}
	asym := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := SymEigen(asym); err == nil {
		t.Errorf("asymmetric accepted")
	}
}

// Property: trace and Frobenius norm are preserved by the decomposition.
func TestSymEigenInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSPD(rng, n)
		values, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		sum := 0.0
		for _, v := range values {
			sum += v
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPCAFactorsFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 8)
	// fraction 1: BBᵀ = A exactly (all components kept).
	b, k, err := PCAFactors(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 8 {
		t.Errorf("full fraction kept %d of 8 components", k)
	}
	if d := b.Mul(b.T()).MaxAbsDiff(a); d > 1e-8 {
		t.Errorf("BBᵀ−A = %g", d)
	}
}

func TestPCAFactorsTruncation(t *testing.T) {
	// A strongly low-rank matrix: one dominant direction plus noise.
	n := 10
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 100) // rank-1 part: 100·1·1ᵀ
		}
		a.Add(i, i, 1) // small identity
	}
	b, k, err := PCAFactors(a, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("kept %d components, want 1 (dominant eigenvalue ≈ %d)", k, 100*n+1)
	}
	// The rank-1 reconstruction captures the bulk.
	rec := b.Mul(b.T())
	if math.Abs(rec.At(0, 0)-a.At(0, 0))/a.At(0, 0) > 0.05 {
		t.Errorf("truncated reconstruction too far: %g vs %g", rec.At(0, 0), a.At(0, 0))
	}
}

func TestPCAFactorsErrors(t *testing.T) {
	a := Identity(3)
	if _, _, err := PCAFactors(a, 0); err == nil {
		t.Errorf("fraction 0 accepted")
	}
	if _, _, err := PCAFactors(a, 1.5); err == nil {
		t.Errorf("fraction >1 accepted")
	}
	zero := NewMatrix(3, 3)
	if _, _, err := PCAFactors(zero, 0.9); err == nil {
		t.Errorf("zero matrix accepted")
	}
	if _, _, err := PCAFactors(NewMatrix(2, 3), 0.9); err == nil {
		t.Errorf("non-square accepted")
	}
}
