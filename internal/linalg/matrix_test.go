package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set/At roundtrip failed")
	}
	m.Add(0, 1, 1)
	if m.At(0, 1) != 10 {
		t.Errorf("Add failed: got %g", m.At(0, 1))
	}
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Errorf("Clone aliases original")
	}
}

func TestIdentityMul(t *testing.T) {
	id := Identity(4)
	a := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64(i*4+j+1))
		}
	}
	if got := id.Mul(a); got.MaxAbsDiff(a) != 0 {
		t.Errorf("I*A != A")
	}
	if got := a.Mul(id); got.MaxAbsDiff(a) != 0 {
		t.Errorf("A*I != A")
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
}

func TestMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on out-of-range access")
		}
	}()
	m := NewMatrix(2, 2)
	_ = m.At(2, 0)
}

// randomSPD builds a random symmetric positive definite matrix B·Bᵀ + n·I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: Cholesky: %v", n, err)
		}
		rec := l.Mul(l.T())
		if d := rec.MaxAbsDiff(a); d > 1e-9*float64(n) {
			t.Errorf("n=%d: |LLᵀ-A| = %g too large", n, d)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Errorf("n=%d: L(%d,%d) = %g, want 0", n, i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Errorf("expected failure on indefinite matrix")
	}
	b := NewMatrixFrom(2, 3, make([]float64, 6))
	if _, err := Cholesky(b); err == nil {
		t.Errorf("expected failure on non-square matrix")
	}
}

func TestCholeskyJittered(t *testing.T) {
	// A singular PSD matrix (rank 1): plain Cholesky fails, jittered succeeds.
	a := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	l, jit, err := CholeskyJittered(a, 1e-3)
	if err != nil {
		t.Fatalf("CholeskyJittered: %v", err)
	}
	if jit <= 0 {
		t.Errorf("expected nonzero jitter, got %g", jit)
	}
	rec := l.Mul(l.T())
	if d := rec.MaxAbsDiff(a); d > 1e-2 {
		t.Errorf("jittered reconstruction too far: %g", d)
	}
	// On an SPD matrix it must not jitter at all.
	spd := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	_, jit, err = CholeskyJittered(spd, 1e-3)
	if err != nil || jit != 0 {
		t.Errorf("SPD case: jit=%g err=%v, want 0,nil", jit, err)
	}
}

func TestTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("SolveSPD: %v", err)
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], x[i])
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1})
	if !a.IsSymmetric(0) {
		t.Errorf("symmetric matrix not detected")
	}
	a.Set(0, 1, 2.5)
	if a.IsSymmetric(1e-9) {
		t.Errorf("asymmetric matrix not detected")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Errorf("non-square matrix reported symmetric")
	}
}

// Property: for any random SPD matrix, Cholesky succeeds and reconstructs.
func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return l.Mul(l.T()).MaxAbsDiff(a) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, well-conditioned system: LS must reproduce the exact solution.
	a := NewMatrixFrom(3, 3, []float64{2, 0, 1, 0, 3, -1, 1, -1, 4})
	want := []float64{1, -2, 0.5}
	b := a.MulVec(want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 3 + 2x with noise-free data plus one outlier-free check that
	// the residual is orthogonal to the column space.
	rng := rand.New(rand.NewSource(3))
	n := 50
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 3 + 2*x
	}
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEq(got[0], 3, 1e-9) || !almostEq(got[1], 2, 1e-9) {
		t.Errorf("coefficients = %v, want [3 2]", got)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Errorf("expected error for underdetermined system")
	}
	b := NewMatrix(3, 2) // rank deficient (all zeros)
	if _, err := LeastSquares(b, []float64{1, 2, 3}); err == nil {
		t.Errorf("expected error for rank-deficient matrix")
	}
	if _, err := LeastSquares(Identity(2), []float64{1}); err == nil {
		t.Errorf("expected error for rhs length mismatch")
	}
}

func TestPolyFitRecovers(t *testing.T) {
	// Property: PolyFit recovers polynomials it is given, for random coeffs.
	f := func(c0, c1, c2 float64) bool {
		c0 = math.Mod(c0, 10)
		c1 = math.Mod(c1, 10)
		c2 = math.Mod(c2, 10)
		xs := make([]float64, 12)
		ys := make([]float64, 12)
		for i := range xs {
			x := float64(i)/4 - 1.5
			xs[i] = x
			ys[i] = c0 + c1*x + c2*x*x
		}
		got, err := PolyFit(xs, ys, 2)
		if err != nil {
			return false
		}
		return almostEq(got[0], c0, 1e-8) && almostEq(got[1], c1, 1e-8) && almostEq(got[2], c2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPolyEval(t *testing.T) {
	// 1 + 2x + 3x² at x=2 → 17
	if got := PolyEval([]float64{1, 2, 3}, 2); got != 17 {
		t.Errorf("PolyEval = %g, want 17", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Errorf("PolyEval(nil) = %g, want 0", got)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Errorf("expected length-mismatch error")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Errorf("expected too-few-points error")
	}
}
