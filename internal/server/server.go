// Package server implements leakestd, the estimation service: a concurrent
// HTTP/JSON front end over the leakest estimator with four robustness
// layers —
//
//  1. admission control and load shedding: a semaphore-bounded worker pool
//     whose queue depth feeds the estimator's EstimateBudget degradation
//     ladder, so overload is answered with progressively cheaper estimators
//     (O(n²) → O(n) → O(1)) before any request is refused, and refusal
//     (HTTP 429 + Retry-After) happens only past a hard queue cap;
//  2. a content-hashed artifact cache with singleflight semantics for the
//     expensive shared artifacts (characterized libraries, FFT torus
//     embeddings, parsed+placed netlists);
//  3. a per-request lifecycle: request IDs, deadlines, an asynchronous job
//     queue with progress reporting and cancellation;
//  4. graceful shutdown that drains in-flight work under a deadline, plus
//     fault-injection hardening at the cache-fill and job-execution sites.
//
// See DESIGN.md §12 for the admission→budget-ladder mapping and the cache
// key scheme.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leakest"
	"leakest/internal/chipmc"
	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the estimation worker-pool size (default GOMAXPROCS is
	// deliberately NOT used: estimation is CPU-bound, so the default is 2).
	Workers int
	// QueueCap is the hard cap on requests waiting for a worker; beyond it
	// requests are shed with 429 (default 4×Workers).
	QueueCap int
	// MaxJobs caps live (queued+running) asynchronous jobs (default 64).
	MaxJobs int
	// KeepJobs caps retained finished jobs (default 256).
	KeepJobs int
	// CacheEntries caps completed artifact-cache entries (default 64).
	CacheEntries int
	// DefaultTimeout bounds a request that sets no timeout_ms (default 60s).
	DefaultTimeout time.Duration
	// Cells is the transistor-level cell set characterized per process
	// (default the full built-in library).
	Cells []*leakest.Cell
	// CharMCSamples overrides the characterization MC sample count
	// (0 = library default; lower it for fast starts and tests).
	CharMCSamples int
	// EstimatorWorkers is the per-request goroutine count inside the
	// estimator loops; the admission pool provides cross-request
	// parallelism, so the default is 1.
	EstimatorWorkers int
}

func (c *Config) setDefaults() {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueCap < 1 {
		c.QueueCap = 4 * c.Workers
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 64
	}
	if c.KeepJobs < 1 {
		c.KeepJobs = 256
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.Cells == nil {
		c.Cells = leakest.BuiltinCells()
	}
	if c.EstimatorWorkers < 1 {
		c.EstimatorWorkers = 1
	}
}

// execFn runs an admitted request; it is a seam so admission tests can
// substitute deterministic work.
type execFn func(ctx context.Context, req *EstimateRequest, id string, lvl loadLevel, depth int) (*EstimateResponse, error)

// Server is the leakestd HTTP service.
type Server struct {
	cfg   Config
	adm   *admission
	cache *artifactCache
	jobs  *jobSet
	mux   *http.ServeMux
	rec   *telemetry.FlightRecorder

	// baseCtx is the server lifetime: cache fills and job contexts derive
	// from it, so Shutdown's final cancel unwinds everything in flight.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	wg         sync.WaitGroup // in-flight requests and jobs, for draining

	exec execFn
}

// New builds a Server. Telemetry is enabled (the service exposes /metrics),
// and so is the flight recorder: every request's trace is retained per the
// default RecorderConfig and served under /debug/traces.
func New(cfg Config) *Server {
	cfg.setDefaults()
	telemetry.Enable()
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.Workers, cfg.QueueCap),
		cache: newArtifactCache(cfg.CacheEntries),
		jobs:  newJobSet(cfg.MaxJobs, cfg.KeepJobs),
		rec:   telemetry.EnableFlightRecorder(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.exec = s.runEstimate

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	tmux := telemetry.NewMux(telemetry.Default())
	mux.Handle("/metrics", tmux)
	mux.Handle("/debug/", tmux)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the resolved size of the estimation worker pool.
func (s *Server) Workers() int { return s.cfg.Workers }

// Shutdown drains the server: new work is refused with 503 immediately,
// in-flight requests and jobs get until ctx's deadline to finish, then the
// server lifetime is canceled so remaining work unwinds through the typed
// cancellation paths. A nil error means everything drained (possibly after
// the forced cancel).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
	}
	// Deadline passed with work still in flight: force-cancel and give the
	// cancellation paths a short grace to unwind.
	s.baseCancel()
	select {
	case <-done:
		return nil
	case <-time.After(5 * time.Second):
		return lkerr.New(lkerr.DeadlineExceeded, "server.Shutdown",
			"in-flight work did not unwind after forced cancel")
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// workCtx derives the context an admitted request runs under: the caller's
// context bounded by the request deadline, and additionally canceled when
// the server lifetime ends (forced shutdown).
func (s *Server) workCtx(parent context.Context, req *EstimateRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = msToDuration(req.TimeoutMS)
	}
	ctx, cancel := context.WithTimeout(parent, d)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// process admits the request to a worker and runs it. The admission level's
// load budget is applied inside exec.
func (s *Server) process(ctx context.Context, req *EstimateRequest, id string) (*EstimateResponse, error) {
	release, lvl, depth, err := s.adm.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.exec(ctx, req, id, lvl, depth)
}

// ---------------------------------------------------------------- handlers

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	id := newID("r")
	w.Header().Set("X-Request-Id", id)
	if s.draining.Load() {
		writeError(w, id, http.StatusServiceUnavailable,
			&ErrorInfo{Code: "draining", Message: "server is shutting down"})
		return
	}
	req, err := decodeRequest(w, r)
	if err != nil {
		writeTypedError(w, id, err)
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	ctx, cancel := s.workCtx(r.Context(), req)
	defer cancel()
	// The request-scoped trace: named by the request ID, threaded through
	// every pipeline stage, recorded into the flight recorder whatever the
	// outcome, and linked from the latency histogram as an exemplar.
	tr := telemetry.NewTrace()
	tr.SetID(id)
	ctx = telemetry.WithTrace(ctx, tr)
	ctx, endReq := telemetry.WithSpan(ctx, "server.request")
	start := time.Now()
	resp, err := s.process(ctx, req, id)
	endReq()
	telemetry.ObserveSecondsEx("server_request_duration_seconds", time.Since(start).Seconds(), id)
	snap := s.recordTrace(tr, resp, err)
	if err != nil {
		writeTypedError(w, id, err)
		return
	}
	resp.RequestID = id
	resp.Trace = &snap
	writeJSON(w, http.StatusOK, resp)
}

// recordTrace classifies the request outcome onto the trace, records it in
// the flight recorder, and returns the snapshot for the response body.
func (s *Server) recordTrace(tr *telemetry.Trace, resp *EstimateResponse, err error) telemetry.TraceSnapshot {
	switch {
	case err != nil && lkerr.IsCode(err, lkerr.Canceled):
		tr.SetOutcome("canceled")
	case err != nil:
		tr.SetOutcome("error")
	case resp != nil && resp.Result.Degraded:
		tr.SetOutcome("degraded")
	default:
		tr.SetOutcome("ok")
	}
	snap := tr.Snapshot()
	s.rec.Record(snap)
	return snap
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	id := newID("j")
	w.Header().Set("X-Request-Id", id)
	if s.draining.Load() {
		writeError(w, id, http.StatusServiceUnavailable,
			&ErrorInfo{Code: "draining", Message: "server is shutting down"})
		return
	}
	req, err := decodeRequest(w, r)
	if err != nil {
		writeTypedError(w, id, err)
		return
	}
	// The job context derives from the server lifetime, not the submitting
	// HTTP request: the submitter disconnecting must not cancel the job.
	ctx, cancel := s.workCtx(s.baseCtx, req)
	j := &job{id: id, req: req, state: stateQueued, cancel: cancel, done: make(chan struct{})}
	if err := s.jobs.add(j); err != nil {
		cancel()
		writeTypedError(w, id, err)
		return
	}
	ctx = telemetry.WithProgress(ctx, j.onProgress)
	// The job trace mirrors the synchronous request trace, named by the job
	// ID so GET /debug/traces/{job-id} resolves after completion.
	tr := telemetry.NewTrace()
	tr.SetID(id)
	ctx = telemetry.WithTrace(ctx, tr)
	s.wg.Add(1)
	go s.runJob(ctx, cancel, j, tr)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runJob executes one asynchronous job through the shared admission pool.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, tr *telemetry.Trace) {
	defer s.wg.Done()
	defer cancel()
	ctx, endJob := telemetry.WithSpan(ctx, "server.job")
	resp, err := s.executeJob(ctx, j)
	endJob()
	snap := s.recordTrace(tr, resp, err)
	if resp != nil {
		resp.Trace = &snap
	}
	j.setTrace(&snap)
	j.finish(resp, err)
}

// executeJob is the fault-instrumented job body: tests inject failures and
// panics at the job-exec site to prove a dying job lands in the failed state
// with a typed error instead of wedging the pool.
func (s *Server) executeJob(ctx context.Context, j *job) (resp *EstimateResponse, err error) {
	defer lkerr.RecoverInto(&err, "server.job")
	if !j.setRunning() {
		return nil, lkerr.New(lkerr.Canceled, "server.job", "job canceled before start")
	}
	fault.Hit(fault.SiteJobExec)
	if ferr := fault.Failure(fault.SiteJobExec); ferr != nil {
		return nil, lkerr.Wrap(lkerr.Numerical, "server.job", ferr)
	}
	resp, err = s.process(ctx, j.req, j.id)
	if err == nil {
		resp.RequestID = j.id
	}
	return resp, err
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, "", http.StatusNotFound,
			&ErrorInfo{Code: "not-found", Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, "", http.StatusNotFound,
			&ErrorInfo{Code: "not-found", Message: "no such job"})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ------------------------------------------------------------- estimation

// benchArtifact is the cached parse+place of a .bench submission.
type benchArtifact struct {
	nl *leakest.Netlist
	pl *leakest.Placement
}

// runEstimate is the default execFn: resolve cached artifacts, apply the
// tighter of the request's and the load level's budgets, estimate, and
// cross-check the served moments.
func (s *Server) runEstimate(ctx context.Context, req *EstimateRequest, id string, lvl loadLevel, depth int) (*EstimateResponse, error) {
	telemetry.SpanAttrStr(ctx, "admission.level", lvl.String())
	telemetry.SpanAttrInt(ctx, "admission.queue_depth", int64(depth))
	proc := req.Process
	if proc == nil {
		proc = spatial.Default90nm()
	}

	// Artifact 1: the characterized library for this process.
	libAny, err := s.cache.get(ctx, "library", processKey(proc), func() (any, error) {
		return leakest.CharacterizeContext(s.baseCtx, s.cfg.Cells, leakest.CharConfig{
			Process:   proc,
			Seed:      20070604,
			MCSamples: s.cfg.CharMCSamples,
		})
	})
	if err != nil {
		return nil, err
	}
	lib := libAny.(*leakest.Library)
	est, err := leakest.NewEstimator(lib, proc)
	if err != nil {
		return nil, lkerr.Wrap(lkerr.InvalidInput, "server.estimate", err)
	}
	est.Workers = s.cfg.EstimatorWorkers
	est.ApplyVtMean = req.Vt == nil || *req.Vt
	if req.Tiles != nil {
		est.Tiles = req.Tiles.T
	}

	// Artifact 2 (late mode): the parsed and placed netlist.
	var bench *benchArtifact
	if req.Bench != "" {
		name := req.Name
		if name == "" {
			name = "design"
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		key := hashKey("bench", req.Bench, name, strconv.FormatInt(seed, 10))
		benchAny, err := s.cache.get(ctx, "netlist", key, func() (any, error) {
			nl, err := leakest.ReadBench(strings.NewReader(req.Bench), name)
			if err != nil {
				return nil, lkerr.Wrap(lkerr.InvalidInput, "server.bench", err)
			}
			pl, err := leakest.AutoPlace(nl, seed)
			if err != nil {
				return nil, err
			}
			return &benchArtifact{nl: nl, pl: pl}, nil
		})
		if err != nil {
			return nil, err
		}
		bench = benchAny.(*benchArtifact)
	}

	design, sp, err := s.resolveDesign(est, req, bench)
	if err != nil {
		return nil, err
	}

	// The budget in force: the stricter of the request's own and the one
	// the admission level imposes. The estimator's degradation ladder turns
	// it into the cheapest admissible method, recording reasons.
	budget := tighten(req.budget(), lvl.loadBudget())
	budgeted := budget != (leakest.EstimateBudget{})

	var res leakest.Result
	switch {
	case req.Truth:
		res, err = est.TrueLeakageBudgeted(ctx, bench.nl, bench.pl, sp, budget)
	case budgeted:
		res, err = est.EstimateBudgeted(ctx, design, budget)
	default:
		method, _ := parseMethod(req.Method)
		res, err = est.EstimateContext(ctx, design, method)
	}
	if err != nil {
		return nil, err
	}

	resp := &EstimateResponse{
		Result: resultBody(res),
		Admission: AdmissionBody{
			Level:         lvl.String(),
			QueueDepth:    depth,
			BudgetImposed: lvl != levelNormal,
		},
	}
	resp.Result.Tiles = len(res.TileStats)
	if req.Tiles != nil && req.Tiles.PerTile {
		resp.Result.TileStats = res.TileStats
	}

	// Optional Monte Carlo, with the FFT torus embedding served from the
	// artifact cache when the FFT path will run. Heavy load skips MC: the
	// analytic estimate above is the degraded-but-correct answer.
	if req.MCSamples > 0 {
		if lvl >= levelHeavy {
			resp.Result.Note = appendNote(resp.Result.Note, "monte carlo skipped under load")
		} else {
			mc, err := s.runMonteCarlo(ctx, est, req, proc, bench)
			if err != nil {
				return nil, err
			}
			resp.MonteCarlo = mc
		}
	}

	resp.Conformance = s.conformance(ctx, est, design, res)
	return resp, nil
}

// resolveDesign produces the design spec and signal probability for either
// request shape. An omitted signal probability selects the conservative
// leakage-maximizing setting (computed from the histogram in both modes).
func (s *Server) resolveDesign(est *leakest.Estimator, req *EstimateRequest, bench *benchArtifact) (leakest.Design, float64, error) {
	if bench != nil {
		hist, err := netlistHist(bench.nl)
		if err != nil {
			return leakest.Design{}, 0, err
		}
		sp := 0.0
		if req.SignalProb != nil {
			sp = *req.SignalProb
		} else if sp, err = est.MaxLeakageSignalProb(hist); err != nil {
			return leakest.Design{}, 0, err
		}
		design, err := est.ExtractDesign(bench.nl, bench.pl, sp)
		if err != nil {
			return leakest.Design{}, 0, err
		}
		return design, sp, nil
	}
	hist, err := leakest.NewHistogram(req.Design.Hist)
	if err != nil {
		return leakest.Design{}, 0, err
	}
	sp := 0.0
	if req.SignalProb != nil {
		sp = *req.SignalProb
	} else if sp, err = est.MaxLeakageSignalProb(hist); err != nil {
		return leakest.Design{}, 0, err
	}
	design := leakest.Design{
		Hist: hist, N: req.Design.N,
		W: req.Design.W, H: req.Design.H,
		SignalProb: sp,
	}
	return design, sp, nil
}

// runMonteCarlo attaches a full-chip MC run, pre-warming the cached FFT
// embedding when the FFT sampler will be used.
func (s *Server) runMonteCarlo(ctx context.Context, est *leakest.Estimator, req *EstimateRequest, proc *spatial.Process, bench *benchArtifact) (*MCBody, error) {
	sampler, err := leakest.ParseSampler(orDefault(req.Sampler, "auto"))
	if err != nil {
		return nil, err
	}
	n := len(bench.nl.Gates)
	cfg := chipmc.Config{
		Lib:        est.Library(),
		Proc:       proc,
		SignalProb: mcSignalProb(req),
		Samples:    req.MCSamples,
		Seed:       orDefaultI64(req.Seed, 1),
		Workers:    s.cfg.EstimatorWorkers,
		Sampler:    sampler,
		Batch:      req.MCBatch,
	}
	if req.Tiles != nil {
		cfg.Tiles = req.Tiles.T
	}
	if req.Tail != nil {
		cfg.Tail = &chipmc.TailConfig{
			Spec:      req.Tail.Spec,
			Quantiles: req.Tail.Quantiles,
			ISTrials:  req.Tail.ISTrials,
		}
	}
	// Artifact 3: the FFT torus embedding, shared across requests hitting
	// the same (process, grid). The tiled path builds per-tile samplers of
	// its own, so the full-grid embedding is not pre-warmed for it.
	if cfg.Tiles <= 1 && (sampler == leakest.SamplerFFT ||
		((sampler == leakest.SamplerAuto || sampler == leakest.SamplerQMC) && n > chipmc.DefaultMaxGates)) {
		g := bench.pl.Grid
		gsAny, gerr := s.cache.get(ctx, "embedding",
			embeddingKey(proc, g.Rows, g.Cols, g.SiteW, g.SiteH),
			func() (any, error) { return randvar.NewGridSampler(proc, g) })
		if gerr == nil {
			cfg.Prebuilt = gsAny.(*randvar.GridSampler)
		}
		// A failed embedding fill is not fatal here: chipmc rebuilds or
		// falls back per its own sampler policy.
	}
	mc, err := chipmc.RunContext(ctx, cfg, bench.nl, bench.pl)
	if err != nil {
		return nil, err
	}
	return &MCBody{Mean: mc.Mean, Std: mc.Std, Q05: mc.Q05, Q95: mc.Q95, Samples: mc.Samples, Tail: mc.Tail}, nil
}

// conformance cross-checks the served moments against cheaper estimators:
// the mean against the method-independent closed form (all estimators share
// it, so agreement is tight), and — when an exact rung served — the σ
// against the constant-time integral (loose envelope: the continuum
// approximation differs from the exact sum by design). Failures never fail
// the request; they are reported in the response and counted.
func (s *Server) conformance(ctx context.Context, est *leakest.Estimator, design leakest.Design, served leakest.Result) *ConformanceBody {
	const (
		meanTol = 1e-6
		stdTol  = 0.35
	)
	// The reference rungs (naive, integral) are always run monolithically:
	// they exist to cross-check the served moments, and the tiled linear is
	// bitwise identical to the monolithic one anyway.
	if est.Tiles > 1 {
		mono := *est
		mono.Tiles = 0
		est = &mono
	}
	ref, err := est.EstimateContext(ctx, design, leakest.Naive)
	if err != nil {
		return &ConformanceBody{Status: "skipped", Detail: "reference failed: " + err.Error()}
	}
	body := &ConformanceBody{Status: "ok", Reference: "naive-mean"}
	body.MeanRelDev = relDev(served.Mean, ref.Mean)
	if body.MeanRelDev > meanTol {
		body.Status = "mismatch"
		body.Detail = fmt.Sprintf("mean deviates %.3g from closed form", body.MeanRelDev)
	}
	// σ check only when an exact rung served; the integral rung IS the
	// reference, and naive σ ignores correlation entirely.
	if served.Method == "linear" || served.Method == "linear-tiled" || served.Method == "true-n2" {
		iref, err := est.EstimateContext(ctx, design, leakest.Integral2D)
		if err == nil {
			body.Reference = "naive-mean+integral-std"
			body.StdRelDev = relDev(served.Std, iref.Std)
			if body.StdRelDev > stdTol {
				body.Status = "mismatch"
				body.Detail = appendNote(body.Detail,
					fmt.Sprintf("σ deviates %.3g from integral", body.StdRelDev))
			}
		}
	}
	if body.Status == "mismatch" {
		telemetry.Inc("server_conformance_mismatch_total")
	}
	return body
}

// ---------------------------------------------------------------- helpers

func netlistHist(nl *leakest.Netlist) (*leakest.Histogram, error) {
	counts := make(map[string]float64)
	for _, g := range nl.Gates {
		counts[g.Type]++
	}
	return leakest.NewHistogram(counts)
}

func mcSignalProb(req *EstimateRequest) float64 {
	if req.SignalProb != nil {
		return *req.SignalProb
	}
	return 0.5
}

func relDev(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func orDefaultI64(v, d int64) int64 {
	if v == 0 {
		return d
	}
	return v
}

func appendNote(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "; " + extra
}

// -------------------------------------------------------------- transport

// maxBodyBytes bounds request bodies (netlists included).
const maxBodyBytes = 16 << 20

func decodeRequest(w http.ResponseWriter, r *http.Request) (*EstimateRequest, error) {
	var req EstimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return nil, lkerr.New(lkerr.InvalidInput, "server.decode", "bad request body: %v", err)
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	telemetry.Inc(telemetry.Label("server_requests_total", "code", strconv.Itoa(code)))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, id string, code int, info *ErrorInfo) {
	if info.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(info.RetryAfterS))
	}
	writeJSON(w, code, ErrorBody{RequestID: id, Error: *info})
}

// writeTypedError maps the typed error taxonomy onto HTTP statuses.
func writeTypedError(w http.ResponseWriter, id string, err error) {
	var shed *errShed
	if errors.As(err, &shed) {
		writeError(w, id, http.StatusTooManyRequests, &ErrorInfo{
			Code:        "overloaded",
			Message:     "queue full, retry later",
			RetryAfterS: shed.retryAfterS,
		})
		return
	}
	code := http.StatusInternalServerError
	switch lkerr.CodeOf(err) {
	case lkerr.InvalidInput:
		code = http.StatusBadRequest
	case lkerr.DeadlineExceeded:
		code = http.StatusGatewayTimeout
	case lkerr.Canceled:
		code = http.StatusServiceUnavailable
	case lkerr.BudgetExceeded:
		code = http.StatusUnprocessableEntity
	}
	writeError(w, id, code, &ErrorInfo{Code: errorCodeString(err), Message: err.Error()})
}
