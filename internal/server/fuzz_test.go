package server

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"leakest/internal/lkerr"
	"leakest/internal/stats"
)

// FuzzTailSpec asserts tail-request validation is total: an arbitrary
// tail block — negative specs, NaN or infinite quantile lists, duplicate
// and unsorted probabilities, hostile JSON — must either be accepted with a
// canonical (sorted, deduplicated, in-range) quantile list or be rejected
// with a typed InvalidInput error. Never a panic, never a silent pass-
// through of values the estimator would choke on.
func FuzzTailSpec(f *testing.F) {
	seeds := []string{
		`{"spec_a": 1e-3, "quantiles": [0.5, 0.95, 0.999], "is_trials": 1000}`,
		`{"spec_a": -1}`,
		`{"spec_a": 0, "quantiles": []}`,
		`{"quantiles": [0.999, 0.5, 0.5, 0.95]}`, // unsorted + duplicate
		`{"quantiles": [1.5]}`,
		`{"quantiles": [0]}`,
		`{"quantiles": [1]}`,
		`{"spec_a": 1e308, "is_trials": -5}`,
		`{"is_trials": 100}`, // IS without a spec
		`{"spec_a": "NaN"}`,
		`{"quantiles": [null]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var tr TailRequest
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			return // malformed JSON is the decoder's rejection, not ours
		}
		req := &EstimateRequest{Bench: "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n", MCSamples: 100, Tail: &tr}
		err := req.validate()
		if err != nil {
			if !lkerr.IsCode(err, lkerr.InvalidInput) {
				t.Fatalf("tail %q rejected with untyped error %v", body, err)
			}
			return
		}
		// Accepted: the normalized quantile list must be canonical and the
		// scalar fields safe for the estimator.
		qs, nerr := stats.NormalizeQuantiles(tr.Quantiles)
		if nerr != nil {
			t.Fatalf("tail %q accepted but quantiles fail normalization: %v", body, nerr)
		}
		if !sort.Float64sAreSorted(qs) {
			t.Fatalf("normalized quantiles %v not sorted", qs)
		}
		for i, q := range qs {
			if !(q > 0 && q < 1) {
				t.Fatalf("normalized quantile %v outside (0,1)", q)
			}
			if i > 0 && qs[i] == qs[i-1] {
				t.Fatalf("duplicate survived normalization: %v", qs)
			}
		}
		if math.IsNaN(tr.Spec) || math.IsInf(tr.Spec, 0) || tr.Spec < 0 {
			t.Fatalf("accepted non-finite or negative spec %v", tr.Spec)
		}
		if tr.ISTrials < 0 {
			t.Fatalf("accepted negative is_trials %d", tr.ISTrials)
		}
		if tr.ISTrials > 0 && tr.Spec == 0 {
			t.Fatalf("accepted is_trials without a spec")
		}
		if tr.Spec == 0 && len(tr.Quantiles) == 0 {
			t.Fatalf("accepted an empty tail request")
		}
	})
}
