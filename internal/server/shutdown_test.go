package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"leakest/internal/fault"
)

func TestShutdownIdleReturnsImmediately(t *testing.T) {
	s := coreServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("idle shutdown took %v", el)
	}
}

// TestShutdownDrainsInFlight: SIGTERM semantics — in-flight work completes
// under the drain deadline and is served normally, while new work is refused
// with 503 the moment draining begins.
func TestShutdownDrainsInFlight(t *testing.T) {
	s := coreServer(t, Config{Workers: 1})
	defer fault.Reset()
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 50 * time.Millisecond})

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- do(t, s, "POST", "/v1/estimate", map[string]any{"bench": c17, "truth": true})
	}()
	waitFor(t, "request to start", func() bool { return fault.Hits(fault.SiteTruthRow) >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rec := <-inflight
	if rec.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp(t, rec)
	if resp.Result.Method != "true-n2" {
		t.Errorf("drained request served %q, want the full true-n2 answer", resp.Result.Method)
	}

	// Draining refuses new work across every write entry point.
	if rec := do(t, s, "POST", "/v1/estimate", histRequest(10)); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("estimate while draining: %d, want 503", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/jobs", histRequest(10)); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("job submit while draining: %d, want 503", rec.Code)
	}
	if rec := do(t, s, "GET", "/healthz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", rec.Code)
	}
}

// TestShutdownForcesCancelPastDeadline: when the drain deadline expires with
// work still running, the server lifetime is canceled and the work unwinds
// through the typed cancellation path instead of being abandoned.
func TestShutdownForcesCancelPastDeadline(t *testing.T) {
	s := coreServer(t, Config{Workers: 1})
	defer fault.Reset()
	// ~2.4 s of injected stall: far beyond the 100 ms drain deadline.
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 400 * time.Millisecond})

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- do(t, s, "POST", "/v1/estimate", map[string]any{"bench": c17, "truth": true})
	}()
	waitFor(t, "request to start", func() bool { return fault.Hits(fault.SiteTruthRow) >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("forced shutdown did not unwind: %v", err)
	}
	// Must return well before the work's natural ~2.4 s duration: one
	// 100 ms deadline plus at most one 400 ms row until the cancel lands.
	if elapsed > 1500*time.Millisecond {
		t.Errorf("forced shutdown took %v, want prompt unwind after cancel", elapsed)
	}
	rec := <-inflight
	if rec.Code == http.StatusOK {
		t.Fatalf("force-canceled request reported success: %s", rec.Body.String())
	}
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusGatewayTimeout {
		t.Errorf("force-canceled request: %d, want 503 (canceled) or 504", rec.Code)
	}
}

// TestShutdownCancelsQueuedJobs: a job still queued when the forced cancel
// lands ends canceled, not wedged.
func TestShutdownCancelsQueuedJobs(t *testing.T) {
	s := coreServer(t, Config{Workers: 1, QueueCap: 8})
	block := make(chan struct{})
	defer close(block)
	s.exec = func(ctx context.Context, req *EstimateRequest, id string, lvl loadLevel, depth int) (*EstimateResponse, error) {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &EstimateResponse{}, nil
	}
	var ids []string
	for i := 0; i < 3; i++ {
		rec := do(t, s, "POST", "/v1/jobs", histRequest(10))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("job %d: %d", i, rec.Code)
		}
		ids = append(ids, decodeJob(t, rec).ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with queued jobs: %v", err)
	}
	for _, id := range ids {
		j, ok := s.jobs.get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if !j.terminal() {
			t.Errorf("job %s still %s after shutdown", id, j.snapshot().State)
		}
	}
}
