package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// counterDelta runs fn and returns the change of the named counter.
func counterDelta(t *testing.T, name string, fn func()) int64 {
	t.Helper()
	r := telemetry.Enable()
	before := r.Counter(name).Value()
	fn()
	return r.Counter(name).Value() - before
}

func TestCacheSingleflight(t *testing.T) {
	c := newArtifactCache(8)
	var fills atomic.Int64
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	vals := make([]any, waiters)
	hits := counterDelta(t, telemetry.Label("server_cache_hits_total", "artifact", "x"), func() {
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, err := c.get(context.Background(), "x", "k", func() (any, error) {
					fills.Add(1)
					<-release
					return 42, nil
				})
				if err != nil {
					t.Errorf("waiter %d: %v", i, err)
				}
				vals[i] = v
			}(i)
		}
		// Let every waiter either start the fill or join it, then release.
		time.Sleep(50 * time.Millisecond)
		close(release)
		wg.Wait()
	})
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times for %d concurrent gets, want exactly 1", got, waiters)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("waiter %d got %v, want 42", i, v)
		}
	}
	if hits != waiters-1 {
		t.Errorf("server_cache_hits_total{artifact=x} += %d, want %d", hits, waiters-1)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newArtifactCache(8)
	boom := errors.New("boom")
	if _, err := c.get(context.Background(), "x", "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// A failed fill must not poison the key: the next get refills.
	v, err := c.get(context.Background(), "x", "k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("refill after error: got %v, %v", v, err)
	}
}

func TestCachePanicIsTypedAndRecoverable(t *testing.T) {
	c := newArtifactCache(8)
	_, err := c.get(context.Background(), "x", "k", func() (any, error) { panic("fill exploded") })
	if !errors.Is(err, lkerr.ErrNumerical) {
		t.Fatalf("panicking fill: got %v, want typed Numerical", err)
	}
	v, err := c.get(context.Background(), "x", "k", func() (any, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("refill after panic: got %v, %v", v, err)
	}
}

func TestCacheInjectedFillFault(t *testing.T) {
	defer fault.Reset()
	c := newArtifactCache(8)
	fault.Arm(fault.SiteCacheFill, fault.Action{Kind: fault.Error})
	_, err := c.get(context.Background(), "x", "k", func() (any, error) { return 1, nil })
	if !errors.Is(err, lkerr.ErrNumerical) {
		t.Fatalf("injected fill failure: got %v, want typed Numerical", err)
	}
	fault.Reset()
	v, err := c.get(context.Background(), "x", "k", func() (any, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("after clearing the fault: got %v, %v", v, err)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newArtifactCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = c.get(context.Background(), "x", "k", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.get(ctx, "x", "k", func() (any, error) { return 1, nil })
	if !errors.Is(err, lkerr.ErrCanceled) {
		t.Fatalf("canceled waiter: got %v, want typed Canceled", err)
	}
	close(release)
}

func TestCacheEviction(t *testing.T) {
	c := newArtifactCache(2)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := c.get(context.Background(), "x", k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.len(); got != 2 {
		t.Fatalf("cache holds %d completed entries, want 2 (oldest evicted)", got)
	}
	// The oldest key was evicted: getting it again refills.
	fills := 0
	if _, err := c.get(context.Background(), "x", "a", func() (any, error) { fills++; return "a", nil }); err != nil {
		t.Fatal(err)
	}
	if fills != 1 {
		t.Fatalf("evicted key served from cache (fills=%d), want refill", fills)
	}
}

func TestCachePut(t *testing.T) {
	c := newArtifactCache(8)
	c.put("x", "k", "seeded")
	v, err := c.get(context.Background(), "x", "k", func() (any, error) {
		t.Fatal("fill ran for a seeded key")
		return nil, nil
	})
	if err != nil || v != "seeded" {
		t.Fatalf("got %v, %v", v, err)
	}
}
