package server

import (
	"net/http"
	"testing"
)

// TestEstimateTiles: a tiles block routes the request through the tiled
// pipeline — the served moments equal the monolithic linear ones bitwise,
// and per_tile returns the tile breakdown.
func TestEstimateTiles(t *testing.T) {
	s := coreServer(t, Config{})
	mono := decodeResp(t, do(t, s, "POST", "/v1/estimate", histRequest(500)))

	body := histRequest(500)
	body["tiles"] = map[string]any{"t": 3, "per_tile": true}
	rec := do(t, s, "POST", "/v1/estimate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp(t, rec)
	r := resp.Result
	if r.Method != "linear-tiled" {
		t.Errorf("method %q, want linear-tiled", r.Method)
	}
	if r.Mean != mono.Result.Mean || r.Std != mono.Result.Std {
		t.Errorf("tiled moments (%v, %v) != monolithic (%v, %v)",
			r.Mean, r.Std, mono.Result.Mean, mono.Result.Std)
	}
	if r.Tiles != 9 || len(r.TileStats) != 9 {
		t.Errorf("tiles=%d, %d tile stats, want 9 each", r.Tiles, len(r.TileStats))
	}
	gates := 0
	for _, ts := range r.TileStats {
		gates += ts.Gates
	}
	if gates != 500 {
		t.Errorf("tile stats cover %d gates, want 500", gates)
	}
	if resp.Conformance == nil || resp.Conformance.Status != "ok" {
		t.Errorf("conformance %+v, want ok (σ check must accept linear-tiled)", resp.Conformance)
	}

	// Without per_tile the breakdown stays off the wire but the count shows.
	body["tiles"] = map[string]any{"t": 3}
	resp = decodeResp(t, do(t, s, "POST", "/v1/estimate", body))
	if resp.Result.Tiles != 9 || resp.Result.TileStats != nil {
		t.Errorf("tiles=%d tile_stats=%v, want 9 and nil", resp.Result.Tiles, resp.Result.TileStats)
	}
}

// TestEstimateTilesMonteCarlo: tiles reach the Monte-Carlo stage.
func TestEstimateTilesMonteCarlo(t *testing.T) {
	s := coreServer(t, Config{})
	rec := do(t, s, "POST", "/v1/estimate", map[string]any{
		"bench": c17, "mc_samples": 50,
		"tiles": map[string]any{"t": 2},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp(t, rec)
	if resp.MonteCarlo == nil || resp.MonteCarlo.Samples != 50 || !(resp.MonteCarlo.Mean > 0) {
		t.Fatalf("monte carlo %+v", resp.MonteCarlo)
	}
}

// TestEstimateTilesRejected: the tiles validation refusals.
func TestEstimateTilesRejected(t *testing.T) {
	s := coreServer(t, Config{})
	cases := []struct {
		name string
		body map[string]any
	}{
		{"negative t", map[string]any{"bench": c17, "tiles": map[string]any{"t": -1}}},
		{"tiles with polar", map[string]any{"bench": c17, "method": "polar", "tiles": map[string]any{"t": 2}}},
		{"tiles with naive", map[string]any{"bench": c17, "method": "naive", "tiles": map[string]any{"t": 2}}},
		{"tiles with truth", map[string]any{"bench": c17, "truth": true, "tiles": map[string]any{"t": 2}}},
	}
	for _, tc := range cases {
		rec := do(t, s, "POST", "/v1/estimate", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
		}
	}
}
