package server

import (
	"context"
	"sync"
	"sync/atomic"

	"leakest"
	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// Load levels, in increasing order of pressure. Each level past normal
// attaches a tighter EstimateBudget to admitted work, so the estimator's
// existing degradation ladder (O(n²) → O(n) → O(1)) answers overload with
// cheaper — but still typed and conformance-checked — estimates instead of
// queue collapse. Only past the hard queue cap does the server shed.
type loadLevel int

const (
	levelNormal   loadLevel = iota // free worker: no load budget
	levelBusy                      // had to queue: cap pair enumeration
	levelHeavy                     // queue > workers: cap exact-gate work too
	levelOverload                  // queue > 2× workers: constant-time only
)

func (l loadLevel) String() string {
	switch l {
	case levelNormal:
		return "normal"
	case levelBusy:
		return "busy"
	case levelHeavy:
		return "heavy"
	default:
		return "overload"
	}
}

// Soft caps attached by the load levels. They feed leakest.EstimateBudget,
// so the ladder records the usual degradation reasons and telemetry.
const (
	softMaxPairs = int64(1) << 21 // busy: bound O(n²) pair enumeration
	softMaxGates = 2000           // heavy: bound exact per-gate work
)

// errShed is returned by acquire when the hard queue cap is exceeded.
type errShed struct {
	retryAfterS int
}

func (e *errShed) Error() string { return "server overloaded, request shed" }

// admission is the semaphore-bounded worker pool with queue-depth-driven
// load shedding.
type admission struct {
	sem      chan struct{} // one token per worker
	workers  int
	queueCap int // hard cap on concurrently waiting requests

	// waiting counts requests blocked on sem. It is mutex-guarded (not an
	// atomic) because every change must publish the post-change value to the
	// server_queue_depth gauge in the same critical section: with separate
	// count and gauge steps, a goroutine descheduled between them can
	// publish a stale depth after the queue has drained, leaving the gauge
	// stuck nonzero — which the shed path (429) made likely under hammer
	// load.
	mu      sync.Mutex
	waiting int
}

func newAdmission(workers, queueCap int) *admission {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 4 * workers
	}
	a := &admission{sem: make(chan struct{}, workers), workers: workers, queueCap: queueCap}
	return a
}

// acquire admits the request to a worker slot, classifying the load level
// from the queue depth it observed. It returns a release func, the level,
// and the load budget the level imposes. Past the hard queue cap it returns
// *errShed (HTTP 429) immediately; a dead ctx returns the typed context
// error.
func (a *admission) acquire(ctx context.Context) (release func(), lvl loadLevel, depth int, err error) {
	// Fast path: a free worker, no queueing, no load budget.
	select {
	case a.sem <- struct{}{}:
		return a.releaseFunc(), levelNormal, a.queueDepth(), nil
	default:
	}

	w := a.addWaiting(1)
	if w > a.queueCap {
		a.addWaiting(-1)
		telemetry.Inc("server_shed_total")
		return nil, 0, w, &errShed{retryAfterS: a.retryAfter(w)}
	}
	defer a.addWaiting(-1)
	select {
	case a.sem <- struct{}{}:
		// Classify from the depth seen while this request waited: how many
		// were in line with it (itself included) when it won a slot.
		depth = w
		switch {
		case depth > 2*a.workers:
			lvl = levelOverload
		case depth > a.workers:
			lvl = levelHeavy
		default:
			lvl = levelBusy
		}
		return a.releaseFunc(), lvl, depth, nil
	case <-ctx.Done():
		return nil, 0, w, lkerr.FromContext(ctx, "server.admission")
	}
}

// addWaiting adjusts the waiting count and publishes the post-change depth
// to the server_queue_depth gauge inside one critical section, returning the
// new count. Because count and gauge move together, the gauge always ends at
// the true depth — in particular at zero once the queue drains, no matter
// how increments, decrements, and shed rejections interleave.
func (a *admission) addWaiting(delta int) int {
	a.mu.Lock()
	a.waiting += delta
	w := a.waiting
	telemetry.SetGauge("server_queue_depth", float64(w))
	a.mu.Unlock()
	return w
}

func (a *admission) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			<-a.sem
		}
	}
}

// queueDepth reports the number of requests currently waiting for a worker.
func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// retryAfter estimates seconds until the queue likely has room: one second
// per full queue round per worker, capped.
func (a *admission) retryAfter(waiters int) int {
	s := 1 + waiters/a.workers
	if s > 30 {
		s = 30
	}
	return s
}

// loadBudget renders the level's soft caps as an EstimateBudget.
func (l loadLevel) loadBudget() leakest.EstimateBudget {
	switch l {
	case levelBusy:
		return leakest.EstimateBudget{MaxPairs: softMaxPairs}
	case levelHeavy:
		return leakest.EstimateBudget{MaxPairs: softMaxPairs, MaxGates: softMaxGates}
	case levelOverload:
		// MaxGates 1 rules out both exact rungs for any real design: only
		// the O(1) closed-form integral can answer.
		return leakest.EstimateBudget{MaxPairs: 1, MaxGates: 1}
	default:
		return leakest.EstimateBudget{}
	}
}

// tighten combines the request's own budget with the load budget, taking the
// stricter bound field-by-field (zero means unbounded).
func tighten(req, load leakest.EstimateBudget) leakest.EstimateBudget {
	out := req
	if load.MaxGates != 0 && (out.MaxGates == 0 || load.MaxGates < out.MaxGates) {
		out.MaxGates = load.MaxGates
	}
	if load.MaxPairs != 0 && (out.MaxPairs == 0 || load.MaxPairs < out.MaxPairs) {
		out.MaxPairs = load.MaxPairs
	}
	if load.Timeout != 0 && (out.Timeout == 0 || load.Timeout < out.Timeout) {
		out.Timeout = load.Timeout
	}
	return out
}
