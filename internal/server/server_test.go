package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/spatial"
	"leakest/internal/telemetry"
)

// c17 is the classic 6-gate ISCAS85 benchmark, small enough that even the
// O(n²) truth rung is instant.
const c17 = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// coreServer builds a test server seeded with the shared fast-test library
// so no characterization runs inside the test.
func coreServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	s.cache.put("library", processKey(spatial.Default90nm()), lib)
	t.Cleanup(s.baseCancel)
	return s
}

// testHist returns a histogram request body over cells the shared library
// characterizes.
func testHist() map[string]float64 {
	return map[string]float64{"NAND2_X1": 3, "INV_X1": 2, "NOR2_X1": 1}
}

// do runs one request against the server's handler.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else if raw, ok := body.(string); ok {
		rd = bytes.NewReader([]byte(raw))
	} else {
		js, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(js)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeResp(t *testing.T, rec *httptest.ResponseRecorder) *EstimateResponse {
	t.Helper()
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body %q: %v", rec.Body.String(), err)
	}
	return &resp
}

func histRequest(n int) map[string]any {
	return map[string]any{
		"design": map[string]any{"hist": testHist(), "n": n, "w_um": 1000.0, "h_um": 1000.0},
	}
}

func TestEstimateHistogram(t *testing.T) {
	s := coreServer(t, Config{})
	rec := do(t, s, "POST", "/v1/estimate", histRequest(500))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("missing X-Request-Id header")
	}
	resp := decodeResp(t, rec)
	if resp.RequestID == "" {
		t.Error("missing request_id in body")
	}
	r := resp.Result
	if !(r.Mean > 0) || !(r.Std > 0) || math.IsInf(r.Mean, 0) || math.IsInf(r.Std, 0) {
		t.Fatalf("non-finite moments: mean=%v std=%v", r.Mean, r.Std)
	}
	if r.Method != "linear" {
		t.Errorf("method %q, want linear for a 500-gate auto request", r.Method)
	}
	if r.Degraded {
		t.Errorf("unloaded request degraded: %s", r.DegradeReason)
	}
	if resp.Admission.Level != "normal" || resp.Admission.BudgetImposed {
		t.Errorf("admission %+v, want normal with no budget", resp.Admission)
	}
	if resp.Conformance == nil || resp.Conformance.Status != "ok" {
		t.Errorf("conformance %+v, want ok", resp.Conformance)
	}
	if len(r.Timings) == 0 {
		t.Error("no stage timings in response")
	}
}

func TestEstimateBenchTruth(t *testing.T) {
	s := coreServer(t, Config{})
	rec := do(t, s, "POST", "/v1/estimate", map[string]any{"bench": c17, "truth": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp(t, rec)
	if resp.Result.Method != "true-n2" {
		t.Errorf("method %q, want true-n2", resp.Result.Method)
	}
	if !(resp.Result.Mean > 0 && resp.Result.Std > 0) {
		t.Fatalf("bad moments %+v", resp.Result)
	}
	if resp.Conformance == nil || resp.Conformance.Status != "ok" {
		t.Errorf("conformance %+v, want ok", resp.Conformance)
	}
}

func TestEstimateBenchMonteCarloAndEmbeddingCache(t *testing.T) {
	s := coreServer(t, Config{})
	body := map[string]any{"bench": c17, "mc_samples": 100, "sampler": "fft"}

	r := telemetry.Enable()
	missKey := telemetry.Label("server_cache_misses_total", "artifact", "embedding")
	hitKey := telemetry.Label("server_cache_hits_total", "artifact", "embedding")
	m0, h0 := r.Counter(missKey).Value(), r.Counter(hitKey).Value()

	for i := 0; i < 2; i++ {
		rec := do(t, s, "POST", "/v1/estimate", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		resp := decodeResp(t, rec)
		if resp.MonteCarlo == nil || resp.MonteCarlo.Samples != 100 {
			t.Fatalf("run %d: monte carlo %+v", i, resp.MonteCarlo)
		}
		if !(resp.MonteCarlo.Mean > 0) {
			t.Fatalf("run %d: bad MC mean", i)
		}
	}
	if d := r.Counter(missKey).Value() - m0; d != 1 {
		t.Errorf("embedding misses += %d, want 1 (one build)", d)
	}
	if d := r.Counter(hitKey).Value() - h0; d != 1 {
		t.Errorf("embedding hits += %d, want 1 (second request reuses)", d)
	}
}

func TestEstimateRejectsBadRequests(t *testing.T) {
	s := coreServer(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"empty", map[string]any{}},
		{"both shapes", map[string]any{"bench": c17, "design": map[string]any{"hist": testHist(), "n": 10, "w_um": 1.0, "h_um": 1.0}}},
		{"bad method", map[string]any{"bench": c17, "method": "quantum"}},
		{"bad sampler", map[string]any{"bench": c17, "sampler": "warp"}},
		{"truth without bench", map[string]any{"design": map[string]any{"hist": testHist(), "n": 10, "w_um": 1.0, "h_um": 1.0}, "truth": true}},
		{"signal prob out of range", map[string]any{"bench": c17, "signal_prob": 1.5}},
		{"not json", "]["},
	}
	for _, tc := range cases {
		rec := do(t, s, "POST", "/v1/estimate", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
		}
		var eb ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, rec.Body.String())
		}
	}
}

func TestLibraryCacheSingleflightAcrossRequests(t *testing.T) {
	// Fresh unseeded server: the first wave of requests must characterize
	// the library exactly once, with every other request riding the same
	// fill.
	s := New(Config{Cells: cells.CoreSubset(), CharMCSamples: 300})
	t.Cleanup(s.baseCancel)

	r := telemetry.Enable()
	missKey := telemetry.Label("server_cache_misses_total", "artifact", "library")
	hitKey := telemetry.Label("server_cache_hits_total", "artifact", "library")
	m0, h0 := r.Counter(missKey).Value(), r.Counter(hitKey).Value()

	const waves = 4
	codes := make(chan int, waves)
	for i := 0; i < waves; i++ {
		go func() {
			rec := do(t, s, "POST", "/v1/estimate", histRequest(200))
			codes <- rec.Code
		}()
	}
	for i := 0; i < waves; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("concurrent request returned %d", code)
		}
	}
	if d := r.Counter(missKey).Value() - m0; d != 1 {
		t.Errorf("library characterized %d times for %d concurrent requests, want 1", d, waves)
	}
	if d := r.Counter(hitKey).Value() - h0; d != waves-1 {
		t.Errorf("library cache hits += %d, want %d", d, waves-1)
	}
}

func TestHealthz(t *testing.T) {
	s := coreServer(t, Config{})
	if rec := do(t, s, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz %d", rec.Code)
	}
}

// TestPrometheusGoldenServerSeries drives every metric-producing path with
// a deterministic stub executor, then asserts the server's series on
// /metrics — names, label sets, and TYPE headers.
func TestPrometheusGoldenServerSeries(t *testing.T) {
	s := coreServer(t, Config{Workers: 1, QueueCap: 1})
	block := make(chan struct{})
	s.exec = func(ctx context.Context, req *EstimateRequest, id string, lvl loadLevel, depth int) (*EstimateResponse, error) {
		<-block
		return &EstimateResponse{Admission: AdmissionBody{Level: lvl.String(), QueueDepth: depth}}, nil
	}

	done := make(chan int, 2)
	post := func() {
		rec := do(t, s, "POST", "/v1/estimate", histRequest(10))
		done <- rec.Code
	}
	go post() // occupies the single worker
	waitFor(t, "worker busy", func() bool { return len(s.adm.sem) == 1 })
	go post() // queues (depth 1 = cap)
	waitFor(t, "one waiter", func() bool { return s.adm.queueDepth() == 1 })
	rec := do(t, s, "POST", "/v1/estimate", histRequest(10)) // shed
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	close(block)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	}

	mrec := do(t, s, "GET", "/metrics", nil)
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mrec.Code)
	}
	body := mrec.Body.String()
	for _, want := range []string{
		`# TYPE server_requests_total counter`,
		`server_requests_total{code="200"}`,
		`server_requests_total{code="429"}`,
		`# TYPE server_queue_depth gauge`,
		"server_queue_depth 0\n",
		`# TYPE server_shed_total counter`,
		`server_shed_total`,
		`# TYPE server_cache_hits_total counter`,
		`server_cache_hits_total{artifact=`,
		`# TYPE server_request_duration_seconds histogram`,
		`server_request_duration_seconds_bucket`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
