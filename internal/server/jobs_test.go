package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"leakest/internal/fault"
	"leakest/internal/telemetry"
)

func decodeJob(t *testing.T, rec *httptest.ResponseRecorder) *JobBody {
	t.Helper()
	var jb JobBody
	if err := json.Unmarshal(rec.Body.Bytes(), &jb); err != nil {
		t.Fatalf("bad job body %q: %v", rec.Body.String(), err)
	}
	return &jb
}

// pollJob polls GET /v1/jobs/{id} until pred holds (2 s deadline).
func pollJob(t *testing.T, s *Server, id string, what string, pred func(*JobBody) bool) *JobBody {
	t.Helper()
	var last *JobBody
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, s, "GET", "/v1/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job: %d: %s", rec.Code, rec.Body.String())
		}
		last = decodeJob(t, rec)
		if pred(last) {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for job %s (%s); last state %+v", id, what, last)
	return nil
}

func terminalState(j *JobBody) bool {
	return j.State == stateDone || j.State == stateFailed || j.State == stateCanceled
}

func TestJobLifecycle(t *testing.T) {
	s := coreServer(t, Config{})
	rec := do(t, s, "POST", "/v1/jobs", histRequest(300))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", rec.Code, rec.Body.String())
	}
	jb := decodeJob(t, rec)
	if jb.ID == "" || (jb.State != stateQueued && jb.State != stateRunning) {
		t.Fatalf("fresh job %+v", jb)
	}
	final := pollJob(t, s, jb.ID, "completion", terminalState)
	if final.State != stateDone {
		t.Fatalf("job ended %s (%+v), want done", final.State, final.Error)
	}
	if final.Result == nil || !(final.Result.Result.Mean > 0) {
		t.Fatalf("done job without result: %+v", final)
	}
	if final.Result.RequestID != jb.ID {
		t.Errorf("result request_id %q, want the job id %q", final.Result.RequestID, jb.ID)
	}
}

func TestJobNotFound(t *testing.T) {
	s := coreServer(t, Config{})
	if rec := do(t, s, "GET", "/v1/jobs/j-nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/jobs/j-nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d", rec.Code)
	}
}

func TestJobCancel(t *testing.T) {
	s := coreServer(t, Config{})
	defer fault.Reset()
	// ~1.2 s of injected stall in the truth rung gives DELETE a window.
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 200 * time.Millisecond})

	rec := do(t, s, "POST", "/v1/jobs", map[string]any{"bench": c17, "truth": true})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", rec.Code, rec.Body.String())
	}
	jb := decodeJob(t, rec)
	pollJob(t, s, jb.ID, "running", func(j *JobBody) bool { return j.State == stateRunning })

	if rec := do(t, s, "DELETE", "/v1/jobs/"+jb.ID, nil); rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d", rec.Code)
	}
	final := pollJob(t, s, jb.ID, "cancellation", terminalState)
	if final.State != stateCanceled {
		t.Fatalf("job ended %s, want canceled", final.State)
	}
	if final.Error == nil || final.Error.Code != "canceled" {
		t.Fatalf("canceled job error %+v, want code canceled", final.Error)
	}
}

func TestJobProgressSnapshots(t *testing.T) {
	s := coreServer(t, Config{})
	release := make(chan struct{})
	s.exec = func(ctx context.Context, req *EstimateRequest, id string, lvl loadLevel, depth int) (*EstimateResponse, error) {
		rep := telemetry.StartProgress(ctx, "stub.stage", 4)
		rep.Tick(1) // the first tick always passes the rate limit
		<-release
		rep.Done(4)
		return &EstimateResponse{}, nil
	}
	rec := do(t, s, "POST", "/v1/jobs", histRequest(10))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	jb := decodeJob(t, rec)
	seen := pollJob(t, s, jb.ID, "a progress snapshot", func(j *JobBody) bool { return j.Progress != nil })
	if seen.Progress.Stage != "stub.stage" || seen.Progress.Done != 1 || seen.Progress.Total != 4 {
		t.Errorf("progress %+v, want stage stub.stage 1/4", seen.Progress)
	}
	close(release)
	if final := pollJob(t, s, jb.ID, "completion", terminalState); final.State != stateDone {
		t.Fatalf("job ended %s, want done", final.State)
	}
}

// TestJobExecFaultInjection proves an injected panic or failure at the
// job-execution site lands the job in the failed state with a typed error —
// and the worker pool survives to run the next job.
func TestJobExecFaultInjection(t *testing.T) {
	s := coreServer(t, Config{Workers: 1})
	defer fault.Reset()

	for _, kind := range []fault.Kind{fault.Error, fault.Panic} {
		fault.Reset()
		fault.Arm(fault.SiteJobExec, fault.Action{Kind: kind})
		rec := do(t, s, "POST", "/v1/jobs", histRequest(100))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit under fault %v: %d", kind, rec.Code)
		}
		jb := decodeJob(t, rec)
		final := pollJob(t, s, jb.ID, "failure", terminalState)
		if final.State != stateFailed {
			t.Fatalf("fault %v: job ended %s, want failed", kind, final.State)
		}
		if final.Error == nil || final.Error.Code != "numerical" {
			t.Fatalf("fault %v: error %+v, want typed numerical", kind, final.Error)
		}
	}

	// Pool not wedged: with the fault cleared the same submission succeeds.
	fault.Reset()
	rec := do(t, s, "POST", "/v1/jobs", histRequest(100))
	jb := decodeJob(t, rec)
	if final := pollJob(t, s, jb.ID, "recovery", terminalState); final.State != stateDone {
		t.Fatalf("after clearing faults: job ended %s, want done", final.State)
	}
}

func TestJobLiveCapSheds(t *testing.T) {
	s := coreServer(t, Config{Workers: 1, MaxJobs: 2})
	block := make(chan struct{})
	defer close(block)
	s.exec = func(ctx context.Context, req *EstimateRequest, id string, lvl loadLevel, depth int) (*EstimateResponse, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &EstimateResponse{}, nil
	}
	for i := 0; i < 2; i++ {
		if rec := do(t, s, "POST", "/v1/jobs", histRequest(10)); rec.Code != http.StatusAccepted {
			t.Fatalf("job %d: %d", i, rec.Code)
		}
	}
	rec := do(t, s, "POST", "/v1/jobs", histRequest(10))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third live job: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("job shed without Retry-After")
	}
}
