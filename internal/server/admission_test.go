package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"leakest"
	"leakest/internal/telemetry"
)

// waitFor polls cond up to 2 s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionLevelsAndShed drives the controller through every level:
// with one worker held, successive waiters are classified busy → heavy →
// overload by the depth they entered at, and the first waiter past the hard
// queue cap is shed immediately.
func TestAdmissionLevelsAndShed(t *testing.T) {
	a := newAdmission(1, 3)

	// Fast path: a free worker is admission at the normal level.
	rel0, lvl0, _, err := a.acquire(context.Background())
	if err != nil || lvl0 != levelNormal {
		t.Fatalf("fast path: lvl=%v err=%v, want normal", lvl0, err)
	}

	type admitted struct {
		lvl loadLevel
		err error
	}
	results := make([]chan admitted, 3)
	releases := make([]func(), 3)
	for i := range results {
		results[i] = make(chan admitted, 1)
		i := i
		go func() {
			rel, lvl, _, err := a.acquire(context.Background())
			releases[i] = rel
			results[i] <- admitted{lvl, err}
		}()
		waitFor(t, "queue depth", func() bool { return a.queueDepth() == i+1 })
	}

	// Queue is at the hard cap (3): the next request is shed, not queued.
	_, _, _, err = a.acquire(context.Background())
	var shed *errShed
	if !errors.As(err, &shed) {
		t.Fatalf("past queue cap: got %v, want errShed", err)
	}
	if shed.retryAfterS < 1 {
		t.Fatalf("shed with Retry-After %d, want ≥ 1", shed.retryAfterS)
	}

	// Release the worker; waiters drain in FIFO-ish order, each carrying
	// the level of the depth it entered at: 1 → busy, 2 → heavy (> workers),
	// 3 → overload (> 2×workers).
	want := []loadLevel{levelBusy, levelHeavy, levelOverload}
	rel0()
	seen := make(map[loadLevel]int)
	for i := range results {
		got := <-results[i]
		if got.err != nil {
			t.Fatalf("waiter %d: %v", i, got.err)
		}
		seen[got.lvl]++
		releases[i]()
	}
	for _, lvl := range want {
		if seen[lvl] != 1 {
			t.Fatalf("admitted levels %v, want exactly one each of %v", seen, want)
		}
	}
}

// TestAdmissionQueueGaugeZeroAfterHammer hammers a tiny pool from many
// goroutines — shed rejections, canceled waiters, and normal completions all
// interleaving — and asserts the server_queue_depth gauge ends at exactly
// zero. Regression for the stale-gauge race: count and gauge used to be
// updated in separate steps, so a goroutine descheduled between them (most
// likely on the 429 shed path) could publish a stale nonzero depth last.
func TestAdmissionQueueGaugeZeroAfterHammer(t *testing.T) {
	r := telemetry.Enable()
	a := newAdmission(2, 4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				if i%7 == 3 {
					// A mix of already-dead contexts exercises the
					// canceled-waiter decrement path.
					c, cancel := context.WithCancel(ctx)
					cancel()
					ctx = c
				}
				release, _, _, err := a.acquire(ctx)
				if err == nil {
					if g%2 == 0 {
						runtime.Gosched()
					}
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	if d := a.queueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after hammer, want 0", d)
	}
	if v := r.Gauge("server_queue_depth").Value(); v != 0 {
		t.Fatalf("server_queue_depth gauge = %v after hammer, want 0", v)
	}
}

func TestAdmissionCanceledWaiter(t *testing.T) {
	a := newAdmission(1, 8)
	rel, _, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, _, err = a.acquire(ctx)
	if err == nil {
		t.Fatal("expected a deadline error for the blocked waiter")
	}
	waitFor(t, "queue to empty", func() bool { return a.queueDepth() == 0 })
}

func TestLoadBudgets(t *testing.T) {
	if b := levelNormal.loadBudget(); b != (leakest.EstimateBudget{}) {
		t.Fatalf("normal level imposes %+v, want none", b)
	}
	if b := levelBusy.loadBudget(); b.MaxPairs != softMaxPairs || b.MaxGates != 0 {
		t.Fatalf("busy budget %+v", b)
	}
	if b := levelHeavy.loadBudget(); b.MaxGates != softMaxGates {
		t.Fatalf("heavy budget %+v", b)
	}
	if b := levelOverload.loadBudget(); b.MaxGates != 1 {
		t.Fatalf("overload budget %+v, want the O(1)-only bound", b)
	}
}

func TestTighten(t *testing.T) {
	req := leakest.EstimateBudget{MaxGates: 100, Timeout: time.Second}
	load := leakest.EstimateBudget{MaxGates: 2000, MaxPairs: 50}
	got := tighten(req, load)
	if got.MaxGates != 100 || got.MaxPairs != 50 || got.Timeout != time.Second {
		t.Fatalf("tighten = %+v, want the stricter bound per field", got)
	}
	if got := tighten(leakest.EstimateBudget{}, leakest.EstimateBudget{}); got != (leakest.EstimateBudget{}) {
		t.Fatalf("tighten of empty budgets = %+v, want empty", got)
	}
}
