package server

import (
	"context"
	"sync"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// artifactCache is a content-addressed cache with singleflight semantics:
// concurrent requests for the same key share one fill instead of duplicating
// the (expensive) characterization or FFT-embedding work. Successful fills
// are retained up to a completed-entry cap; failed fills are forgotten so
// the next request retries instead of serving a cached error.
//
// Artifacts cached by the server:
//
//	library   — characterized cell libraries, keyed by the process hash
//	embedding — FFT torus embeddings, keyed by (process, grid)
//	netlist   — parsed+placed .bench designs, keyed by (content hash, name, seed)
type artifactCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	order   []string // completed keys, oldest first, for eviction
	max     int      // cap on completed entries (0 = unbounded)
}

type cacheEntry struct {
	done chan struct{} // closed when the fill finishes
	val  any
	err  error
}

func newArtifactCache(max int) *artifactCache {
	return &artifactCache{entries: make(map[string]*cacheEntry), max: max}
}

// get returns the cached value for (artifact, key), filling it with fill on
// a miss. Concurrent callers with the same key block on the single in-flight
// fill. The fill runs on the caller's goroutine but is NOT bound to the
// caller's context: a waiter whose ctx expires gets the ctx error while the
// fill completes for everyone else. Panics inside fill surface as typed
// Numerical errors, and a failed fill is evicted immediately so a transient
// fault does not poison the cache.
func (c *artifactCache) get(ctx context.Context, artifact, key string, fill func() (any, error)) (any, error) {
	full := artifact + "\x00" + key
	c.mu.Lock()
	if e, ok := c.entries[full]; ok {
		c.mu.Unlock()
		telemetry.Inc(telemetry.Label("server_cache_hits_total", "artifact", artifact))
		telemetry.SpanAttrStr(ctx, "cache."+artifact, "hit")
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			return nil, lkerr.FromContext(ctx, "server.cache."+artifact)
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[full] = e
	c.mu.Unlock()
	telemetry.Inc(telemetry.Label("server_cache_misses_total", "artifact", artifact))
	telemetry.SpanAttrStr(ctx, "cache."+artifact, "miss")

	e.val, e.err = c.fill(artifact, fill)

	c.mu.Lock()
	if e.err != nil {
		// Forget failed fills: the next request retries from scratch.
		delete(c.entries, full)
	} else {
		c.order = append(c.order, full)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// fill runs the fill function under panic recovery and the cache-fill fault
// site (tests inject failures and panics here to prove waiters never wedge).
func (c *artifactCache) fill(artifact string, fn func() (any, error)) (val any, err error) {
	defer lkerr.RecoverInto(&err, "server.cache."+artifact)
	fault.Hit(fault.SiteCacheFill)
	if ferr := fault.Failure(fault.SiteCacheFill); ferr != nil {
		return nil, lkerr.Wrap(lkerr.Numerical, "server.cache."+artifact, ferr)
	}
	return fn()
}

// evictLocked drops the oldest completed entries beyond the cap. In-flight
// entries are never evicted (they are not in order yet).
func (c *artifactCache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// put inserts a completed entry directly — cache warm-up (and test
// seeding) without paying a fill. An existing entry wins.
func (c *artifactCache) put(artifact, key string, val any) {
	full := artifact + "\x00" + key
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[full]; ok {
		return
	}
	e := &cacheEntry{done: make(chan struct{}), val: val}
	close(e.done)
	c.entries[full] = e
	c.order = append(c.order, full)
	c.evictLocked()
}

// len reports the number of completed cached entries (tests only).
func (c *artifactCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}
