package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"leakest/internal/fault"
	"leakest/internal/telemetry"
)

// TestOverloadDegradesButStaysCorrect is the synthetic-overload acceptance
// test: with a single worker held busy by a slow truth request, queued
// requests are admitted at escalating load levels whose budgets push them
// down the degradation ladder. Every response must still be served (HTTP
// 200), carry the method-independent mean, and record why it was degraded;
// only the request past the hard queue cap is shed with 429 + Retry-After.
func TestOverloadDegradesButStaysCorrect(t *testing.T) {
	s := coreServer(t, Config{Workers: 1, QueueCap: 4})
	defer fault.Reset()

	// n=5000 sits above the heavy level's MaxGates soft cap (2000), so the
	// O(n) rung is ruled out under heavy/overload admission and the O(1)
	// integral serves.
	body := histRequest(5000)

	// Unloaded baseline: normal admission, no budget, no degradation.
	rec := do(t, s, "POST", "/v1/estimate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline: %d: %s", rec.Code, rec.Body.String())
	}
	baseline := decodeResp(t, rec)
	if baseline.Result.Degraded || baseline.Admission.Level != "normal" {
		t.Fatalf("baseline not clean: %+v", baseline)
	}

	// The blocker: a truth request over c17 with a 200 ms injected stall per
	// pair row (6 gates → ~1.2 s) holds the single worker. The queued
	// histogram requests never touch the truth path, so the fault is
	// invisible to them.
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 200 * time.Millisecond})
	blockerDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		blockerDone <- do(t, s, "POST", "/v1/estimate", map[string]any{"bench": c17, "truth": true})
	}()
	waitFor(t, "blocker to hold the worker", func() bool { return fault.Hits(fault.SiteTruthRow) >= 1 })

	// Four requests join the queue one at a time, entering at depths
	// 1, 2, 3, 4 → levels busy, heavy, overload, overload.
	const queued = 4
	results := make(chan *httptest.ResponseRecorder, queued)
	for i := 0; i < queued; i++ {
		go func() { results <- do(t, s, "POST", "/v1/estimate", body) }()
		depth := i + 1
		waitFor(t, "queue depth", func() bool { return s.adm.queueDepth() >= depth })
	}

	// The fifth concurrent request exceeds the hard cap: shed, not queued.
	r := telemetry.Enable()
	shed0 := r.Counter("server_shed_total").Value()
	rec = do(t, s, "POST", "/v1/estimate", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("past queue cap: %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if d := r.Counter("server_shed_total").Value() - shed0; d != 1 {
		t.Errorf("server_shed_total += %d, want 1", d)
	}

	// Collect the queued responses: all served, levels escalate, degraded
	// responses stay numerically correct (the mean is method-independent).
	levels := map[string]int{}
	for i := 0; i < queued; i++ {
		rec := <-results
		if rec.Code != http.StatusOK {
			t.Fatalf("queued request: %d: %s", rec.Code, rec.Body.String())
		}
		resp := decodeResp(t, rec)
		lvl := resp.Admission.Level
		levels[lvl]++
		if !resp.Admission.BudgetImposed {
			t.Errorf("queued request admitted at %q without a load budget", lvl)
		}
		if dev := math.Abs(resp.Result.Mean-baseline.Result.Mean) / baseline.Result.Mean; dev > 1e-6 {
			t.Errorf("level %s: mean deviates %.3g from baseline — degradation changed the answer", lvl, dev)
		}
		switch lvl {
		case "busy":
			// MaxPairs only: the O(n) rung is still admissible.
			if resp.Result.Degraded {
				t.Errorf("busy-level request degraded: %s", resp.Result.DegradeReason)
			}
		case "heavy", "overload":
			if !resp.Result.Degraded {
				t.Errorf("%s-level request not degraded", lvl)
			}
			if m := resp.Result.Method; m != "integral-2d" && m != "polar-1d" {
				t.Errorf("%s-level served %q, want a constant-time method", lvl, m)
			}
			if !strings.Contains(resp.Result.DegradeReason, "MaxGates") {
				t.Errorf("%s-level degrade reason %q does not name the budget", lvl, resp.Result.DegradeReason)
			}
		default:
			t.Errorf("unexpected admission level %q", lvl)
		}
		if resp.Conformance == nil || resp.Conformance.Status != "ok" {
			t.Errorf("%s-level conformance %+v", lvl, resp.Conformance)
		}
	}
	if levels["busy"] != 1 || levels["heavy"] != 1 || levels["overload"] != 2 {
		t.Errorf("admission levels %v, want busy:1 heavy:1 overload:2", levels)
	}

	// The blocker itself finishes untouched: normal admission, exact truth.
	brec := <-blockerDone
	if brec.Code != http.StatusOK {
		t.Fatalf("blocker: %d: %s", brec.Code, brec.Body.String())
	}
	bresp := decodeResp(t, brec)
	if bresp.Result.Method != "true-n2" || bresp.Result.Degraded {
		t.Errorf("blocker result %+v, want undegraded true-n2", bresp.Result)
	}
}
