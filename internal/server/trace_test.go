package server

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"leakest/internal/telemetry"
)

// spanByStage returns the first span with the given stage name, if any.
func spanByStage(snap *telemetry.TraceSnapshot, stage string) (telemetry.SpanSnapshot, bool) {
	for _, sp := range snap.Spans {
		if sp.Stage == stage {
			return sp, true
		}
	}
	return telemetry.SpanSnapshot{}, false
}

// attrValue returns the value of key among attrs, nil when absent.
func attrValue(attrs []telemetry.Attr, key string) any {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// TestDegradedRequestTraceRetrievable is the tracing acceptance test: a
// request degraded by its budget returns a trace block inline, and the same
// trace — span tree, degradation attributes, "degraded" outcome — stays
// retrievable from the flight recorder at /debug/traces/{id}, listed as
// notable, and exportable in Chrome format.
func TestDegradedRequestTraceRetrievable(t *testing.T) {
	s := coreServer(t, Config{})
	body := histRequest(500)
	body["budget"] = map[string]any{"max_gates": 100}
	rec := do(t, s, "POST", "/v1/estimate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp(t, rec)
	if !resp.Result.Degraded {
		t.Fatalf("request not degraded: %+v", resp.Result)
	}
	if resp.Trace == nil {
		t.Fatal("response carries no trace block")
	}
	if resp.Trace.ID != resp.RequestID {
		t.Errorf("trace ID %q != request ID %q", resp.Trace.ID, resp.RequestID)
	}
	if resp.Trace.Outcome != "degraded" {
		t.Errorf("trace outcome = %q, want degraded", resp.Trace.Outcome)
	}
	root, ok := spanByStage(resp.Trace, "server.request")
	if !ok || root.Parent != 0 {
		t.Fatalf("no top-level server.request span: %+v", resp.Trace.Spans)
	}
	est, ok := spanByStage(resp.Trace, "estimate")
	if !ok {
		t.Fatalf("no estimate span: %+v", resp.Trace.Spans)
	}
	if est.Parent != root.ID {
		t.Errorf("estimate span parent = %d, want server.request (%d)", est.Parent, root.ID)
	}
	if attrValue(est.Attrs, "degraded") != true {
		t.Errorf("estimate span lacks degraded=true: %+v", est.Attrs)
	}
	// The degradation ladder records each rung it rejected as a
	// "degraded.<rung>" attribute on the enclosing span.
	rung := false
	for _, sp := range resp.Trace.Spans {
		for _, a := range sp.Attrs {
			if strings.HasPrefix(a.Key, "degraded.") {
				rung = true
			}
		}
	}
	if !rung {
		t.Errorf("no degradation-rung attribute in the span tree: %+v", resp.Trace.Spans)
	}

	// The same trace must be retrievable from the flight recorder.
	rec = do(t, s, "GET", "/debug/traces/"+resp.RequestID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d: %s", resp.RequestID, rec.Code, rec.Body.String())
	}
	var stored telemetry.TraceSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &stored); err != nil {
		t.Fatal(err)
	}
	if stored.ID != resp.RequestID || stored.Outcome != "degraded" || len(stored.Spans) != len(resp.Trace.Spans) {
		t.Errorf("recorded trace differs: %+v", stored)
	}

	// Degraded → notable in the listing.
	rec = do(t, s, "GET", "/debug/traces", nil)
	var listing struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range listing.Traces {
		if tr.ID == resp.RequestID {
			found = true
			if !tr.Notable {
				t.Errorf("degraded trace not marked notable: %+v", tr)
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/traces listing", resp.RequestID)
	}

	// Chrome export parses as a JSON event array.
	rec = do(t, s, "GET", "/debug/traces/"+resp.RequestID+"?format=chrome", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("chrome export = %d", rec.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(events) < 2 {
		t.Errorf("chrome export has %d events, want root + spans", len(events))
	}
}

// TestMCTraceCarriesEmbeddingHealth asserts an FFT-sampled Monte-Carlo
// request records the embedding's numerical-health facts — sampler choice,
// torus dimensions, clamp bias — on the chipmc.run span.
func TestMCTraceCarriesEmbeddingHealth(t *testing.T) {
	s := coreServer(t, Config{})
	rec := do(t, s, "POST", "/v1/estimate", map[string]any{
		"bench": c17, "mc_samples": 16, "sampler": "fft",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp(t, rec)
	if resp.Trace == nil {
		t.Fatal("response carries no trace block")
	}
	mc, ok := spanByStage(resp.Trace, "chipmc.run")
	if !ok {
		t.Fatalf("no chipmc.run span: %+v", resp.Trace.Spans)
	}
	if got := attrValue(mc.Attrs, "chipmc.sampler"); got != "fft" {
		t.Errorf("chipmc.sampler = %v, want fft", got)
	}
	torus, _ := attrValue(mc.Attrs, "chipmc.torus").(string)
	if !regexp.MustCompile(`^\d+x\d+$`).MatchString(torus) {
		t.Errorf("chipmc.torus = %q, want RxC", torus)
	}
	if attrValue(mc.Attrs, "chipmc.clamp_bias") == nil {
		t.Errorf("chipmc.clamp_bias missing: %+v", mc.Attrs)
	}
	if attrValue(mc.Attrs, "chipmc.trials") == nil || attrValue(mc.Attrs, "chipmc.workers") == nil {
		t.Errorf("trial/worker attrs missing: %+v", mc.Attrs)
	}
}

// TestRequestHistogramExemplarResolves asserts the
// server_request_duration_seconds histogram carries an exemplar trace ID
// that resolves against the flight recorder — the /metrics → /debug/traces
// debugging path of the README walkthrough.
func TestRequestHistogramExemplarResolves(t *testing.T) {
	r := telemetry.Enable()
	s := coreServer(t, Config{})
	rec := do(t, s, "POST", "/v1/estimate", histRequest(200))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	id := decodeResp(t, rec).RequestID

	var sb strings.Builder
	r.WritePrometheus(&sb)
	prom := sb.String()
	re := regexp.MustCompile(`server_request_duration_seconds_bucket\{[^}]*\} \d+ # \{trace_id="([^"]+)"\}`)
	m := re.FindStringSubmatch(prom)
	if m == nil {
		t.Fatalf("no exemplar on server_request_duration_seconds:\n%s", prom)
	}
	// The exemplar is last-writer-wins per bucket; our request just ran, so
	// its ID must be among the exemplars and must resolve in the recorder.
	// (Older exemplars may point at traces already churned out of the ring.)
	ids := map[string]bool{}
	for _, g := range re.FindAllStringSubmatch(prom, -1) {
		ids[g[1]] = true
	}
	if !ids[id] {
		t.Errorf("request %s not among exemplars %v", id, ids)
	}
	if _, ok := telemetry.Recorder().Get(id); !ok {
		t.Errorf("exemplar %s does not resolve against the flight recorder", id)
	}
}
