package server

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"leakest"
	"leakest/internal/lkerr"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// EstimateRequest is the body of POST /v1/estimate and POST /v1/jobs: a
// design described either early (histogram + dimensions) or late (a placed
// .bench netlist), an optional process override, and optional knobs for
// method, budget, Monte Carlo, and deadline.
type EstimateRequest struct {
	// Process overrides the default 90 nm variation model. The JSON shape
	// matches the characterized-library format (l_nominal_um, sigma_d2d_um,
	// sigma_wid_um, sigma_vt_v, wid_corr{type,lambda,r}).
	Process *spatial.Process `json:"process,omitempty"`
	// Design gives the early-mode characteristics; exactly one of Design
	// and Bench must be set.
	Design *DesignRequest `json:"design,omitempty"`
	// Bench is an ISCAS85 .bench netlist (late mode). The placement is the
	// deterministic AutoPlace at Seed.
	Bench string `json:"bench,omitempty"`
	// Name labels a Bench submission (affects the deterministic placement
	// stream and the artifact-cache key). Default "design".
	Name string `json:"name,omitempty"`
	// Seed is the placement seed for Bench submissions (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Method picks the estimator (auto|linear|integral|polar|naive). It is
	// honored verbatim only when no budget — the request's or the admission
	// controller's — is in force; under a budget the degradation ladder
	// decides.
	Method string `json:"method,omitempty"`
	// Truth starts the ladder at the O(n²) true-leakage rung (Bench only).
	Truth bool `json:"truth,omitempty"`
	// MCSamples additionally runs a full-chip Monte Carlo (Bench only).
	MCSamples int `json:"mc_samples,omitempty"`
	// Sampler selects the MC field sampler (auto|dense|fft|qmc; default
	// auto). "qmc" draws trials from a scrambled-Sobol sequence — same
	// distribution, fewer trials to a given standard error.
	Sampler string `json:"sampler,omitempty"`
	// MCBatch is the number of trial fields the qmc sampler batches per
	// FFT pass (0 = default; ignored by the other samplers; results do not
	// depend on it).
	MCBatch int `json:"mc_batch,omitempty"`
	// Tail requests distribution-tail statistics from the Monte-Carlo run
	// (requires Bench and MCSamples).
	Tail *TailRequest `json:"tail,omitempty"`
	// Tiles activates the §16 tiled pipeline: the die is partitioned T×T,
	// estimated per tile, and combined exactly through the inter-tile
	// covariance. Valid with the linear, auto, and integral methods (the
	// tiled linear result is bitwise identical to the monolithic one) and
	// with mc_samples; incompatible with polar, naive, and truth.
	Tiles *TilesRequest `json:"tiles,omitempty"`
	// SignalProb applies to all inputs; omitted selects the
	// leakage-maximizing (conservative) setting.
	SignalProb *float64 `json:"signal_prob,omitempty"`
	// Vt applies the random-Vt mean correction (default true).
	Vt *bool `json:"vt,omitempty"`
	// TimeoutMS bounds the whole request; 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Budget tightens the work bounds below whatever the admission
	// controller imposes.
	Budget *BudgetRequest `json:"budget,omitempty"`
}

// DesignRequest is the early-mode design description.
type DesignRequest struct {
	// Hist maps cell names to usage weights.
	Hist map[string]float64 `json:"hist"`
	// N is the gate count.
	N int `json:"n"`
	// W and H are the layout dimensions in µm.
	W float64 `json:"w_um"`
	H float64 `json:"h_um"`
}

// TailRequest asks the Monte-Carlo stage for distribution-tail statistics:
// leakage quantiles, the exceedance probability at a spec, and optionally
// the importance-sampled deep-tail estimate.
type TailRequest struct {
	// Spec is the leakage spec in amperes; > 0 requests P[I_leak > Spec].
	Spec float64 `json:"spec_a,omitempty"`
	// Quantiles lists tail probabilities, each strictly inside (0, 1);
	// duplicates are dropped and the response is ascending.
	Quantiles []float64 `json:"quantiles,omitempty"`
	// ISTrials is the importance-sampled trial budget for the deep-tail
	// exceedance; 0 uses the plain-MC trials alone. Requires Spec > 0.
	ISTrials int `json:"is_trials,omitempty"`
}

// TilesRequest configures the tiled estimation pipeline.
type TilesRequest struct {
	// T is the per-axis tile count; the die is partitioned into at most T×T
	// tiles. 0 and 1 mean monolithic.
	T int `json:"t"`
	// PerTile additionally returns the per-tile moment breakdown in
	// result.tile_stats.
	PerTile bool `json:"per_tile,omitempty"`
}

// BudgetRequest mirrors leakest.EstimateBudget over JSON.
type BudgetRequest struct {
	MaxGates  int   `json:"max_gates,omitempty"`
	MaxPairs  int64 `json:"max_pairs,omitempty"`
	TimeoutMS int   `json:"rung_timeout_ms,omitempty"`
}

// validate rejects malformed requests before any work is admitted.
func (r *EstimateRequest) validate() error {
	const op = "server.EstimateRequest"
	if (r.Design == nil) == (r.Bench == "") {
		return lkerr.New(lkerr.InvalidInput, op, "exactly one of design and bench must be set")
	}
	if r.Design != nil && (r.Truth || r.MCSamples > 0) {
		return lkerr.New(lkerr.InvalidInput, op, "truth and mc_samples need a bench netlist")
	}
	if r.Method != "" {
		if _, err := parseMethod(r.Method); err != nil {
			return err
		}
	}
	if r.Sampler != "" {
		if _, err := leakest.ParseSampler(r.Sampler); err != nil {
			return err
		}
	}
	if r.SignalProb != nil && !(*r.SignalProb >= 0 && *r.SignalProb <= 1) {
		return lkerr.New(lkerr.InvalidInput, op, "signal probability %g outside [0,1]", *r.SignalProb)
	}
	if r.MCSamples < 0 || r.TimeoutMS < 0 {
		return lkerr.New(lkerr.InvalidInput, op, "negative mc_samples or timeout_ms")
	}
	if r.MCBatch < 0 {
		return lkerr.New(lkerr.InvalidInput, op, "negative mc_batch")
	}
	if r.Tail != nil {
		if r.MCSamples == 0 {
			return lkerr.New(lkerr.InvalidInput, op, "tail statistics need mc_samples > 0")
		}
		if math.IsNaN(r.Tail.Spec) || math.IsInf(r.Tail.Spec, 0) || r.Tail.Spec < 0 {
			return lkerr.New(lkerr.InvalidInput, op, "tail spec %g must be finite and non-negative", r.Tail.Spec)
		}
		if r.Tail.ISTrials < 0 {
			return lkerr.New(lkerr.InvalidInput, op, "negative tail is_trials %d", r.Tail.ISTrials)
		}
		if r.Tail.ISTrials > 0 && r.Tail.Spec == 0 {
			return lkerr.New(lkerr.InvalidInput, op, "tail is_trials needs a positive spec_a")
		}
		if r.Tail.Spec == 0 && len(r.Tail.Quantiles) == 0 {
			return lkerr.New(lkerr.InvalidInput, op, "tail request needs spec_a or quantiles")
		}
		if _, err := stats.NormalizeQuantiles(r.Tail.Quantiles); err != nil {
			return lkerr.Wrap(lkerr.InvalidInput, op, err)
		}
	}
	if r.Tiles != nil {
		if r.Tiles.T < 0 {
			return lkerr.New(lkerr.InvalidInput, op, "negative tile count %d", r.Tiles.T)
		}
		if r.Tiles.T > 1 {
			if r.Method == "polar" || r.Method == "naive" {
				return lkerr.New(lkerr.InvalidInput, op,
					"method %q does not support tiling; use linear, auto, or integral", r.Method)
			}
			if r.Truth {
				return lkerr.New(lkerr.InvalidInput, op, "truth is monolithic; drop tiles or truth")
			}
		}
	}
	if r.Process != nil {
		if err := r.Process.Validate(); err != nil {
			return lkerr.Wrap(lkerr.InvalidInput, op, err)
		}
	}
	return nil
}

// budget renders the request's own work bounds.
func (r *EstimateRequest) budget() leakest.EstimateBudget {
	if r.Budget == nil {
		return leakest.EstimateBudget{}
	}
	return leakest.EstimateBudget{
		MaxGates: r.Budget.MaxGates,
		MaxPairs: r.Budget.MaxPairs,
		Timeout:  msToDuration(r.Budget.TimeoutMS),
	}
}

// parseMethod maps the wire spellings onto leakest.Method.
func parseMethod(s string) (leakest.Method, error) {
	switch s {
	case "", "auto":
		return leakest.Auto, nil
	case "linear":
		return leakest.Linear, nil
	case "integral":
		return leakest.Integral2D, nil
	case "polar":
		return leakest.Polar, nil
	case "naive":
		return leakest.Naive, nil
	}
	return 0, lkerr.New(lkerr.InvalidInput, "server.EstimateRequest",
		"unknown method %q (auto|linear|integral|polar|naive)", s)
}

// EstimateResponse is the body of a successful estimation.
type EstimateResponse struct {
	RequestID string `json:"request_id"`
	// Result carries the moments, the method that finally ran, and — when
	// a budget forced a fall down the degradation ladder — the reasons.
	Result ResultBody `json:"result"`
	// MonteCarlo is present when mc_samples was requested.
	MonteCarlo *MCBody `json:"monte_carlo,omitempty"`
	// Admission reports the load level the request was admitted under and
	// the queue depth it saw; degraded results under load carry the
	// matching reason in Result.DegradeReason.
	Admission AdmissionBody `json:"admission"`
	// Conformance is the cheap cross-estimator sanity check of the served
	// moments (see DESIGN.md §12).
	Conformance *ConformanceBody `json:"conformance,omitempty"`
	// Trace is the request's span tree with per-span attributes (sampler,
	// degradation rung, cache hits, clamp bias, …); the same trace stays
	// retrievable at /debug/traces/{request_id} per the flight recorder's
	// retention policy.
	Trace *telemetry.TraceSnapshot `json:"trace,omitempty"`
}

// ResultBody is the JSON rendering of a leakest.Result.
type ResultBody struct {
	Mean          float64     `json:"mean_a"`
	Std           float64     `json:"std_a"`
	Method        string      `json:"method"`
	Note          string      `json:"note,omitempty"`
	Degraded      bool        `json:"degraded,omitempty"`
	DegradeReason string      `json:"degrade_reason,omitempty"`
	Timings       []StageBody `json:"timings,omitempty"`
	// Tiles is the number of tiles the tiled pipeline actually used (0 when
	// monolithic); TileStats is the per-tile breakdown, present only when
	// the request set tiles.per_tile.
	Tiles     int                `json:"tiles,omitempty"`
	TileStats []leakest.TileStat `json:"tile_stats,omitempty"`
}

// StageBody is one pipeline-stage timing.
type StageBody struct {
	Stage     string  `json:"stage"`
	Seconds   float64 `json:"seconds"`
	RequestID string  `json:"-"`
}

// MCBody summarizes an attached Monte-Carlo run.
type MCBody struct {
	Mean    float64 `json:"mean_a"`
	Std     float64 `json:"std_a"`
	Q05     float64 `json:"q05_a"`
	Q95     float64 `json:"q95_a"`
	Samples int     `json:"samples"`
	// Tail carries the distribution-tail block when the request asked for
	// it: quantiles, p_exceed with its source ("mc", "is", "fallback"), and
	// the importance-sampling diagnostics. NaN-valued probability fields
	// (no spec requested) render as null — see TailStats.MarshalJSON.
	Tail *leakest.TailStats `json:"tail,omitempty"`
}

// AdmissionBody reports how the admission controller treated the request.
type AdmissionBody struct {
	// Level is the load level at admission: normal, busy, heavy, overload.
	Level string `json:"level"`
	// QueueDepth is the number of requests still waiting when this one was
	// admitted to a worker.
	QueueDepth int `json:"queue_depth"`
	// BudgetImposed reports that the level attached a load-shedding budget
	// (the degradation ladder may then serve a cheaper estimate).
	BudgetImposed bool `json:"budget_imposed,omitempty"`
}

// ConformanceBody is the per-request cross-estimator check: the served mean
// is compared against the method-independent closed form, and the served σ
// against the constant-time integral when the served method is a more
// expensive rung.
type ConformanceBody struct {
	Status     string  `json:"status"` // ok | mismatch | skipped
	Reference  string  `json:"reference,omitempty"`
	MeanRelDev float64 `json:"mean_rel_dev,omitempty"`
	StdRelDev  float64 `json:"std_rel_dev,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	RequestID string    `json:"request_id,omitempty"`
	Error     ErrorInfo `json:"error"`
}

// ErrorInfo carries the typed error class and message.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterS echoes the Retry-After header on 429 responses.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// JobBody is the status document of GET /v1/jobs/{id}.
type JobBody struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued | running | done | failed | canceled
	// Progress is the latest report from the running pipeline stage.
	Progress *ProgressBody `json:"progress,omitempty"`
	// Result is present once State is done.
	Result *EstimateResponse `json:"result,omitempty"`
	// Error is present once State is failed or canceled.
	Error *ErrorInfo `json:"error,omitempty"`
	// Trace is the job's completed span tree (terminal states only).
	Trace *telemetry.TraceSnapshot `json:"trace,omitempty"`
}

// ProgressBody is one progress snapshot of a running job.
type ProgressBody struct {
	Stage   string  `json:"stage"`
	Done    int64   `json:"done"`
	Total   int64   `json:"total"`
	Percent float64 `json:"percent"`
}

func progressBody(p telemetry.Progress) *ProgressBody {
	return &ProgressBody{Stage: p.Stage, Done: p.Done, Total: p.Total, Percent: p.Percent()}
}

// resultBody converts a library Result for the wire.
func resultBody(res leakest.Result) ResultBody {
	b := ResultBody{
		Mean:          res.Mean,
		Std:           res.Std,
		Method:        res.Method,
		Note:          res.Note,
		Degraded:      res.Degraded,
		DegradeReason: res.DegradeReason,
	}
	for _, st := range res.Timings {
		b.Timings = append(b.Timings, StageBody{Stage: st.Stage, Seconds: st.Seconds()})
	}
	return b
}

// errorCodeString renders the typed class for the wire; unclassified errors
// report "internal".
func errorCodeString(err error) string {
	if c := lkerr.CodeOf(err); c != 0 {
		return c.String()
	}
	return "internal"
}

// newID returns a fresh random identifier with the given prefix.
func newID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is catastrophic; a constant ID keeps the
		// server serving (IDs are diagnostics, not security).
		return prefix + "-00000000"
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}

// hashKey renders a stable content-hash cache key from parts.
func hashKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// processKey content-hashes a process description (the library cache key).
func processKey(proc *spatial.Process) string {
	if js, err := json.Marshal(proc); err == nil {
		return hashKey("process", string(js))
	}
	// A non-serializable custom kernel still needs a stable key.
	return hashKey("process", fmt.Sprintf("%g|%g|%g|%g|%s",
		proc.LNominal, proc.SigmaD2D, proc.SigmaWID, proc.SigmaVt, corrName(proc)))
}

// embeddingKey content-hashes the inputs the FFT torus embedding depends on:
// the process (mean, D2D and WID sigma, kernel) and the placement grid.
func embeddingKey(proc *spatial.Process, rows, cols int, siteW, siteH float64) string {
	return hashKey("embedding", processKey(proc),
		fmt.Sprintf("%dx%d@%gx%g", rows, cols, siteW, siteH))
}

func corrName(proc *spatial.Process) string {
	if proc.WIDCorr == nil {
		return "none"
	}
	return proc.WIDCorr.Name()
}

func msToDuration(ms int) time.Duration {
	return time.Duration(ms) * time.Millisecond
}
