package server

import (
	"context"
	"sync"

	"leakest/internal/lkerr"
	"leakest/internal/telemetry"
)

// Job states.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// job is one asynchronous estimation with its own lifecycle: it is admitted
// through the same worker pool as synchronous requests, reports progress
// snapshots while running, and can be canceled at any point before
// completion.
type job struct {
	id  string
	req *EstimateRequest

	cancel context.CancelFunc
	done   chan struct{} // closed on any terminal state

	mu       sync.Mutex
	state    string
	progress *telemetry.Progress
	resp     *EstimateResponse
	errInfo  *ErrorInfo
	trace    *telemetry.TraceSnapshot
}

// snapshot renders the job's current state for the wire.
func (j *job) snapshot() JobBody {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := JobBody{ID: j.id, State: j.state, Result: j.resp, Error: j.errInfo, Trace: j.trace}
	if j.progress != nil && j.state == stateRunning {
		b.Progress = progressBody(*j.progress)
	}
	return b
}

// setTrace retains the job's completed trace snapshot for GET /v1/jobs/{id}.
func (j *job) setTrace(snap *telemetry.TraceSnapshot) {
	j.mu.Lock()
	j.trace = snap
	j.mu.Unlock()
}

// onProgress is the telemetry ProgressFunc: it retains the latest snapshot
// for GET /v1/jobs/{id}.
func (j *job) onProgress(p telemetry.Progress) {
	j.mu.Lock()
	j.progress = &p
	j.mu.Unlock()
}

// setRunning transitions queued → running; it fails if the job was already
// canceled.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	return true
}

// finish records the terminal state. Cancellation errors land in the
// canceled state; everything else failed/done.
func (j *job) finish(resp *EstimateResponse, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = stateDone
		j.resp = resp
	case lkerr.IsCode(err, lkerr.Canceled):
		j.state = stateCanceled
		j.errInfo = &ErrorInfo{Code: errorCodeString(err), Message: err.Error()}
	default:
		j.state = stateFailed
		j.errInfo = &ErrorInfo{Code: errorCodeString(err), Message: err.Error()}
	}
	state := j.state
	j.mu.Unlock()
	telemetry.Inc(telemetry.Label("server_jobs_total", "state", state))
	close(j.done)
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == stateDone || j.state == stateFailed || j.state == stateCanceled
}

// jobSet owns the job table: a cap on live (queued+running) jobs — beyond it
// submissions are shed like synchronous requests — and bounded retention of
// finished jobs, evicted oldest-first.
type jobSet struct {
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // insertion order, for retention eviction
	maxLive int
	maxKeep int
}

func newJobSet(maxLive, maxKeep int) *jobSet {
	if maxLive < 1 {
		maxLive = 64
	}
	if maxKeep < 1 {
		maxKeep = 256
	}
	return &jobSet{jobs: make(map[string]*job), maxLive: maxLive, maxKeep: maxKeep}
}

// add registers a new job, refusing when the live-job cap is reached.
func (s *jobSet) add(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := 0
	for _, k := range s.order {
		if !s.jobs[k].terminal() {
			live++
		}
	}
	if live >= s.maxLive {
		return &errShed{retryAfterS: 5}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return nil
}

// get looks a job up by ID.
func (s *jobSet) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
func (s *jobSet) evictLocked() {
	if len(s.order) <= s.maxKeep {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxKeep
	for _, k := range s.order {
		if excess > 0 && s.jobs[k].terminal() {
			delete(s.jobs, k)
			excess--
			continue
		}
		kept = append(kept, k)
	}
	s.order = kept
}
